package repro

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// number of LCM latent functions Q, the acquisition function, the
// EI-maximization strategy (PSO vs random candidate scoring), and the
// parallel Cholesky block size. Quality metrics (best objective found,
// model log-likelihood) are attached via b.ReportMetric so `go test -bench`
// shows the tradeoff, not just the wall time.

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/acq"
	"repro/internal/apps/analytical"
	"repro/internal/core"
	"repro/internal/gp"
	"repro/internal/la"
	"repro/internal/opt"
	"repro/internal/space"
)

// ablationProblem: 2-D multimodal objective with known optimum at
// (0.3, 0.6), value 0.
func ablationProblem() *core.Problem {
	return &core.Problem{
		Name:    "ablation",
		Tasks:   space.MustNew(space.NewReal("t", 0, 1)),
		Tuning:  space.MustNew(space.NewReal("x0", 0, 1), space.NewReal("x1", 0, 1)),
		Outputs: space.NewOutputSpace("y"),
		Objective: func(task, x []float64) ([]float64, error) {
			d0, d1 := x[0]-0.3, x[1]-0.6
			ripple := 0.1 * math.Sin(9*x[0]) * math.Cos(7*x[1])
			return []float64{10*(d0*d0+d1*d1) + ripple + 0.1 + task[0]}, nil
		},
	}
}

func benchAblationQ(b *testing.B, q int) {
	rng := rand.New(rand.NewSource(1))
	data := &gp.Dataset{Dim: 1}
	for i := 0; i < 4; i++ {
		var xs [][]float64
		var ys []float64
		for j := 0; j < 15; j++ {
			x := rng.Float64()
			xs = append(xs, []float64{x})
			ys = append(ys, analytical.Objective(float64(i)*0.5, x))
		}
		data.X = append(data.X, xs)
		data.Y = append(data.Y, ys)
	}
	var ll float64
	for i := 0; i < b.N; i++ {
		model, err := gp.FitLCM(data, gp.FitOptions{Q: q, NumStarts: 2, MaxIter: 40, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		ll = model.LogLik
	}
	b.ReportMetric(ll, "loglik")
}

func BenchmarkAblationLCMQ1(b *testing.B) { benchAblationQ(b, 1) }
func BenchmarkAblationLCMQ2(b *testing.B) { benchAblationQ(b, 2) }
func BenchmarkAblationLCMQ4(b *testing.B) { benchAblationQ(b, 4) }

func benchAblationAcquisition(b *testing.B, name string) {
	var best float64
	for i := 0; i < b.N; i++ {
		res, err := core.Run(ablationProblem(), [][]float64{{0}}, core.Options{
			EpsTot: 16, Seed: int64(i) + 1, Acquisition: name,
		})
		if err != nil {
			b.Fatal(err)
		}
		_, y := res.Tasks[0].Best()
		best = y[0]
	}
	b.ReportMetric(best, "best")
}

func BenchmarkAblationAcqEI(b *testing.B)  { benchAblationAcquisition(b, "ei") }
func BenchmarkAblationAcqLCB(b *testing.B) { benchAblationAcquisition(b, "lcb") }
func BenchmarkAblationAcqPI(b *testing.B)  { benchAblationAcquisition(b, "pi") }

// EI-maximization ablation: PSO (the paper's choice) vs scoring uniform
// random candidates, on a fitted surrogate.
func benchAblationEISearch(b *testing.B, usePSO bool) {
	rng := rand.New(rand.NewSource(2))
	data := &gp.Dataset{Dim: 2}
	var xs [][]float64
	var ys []float64
	for j := 0; j < 25; j++ {
		x := []float64{rng.Float64(), rng.Float64()}
		d0, d1 := x[0]-0.3, x[1]-0.6
		xs = append(xs, x)
		ys = append(ys, 10*(d0*d0+d1*d1))
	}
	data.X = append(data.X, xs)
	data.Y = append(data.Y, ys)
	model, err := gp.FitLCM(data, gp.FitOptions{NumStarts: 2, MaxIter: 40, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	yBest := ys[0]
	for _, y := range ys {
		if y < yBest {
			yBest = y
		}
	}
	neg := func(u []float64) float64 {
		mu, v := model.Predict(0, u)
		return -acq.ExpectedImprovement(mu, v, yBest)
	}
	var achieved float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prng := rand.New(rand.NewSource(int64(i)))
		if usePSO {
			res := opt.PSO(neg, 2, opt.PSOParams{Particles: 20, MaxIter: 30}, prng)
			achieved = -res.F
		} else {
			res := opt.RandomSearch(neg, 2, 620, prng) // eval-count-matched
			achieved = -res.F
		}
	}
	b.ReportMetric(achieved, "EI")
}

func BenchmarkAblationEISearchPSO(b *testing.B)    { benchAblationEISearch(b, true) }
func BenchmarkAblationEISearchRandom(b *testing.B) { benchAblationEISearch(b, false) }

func benchAblationCholBlock(b *testing.B, block int) {
	a := randomSPD(384, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := la.ParallelCholesky(a, block, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationCholBlock16(b *testing.B)  { benchAblationCholBlock(b, 16) }
func BenchmarkAblationCholBlock64(b *testing.B)  { benchAblationCholBlock(b, 64) }
func BenchmarkAblationCholBlock128(b *testing.B) { benchAblationCholBlock(b, 128) }

// Initial-design ablation: LHS (the paper's lhsmdu) vs plain uniform vs
// Halton, measured by the best objective in the initial sample alone.
func benchAblationInitDesign(b *testing.B, frac float64) {
	var best float64
	for i := 0; i < b.N; i++ {
		res, err := core.Run(ablationProblem(), [][]float64{{0}}, core.Options{
			EpsTot: 16, Seed: int64(i) + 1, InitFraction: frac,
		})
		if err != nil {
			b.Fatal(err)
		}
		_, y := res.Tasks[0].Best()
		best = y[0]
	}
	b.ReportMetric(best, "best")
}

func BenchmarkAblationInitFraction25(b *testing.B) { benchAblationInitDesign(b, 0.25) }
func BenchmarkAblationInitFraction50(b *testing.B) { benchAblationInitDesign(b, 0.50) }
func BenchmarkAblationInitFraction75(b *testing.B) { benchAblationInitDesign(b, 0.75) }
