// Package repro's root benchmark harness: one benchmark per paper table and
// figure (small-scale variants, mirroring the paper artifact's "*_exp"
// scripts), plus micro-benchmarks of the computational kernels. Full-scale
// regeneration uses cmd/experiments; EXPERIMENTS.md records paper-vs-measured
// for every artifact.
package repro

import (
	"io"
	"math/rand"
	"testing"

	"repro/internal/experiments"
	"repro/internal/gp"
	"repro/internal/la"
)

// benchExperiment runs one registered experiment in quick mode.
func benchExperiment(b *testing.B, id string) {
	spec := experiments.Find(id)
	if spec == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	for i := 0; i < b.N; i++ {
		spec.Run(io.Discard, true, int64(i)+1, 4)
	}
}

func BenchmarkFig2(b *testing.B)           { benchExperiment(b, "Fig2") }
func BenchmarkFig3(b *testing.B)           { benchExperiment(b, "Fig3") }
func BenchmarkFig4Analytical(b *testing.B) { benchExperiment(b, "Fig4a") }
func BenchmarkFig4QR(b *testing.B)         { benchExperiment(b, "Fig4b") }
func BenchmarkFig5QR(b *testing.B)         { benchExperiment(b, "Fig5a") }
func BenchmarkFig5EV(b *testing.B)         { benchExperiment(b, "Fig5b") }
func BenchmarkTable3MHD(b *testing.B)      { benchExperiment(b, "Tab3") }
func BenchmarkFig6QR(b *testing.B)         { benchExperiment(b, "Fig6a") }
func BenchmarkFig6SuperLU(b *testing.B)    { benchExperiment(b, "Fig6b") }
func BenchmarkTable4(b *testing.B)         { benchExperiment(b, "Tab4") }
func BenchmarkFig7Single(b *testing.B)     { benchExperiment(b, "Fig7a") }
func BenchmarkFig7Multi(b *testing.B)      { benchExperiment(b, "Fig7b") }

// --- kernel micro-benchmarks ---

func randomSPD(n int, seed int64) *la.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := la.NewMatrix(n, n)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	a := la.MatMulTransB(m, m)
	for i := 0; i < n; i++ {
		a.Data[i*n+i] += float64(n)
	}
	return a
}

func BenchmarkCholeskySerial(b *testing.B) {
	a := randomSPD(300, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := la.Cholesky(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCholeskyParallel(b *testing.B) {
	a := randomSPD(300, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := la.ParallelCholesky(a, 64, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func benchDataset(tasks, samples int) *gp.Dataset {
	rng := rand.New(rand.NewSource(2))
	d := &gp.Dataset{Dim: 2}
	for i := 0; i < tasks; i++ {
		var xs [][]float64
		var ys []float64
		for j := 0; j < samples; j++ {
			x := []float64{rng.Float64(), rng.Float64()}
			xs = append(xs, x)
			ys = append(ys, x[0]*x[0]+float64(i)*x[1])
		}
		d.X = append(d.X, xs)
		d.Y = append(d.Y, ys)
	}
	return d
}

func BenchmarkLCMFit(b *testing.B) {
	d := benchDataset(4, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gp.FitLCM(d, gp.FitOptions{Q: 2, NumStarts: 2, MaxIter: 20, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLCMPredict(b *testing.B) {
	d := benchDataset(4, 12)
	model, err := gp.FitLCM(d, gp.FitOptions{Q: 2, NumStarts: 2, MaxIter: 20, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	x := []float64{0.3, 0.7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Predict(i%4, x)
	}
}
