// Command bench_serve load-tests the gptuned HTTP service: an in-process
// server on a real TCP listener, hammered by thousands of concurrent
// suggest/report clients that evaluate the paper's analytical objective
// (Eq. 11) client-side. It drives one synchronous and one async
// (options.async) study with the same spec and records, per mode, request
// throughput, completed evaluations, and the suggest-latency distribution
// (p50/p95/p99) — the serve-layer numbers behind the async mode's claim:
// with modeling off the request path, a suggest that lands mid-fit costs a
// fast 409, not a surrogate fit.
//
// With -replicas N (> 1) it additionally benchmarks the multi-node serving
// layer: N in-process gptuned replicas behind the consistent-hash router
// (internal/router), one async study per replica, a fixed client pool per
// study, and a simulated per-evaluation cost (-eval-ms) on the client side —
// weak scaling, the regime a shared tuning service actually lives in, where
// wall-clock is dominated by the applications running their measurements and
// the service's job is to keep N studies' suggest/report/modeling pipelines
// from serializing behind each other. The cluster section records the
// single-replica baseline, the N-replica aggregate, and their ratio.
//
// With -scenario (a comma-separated list of workload-registry names, or
// "all") it instead drives each named scenario end-to-end through
// gptune/client: the study is created by name — the server instantiates the
// spaces, constraints included, from the registry — and the client runs the
// scenario's own objective, failing hard on any infeasible suggestion. This
// is the CI smoke path proving constrained scenarios work over the wire.
//
// The report is written to BENCH_SERVE.json and self-validated (non-zero
// throughput, well-formed JSON) so a CI smoke run fails loudly instead of
// committing an empty benchmark.
//
// Usage: go run ./cmd/bench_serve [-o BENCH_SERVE.json] [-clients 2000]
//
//	[-eps 16] [-seed 42] [-conns 256]
//	[-replicas 3] [-cluster-clients 8] [-cluster-eps 16] [-eval-ms 200]
//	[-scenario gemm,recsys] [-scenario-tasks 2] [-scenario-eps 8]
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/gptune/client"
	"repro/internal/apps/analytical"
	"repro/internal/bench"
	_ "repro/internal/bench/all" // full workload catalog for -scenario
	"repro/internal/mpx"
	"repro/internal/router"
	"repro/internal/sample"
	"repro/internal/serve"
)

// paperObjective is Eq. (11), shared from the analytical app and evaluated
// client-side — the server never holds an Objective, exactly like a
// production tuning client.
var paperObjective = analytical.Objective

var benchTasks = [][]float64{{0}, {1.5}, {3}}

// Client-side wire structs mirroring the serve API (the server's own types
// are unexported; a real client defines these too).
type suggestion struct {
	ID   int64     `json:"id"`
	Task int       `json:"task"`
	X    []float64 `json:"x"`
}

type suggestResponse struct {
	Suggestion *suggestion `json:"suggestion"`
	Done       bool        `json:"done"`
}

type reportRequest struct {
	ID int64     `json:"id"`
	Y  []float64 `json:"y"`
}

type reportResponse struct {
	OK bool `json:"ok"`
}

// modeReport is one mode's (sync or async) measurements.
type modeReport struct {
	Async        bool    `json:"async"`
	Clients      int     `json:"clients"`
	WallMs       float64 `json:"wall_ms"`
	Requests     int64   `json:"requests"`      // suggest + report requests completed
	Evals        int64   `json:"evals"`         // acknowledged (committed) evaluations
	Conflicts    int64   `json:"conflicts"`     // suggest 409s (none pending / batch generating)
	RacedReports int64   `json:"raced_reports"` // duplicate reports that lost the re-issue race
	ReqPerSec    float64 `json:"req_per_sec"`
	EvalsPerSec  float64 `json:"evals_per_sec"`
	SuggestP50Ms float64 `json:"suggest_p50_ms"`
	SuggestP95Ms float64 `json:"suggest_p95_ms"`
	SuggestP99Ms float64 `json:"suggest_p99_ms"`
	SuggestMaxMs float64 `json:"suggest_max_ms"`
}

// clusterRun is one cluster configuration's aggregate measurements: n
// replicas behind the router, one async study per replica, a fixed client
// pool per study, every evaluation costing EvalMs client-side.
type clusterRun struct {
	Replicas     int     `json:"replicas"`
	Studies      int     `json:"studies"`
	Clients      int     `json:"clients_per_study"`
	EvalMs       int     `json:"eval_ms"`
	WallMs       float64 `json:"wall_ms"`
	Requests     int64   `json:"requests"`
	Evals        int64   `json:"evals"`
	Conflicts    int64   `json:"conflicts"`
	ReqPerSec    float64 `json:"req_per_sec"`
	EvalsPerSec  float64 `json:"evals_per_sec"`
	SuggestP50Ms float64 `json:"suggest_p50_ms"`
	SuggestP95Ms float64 `json:"suggest_p95_ms"`
	SuggestP99Ms float64 `json:"suggest_p99_ms"`
}

// clusterReport pairs the single-replica baseline with the N-replica run.
// Scale is aggregate evals/s, multi over single — the near-linear-scaling
// figure.
type clusterReport struct {
	Single clusterRun `json:"single"`
	Multi  clusterRun `json:"multi"`
	Scale  float64    `json:"scale"`
}

// scenarioReport is one registry scenario driven end-to-end through
// gptune/client: the study is created by name — the server instantiates the
// spaces, constraints included, from the workload registry — and the client
// evaluates the scenario's own objective, checking every suggestion against
// the scenario's constraints.
type scenarioReport struct {
	Scenario    string  `json:"scenario"`
	Tasks       int     `json:"tasks"`
	EpsTot      int     `json:"eps_tot"`
	Constrained bool    `json:"constrained"`
	Evals       int64   `json:"evals"`
	Best        float64 `json:"best"` // best objective-0 value observed
	WallMs      float64 `json:"wall_ms"`
	EvalsPerSec float64 `json:"evals_per_sec"`
}

type report struct {
	Config struct {
		Clients    int    `json:"clients"`
		Conns      int    `json:"conns"`
		EpsTot     int    `json:"eps_tot"`
		Tasks      int    `json:"tasks"`
		Seed       int64  `json:"seed"`
		GoVersion  string `json:"go_version"`
		GOMAXPROCS int    `json:"gomaxprocs"`
	} `json:"config"`
	Sync      modeReport       `json:"sync,omitempty"`
	Async     modeReport       `json:"async,omitempty"`
	Cluster   *clusterReport   `json:"cluster,omitempty"`
	Scenarios []scenarioReport `json:"scenarios,omitempty"`
}

// stats accumulates one mode's counters; clients merge their local batches
// under the mutex when they exit.
type stats struct {
	mu           sync.Mutex
	latNs        []int64
	requests     int64
	evals        int64
	conflicts    int64
	racedReports int64
	err          error
}

func (s *stats) merge(lat []int64, requests, evals, conflicts, raced int64, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.latNs = append(s.latNs, lat...)
	s.requests += requests
	s.evals += evals
	s.conflicts += conflicts
	s.racedReports += raced
	if err != nil && s.err == nil {
		s.err = err
	}
}

// post sends one JSON request and decodes the response body into out.
func post(hc *http.Client, url string, body, out any) (int, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	resp, err := hc.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		return 0, err
	}
	defer func() { _ = resp.Body.Close() }()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, fmt.Errorf("decoding %s response (status %d): %w", url, resp.StatusCode, err)
		}
	}
	return resp.StatusCode, nil
}

// runClient is one tuning client's suggest→evaluate→report loop, run until
// the study reports done. evalCost simulates the application actually
// running the suggested configuration (a sleep — the cluster benchmark's
// weak-scaling regime); zero means the analytical objective alone. 409s
// (none pending) back off briefly, growing to a 20ms cap; a duplicate
// report losing the re-issue race (404) is counted, not fatal.
func runClient(hc *http.Client, base, study string, evalCost time.Duration, st *stats) {
	var lat []int64
	var requests, evals, conflicts, raced int64
	fail := func(err error) { st.merge(lat, requests, evals, conflicts, raced, err) }
	backoff := time.Millisecond
	for {
		var sg suggestResponse
		t0 := time.Now()
		code, err := post(hc, base+"/studies/"+study+"/suggest", map[string]int{"task": -1}, &sg)
		lat = append(lat, time.Since(t0).Nanoseconds())
		requests++
		if err != nil {
			fail(err)
			return
		}
		switch code {
		case http.StatusOK:
			backoff = time.Millisecond
		case http.StatusConflict:
			conflicts++
			time.Sleep(backoff)
			if backoff *= 2; backoff > 20*time.Millisecond {
				backoff = 20 * time.Millisecond
			}
			continue
		default:
			fail(fmt.Errorf("suggest: status %d", code))
			return
		}
		if sg.Done {
			st.merge(lat, requests, evals, conflicts, raced, nil)
			return
		}
		if sg.Suggestion == nil {
			fail(fmt.Errorf("200 suggest response has neither suggestion nor done"))
			return
		}
		if evalCost > 0 {
			time.Sleep(evalCost)
		}
		y := paperObjective(benchTasks[sg.Suggestion.Task][0], sg.Suggestion.X[0])
		var rep reportResponse
		code, err = post(hc, base+"/studies/"+study+"/report", reportRequest{ID: sg.Suggestion.ID, Y: []float64{y}}, &rep)
		requests++
		if err != nil {
			fail(err)
			return
		}
		switch {
		case code == http.StatusOK && rep.OK:
			evals++
		case code == http.StatusNotFound:
			raced++ // another client's report for the same re-issued ID won
		default:
			fail(fmt.Errorf("report: status %d", code))
			return
		}
	}
}

// percentileMs reads the p-th percentile (0..1) of sorted nanosecond
// latencies, in milliseconds.
func percentileMs(sorted []int64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted)-1) + 0.5)
	return float64(sorted[idx]) / 1e6
}

// newHTTPClient builds a fresh client with its own transport. Each measured
// run gets its own: reusing one client across the sync-then-async runs let
// the second mode start with a warm idle-connection pool while the first
// paid all TCP setup inside its measured window — the modes weren't
// comparable.
func newHTTPClient(conns int) *http.Client {
	return &http.Client{
		Timeout: 60 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        conns,
			MaxIdleConnsPerHost: conns,
			MaxConnsPerHost:     conns,
		},
	}
}

// runMode creates one study (sync or async) and drives it to completion with
// `clients` concurrent clients, returning the measurements.
func runMode(hc *http.Client, base string, async bool, clients, eps int, seed int64) (modeReport, error) {
	name := "bench-sync"
	if async {
		name = "bench-async"
	}
	spec := serve.StudySpec{
		Name:       name,
		TaskParams: []serve.ParamSpec{{Name: "t", Kind: "real", Lo: 0, Hi: 10}},
		Tuning:     []serve.ParamSpec{{Name: "x", Kind: "real", Lo: 0, Hi: 1}},
		Outputs:    []string{"y"},
		Tasks:      benchTasks,
		Options:    serve.OptionsSpec{EpsTot: eps, Seed: seed, Workers: runtime.GOMAXPROCS(0), Async: async},
	}
	if code, err := post(hc, base+"/studies", spec, nil); err != nil || code != http.StatusCreated {
		return modeReport{}, fmt.Errorf("creating study %s: status %d, %v", name, code, err)
	}

	var st stats
	var wg sync.WaitGroup
	t0 := time.Now()
	for c := 0; c < clients; c++ {
		mpx.Go(&wg, func() { runClient(hc, base, name, 0, &st) })
	}
	wg.Wait()
	wall := time.Since(t0)
	if st.err != nil {
		return modeReport{}, fmt.Errorf("study %s: %w", name, st.err)
	}
	wantEvals := int64(eps * len(benchTasks))
	if st.evals != wantEvals {
		return modeReport{}, fmt.Errorf("study %s committed %d evaluations, want %d", name, st.evals, wantEvals)
	}
	sort.Slice(st.latNs, func(i, j int) bool { return st.latNs[i] < st.latNs[j] })
	m := modeReport{
		Async:        async,
		Clients:      clients,
		WallMs:       float64(wall.Nanoseconds()) / 1e6,
		Requests:     st.requests,
		Evals:        st.evals,
		Conflicts:    st.conflicts,
		RacedReports: st.racedReports,
		ReqPerSec:    float64(st.requests) / wall.Seconds(),
		EvalsPerSec:  float64(st.evals) / wall.Seconds(),
		SuggestP50Ms: percentileMs(st.latNs, 0.50),
		SuggestP95Ms: percentileMs(st.latNs, 0.95),
		SuggestP99Ms: percentileMs(st.latNs, 0.99),
		SuggestMaxMs: percentileMs(st.latNs, 1.0),
	}
	return m, nil
}

// benchNode is one in-process gptuned replica for the cluster benchmark.
type benchNode struct {
	srv *serve.Server
	hs  *http.Server
	ln  net.Listener
	wg  sync.WaitGroup
}

func startBenchNode(dir string) (*benchNode, error) {
	srv, err := serve.NewServer(serve.Config{DataDir: dir})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return nil, err
	}
	n := &benchNode{srv: srv, ln: ln, hs: &http.Server{Handler: srv.Handler()}}
	mpx.Go(&n.wg, func() { _ = n.hs.Serve(n.ln) })
	return n, nil
}

func (n *benchNode) url() string { return "http://" + n.ln.Addr().String() }

func (n *benchNode) stop() {
	_ = n.hs.Close()
	n.wg.Wait()
	_ = n.srv.Close()
}

// runCluster benchmarks n replicas behind the router: one async study per
// replica (RefitEvery=4 — the production posture for a study under load),
// `clients` concurrent clients per study, each evaluation costing evalMs
// client-side. Returns aggregate throughput/latency across all studies.
func runCluster(dir string, n, clients, eps, evalMs int, seed int64) (clusterRun, error) {
	nodes := make([]*benchNode, 0, n)
	defer func() {
		for _, nd := range nodes {
			nd.stop()
		}
	}()
	urls := make([]string, 0, n)
	for i := 0; i < n; i++ {
		nd, err := startBenchNode(fmt.Sprintf("%s/node%d", dir, i))
		if err != nil {
			return clusterRun{}, err
		}
		nodes = append(nodes, nd)
		urls = append(urls, nd.url())
	}
	rt, err := router.New(router.Config{Replicas: urls, ProbeEvery: 200 * time.Millisecond})
	if err != nil {
		return clusterRun{}, err
	}
	rt.Start()
	defer rt.Stop()
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return clusterRun{}, err
	}
	rhs := &http.Server{Handler: rt.Handler()}
	var rwg sync.WaitGroup
	mpx.Go(&rwg, func() { _ = rhs.Serve(rln) })
	defer func() {
		_ = rhs.Close()
		rwg.Wait()
	}()
	base := "http://" + rln.Addr().String()

	hc := newHTTPClient(n*clients + n)
	defer hc.CloseIdleConnections()

	// One study per replica; the router's consistent hashing decides which
	// replica hosts which study, and with rendezvous balance n studies land
	// one-per-node often enough that the aggregate exercises every replica.
	studies := make([]string, n)
	for i := range studies {
		studies[i] = fmt.Sprintf("bench-cluster-%d", i)
		spec := serve.StudySpec{
			Name:       studies[i],
			TaskParams: []serve.ParamSpec{{Name: "t", Kind: "real", Lo: 0, Hi: 10}},
			Tuning:     []serve.ParamSpec{{Name: "x", Kind: "real", Lo: 0, Hi: 1}},
			Outputs:    []string{"y"},
			Tasks:      benchTasks,
			Options: serve.OptionsSpec{
				EpsTot: eps, Seed: seed + int64(i), Workers: 1,
				Async: true, RefitEvery: 4,
			},
		}
		if code, err := post(hc, base+"/studies", spec, nil); err != nil || code != http.StatusCreated {
			return clusterRun{}, fmt.Errorf("creating study %s: status %d, %v", studies[i], code, err)
		}
	}

	var st stats
	var wg sync.WaitGroup
	t0 := time.Now()
	for _, study := range studies {
		study := study
		for c := 0; c < clients; c++ {
			mpx.Go(&wg, func() { runClient(hc, base, study, time.Duration(evalMs)*time.Millisecond, &st) })
		}
	}
	wg.Wait()
	wall := time.Since(t0)
	if st.err != nil {
		return clusterRun{}, fmt.Errorf("cluster n=%d: %w", n, st.err)
	}
	wantEvals := int64(n * eps * len(benchTasks))
	if st.evals != wantEvals {
		return clusterRun{}, fmt.Errorf("cluster n=%d committed %d evaluations, want %d", n, st.evals, wantEvals)
	}
	sort.Slice(st.latNs, func(i, j int) bool { return st.latNs[i] < st.latNs[j] })
	return clusterRun{
		Replicas:     n,
		Studies:      n,
		Clients:      clients,
		EvalMs:       evalMs,
		WallMs:       float64(wall.Nanoseconds()) / 1e6,
		Requests:     st.requests,
		Evals:        st.evals,
		Conflicts:    st.conflicts,
		ReqPerSec:    float64(st.requests) / wall.Seconds(),
		EvalsPerSec:  float64(st.evals) / wall.Seconds(),
		SuggestP50Ms: percentileMs(st.latNs, 0.50),
		SuggestP95Ms: percentileMs(st.latNs, 0.95),
		SuggestP99Ms: percentileMs(st.latNs, 0.99),
	}, nil
}

// runScenario drives one registry scenario through gptune/client against
// base: the study is created by name (the server instantiates the spaces
// from the workload registry), then a suggest→evaluate→report loop runs the
// scenario's own objective client-side until the budget is exhausted. Every
// suggestion must satisfy the scenario's constraints — an infeasible point
// is a hard failure, since the point of scenario studies is that constraints
// ride along server-side.
func runScenario(base, name string, numTasks, eps int, seed int64) (scenarioReport, error) {
	sc, err := bench.Get(name)
	if err != nil {
		return scenarioReport{}, err
	}
	prob, err := sc.Problem(nil)
	if err != nil {
		return scenarioReport{}, err
	}
	rng := rand.New(rand.NewSource(seed))
	tasks, err := sample.FeasibleLHS(prob.Tasks, numTasks, rng)
	if err != nil {
		return scenarioReport{}, err
	}
	c, err := client.New(client.Config{Replicas: []string{base}})
	if err != nil {
		return scenarioReport{}, err
	}
	study := "bench-scenario-" + sc.Name
	ctx := context.Background()
	if err := c.Create(ctx, client.StudySpec{
		Name:     study,
		Scenario: name,
		Tasks:    tasks,
		Options:  client.OptionsSpec{EpsTot: eps, Seed: seed, Workers: runtime.GOMAXPROCS(0)},
	}); err != nil {
		return scenarioReport{}, fmt.Errorf("creating scenario study %s: %w", study, err)
	}

	out := scenarioReport{
		Scenario:    sc.Name,
		Tasks:       len(tasks),
		EpsTot:      eps,
		Constrained: len(prob.Tuning.Constraints) > 0,
	}
	best := 0.0
	t0 := time.Now()
	for {
		sg, err := c.Suggest(ctx, study, -1)
		if errors.Is(err, client.ErrDone) {
			break
		}
		if errors.Is(err, client.ErrNonePending) {
			continue
		}
		if err != nil {
			return scenarioReport{}, fmt.Errorf("scenario %s suggest: %w", sc.Name, err)
		}
		if !prob.Tuning.Feasible(sg.X) {
			return scenarioReport{}, fmt.Errorf("scenario %s: suggestion %v violates the scenario's constraints", sc.Name, sg.X)
		}
		y, err := prob.Objective(tasks[sg.Task], sg.X)
		if err != nil {
			return scenarioReport{}, fmt.Errorf("scenario %s objective: %w", sc.Name, err)
		}
		if err := c.Report(ctx, study, sg.ID, y); err != nil {
			return scenarioReport{}, fmt.Errorf("scenario %s report: %w", sc.Name, err)
		}
		if out.Evals == 0 || y[0] < best {
			best = y[0]
		}
		out.Evals++
	}
	wall := time.Since(t0)
	if want := int64(eps * len(tasks)); out.Evals != want {
		return scenarioReport{}, fmt.Errorf("scenario %s committed %d evaluations, want %d", sc.Name, out.Evals, want)
	}
	out.Best = best
	out.WallMs = float64(wall.Nanoseconds()) / 1e6
	out.EvalsPerSec = float64(out.Evals) / wall.Seconds()
	return out, nil
}

// validate re-reads the written report and checks the CI smoke contract:
// well-formed JSON, non-zero throughput and evaluations in both modes.
func validate(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		return fmt.Errorf("%s is not well-formed JSON: %w", path, err)
	}
	if len(rep.Scenarios) > 0 {
		for _, s := range rep.Scenarios {
			if s.Evals <= 0 || s.EvalsPerSec <= 0 {
				return fmt.Errorf("%s: scenario %s recorded zero evaluations (evals=%d evals_per_sec=%v)",
					path, s.Scenario, s.Evals, s.EvalsPerSec)
			}
		}
		if rep.Sync.Requests == 0 {
			return nil // scenario-only smoke run
		}
	}
	for _, m := range []modeReport{rep.Sync, rep.Async} {
		mode := "sync"
		if m.Async {
			mode = "async"
		}
		if m.ReqPerSec <= 0 || m.Evals <= 0 || m.SuggestP50Ms <= 0 {
			return fmt.Errorf("%s: %s mode recorded zero throughput (req_per_sec=%v evals=%d p50=%vms)",
				path, mode, m.ReqPerSec, m.Evals, m.SuggestP50Ms)
		}
	}
	if c := rep.Cluster; c != nil {
		if c.Single.EvalsPerSec <= 0 || c.Multi.EvalsPerSec <= 0 || c.Scale <= 0 {
			return fmt.Errorf("%s: cluster section recorded zero throughput (single=%v multi=%v scale=%v)",
				path, c.Single.EvalsPerSec, c.Multi.EvalsPerSec, c.Scale)
		}
	}
	return nil
}

func run() error {
	out := flag.String("o", "BENCH_SERVE.json", "output path")
	clients := flag.Int("clients", 2000, "concurrent suggest/report clients per mode")
	conns := flag.Int("conns", 0, "TCP connections the clients share (MaxConnsPerHost); 0 = one per client")
	eps := flag.Int("eps", 16, "evaluation budget per task (eps_tot)")
	seed := flag.Int64("seed", 42, "study seed")
	replicas := flag.Int("replicas", 0, "cluster mode: replicas behind the router (0 = skip the cluster benchmark)")
	clusterClients := flag.Int("cluster-clients", 8, "cluster mode: concurrent clients per study")
	clusterEps := flag.Int("cluster-eps", 16, "cluster mode: evaluation budget per task")
	evalMs := flag.Int("eval-ms", 200, "cluster mode: simulated client-side evaluation cost per suggestion")
	scenario := flag.String("scenario", "", "scenario mode: comma-separated registry scenarios driven through gptune/client instead of the load test ('all' = every registered scenario)")
	scenarioTasks := flag.Int("scenario-tasks", 2, "scenario mode: tasks per scenario study")
	scenarioEps := flag.Int("scenario-eps", 8, "scenario mode: evaluation budget per task")
	flag.Parse()
	if *clients < 1 {
		*clients = 1
	}
	if *conns <= 0 {
		*conns = *clients
	}

	dir, err := os.MkdirTemp("", "bench_serve")
	if err != nil {
		return err
	}
	defer func() { _ = os.RemoveAll(dir) }()
	srv, err := serve.NewServer(serve.Config{DataDir: dir})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	var serveWG sync.WaitGroup
	mpx.Go(&serveWG, func() { _ = hs.Serve(ln) }) // returns ErrServerClosed on shutdown
	defer func() {
		_ = hs.Close()
		serveWG.Wait()
		_ = srv.Close()
	}()
	base := "http://" + ln.Addr().String()

	var rep report
	rep.Config.Clients = *clients
	rep.Config.Conns = *conns
	rep.Config.EpsTot = *eps
	rep.Config.Tasks = len(benchTasks)
	rep.Config.Seed = *seed
	rep.Config.GoVersion = runtime.Version()
	rep.Config.GOMAXPROCS = runtime.GOMAXPROCS(0)

	// Scenario mode replaces the load test: each named registry scenario is
	// created by name through gptune/client and driven to completion.
	if *scenario != "" {
		names := strings.Split(*scenario, ",")
		if *scenario == "all" {
			names = bench.Names()
		}
		for _, name := range names {
			sr, err := runScenario(base, strings.TrimSpace(name), *scenarioTasks, *scenarioEps, *seed)
			if err != nil {
				return err
			}
			fmt.Printf("scenario %s: %d evals (%d tasks x eps %d), best %.6g, %.1f evals/s, constrained=%v\n",
				sr.Scenario, sr.Evals, sr.Tasks, sr.EpsTot, sr.Best, sr.EvalsPerSec, sr.Constrained)
			rep.Scenarios = append(rep.Scenarios, sr)
		}
		buf, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*out, buf, 0o644); err != nil {
			return err
		}
		if err := validate(*out); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *out)
		return nil
	}

	// One connection per client by default, so suggest latency measures the
	// server, not client-side pool queueing; -conns bounds the pool when the
	// descriptor budget is tighter than the client count. Each mode gets a
	// FRESH client and transport: a shared one handed the second mode a warm
	// idle-connection pool while the first paid all TCP setup inside its
	// measured window.
	hcSync := newHTTPClient(*conns)
	if rep.Sync, err = runMode(hcSync, base, false, *clients, *eps, *seed); err != nil {
		return err
	}
	hcSync.CloseIdleConnections()
	fmt.Printf("sync:  %.0f req/s, suggest p50=%.2fms p95=%.2fms p99=%.2fms max=%.2fms\n",
		rep.Sync.ReqPerSec, rep.Sync.SuggestP50Ms, rep.Sync.SuggestP95Ms, rep.Sync.SuggestP99Ms, rep.Sync.SuggestMaxMs)
	hcAsync := newHTTPClient(*conns)
	if rep.Async, err = runMode(hcAsync, base, true, *clients, *eps, *seed); err != nil {
		return err
	}
	hcAsync.CloseIdleConnections()
	fmt.Printf("async: %.0f req/s, suggest p50=%.2fms p95=%.2fms p99=%.2fms max=%.2fms\n",
		rep.Async.ReqPerSec, rep.Async.SuggestP50Ms, rep.Async.SuggestP95Ms, rep.Async.SuggestP99Ms, rep.Async.SuggestMaxMs)

	if *replicas > 1 {
		cdir, err := os.MkdirTemp("", "bench_serve_cluster")
		if err != nil {
			return err
		}
		defer func() { _ = os.RemoveAll(cdir) }()
		single, err := runCluster(cdir+"/single", 1, *clusterClients, *clusterEps, *evalMs, *seed)
		if err != nil {
			return err
		}
		fmt.Printf("cluster n=1: %.1f evals/s, suggest p50=%.2fms p99=%.2fms\n",
			single.EvalsPerSec, single.SuggestP50Ms, single.SuggestP99Ms)
		multi, err := runCluster(cdir+"/multi", *replicas, *clusterClients, *clusterEps, *evalMs, *seed)
		if err != nil {
			return err
		}
		scale := multi.EvalsPerSec / single.EvalsPerSec
		fmt.Printf("cluster n=%d: %.1f evals/s, suggest p50=%.2fms p99=%.2fms — %.2fx the single-replica aggregate\n",
			*replicas, multi.EvalsPerSec, multi.SuggestP50Ms, multi.SuggestP99Ms, scale)
		rep.Cluster = &clusterReport{Single: single, Multi: multi, Scale: scale}
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		return err
	}
	if err := validate(*out); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bench_serve:", err)
		os.Exit(1)
	}
}
