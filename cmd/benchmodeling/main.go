// Command benchmodeling times the modeling-phase hot path of the tuner at the
// paper's Table 3 regime (δ=4 tasks, n≈300 total samples, β=4 tuning
// parameters, Q=3 latent functions) and writes the measurements to
// BENCH_MODELING.json so modeling-phase regressions show up in review diffs.
//
// It exercises the exported surface only: FitLCM at 1 and 4 workers (the
// likelihood/gradient engine, parallel blocked Cholesky and inverse underneath)
// and the two prediction paths (allocating Predict vs workspace PredictBatch,
// the latter driving the search phase). The per-evaluation gradient
// engine-vs-reference comparison lives in internal/gp's benchmarks:
//
//	go test ./internal/gp/ -run XXX -bench LCMLogLikGrad
//
// Usage: go run ./cmd/benchmodeling [-o BENCH_MODELING.json] [-reps 3]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/gp"
)

const (
	benchTasks   = 4
	benchSamples = 75 // n = 300 total
	benchDim     = 4
	benchQ       = 3
	batchPoints  = 256
)

type report struct {
	Config struct {
		Tasks        int    `json:"tasks"`
		SamplesEach  int    `json:"samples_per_task"`
		TotalSamples int    `json:"total_samples"`
		Dim          int    `json:"dim"`
		Q            int    `json:"q"`
		NumStarts    int    `json:"num_starts"`
		MaxIter      int    `json:"max_iter"`
		GoVersion    string `json:"go_version"`
		GOMAXPROCS   int    `json:"gomaxprocs"`
		Reps         int    `json:"reps"`
	} `json:"config"`
	FitLCMWorkers1NsOp     int64   `json:"fit_lcm_workers1_ns_op"`
	FitLCMWorkers4NsOp     int64   `json:"fit_lcm_workers4_ns_op"`
	FitLCMWorkersLogLikAbs float64 `json:"fit_lcm_workers_loglik_absdiff"`
	PredictNsOp            int64   `json:"predict_ns_op"`
	PredictBatchNsPerPoint int64   `json:"predict_batch_ns_per_point"`
	PredictIntoAllocsPerOp float64 `json:"predict_into_allocs_per_op"`
}

func syntheticDataset(rng *rand.Rand, tasks, samples, dim int) *gp.Dataset {
	d := &gp.Dataset{Dim: dim, X: make([][][]float64, tasks), Y: make([][]float64, tasks)}
	for i := 0; i < tasks; i++ {
		for j := 0; j < samples; j++ {
			x := make([]float64, dim)
			for k := range x {
				x[k] = rng.Float64()
			}
			y := math.Sin(2*math.Pi*x[0]) + float64(i)*0.3*math.Cos(2*math.Pi*x[1]) + 0.05*rng.NormFloat64()
			d.X[i] = append(d.X[i], x)
			d.Y[i] = append(d.Y[i], y)
		}
	}
	return d
}

// best-of-reps wall time for one call of fn, in ns. Minimum over repetitions
// is the standard noise filter for single-machine timings.
func bestOf(reps int, fn func()) int64 {
	best := int64(math.MaxInt64)
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		fn()
		if d := time.Since(t0).Nanoseconds(); d < best {
			best = d
		}
	}
	return best
}

func main() {
	out := flag.String("o", "BENCH_MODELING.json", "output path")
	reps := flag.Int("reps", 3, "repetitions per measurement (best is kept)")
	flag.Parse()
	if *reps < 1 {
		*reps = 1
	}

	rng := rand.New(rand.NewSource(1))
	data := syntheticDataset(rng, benchTasks, benchSamples, benchDim)
	opts := gp.FitOptions{Q: benchQ, NumStarts: 2, MaxIter: 8, Seed: 3}

	var rep report
	rep.Config.Tasks = benchTasks
	rep.Config.SamplesEach = benchSamples
	rep.Config.TotalSamples = data.TotalSamples()
	rep.Config.Dim = benchDim
	rep.Config.Q = benchQ
	rep.Config.NumStarts = opts.NumStarts
	rep.Config.MaxIter = opts.MaxIter
	rep.Config.GoVersion = runtime.Version()
	rep.Config.GOMAXPROCS = runtime.GOMAXPROCS(0)
	rep.Config.Reps = *reps

	var m1, m4 *gp.LCM
	var err error
	o1 := opts
	o1.Workers = 1
	rep.FitLCMWorkers1NsOp = bestOf(*reps, func() {
		if m1, err = gp.FitLCM(data, o1); err != nil {
			fmt.Fprintln(os.Stderr, "FitLCM workers=1:", err)
			os.Exit(1)
		}
	})
	o4 := opts
	o4.Workers = 4
	rep.FitLCMWorkers4NsOp = bestOf(*reps, func() {
		if m4, err = gp.FitLCM(data, o4); err != nil {
			fmt.Fprintln(os.Stderr, "FitLCM workers=4:", err)
			os.Exit(1)
		}
	})
	// Workers must not change the fitted model (bitwise-deterministic
	// reductions); surface any drift right in the report.
	rep.FitLCMWorkersLogLikAbs = math.Abs(m1.LogLik - m4.LogLik)

	xs := make([][]float64, batchPoints)
	for k := range xs {
		x := make([]float64, benchDim)
		for d := range x {
			x[d] = rng.Float64()
		}
		xs[k] = x
	}
	rep.PredictNsOp = bestOf(*reps, func() {
		for _, x := range xs {
			m1.Predict(0, x)
		}
	}) / int64(len(xs))

	ws := m1.NewPredictWorkspace()
	means := make([]float64, len(xs))
	vars := make([]float64, len(xs))
	rep.PredictBatchNsPerPoint = bestOf(*reps, func() {
		m1.PredictBatch(0, xs, means, vars, ws)
	}) / int64(len(xs))
	rep.PredictIntoAllocsPerOp = testing.AllocsPerRun(200, func() {
		m1.PredictInto(ws, 0, xs[0])
	})

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "marshal:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "write:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n%s", *out, buf)
}
