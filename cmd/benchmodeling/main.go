// Command benchmodeling times the modeling-phase hot path of the tuner at the
// paper's Table 3 regime (δ=4 tasks, n≈300 total samples, β=4 tuning
// parameters, Q=3 latent functions) and writes the measurements to
// BENCH_MODELING.json so modeling-phase regressions show up in review diffs.
//
// It exercises the exported surface only: FitLCM at 1 and 4 workers (the
// likelihood/gradient engine, parallel blocked Cholesky and inverse underneath)
// and the two prediction paths (allocating Predict vs workspace PredictBatch,
// the latter driving the search phase). The per-evaluation gradient
// engine-vs-reference comparison lives in internal/gp's benchmarks:
//
//	go test ./internal/gp/ -run XXX -bench LCMLogLikGrad
//
// It also runs an n-sweep (-sweep, default 300,3000,30000 total samples)
// comparing the three ways the tuner can absorb one generation's batch of
// new observations: a full exact refit (O(n³)), the incremental Cholesky
// extension behind Options.RefitEvery (O(k·n²)), and the sparse "sgp"
// backend (O(k·m²), m inducing points). The exact paths are skipped above
// -exact-cap samples, where the dense n×n factorization stops being
// realistic; sgp runs the whole sweep.
//
// Usage: go run ./cmd/benchmodeling [-o BENCH_MODELING.json] [-reps 3]
//
//	[-sweep 300,3000,30000] [-sweep-reps 1] [-exact-cap 4000]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/gp"
	"repro/internal/surrogate"
)

const (
	benchTasks   = 4
	benchSamples = 75 // n = 300 total
	benchDim     = 4
	benchQ       = 3
	batchPoints  = 256
)

type report struct {
	Config struct {
		Tasks        int    `json:"tasks"`
		SamplesEach  int    `json:"samples_per_task"`
		TotalSamples int    `json:"total_samples"`
		Dim          int    `json:"dim"`
		Q            int    `json:"q"`
		NumStarts    int    `json:"num_starts"`
		MaxIter      int    `json:"max_iter"`
		GoVersion    string `json:"go_version"`
		GOMAXPROCS   int    `json:"gomaxprocs"`
		Reps         int    `json:"reps"`
	} `json:"config"`
	FitLCMWorkers1NsOp     int64   `json:"fit_lcm_workers1_ns_op"`
	FitLCMWorkers4NsOp     int64   `json:"fit_lcm_workers4_ns_op"`
	FitLCMWorkersLogLikAbs float64 `json:"fit_lcm_workers_loglik_absdiff"`
	PredictNsOp            int64   `json:"predict_ns_op"`
	PredictBatchNsPerPoint int64   `json:"predict_batch_ns_per_point"`
	PredictIntoAllocsPerOp float64 `json:"predict_into_allocs_per_op"`

	Sweep []sweepPoint `json:"sweep,omitempty"`
}

// sweepBackend times one way of running a modeling phase at a given history
// size: the initial fit, absorbing one generation's batch of new points
// (a full refit pays FitNs again; an incremental/sparse model pays
// AppendBatchNs), and the per-point prediction cost that drives the search
// phase.
type sweepBackend struct {
	FitNs            int64 `json:"fit_ns"`
	AppendBatchNs    int64 `json:"append_batch_ns"`
	PredictNsPerWork int64 `json:"predict_ns_per_point"`
}

// sweepPoint is one n of the sweep. IncrementalSpeedup is the headline
// ratio: how much cheaper absorbing one generation incrementally is than
// refitting from scratch (exact.fit_ns / exact.append_batch_ns).
type sweepPoint struct {
	TotalSamples       int           `json:"total_samples"`
	PerTask            int           `json:"samples_per_task"`
	AppendBatch        int           `json:"append_batch"`
	Reps               int           `json:"reps"`
	Exact              *sweepBackend `json:"exact,omitempty"`
	SGP                *sweepBackend `json:"sgp"`
	SGPInducing        int           `json:"sgp_inducing"`
	ExactSkipped       string        `json:"exact_skipped,omitempty"`
	IncrementalSpeedup float64       `json:"incremental_vs_refit_speedup,omitempty"`
}

func syntheticDataset(rng *rand.Rand, tasks, samples, dim int) *gp.Dataset {
	d := &gp.Dataset{Dim: dim, X: make([][][]float64, tasks), Y: make([][]float64, tasks)}
	for i := 0; i < tasks; i++ {
		for j := 0; j < samples; j++ {
			x := make([]float64, dim)
			for k := range x {
				x[k] = rng.Float64()
			}
			y := math.Sin(2*math.Pi*x[0]) + float64(i)*0.3*math.Cos(2*math.Pi*x[1]) + 0.05*rng.NormFloat64()
			d.X[i] = append(d.X[i], x)
			d.Y[i] = append(d.Y[i], y)
		}
	}
	return d
}

// best-of-reps wall time for one call of fn, in ns. Minimum over repetitions
// is the standard noise filter for single-machine timings.
func bestOf(reps int, fn func()) int64 {
	best := int64(math.MaxInt64)
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		fn()
		if d := time.Since(t0).Nanoseconds(); d < best {
			best = d
		}
	}
	return best
}

// parseSweep parses the comma-separated -sweep list of total sample counts.
func parseSweep(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 2*benchTasks {
			return nil, fmt.Errorf("bad -sweep entry %q (want integers ≥ %d)", f, 2*benchTasks)
		}
		out = append(out, n)
	}
	return out, nil
}

// predictCost times allocation-free posterior evaluation per point — the
// search phase's inner loop — over a fixed probe set.
func predictCost(m surrogate.Model, rng *rand.Rand, reps int) int64 {
	const probes = 64
	xs := make([][]float64, probes)
	for k := range xs {
		x := make([]float64, benchDim)
		for d := range x {
			x[d] = rng.Float64()
		}
		xs[k] = x
	}
	ws := m.NewWorkspace()
	return bestOf(reps, func() {
		for k, x := range xs {
			m.PredictInto(ws, k%benchTasks, x)
		}
	}) / probes
}

// freshBatch draws one generation's worth of new observations: one point
// per task, the shape a RefitEvery append phase hands the model.
func freshBatch(rng *rand.Rand) *surrogate.Dataset {
	delta := &surrogate.Dataset{
		Dim: benchDim,
		X:   make([][][]float64, benchTasks),
		Y:   make([][]float64, benchTasks),
	}
	for i := 0; i < benchTasks; i++ {
		x := make([]float64, benchDim)
		for d := range x {
			x[d] = rng.Float64()
		}
		delta.X[i] = [][]float64{x}
		delta.Y[i] = []float64{math.Sin(2*math.Pi*x[0]) + 0.05*rng.NormFloat64()}
	}
	return delta
}

// sweepBackendRun fits kind on the dataset and times fit, one-generation
// append, and per-point prediction. Each append reuses the same model (the
// history grows by benchTasks per rep — exactly how a tuning run uses it).
func sweepBackendRun(kind string, data *surrogate.Dataset, rng *rand.Rand, reps int) (*sweepBackend, error) {
	f, err := surrogate.New(kind)
	if err != nil {
		return nil, err
	}
	opts := surrogate.FitOptions{
		Q: benchQ, NumStarts: 1, MaxIter: 2,
		Workers: runtime.GOMAXPROCS(0), Seed: 3,
	}
	var model surrogate.Model
	fitNs := bestOf(reps, func() {
		if model, err = f.Fit(data, opts); err != nil {
			panic(err)
		}
	})
	inc := model.(surrogate.Incremental)
	appendNs := int64(math.MaxInt64)
	for r := 0; r < reps; r++ {
		delta := freshBatch(rng)
		t0 := time.Now()
		if err := inc.Append(delta, opts.Workers); err != nil {
			return nil, fmt.Errorf("%s append: %w", kind, err)
		}
		if d := time.Since(t0).Nanoseconds(); d < appendNs {
			appendNs = d
		}
	}
	return &sweepBackend{
		FitNs:            fitNs,
		AppendBatchNs:    appendNs,
		PredictNsPerWork: predictCost(model, rng, reps),
	}, nil
}

// runSweep measures the n-sweep: exact refit vs incremental append vs sgp at
// each history size. Sizes above exactCap skip the exact backend — the dense
// n×n factorization (and its O(n²) memory) is the very wall the sweep
// documents.
func runSweep(sizes []int, reps, exactCap int) ([]sweepPoint, error) {
	var points []sweepPoint
	for _, total := range sizes {
		perTask := total / benchTasks
		rng := rand.New(rand.NewSource(11))
		data := syntheticDataset(rng, benchTasks, perTask, benchDim)
		pt := sweepPoint{
			TotalSamples: perTask * benchTasks,
			PerTask:      perTask,
			AppendBatch:  benchTasks,
			Reps:         reps,
			SGPInducing:  128,
		}
		if total <= exactCap {
			exact, err := sweepBackendRun(surrogate.KindLCM, data, rng, reps)
			if err != nil {
				return nil, err
			}
			pt.Exact = exact
			if exact.AppendBatchNs > 0 {
				pt.IncrementalSpeedup = float64(exact.FitNs) / float64(exact.AppendBatchNs)
			}
		} else {
			pt.ExactSkipped = fmt.Sprintf("dense %d×%d factorization exceeds -exact-cap %d", total, total, exactCap)
		}
		sgp, err := sweepBackendRun(surrogate.KindSGP, data, rng, reps)
		if err != nil {
			return nil, err
		}
		pt.SGP = sgp
		fmt.Printf("sweep n=%d done\n", pt.TotalSamples)
		points = append(points, pt)
	}
	return points, nil
}

func main() {
	out := flag.String("o", "BENCH_MODELING.json", "output path")
	reps := flag.Int("reps", 3, "repetitions per measurement (best is kept)")
	sweepList := flag.String("sweep", "300,3000,30000", "comma-separated total sample counts for the scaling sweep (empty disables it)")
	sweepReps := flag.Int("sweep-reps", 1, "repetitions per sweep measurement")
	exactCap := flag.Int("exact-cap", 4000, "largest total sample count the exact O(n³) backends are timed at")
	flag.Parse()
	if *reps < 1 {
		*reps = 1
	}
	if *sweepReps < 1 {
		*sweepReps = 1
	}
	sizes, err := parseSweep(*sweepList)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	rng := rand.New(rand.NewSource(1))
	data := syntheticDataset(rng, benchTasks, benchSamples, benchDim)
	opts := gp.FitOptions{Q: benchQ, NumStarts: 2, MaxIter: 8, Seed: 3}

	var rep report
	rep.Config.Tasks = benchTasks
	rep.Config.SamplesEach = benchSamples
	rep.Config.TotalSamples = data.TotalSamples()
	rep.Config.Dim = benchDim
	rep.Config.Q = benchQ
	rep.Config.NumStarts = opts.NumStarts
	rep.Config.MaxIter = opts.MaxIter
	rep.Config.GoVersion = runtime.Version()
	rep.Config.GOMAXPROCS = runtime.GOMAXPROCS(0)
	rep.Config.Reps = *reps

	var m1, m4 *gp.LCM
	o1 := opts
	o1.Workers = 1
	rep.FitLCMWorkers1NsOp = bestOf(*reps, func() {
		if m1, err = gp.FitLCM(data, o1); err != nil {
			fmt.Fprintln(os.Stderr, "FitLCM workers=1:", err)
			os.Exit(1)
		}
	})
	o4 := opts
	o4.Workers = 4
	rep.FitLCMWorkers4NsOp = bestOf(*reps, func() {
		if m4, err = gp.FitLCM(data, o4); err != nil {
			fmt.Fprintln(os.Stderr, "FitLCM workers=4:", err)
			os.Exit(1)
		}
	})
	// Workers must not change the fitted model (bitwise-deterministic
	// reductions); surface any drift right in the report.
	rep.FitLCMWorkersLogLikAbs = math.Abs(m1.LogLik - m4.LogLik)

	xs := make([][]float64, batchPoints)
	for k := range xs {
		x := make([]float64, benchDim)
		for d := range x {
			x[d] = rng.Float64()
		}
		xs[k] = x
	}
	rep.PredictNsOp = bestOf(*reps, func() {
		for _, x := range xs {
			m1.Predict(0, x)
		}
	}) / int64(len(xs))

	ws := m1.NewPredictWorkspace()
	means := make([]float64, len(xs))
	vars := make([]float64, len(xs))
	rep.PredictBatchNsPerPoint = bestOf(*reps, func() {
		m1.PredictBatch(0, xs, means, vars, ws)
	}) / int64(len(xs))
	rep.PredictIntoAllocsPerOp = testing.AllocsPerRun(200, func() {
		m1.PredictInto(ws, 0, xs[0])
	})

	if len(sizes) > 0 {
		sweep, err := runSweep(sizes, *sweepReps, *exactCap)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sweep:", err)
			os.Exit(1)
		}
		rep.Sweep = sweep
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "marshal:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "write:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n%s", *out, buf)
}
