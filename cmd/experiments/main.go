// Command experiments regenerates the paper's tables and figures on the
// simulated substrates (see DESIGN.md for the per-experiment index).
//
// Usage:
//
//	experiments -list
//	experiments -run Fig6a,Tab4 [-quick] [-seed N] [-workers N]
//	experiments -run all -quick
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		runIDs  = flag.String("run", "", "comma-separated experiment IDs, or 'all'")
		list    = flag.Bool("list", false, "list available experiments")
		quick   = flag.Bool("quick", false, "small-scale variants (the artifact's *_exp analogue)")
		seed    = flag.Int64("seed", 2021, "random seed")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel workers")
	)
	flag.Parse()

	specs := experiments.All()
	if *list || *runIDs == "" {
		fmt.Println("Available experiments:")
		for _, s := range specs {
			fmt.Printf("  %-6s %s\n", s.ID, s.Description)
		}
		if *runIDs == "" {
			fmt.Println("\nRun with -run <ID>[,<ID>...] or -run all (add -quick for small scale).")
		}
		return
	}

	var selected []experiments.Spec
	if *runIDs == "all" {
		selected = specs
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			id = strings.TrimSpace(id)
			spec := experiments.Find(id)
			if spec == nil {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				os.Exit(1)
			}
			selected = append(selected, *spec)
		}
	}

	for _, s := range selected {
		fmt.Printf("=== %s: %s (quick=%v) ===\n", s.ID, s.Description, *quick)
		start := time.Now()
		s.Run(os.Stdout, *quick, *seed, *workers)
		fmt.Printf("=== %s done in %v ===\n\n", s.ID, time.Since(start).Round(time.Millisecond))
	}
}
