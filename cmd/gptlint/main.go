// Command gptlint enforces the repo's determinism and concurrency
// invariants (DESIGN.md §7, §12): no global math/rand, no wall-clock reads
// in the numeric core (directly or through any call chain), no map-range
// accumulation, no goroutines outside internal/mpx, no float ==, no dropped
// errors, no locks held across blocking operations, no inconsistent lock
// orders, no join-free goroutines, and no allocations on //gptlint:hotpath
// paths. Built entirely on the stdlib toolchain — go/parser, go/types,
// go/importer — per the repo's stdlib-only rule.
//
// Usage:
//
//	gptlint [-json] [-github] [-graph] [-rules r1,r2] [-C dir]
//	        [-numeric paths] [-goallow paths] [patterns...]
//
// Patterns default to ./... and are resolved against the enclosing module.
// Exit status: 0 clean, 1 diagnostics reported, 2 load/type-check failure
// (or an unknown rule name).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	github := flag.Bool("github", false, "emit GitHub Actions ::error annotations alongside plain diagnostics")
	graph := flag.Bool("graph", false, "dump the interprocedural call graph with per-function effect summaries and exit")
	rules := flag.String("rules", "", "comma-separated rule names to run (default: all; see -rules=list)")
	chdir := flag.String("C", "", "resolve patterns against this directory's module instead of the cwd's")
	numeric := flag.String("numeric", "", "comma-separated import paths treated as the deterministic numeric core (default: the repo's gp,la,core,opt,acq,sample,sparse)")
	goallow := flag.String("goallow", "", "comma-separated import paths allowed to contain go statements (default: the repo's internal/mpx)")
	flag.Parse()

	if *rules == "list" {
		for _, r := range lint.KnownRules() {
			fmt.Println(r)
		}
		return
	}

	dir := *chdir
	if dir == "" {
		dir = "."
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader(dir)
	if err != nil {
		fatal(err)
	}
	cfg := lint.DefaultConfig(loader.Module)
	if *numeric != "" {
		cfg.NumericPackages = splitList(*numeric)
	}
	if *goallow != "" {
		cfg.GoroutineAllowed = splitList(*goallow)
	}
	if *rules != "" {
		cfg.Rules = splitList(*rules)
		known := make(map[string]bool)
		for _, r := range lint.KnownRules() {
			known[r] = true
		}
		for _, r := range cfg.Rules {
			if !known[r] {
				fatal(fmt.Errorf("unknown rule %q (run -rules=list for the catalog)", r))
			}
		}
	}

	pkgs, err := loader.Load(patterns)
	if err != nil {
		fatal(err)
	}

	if *graph {
		for _, line := range lint.GraphDump(pkgs, cfg) {
			fmt.Println(line)
		}
		return
	}

	diags := lint.Run(pkgs, cfg)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
			if *github {
				// Workflow-command annotations surface each finding on the
				// PR diff; the message must stay single-line.
				fmt.Printf("::error file=%s,line=%d,col=%d,title=gptlint %s::%s\n",
					d.File, d.Line, d.Col, d.Rule, strings.ReplaceAll(d.Msg, "\n", " "))
			}
		}
		if len(diags) > 0 {
			fmt.Fprintf(os.Stderr, "gptlint: %d problem(s) in %d package(s)\n", len(diags), len(pkgs))
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gptlint:", err)
	os.Exit(2)
}
