// Command gptlint enforces the repo's determinism and concurrency
// invariants (DESIGN.md §7): no global math/rand, no wall-clock reads in
// the numeric core, no map-range accumulation, no goroutines outside
// internal/mpx, no float ==, no dropped errors. Built entirely on the
// stdlib toolchain — go/parser, go/types, go/importer — per the repo's
// stdlib-only rule.
//
// Usage:
//
//	gptlint [-json] [-C dir] [-numeric paths] [-goallow paths] [patterns...]
//
// Patterns default to ./... and are resolved against the enclosing module.
// Exit status: 0 clean, 1 diagnostics reported, 2 load/type-check failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	chdir := flag.String("C", "", "resolve patterns against this directory's module instead of the cwd's")
	numeric := flag.String("numeric", "", "comma-separated import paths treated as the deterministic numeric core (default: the repo's gp,la,core,opt,acq,sample,sparse)")
	goallow := flag.String("goallow", "", "comma-separated import paths allowed to contain go statements (default: the repo's internal/mpx)")
	flag.Parse()

	dir := *chdir
	if dir == "" {
		dir = "."
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := lint.NewLoader(dir)
	if err != nil {
		fatal(err)
	}
	cfg := lint.DefaultConfig(loader.Module)
	if *numeric != "" {
		cfg.NumericPackages = splitList(*numeric)
	}
	if *goallow != "" {
		cfg.GoroutineAllowed = splitList(*goallow)
	}

	pkgs, err := loader.Load(patterns)
	if err != nil {
		fatal(err)
	}
	diags := lint.Run(pkgs, cfg)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
		if len(diags) > 0 {
			fmt.Fprintf(os.Stderr, "gptlint: %d problem(s) in %d package(s)\n", len(diags), len(pkgs))
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gptlint:", err)
	os.Exit(2)
}
