// Command gptune-router fronts a set of gptuned replicas with consistent-
// hash routing: every study lives on exactly one replica (its rendezvous
// owner among the healthy nodes), clients talk to the router's single
// address, and background health probes eject replicas that die or start
// draining. See internal/router for the routing and health semantics.
//
// Usage:
//
//	gptune-router -addr :8730 -replicas http://n1:8731,http://n2:8731,http://n3:8731
//
// The proxied API is gptuned's own (see cmd/gptuned); the router adds only
// its own GET /healthz, which reports per-replica health and answers 503
// when no replica is routable.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/router"
)

func main() {
	var (
		addr      = flag.String("addr", ":8730", "listen address")
		replicas  = flag.String("replicas", "", "comma-separated gptuned base URLs (required)")
		probe     = flag.Duration("probe", time.Second, "health-probe period")
		threshold = flag.Int("fail-threshold", 3, "consecutive probe failures that eject a replica")
	)
	flag.Parse()

	var reps []string
	for _, r := range strings.Split(*replicas, ",") {
		if r = strings.TrimSpace(r); r != "" {
			reps = append(reps, r)
		}
	}
	rt, err := router.New(router.Config{Replicas: reps, ProbeEvery: *probe, FailThreshold: *threshold})
	if err != nil {
		fmt.Fprintln(os.Stderr, "gptune-router:", err)
		os.Exit(1)
	}
	rt.Start()
	defer rt.Stop()

	hs := &http.Server{
		Addr:    *addr,
		Handler: rt.Handler(),
		// No write timeout: sync suggests legitimately block through a
		// replica's modeling phase, same policy as gptuned itself.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	drained := make(chan struct{})
	go func() { //gptlint:ignore no-stray-goroutines shutdown watcher; joined via the drained channel before exit
		defer close(drained)
		<-ctx.Done()
		dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if serr := hs.Shutdown(dctx); serr != nil {
			fmt.Fprintln(os.Stderr, "gptune-router: drain deadline expired, forcing connections closed:", serr)
			_ = hs.Close()
		}
	}()

	fmt.Println("gptune-router: listening on", *addr, "routing", len(reps), "replicas")
	err = hs.ListenAndServe()
	if err == http.ErrServerClosed {
		<-drained
		err = nil
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gptune-router:", err)
		os.Exit(1)
	}
}
