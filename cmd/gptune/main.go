// Command gptune tunes one of the registered application simulators with
// any of the supported autotuners, optionally archiving evaluations in a
// history database (the paper's "tuning improves over time" workflow).
//
// Usage:
//
//	gptune -app analytical -delta 4 -eps 20
//	gptune -app qr -tuner opentuner -eps 10
//	gptune -app superlu-mo -eps 40 -history runs.json
//	gptune -app qr -eps 20 -checkpoint run.ckpt
//	gptune -app qr -eps 20 -resume run.ckpt          # after a crash
//	gptune -app qr -eps 20 -surrogate rf             # random-forest surrogate
//	gptune -app qr -eps 20 -checkpoint b.ckpt -warm a.ckpt  # transfer hyperparameters
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/gptune"
	"repro/internal/apps/analytical"
	"repro/internal/apps/hypre"
	"repro/internal/apps/mhd"
	"repro/internal/apps/scalapack"
	"repro/internal/apps/superlu"
)

// appProblem returns the problem for a registered application name.
func appProblem(name string) (*gptune.Problem, error) {
	switch name {
	case "analytical":
		return analytical.Problem(), nil
	case "qr", "pdgeqrf":
		return scalapack.NewQR(16, 20000).Problem(), nil
	case "eigen", "pdsyevx":
		return scalapack.NewEigen(1, 7000).Problem(), nil
	case "superlu":
		return superlu.New(32).Problem(), nil
	case "superlu-mo":
		return superlu.New(8).ProblemMO(), nil
	case "hypre":
		return hypre.New(1).Problem(), nil
	case "m3dc1":
		return mhd.New(mhd.M3DC1).Problem(), nil
	case "nimrod":
		return mhd.New(mhd.NIMROD).Problem(), nil
	}
	return nil, fmt.Errorf("unknown app %q (available: analytical, qr, eigen, superlu, superlu-mo, hypre, m3dc1, nimrod)", name)
}

func main() {
	var (
		app     = flag.String("app", "analytical", "application to tune")
		tuner   = flag.String("tuner", "gptune", "tuner: gptune (multitask MLA), "+strings.Join(gptune.TunerNames(), ", "))
		delta   = flag.Int("delta", 3, "number of tasks δ (sampled from the task space)")
		eps     = flag.Int("eps", 20, "function evaluations per task ε_tot")
		seed    = flag.Int64("seed", 1, "random seed")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel workers")
		history = flag.String("history", "", "history database path (loaded and updated)")
		ckpt    = flag.String("checkpoint", "", "write-ahead log path: every evaluation is persisted as it completes (gptune tuner only)")
		resume  = flag.String("resume", "", "checkpoint path of a killed run to resume (same app, seed and flags required)")
		surr    = flag.String("surrogate", "", "surrogate backend: "+strings.Join(gptune.SurrogateKinds(), ", ")+" (default lcm; gptune tuner only)")
		refit   = flag.Int("refit-every", 0, "relearn surrogate hyperparameters every k-th generation, extending the model incrementally in between (0 or 1 = every generation; gptune tuner only)")
		induce  = flag.Int("inducing", 0, "inducing points per task for -surrogate sgp (0 = default 128)")
		warm    = flag.String("warm", "", "checkpoint path of a previous run whose fitted-model snapshots warm-start this run's modeling phases")
	)
	flag.Parse()

	p, err := appProblem(*app)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	tasks, err := gptune.SampleTasks(p, *delta, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("Tuning %s with %s: δ=%d tasks, ε_tot=%d\n", p.Name, *tuner, *delta, *eps)
	if *tuner == "gptune" {
		cp, err := openCheckpoint(*ckpt, *resume, p.Name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		opts := gptune.Options{
			EpsTot: *eps, Seed: *seed, Workers: *workers, LogY: true,
			Surrogate: *surr, RefitEvery: *refit, Inducing: *induce,
		}
		if cp != nil {
			defer cp.Close()
			opts.Checkpoint = cp
			// Snapshot every modeling phase's fitted surrogate into the same
			// log, so a later run can -warm from it.
			opts.Transfer = cp
		}
		if *warm != "" {
			snaps, err := gptune.LoadModelSnapshots(*warm)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("warm start: %d model snapshots from %s\n", len(snaps), *warm)
			opts.WarmStart = snaps
		}
		// Full multitask MLA across all tasks.
		res, err := gptune.Tune(p, tasks, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if cp != nil {
			fmt.Printf("checkpoint: %d evaluations logged\n", cp.Logged())
		}
		for i, tr := range res.Tasks {
			x, y := tr.Best()
			fmt.Printf("task %d: %s\n", i, p.Tasks.Describe(tr.Task))
			fmt.Printf("  Popt: %s\n  Oopt: %v\n", p.Tuning.Describe(x), y)
			if p.Outputs.Dim() > 1 {
				fmt.Printf("  Pareto front: %d points\n", len(tr.ParetoFront()))
			}
		}
		fmt.Printf("stats: objective=%v modeling=%v search=%v total=%v evals=%d\n",
			res.Stats.Objective, res.Stats.Modeling, res.Stats.Search,
			res.Stats.Total, res.Stats.NumEvals)
		saveHistory(*history, p.Name, res)
		return
	}

	if *ckpt != "" || *resume != "" || *surr != "" || *warm != "" {
		fmt.Fprintln(os.Stderr, "-checkpoint/-resume/-surrogate/-warm require the gptune tuner")
		os.Exit(1)
	}
	tn, err := gptune.NewTuner(*tuner)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for i, task := range tasks {
		tr, err := tn.Tune(p, task, *eps, *seed+int64(i))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		x, y := tr.Best()
		fmt.Printf("task %d: %s\n  Popt: %s\n  Oopt: %v\n",
			i, p.Tasks.Describe(task), p.Tuning.Describe(x), y)
	}
}

// openCheckpoint interprets the -checkpoint/-resume flags: -resume reopens
// a killed run's log for deterministic replay, -checkpoint starts a fresh
// one, and together they must name the same path.
func openCheckpoint(ckpt, resume, problem string) (*gptune.Checkpointer, error) {
	if resume != "" {
		if ckpt != "" && ckpt != resume {
			return nil, fmt.Errorf("-checkpoint %s and -resume %s name different paths", ckpt, resume)
		}
		cp, err := gptune.Resume(resume, gptune.CheckpointOptions{Problem: problem})
		if err != nil {
			return nil, err
		}
		fmt.Printf("resuming from %s: %d evaluations already logged\n", resume, cp.Logged())
		return cp, nil
	}
	if ckpt == "" {
		return nil, nil
	}
	return gptune.NewCheckpoint(ckpt, gptune.CheckpointOptions{Problem: problem})
}

func saveHistory(path, problem string, res *gptune.Result) {
	if path == "" {
		return
	}
	db, err := gptune.LoadHistory(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "history: %v\n", err)
		return
	}
	gptune.RecordResult(db, problem, res)
	if err := db.Save(path); err != nil {
		fmt.Fprintf(os.Stderr, "history: %v\n", err)
		return
	}
	fmt.Printf("history: %d records in %s\n", db.Len(), path)
}
