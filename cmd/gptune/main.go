// Command gptune tunes any workload from the scenario registry
// (internal/bench) with any of the supported autotuners, optionally
// archiving evaluations in a history database (the paper's "tuning improves
// over time" workflow). `gptune -app list` prints the catalog.
//
// Usage:
//
//	gptune -app list                                 # scenario catalog
//	gptune -app analytical -delta 4 -eps 20
//	gptune -app qr -app-param nodes=4 -eps 20
//	gptune -app gemm -tuner opentuner -eps 10
//	gptune -app superlu-mo -eps 40 -history runs.json
//	gptune -app qr -eps 20 -checkpoint run.ckpt
//	gptune -app qr -eps 20 -resume run.ckpt          # after a crash
//	gptune -app qr -eps 20 -surrogate rf             # random-forest surrogate
//	gptune -app qr -eps 20 -checkpoint b.ckpt -warm a.ckpt  # transfer hyperparameters
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"repro/gptune"
	"repro/internal/bench"
	_ "repro/internal/bench/all"
)

// appProblem resolves the scenario through the registry — the registry, not
// this command, is the source of truth for what is tunable.
func appProblem(name, paramFlag string) (*gptune.Problem, error) {
	sc, err := bench.Get(name)
	if err != nil {
		return nil, err
	}
	params, err := parseParams(paramFlag)
	if err != nil {
		return nil, err
	}
	return sc.Problem(params)
}

// parseParams parses "-app-param k=v,k=v" overrides.
func parseParams(s string) (bench.Params, error) {
	if s == "" {
		return nil, nil
	}
	p := make(bench.Params)
	for _, kv := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("-app-param %q: want key=value[,key=value...]", kv)
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return nil, fmt.Errorf("-app-param %s: %v", k, err)
		}
		p[strings.TrimSpace(k)] = f
	}
	return p, nil
}

// printCatalog writes the registry catalog for -app list.
func printCatalog(w *os.File) error {
	infos, err := bench.Catalog()
	if err != nil {
		return err
	}
	for _, in := range infos {
		constrained := ""
		if in.Constrained {
			constrained = ", constrained"
		}
		optimum := ""
		if in.HasOptimum {
			optimum = ", known optimum"
		}
		fmt.Fprintf(w, "%-15s %s\n", in.Name, in.Description)
		fmt.Fprintf(w, "%-15s   α=%d tasks, β=%d tuning, γ=%d outputs%s%s\n",
			"", in.TaskDim, in.TuningDim, in.OutputDim, constrained, optimum)
		if len(in.Aliases) > 0 {
			fmt.Fprintf(w, "%-15s   aliases: %s\n", "", strings.Join(in.Aliases, ", "))
		}
		for _, pd := range in.Params {
			fmt.Fprintf(w, "%-15s   -app-param %s=%g  %s\n", "", pd.Name, pd.Default, pd.Help)
		}
	}
	return nil
}

func main() {
	var (
		app      = flag.String("app", "analytical", "scenario to tune: "+strings.Join(bench.Names(), ", ")+" ('list' prints the catalog)")
		appParam = flag.String("app-param", "", "scenario parameter overrides, key=value[,key=value...] (see -app list)")
		tuner    = flag.String("tuner", "gptune", "tuner: gptune (multitask MLA), "+strings.Join(gptune.TunerNames(), ", "))
		delta    = flag.Int("delta", 3, "number of tasks δ (sampled from the task space)")
		eps      = flag.Int("eps", 20, "function evaluations per task ε_tot")
		seed     = flag.Int64("seed", 1, "random seed")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel workers")
		history  = flag.String("history", "", "history database path (loaded and updated)")
		ckpt     = flag.String("checkpoint", "", "write-ahead log path: every evaluation is persisted as it completes (gptune tuner only)")
		resume   = flag.String("resume", "", "checkpoint path of a killed run to resume (same app, seed and flags required)")
		surr     = flag.String("surrogate", "", "surrogate backend: "+strings.Join(gptune.SurrogateKinds(), ", ")+" (default lcm; gptune tuner only)")
		refit    = flag.Int("refit-every", 0, "relearn surrogate hyperparameters every k-th generation, extending the model incrementally in between (0 or 1 = every generation; gptune tuner only)")
		induce   = flag.Int("inducing", 0, "inducing points per task for -surrogate sgp (0 = default 128)")
		warm     = flag.String("warm", "", "checkpoint path of a previous run whose fitted-model snapshots warm-start this run's modeling phases")
	)
	flag.Parse()

	if *app == "list" {
		if err := printCatalog(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	p, err := appProblem(*app, *appParam)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	tasks, err := gptune.SampleTasks(p, *delta, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("Tuning %s with %s: δ=%d tasks, ε_tot=%d\n", p.Name, *tuner, *delta, *eps)
	if *tuner == "gptune" {
		cp, err := openCheckpoint(*ckpt, *resume, p.Name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		opts := gptune.Options{
			EpsTot: *eps, Seed: *seed, Workers: *workers, LogY: true,
			Surrogate: *surr, RefitEvery: *refit, Inducing: *induce,
		}
		if cp != nil {
			defer cp.Close()
			opts.Checkpoint = cp
			// Snapshot every modeling phase's fitted surrogate into the same
			// log, so a later run can -warm from it.
			opts.Transfer = cp
		}
		if *warm != "" {
			snaps, err := gptune.LoadModelSnapshots(*warm)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("warm start: %d model snapshots from %s\n", len(snaps), *warm)
			opts.WarmStart = snaps
		}
		// Full multitask MLA across all tasks.
		res, err := gptune.Tune(p, tasks, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if cp != nil {
			fmt.Printf("checkpoint: %d evaluations logged\n", cp.Logged())
		}
		for i, tr := range res.Tasks {
			x, y := tr.Best()
			fmt.Printf("task %d: %s\n", i, p.Tasks.Describe(tr.Task))
			fmt.Printf("  Popt: %s\n  Oopt: %v\n", p.Tuning.Describe(x), y)
			if p.Outputs.Dim() > 1 {
				fmt.Printf("  Pareto front: %d points\n", len(tr.ParetoFront()))
			}
		}
		fmt.Printf("stats: objective=%v modeling=%v search=%v total=%v evals=%d\n",
			res.Stats.Objective, res.Stats.Modeling, res.Stats.Search,
			res.Stats.Total, res.Stats.NumEvals)
		saveHistory(*history, p.Name, res)
		return
	}

	if *ckpt != "" || *resume != "" || *surr != "" || *warm != "" {
		fmt.Fprintln(os.Stderr, "-checkpoint/-resume/-surrogate/-warm require the gptune tuner")
		os.Exit(1)
	}
	tn, err := gptune.NewTuner(*tuner)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for i, task := range tasks {
		tr, err := tn.Tune(p, task, *eps, *seed+int64(i))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		x, y := tr.Best()
		fmt.Printf("task %d: %s\n  Popt: %s\n  Oopt: %v\n",
			i, p.Tasks.Describe(task), p.Tuning.Describe(x), y)
	}
}

// openCheckpoint interprets the -checkpoint/-resume flags: -resume reopens
// a killed run's log for deterministic replay, -checkpoint starts a fresh
// one, and together they must name the same path.
func openCheckpoint(ckpt, resume, problem string) (*gptune.Checkpointer, error) {
	if resume != "" {
		if ckpt != "" && ckpt != resume {
			return nil, fmt.Errorf("-checkpoint %s and -resume %s name different paths", ckpt, resume)
		}
		cp, err := gptune.Resume(resume, gptune.CheckpointOptions{Problem: problem})
		if err != nil {
			return nil, err
		}
		fmt.Printf("resuming from %s: %d evaluations already logged\n", resume, cp.Logged())
		return cp, nil
	}
	if ckpt == "" {
		return nil, nil
	}
	return gptune.NewCheckpoint(ckpt, gptune.CheckpointOptions{Problem: problem})
}

func saveHistory(path, problem string, res *gptune.Result) {
	if path == "" {
		return
	}
	db, err := gptune.LoadHistory(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "history: %v\n", err)
		return
	}
	gptune.RecordResult(db, problem, res)
	if err := db.Save(path); err != nil {
		fmt.Fprintf(os.Stderr, "history: %v\n", err)
		return
	}
	fmt.Printf("history: %d records in %s\n", db.Len(), path)
}
