// Command gptuned serves GPTune studies over HTTP (the ask/tell workflow):
// clients create a study, ask for configurations to run, and report
// measurements back; the server runs the multitask MLA machinery and
// persists every committed observation to a per-study write-ahead log, so
// killing the daemon and restarting it resumes all studies losing at most
// the evaluations that were in flight.
//
// Usage:
//
//	gptuned -addr :8731 -data ./studies
//
// API (JSON bodies):
//
//	POST /studies                  create a study from a StudySpec; a
//	                               "scenario" field names a registry
//	                               workload whose spaces (constraints
//	                               included) are instantiated server-side
//	GET  /studies                  list study names
//	GET  /studies/{s}              progress and status
//	POST /studies/{s}/suggest      next configuration ({"task": n}, -1 = any)
//	POST /studies/{s}/report       {"id", "y"} or {"id", "failed", "error"}
//	GET  /studies/{s}/best         incumbent per task (objective 0)
//	GET  /studies/{s}/pareto       non-dominated set per task
//	GET  /studies/{s}/history      full evaluation history per task
//	GET  /healthz                  liveness
package main

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"flag"

	_ "repro/internal/bench/all" // full workload catalog for scenario studies
	"repro/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8731", "listen address")
		data     = flag.String("data", "gptuned-data", "data directory (study specs + history WALs)")
		slots    = flag.Int("model-slots", 1, "studies allowed to run modeling/search concurrently")
		maxBody  = flag.Int64("max-body", 1<<20, "request body size cap in bytes")
		drainFor = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain timeout")
	)
	flag.Parse()

	srv, err := serve.NewServer(serve.Config{DataDir: *data, ModelSlots: *slots, MaxBodyBytes: *maxBody})
	if err != nil {
		fmt.Fprintln(os.Stderr, "gptuned:", err)
		os.Exit(1)
	}

	hs := &http.Server{
		Addr:    *addr,
		Handler: srv.Handler(),
		// On a synchronous study, suggest can legitimately block while a
		// batch's modeling phase runs (async studies answer 409 +
		// Retry-After instead), so there is no write timeout; slow-client
		// abuse is bounded at the header and idle layers instead.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	drained := make(chan struct{})
	go func() { //gptlint:ignore no-stray-goroutines shutdown watcher; joined via the drained channel before the WALs close
		defer close(drained)
		<-ctx.Done()
		// Flip /healthz to 503 before draining so a router stops routing
		// work here while the existing handlers finish.
		srv.BeginDrain()
		dctx, cancel := context.WithTimeout(context.Background(), *drainFor)
		defer cancel()
		// Shutdown drains in-flight handlers (including modeling-phase
		// suggests); only once they are gone is it safe to close the study
		// WALs. ListenAndServe returns the moment Shutdown *begins*, so
		// main must wait on this goroutine, not on ListenAndServe alone —
		// otherwise srv.Close races handlers still committing to the WALs.
		if serr := hs.Shutdown(dctx); serr != nil {
			// Drain deadline expired with connections still open: force
			// them closed so no handler outlives this point. Their clients
			// see aborted requests; every evaluation already acked is on
			// disk, and a late commit hits the closed WAL's clean error
			// instead of racing the teardown.
			fmt.Fprintln(os.Stderr, "gptuned: drain deadline expired, forcing connections closed:", serr)
			if cerr := hs.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "gptuned: forced close:", cerr)
			}
		}
	}()

	fmt.Println("gptuned: listening on", *addr, "data in", *data)
	err = hs.ListenAndServe()
	if err == http.ErrServerClosed {
		// Graceful path: wait for the watcher to finish draining (or force-
		// closing) every handler before touching the WALs.
		<-drained
	}
	if cerr := srv.Close(); err == nil || err == http.ErrServerClosed {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gptuned:", err)
		os.Exit(1)
	}
}
