// Command histdb inspects and merges GPTune history databases (the paper's
// archive of tuning data across executions).
//
// Usage:
//
//	histdb -db runs.json list
//	histdb -db runs.json stats     # eval/model counts, per-task breakdown, WAL vs snapshot
//	histdb -db runs.json best pdgeqrf
//	histdb -db runs.json merge other.json
//	histdb -db run.ckpt verify     # inspect snapshot + write-ahead log
//	histdb -db run.ckpt compact    # fold the log into the snapshot
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/histdb"
)

func main() {
	var (
		dbPath  = flag.String("db", "gptune-history.json", "history database path")
		problem = flag.String("problem", "", "problem name filter")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: histdb -db <path> {list | best <problem> | merge <other.json> | verify | compact}")
		os.Exit(1)
	}

	// verify and compact act on the snapshot + write-ahead log pair
	// directly, before (or instead of) a plain Load.
	switch args[0] {
	case "verify":
		v, err := histdb.Verify(*dbPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "verify: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%s: %d snapshot records, %d log records", *dbPath, v.SnapshotRecords, v.LogRecords)
		if v.SkippedRecords > 0 {
			fmt.Printf(" (%d already in the snapshot)", v.SkippedRecords)
		}
		if v.TornBytes > 0 {
			fmt.Printf(", torn tail of %d bytes (recoverable: a reopen discards it)", v.TornBytes)
		}
		fmt.Printf("; %d total after recovery\n", v.SnapshotRecords+v.LogRecords-v.SkippedRecords)
		return
	case "compact":
		w, err := histdb.OpenWAL(*dbPath, histdb.WALOptions{})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := w.Compact(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		n := w.Len()
		if err := w.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("compacted %s: %d records in the snapshot, log truncated\n", *dbPath, n)
		return
	}

	db, err := histdb.Load(*dbPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	switch args[0] {
	case "list":
		fmt.Printf("%d records in %s\n", db.Len(), *dbPath)
		probs := map[string]bool{}
		for _, r := range db.Query(*problem, nil) {
			probs[r.Problem] = true
		}
		if *problem == "" {
			// Enumerate problems via a full scan.
			for _, r := range db.Query("", nil) {
				probs[r.Problem] = true
			}
		}
		for p := range probs {
			tasks := db.Tasks(p)
			fmt.Printf("  problem %-16s %d tasks, %d records\n", p, len(tasks), len(db.Query(p, nil)))
		}
	case "best":
		name := *problem
		if len(args) > 1 {
			name = args[1]
		}
		if name == "" {
			fmt.Fprintln(os.Stderr, "usage: histdb -db <path> best <problem>")
			os.Exit(1)
		}
		for _, task := range db.Tasks(name) {
			if r, ok := db.Best(name, task); ok {
				fmt.Printf("  task %v: best %v at config %v (%s)\n",
					task, r.Outputs, r.Config, r.Stamp.Format("2006-01-02 15:04"))
			}
		}
	case "stats":
		printStats(db, *dbPath, *problem)
	case "merge":
		if len(args) < 2 {
			fmt.Fprintln(os.Stderr, "merge requires a second database path")
			os.Exit(1)
		}
		other, err := histdb.Load(args[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		db.Merge(other)
		if err := db.Save(*dbPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("merged %d records from %s; %s now has %d\n", other.Len(), args[1], *dbPath, db.Len())
	default:
		fmt.Fprintf(os.Stderr, "unknown subcommand %q\n", args[0])
		os.Exit(1)
	}
}

// printStats summarizes a database: record counts by kind, the snapshot/WAL
// split, and per problem the per-task evaluation counts with the incumbent
// best output.
func printStats(db *histdb.DB, path, problemFilter string) {
	evals, models := 0, 0
	byKind := map[string]int{}
	probSet := map[string]bool{}
	for _, r := range db.Query(problemFilter, nil) {
		if r.IsEval() {
			evals++
		} else {
			models++
			byKind[r.Surrogate]++
		}
		probSet[r.Problem] = true
	}
	fmt.Printf("%s: %d records (%d evaluations, %d model snapshots)\n", path, evals+models, evals, models)
	if len(byKind) > 0 {
		kinds := make([]string, 0, len(byKind))
		for k := range byKind {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		fmt.Print("  model snapshots by surrogate:")
		for _, k := range kinds {
			name := k
			if name == "" {
				name = "(unknown)"
			}
			fmt.Printf(" %s=%d", name, byKind[k])
		}
		fmt.Println()
	}
	if v, err := histdb.Verify(path); err == nil {
		fmt.Printf("  storage: %d in snapshot, %d in write-ahead log", v.SnapshotRecords, v.LogRecords)
		if v.TornBytes > 0 {
			fmt.Printf(", torn tail of %d bytes", v.TornBytes)
		}
		fmt.Println()
	}
	probs := make([]string, 0, len(probSet))
	for p := range probSet {
		probs = append(probs, p)
	}
	sort.Strings(probs)
	for _, p := range probs {
		fmt.Printf("  problem %s\n", p)
		for _, task := range db.Tasks(p) {
			n := 0
			for _, r := range db.Query(p, task) {
				if r.IsEval() {
					n++
				}
			}
			if r, ok := db.Best(p, task); ok {
				fmt.Printf("    task %v: %d evaluations, best %v at config %v\n", task, n, r.Outputs, r.Config)
			} else {
				fmt.Printf("    task %v: %d evaluations, no outputs recorded\n", task, n)
			}
		}
	}
}
