// hypre example: tune the multigrid-preconditioned GMRES simulator on
// several 3D grids at once, then pit GPTune against the OpenTuner- and
// HpBandSter-style baselines on one of them (the Section 6.6/Table 4
// workflow at small scale).
package main

import (
	"fmt"
	"log"

	"repro/gptune"
	_ "repro/internal/apps/hypre" // registers the "hypre" scenario
	"repro/internal/bench"
)

func main() {
	sc, err := bench.Get("hypre")
	if err != nil {
		log.Fatal(err)
	}
	problem, err := sc.Problem(bench.Params{"nodes": 1}) // one 32-core node
	if err != nil {
		log.Fatal(err)
	}

	tasks := [][]float64{
		{40, 40, 40},
		{80, 20, 20},
		{25, 60, 35},
	}
	const eps = 12

	res, err := gptune.Tune(problem, tasks, gptune.Options{
		EpsTot: eps, Seed: 5, Workers: 4, LogY: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("multitask MLA results:")
	for i, tr := range res.Tasks {
		x, y := tr.Best()
		fmt.Printf("  grid %v: best %.4fs with %s\n",
			tasks[i], y[0], problem.Tuning.Describe(x))
	}

	fmt.Println("\ntuner comparison on the first grid:")
	fmt.Printf("  %-12s %.4fs\n", "gptune", mustBest(res))
	for _, name := range []string{"opentuner", "hpbandster", "surf", "random"} {
		tn, err := gptune.NewTuner(name)
		if err != nil {
			log.Fatal(err)
		}
		tr, err := tn.Tune(problem, tasks[0], eps, 99)
		if err != nil {
			log.Fatal(err)
		}
		_, y := tr.Best()
		fmt.Printf("  %-12s %.4fs\n", name, y[0])
	}
}

func mustBest(res *gptune.Result) float64 {
	_, y := res.Tasks[0].Best()
	return y[0]
}
