// Quickstart: tune the paper's analytical benchmark (Eq. 11) for several
// tasks at once with multitask MLA, and compare against the brute-force
// global minima.
package main

import (
	"fmt"
	"log"

	"repro/gptune"
	"repro/internal/apps/analytical"
)

func main() {
	// 1. Define the problem: one task parameter t, one tuning parameter x,
	// one minimized output. (This example builds the problem by hand to show
	// the API; every shipped workload is also available ready-made from the
	// registry — `bench.Get("analytical")` — see `gptune -app list`.)
	problem := &gptune.Problem{
		Name:    "quickstart",
		Tasks:   gptune.NewSpace(gptune.Real("t", 0, 10)),
		Tuning:  gptune.NewSpace(gptune.Real("x", 0, 1)),
		Outputs: gptune.Outputs("y"),
		Objective: func(task, x []float64) ([]float64, error) {
			return []float64{analytical.Objective(task[0], x[0])}, nil
		},
	}

	// 2. Pick the tasks to tune simultaneously (δ=4) and the per-task
	// evaluation budget (ε_tot=20: 10 initial samples + 10 BO iterations).
	tasks := [][]float64{{0}, {0.5}, {1}, {1.5}}
	result, err := gptune.Tune(problem, tasks, gptune.Options{
		EpsTot:  20,
		Workers: 4,
		Seed:    42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Inspect the per-task optima.
	fmt.Println("task      found x    found y     true y")
	for i, tr := range result.Tasks {
		x, y := tr.Best()
		_, truth := analytical.TrueMin(tasks[i][0])
		fmt.Printf("t=%-4g  %8.5f  %+9.5f  %+9.5f\n", tasks[i][0], x[0], y[0], truth)
	}
	fmt.Printf("\nphases: objective=%v modeling=%v search=%v (total %v, %d evaluations)\n",
		result.Stats.Objective, result.Stats.Modeling, result.Stats.Search,
		result.Stats.Total, result.Stats.NumEvals)
}
