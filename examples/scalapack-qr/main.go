// ScaLAPACK PDGEQRF example: tune the dense QR factorization simulator with
// and without the paper's Eq. (7) analytical performance model, on several
// matrix shapes at once (the Section 6.4/Fig. 4-right workflow).
package main

import (
	"fmt"
	"log"

	"repro/gptune"
	"repro/internal/apps/scalapack"
	"repro/internal/bench"
)

func main() {
	// 16 Cori-Haswell-like nodes, matrices up to 20000² (the registry
	// defaults for "qr"); the app instance supplies the Eq. (7) model.
	sc, err := bench.Get("qr")
	if err != nil {
		log.Fatal(err)
	}
	problem, err := sc.Problem(nil)
	if err != nil {
		log.Fatal(err)
	}
	app := scalapack.NewQR(16, 20000)

	tasks := [][]float64{
		{12000, 8000},
		{18000, 18000},
		{6000, 15000},
	}
	opts := gptune.Options{
		EpsTot:  12,
		Seed:    7,
		Workers: 4,
		LogY:    true,
		Repeats: 3, // min-of-3 runs, as the paper does for QR
	}

	// Plain MLA.
	plain, err := gptune.Tune(problem, tasks, opts)
	if err != nil {
		log.Fatal(err)
	}

	// MLA with the Eq. (7) performance model; its t_flop/t_msg/t_vol
	// coefficients are re-fitted from observations before each modeling
	// phase (the Section 3.3 update phase).
	withModel, err := sc.Problem(nil)
	if err != nil {
		log.Fatal(err)
	}
	withModel.Model = app.PerfModel()
	optsModel := opts
	optsModel.FitModelCoeffs = true
	modeled, err := gptune.Tune(withModel, tasks, optsModel)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("task (m×n)        no-model best   with-model best   ratio")
	for i := range tasks {
		_, y0 := plain.Tasks[i].Best()
		_, y1 := modeled.Tasks[i].Best()
		fmt.Printf("%6.0f×%-6.0f   %10.3fs   %12.3fs   %6.3f\n",
			tasks[i][0], tasks[i][1], y0[0], y1[0], y0[0]/y1[0])
	}
	x, y := modeled.Tasks[1].Best()
	fmt.Printf("\nbest configuration for %4.0f×%4.0f: %s  (%.3fs)\n",
		tasks[1][0], tasks[1][1], withModel.Tuning.Describe(x), y[0])
}
