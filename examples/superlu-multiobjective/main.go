// SuperLU_DIST multi-objective example: tune factorization (time, memory)
// for a PARSEC matrix and print the discovered Pareto front next to the
// default configuration — the Section 6.7/Fig. 7 workflow.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/gptune"
	"repro/internal/apps/superlu"
	"repro/internal/bench"
)

func main() {
	sc, err := bench.Get("superlu-mo")
	if err != nil {
		log.Fatal(err)
	}
	problem, err := sc.Problem(nil) // 8 Cori-Haswell-like nodes by default
	if err != nil {
		log.Fatal(err)
	}
	app := superlu.New(8) // same instance for default-config comparisons

	// Tune matrix Si2 (task index 0) with γ=2 objectives.
	result, err := gptune.Tune(problem, [][]float64{{0}}, gptune.Options{
		EpsTot:  24,
		MOBatch: 2, // k=2 new configurations per NSGA-II search iteration
		Seed:    3,
		Workers: 4,
		LogY:    true,
	})
	if err != nil {
		log.Fatal(err)
	}

	tr := result.Tasks[0]
	front := tr.ParetoFront()
	sort.Slice(front, func(a, b int) bool { return tr.Y[front[a]][0] < tr.Y[front[b]][0] })

	fmt.Printf("Si2: %d evaluations, Pareto front has %d points\n\n", len(tr.Y), len(front))
	fmt.Println("      time        memory   configuration")
	for _, idx := range front {
		fmt.Printf("  %8.4fs  %10.3gB   %s\n",
			tr.Y[idx][0], tr.Y[idx][1], problem.Tuning.Describe(tr.X[idx]))
	}

	defCfg := app.DefaultConfig()
	dt, dm := app.FactorCost(0, defCfg)
	fmt.Printf("\ndefault:  %8.4fs  %10.3gB   %s\n",
		dt, dm, problem.Tuning.Describe(superlu.ConfigToVector(defCfg)))

	bestT, bestM := tr.Y[front[0]], tr.Y[front[len(front)-1]]
	fmt.Printf("\nvs default: up to %.0f%% faster or %.0f%% less memory\n",
		100*(dt-bestT[0])/dt, 100*(dm-bestM[1])/dm)
}
