// Surrogate-diagnostics example: use the multitask LCM directly as a
// regression model, inspect its fit with leave-one-out cross-validation, and
// see the multitask transfer effect — a sparsely sampled task predicted well
// because a related task is densely sampled (the mechanism behind the
// paper's MLA).
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro/gptune"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	truth := func(task int, x float64) float64 {
		return math.Sin(2*math.Pi*x) + 0.3*float64(task)*math.Cos(2*math.Pi*x)
	}

	// Task 0: 25 samples. Task 1: only 4 samples of a closely related
	// function.
	data := &gptune.Dataset{Dim: 1, X: make([][][]float64, 2), Y: make([][]float64, 2)}
	for j := 0; j < 25; j++ {
		x := rng.Float64()
		data.X[0] = append(data.X[0], []float64{x})
		data.Y[0] = append(data.Y[0], truth(0, x))
	}
	for j := 0; j < 4; j++ {
		x := rng.Float64()
		data.X[1] = append(data.X[1], []float64{x})
		data.Y[1] = append(data.Y[1], truth(1, x))
	}

	model, err := gptune.FitSurrogate(data, gptune.SurrogateOptions{
		Q: 2, NumStarts: 4, MaxIter: 150, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fitted LCM: Q=%d latent functions, log-likelihood %.2f\n\n", model.Q, model.LogLik)

	// Out-of-sample error on the sparsely sampled task.
	var mse float64
	const probes = 200
	for i := 0; i < probes; i++ {
		x := float64(i) / probes
		mu, _ := model.Predict(1, []float64{x})
		d := mu - truth(1, x)
		mse += d * d
	}
	multiRMSE := math.Sqrt(mse / probes)

	// Baseline: fit task 1 alone on the same 4 samples.
	solo := &gptune.Dataset{Dim: 1, X: data.X[1:], Y: data.Y[1:]}
	soloModel, err := gptune.FitSurrogate(solo, gptune.SurrogateOptions{
		Q: 1, NumStarts: 4, MaxIter: 150, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	mse = 0
	for i := 0; i < probes; i++ {
		x := float64(i) / probes
		mu, _ := soloModel.Predict(0, []float64{x})
		d := mu - truth(1, x)
		mse += d * d
	}
	soloRMSE := math.Sqrt(mse / probes)
	fmt.Printf("task 1 (4 samples): out-of-sample RMSE %.4f multitask vs %.4f single-task\n",
		multiRMSE, soloRMSE)
	fmt.Println("(the multitask model borrows strength from task 0's 25 samples)")

	// Leave-one-out diagnostics.
	loo, err := model.LeaveOneOut()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nleave-one-out: RMSE %.4f, log pseudo-likelihood %.2f\n", loo.RMSE, loo.LogPseudoLikelihood)
	worst := 0.0
	for _, r := range loo.StdResiduals {
		if math.Abs(r) > worst {
			worst = math.Abs(r)
		}
	}
	fmt.Printf("largest standardized residual: %.2f (|r| >> 3 would flag miscalibration)\n", worst)
}
