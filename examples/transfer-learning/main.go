// Transfer-learning example: archive tuning data in the history database and
// reuse it in a later session — the paper's goal #3 ("archiving and reusing
// tuning data from multiple executions to allow tuning to improve over
// time"). A first session tunes two M3D_C1 step counts and saves its
// evaluations; a second session loads the archive and starts from the best
// archived configuration instead of from scratch.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/gptune"
	_ "repro/internal/apps/mhd" // registers the "m3dc1" and "nimrod" scenarios
	"repro/internal/bench"
)

func main() {
	sc, err := bench.Get("m3dc1")
	if err != nil {
		log.Fatal(err)
	}
	problem, err := sc.Problem(nil)
	if err != nil {
		log.Fatal(err)
	}
	dbPath := filepath.Join(os.TempDir(), "gptune-transfer-demo.json")
	defer os.Remove(dbPath)

	// --- Session 1: tune cheap tasks and archive everything. ---
	res, err := gptune.Tune(problem, [][]float64{{1}, {2}}, gptune.Options{
		EpsTot: 10, Seed: 11, Workers: 4, LogY: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	db := gptune.NewHistory()
	gptune.RecordResult(db, problem.Name, res)
	if err := db.Save(dbPath); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session 1: archived %d evaluations to %s\n", db.Len(), dbPath)

	// --- Session 2: a more expensive task (10 steps). Compare tuning from
	// scratch against simply reusing the best archived configuration. ---
	loaded, err := gptune.LoadHistory(dbPath)
	if err != nil {
		log.Fatal(err)
	}
	best, ok := loaded.Best(problem.Name, []float64{2})
	if !ok {
		log.Fatal("no archived records for task t=2")
	}
	fmt.Printf("session 2: best archived config for t=2: %s\n",
		problem.Tuning.Describe(best.Config))

	// Evaluate the transferred configuration directly on the new task.
	yTransfer, err := problem.Objective([]float64{10}, best.Config)
	if err != nil {
		log.Fatal(err)
	}

	// And tune the new task from scratch with a tiny budget for contrast.
	res2, err := gptune.Tune(problem, [][]float64{{10}}, gptune.Options{
		EpsTot: 6, Seed: 12, Workers: 4, LogY: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	_, yScratch := res2.Tasks[0].Best()

	fmt.Printf("t=10 with transferred config: %.2fs\n", yTransfer[0])
	fmt.Printf("t=10 tuned from scratch (6 evals): %.2fs\n", yScratch[0])
	fmt.Println("(the archived configuration is competitive at zero new evaluations)")
}
