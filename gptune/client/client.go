// Package client is the typed Go client for the gptuned HTTP API. It speaks
// the full surface — create, suggest, report, best, pareto, history, status,
// snapshot export/import — over a reused connection pool with per-call
// timeouts and bounded exponential backoff, and it surfaces the engine's
// sentinel conditions as the same error values the in-process API uses:
// errors.Is(err, client.ErrDone) and errors.Is(err, client.ErrNonePending)
// hold exactly when they would against a local core.Engine, so the
// suggest/evaluate/report loop is written once and runs against either.
//
// Given more than one replica, the client consistent-hash routes every
// study-scoped call to the study's owner (internal/ring, rendezvous
// hashing): any client or router configured with the same replica set
// computes the same owner with no coordination. Cluster-scoped calls
// (Studies) fan out and merge.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/gptune"
	"repro/internal/ring"
	"repro/internal/serve"
)

// Spec types are aliased from the serving layer so a spec literal compiles
// identically against the server, the client, and the on-disk format.
type (
	StudySpec   = serve.StudySpec
	ParamSpec   = serve.ParamSpec
	OptionsSpec = serve.OptionsSpec
)

// ErrDone and ErrNonePending are aliases of the facade's sentinels (which
// are themselves core's): a remote study reports budget exhaustion and
// nothing-pending through the same values a local Engine returns.
var (
	ErrDone        = gptune.ErrDone
	ErrNonePending = gptune.ErrNonePending
)

// APIError is a non-sentinel server response: the HTTP status plus the
// error string from the JSON body. Suggest/Report map the sentinel cases
// (done, none-pending) before this surfaces, so an APIError always means
// something genuinely went wrong (bad spec, unknown study, server fault).
type APIError struct {
	Status  int
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("gptuned: %s (HTTP %d)", e.Message, e.Status)
}

// Suggestion is one configuration to evaluate, as handed out by the server.
type Suggestion struct {
	ID    int64     `json:"id"`
	Task  int       `json:"task"`
	Phase string    `json:"phase,omitempty"`
	X     []float64 `json:"x"`
}

// Status mirrors GET /studies/{study}.
type Status struct {
	Name         string `json:"name"`
	Surrogate    string `json:"surrogate"`
	Phase        string `json:"phase"`
	Tasks        int    `json:"tasks"`
	Observations int    `json:"observations"`
	Logged       int    `json:"logged"`
	Async        bool   `json:"async,omitempty"`
	Done         bool   `json:"done"`
	Error        string `json:"error,omitempty"`
}

// TaskHistory is one task's evaluations (history and pareto responses).
type TaskHistory struct {
	Task []float64   `json:"task"`
	X    [][]float64 `json:"x"`
	Y    [][]float64 `json:"y"`
}

// BestEntry is one task's incumbent for objective 0.
type BestEntry struct {
	Task []float64 `json:"task"`
	X    []float64 `json:"x,omitempty"`
	Y    []float64 `json:"y,omitempty"`
}

// StudyArchive is a study in transfer form (GET snapshot / POST import):
// spec plus a consistent WAL snapshot+log byte pair.
type StudyArchive struct {
	Spec     StudySpec `json:"spec"`
	Snapshot []byte    `json:"snapshot,omitempty"`
	WAL      []byte    `json:"wal,omitempty"`
	Logged   int       `json:"logged"`
}

// Config configures a Client.
type Config struct {
	// Replicas lists the gptuned base URLs ("http://host:port"). One
	// replica means no routing; more mean study-scoped calls go to the
	// study's consistent-hash owner. Required.
	Replicas []string
	// HTTPClient overrides the transport; nil builds one http.Client shared
	// by every call, so connections are pooled and reused.
	HTTPClient *http.Client
	// Timeout bounds each HTTP attempt (not the whole retry loop).
	// Default 30s — sync suggests legitimately block through a modeling
	// phase.
	Timeout time.Duration
	// MaxRetries bounds retries after the first attempt. Default 4.
	MaxRetries int
	// BaseBackoff is the first retry delay, doubled per retry up to
	// MaxBackoff, each draw jittered uniformly over [½d, d). Defaults
	// 100ms / 5s.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// JitterSeed seeds the backoff jitter; the zero seed is used as-is
	// (deterministic tests pin it, production varies it per process).
	JitterSeed int64
}

// Client is a gptuned API client. Safe for concurrent use.
type Client struct {
	cfg  Config
	ring *ring.Ring
	hc   *http.Client

	mu  sync.Mutex // guards rng
	rng *rand.Rand
}

// New builds a client over one or more gptuned replicas.
func New(cfg Config) (*Client, error) {
	r := ring.New(cfg.Replicas...)
	if r.Len() == 0 {
		return nil, errors.New("client: Config.Replicas is required")
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 30 * time.Second
	}
	if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	} else if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 4
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 100 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 5 * time.Second
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{}
	}
	return &Client{cfg: cfg, ring: r, hc: hc, rng: rand.New(rand.NewSource(cfg.JitterSeed))}, nil
}

// Owner returns the replica base URL a study routes to.
func (c *Client) Owner(study string) string {
	o, _ := c.ring.Owner(study)
	return o
}

// Replicas returns the configured replica set (sorted, deduplicated).
func (c *Client) Replicas() []string { return c.ring.Nodes() }

// Create registers a new study on its owning replica.
func (c *Client) Create(ctx context.Context, spec StudySpec) error {
	return c.call(ctx, http.MethodPost, c.Owner(spec.Name), "/studies", spec, nil, false)
}

// Suggest asks the study's replica for the next configuration of task
// (task = -1 means any). Semantics mirror core.Engine.Suggest: ErrDone when
// the budget is exhausted, ErrNonePending when — after the retry budget,
// honoring the server's Retry-After hints — no configuration is available.
func (c *Client) Suggest(ctx context.Context, study string, task int) (Suggestion, error) {
	var resp struct {
		Suggestion *Suggestion `json:"suggestion,omitempty"`
		Done       bool        `json:"done,omitempty"`
	}
	err := c.call(ctx, http.MethodPost, c.Owner(study), "/studies/"+study+"/suggest",
		map[string]int{"task": task}, &resp, true)
	if err != nil {
		return Suggestion{}, err
	}
	if resp.Done {
		return Suggestion{}, ErrDone
	}
	if resp.Suggestion == nil {
		return Suggestion{}, &APIError{Status: http.StatusOK, Message: "suggest response carries neither a suggestion nor done"}
	}
	return *resp.Suggestion, nil
}

// Report delivers a measurement for a suggestion ID.
func (c *Client) Report(ctx context.Context, study string, id int64, y []float64) error {
	var resp struct {
		OK    bool   `json:"ok"`
		Error string `json:"error,omitempty"`
	}
	err := c.call(ctx, http.MethodPost, c.Owner(study), "/studies/"+study+"/report",
		map[string]any{"id": id, "y": y}, &resp, false)
	if err != nil {
		return err
	}
	if !resp.OK {
		return &APIError{Status: http.StatusOK, Message: "report not acknowledged: " + resp.Error}
	}
	return nil
}

// ReportFailure tells the server an evaluation errored. The server may hand
// back a substitute configuration under the same ID; terminal=true means
// the configuration failed for good.
func (c *Client) ReportFailure(ctx context.Context, study string, id int64, cause string) (retry *Suggestion, terminal bool, err error) {
	var resp struct {
		OK       bool        `json:"ok"`
		Retry    *Suggestion `json:"retry,omitempty"`
		Terminal bool        `json:"terminal,omitempty"`
		Error    string      `json:"error,omitempty"`
	}
	err = c.call(ctx, http.MethodPost, c.Owner(study), "/studies/"+study+"/report",
		map[string]any{"id": id, "failed": true, "error": cause}, &resp, false)
	if err != nil {
		return nil, false, err
	}
	return resp.Retry, resp.Terminal, nil
}

// Status fetches a study's progress.
func (c *Client) Status(ctx context.Context, study string) (Status, error) {
	var st Status
	err := c.call(ctx, http.MethodGet, c.Owner(study), "/studies/"+study, nil, &st, false)
	return st, err
}

// History fetches a study's full evaluation history per task.
func (c *Client) History(ctx context.Context, study string) ([]TaskHistory, error) {
	var resp struct {
		Tasks []TaskHistory `json:"tasks"`
	}
	err := c.call(ctx, http.MethodGet, c.Owner(study), "/studies/"+study+"/history", nil, &resp, false)
	return resp.Tasks, err
}

// Best fetches each task's incumbent for objective 0.
func (c *Client) Best(ctx context.Context, study string) ([]BestEntry, error) {
	var resp struct {
		Tasks []BestEntry `json:"tasks"`
	}
	err := c.call(ctx, http.MethodGet, c.Owner(study), "/studies/"+study+"/best", nil, &resp, false)
	return resp.Tasks, err
}

// Pareto fetches each task's non-dominated set.
func (c *Client) Pareto(ctx context.Context, study string) ([]TaskHistory, error) {
	var resp struct {
		Tasks []TaskHistory `json:"tasks"`
	}
	err := c.call(ctx, http.MethodGet, c.Owner(study), "/studies/"+study+"/pareto", nil, &resp, false)
	return resp.Tasks, err
}

// Snapshot exports a study from the replica holding it for migration.
func (c *Client) Snapshot(ctx context.Context, study string) (StudyArchive, error) {
	return c.SnapshotFrom(ctx, c.Owner(study), study)
}

// SnapshotFrom exports a study from a specific replica — the recovery path,
// where the study's data may sit on a node the ring no longer owns it to.
func (c *Client) SnapshotFrom(ctx context.Context, replica, study string) (StudyArchive, error) {
	var arc StudyArchive
	err := c.call(ctx, http.MethodGet, replica, "/studies/"+study+"/snapshot", nil, &arc, false)
	return arc, err
}

// Import re-homes an archived study onto a replica (the archive's ring
// owner by default; see ImportTo for explicit placement).
func (c *Client) Import(ctx context.Context, arc StudyArchive) error {
	return c.ImportTo(ctx, c.Owner(arc.Spec.Name), arc)
}

// ImportTo imports an archive onto a specific replica.
func (c *Client) ImportTo(ctx context.Context, replica string, arc StudyArchive) error {
	return c.call(ctx, http.MethodPost, replica, "/studies/import", arc, nil, false)
}

// Studies lists study names across every replica, merged and sorted.
func (c *Client) Studies(ctx context.Context) ([]string, error) {
	seen := make(map[string]bool)
	var firstErr error
	for _, rep := range c.ring.Nodes() {
		var resp struct {
			Studies []string `json:"studies"`
		}
		if err := c.call(ctx, http.MethodGet, rep, "/studies", nil, &resp, false); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		for _, s := range resp.Studies {
			seen[s] = true
		}
	}
	if len(seen) == 0 && firstErr != nil {
		return nil, firstErr
	}
	out := make([]string, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Strings(out)
	return out, nil
}

// call runs one API call with the retry policy: transport errors and 503s
// (a draining or restarting replica) always retry; 409 retries only when
// retry409 is set (suggest's none-pending, where the server's Retry-After
// hint schedules the next attempt — on create/import a 409 is a duplicate
// study and retrying cannot help). Each attempt gets its own Timeout.
// Exhausting the budget on a 409 returns ErrNonePending; on a 503 or
// transport error, the last underlying error.
func (c *Client) call(ctx context.Context, method, replica, path string, in, out any, retry409 bool) error {
	var lastErr error
	for attempt := 0; ; attempt++ {
		status, retryAfter, errMsg, err := c.attempt(ctx, method, replica, path, in, out)
		switch {
		case err == nil && status < 400:
			return nil
		case err == nil && status == http.StatusConflict && retry409:
			lastErr = ErrNonePending
		case err == nil && status == http.StatusServiceUnavailable:
			if errMsg == "" {
				errMsg = "replica unavailable"
			}
			lastErr = &APIError{Status: status, Message: errMsg}
		case err == nil:
			if errMsg == "" {
				errMsg = "request " + path + " failed"
			}
			return &APIError{Status: status, Message: errMsg}
		default:
			// Transport error (connection refused/reset, timeout). A reset
			// mid-body surfaces here too: retry — every mutating call on
			// this API is idempotent-or-conflicting, never double-applied
			// (a duplicate report of the same ID is acknowledged without
			// re-commit; a duplicate create conflicts).
			if ctx.Err() != nil {
				return ctx.Err()
			}
			lastErr = err
		}
		if attempt >= c.cfg.MaxRetries {
			return lastErr
		}
		if err := c.sleep(ctx, attempt, retryAfter); err != nil {
			return err
		}
	}
}

// attempt performs one HTTP round trip under its own Timeout. For statuses
// < 400 the body decodes into out; for error statuses the JSON error body's
// message comes back in errMsg with the body fully drained, so the pooled
// connection stays reusable.
func (c *Client) attempt(ctx context.Context, method, replica, path string, in, out any) (status int, retryAfter, errMsg string, err error) {
	actx, cancel := context.WithTimeout(ctx, c.cfg.Timeout)
	defer cancel()
	var body io.Reader
	if in != nil {
		data, merr := json.Marshal(in)
		if merr != nil {
			return 0, "", "", merr
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(actx, method, replica+path, body)
	if err != nil {
		return 0, "", "", err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, "", "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var eb struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&eb)
		return resp.StatusCode, resp.Header.Get("Retry-After"), eb.Error, nil
	}
	if out != nil {
		if derr := json.NewDecoder(resp.Body).Decode(out); derr != nil {
			// A connection reset mid-body lands here: the request may have
			// been applied server-side, but re-issuing is safe (see call).
			return 0, "", "", fmt.Errorf("client: decoding %s response: %w", path, derr)
		}
	} else {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	}
	return resp.StatusCode, "", "", nil
}

// sleep blocks for the attempt's backoff: the server's Retry-After hint in
// seconds when present (a "0" means retry immediately), else exponential
// from BaseBackoff capped at MaxBackoff; either way jittered over [½d, d)
// so a fleet of clients released by the same batch install doesn't
// stampede. Returns early with the context's error if it is canceled.
func (c *Client) sleep(ctx context.Context, attempt int, retryAfter string) error {
	var d time.Duration
	if secs, err := strconv.Atoi(retryAfter); err == nil && secs >= 0 {
		d = time.Duration(secs) * time.Second
		if d == 0 {
			// "Retry immediately" still yields a beat so a 1-CPU server's
			// background generation can run.
			d = c.cfg.BaseBackoff / 4
		}
	} else {
		d = c.cfg.BaseBackoff << uint(attempt)
		if d > c.cfg.MaxBackoff || d <= 0 {
			d = c.cfg.MaxBackoff
		}
	}
	c.mu.Lock()
	jitter := c.rng.Float64()
	c.mu.Unlock()
	d = d/2 + time.Duration(jitter*float64(d/2))
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
