package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/ring"
	"repro/internal/serve"
)

func testCfg(replicas ...string) Config {
	return Config{
		Replicas:    replicas,
		Timeout:     5 * time.Second,
		MaxRetries:  3,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  4 * time.Millisecond,
		JitterSeed:  1,
	}
}

func testSpec(name string, epsTot int) StudySpec {
	return StudySpec{
		Name:       name,
		TaskParams: []ParamSpec{{Name: "t", Kind: "real", Lo: 0, Hi: 10}},
		Tuning:     []ParamSpec{{Name: "x", Kind: "real", Lo: 0, Hi: 1}},
		Outputs:    []string{"y"},
		Tasks:      [][]float64{{0}, {1.5}},
		Options:    OptionsSpec{EpsTot: epsTot, Seed: 11, Workers: 1},
	}
}

// countingHandler answers a scripted status sequence for suggest, then a
// real suggestion, counting requests.
type countingHandler struct {
	mu       sync.Mutex
	statuses []int // statuses to answer before succeeding
	requests int
}

func (h *countingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.requests++
	if len(h.statuses) > 0 {
		code := h.statuses[0]
		h.statuses = h.statuses[1:]
		if code == http.StatusConflict {
			w.Header().Set("Retry-After", "0")
		}
		w.WriteHeader(code)
		fmt.Fprintf(w, `{"error":"scripted %d"}`, code)
		return
	}
	fmt.Fprint(w, `{"suggestion":{"id":7,"task":0,"phase":"search","x":[0.5]}}`)
}

// TestSuggestRetriesThrough409: two 409-with-Retry-After answers (async
// generation in flight) must be retried away transparently, like a
// well-behaved client honoring the hint.
func TestSuggestRetriesThrough409(t *testing.T) {
	h := &countingHandler{statuses: []int{http.StatusConflict, http.StatusConflict}}
	srv := httptest.NewServer(h)
	defer srv.Close()
	c, err := New(testCfg(srv.URL))
	if err != nil {
		t.Fatal(err)
	}
	sg, err := c.Suggest(context.Background(), "s", -1)
	if err != nil {
		t.Fatal(err)
	}
	if sg.ID != 7 || sg.X[0] != 0.5 {
		t.Fatalf("suggestion: %+v", sg)
	}
	if h.requests != 3 {
		t.Fatalf("made %d requests, want 3", h.requests)
	}
}

// TestSuggestExhausted409IsErrNonePending: a study whose batch never frees
// up within the retry budget surfaces the same sentinel a local engine
// returns, so callers' errors.Is logic is transport-agnostic.
func TestSuggestExhausted409IsErrNonePending(t *testing.T) {
	h := &countingHandler{statuses: []int{409, 409, 409, 409, 409, 409, 409}}
	srv := httptest.NewServer(h)
	defer srv.Close()
	c, err := New(testCfg(srv.URL))
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Suggest(context.Background(), "s", -1)
	if !errors.Is(err, ErrNonePending) {
		t.Fatalf("got %v, want ErrNonePending", err)
	}
	if h.requests != 4 { // first attempt + MaxRetries
		t.Fatalf("made %d requests, want 4", h.requests)
	}
}

// TestRetryOn503Draining: a draining replica (503) is retried — it comes
// back after a rolling restart — and succeeds once healthy.
func TestRetryOn503Draining(t *testing.T) {
	h := &countingHandler{statuses: []int{http.StatusServiceUnavailable, http.StatusServiceUnavailable}}
	srv := httptest.NewServer(h)
	defer srv.Close()
	c, err := New(testCfg(srv.URL))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Suggest(context.Background(), "s", -1); err != nil {
		t.Fatalf("suggest through 503s: %v", err)
	}
	if h.requests != 3 {
		t.Fatalf("made %d requests, want 3", h.requests)
	}
}

// TestConnectionResetMidBodyRetries: a replica dying mid-response (partial
// JSON body, connection closed) must be retried, not surfaced as a decode
// error.
func TestConnectionResetMidBodyRetries(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		calls++
		first := calls == 1
		mu.Unlock()
		if first {
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Fatal("recorder not hijackable")
			}
			conn, buf, err := hj.Hijack()
			if err != nil {
				t.Fatal(err)
			}
			// Status line + truncated body, then a hard close: the client
			// sees a reset mid-body.
			buf.WriteString("HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 60\r\n\r\n{\"suggestion\":{\"id\":7,")
			buf.Flush()
			conn.Close()
			return
		}
		fmt.Fprint(w, `{"suggestion":{"id":7,"task":0,"x":[0.5]}}`)
	}))
	defer srv.Close()
	c, err := New(testCfg(srv.URL))
	if err != nil {
		t.Fatal(err)
	}
	sg, err := c.Suggest(context.Background(), "s", -1)
	if err != nil {
		t.Fatalf("suggest through mid-body reset: %v", err)
	}
	if sg.ID != 7 {
		t.Fatalf("suggestion: %+v", sg)
	}
}

// TestDoneIsErrDone: {"done":true} maps to the ErrDone sentinel.
func TestDoneIsErrDone(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"done":true}`)
	}))
	defer srv.Close()
	c, err := New(testCfg(srv.URL))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Suggest(context.Background(), "s", -1); !errors.Is(err, ErrDone) {
		t.Fatalf("got %v, want ErrDone", err)
	}
}

// TestCreateConflictNotRetried: a duplicate-study 409 is a real answer, not
// contention — exactly one request, surfaced as an APIError.
func TestCreateConflictNotRetried(t *testing.T) {
	h := &countingHandler{statuses: []int{409, 409, 409}}
	srv := httptest.NewServer(h)
	defer srv.Close()
	c, err := New(testCfg(srv.URL))
	if err != nil {
		t.Fatal(err)
	}
	err = c.Create(context.Background(), testSpec("dup", 4))
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusConflict {
		t.Fatalf("got %v, want 409 APIError", err)
	}
	if h.requests != 1 {
		t.Fatalf("made %d requests, want 1 (409 on create must not retry)", h.requests)
	}
}

// TestRoutingToOwner: with several replicas, every study-scoped call lands
// on the study's rendezvous owner — the invariant that lets clients and the
// router agree on placement with no coordination.
func TestRoutingToOwner(t *testing.T) {
	const replicas = 3
	hits := make([]map[string]int, replicas)
	urls := make([]string, replicas)
	var mu sync.Mutex
	for i := 0; i < replicas; i++ {
		i := i
		hits[i] = make(map[string]int)
		mux := http.NewServeMux()
		mux.HandleFunc("GET /studies/{study}", func(w http.ResponseWriter, r *http.Request) {
			mu.Lock()
			hits[i][r.PathValue("study")]++
			mu.Unlock()
			fmt.Fprint(w, `{"name":"x","phase":"init","done":false}`)
		})
		srv := httptest.NewServer(mux)
		defer srv.Close()
		urls[i] = srv.URL
	}
	c, err := New(testCfg(urls...))
	if err != nil {
		t.Fatal(err)
	}
	rg := ring.New(urls...)
	for s := 0; s < 20; s++ {
		study := fmt.Sprintf("study-%d", s)
		if _, err := c.Status(context.Background(), study); err != nil {
			t.Fatal(err)
		}
		owner, _ := rg.Owner(study)
		if got := c.Owner(study); got != owner {
			t.Fatalf("client owner %s, ring owner %s", got, owner)
		}
		for i, u := range urls {
			want := 0
			if u == owner {
				want = 1
			}
			if hits[i][study] != want {
				t.Fatalf("study %s: replica %s saw %d requests, want %d", study, u, hits[i][study], want)
			}
		}
	}
}

// TestClientDrivesRealStudy: the acceptance loop — a real serve.Server
// study driven entirely through the client, terminated by errors.Is(err,
// ErrDone) exactly like a local engine loop.
func TestClientDrivesRealStudy(t *testing.T) {
	s, err := serve.NewServer(serve.Config{DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	defer func() { hs.Close(); s.Close() }()

	c, err := New(testCfg(hs.URL))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	spec := testSpec("e2e", 6)
	if err := c.Create(ctx, spec); err != nil {
		t.Fatal(err)
	}
	paid := 0
	for {
		sg, err := c.Suggest(ctx, "e2e", -1)
		if errors.Is(err, ErrDone) {
			break
		}
		if errors.Is(err, ErrNonePending) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		y := 1 + math.Cos(2*math.Pi*sg.X[0])
		if err := c.Report(ctx, "e2e", sg.ID, []float64{y}); err != nil {
			t.Fatal(err)
		}
		paid++
	}
	st, err := c.Status(ctx, "e2e")
	if err != nil {
		t.Fatal(err)
	}
	if !st.Done || st.Observations != paid {
		t.Fatalf("status after drive: %+v (paid %d)", st, paid)
	}
	hist, err := c.History(ctx, "e2e")
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, th := range hist {
		total += len(th.Y)
	}
	if total != paid {
		t.Fatalf("history holds %d evaluations, paid %d", total, paid)
	}
	if _, err := c.Best(ctx, "e2e"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Pareto(ctx, "e2e"); err != nil {
		t.Fatal(err)
	}
	studies, err := c.Studies(ctx)
	if err != nil || len(studies) != 1 || studies[0] != "e2e" {
		t.Fatalf("studies list: %v, %v", studies, err)
	}
	// Marshal round-trip sanity for the archive path.
	arc, err := c.Snapshot(ctx, "e2e")
	if err != nil {
		t.Fatal(err)
	}
	if arc.Logged == 0 {
		t.Fatal("archive logs no evaluations")
	}
	if _, err := json.Marshal(arc); err != nil {
		t.Fatal(err)
	}
}
