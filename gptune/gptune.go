// Package gptune is the public API of this Go reproduction of GPTune
// (Liu et al., "GPTune: Multitask Learning for Autotuning Exascale
// Applications", PPoPP 2021): a multitask-learning Bayesian optimization
// autotuner for expensive black-box functions such as HPC application
// runtimes.
//
// A tuning problem is described by three spaces (Section 2 of the paper):
// the task parameter input space IS, the tuning parameter space PS, and the
// output space OS, plus a black-box objective. The tuner runs MLA
// (multitask learning autotuning): an initial Latin-hypercube sampling
// phase, then Bayesian-optimization iterations that share one Linear
// Coregionalization Model across all tasks, maximize Expected Improvement
// with particle swarm optimization per task, and evaluate one new
// configuration per task per iteration. Multi-objective problems (γ > 1)
// use one LCM per objective and NSGA-II search; coarse analytical
// performance models can be attached to enrich the surrogate's features.
//
// The same interface can invoke the comparator autotuners of the paper's
// Section 6.6 (an OpenTuner-style bandit ensemble and an HpBandSter-style
// TPE optimizer) plus random and grid search, for side-by-side evaluations.
//
// Basic use:
//
//	problem := &gptune.Problem{
//	    Tasks:   gptune.NewSpace(gptune.Real("t", 0, 10)),
//	    Tuning:  gptune.NewSpace(gptune.Real("x", 0, 1)),
//	    Outputs: gptune.Outputs("runtime"),
//	    Objective: func(task, x []float64) ([]float64, error) { ... },
//	}
//	result, err := gptune.Tune(problem, [][]float64{{0}, {1}}, gptune.Options{EpsTot: 20})
package gptune

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gp"
	"repro/internal/histdb"
	"repro/internal/opt"
	"repro/internal/sample"
	"repro/internal/space"
	"repro/internal/surrogate"
	"repro/internal/tuners"
	"repro/internal/tuners/hpbandster"
	"repro/internal/tuners/opentuner"
	"repro/internal/tuners/singletask"
	"repro/internal/tuners/surf"

	"math/rand"
)

// Problem describes a tuning problem (task space, tuning space, outputs,
// objective, optional performance model). See core.Problem.
type Problem = core.Problem

// Options configures an MLA run. See core.Options.
type Options = core.Options

// Result is an MLA run outcome: per-task samples plus phase timing stats.
type Result = core.Result

// TaskResult holds one task's evaluations in order.
type TaskResult = core.TaskResult

// PhaseStats is the per-phase wall-time breakdown (objective, modeling,
// search), as in the paper's Table 3.
type PhaseStats = core.PhaseStats

// PerfModel is a coarse analytical performance model with tunable
// coefficients (paper Section 3.3).
type PerfModel = core.PerfModel

// Space is an ordered set of typed parameters with optional constraints.
type Space = space.Space

// Param declares one parameter of a Space.
type Param = space.Param

// Real declares a continuous parameter on [lo, hi].
func Real(name string, lo, hi float64) Param { return space.NewReal(name, lo, hi) }

// LogReal declares a continuous parameter normalized on a log axis.
func LogReal(name string, lo, hi float64) Param { return space.NewLogReal(name, lo, hi) }

// Integer declares a whole-valued parameter on [lo, hi].
func Integer(name string, lo, hi int) Param { return space.NewInteger(name, lo, hi) }

// LogInteger declares an integer parameter normalized on a log axis.
func LogInteger(name string, lo, hi int) Param { return space.NewLogInteger(name, lo, hi) }

// Categorical declares a discrete choice parameter.
func Categorical(name string, categories ...string) Param {
	return space.NewCategorical(name, categories...)
}

// NewSpace builds a Space, panicking on invalid parameters (use space.New
// for error returns).
func NewSpace(params ...Param) *Space { return space.MustNew(params...) }

// Outputs declares γ minimized objectives.
func Outputs(names ...string) *space.OutputSpace { return space.NewOutputSpace(names...) }

// PSOParams configures the search phase swarm.
type PSOParams = opt.PSOParams

// Tune runs multitask MLA (Algorithm 1 for one output, Algorithm 2 for
// several) on the given native task vectors.
func Tune(p *Problem, tasks [][]float64, options Options) (*Result, error) {
	return core.Run(p, tasks, options)
}

// Engine is the step-wise ask/tell form of the MLA loop: Suggest hands out
// the next configuration, the caller evaluates it however it likes (no
// in-process Objective needed), and Observe/Fail feed the outcome back.
// Tune is a thin driver over it; the gptuned HTTP service is another.
type (
	Engine     = core.Engine
	Suggestion = core.Suggestion
)

// ErrDone and ErrNonePending are the Engine's two sentinel conditions:
// budget exhausted, and nothing to hand out until outstanding observations
// arrive.
var (
	ErrDone        = core.ErrDone
	ErrNonePending = core.ErrNonePending
)

// NewEngine builds an ask/tell engine over the problem and native task
// vectors. The problem may omit Objective — evaluations are the caller's.
func NewEngine(p *Problem, tasks [][]float64, options Options) (*Engine, error) {
	return core.NewEngine(p, tasks, options)
}

// SampleTasks draws δ feasible task vectors from the problem's task space
// (the paper's first sampling step, used when the user does not supply a
// task list).
func SampleTasks(p *Problem, delta int, seed int64) ([][]float64, error) {
	if p.Tasks == nil {
		return nil, fmt.Errorf("gptune: problem has no task space")
	}
	return sample.FeasibleLHS(p.Tasks, delta, rand.New(rand.NewSource(seed)))
}

// Tuner is the single-task autotuner interface shared by GPTune (δ=1) and
// the baseline tuners.
type Tuner = tuners.Tuner

// NewTuner returns a tuner by name: "gptune" (single-task MLA),
// "opentuner", "hpbandster", "surf", "random", or "grid" — mirroring the
// paper's Section 6.1 interface for invoking other autotuners (it lists
// OpenTuner, HpBandSter and ytopt; SuRF is the Section 5 random-forest
// approach).
func NewTuner(name string) (Tuner, error) {
	switch name {
	case "gptune", "gptune-singletask":
		return singletask.Tuner{}, nil
	case "opentuner":
		return opentuner.Tuner{}, nil
	case "hpbandster":
		return hpbandster.Tuner{}, nil
	case "surf":
		return surf.Tuner{}, nil
	case "random":
		return tuners.Random{}, nil
	case "grid":
		return tuners.Grid{}, nil
	}
	return nil, fmt.Errorf("gptune: unknown tuner %q", name)
}

// TunerNames lists the invocable tuner names.
func TunerNames() []string {
	return []string{"gptune", "opentuner", "hpbandster", "surf", "random", "grid"}
}

// History is the persistent tuning-data archive (paper goal #3).
type History = histdb.DB

// HistoryRecord is one archived evaluation.
type HistoryRecord = histdb.Record

// LoadHistory reads an archive from disk (empty when missing).
func LoadHistory(path string) (*History, error) { return histdb.Load(path) }

// NewHistory returns an empty archive.
func NewHistory() *History { return histdb.New() }

// PriorSample is one pre-existing evaluation used to warm-start MLA (see
// Options.Prior).
type PriorSample = core.PriorSample

// PriorFromHistory converts a problem's archived records into MLA prior
// samples for the given tasks, enabling tuning that improves over time:
//
//	db, _ := gptune.LoadHistory("runs.json")
//	opts.Prior = gptune.PriorFromHistory(db, problem.Name, tasks)
func PriorFromHistory(db *History, problem string, tasks [][]float64) []PriorSample {
	var out []PriorSample
	for _, task := range tasks {
		for _, r := range db.Query(problem, task) {
			if !r.IsEval() || len(r.Outputs) == 0 {
				continue // model snapshots and output-less records are not evaluations
			}
			out = append(out, PriorSample{Task: r.Task, X: r.Config, Y: r.Outputs})
		}
	}
	return out
}

// RecordResult archives every evaluation of an MLA result into db.
func RecordResult(db *History, problem string, res *Result) {
	for _, tr := range res.Tasks {
		for j := range tr.X {
			db.Append(histdb.Record{
				Problem: problem,
				Task:    tr.Task,
				Config:  tr.X[j],
				Outputs: tr.Y[j],
			})
		}
	}
}

// Checkpoint receives every completed evaluation of a run as it lands (see
// Options.Checkpoint); Checkpointer is the WAL-backed implementation that
// makes runs crash-safe and resumable.
type (
	Checkpoint        = core.Checkpoint
	CheckpointRecord  = core.CheckpointRecord
	CheckpointOptions = core.CheckpointOptions
	Checkpointer      = core.Checkpointer
)

// NewCheckpoint creates a fresh crash-safe evaluation log at path; pass the
// result as Options.Checkpoint so every evaluation is durable the moment it
// completes. It refuses a path that already holds records — use Resume.
func NewCheckpoint(path string, opts CheckpointOptions) (*Checkpointer, error) {
	return core.NewCheckpoint(path, opts)
}

// Resume reopens a checkpoint left by a killed run. Re-running Tune with
// the same problem, tasks, seed and options replays the logged evaluations
// bitwise (without re-invoking the objective for them) and then continues
// tuning — and logging — from where the crash cut the run off.
func Resume(path string, opts CheckpointOptions) (*Checkpointer, error) {
	return core.Resume(path, opts)
}

// VerifyHistory inspects the snapshot and write-ahead log behind path and
// reports what a recovery would keep (see histdb.Verify).
func VerifyHistory(path string) (histdb.VerifyResult, error) { return histdb.Verify(path) }

// ModelSnapshot is a serialized fitted surrogate; ModelStore receives one
// per modeling phase (see Options.Transfer and Options.WarmStart).
type (
	ModelSnapshot = core.ModelSnapshot
	ModelStore    = core.ModelStore
)

// SurrogateKinds lists the model backends selectable via Options.Surrogate,
// in the surrogate registry's order: "lcm" (the paper's multitask Linear
// Coregionalization Model, the default), "gp-indep" (independent per-task
// GPs — no cross-task learning), "sgp" (sparse inducing-point GPs that scale
// to histories far past the exact backends' O(n³) ceiling), and "rf" (random
// forest, the SuRF-style Section 5 approach). The registry is the single
// source of truth — CLI help and service validation errors both derive from
// this list.
func SurrogateKinds() []string { return surrogate.Kinds() }

// LoadModelSnapshots reads the fitted-surrogate snapshots a checkpointed run
// with Options.Transfer left in its history log, enabling transfer learning
// across sessions: feed the result to a later run's Options.WarmStart and
// its modeling phases seed hyperparameter optimization at the previous
// session's optimum (the paper's "tuning improves over time" goal, applied
// to the model rather than the data). Snapshots are returned in append
// order; WarmStart uses the last matching (kind, objective) entry. A
// missing file returns no snapshots and no error.
func LoadModelSnapshots(path string) ([]ModelSnapshot, error) {
	db, err := histdb.Load(path)
	if err != nil {
		return nil, err
	}
	var out []ModelSnapshot
	for _, r := range db.Records() {
		if r.Kind == histdb.KindModel {
			out = append(out, ModelSnapshot{Kind: r.Surrogate, Objective: r.Objective, Data: r.Snapshot})
		}
	}
	return out, nil
}

// Dataset is multitask training data for standalone surrogate modeling.
type Dataset = gp.Dataset

// Surrogate is a fitted multitask LCM model (Eqs. 1-6 of the paper),
// usable directly for regression outside the tuning loop.
type Surrogate = gp.LCM

// SurrogateOptions configures standalone LCM fitting.
type SurrogateOptions = gp.FitOptions

// FitSurrogate fits the multitask LCM to a dataset — the paper's modeling
// phase exposed as a standalone regression tool. Combine with
// Surrogate.Predict and Surrogate.LeaveOneOut for model diagnostics.
func FitSurrogate(data *Dataset, options SurrogateOptions) (*Surrogate, error) {
	return gp.FitLCM(data, options)
}
