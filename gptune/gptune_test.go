package gptune_test

import (
	"math"
	"path/filepath"
	"testing"

	"repro/gptune"
)

func demoProblem() *gptune.Problem {
	return &gptune.Problem{
		Name:    "demo",
		Tasks:   gptune.NewSpace(gptune.Real("t", 0, 1)),
		Tuning:  gptune.NewSpace(gptune.Real("x", 0, 1)),
		Outputs: gptune.Outputs("y"),
		Objective: func(task, x []float64) ([]float64, error) {
			d := x[0] - 0.4
			return []float64{task[0] + d*d}, nil
		},
	}
}

func TestTuneEndToEnd(t *testing.T) {
	res, err := gptune.Tune(demoProblem(), [][]float64{{0}, {0.5}}, gptune.Options{EpsTot: 12, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tasks) != 2 {
		t.Fatalf("tasks = %d", len(res.Tasks))
	}
	for i, tr := range res.Tasks {
		x, y := tr.Best()
		if math.Abs(x[0]-0.4) > 0.2 {
			t.Errorf("task %d: best x = %v, want near 0.4 (y=%v)", i, x[0], y[0])
		}
	}
}

func TestSampleTasks(t *testing.T) {
	tasks, err := gptune.SampleTasks(demoProblem(), 5, 2)
	if err != nil || len(tasks) != 5 {
		t.Fatalf("SampleTasks: %v %v", tasks, err)
	}
	for _, task := range tasks {
		if task[0] < 0 || task[0] > 1 {
			t.Fatalf("task out of range: %v", task)
		}
	}
}

func TestNewTunerDispatch(t *testing.T) {
	for _, name := range gptune.TunerNames() {
		tn, err := gptune.NewTuner(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		tr, err := tn.Tune(demoProblem(), []float64{0}, 8, 3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tr.X) == 0 {
			t.Fatalf("%s: no evaluations", name)
		}
	}
	if _, err := gptune.NewTuner("bogus"); err == nil {
		t.Fatalf("unknown tuner accepted")
	}
}

func TestHistoryIntegration(t *testing.T) {
	res, err := gptune.Tune(demoProblem(), [][]float64{{0}}, gptune.Options{EpsTot: 6, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	db := gptune.NewHistory()
	gptune.RecordResult(db, "demo", res)
	if db.Len() != 6 {
		t.Fatalf("recorded %d evaluations, want 6", db.Len())
	}
	path := filepath.Join(t.TempDir(), "hist.json")
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := gptune.LoadHistory(path)
	if err != nil || loaded.Len() != 6 {
		t.Fatalf("load: %v %d", err, loaded.Len())
	}
	best, ok := loaded.Best("demo", res.Tasks[0].Task)
	if !ok {
		t.Fatalf("no best record")
	}
	_, wantY := res.Tasks[0].Best()
	if best.Outputs[0] != wantY[0] {
		t.Fatalf("archived best %v != run best %v", best.Outputs[0], wantY[0])
	}
}

func TestPriorFromHistory(t *testing.T) {
	p := demoProblem()
	res, err := gptune.Tune(p, [][]float64{{0}}, gptune.Options{EpsTot: 6, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	db := gptune.NewHistory()
	gptune.RecordResult(db, "demo", res)

	// Warm-start a second run from the archive.
	prior := gptune.PriorFromHistory(db, "demo", [][]float64{{0}})
	if len(prior) != 6 {
		t.Fatalf("prior has %d samples, want 6", len(prior))
	}
	res2, err := gptune.Tune(p, [][]float64{{0}}, gptune.Options{EpsTot: 4, Seed: 6, Prior: prior})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Tasks[0].X) != 10 {
		t.Fatalf("warm-started dataset has %d samples, want 10 (4 new + 6 prior)", len(res2.Tasks[0].X))
	}
	// Unmatched tasks produce no priors.
	if got := gptune.PriorFromHistory(db, "demo", [][]float64{{0.77}}); len(got) != 0 {
		t.Fatalf("unexpected priors for unseen task: %d", len(got))
	}
}
