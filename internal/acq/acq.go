// Package acq implements the acquisition functions of GPTune's search phase:
// Expected Improvement (Section 3.1) maximized by PSO, and the
// multi-objective utilities (Pareto dominance, non-dominated filtering,
// hypervolume) that back the NSGA-II-based search of Section 3.2.
package acq

import (
	"math"
	"sort"
)

// normPDF is the standard normal density φ.
func normPDF(z float64) float64 {
	return math.Exp(-0.5*z*z) / math.Sqrt(2*math.Pi)
}

// normCDF is the standard normal distribution Φ.
func normCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// varianceFloor is the smallest posterior variance EI evaluates at. GP
// posteriors can report zero or slightly negative variance at (or numerically
// near) training points through cancellation in k** − kᵀK⁻¹k; flooring σ²
// keeps z = (yBest−μ)/σ finite there instead of dividing by zero. The floor
// is far below any meaningful predictive uncertainty, so Φ(z) and φ(z)
// saturate and EI degrades gracefully to max(yBest−μ, 0), the σ→0 limit.
const varianceFloor = 1e-18

// ExpectedImprovement returns EI(x) for a minimization problem given the
// posterior mean mu and variance at x and the incumbent best observation
// yBest:
//
//	EI = (yBest - μ)·Φ(z) + σ·φ(z),  z = (yBest - μ)/σ.
//
// EI is non-negative and tends to 0 as σ → 0 at dominated points. Degenerate
// posteriors are safe: non-positive, denormal, or +Inf variance is clamped
// and NaN anywhere yields 0, so the result is always finite and usable as a
// PSO/NSGA-II fitness value.
func ExpectedImprovement(mu, variance, yBest float64) float64 {
	if math.IsNaN(mu) || math.IsNaN(variance) || math.IsNaN(yBest) {
		return 0
	}
	if variance < varianceFloor {
		variance = varianceFloor
	} else if math.IsInf(variance, 1) {
		// Infinite uncertainty stays maximally attractive, just finite.
		variance = math.MaxFloat64
	}
	sigma := math.Sqrt(variance)
	z := (yBest - mu) / sigma
	ei := (yBest-mu)*normCDF(z) + sigma*normPDF(z)
	if ei < 0 || math.IsNaN(ei) {
		return 0
	}
	if math.IsInf(ei, 1) {
		return math.MaxFloat64
	}
	return ei
}

// LowerConfidenceBound returns μ - κ·σ, an alternative acquisition for
// minimization (smaller is more promising).
func LowerConfidenceBound(mu, variance, kappa float64) float64 {
	if variance < 0 {
		variance = 0
	}
	return mu - kappa*math.Sqrt(variance)
}

// ProbabilityOfImprovement returns P[f(x) < yBest].
func ProbabilityOfImprovement(mu, variance, yBest float64) float64 {
	if variance <= 0 {
		if mu < yBest {
			return 1
		}
		return 0
	}
	return normCDF((yBest - mu) / math.Sqrt(variance))
}

// Dominates reports Pareto dominance for minimization: a ≤ b componentwise
// with at least one strict inequality.
func Dominates(a, b []float64) bool {
	strict := false
	for i := range a {
		if a[i] > b[i] {
			return false
		}
		if a[i] < b[i] {
			strict = true
		}
	}
	return strict
}

// ParetoFilter returns the indices of the non-dominated points among objs
// (each objs[i] is a γ-vector, minimized).
func ParetoFilter(objs [][]float64) []int {
	var front []int
	for i := range objs {
		dominated := false
		for j := range objs {
			if i != j && Dominates(objs[j], objs[i]) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, i)
		}
	}
	return front
}

// Hypervolume computes the hypervolume indicator of a 2-D Pareto front with
// respect to reference point ref (both objectives minimized; every point
// must weakly dominate ref). Larger is better. Points worse than ref in any
// coordinate contribute nothing.
func Hypervolume(front [][]float64, ref []float64) float64 {
	if len(ref) != 2 {
		panic("acq: Hypervolume supports exactly 2 objectives")
	}
	// Keep points dominating ref, sort by f1 ascending, sweep.
	var pts [][]float64
	for _, p := range front {
		if p[0] < ref[0] && p[1] < ref[1] {
			pts = append(pts, p)
		}
	}
	if len(pts) == 0 {
		return 0
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i][0] != pts[j][0] { //gptlint:ignore float-eq sort tie-break; exact comparison only picks a stable order for equal coordinates
			return pts[i][0] < pts[j][0]
		}
		return pts[i][1] < pts[j][1]
	})
	hv := 0.0
	prevF2 := ref[1]
	for _, p := range pts {
		if p[1] < prevF2 {
			hv += (ref[0] - p[0]) * (prevF2 - p[1])
			prevF2 = p[1]
		}
	}
	return hv
}

// MultiObjectiveEI scalarizes per-objective expected improvements into a
// single acquisition value by product (the "EI of the box" heuristic):
// candidates improving several objectives at once score highest. yBest holds
// the incumbent best value per objective.
func MultiObjectiveEI(mu, variance, yBest []float64) float64 {
	v := 1.0
	for s := range mu {
		v *= ExpectedImprovement(mu[s], variance[s], yBest[s])
	}
	return v
}
