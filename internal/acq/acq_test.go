package acq

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNormCDFKnownValues(t *testing.T) {
	cases := []struct{ z, want float64 }{
		{0, 0.5},
		{1.959963984540054, 0.975},
		{-1.959963984540054, 0.025},
		{3, 0.9986501019683699},
	}
	for _, c := range cases {
		if got := normCDF(c.z); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Φ(%v) = %v, want %v", c.z, got, c.want)
		}
	}
}

func TestNormPDFSymmetricPeak(t *testing.T) {
	if math.Abs(normPDF(0)-1/math.Sqrt(2*math.Pi)) > 1e-15 {
		t.Fatalf("φ(0) wrong")
	}
	if normPDF(1.3) != normPDF(-1.3) {
		t.Fatalf("φ not symmetric")
	}
}

// Properties of EI: non-negative; zero variance at dominated points gives 0;
// increasing variance increases EI at a dominated mean.
func TestExpectedImprovementProperties(t *testing.T) {
	f := func(muRaw, vRaw, bestRaw float64) bool {
		mu := math.Mod(muRaw, 100)
		v := math.Abs(math.Mod(vRaw, 100))
		best := math.Mod(bestRaw, 100)
		if math.IsNaN(mu) || math.IsNaN(v) || math.IsNaN(best) {
			return true
		}
		ei := ExpectedImprovement(mu, v, best)
		return ei >= 0 && !math.IsNaN(ei)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
	if ExpectedImprovement(5, 0, 4) != 0 {
		t.Fatalf("EI with zero variance at dominated mean must be 0")
	}
	if ExpectedImprovement(3, 0, 4) != 1 {
		t.Fatalf("EI with zero variance below incumbent must equal improvement")
	}
	lowVar := ExpectedImprovement(5, 0.01, 4)
	highVar := ExpectedImprovement(5, 4, 4)
	if highVar <= lowVar {
		t.Fatalf("EI should grow with variance at dominated mean: %v vs %v", lowVar, highVar)
	}
}

func TestExpectedImprovementLimits(t *testing.T) {
	// Far below incumbent with tiny variance: EI ≈ improvement.
	ei := ExpectedImprovement(1, 1e-12, 5)
	if math.Abs(ei-4) > 1e-5 {
		t.Fatalf("EI = %v, want ≈ 4", ei)
	}
	// Far above incumbent with tiny variance: EI ≈ 0.
	if ei := ExpectedImprovement(10, 1e-12, 5); ei > 1e-10 {
		t.Fatalf("EI = %v, want ≈ 0", ei)
	}
}

func TestLCBAndPI(t *testing.T) {
	if LowerConfidenceBound(2, 4, 1) != 0 {
		t.Fatalf("LCB(2, 4, 1) should be 0")
	}
	if LowerConfidenceBound(2, -1, 1) != 2 {
		t.Fatalf("LCB with negative variance should clamp")
	}
	if p := ProbabilityOfImprovement(0, 1, 0); math.Abs(p-0.5) > 1e-12 {
		t.Fatalf("PI at incumbent mean should be 0.5, got %v", p)
	}
	if ProbabilityOfImprovement(1, 0, 2) != 1 || ProbabilityOfImprovement(3, 0, 2) != 0 {
		t.Fatalf("PI zero-variance cases wrong")
	}
}

func TestParetoFilterSmall(t *testing.T) {
	objs := [][]float64{
		{1, 5}, // front
		{2, 4}, // front
		{3, 3}, // front
		{3, 5}, // dominated by (1,5)? no: (1,5) vs (3,5): 1<3, 5=5 → dominates
		{2, 6}, // dominated by (1,5)
	}
	front := ParetoFilter(objs)
	want := map[int]bool{0: true, 1: true, 2: true}
	if len(front) != 3 {
		t.Fatalf("front = %v", front)
	}
	for _, i := range front {
		if !want[i] {
			t.Fatalf("unexpected front member %d", i)
		}
	}
}

// Property: no member of the Pareto front is dominated by any point.
func TestParetoFilterQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		objs := make([][]float64, n)
		for i := range objs {
			objs[i] = []float64{rng.Float64(), rng.Float64()}
		}
		front := ParetoFilter(objs)
		if len(front) == 0 {
			return false
		}
		inFront := map[int]bool{}
		for _, i := range front {
			inFront[i] = true
		}
		for _, i := range front {
			for j := range objs {
				if j != i && Dominates(objs[j], objs[i]) {
					return false
				}
			}
		}
		// Every non-front point must be dominated by someone.
		for j := range objs {
			if inFront[j] {
				continue
			}
			dominated := false
			for k := range objs {
				if k != j && Dominates(objs[k], objs[j]) {
					dominated = true
					break
				}
			}
			if !dominated {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHypervolumeKnown(t *testing.T) {
	front := [][]float64{{1, 3}, {2, 2}, {3, 1}}
	ref := []float64{4, 4}
	// Sweep: (1,3): (4-1)*(4-3)=3; (2,2): (4-2)*(3-2)=2; (3,1): (4-3)*(2-1)=1.
	if hv := Hypervolume(front, ref); math.Abs(hv-6) > 1e-12 {
		t.Fatalf("hypervolume = %v, want 6", hv)
	}
	if hv := Hypervolume(nil, ref); hv != 0 {
		t.Fatalf("empty front hv = %v", hv)
	}
	// Points outside the reference box contribute nothing.
	if hv := Hypervolume([][]float64{{5, 5}}, ref); hv != 0 {
		t.Fatalf("dominated-by-ref point contributed %v", hv)
	}
}

// Property: adding a point never decreases hypervolume.
func TestHypervolumeMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ref := []float64{1, 1}
		n := 1 + rng.Intn(10)
		front := make([][]float64, n)
		for i := range front {
			front[i] = []float64{rng.Float64(), rng.Float64()}
		}
		hv1 := Hypervolume(front, ref)
		extra := append(front, []float64{rng.Float64(), rng.Float64()})
		hv2 := Hypervolume(extra, ref)
		return hv2 >= hv1-1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiObjectiveEI(t *testing.T) {
	// Both objectives promising → positive product; one hopeless (σ=0,
	// dominated) → zero.
	v := MultiObjectiveEI([]float64{1, 1}, []float64{1, 1}, []float64{2, 2})
	if v <= 0 {
		t.Fatalf("MO-EI = %v, want > 0", v)
	}
	v = MultiObjectiveEI([]float64{3, 1}, []float64{0, 1}, []float64{2, 2})
	if v != 0 {
		t.Fatalf("MO-EI with one hopeless objective = %v, want 0", v)
	}
}

// TestExpectedImprovementDegenerateInputs: EI must stay finite and
// non-negative under every degenerate posterior a numerically stressed GP
// can emit — negative variance (cancellation at training points), NaN or
// infinite moments — so a single bad prediction can't poison a PSO swarm
// or an NSGA-II fitness comparison.
func TestExpectedImprovementDegenerateInputs(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct {
		name             string
		mu, variance, yB float64
	}{
		{"negative variance improving", 1, -0.5, 5},
		{"negative variance dominated", 5, -0.5, 1},
		{"tiny negative variance", 2, -1e-300, 2},
		{"zero variance at incumbent", 2, 0, 2},
		{"denormal variance", 2, 5e-324, 3},
		{"nan mu", nan, 1, 0},
		{"nan variance", 0, nan, 1},
		{"nan incumbent", 0, 1, nan},
		{"inf variance", 0, inf, 1},
		{"-inf mu", math.Inf(-1), 1, 0},
		{"inf mu", inf, 1, 0},
		{"inf incumbent", 0, 1, inf},
	}
	for _, c := range cases {
		ei := ExpectedImprovement(c.mu, c.variance, c.yB)
		if math.IsNaN(ei) || math.IsInf(ei, 0) || ei < 0 {
			t.Errorf("%s: EI(%v, %v, %v) = %v; want finite non-negative", c.name, c.mu, c.variance, c.yB, ei)
		}
	}
	// The σ²→0⁺ limit: clamped variance reproduces the deterministic
	// improvement exactly, on both sides of the incumbent.
	if got := ExpectedImprovement(3, -1, 4); got != 1 {
		t.Errorf("EI with clamped variance below incumbent = %v, want 1", got)
	}
	if got := ExpectedImprovement(5, -1, 4); got != 0 {
		t.Errorf("EI with clamped variance at dominated mean = %v, want 0", got)
	}
	// MultiObjectiveEI inherits the guard: a NaN objective zeroes the
	// product rather than propagating.
	if got := MultiObjectiveEI([]float64{1, nan}, []float64{1, 1}, []float64{2, 2}); got != 0 || math.IsNaN(got) {
		t.Errorf("MO-EI with NaN objective = %v, want 0", got)
	}
}
