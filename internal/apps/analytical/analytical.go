// Package analytical provides the paper's closed-form tuning benchmark
// (Eq. 11 of Section 6.3): a highly non-convex one-dimensional objective
//
//	y(t,x) = 1 + e^{-(x+1)^{t+1}} cos(2πx) Σ_{i=1..5} sin(2πx(t+2)^i)
//
// whose oscillation frequency grows as (t+2)^5, making large-t tasks very
// hard for black-box optimization. It is the workload of Fig. 2 (shape),
// Fig. 3 (tuner scaling), and Fig. 4 left (performance-model benefit).
// The function itself lives in the leaf package eq11 (shared with the core
// engine's tests); this package wraps it as a core.Problem and registers
// the "analytical" scenario with the workload registry.
package analytical

import (
	"math"

	"repro/internal/apps/analytical/eq11"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/space"
)

// Objective evaluates Eq. (11).
func Objective(t, x float64) float64 {
	return eq11.Objective(t, x)
}

// Problem returns the tuning problem with t ∈ [0, 10] and x ∈ [0, 1].
func Problem() *core.Problem {
	return &core.Problem{
		Name:    "analytical",
		Tasks:   space.MustNew(space.NewReal("t", 0, 10)),
		Tuning:  space.MustNew(space.NewReal("x", 0, 1)),
		Outputs: space.NewOutputSpace("y"),
		Objective: func(task, x []float64) ([]float64, error) {
			return []float64{Objective(task[0], x[0])}, nil
		},
	}
}

// NoisyModel returns the Section 6.4 performance model for the analytical
// function: ỹ(t,x) = (1 + amp·r(x))·y(t,x) with r(x) a deterministic
// pseudo-random standard normal keyed on x (the paper uses amp = 0.1). The
// model is a noisy oracle: informative but imperfect, exactly the Fig. 4
// (left) setup.
func NoisyModel(amp float64) *core.PerfModel {
	return &core.PerfModel{
		Dim: 1,
		Eval: func(task, x, coeffs []float64) []float64 {
			r := hashNormal(x[0])
			return []float64{(1 + amp*r) * Objective(task[0], x[0])}
		},
	}
}

// hashNormal maps x deterministically to an approximately standard normal
// value, so the model noise r(x) is a fixed function of x as in the paper.
func hashNormal(x float64) float64 {
	u := (math.Float64bits(x) + 0x632BE59BD9B4E019) * 0x9E3779B97F4A7C15
	u ^= u >> 29
	u *= 0xBF58476D1CE4E5B9
	u ^= u >> 32
	u1 := float64(u>>11)/float64(1<<53) + 1e-16
	u2 := float64((u*0x94D049BB133111EB)>>11) / float64(1<<53)
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// TrueMin brute-forces the global minimum over x ∈ [0,1] on a grid fine
// enough to resolve the (t+2)^5 oscillation.
func TrueMin(t float64) (x, y float64) {
	return eq11.TrueMin(t)
}

func init() {
	bench.Register(bench.Scenario{
		Name:        "analytical",
		Description: "the paper's Eq. (11) closed-form 1-D benchmark (Figs. 2-4); grid-enumerated optimum",
		Tags:        []string{"paper", "synthetic"},
		New: func(p bench.Params) (*core.Problem, error) {
			return Problem(), nil
		},
		Optimum: func(task []float64) (float64, bool) {
			_, y := eq11.TrueMin(task[0])
			return y, true
		},
	})
}
