package analytical

import (
	"math"
	"testing"
)

func TestObjectiveKnownStructure(t *testing.T) {
	// At x = 0 every sine term vanishes, so y = 1 for all t.
	for _, tv := range []float64{0, 1, 5, 9.5} {
		if y := Objective(tv, 0); math.Abs(y-1) > 1e-12 {
			t.Fatalf("y(%v, 0) = %v, want 1", tv, y)
		}
	}
	// The envelope bounds the function: |y - 1| ≤ 5·e^{-(x+1)^{t+1}}.
	for _, tv := range []float64{0, 2, 7} {
		for i := 0; i <= 100; i++ {
			x := float64(i) / 100
			env := 5 * math.Exp(-math.Pow(x+1, tv+1))
			if math.Abs(Objective(tv, x)-1) > env+1e-9 {
				t.Fatalf("envelope violated at t=%v x=%v", tv, x)
			}
		}
	}
}

func TestTrueMinBelowPlateau(t *testing.T) {
	for _, tv := range []float64{0, 0.5, 1} {
		x, y := TrueMin(tv)
		if y >= 1 {
			t.Fatalf("t=%v: TrueMin %v not below plateau", tv, y)
		}
		if x < 0 || x > 1 {
			t.Fatalf("minimizer %v out of range", x)
		}
		if got := Objective(tv, x); got != y {
			t.Fatalf("reported minimum inconsistent: %v vs %v", got, y)
		}
	}
}

func TestProblemEvaluates(t *testing.T) {
	p := Problem()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	y, err := p.Objective([]float64{1.5}, []float64{0.25})
	if err != nil || len(y) != 1 {
		t.Fatalf("objective failed: %v %v", y, err)
	}
	if y[0] != Objective(1.5, 0.25) {
		t.Fatalf("problem objective disagrees with Objective")
	}
}

func TestNoisyModelTracksObjective(t *testing.T) {
	m := NoisyModel(0.1)
	for i := 0; i < 200; i++ {
		x := float64(i) / 200
		y := Objective(3, x)
		my := m.Eval([]float64{3}, []float64{x}, nil)[0]
		if y != 0 && math.Abs(my/y-1) > 0.8 {
			// |0.1·r| > 0.8 means |r| > 8: essentially impossible for a
			// standard normal; would indicate broken hashing.
			t.Fatalf("model ratio %v at x=%v implausible", my/y, x)
		}
	}
	// Determinism: the model is a fixed function of x.
	a := m.Eval([]float64{3}, []float64{0.123}, nil)[0]
	b := m.Eval([]float64{3}, []float64{0.123}, nil)[0]
	if a != b {
		t.Fatalf("model not deterministic")
	}
	// And actually noisy: values at nearby x differ from the exact ratio.
	r1 := m.Eval([]float64{0}, []float64{0.2}, nil)[0] / Objective(0, 0.2)
	r2 := m.Eval([]float64{0}, []float64{0.3}, nil)[0] / Objective(0, 0.3)
	if r1 == r2 {
		t.Fatalf("model noise constant across x")
	}
}

func TestHashNormalRoughlyStandard(t *testing.T) {
	sum, sumSq := 0.0, 0.0
	const n = 5000
	for i := 0; i < n; i++ {
		v := hashNormal(float64(i) / n)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	sd := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean) > 0.05 || math.Abs(sd-1) > 0.1 {
		t.Fatalf("hashNormal mean %v sd %v", mean, sd)
	}
}
