// Package eq11 holds the pure math of the paper's Eq. (11) benchmark
// function, split out of package analytical as an import-free leaf: the
// core engine's own tests evaluate it (they cannot import analytical, which
// registers itself with the workload registry and would close an import
// cycle back into core), and analytical delegates here so there is exactly
// one implementation in the tree.
package eq11

import "math"

// Objective evaluates Eq. (11) of Section 6.3:
//
//	y(t,x) = 1 + e^{-(x+1)^{t+1}} cos(2πx) Σ_{i=1..5} sin(2πx(t+2)^i)
func Objective(t, x float64) float64 {
	s := 0.0
	for i := 1; i <= 5; i++ {
		s += math.Sin(2 * math.Pi * x * math.Pow(t+2, float64(i)))
	}
	return 1 + math.Exp(-math.Pow(x+1, t+1))*math.Cos(2*math.Pi*x)*s
}

// TrueMin brute-forces the global minimum over x ∈ [0,1] on a grid fine
// enough to resolve the (t+2)^5 oscillation.
func TrueMin(t float64) (x, y float64) {
	// At least 20 points per period of the fastest component.
	steps := int(20 * math.Pow(t+2, 5))
	if steps < 1000 {
		steps = 1000
	}
	if steps > 5_000_000 {
		steps = 5_000_000
	}
	bestX, bestY := 0.0, math.Inf(1)
	for i := 0; i <= steps; i++ {
		xi := float64(i) / float64(steps)
		if yi := Objective(t, xi); yi < bestY {
			bestX, bestY = xi, yi
		}
	}
	return bestX, bestY
}
