// Package hypre simulates the paper's hypre workload (Sections 6.2 and 6.6,
// Table 4): GMRES with a BoomerAMG-style multigrid preconditioner solving
// the Poisson equation on structured 3D grids, with a task t = [n1, n2, n3]
// (grid dimensions) and 12 tuning parameters covering the 3D process grid,
// coarsening aggressiveness, transfer operators, smoother family and weight,
// sweep counts, cycle shape, coarse-grid threshold and GMRES restart.
//
// Substitution note (see DESIGN.md): instead of BoomerAMG on Cori, the
// iteration counts come from *real* geometric multigrid + GMRES solves
// (internal/mg) on a proxy-coarsened grid (each dimension capped, aspect
// ratio preserved); runtime is then modeled from the true per-iteration work
// counted by the solver, scaled to the full grid, plus an α-β halo-exchange
// and allreduce model over the p1×p2×p3 process grid.
package hypre

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/mg"
	"repro/internal/space"
)

// App is the hypre simulator.
type App struct {
	Machine machine.Machine
	PMax    int // total MPI processes (paper: 1 or 4 Cori nodes)
	Noise   *machine.Noise
	// ProxyCap bounds the per-dimension proxy grid size used for the real
	// solves (default 20).
	ProxyCap int

	mu    sync.Mutex
	cache map[string]solveStats
}

type solveStats struct {
	iters         int
	converged     bool
	flopsPerPoint float64 // true counted flops per fine-grid point
	levels        int
	sweeps        int
}

// New returns the simulator on nodes Cori-Haswell nodes.
func New(nodes int) *App {
	m := machine.CoriHaswell()
	return &App{
		Machine:  m,
		PMax:     nodes * m.CoresPerNode,
		Noise:    machine.NewNoise(0.05, 0x47c3),
		ProxyCap: 20,
		cache:    make(map[string]solveStats),
	}
}

// Config holds the native tuning parameters.
type Config struct {
	Px, Py     int // process grid (Pz = P/(Px·Py))
	Coarsen    int // 0 standard (ratio 2), 1 aggressive (ratio 4)
	Restrict   mg.Transfer
	Interp     mg.Transfer
	Smoother   mg.Smoother
	Omega      float64
	PreSweeps  int
	PostSweeps int
	Cycle      mg.Cycle
	CoarseSize int
	Restart    int
}

// DefaultConfig mirrors hypre-ish defaults.
func (a *App) DefaultConfig() Config {
	return Config{
		Px: 1, Py: 1,
		Coarsen:  0,
		Restrict: mg.Weighted, Interp: mg.Weighted,
		Smoother: mg.GaussSeidel, Omega: 1.0,
		PreSweeps: 1, PostSweeps: 1,
		Cycle: mg.VCycle, CoarseSize: 8, Restart: 30,
	}
}

// mgOptions converts a Config into solver options.
func (c Config) mgOptions() mg.Options {
	ratio := 2
	if c.Coarsen == 1 {
		ratio = 4
	}
	return mg.Options{
		Smoother:     c.Smoother,
		Omega:        c.Omega,
		PreSweeps:    c.PreSweeps,
		PostSweeps:   c.PostSweeps,
		Cycle:        c.Cycle,
		CoarsenRatio: ratio,
		Restrict:     c.Restrict,
		Interp:       c.Interp,
		CoarseSize:   c.CoarseSize,
	}
}

// proxyDims shrinks the task grid so the largest dimension is at most
// ProxyCap, preserving aspect ratio.
func (a *App) proxyDims(n1, n2, n3 int) (int, int, int, float64) {
	maxDim := n1
	if n2 > maxDim {
		maxDim = n2
	}
	if n3 > maxDim {
		maxDim = n3
	}
	cap := a.ProxyCap
	if cap < 6 {
		cap = 6
	}
	scale := 1.0
	if maxDim > cap {
		scale = float64(maxDim) / float64(cap)
	}
	shrink := func(n int) int {
		v := int(math.Round(float64(n) / scale))
		if v < 4 {
			v = 4
		}
		return v
	}
	return shrink(n1), shrink(n2), shrink(n3), scale
}

// solve runs (or recalls) the real proxy solve for the given task/config.
func (a *App) solve(n1, n2, n3 int, cfg Config) solveStats {
	p1, p2, p3, scale := a.proxyDims(n1, n2, n3)
	key := fmt.Sprintf("%d,%d,%d|%+v", p1, p2, p3, struct {
		C, R, I, S, Pre, Post, Cy, CS, Rst int
		W                                  float64
	}{cfg.Coarsen, int(cfg.Restrict), int(cfg.Interp), int(cfg.Smoother),
		cfg.PreSweeps, cfg.PostSweeps, int(cfg.Cycle), cfg.CoarseSize, cfg.Restart, cfg.Omega})
	a.mu.Lock()
	if st, ok := a.cache[key]; ok {
		a.mu.Unlock()
		return st
	}
	a.mu.Unlock()

	h, err := mg.NewHierarchy(p1, p2, p3, cfg.mgOptions())
	var st solveStats
	if err != nil {
		st = solveStats{iters: 200, converged: false, flopsPerPoint: 100, levels: 1, sweeps: 2}
	} else {
		b := make([]float64, h.FineN())
		for i := range b {
			b[i] = 1
		}
		_, res, gerr := mg.GMRES(h.Apply, h.Precondition, b, cfg.Restart, 100, 1e-7)
		iters := res.Iterations
		if gerr != nil || iters == 0 {
			iters = 200
		}
		// Multigrid iteration counts grow mildly with grid size; real hypre
		// sees a similar drift. Apply a small log correction for the
		// proxy→full extrapolation.
		iters = int(math.Ceil(float64(iters) * (1 + 0.06*math.Log2(math.Max(scale, 1)))))
		st = solveStats{
			iters:         iters,
			converged:     res.Converged,
			flopsPerPoint: float64(h.Flops) / float64(h.FineN()),
			levels:        h.Levels(),
			sweeps:        cfg.PreSweeps + cfg.PostSweeps,
		}
	}
	a.mu.Lock()
	a.cache[key] = st
	a.mu.Unlock()
	return st
}

// Runtime returns the modeled (noise-free) solve time for task [n1,n2,n3]
// under cfg.
func (a *App) Runtime(n1, n2, n3 int, cfg Config) float64 {
	st := a.solve(n1, n2, n3, cfg)
	p := a.PMax
	px, py := cfg.Px, cfg.Py
	if px < 1 {
		px = 1
	}
	if py < 1 {
		py = 1
	}
	pz := p / (px * py)
	if pz < 1 {
		pz = 1
	}
	pUsed := px * py * pz

	fullN := float64(n1 * n2 * n3)
	totalFlops := st.flopsPerPoint * fullN
	if !st.converged {
		totalFlops *= 1.5 // failure penalty: hit the iteration cap + restarts
	}
	// Stencil sweeps are memory-bound: ~5% of peak flops per core.
	tFlop := totalFlops / (float64(pUsed) * a.Machine.FlopsPerCore * 0.05)

	// Communication: halo exchanges per sweep per level per iteration (6
	// faces), surface-proportional volume, plus 2 allreduces per GMRES
	// iteration.
	surf := 2 * (float64(n1*n2)/float64(px*py) +
		float64(n1*n3)/float64(px*pz) +
		float64(n2*n3)/float64(py*pz))
	sweepsPerCycle := float64(st.sweeps+2) * float64(st.levels)
	if cfg.Cycle == mg.WCycle {
		sweepsPerCycle *= 1.7
	}
	msgs := float64(st.iters) * sweepsPerCycle * 6
	vol := float64(st.iters) * sweepsPerCycle * surf * 8 * 1.5 // levels sum ≈ 1.5× finest
	logP := math.Log2(math.Max(float64(pUsed), 2))
	msgs += 2 * float64(st.iters) * logP
	tComm := a.Machine.TimeComm(msgs, vol)

	// Setup: hierarchy construction ≈ 3 cycles of work.
	tSetup := 3 * st.flopsPerPoint / math.Max(float64(st.iters), 1) * fullN /
		(float64(pUsed) * a.Machine.FlopsPerCore * 0.05)

	return tFlop + tComm + tSetup + 0.02
}

func (a *App) configOf(x []float64) Config {
	return Config{
		Px:         int(x[0]),
		Py:         int(x[1]),
		Coarsen:    int(x[2]),
		Restrict:   mg.Transfer(int(x[3])),
		Interp:     mg.Transfer(int(x[4])),
		Smoother:   mg.Smoother(int(x[5])),
		Omega:      x[6],
		PreSweeps:  int(x[7]),
		PostSweeps: int(x[8]),
		Cycle:      mg.Cycle(int(x[9])),
		CoarseSize: int(x[10]),
		Restart:    int(x[11]),
	}
}

// ConfigToVector converts a Config to the native tuning vector.
func ConfigToVector(c Config) []float64 {
	return []float64{
		float64(c.Px), float64(c.Py), float64(c.Coarsen), float64(c.Restrict),
		float64(c.Interp), float64(c.Smoother), c.Omega, float64(c.PreSweeps),
		float64(c.PostSweeps), float64(c.Cycle), float64(c.CoarseSize), float64(c.Restart),
	}
}

// Problem returns the tuning problem: task = [n1, n2, n3] with
// 10 ≤ n_i ≤ 100 (as in Table 4), 12 tuning parameters, runtime objective.
func (a *App) Problem() *core.Problem {
	tasks := space.MustNew(
		space.NewInteger("n1", 10, 100),
		space.NewInteger("n2", 10, 100),
		space.NewInteger("n3", 10, 100),
	)
	tuning := space.MustNew(
		space.NewLogInteger("px", 1, a.PMax),
		space.NewLogInteger("py", 1, a.PMax),
		space.NewCategorical("coarsen", "standard", "aggressive"),
		space.NewCategorical("restrict", mg.TransferNames...),
		space.NewCategorical("interp", mg.TransferNames...),
		space.NewCategorical("smoother", mg.SmootherNames...),
		space.NewReal("omega", 0.4, 1.9),
		space.NewInteger("presweeps", 0, 3),
		space.NewInteger("postsweeps", 0, 3),
		space.NewCategorical("cycle", mg.CycleNames...),
		space.NewLogInteger("coarsesize", 4, 32),
		space.NewInteger("restart", 10, 50),
	)
	tuning.AddConstraint("pxpy<=P", func(v map[string]float64) bool {
		return v["px"]*v["py"] <= float64(a.PMax)
	})
	return &core.Problem{
		Name:    "hypre",
		Tasks:   tasks,
		Tuning:  tuning,
		Outputs: space.NewOutputSpace("runtime"),
		Objective: func(task, x []float64) ([]float64, error) {
			n1, n2, n3 := int(task[0]), int(task[1]), int(task[2])
			cfg := a.configOf(x)
			t := a.Runtime(n1, n2, n3, cfg)
			key := fmt.Sprintf("hypre|%d,%d,%d|%v", n1, n2, n3, x)
			return []float64{t * a.Noise.Mul(key)}, nil
		},
	}
}
