package hypre

import (
	"testing"

	"repro/internal/mg"
)

func TestRuntimePositiveAndScalesWithGrid(t *testing.T) {
	a := New(1)
	cfg := a.DefaultConfig()
	small := a.Runtime(10, 10, 10, cfg)
	big := a.Runtime(100, 100, 100, cfg)
	if small <= 0 || big <= 0 {
		t.Fatalf("nonpositive runtime: %v %v", small, big)
	}
	if big <= small {
		t.Fatalf("100³ (%v) not slower than 10³ (%v)", big, small)
	}
}

func TestBadSmootherWeightCostsTime(t *testing.T) {
	a := New(1)
	good := a.DefaultConfig()
	good.Smoother = mg.Jacobi
	good.Omega = 0.8
	bad := good
	bad.Omega = 1.9
	tg := a.Runtime(40, 40, 40, good)
	tb := a.Runtime(40, 40, 40, bad)
	if tb <= tg {
		t.Fatalf("divergent smoother (%v) not slower than damped (%v)", tb, tg)
	}
}

func TestNoSmoothingIsWorse(t *testing.T) {
	a := New(1)
	cfg := a.DefaultConfig()
	none := cfg
	none.PreSweeps, none.PostSweeps = 0, 0 // mg clamps to one post sweep
	base := a.Runtime(30, 30, 30, cfg)
	if base <= 0 {
		t.Fatalf("base %v", base)
	}
	_ = none // clamped internally; just ensure it evaluates
	if v := a.Runtime(30, 30, 30, none); v <= 0 {
		t.Fatalf("clamped config broke: %v", v)
	}
}

func TestProcessGridMatters(t *testing.T) {
	a := New(4) // 128 processes
	cfg := a.DefaultConfig()
	// Very skewed grid should be slower than a balanced one on an
	// anisotropy-free task.
	cfg.Px, cfg.Py = 128, 1 // pz = 1
	skewed := a.Runtime(60, 60, 60, cfg)
	cfg.Px, cfg.Py = 8, 4 // pz = 4
	balanced := a.Runtime(60, 60, 60, cfg)
	if balanced >= skewed {
		t.Fatalf("balanced grid (%v) not faster than skewed (%v)", balanced, skewed)
	}
}

func TestSolveCacheHits(t *testing.T) {
	a := New(1)
	cfg := a.DefaultConfig()
	_ = a.Runtime(50, 50, 50, cfg)
	before := len(a.cache)
	_ = a.Runtime(50, 50, 50, cfg)
	if len(a.cache) != before {
		t.Fatalf("cache grew on repeat evaluation")
	}
	// Different grid size beyond proxy resolution creates a new entry.
	_ = a.Runtime(10, 10, 10, cfg)
	if len(a.cache) == before {
		t.Fatalf("distinct proxy not cached separately")
	}
}

func TestProxyDims(t *testing.T) {
	a := New(1)
	p1, p2, p3, scale := a.proxyDims(100, 50, 10)
	if p1 > a.ProxyCap || scale < 4.9 {
		t.Fatalf("proxy %d,%d,%d scale %v", p1, p2, p3, scale)
	}
	if p3 < 4 {
		t.Fatalf("proxy floor violated: %d", p3)
	}
	q1, q2, q3, s := a.proxyDims(12, 12, 12)
	if s != 1 || q1 != 12 || q2 != 12 || q3 != 12 {
		t.Fatalf("small grids must not shrink: %d %d %d %v", q1, q2, q3, s)
	}
}

func TestProblemEvaluatesAndConstrains(t *testing.T) {
	a := New(1)
	p := a.Problem()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	x := ConfigToVector(a.DefaultConfig())
	y, err := p.Objective([]float64{30, 20, 15}, x)
	if err != nil || len(y) != 1 || y[0] <= 0 {
		t.Fatalf("objective: %v %v", y, err)
	}
	// px·py > P must be infeasible.
	bad := ConfigToVector(a.DefaultConfig())
	bad[0], bad[1] = float64(a.PMax), 2
	if p.Tuning.Feasible(bad) {
		t.Fatalf("oversubscribed process grid accepted")
	}
	// Noise present but bounded.
	y2, _ := p.Objective([]float64{30, 20, 15}, x)
	if y[0] == y2[0] {
		t.Fatalf("no measurement noise")
	}
}

func TestConfigVectorRoundTrip(t *testing.T) {
	a := New(2)
	cfg := Config{
		Px: 4, Py: 2, Coarsen: 1,
		Restrict: mg.Injection, Interp: mg.Weighted,
		Smoother: mg.SSOR, Omega: 1.2,
		PreSweeps: 2, PostSweeps: 0,
		Cycle: mg.WCycle, CoarseSize: 16, Restart: 40,
	}
	got := a.configOf(ConfigToVector(cfg))
	if got != cfg {
		t.Fatalf("round trip: %+v vs %+v", got, cfg)
	}
}
