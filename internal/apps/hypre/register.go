package hypre

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/core"
)

func init() {
	bench.Register(bench.Scenario{
		Name:        "hypre",
		Description: "hypre AMG solve time via real proxy multigrid solves on a convection-diffusion problem (Section 6.2)",
		Tags:        []string{"paper", "hpc"},
		Params: []bench.ParamDef{
			{Name: "nodes", Default: 1, Help: "Cori-Haswell nodes (32 cores each)"},
		},
		New: func(p bench.Params) (*core.Problem, error) {
			nodes := int(p["nodes"])
			if nodes < 1 {
				return nil, fmt.Errorf("nodes must be >= 1, got %v", p["nodes"])
			}
			return New(nodes).Problem(), nil
		},
	})
}
