// Package mhd simulates the two fusion-plasma production codes of the paper
// (Section 6.2/6.5): M3D_C1 and NIMROD. Both are time-marching
// magnetohydrodynamics codes whose dominant cost is solving a nonsymmetric
// sparse linear system per time step with preconditioned GMRES, using
// SuperLU_DIST factorizations of the poloidal-plane blocks as a block-Jacobi
// preconditioner. The task parameter is the number of time steps — the
// paper's motivating multitask setting, where cheap few-step runs inform
// expensive many-step production runs.
//
// Substitution note (see DESIGN.md): the plane matrices are synthesized
// torus-geometry stencil patterns (denser for M3D_C1's C¹ elements), the
// per-step factorization is priced by the SuperLU_DIST model on a *real*
// symbolic factorization, and ROWPERM affects GMRES iteration counts (poor
// stability → more iterations), mirroring how the real parameter acts.
package mhd

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/apps/superlu"
	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/space"
	"repro/internal/sparse"
)

// Variant selects the simulated application.
type Variant int

const (
	// M3DC1 uses C¹ finite elements on one poloidal plane (denser stencil,
	// β=5 tuning parameters).
	M3DC1 Variant = iota
	// NIMROD uses spectral elements with assembly block sizes nxbl/nybl as
	// two extra tuning parameters (β=7).
	NIMROD
)

// RowPermNames lists the categorical ROWPERM choices (type of row
// permutation for numerical stability).
var RowPermNames = []string{"NOROWPERM", "LargeDiag"}

// App simulates one MHD code.
type App struct {
	Variant Variant
	Machine machine.Machine
	P       int // fixed MPI process count (paper: 32 for M3D_C1, 192 for NIMROD)
	Noise   *machine.Noise

	planeN int // poloidal plane unknowns
	// SolverScale multiplies the factor/solve costs: the synthesized plane
	// matrix stands in for the real codes' much larger meshes across many
	// poloidal planes (substitution scaling, see DESIGN.md), and this factor
	// restores realistic absolute per-step solver cost (the paper's ~3.5s
	// per M3D_C1 step, ~7.5s per NIMROD step, solver-dominated).
	SolverScale float64
	// PhysicsPerStep is the non-solver per-step cost in seconds (explicit
	// advance, diagnostics).
	PhysicsPerStep float64
	once           sync.Once
	mu             sync.Mutex
	anal           map[sparse.Ordering]*sparse.Analysis
	pat            *sparse.Pattern
}

// New returns the simulator. M3D_C1 runs on 1 Cori node, NIMROD on 6, as in
// Section 6.5.
func New(v Variant) *App {
	m := machine.CoriHaswell()
	app := &App{
		Variant: v,
		Machine: m,
		anal:    make(map[sparse.Ordering]*sparse.Analysis),
	}
	switch v {
	case NIMROD:
		app.P = 6 * m.CoresPerNode
		app.planeN = 2400
		app.Noise = machine.NewNoise(0.06, 0x20d2)
		app.SolverScale = 250
		app.PhysicsPerStep = 2.0
	default:
		app.P = m.CoresPerNode
		app.planeN = 1800
		app.Noise = machine.NewNoise(0.06, 0x3a71)
		app.SolverScale = 120
		app.PhysicsPerStep = 1.0
	}
	return app
}

// Name returns the application name.
func (a *App) Name() string {
	if a.Variant == NIMROD {
		return "nimrod"
	}
	return "m3dc1"
}

func (a *App) pattern() *sparse.Pattern {
	a.once.Do(func() {
		side := int(math.Round(math.Sqrt(float64(a.planeN))))
		if a.Variant == M3DC1 {
			// C¹ elements couple second neighbors: radius-2 stencil.
			a.pat = sparse.Grid3D(side, side, 1, 2, false)
		} else {
			a.pat = sparse.Grid3D(side, side, 1, 1, false)
		}
		a.planeN = a.pat.N
	})
	return a.pat
}

func (a *App) analysis(ord sparse.Ordering) *sparse.Analysis {
	pat := a.pattern()
	a.mu.Lock()
	defer a.mu.Unlock()
	if an, ok := a.anal[ord]; ok {
		return an
	}
	an := sparse.Analyze(pat, sparse.Order(pat, ord, 11))
	a.anal[ord] = an
	return an
}

// Config holds native tuning parameters. Nxbl/Nybl are ignored for M3D_C1.
type Config struct {
	RowPerm int // 0 NOROWPERM, 1 LargeDiag
	ColPerm sparse.Ordering
	Pr      int
	NSup    int
	NRel    int
	Nxbl    int
	Nybl    int
}

// DefaultConfig returns SuperLU-like defaults.
func (a *App) DefaultConfig() Config {
	return Config{RowPerm: 1, ColPerm: sparse.MinDegree, Pr: 4, NSup: 128, NRel: 20, Nxbl: 1, Nybl: 1}
}

// StepCost returns the modeled (noise-free) cost of one time step: assemble,
// factor the plane blocks, and run GMRES with triangular solves.
func (a *App) StepCost(cfg Config) float64 {
	an := a.analysis(cfg.ColPerm)
	n := float64(a.planeN)

	slu := superlu.Config{
		ColPerm: cfg.ColPerm,
		Look:    8,
		P:       a.P,
		Pr:      cfg.Pr,
		NSup:    cfg.NSup,
		NRel:    cfg.NRel,
	}
	tFactor, _ := superlu.ModelCost(a.Machine, n, an, slu)

	// GMRES iterations per step: LargeDiag keeps the block-Jacobi
	// preconditioner strong; NOROWPERM loses pivots and needs ~60% more
	// iterations on these indefinite MHD systems.
	iters := 14.0
	if cfg.RowPerm == 0 {
		iters *= 1.6
	}
	// Triangular solves stream the factors: memory-bound.
	fillLU := 2*float64(an.FillL) - n
	tSolve := iters * fillLU * 16 / (a.Machine.MemBandwidth * float64(a.P) / float64(a.Machine.CoresPerNode))
	// Allreduce latency per iteration.
	tSolve += iters * 2 * a.Machine.Latency * math.Log2(math.Max(float64(a.P), 2))

	// Assembly: NIMROD's nxbl/nybl block the element loops; too-small blocks
	// pay loop overhead, too-large blocks fall out of cache.
	tAssemble := n * 2000 / (a.Machine.FlopsPerCore * 0.1 * float64(a.P))
	if a.Variant == NIMROD {
		blk := float64(cfg.Nxbl * cfg.Nybl)
		if blk < 1 {
			blk = 1
		}
		overhead := (1 + 3/blk) * (1 + blk/48)
		tAssemble *= overhead
	}
	return a.SolverScale*(tFactor+tSolve) + tAssemble + a.PhysicsPerStep
}

// Runtime returns the modeled time for `steps` time steps.
func (a *App) Runtime(steps int, cfg Config) float64 {
	if steps < 1 {
		steps = 1
	}
	return 1.0 + float64(steps)*a.StepCost(cfg) // 1s startup (mesh, I/O)
}

func (a *App) configOf(x []float64) Config {
	cfg := Config{
		RowPerm: int(x[0]),
		ColPerm: sparse.Ordering(int(x[1])),
		Pr:      int(x[2]),
		NSup:    int(x[3]),
		NRel:    int(x[4]),
		Nxbl:    1,
		Nybl:    1,
	}
	if a.Variant == NIMROD && len(x) >= 7 {
		cfg.Nxbl = int(x[5])
		cfg.Nybl = int(x[6])
	}
	return cfg
}

// ConfigToVector converts a Config to the native tuning vector for this
// variant.
func (a *App) ConfigToVector(c Config) []float64 {
	v := []float64{float64(c.RowPerm), float64(c.ColPerm), float64(c.Pr), float64(c.NSup), float64(c.NRel)}
	if a.Variant == NIMROD {
		v = append(v, float64(c.Nxbl), float64(c.Nybl))
	}
	return v
}

// Problem returns the tuning problem: task = [steps], tuning per Table 2
// (β=5 for M3D_C1: ROWPERM, COLPERM, p_r, NSUP, NREL; β=7 for NIMROD adds
// nxbl, nybl).
func (a *App) Problem() *core.Problem {
	params := []space.Param{
		space.NewCategorical("ROWPERM", RowPermNames...),
		space.NewCategorical("COLPERM", sparse.OrderingNames...),
		space.NewLogInteger("pr", 1, a.P),
		space.NewLogInteger("NSUP", 8, 512),
		space.NewLogInteger("NREL", 1, 128),
	}
	if a.Variant == NIMROD {
		params = append(params,
			space.NewInteger("nxbl", 1, 8),
			space.NewInteger("nybl", 1, 8),
		)
	}
	return &core.Problem{
		Name:    a.Name(),
		Tasks:   space.MustNew(space.NewInteger("steps", 1, 50)),
		Tuning:  space.MustNew(params...),
		Outputs: space.NewOutputSpace("runtime"),
		Objective: func(task, x []float64) ([]float64, error) {
			steps := int(task[0])
			cfg := a.configOf(x)
			t := a.Runtime(steps, cfg)
			key := fmt.Sprintf("%s|%d|%+v", a.Name(), steps, cfg)
			return []float64{t * a.Noise.Mul(key)}, nil
		},
	}
}
