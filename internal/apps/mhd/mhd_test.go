package mhd

import (
	"testing"

	"repro/internal/sparse"
)

func TestRuntimeLinearInSteps(t *testing.T) {
	a := New(M3DC1)
	cfg := a.DefaultConfig()
	t1 := a.Runtime(1, cfg)
	t3 := a.Runtime(3, cfg)
	t9 := a.Runtime(9, cfg)
	if t1 <= 0 {
		t.Fatalf("nonpositive runtime")
	}
	// (t9 - t3) should be ≈ 3 × (t3 - t1): per-step cost is constant.
	d1 := t3 - t1
	d2 := t9 - t3
	if d1 <= 0 || d2 <= 0 {
		t.Fatalf("steps not increasing cost: %v %v", d1, d2)
	}
	ratio := d2 / d1
	if ratio < 2.9 || ratio > 3.1 {
		t.Fatalf("per-step cost not constant: ratio %v", ratio)
	}
}

func TestRowPermMatters(t *testing.T) {
	a := New(M3DC1)
	good := a.DefaultConfig()
	bad := good
	bad.RowPerm = 0
	if a.StepCost(bad) <= a.StepCost(good) {
		t.Fatalf("NOROWPERM not slower than LargeDiag")
	}
}

func TestNimrodBlockSizesHaveInteriorOptimum(t *testing.T) {
	a := New(NIMROD)
	cfg := a.DefaultConfig()
	at := func(bx, by int) float64 {
		c := cfg
		c.Nxbl, c.Nybl = bx, by
		return a.StepCost(c)
	}
	tiny := at(1, 1)
	mid := at(3, 3)
	huge := at(8, 8)
	if mid >= tiny || mid >= huge {
		t.Fatalf("no interior optimum: tiny=%v mid=%v huge=%v", tiny, mid, huge)
	}
	// M3D_C1 must ignore block sizes entirely.
	m := New(M3DC1)
	c1 := m.DefaultConfig()
	c2 := c1
	c2.Nxbl, c2.Nybl = 7, 7
	if m.StepCost(c1) != m.StepCost(c2) {
		t.Fatalf("M3D_C1 affected by NIMROD-only parameters")
	}
}

func TestProblemShapes(t *testing.T) {
	m := New(M3DC1)
	pm := m.Problem()
	if err := pm.Validate(); err != nil {
		t.Fatal(err)
	}
	if pm.Tuning.Dim() != 5 {
		t.Fatalf("M3D_C1 β = %d, want 5", pm.Tuning.Dim())
	}
	n := New(NIMROD)
	pn := n.Problem()
	if pn.Tuning.Dim() != 7 {
		t.Fatalf("NIMROD β = %d, want 7", pn.Tuning.Dim())
	}
	y, err := pm.Objective([]float64{3}, m.ConfigToVector(m.DefaultConfig()))
	if err != nil || y[0] <= 0 {
		t.Fatalf("objective: %v %v", y, err)
	}
	y2, err := pn.Objective([]float64{15}, n.ConfigToVector(n.DefaultConfig()))
	if err != nil || y2[0] <= 0 {
		t.Fatalf("nimrod objective: %v %v", y2, err)
	}
}

func TestColPermAffectsStepCost(t *testing.T) {
	a := New(M3DC1)
	cfg := a.DefaultConfig()
	cfg.ColPerm = sparse.MinDegree
	md := a.StepCost(cfg)
	cfg.ColPerm = sparse.RandomOrder
	random := a.StepCost(cfg)
	if md == random {
		t.Fatalf("COLPERM has no effect")
	}
}

func TestVariantsDiffer(t *testing.T) {
	m := New(M3DC1)
	n := New(NIMROD)
	if m.P == n.P {
		t.Fatalf("variants share process count")
	}
	if m.Name() == n.Name() {
		t.Fatalf("variants share name")
	}
}
