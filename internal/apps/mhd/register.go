package mhd

import (
	"repro/internal/bench"
	"repro/internal/core"
)

func init() {
	bench.Register(bench.Scenario{
		Name:        "m3dc1",
		Description: "M3D-C1 fusion MHD time step dominated by SuperLU_DIST solves (Section 6.6 transfer-learning workload)",
		Tags:        []string{"paper", "hpc"},
		New: func(p bench.Params) (*core.Problem, error) {
			return New(M3DC1).Problem(), nil
		},
	})
	bench.Register(bench.Scenario{
		Name:        "nimrod",
		Description: "NIMROD fusion MHD time step, the related task M3D-C1 history transfers to (Section 6.6)",
		Tags:        []string{"paper", "hpc"},
		New: func(p bench.Params) (*core.Problem, error) {
			return New(NIMROD).Problem(), nil
		},
	})
}
