package scalapack

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/core"
)

// The two ScaLAPACK scenarios self-register with the workload registry;
// their parameter defaults are the configurations cmd/gptune historically
// hard-coded.
func init() {
	bench.Register(bench.Scenario{
		Name:        "qr",
		Aliases:     []string{"pdgeqrf"},
		Description: "ScaLAPACK PDGEQRF dense QR (Section 6.2): block size and process grid with the paper's pr<=p constraint",
		Tags:        []string{"paper", "hpc", "constrained"},
		Params: []bench.ParamDef{
			{Name: "nodes", Default: 16, Help: "Cori-Haswell nodes (32 cores each)"},
			{Name: "maxdim", Default: 20000, Help: "upper bound on the task dimensions m, n"},
		},
		New: func(p bench.Params) (*core.Problem, error) {
			nodes, maxdim, err := nodesMaxdim(p)
			if err != nil {
				return nil, err
			}
			return NewQR(nodes, maxdim).Problem(), nil
		},
	})
	bench.Register(bench.Scenario{
		Name:        "eigen",
		Aliases:     []string{"pdsyevx"},
		Description: "ScaLAPACK PDSYEVX dense symmetric eigensolver (Section 6.2), pr<=p constraint",
		Tags:        []string{"paper", "hpc", "constrained"},
		Params: []bench.ParamDef{
			{Name: "nodes", Default: 1, Help: "Cori-Haswell nodes (32 cores each)"},
			{Name: "maxdim", Default: 7000, Help: "upper bound on the task dimension m"},
		},
		New: func(p bench.Params) (*core.Problem, error) {
			nodes, maxdim, err := nodesMaxdim(p)
			if err != nil {
				return nil, err
			}
			return NewEigen(nodes, maxdim).Problem(), nil
		},
	})
}

func nodesMaxdim(p bench.Params) (nodes, maxdim int, err error) {
	nodes, maxdim = int(p["nodes"]), int(p["maxdim"])
	if nodes < 1 {
		return 0, 0, fmt.Errorf("nodes must be >= 1, got %v", p["nodes"])
	}
	if maxdim < 1000 {
		return 0, 0, fmt.Errorf("maxdim must be >= 1000 (task dims start at 1000), got %v", p["maxdim"])
	}
	return nodes, maxdim, nil
}
