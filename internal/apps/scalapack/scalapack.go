// Package scalapack simulates the two ScaLAPACK routines tuned in the paper
// (Section 6.2): PDGEQRF (dense QR factorization) and PDSYEVX (dense
// symmetric eigensolver).
//
// Substitution note (see DESIGN.md): the real routines ran on NERSC Cori.
// Here runtime is produced by the communication-optimal QR cost model the
// paper itself uses as its Section 3.3 performance model — Eqs. (8)–(10)
// from Demmel et al. 2012 — combined with a BLAS-3 block-size efficiency
// curve, 2D-process-grid load imbalance, thread scaling for the cores not
// used by MPI ranks, and reproducible lognormal measurement noise. These
// terms give the objective surface the same tuning structure (interior
// block-size optimum, process-grid aspect valleys, p vs nthreads tradeoff)
// that the tuner must navigate on the real machine.
package scalapack

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/space"
)

// QR simulates PDGEQRF with task t = [m, n] and tuning x = [b, p, p_r]
// (b = b_r = b_c; Table 2 lists β = 3).
type QR struct {
	Machine machine.Machine
	// PMax is the fixed total core count (the paper uses up to 64 Cori
	// nodes = 2048 cores).
	PMax int
	// MaxDim bounds task parameters m, n.
	MaxDim int
	// Noise adds reproducible lognormal measurement noise (σ≈0.05); nil
	// disables it.
	Noise *machine.Noise
}

// NewQR returns the PDGEQRF simulator on nodes Cori-Haswell nodes.
func NewQR(nodes int, maxDim int) *QR {
	m := machine.CoriHaswell()
	return &QR{
		Machine: m,
		PMax:    nodes * m.CoresPerNode,
		MaxDim:  maxDim,
		Noise:   machine.NewNoise(0.05, 0x9f2c),
	}
}

// Counts evaluates the paper's Eqs. (8)–(10): per-process flop count,
// message count and communication volume (in words) for an m×n QR on a
// p_r×p_c grid with block size b. The Eq. (8) leading term is written as
// 2n²(3m−n)/(3p), matching the 2mn²−2n³/3 total QR flop count.
func Counts(m, n float64, b, p, pr int) (cflop, cmsg, cvol float64) {
	if n > m {
		m, n = n, m // QR formulas assume m ≥ n; LQ of the transpose otherwise
	}
	pc := p / pr
	if pc < 1 {
		pc = 1
	}
	fb := float64(b)
	fp := float64(p)
	fpr := float64(pr)
	fpc := float64(pc)
	logPr := math.Log2(math.Max(fpr, 2))
	logPc := math.Log2(math.Max(fpc, 2))

	cflop = 2*n*n*(3*m-n)/(3*fp) +
		fb*n*n/(2*fpc) +
		3*fb*n*(2*m-n)/(2*fpr) +
		fb*fb*n/(3*fpr)
	cmsg = 3*n*logPr + 2*n/fb*logPc
	cvol = (n*n/fpc+fb*n)*logPr + (m*n-n*n/2)/fpr*logPc + fb*n/2*logPc
	return cflop, cmsg, cvol
}

// blas3Efficiency models DGEMM efficiency as a function of block size: small
// blocks underuse the cache and vector units, very large blocks thrash the
// cache, giving an interior optimum near b ≈ 128–192.
func blas3Efficiency(b int) float64 {
	fb := float64(b)
	return 0.82 * (fb / (fb + 40)) / (1 + (fb/420)*(fb/420))
}

// threadEfficiency models multithreaded BLAS scaling for nt threads per MPI
// rank (sublinear: 0.9 exponent).
func threadEfficiency(nt int) float64 {
	if nt < 1 {
		nt = 1
	}
	return math.Pow(float64(nt), 0.9)
}

// imbalance grows when the block-cyclic tiles are too coarse for the grid.
func imbalance(m, n float64, b, pr, pc int) float64 {
	return (1 + float64(b)*float64(pr)/m) * (1 + float64(b)*float64(pc)/n)
}

// Runtime returns the noise-free simulated PDGEQRF time in seconds.
func (q *QR) Runtime(m, n float64, b, p, pr int) float64 {
	if p < 1 {
		p = 1
	}
	if pr < 1 {
		pr = 1
	}
	if pr > p {
		pr = p
	}
	pc := p / pr
	if pc < 1 {
		pc = 1
	}
	nt := q.PMax / p
	if nt < 1 {
		nt = 1
	}
	cflop, cmsg, cvol := Counts(m, n, b, p, pr)
	rate := q.Machine.FlopsPerCore * blas3Efficiency(b) * threadEfficiency(nt)
	tFlop := cflop / rate * imbalance(m, n, b, pr, pc)
	tComm := q.Machine.TimeComm(cmsg, cvol*8)
	return tFlop + tComm + 0.05 // constant launch overhead
}

// Problem returns the PDGEQRF tuning problem. Task = [m, n]; tuning =
// [b, p, p_r] with the paper's constraint p_r ≤ p.
func (q *QR) Problem() *core.Problem {
	tasks := space.MustNew(
		space.NewInteger("m", 1000, q.MaxDim),
		space.NewInteger("n", 1000, q.MaxDim),
	)
	tuning := space.MustNew(
		space.NewLogInteger("b", 8, 512),
		space.NewLogInteger("p", maxInt(1, q.PMax/64), q.PMax),
		space.NewLogInteger("pr", 1, q.PMax),
	)
	tuning.AddConstraint("pr<=p", func(v map[string]float64) bool { return v["pr"] <= v["p"] })
	return &core.Problem{
		Name:    "pdgeqrf",
		Tasks:   tasks,
		Tuning:  tuning,
		Outputs: space.NewOutputSpace("runtime"),
		Objective: func(task, x []float64) ([]float64, error) {
			m, n := task[0], task[1]
			b, p, pr := int(x[0]), int(x[1]), int(x[2])
			t := q.Runtime(m, n, b, p, pr)
			key := fmt.Sprintf("qr|%g|%g|%d|%d|%d", m, n, b, p, pr)
			return []float64{t * q.Noise.Mul(key)}, nil
		},
	}
}

// PerfModel returns the Section 3.3 coarse performance model of Eq. (7):
// ỹ = C_flop·t_flop + C_msg·t_msg + C_vol·t_vol with the three coefficients
// as tunable hyperparameters (fitted on the fly during MLA). The initial
// coefficients are order-of-magnitude machine guesses, deliberately
// imperfect.
func (q *QR) PerfModel() *core.PerfModel {
	return &core.PerfModel{
		Dim:    1,
		Coeffs: []float64{1 / q.Machine.FlopsPerCore, q.Machine.Latency, 8 / q.Machine.Bandwidth},
		Eval: func(task, x, coeffs []float64) []float64 {
			cflop, cmsg, cvol := Counts(task[0], task[1], int(x[0]), int(x[1]), int(x[2]))
			return []float64{cflop*coeffs[0] + cmsg*coeffs[1] + cvol*coeffs[2]}
		},
	}
}

// TotalFlops returns the m×n QR flop count 2n²(m − n/3) (used to sort tasks
// in Fig. 5).
func TotalFlops(m, n float64) float64 {
	if n > m {
		m, n = n, m
	}
	return 2 * n * n * (m - n/3)
}

// Eigen simulates PDSYEVX with task t = [m] (m = n) and tuning x =
// [b, p, p_r] (b_r = b_c enforced, per Section 6.2).
type Eigen struct {
	Machine machine.Machine
	PMax    int
	MaxDim  int
	Noise   *machine.Noise
}

// NewEigen returns the PDSYEVX simulator on nodes Cori-Haswell nodes.
func NewEigen(nodes int, maxDim int) *Eigen {
	m := machine.CoriHaswell()
	return &Eigen{
		Machine: m,
		PMax:    nodes * m.CoresPerNode,
		MaxDim:  maxDim,
		Noise:   machine.NewNoise(0.05, 0x51ab),
	}
}

// Runtime returns the noise-free simulated PDSYEVX time: Householder
// tridiagonalization (4/3 m³, half memory-bound BLAS-2, half BLAS-3),
// bisection + inverse iteration (O(m²)), and eigenvector back-transform
// (2m³ BLAS-3), with communication and imbalance terms.
func (e *Eigen) Runtime(m float64, b, p, pr int) float64 {
	if p < 1 {
		p = 1
	}
	if pr < 1 {
		pr = 1
	}
	if pr > p {
		pr = p
	}
	pc := p / pr
	if pc < 1 {
		pc = 1
	}
	nt := e.PMax / p
	if nt < 1 {
		nt = 1
	}
	rate3 := e.Machine.FlopsPerCore * blas3Efficiency(b) * threadEfficiency(nt)
	// BLAS-2 half runs at memory bandwidth: bytes ≈ flops × 8 / 2.
	rate2 := math.Min(e.Machine.FlopsPerCore*0.06*threadEfficiency(nt),
		e.Machine.MemBandwidth/4)
	m3 := m * m * m
	fp := float64(p)
	tTridiag := (2.0 / 3 * m3 / fp / rate2) + (2.0 / 3 * m3 / fp / rate3)
	tBack := 2 * m3 / fp / rate3
	tFlop := (tTridiag + tBack) * imbalance(m, m, b, pr, pc)
	logP := math.Log2(math.Max(float64(p), 2))
	cmsg := 6 * m / float64(b) * logP
	cvol := 3 * m * m / math.Sqrt(fp) * logP
	tComm := e.Machine.TimeComm(cmsg, cvol*8)
	tBisect := 20 * m * m / fp / (e.Machine.FlopsPerCore * 0.05)
	return tFlop + tComm + tBisect + 0.05
}

// Problem returns the PDSYEVX tuning problem.
func (e *Eigen) Problem() *core.Problem {
	tasks := space.MustNew(space.NewInteger("m", 1000, e.MaxDim))
	tuning := space.MustNew(
		space.NewLogInteger("b", 8, 512),
		space.NewLogInteger("p", maxInt(1, e.PMax/64), e.PMax),
		space.NewLogInteger("pr", 1, e.PMax),
	)
	tuning.AddConstraint("pr<=p", func(v map[string]float64) bool { return v["pr"] <= v["p"] })
	return &core.Problem{
		Name:    "pdsyevx",
		Tasks:   tasks,
		Tuning:  tuning,
		Outputs: space.NewOutputSpace("runtime"),
		Objective: func(task, x []float64) ([]float64, error) {
			m := task[0]
			b, p, pr := int(x[0]), int(x[1]), int(x[2])
			t := e.Runtime(m, b, p, pr)
			key := fmt.Sprintf("ev|%g|%d|%d|%d", m, b, p, pr)
			return []float64{t * e.Noise.Mul(key)}, nil
		},
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
