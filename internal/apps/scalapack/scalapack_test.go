package scalapack

import (
	"math"
	"testing"
)

func TestCountsLeadingTerm(t *testing.T) {
	// With p = pr = pc = 1 and tiny b, the flop count approaches the
	// sequential QR count 2n²(m - n/3).
	m, n := 8000.0, 4000.0
	cflop, _, _ := Counts(m, n, 1, 1, 1)
	seq := 2 * n * n * (m - n/3)
	if math.Abs(cflop-seq)/seq > 0.01 {
		t.Fatalf("cflop %v vs sequential %v", cflop, seq)
	}
}

func TestCountsScaleWithP(t *testing.T) {
	m, n := 20000.0, 10000.0
	c1, _, _ := Counts(m, n, 64, 64, 8)
	c2, _, _ := Counts(m, n, 64, 256, 16)
	if c2 >= c1 {
		t.Fatalf("per-process flops must drop with p: %v vs %v", c1, c2)
	}
}

func TestCountsHandlesWideMatrices(t *testing.T) {
	// m < n (the paper's 23324×26545 task): formulas must still be sane.
	cflop, cmsg, cvol := Counts(23324, 26545, 64, 2048, 32)
	if cflop <= 0 || cmsg <= 0 || cvol <= 0 {
		t.Fatalf("counts not positive: %v %v %v", cflop, cmsg, cvol)
	}
}

func TestBlas3EfficiencyInteriorOptimum(t *testing.T) {
	// Small and huge blocks must both be worse than a mid-size block.
	mid := blas3Efficiency(160)
	if blas3Efficiency(8) >= mid || blas3Efficiency(512) >= mid {
		t.Fatalf("no interior optimum: eff(8)=%v eff(160)=%v eff(512)=%v",
			blas3Efficiency(8), mid, blas3Efficiency(512))
	}
	for _, b := range []int{8, 64, 512} {
		if e := blas3Efficiency(b); e <= 0 || e >= 1 {
			t.Fatalf("eff(%d) = %v out of (0,1)", b, e)
		}
	}
}

func TestQRRuntimeSensibleShape(t *testing.T) {
	q := NewQR(64, 40000)
	m, n := 23324.0, 26545.0
	// Runtime must be positive and improve when going from a terrible
	// configuration to a reasonable one.
	bad := q.Runtime(m, n, 8, 32, 1)
	good := q.Runtime(m, n, 128, 2048, 32)
	if good <= 0 || bad <= 0 {
		t.Fatalf("nonpositive runtime")
	}
	if good >= bad {
		t.Fatalf("tuned config (%v) not faster than bad config (%v)", good, bad)
	}
	// Paper: PDGEQRF reaches ~3.6 TFLOPS on 2048 cores with optimal
	// parameters. Check the simulator's achievable rate is within a loose
	// band (1–20 TFLOPS).
	flops := TotalFlops(m, n)
	rate := flops / good
	if rate < 1e12 || rate > 2e13 {
		t.Fatalf("achieved rate %v flop/s outside plausible band", rate)
	}
}

func TestQRRuntimeDegenerateInputsClamped(t *testing.T) {
	q := NewQR(1, 5000)
	v := q.Runtime(2000, 1000, 64, 0, 0)
	if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
		t.Fatalf("degenerate inputs produced %v", v)
	}
	// pr > p must clamp.
	v2 := q.Runtime(2000, 1000, 64, 4, 999)
	if math.IsNaN(v2) || v2 <= 0 {
		t.Fatalf("pr>p produced %v", v2)
	}
}

func TestQRProblemEvaluatesAndRespectsConstraint(t *testing.T) {
	q := NewQR(4, 20000)
	p := q.Problem()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Tuning.Feasible([]float64{64, 4, 8}) {
		t.Fatalf("pr > p should be infeasible")
	}
	y, err := p.Objective([]float64{5000, 4000}, []float64{64, 64, 8})
	if err != nil || y[0] <= 0 {
		t.Fatalf("objective: %v %v", y, err)
	}
	// Noise: two calls differ, but only slightly.
	y2, _ := p.Objective([]float64{5000, 4000}, []float64{64, 64, 8})
	if y[0] == y2[0] {
		t.Fatalf("noise missing")
	}
	if r := y[0] / y2[0]; r < 0.6 || r > 1.6 {
		t.Fatalf("noise too large: %v vs %v", y[0], y2[0])
	}
}

func TestQRPerfModelCorrelatesWithRuntime(t *testing.T) {
	q := NewQR(16, 20000)
	pm := q.PerfModel()
	task := []float64{15000, 12000}
	configs := [][]float64{
		{16, 64, 8}, {64, 128, 8}, {128, 512, 16}, {256, 512, 4}, {32, 256, 16},
	}
	// Spearman-style check: the model must rank configurations roughly like
	// the true runtime (it is "coarse" but informative).
	agree, total := 0, 0
	for i := 0; i < len(configs); i++ {
		for j := i + 1; j < len(configs); j++ {
			ti := q.Runtime(task[0], task[1], int(configs[i][0]), int(configs[i][1]), int(configs[i][2]))
			tj := q.Runtime(task[0], task[1], int(configs[j][0]), int(configs[j][1]), int(configs[j][2]))
			mi := pm.Eval(task, configs[i], pm.Coeffs)[0]
			mj := pm.Eval(task, configs[j], pm.Coeffs)[0]
			if (ti < tj) == (mi < mj) {
				agree++
			}
			total++
		}
	}
	if agree*2 < total {
		t.Fatalf("model ranks only %d/%d pairs correctly", agree, total)
	}
}

func TestTotalFlopsSymmetry(t *testing.T) {
	if TotalFlops(100, 50) != TotalFlops(50, 100) {
		t.Fatalf("TotalFlops must treat QR/LQ symmetrically")
	}
	if TotalFlops(1000, 1000) <= 0 {
		t.Fatalf("nonpositive flops")
	}
}

func TestEigenRuntimeCubicScaling(t *testing.T) {
	e := NewEigen(1, 8000)
	t1 := e.Runtime(2000, 64, 32, 4)
	t2 := e.Runtime(4000, 64, 32, 4)
	ratio := t2 / t1
	// O(m³) dominates: doubling m should give ≈ 8× (loosely 4–12× given
	// lower-order terms).
	if ratio < 4 || ratio > 12 {
		t.Fatalf("scaling ratio %v not ≈ 8", ratio)
	}
}

func TestEigenProblem(t *testing.T) {
	e := NewEigen(1, 7000)
	p := e.Problem()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	y, err := p.Objective([]float64{3000}, []float64{64, 16, 4})
	if err != nil || y[0] <= 0 {
		t.Fatalf("objective: %v %v", y, err)
	}
}

func TestEigenBlockSizeMatters(t *testing.T) {
	e := NewEigen(1, 8000)
	tiny := e.Runtime(5000, 8, 32, 4)
	good := e.Runtime(5000, 128, 32, 4)
	if good >= tiny {
		t.Fatalf("block size has no effect: %v vs %v", good, tiny)
	}
}
