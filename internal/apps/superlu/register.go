package superlu

import (
	"fmt"

	"repro/internal/bench"
	"repro/internal/core"
)

func init() {
	bench.Register(bench.Scenario{
		Name:        "superlu",
		Description: "SuperLU_DIST sparse LU factorization time on PARSEC matrices (Section 6.2); pr<=p constraint",
		Tags:        []string{"paper", "hpc", "constrained"},
		Params: []bench.ParamDef{
			{Name: "nodes", Default: 32, Help: "Cori-Haswell nodes (32 cores each)"},
		},
		New: func(p bench.Params) (*core.Problem, error) {
			app, err := appFor(p)
			if err != nil {
				return nil, err
			}
			return app.Problem(), nil
		},
	})
	bench.Register(bench.Scenario{
		Name:        "superlu-mo",
		Description: "SuperLU_DIST multi-objective variant: factorization time and memory (Section 6.5); pr<=p constraint",
		Tags:        []string{"paper", "hpc", "constrained", "multiobjective"},
		Params: []bench.ParamDef{
			{Name: "nodes", Default: 8, Help: "Cori-Haswell nodes (32 cores each)"},
		},
		New: func(p bench.Params) (*core.Problem, error) {
			app, err := appFor(p)
			if err != nil {
				return nil, err
			}
			return app.ProblemMO(), nil
		},
	})
}

func appFor(p bench.Params) (*App, error) {
	nodes := int(p["nodes"])
	if nodes < 1 {
		return nil, fmt.Errorf("nodes must be >= 1, got %v", p["nodes"])
	}
	return New(nodes), nil
}
