// Package superlu simulates SuperLU_DIST sparse LU factorization (paper
// Sections 6.2, 6.6, 6.7) on synthesized PARSEC-like matrices.
//
// Substitution note (see DESIGN.md): the real runs factor SuiteSparse PARSEC
// matrices on Cori. Here each matrix is a synthesized density-functional
// Hamiltonian pattern (internal/sparse.Hamiltonian) at 1/8 of the published
// dimension (quotient-graph minimum degree at full scale is too slow for a
// pure-Go reproduction loop), and the COLPERM/NSUP/NREL tuning parameters
// act through a *real* symbolic factorization: fill-reducing ordering,
// elimination tree, exact fill/flop counts and supernode partitioning. Time
// and memory are then modeled from those true counts plus a machine model —
// so the tuner faces genuine, data-dependent parameter sensitivities,
// including the Fig. 7 time-vs-memory tradeoff.
package superlu

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/space"
	"repro/internal/sparse"
)

// MatrixSpec names one PARSEC-group matrix and its synthesis parameters.
type MatrixSpec struct {
	Name   string
	N      int // scaled dimension (published/8, see package comment)
	AvgDeg int
	Seed   int64
}

// PARSEC lists the eight matrices of Sections 6.6–6.7 (Si2, SiH4, SiNa,
// Na5, benzene, Si10H16, Si5H12, SiO), size-ordered as published.
var PARSEC = []MatrixSpec{
	{Name: "Si2", N: 769, AvgDeg: 22, Seed: 101},
	{Name: "SiH4", N: 630, AvgDeg: 17, Seed: 102},
	{Name: "SiNa", N: 718, AvgDeg: 12, Seed: 103},
	{Name: "Na5", N: 729, AvgDeg: 18, Seed: 104},
	{Name: "benzene", N: 1027, AvgDeg: 14, Seed: 105},
	{Name: "Si10H16", N: 2135, AvgDeg: 17, Seed: 106},
	{Name: "Si5H12", N: 2487, AvgDeg: 12, Seed: 107},
	{Name: "SiO", N: 4175, AvgDeg: 13, Seed: 108},
}

// MatrixNames returns the PARSEC names in order (the categorical task
// labels).
func MatrixNames() []string {
	names := make([]string, len(PARSEC))
	for i, m := range PARSEC {
		names[i] = m.Name
	}
	return names
}

// App is the SuperLU_DIST simulator. All symbolic analyses are cached per
// (matrix, ordering), so repeated objective evaluations cost O(n).
type App struct {
	Machine machine.Machine
	PMax    int // total cores (32 Cori nodes = 1024 in Fig. 6)
	Noise   *machine.Noise

	mu       sync.Mutex
	patterns map[string]*sparse.Pattern
	analyses map[string]*sparse.Analysis
}

// New returns the simulator on nodes Cori-Haswell nodes.
func New(nodes int) *App {
	m := machine.CoriHaswell()
	return &App{
		Machine:  m,
		PMax:     nodes * m.CoresPerNode,
		Noise:    machine.NewNoise(0.05, 0x5107),
		patterns: make(map[string]*sparse.Pattern),
		analyses: make(map[string]*sparse.Analysis),
	}
}

func (a *App) spec(idx int) MatrixSpec {
	if idx < 0 {
		idx = 0
	}
	if idx >= len(PARSEC) {
		idx = len(PARSEC) - 1
	}
	return PARSEC[idx]
}

// analysis returns the cached symbolic factorization of matrix idx under the
// given column ordering.
func (a *App) analysis(idx int, ord sparse.Ordering) *sparse.Analysis {
	spec := a.spec(idx)
	key := fmt.Sprintf("%s|%d", spec.Name, ord)
	a.mu.Lock()
	if an, ok := a.analyses[key]; ok {
		a.mu.Unlock()
		return an
	}
	pat, ok := a.patterns[spec.Name]
	a.mu.Unlock()
	if !ok {
		pat = sparse.Hamiltonian(spec.N, spec.AvgDeg, spec.Seed)
		a.mu.Lock()
		a.patterns[spec.Name] = pat
		a.mu.Unlock()
	}
	perm := sparse.Order(pat, ord, spec.Seed)
	an := sparse.Analyze(pat, perm)
	a.mu.Lock()
	a.analyses[key] = an
	a.mu.Unlock()
	return an
}

// Config holds native tuning parameters (Table 5's columns).
type Config struct {
	ColPerm sparse.Ordering
	Look    int // look-ahead window
	P       int // MPI processes
	Pr      int // process-grid rows
	NSup    int // maximum supernode size
	NRel    int // relaxed supernode threshold
}

// DefaultConfig mirrors SuperLU_DIST defaults as in the paper's Table 5
// (COLPERM=MMD, LOOK=10, p=256, p_r=16, NSUP=128, NREL=20), with p clipped
// to the available cores.
func (a *App) DefaultConfig() Config {
	p := 256
	if p > a.PMax {
		p = a.PMax
	}
	return Config{ColPerm: sparse.MinDegree, Look: 10, P: p, Pr: 16, NSup: 128, NRel: 20}
}

// supEfficiency is the BLAS-3 efficiency of supernode-panel updates as a
// function of the average supernode width.
func supEfficiency(avg float64) float64 {
	return 0.75 * (avg / (avg + 12)) / (1 + (avg/280)*(avg/280))
}

// FactorCost returns the modeled factorization time (seconds) and peak
// per-process memory (bytes) for matrix idx under cfg.
func (a *App) FactorCost(idx int, cfg Config) (timeSec, memBytes float64) {
	spec := a.spec(idx)
	an := a.analysis(idx, cfg.ColPerm)
	return ModelCost(a.Machine, float64(spec.N), an, cfg)
}

// ModelCost converts a symbolic factorization into modeled SuperLU_DIST
// factorization time and peak per-process memory under cfg. Exported so the
// M3D_C1/NIMROD simulators can price their per-time-step subdomain
// factorizations with the same model.
func ModelCost(mach machine.Machine, n float64, an *sparse.Analysis, cfg Config) (timeSec, memBytes float64) {
	if cfg.P < 1 {
		cfg.P = 1
	}
	if cfg.Pr < 1 {
		cfg.Pr = 1
	}
	if cfg.Pr > cfg.P {
		cfg.Pr = cfg.P
	}
	pc := cfg.P / cfg.Pr
	if pc < 1 {
		pc = 1
	}
	_, stats := sparse.Supernodes(an.Parent, an.ColCounts, cfg.NSup, cfg.NRel)

	fillLU := 2*float64(an.FillL) - n
	padRatio := stats.Padding * stats.AvgLen / math.Max(fillLU, 1)
	if padRatio > 2 {
		padRatio = 2
	}
	flops := 2 * an.Flops * (1 + padRatio)

	// Flop time: per-process share at supernode-width-dependent BLAS-3
	// efficiency, inflated by grid-aspect and granularity imbalance.
	rate := mach.FlopsPerCore * supEfficiency(stats.WeightedLen)
	aspect := math.Max(float64(cfg.Pr)/float64(pc), float64(pc)/float64(cfg.Pr))
	granularity := 1 + stats.WeightedLen*math.Sqrt(float64(cfg.P))/n
	tFlop := flops / (float64(cfg.P) * rate) * math.Pow(aspect, 0.25) * granularity

	// Communication: one row- and column-broadcast per supernode panel,
	// partially hidden by the look-ahead pipeline.
	look := cfg.Look
	if look < 1 {
		look = 1
	}
	pipeline := 0.25 + 0.75/(1+0.2*float64(look-1))
	logPr := math.Log2(math.Max(float64(cfg.Pr), 2))
	logPc := math.Log2(math.Max(float64(pc), 2))
	msgs := float64(stats.Count) * (logPr + logPc) * pipeline
	vol := fillLU * 8 * (1/float64(cfg.Pr) + 1/float64(pc)) * pipeline
	tComm := mach.TimeComm(msgs, vol)

	// Triangular-solve-ish pivoting overhead grows when supernodes are tiny.
	tPivot := n / 1e7 * (1 + 64/math.Max(stats.WeightedLen, 1))

	timeSec = tFlop + tComm + tPivot + 0.01

	// Peak per-process memory: factor share + panel broadcast buffers
	// (scaling with NSUP and the look-ahead depth) + padding.
	maxCC := 0.0
	for _, c := range an.ColCounts {
		if float64(c) > maxCC {
			maxCC = float64(c)
		}
	}
	factorMem := 16 * fillLU * (1 + padRatio) / float64(cfg.P)
	bufMem := 8 * float64(cfg.NSup) * maxCC * (1 + 0.5*float64(look))
	memBytes = factorMem + bufMem + 1<<20
	return timeSec, memBytes
}

// tuningSpace builds the β=6 tuning space (COLPERM, LOOK, p, p_r, NSUP,
// NREL) with the p_r ≤ p constraint.
func (a *App) tuningSpace() *space.Space {
	s := space.MustNew(
		space.NewCategorical("COLPERM", sparse.OrderingNames...),
		space.NewInteger("LOOK", 1, 30),
		space.NewLogInteger("p", 4, a.PMax),
		space.NewLogInteger("pr", 1, a.PMax),
		space.NewLogInteger("NSUP", 8, 512),
		space.NewLogInteger("NREL", 1, 128),
	)
	s.AddConstraint("pr<=p", func(v map[string]float64) bool { return v["pr"] <= v["p"] })
	return s
}

func (a *App) configOf(x []float64) Config {
	return Config{
		ColPerm: sparse.Ordering(int(x[0])),
		Look:    int(x[1]),
		P:       int(x[2]),
		Pr:      int(x[3]),
		NSup:    int(x[4]),
		NRel:    int(x[5]),
	}
}

// Problem returns the single-objective (factorization time) tuning problem.
// Task = [matrix index] (categorical over the PARSEC names).
func (a *App) Problem() *core.Problem {
	return &core.Problem{
		Name:    "superlu",
		Tasks:   space.MustNew(space.NewCategorical("matrix", MatrixNames()...)),
		Tuning:  a.tuningSpace(),
		Outputs: space.NewOutputSpace("time"),
		Objective: func(task, x []float64) ([]float64, error) {
			idx := int(task[0])
			cfg := a.configOf(x)
			t, _ := a.FactorCost(idx, cfg)
			key := fmt.Sprintf("slu|%d|%+v", idx, cfg)
			return []float64{t * a.Noise.Mul(key)}, nil
		},
	}
}

// ProblemMO returns the γ=2 (time, memory) multi-objective problem of
// Section 6.7.
func (a *App) ProblemMO() *core.Problem {
	return &core.Problem{
		Name:    "superlu-mo",
		Tasks:   space.MustNew(space.NewCategorical("matrix", MatrixNames()...)),
		Tuning:  a.tuningSpace(),
		Outputs: space.NewOutputSpace("time", "memory"),
		Objective: func(task, x []float64) ([]float64, error) {
			idx := int(task[0])
			cfg := a.configOf(x)
			t, mem := a.FactorCost(idx, cfg)
			key := fmt.Sprintf("slu|%d|%+v", idx, cfg)
			return []float64{t * a.Noise.Mul(key), mem}, nil
		},
	}
}

// ConfigToVector converts a Config to the native tuning vector.
func ConfigToVector(cfg Config) []float64 {
	return []float64{
		float64(cfg.ColPerm), float64(cfg.Look), float64(cfg.P),
		float64(cfg.Pr), float64(cfg.NSup), float64(cfg.NRel),
	}
}
