package superlu

import (
	"testing"

	"repro/internal/sparse"
)

func TestMatrixNamesOrder(t *testing.T) {
	names := MatrixNames()
	if len(names) != 8 || names[0] != "Si2" || names[7] != "SiO" {
		t.Fatalf("names = %v", names)
	}
}

func TestFactorCostBasicShape(t *testing.T) {
	a := New(8)
	cfg := a.DefaultConfig()
	tm, mem := a.FactorCost(0, cfg)
	if tm <= 0 || mem <= 0 {
		t.Fatalf("nonpositive cost: %v %v", tm, mem)
	}
	// A much bigger matrix must cost more at the same configuration.
	tBig, memBig := a.FactorCost(7, cfg)
	if tBig <= tm || memBig <= mem {
		t.Fatalf("SiO (%v,%v) not more expensive than Si2 (%v,%v)", tBig, memBig, tm, mem)
	}
}

func TestColPermMatters(t *testing.T) {
	a := New(8)
	// Flop-dominated regime (modest process count): the ordering's fill
	// reduction must pay off in both time and memory. (At very large p the
	// landscape can legitimately reward granularity instead — that is the
	// kind of surprise autotuning exists for.)
	cfg := a.DefaultConfig()
	cfg.P, cfg.Pr = 16, 4
	cfg.ColPerm = sparse.MinDegree
	tMD, memMD := a.FactorCost(5, cfg)
	cfg.ColPerm = sparse.RandomOrder
	tRand, memRand := a.FactorCost(5, cfg)
	if tMD >= tRand {
		t.Fatalf("MMD (%v) not faster than RANDOM (%v)", tMD, tRand)
	}
	if memMD >= memRand {
		t.Fatalf("MMD memory (%v) not below RANDOM (%v)", memMD, memRand)
	}
}

func TestTimeMemoryTradeoff(t *testing.T) {
	a := New(8)
	// Increasing LOOK should reduce (or hold) time but increase memory —
	// the structural source of the Fig. 7 Pareto front.
	lo := a.DefaultConfig()
	lo.Look = 1
	hi := lo
	hi.Look = 25
	tLo, memLo := a.FactorCost(0, lo)
	tHi, memHi := a.FactorCost(0, hi)
	if tHi > tLo {
		t.Fatalf("more look-ahead slowed factorization: %v vs %v", tHi, tLo)
	}
	if memHi <= memLo {
		t.Fatalf("more look-ahead did not cost memory: %v vs %v", memHi, memLo)
	}
	// Large NSUP costs buffer memory.
	small := a.DefaultConfig()
	small.NSup = 16
	big := small
	big.NSup = 512
	_, memSmall := a.FactorCost(0, small)
	_, memBig := a.FactorCost(0, big)
	if memBig <= memSmall {
		t.Fatalf("NSUP has no memory cost: %v vs %v", memBig, memSmall)
	}
}

func TestNSupInteriorOptimum(t *testing.T) {
	a := New(8)
	cfg := a.DefaultConfig()
	timeAt := func(nsup int) float64 {
		c := cfg
		c.NSup = nsup
		tm, _ := a.FactorCost(6, c)
		return tm
	}
	tiny, mid := timeAt(8), timeAt(128)
	if mid >= tiny {
		t.Fatalf("mid NSUP (%v) not faster than tiny (%v)", mid, tiny)
	}
}

func TestDegenerateConfigsClamped(t *testing.T) {
	a := New(1)
	tm, mem := a.FactorCost(0, Config{ColPerm: sparse.Natural, Look: 0, P: 0, Pr: 99999, NSup: 0, NRel: -5})
	if tm <= 0 || mem <= 0 {
		t.Fatalf("degenerate config produced %v %v", tm, mem)
	}
	// Out-of-range matrix index clamps.
	tm2, _ := a.FactorCost(-3, a.DefaultConfig())
	if tm2 <= 0 {
		t.Fatalf("clamped index produced %v", tm2)
	}
}

func TestProblemsEvaluate(t *testing.T) {
	a := New(8)
	p := a.Problem()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	x := ConfigToVector(a.DefaultConfig())
	y, err := p.Objective([]float64{0}, x)
	if err != nil || len(y) != 1 || y[0] <= 0 {
		t.Fatalf("single-objective: %v %v", y, err)
	}
	mo := a.ProblemMO()
	if err := mo.Validate(); err != nil {
		t.Fatal(err)
	}
	y2, err := mo.Objective([]float64{0}, x)
	if err != nil || len(y2) != 2 || y2[1] <= 0 {
		t.Fatalf("multi-objective: %v %v", y2, err)
	}
	// Constraint pr <= p present.
	if mo.Tuning.Feasible([]float64{0, 5, 4, 8, 64, 16}) {
		t.Fatalf("pr > p accepted")
	}
}

func TestAnalysisCaching(t *testing.T) {
	a := New(4)
	cfg := a.DefaultConfig()
	// First call computes, second must hit the cache and agree exactly
	// (noise-free path).
	t1, m1 := a.FactorCost(1, cfg)
	t2, m2 := a.FactorCost(1, cfg)
	if t1 != t2 || m1 != m2 {
		t.Fatalf("cached cost differs: (%v,%v) vs (%v,%v)", t1, m1, t2, m2)
	}
	if len(a.analyses) == 0 {
		t.Fatalf("analysis cache empty")
	}
}
