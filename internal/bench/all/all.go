// Package all registers every workload in the tree: blank-importing it
// gives a binary the full scenario catalog — the five application
// simulators (which self-register on import) plus bench's own synthetic
// scenarios. cmd/gptune, cmd/gptuned, cmd/bench_serve, and the conformance
// suite all import it; a binary that wants only specific workloads imports
// those app packages directly instead.
package all

import (
	_ "repro/internal/apps/analytical"
	_ "repro/internal/apps/hypre"
	_ "repro/internal/apps/mhd"
	_ "repro/internal/apps/scalapack"
	_ "repro/internal/apps/superlu"
	_ "repro/internal/bench"
)
