// Package bench is the workload registry: the single source of truth for
// every tuning scenario the reproduction can run, from the paper's
// application simulators (internal/apps/*) to the synthetic-but-faithful
// CATBench-style spaces defined in this package (compiler flags, GEMM
// tiling, recommender hyperparameters).
//
// A Scenario is a named, parameterized constructor for a *core.Problem plus
// metadata: description, tags, aliases, and — where the scenario's objective
// admits one — the known global optimum for a task. Scenarios register
// themselves in an init-time registry (the surrogate.Kinds() pattern):
// Names() is the authoritative list, Get resolves names and aliases, and
// every external restatement of the scenario list — CLI usage strings,
// catalog listings, gptuned's spec validation errors — is derived from the
// registry, never hand-maintained.
//
// The five internal/apps packages self-register, so importing an app makes
// it tunable by name; the aggregator package internal/bench/all pulls in
// everything for binaries (cmd/gptune, cmd/gptuned, cmd/bench_serve) that
// want the full catalog. The synthetic scenarios in this package register in
// their own files' init functions, so any importer of bench (notably
// internal/serve) always has them available.
package bench

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
)

// Params parameterizes a scenario's constructor (machine size, matrix
// bounds, ...). Values are float64 for uniformity with the rest of the
// system; integral parameters are truncated by the constructor.
type Params map[string]float64

// ParamDef declares one scenario parameter and its default.
type ParamDef struct {
	Name    string
	Default float64
	Help    string
}

// Scenario is one registered workload.
type Scenario struct {
	// Name is the canonical registry key (letters, digits, '-').
	Name string
	// Description is a one-line summary for catalogs and usage strings.
	Description string
	// Tags classify the scenario ("paper", "hpc", "constrained",
	// "synthetic", "multiobjective", ...). Purely informational.
	Tags []string
	// Aliases are alternate lookup names (e.g. the paper's routine names).
	Aliases []string
	// Params declares the constructor parameters and their defaults. Problem
	// rejects keys not declared here.
	Params []ParamDef
	// New builds the problem from a fully-merged parameter map (every
	// declared parameter present). Construction must be deterministic: two
	// problems built from equal params must evaluate equal inputs to
	// bitwise-equal outputs.
	New func(p Params) (*core.Problem, error)
	// Optimum, when non-nil, returns the known global minimum of the first
	// objective for the given native task under the default parameters, and
	// whether it is known for that task. Used for regression tables.
	Optimum func(task []float64) (float64, bool)
}

var (
	regMu    sync.RWMutex
	registry = map[string]*Scenario{}
	aliases  = map[string]string{}
)

// Register adds a scenario to the registry. It panics on an invalid or
// duplicate registration: scenarios register from init functions, so any
// collision is a programmer error caught on first import.
func Register(s Scenario) {
	if s.Name == "" {
		panic("bench: Register with empty scenario name")
	}
	if s.New == nil {
		panic(fmt.Sprintf("bench: scenario %q has no constructor", s.Name))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[s.Name]; dup {
		panic(fmt.Sprintf("bench: duplicate scenario %q", s.Name))
	}
	if _, dup := aliases[s.Name]; dup {
		panic(fmt.Sprintf("bench: scenario %q collides with an alias", s.Name))
	}
	sc := s
	registry[s.Name] = &sc
	for _, a := range s.Aliases {
		if _, dup := registry[a]; dup {
			panic(fmt.Sprintf("bench: alias %q collides with a scenario", a))
		}
		if _, dup := aliases[a]; dup {
			panic(fmt.Sprintf("bench: duplicate alias %q", a))
		}
		aliases[a] = s.Name
	}
}

// Names returns the sorted canonical scenario names — the authoritative
// list every catalog, usage string, and error message derives from.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// All returns every registered scenario in Names() order.
func All() []*Scenario {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Scenario, len(names))
	for i, n := range names {
		out[i] = registry[n]
	}
	return out
}

// Get resolves a scenario by canonical name or alias. Unknown names return
// an error enumerating the valid ones.
func Get(name string) (*Scenario, error) {
	regMu.RLock()
	s, ok := registry[name]
	if !ok {
		if canon, isAlias := aliases[name]; isAlias {
			s, ok = registry[canon], true
		}
	}
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("bench: unknown scenario %q (have %s)", name, strings.Join(Names(), ", "))
	}
	return s, nil
}

// Problem instantiates the scenario: declared defaults merged with the
// caller's overrides. Keys not declared in s.Params are rejected with an
// error naming the declared ones.
func (s *Scenario) Problem(p Params) (*core.Problem, error) {
	merged := make(Params, len(s.Params))
	declared := make([]string, len(s.Params))
	for i, d := range s.Params {
		merged[d.Name] = d.Default
		declared[i] = d.Name
	}
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, ok := merged[k]; !ok {
			have := "none"
			if len(declared) > 0 {
				have = strings.Join(declared, ", ")
			}
			return nil, fmt.Errorf("bench: scenario %q has no parameter %q (have %s)", s.Name, k, have)
		}
		merged[k] = p[k]
	}
	prob, err := s.New(merged)
	if err != nil {
		return nil, fmt.Errorf("bench: scenario %q: %w", s.Name, err)
	}
	return prob, nil
}

// Info is the catalog entry for one scenario: the cheap-to-compute facts a
// listing needs, derived by instantiating the problem with defaults.
type Info struct {
	Name        string
	Description string
	Tags        []string
	Aliases     []string
	Params      []ParamDef
	TaskDim     int
	TuningDim   int
	OutputDim   int
	Constrained bool
	HasOptimum  bool
}

// Info instantiates the scenario with default parameters and summarizes it.
func (s *Scenario) Info() (Info, error) {
	prob, err := s.Problem(nil)
	if err != nil {
		return Info{}, err
	}
	return Info{
		Name:        s.Name,
		Description: s.Description,
		Tags:        s.Tags,
		Aliases:     s.Aliases,
		Params:      s.Params,
		TaskDim:     prob.Tasks.Dim(),
		TuningDim:   prob.Tuning.Dim(),
		OutputDim:   prob.Outputs.Dim(),
		Constrained: len(prob.Tuning.Constraints) > 0 || len(prob.Tasks.Constraints) > 0,
		HasOptimum:  s.Optimum != nil,
	}, nil
}

// Catalog summarizes every registered scenario in Names() order.
func Catalog() ([]Info, error) {
	scs := All()
	out := make([]Info, len(scs))
	for i, s := range scs {
		info, err := s.Info()
		if err != nil {
			return nil, err
		}
		out[i] = info
	}
	return out, nil
}
