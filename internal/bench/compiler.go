package bench

import (
	"fmt"
	"math"
	"strconv"

	"repro/internal/core"
	"repro/internal/space"
)

// The "compiler-flags" scenario tunes a 40-parameter compiler configuration
// — an optimization level, five numeric/categorical codegen knobs, and 34
// boolean pass toggles — for one of six synthetic programs (the task). All
// effects are hash-derived deterministic functions of (program, flag,
// setting): each pass multiplies runtime by a program-dependent factor, a
// hash-chosen subset of pass pairs interact, and the numeric knobs have
// program-dependent interior optima (inline threshold, unroll factor,
// prefetch distance). Pass effects are gated by the optimization level, so
// -O0 flattens most of the landscape the way a real compiler does. The
// resulting space is the CATBench compiler shape: high-dimensional, almost
// entirely categorical, with strong conditional structure — and far too
// large (2^34 × numeric grid) for a known optimum.

// compilerPrograms are the task programs; each hashes to its own effect
// structure.
var compilerPrograms = []string{"cg", "fft", "nbody", "spmv", "stencil", "btree"}

// compilerPasses are the boolean pass toggles (34 of them; with the six
// knobs below the space has 40 parameters).
var compilerPasses = []string{
	"licm", "gvn", "sccp", "dce", "sroa", "slp-vectorize", "loop-fusion",
	"loop-interchange", "polly", "unroll-and-jam", "tail-dup",
	"jump-threading", "sink", "hoist", "mem2reg", "instcombine",
	"reassociate", "loop-rotate", "indvars", "loop-deletion", "early-cse",
	"ipsccp", "globalopt", "deadargelim", "argpromotion", "constmerge",
	"mergefunc", "partial-inline", "loop-distribute", "loop-versioning",
	"slsr", "nary-reassoc", "float-contract", "speculate",
}

// compilerStrongPasses is how many passes per program get a large effect
// (the rest are weak); which ones is hash-chosen per program.
const compilerStrongPasses = 6

// compilerInteractions is the number of hash-chosen interacting pass pairs
// per program.
const compilerInteractions = 12

func compilerProblem() *core.Problem {
	tasks := space.MustNew(
		space.NewCategorical("program", compilerPrograms...),
		space.NewReal("scale", 0.5, 2),
	)
	params := []space.Param{
		space.NewCategorical("opt", "O0", "O1", "O2", "O3"),
		space.NewLogInteger("inline-threshold", 10, 2000),
		space.NewInteger("unroll", 1, 16),
		space.NewCategorical("vector-width", "1", "2", "4", "8"),
		space.NewInteger("prefetch-dist", 0, 64),
		space.NewCategorical("regalloc", "linear", "greedy", "pbqp"),
	}
	for _, pass := range compilerPasses {
		params = append(params, space.NewCategorical(pass, "off", "on"))
	}
	tuning := space.MustNew(params...)
	return &core.Problem{
		Name:    "compiler-flags",
		Tasks:   tasks,
		Tuning:  tuning,
		Outputs: space.NewOutputSpace("runtime"),
		Objective: func(task, x []float64) ([]float64, error) {
			return []float64{compilerRuntime(task, x)}, nil
		},
	}
}

// compilerRuntime is the deterministic modeled runtime in seconds.
func compilerRuntime(task, x []float64) float64 {
	prog := compilerPrograms[int(task[0])]
	scale := task[1]

	// Base cost of the program at this input scale.
	base := (1.2 + 0.7*hash01(prog, "base")) *
		math.Pow(scale, 0.8+0.5*hash01(prog, "scale-exp"))

	// Log-runtime effects accumulate in s; runtime = base * exp(s).
	s := 0.0

	// Optimization level: lower levels are slower and also gate how much
	// the individual passes matter.
	optLevels := [...]float64{0.6, 0.25, 0.05, 0}
	opt := int(x[0])
	s += optLevels[opt] * (1 + 0.3*hashPM(prog, "opt", strconv.Itoa(opt)))
	gate := [...]float64{0.15, 0.6, 1, 1}[opt]

	// Inline threshold: quadratic in log space around a program-dependent
	// sweet spot.
	thStar := 60 * math.Pow(10, hash01(prog, "inline-star")) // 60..600
	dTh := math.Log10(x[1] / thStar)
	s += gate * 0.08 * dTh * dTh

	// Unroll factor: U-shaped around u* in [2, 8].
	uStar := 2 + 6*hash01(prog, "unroll-star")
	dU := (x[2] - uStar) / 15
	s += gate * 0.5 * dU * dU

	// Vector width and register allocator: hash-derived per-program offsets.
	s += gate * 0.12 * hash01(prog, "vw", strconv.Itoa(int(x[3])))
	s += gate * 0.06 * hash01(prog, "ra", strconv.Itoa(int(x[5])))

	// Prefetch distance: quadratic around d* in [8, 56].
	dStar := 8 + 48*hash01(prog, "prefetch-star")
	dP := (x[4] - dStar) / 64
	s += gate * 0.3 * dP * dP

	// Boolean passes: each contributes a signed program-dependent effect
	// when enabled; a hash-chosen few are strong.
	const passBase = 6 // index of the first pass toggle in x
	for i, pass := range compilerPasses {
		if x[passBase+i] < 0.5 {
			continue
		}
		strength := 0.03
		if hashU64(prog, "strong", pass)%uint64(len(compilerPasses)) < compilerStrongPasses {
			strength = 0.12
		}
		s += gate * strength * hashNorm(prog, "pass", pass)
	}

	// Pairwise interactions among hash-chosen pass pairs: an extra effect
	// when both are enabled.
	for j := 0; j < compilerInteractions; j++ {
		tag := strconv.Itoa(j)
		a := int(hashU64(prog, "ia", tag) % uint64(len(compilerPasses)))
		b := int(hashU64(prog, "ib", tag) % uint64(len(compilerPasses)))
		if a == b {
			continue
		}
		if x[passBase+a] > 0.5 && x[passBase+b] > 0.5 {
			s += gate * 0.05 * hashNorm(prog, "pair", tag)
		}
	}

	return base * math.Exp(s)
}

func init() {
	Register(Scenario{
		Name:        "compiler-flags",
		Aliases:     []string{"compiler"},
		Description: fmt.Sprintf("%d-parameter compiler configuration (opt level, codegen knobs, %d pass toggles) over %d synthetic programs", 6+len(compilerPasses), len(compilerPasses), len(compilerPrograms)),
		Tags:        []string{"synthetic", "compiler", "categorical", "high-dim"},
		New: func(p Params) (*core.Problem, error) {
			return compilerProblem(), nil
		},
	})
}
