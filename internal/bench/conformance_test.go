package bench_test

import (
	"strings"
	"testing"

	"repro/internal/bench"
	_ "repro/internal/bench/all"
)

// TestConformance runs the scenario conformance suite over every registered
// workload: problem builds and validates, spaces round-trip and respect
// bounds, constrained spaces keep a usable feasible fraction, objectives
// are construction-deterministic, and no sample beats a declared optimum.
func TestConformance(t *testing.T) {
	scs := bench.All()
	if len(scs) < 11 { // 8 app scenarios + 3 synthetic families
		t.Fatalf("registry has %d scenarios, want at least 11: %v", len(scs), bench.Names())
	}
	for _, s := range scs {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			if err := bench.Verify(s, bench.VerifyConfig{}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRegistryResolvesAliases(t *testing.T) {
	s, err := bench.Get("pdgeqrf")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "qr" {
		t.Fatalf("alias pdgeqrf resolved to %q, want qr", s.Name)
	}
}

func TestUnknownScenarioErrorEnumeratesNames(t *testing.T) {
	_, err := bench.Get("no-such-scenario")
	if err == nil {
		t.Fatal("Get of unknown scenario succeeded")
	}
	for _, want := range []string{"gemm", "qr", "recsys", "compiler-flags"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not enumerate %q", err, want)
		}
	}
}

func TestUnknownParamErrorNamesDeclared(t *testing.T) {
	s, err := bench.Get("qr")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Problem(bench.Params{"bogus": 1}); err == nil {
		t.Fatal("unknown scenario parameter accepted")
	} else if !strings.Contains(err.Error(), "bogus") || !strings.Contains(err.Error(), "nodes") {
		t.Fatalf("error %q should name the bad key and the declared parameters", err)
	}
}

func TestScenarioParamsOverrideDefaults(t *testing.T) {
	s, err := bench.Get("qr")
	if err != nil {
		t.Fatal(err)
	}
	prob, err := s.Problem(bench.Params{"nodes": 4})
	if err != nil {
		t.Fatal(err)
	}
	i := prob.Tuning.IndexOf("p")
	if i < 0 {
		t.Fatal("qr problem has no p parameter")
	}
	if hi := prob.Tuning.Params[i].Hi; hi != 4*32 {
		t.Fatalf("p upper bound %v, want 128 for nodes=4", hi)
	}
}

func TestCatalogCoversRegistry(t *testing.T) {
	infos, err := bench.Catalog()
	if err != nil {
		t.Fatal(err)
	}
	names := bench.Names()
	if len(infos) != len(names) {
		t.Fatalf("catalog has %d entries, registry %d", len(infos), len(names))
	}
	byName := map[string]bench.Info{}
	for _, in := range infos {
		byName[in.Name] = in
	}
	if in := byName["gemm"]; !in.Constrained || in.TuningDim != 5 || !in.HasOptimum {
		t.Fatalf("gemm catalog entry wrong: %+v", in)
	}
	if in := byName["compiler-flags"]; in.TuningDim != 40 || in.Constrained {
		t.Fatalf("compiler-flags catalog entry wrong: %+v", in)
	}
	if in := byName["superlu-mo"]; in.OutputDim != 2 {
		t.Fatalf("superlu-mo catalog entry wrong: %+v", in)
	}
}
