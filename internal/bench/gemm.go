package bench

import (
	"math"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/space"
)

// The "gemm" scenario tunes the cache/register blocking of a BLIS-style
// blocked GEMM: macro tiles MC×KC (A block, packed for L2), KC×NC (B panel,
// streamed through L3) and an MR×NR register micro-kernel. Runtime comes
// from an analytic cost model — micro-kernel efficiency with register
// pressure, memory traffic per blocking level, cache-capacity penalties,
// loop overhead, and edge padding from partial micro-tiles — which gives the
// space the real kernel-tuning structure: interior optima in every tile
// size and genuine divisibility constraints (MC % MR == 0, NC % NR == 0,
// the classic "macro tile holds whole micro tiles" requirement). The
// constraints leave only ~8% of the box feasible, exercising constrained
// rejection sampling and feasibility filtering end to end. The model is
// noise-free, so the scenario has an exact known optimum by enumeration of
// the feasible grid.
const (
	gemmTileLo  = 16
	gemmTileHi  = 256
	gemmMicroLo = 2
	gemmMicroHi = 6
	// Cache capacity budgets, in 8-byte words: the packed A block (MC·KC)
	// should fit ~3/4 of a 256 KiB L2, the micro panels (KC·(MR+NR)) in
	// ~3/4 of a 32 KiB L1, the B panel (KC·NC) in a 20 MiB L3 half.
	gemmL1Words = 3072.0
	gemmL2Words = 24576.0
	gemmL3Words = 1.31e6
	// Per-macro-tile loop/packing overhead (seconds).
	gemmLoopOverhead = 20e-9
)

var gemmMachine = machine.CoriHaswell()

// gemmMicroEff models single-core micro-kernel efficiency: small MR×NR
// tiles stall on FMA latency, large ones spill accumulator registers, and
// lopsided tiles waste load bandwidth — an interior optimum near 4×4.
func gemmMicroEff(mr, nr int) float64 {
	r := float64(mr * nr)
	eff := 0.95 * r / (r + 6) / (1 + (r/36)*(r/36))
	aspect := (float64(mr) + float64(nr)) / (2 * math.Sqrt(r))
	return eff / math.Sqrt(aspect)
}

// gemmTime is the noise-free modeled runtime of an M×N×K GEMM with the
// given blocking, shared verbatim by the objective and the optimum
// enumeration.
func gemmTime(m, n, k float64, mc, nc, kc, mr, nr int) float64 {
	fmr, fnr := float64(mr), float64(nr)
	mi := math.Ceil(m/fmr) * fmr
	ni := math.Ceil(n/fnr) * fnr
	pad := (mi * ni) / (m * n) // wasted flops on edge micro-tiles
	tCompute := 2 * m * n * k * pad / (gemmMachine.FlopsPerCore * gemmMicroEff(mr, nr))

	fmc, fnc, fkc := float64(mc), float64(nc), float64(kc)
	rowBlocks := math.Ceil(m / fmc)
	colBlocks := math.Ceil(n / fnc)
	kBlocks := math.Ceil(k / fkc)
	// A re-packed per NC panel, B re-streamed per MC row block, C updated
	// once per KC pass.
	words := m*k*colBlocks + n*k*rowBlocks + 2*m*n*kBlocks
	tMem := 8 * words / gemmMachine.MemBandwidth

	overL1 := math.Max(0, fkc*(fmr+fnr)/gemmL1Words-1)
	overL2 := math.Max(0, fmc*fkc/gemmL2Words-1)
	overL3 := math.Max(0, fkc*fnc/gemmL3Words-1)
	tCompute *= 1 + 0.8*overL1 + 0.35*overL2 + 0.15*overL3

	tLoop := gemmLoopOverhead * rowBlocks * colBlocks * kBlocks
	return tCompute + tMem + tLoop
}

func gemmProblem() *core.Problem {
	tasks := space.MustNew(
		space.NewLogInteger("m", 256, 8192),
		space.NewLogInteger("n", 256, 8192),
		space.NewLogInteger("k", 256, 8192),
	)
	tuning := space.MustNew(
		space.NewLogInteger("MC", gemmTileLo, gemmTileHi),
		space.NewLogInteger("NC", gemmTileLo, gemmTileHi),
		space.NewLogInteger("KC", gemmTileLo, gemmTileHi),
		space.NewInteger("MR", gemmMicroLo, gemmMicroHi),
		space.NewInteger("NR", gemmMicroLo, gemmMicroHi),
	)
	// Native values are exact small integers, so math.Mod is exact.
	tuning.AddConstraint("MC%MR==0", func(v map[string]float64) bool {
		return math.Mod(v["MC"], v["MR"]) == 0
	})
	tuning.AddConstraint("NC%NR==0", func(v map[string]float64) bool {
		return math.Mod(v["NC"], v["NR"]) == 0
	})
	return &core.Problem{
		Name:    "gemm",
		Tasks:   tasks,
		Tuning:  tuning,
		Outputs: space.NewOutputSpace("runtime"),
		Objective: func(task, x []float64) ([]float64, error) {
			t := gemmTime(task[0], task[1], task[2],
				int(x[0]), int(x[1]), int(x[2]), int(x[3]), int(x[4]))
			return []float64{t}, nil
		},
	}
}

// gemmOptimum enumerates the full feasible grid (~30M points, under two
// seconds) — exact because the model is noise-free and every tuning
// parameter is discrete.
func gemmOptimum(task []float64) (float64, bool) {
	m, n, k := task[0], task[1], task[2]
	best := math.Inf(1)
	for mr := gemmMicroLo; mr <= gemmMicroHi; mr++ {
		mcLo := (gemmTileLo + mr - 1) / mr * mr
		for nr := gemmMicroLo; nr <= gemmMicroHi; nr++ {
			ncLo := (gemmTileLo + nr - 1) / nr * nr
			for mc := mcLo; mc <= gemmTileHi; mc += mr {
				for nc := ncLo; nc <= gemmTileHi; nc += nr {
					for kc := gemmTileLo; kc <= gemmTileHi; kc++ {
						if t := gemmTime(m, n, k, mc, nc, kc, mr, nr); t < best {
							best = t
						}
					}
				}
			}
		}
	}
	return best, true
}

func init() {
	Register(Scenario{
		Name:        "gemm",
		Aliases:     []string{"gemm-tiling"},
		Description: "blocked-GEMM cache/register tiling with divisibility constraints (MC%MR==0, NC%NR==0); exact enumerated optimum",
		Tags:        []string{"synthetic", "kernel", "constrained"},
		New: func(p Params) (*core.Problem, error) {
			return gemmProblem(), nil
		},
		Optimum: gemmOptimum,
	})
}
