package bench

import (
	"hash/fnv"
	"math"
)

// The synthetic scenarios derive all their "randomness" — flag effects,
// interaction structure, per-program constants — from string hashes, so an
// objective is a fixed mathematical function of its inputs: no state, no
// seeds, bitwise reproducible across processes. Same technique as
// analytical.hashNormal and machine.Noise.

// hashU64 hashes the concatenated parts (FNV-1a, then a splitmix64
// finalizer to decorrelate nearby inputs).
func hashU64(parts ...string) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0x1f})
	}
	u := h.Sum64() + 0x9E3779B97F4A7C15
	u ^= u >> 30
	u *= 0xBF58476D1CE4E5B9
	u ^= u >> 27
	u *= 0x94D049BB133111EB
	u ^= u >> 31
	return u
}

// hash01 maps the parts to a uniform value in [0, 1).
func hash01(parts ...string) float64 {
	return float64(hashU64(parts...)>>11) / float64(1<<53)
}

// hashPM maps the parts to a uniform value in [-1, 1).
func hashPM(parts ...string) float64 {
	return 2*hash01(parts...) - 1
}

// hashNorm maps the parts to an approximately standard normal value
// (Box–Muller on two hash-derived uniforms).
func hashNorm(parts ...string) float64 {
	u := hashU64(parts...)
	u1 := float64(u>>11)/float64(1<<53) + 1e-16
	u2 := float64((u*0x2545F4914F6CDD1D+0x9E3779B97F4A7C15)>>11) / float64(1<<53)
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}
