package bench

import (
	"math"

	"repro/internal/core"
	"repro/internal/space"
)

// The "recsys" scenario tunes the training hyperparameters of a
// matrix-factorization recommender (the gorse shape: algorithm choice,
// factor count, learning rate, regularization, epochs, negative sampling,
// dropout, batch size) for a task describing the dataset (user count and
// rating-matrix sparsity). The validation loss is a planted-optimum
// construction: a task-dependent floor plus non-negative penalty terms that
// all vanish at one grid point — oscillation-modulated quadratic bowls in
// normalized coordinates (local minima, like real LR curves), a correlated
// lr/reg ridge, conditional structure (negative sampling only matters for
// the BPR algorithm), and categorical offsets. The planted location moves
// with the task (bigger datasets want more factors, sparser ones more
// regularization), so multitask learning has real cross-task structure to
// share, and the scenario has an exact analytic optimum.

func recsysTaskCoords(task []float64) (uLog, s01 float64) {
	uLog = math.Log(task[0]/1e3) / math.Log(1e6/1e3)
	s01 = (task[1] - 0.9) / (0.999 - 0.9)
	return uLog, s01
}

// recsysFloor is the task-dependent loss floor — the scenario's exact
// global minimum.
func recsysFloor(task []float64) float64 {
	uLog, s01 := recsysTaskCoords(task)
	return 0.52 + 0.18*s01 - 0.06*uLog
}

// recsysStar returns the planted optimum in normalized coordinates, snapped
// to the space's integer/categorical grid so it is exactly attainable.
func recsysStar(tun *space.Space, task []float64) []float64 {
	uLog, s01 := recsysTaskCoords(task)
	raw := []float64{
		0.5 / 3,          // algo: als
		0.35 + 0.45*uLog, // factors: more users, more factors
		0.45,             // lr
		0.3 + 0.2*s01,    // reg: sparser data, more regularization
		0.6,              // epochs
		0.5,              // neg-ratio (only penalized under bpr)
		0.3,              // dropout: native 0.15
		0.5,              // batch: "256"
	}
	return tun.Normalize(tun.Denormalize(raw))
}

func recsysLoss(tun *space.Space, task, x []float64) float64 {
	_, s01 := recsysTaskCoords(task)
	ustar := recsysStar(tun, task)
	u := tun.Normalize(x)
	d := make([]float64, len(u))
	for i := range u {
		d[i] = u[i] - ustar[i]
	}
	// Every term below is >= 0 and exactly 0 at the planted point: the
	// oscillation factors stay in [0.2, 2.2].
	p := [...]float64{0, 0.035 + 0.01*s01, 0.02}[int(x[0])] // algo offset
	p += 0.25 * d[1] * d[1] * (1.2 + math.Cos(9*d[1]))      // factors
	p += 0.3 * d[2] * d[2] * (1.2 + math.Cos(7*d[2]+1))     // lr
	p += 0.2 * d[3] * d[3] * (1.2 + math.Cos(8*d[3]+2))     // reg
	p += 0.1 * d[4] * d[4] * (1.2 + math.Cos(5*d[4]))       // epochs
	p += 0.12 * d[6] * d[6]                                 // dropout
	if int(x[0]) == 1 {                                     // bpr: neg sampling active
		dn := u[5] - 0.5
		p += 0.08 * dn * dn
	}
	p += [...]float64{0.008, 0, 0.012}[int(x[7])] // batch offset
	cr := d[2] + d[3]                             // correlated lr/reg ridge
	p += 0.1 * cr * cr
	return recsysFloor(task) + p
}

func recsysProblem() *core.Problem {
	tasks := space.MustNew(
		space.NewLogReal("users", 1e3, 1e6),
		space.NewReal("sparsity", 0.9, 0.999),
	)
	tuning := space.MustNew(
		space.NewCategorical("algo", "als", "bpr", "svdpp"),
		space.NewLogInteger("factors", 4, 512),
		space.NewLogReal("lr", 1e-4, 0.5),
		space.NewLogReal("reg", 1e-6, 0.1),
		space.NewInteger("epochs", 5, 200),
		space.NewInteger("neg-ratio", 1, 20),
		space.NewReal("dropout", 0, 0.5),
		space.NewCategorical("batch", "64", "256", "1024"),
	)
	return &core.Problem{
		Name:    "recsys",
		Tasks:   tasks,
		Tuning:  tuning,
		Outputs: space.NewOutputSpace("loss"),
		Objective: func(task, x []float64) ([]float64, error) {
			return []float64{recsysLoss(tuning, task, x)}, nil
		},
	}
}

func init() {
	Register(Scenario{
		Name:        "recsys",
		Aliases:     []string{"recommender"},
		Description: "matrix-factorization recommender hyperparameters (algo, factors, lr, reg, epochs, ...) with a task-dependent planted optimum",
		Tags:        []string{"synthetic", "ml", "mixed"},
		New: func(p Params) (*core.Problem, error) {
			return recsysProblem(), nil
		},
		Optimum: func(task []float64) (float64, bool) {
			return recsysFloor(task), true
		},
	})
}
