package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/sample"
)

// RegressConfig fixes the budget and seed of a regression run, so the
// per-scenario table in EXPERIMENTS.md is reproducible. Zero fields mean
// their defaults.
type RegressConfig struct {
	Delta   int   // tasks per scenario (default 2)
	Eps     int   // evaluations per task ε_tot (default 30)
	Seed    int64 // seed for task sampling and the MLA run (default 1)
	Workers int   // engine workers (default 1; history is worker-invariant)
}

func (c *RegressConfig) defaults() {
	if c.Delta <= 0 {
		c.Delta = 2
	}
	if c.Eps <= 0 {
		c.Eps = 30
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
}

// RegressRow is one task of one scenario's regression run: the best value
// MLA found at the fixed budget, next to the known optimum when the
// scenario declares one.
type RegressRow struct {
	Scenario   string
	Task       string // human-readable task description
	Evals      int
	Best       float64
	Optimum    float64
	HasOptimum bool
}

// Regress runs the full MLA loop on the scenario (default parameters) at
// the fixed budget and reports best-found vs known optimum per task.
func Regress(s *Scenario, cfg RegressConfig) ([]RegressRow, error) {
	cfg.defaults()
	prob, err := s.Problem(nil)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	tasks, err := sample.FeasibleLHS(prob.Tasks, cfg.Delta, rng)
	if err != nil {
		return nil, fmt.Errorf("bench: scenario %q: sampling tasks: %w", s.Name, err)
	}
	res, err := core.Run(prob, tasks, core.Options{
		EpsTot: cfg.Eps, Seed: cfg.Seed, Workers: cfg.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("bench: scenario %q: %w", s.Name, err)
	}
	rows := make([]RegressRow, len(res.Tasks))
	for i, tr := range res.Tasks {
		_, y := tr.Best()
		rows[i] = RegressRow{
			Scenario: s.Name,
			Task:     prob.Tasks.Describe(tasks[i]),
			Evals:    cfg.Eps,
			Best:     y[0],
		}
		if s.Optimum != nil {
			if opt, ok := s.Optimum(tasks[i]); ok {
				rows[i].Optimum, rows[i].HasOptimum = opt, true
			}
		}
	}
	return rows, nil
}
