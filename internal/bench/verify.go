package bench

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/sample"
	"repro/internal/space"
)

// VerifyConfig bounds the conformance checks. The zero value of each field
// means its default.
type VerifyConfig struct {
	Tasks           int     // task vectors sampled for objective checks (default 2)
	Points          int     // tuning points evaluated per task (default 3)
	BoundsSamples   int     // unit samples for bounds/round-trip checks (default 256)
	FeasibleSamples int     // unit samples for the feasible-fraction estimate (default 2000)
	FeasibleFloor   float64 // minimum feasible fraction of a constrained space (default 0.02)
	Seed            int64   // RNG seed (default 7)
	SkipOptimum     bool    // skip the (possibly expensive) known-optimum checks
}

func (c *VerifyConfig) defaults() {
	if c.Tasks <= 0 {
		c.Tasks = 2
	}
	if c.Points <= 0 {
		c.Points = 3
	}
	if c.BoundsSamples <= 0 {
		c.BoundsSamples = 256
	}
	if c.FeasibleSamples <= 0 {
		c.FeasibleSamples = 2000
	}
	if c.FeasibleFloor <= 0 {
		c.FeasibleFloor = 0.02
	}
	if c.Seed == 0 {
		c.Seed = 7
	}
}

// Verify runs the scenario conformance suite: the problem builds and
// validates; spaces round-trip native points through normalize/denormalize
// and respect their bounds; constrained spaces keep a measured feasible
// fraction above a floor (so rejection sampling cannot silently starve);
// and the objective is deterministic — two independently constructed
// problem instances evaluate the same inputs to bitwise-equal, finite,
// correctly-shaped outputs. (Determinism is defined across fresh instances,
// not repeated calls on one instance: simulators with attempt-counted
// measurement noise legitimately vary across repeats of one configuration.)
// Where the scenario declares a known optimum, no sampled evaluation may
// beat it by more than a small tolerance.
func Verify(s *Scenario, cfg VerifyConfig) error {
	cfg.defaults()
	prob, err := s.Problem(nil)
	if err != nil {
		return err
	}
	if err := prob.Validate(); err != nil {
		return fmt.Errorf("bench: scenario %q: %w", s.Name, err)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for _, sp := range []struct {
		name string
		s    *space.Space
	}{{"task space", prob.Tasks}, {"tuning space", prob.Tuning}} {
		if err := verifySpace(sp.s, cfg, rng); err != nil {
			return fmt.Errorf("bench: scenario %q %s: %w", s.Name, sp.name, err)
		}
	}
	return verifyObjective(s, prob, cfg, rng)
}

// verifySpace checks bounds, grid round-trips, and the feasible fraction.
func verifySpace(sp *space.Space, cfg VerifyConfig, rng *rand.Rand) error {
	u := make([]float64, sp.Dim())
	for n := 0; n < cfg.BoundsSamples; n++ {
		for d := range u {
			u[d] = rng.Float64()
		}
		if n == 0 {
			for d := range u {
				u[d] = 0
			}
		} else if n == 1 {
			for d := range u {
				u[d] = 1
			}
		}
		nat := sp.Denormalize(u)
		for i, p := range sp.Params {
			if err := checkInDomain(p, nat[i]); err != nil {
				return err
			}
		}
		rt := sp.Denormalize(sp.Normalize(nat))
		for i, p := range sp.Params {
			if err := checkRoundTrip(p, nat[i], rt[i]); err != nil {
				return err
			}
		}
	}
	if len(sp.Constraints) == 0 {
		return nil
	}
	feasible := 0
	for n := 0; n < cfg.FeasibleSamples; n++ {
		for d := range u {
			u[d] = rng.Float64()
		}
		if sp.Feasible(sp.Denormalize(u)) {
			feasible++
		}
	}
	frac := float64(feasible) / float64(cfg.FeasibleSamples)
	if frac < cfg.FeasibleFloor {
		return fmt.Errorf("feasible fraction %.4f below floor %.4f (%d/%d samples; rejection sampling would starve)",
			frac, cfg.FeasibleFloor, feasible, cfg.FeasibleSamples)
	}
	return nil
}

func checkInDomain(p space.Param, v float64) error {
	switch p.Kind {
	case space.Categorical:
		if v != math.Trunc(v) || v < 0 || v >= float64(len(p.Categories)) {
			return fmt.Errorf("parameter %s: denormalized index %v outside 0..%d", p.Name, v, len(p.Categories)-1)
		}
	case space.Integer:
		if v != math.Trunc(v) {
			return fmt.Errorf("parameter %s: denormalized value %v not integral", p.Name, v)
		}
		fallthrough
	default:
		if v < p.Lo || v > p.Hi {
			return fmt.Errorf("parameter %s: denormalized value %v outside [%g, %g]", p.Name, v, p.Lo, p.Hi)
		}
	}
	return nil
}

func checkRoundTrip(p space.Param, v, rt float64) error {
	switch p.Kind {
	case space.Integer, space.Categorical:
		if rt != v {
			return fmt.Errorf("parameter %s: grid value %v round-trips to %v", p.Name, v, rt)
		}
	default:
		tol := 1e-9 * (1 + math.Abs(v))
		if math.Abs(rt-v) > tol {
			return fmt.Errorf("parameter %s: value %v round-trips to %v (|Δ| > %g)", p.Name, v, rt, tol)
		}
	}
	return nil
}

// verifyObjective evaluates the same (task, point) sequence on two fresh
// problem instances and requires bitwise-identical, finite, correctly-sized
// outputs.
func verifyObjective(s *Scenario, prob *core.Problem, cfg VerifyConfig, rng *rand.Rand) error {
	tasks, err := sample.FeasibleLHS(prob.Tasks, cfg.Tasks, rng)
	if err != nil {
		return fmt.Errorf("bench: scenario %q: sampling tasks: %w", s.Name, err)
	}
	pts, err := sample.FeasibleLHS(prob.Tuning, cfg.Points, rng)
	if err != nil {
		return fmt.Errorf("bench: scenario %q: sampling tuning points: %w", s.Name, err)
	}
	prob2, err := s.Problem(nil)
	if err != nil {
		return err
	}
	dim := prob.Outputs.Dim()
	run := func(p *core.Problem) ([][]float64, error) {
		out := make([][]float64, 0, len(tasks)*len(pts))
		for _, t := range tasks {
			for _, x := range pts {
				y, err := p.Objective(t, x)
				if err != nil {
					return nil, fmt.Errorf("bench: scenario %q: objective(%v, %v): %w", s.Name, t, x, err)
				}
				if len(y) != dim {
					return nil, fmt.Errorf("bench: scenario %q: objective returned %d outputs, space declares %d", s.Name, len(y), dim)
				}
				for _, v := range y {
					if math.IsNaN(v) || math.IsInf(v, 0) {
						return nil, fmt.Errorf("bench: scenario %q: objective(%v, %v) returned non-finite %v", s.Name, t, x, y)
					}
				}
				out = append(out, y)
			}
		}
		return out, nil
	}
	ys1, err := run(prob)
	if err != nil {
		return err
	}
	ys2, err := run(prob2)
	if err != nil {
		return err
	}
	for i := range ys1 {
		for j := range ys1[i] {
			if math.Float64bits(ys1[i][j]) != math.Float64bits(ys2[i][j]) {
				return fmt.Errorf("bench: scenario %q: objective not construction-deterministic: evaluation %d output %d is %v on one instance, %v on another",
					s.Name, i, j, ys1[i][j], ys2[i][j])
			}
		}
	}
	if s.Optimum == nil || cfg.SkipOptimum {
		return nil
	}
	for ti, t := range tasks {
		opt, ok := s.Optimum(t)
		if !ok {
			continue
		}
		if math.IsNaN(opt) || math.IsInf(opt, 0) {
			return fmt.Errorf("bench: scenario %q: Optimum(%v) is non-finite", s.Name, t)
		}
		// A sampled point must never beat the declared optimum (small
		// tolerance for grid-approximated optima like analytical's).
		tol := 1e-9 + 0.02*math.Max(1, math.Abs(opt))
		for pi := range pts {
			y := ys1[ti*len(pts)+pi][0]
			if y < opt-tol {
				return fmt.Errorf("bench: scenario %q: objective %v at task %v beats the declared optimum %v", s.Name, y, t, opt)
			}
		}
	}
	return nil
}
