package core

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/sample"
	"repro/internal/surrogate"
)

// driveEngine pumps an engine to completion ask/tell style, evaluating the
// analytical objective caller-side and polling through ErrNonePending the
// way a serve-layer client honors a 409's Retry-After.
func driveEngine(t *testing.T, eng *Engine, tasks [][]float64) {
	t.Helper()
	for {
		sg, err := eng.Suggest(-1)
		switch {
		case errors.Is(err, ErrDone):
			return
		case errors.Is(err, ErrNonePending):
			time.Sleep(time.Millisecond)
			continue
		case err != nil:
			t.Fatalf("suggest: %v", err)
		}
		y := paperObjective(tasks[sg.Task][0], sg.X[0])
		if err := eng.Observe(sg.ID, []float64{y}); err != nil {
			t.Fatalf("observe: %v", err)
		}
	}
}

// TestAsyncMatchesSyncBitwise is the async mode's determinism acceptance
// test: moving batch generation to a background goroutine must change
// blocking behavior only. The tuning history AND the write-ahead log must be
// bitwise identical to the synchronous engine's — byte-for-byte WAL equality
// means every eval record and every model snapshot committed in the same
// canonical order, so the PR 3 replay path resumes async studies unchanged.
func TestAsyncMatchesSyncBitwise(t *testing.T) {
	tasks := [][]float64{{0}, {1.5}, {3}}
	clock := func() time.Time { return time.Unix(1700000000, 0).UTC() }
	run := func(async bool) (*Result, []byte) {
		path := filepath.Join(t.TempDir(), "wal.json")
		cp, err := NewCheckpoint(path, CheckpointOptions{Problem: "analytical", Clock: clock})
		if err != nil {
			t.Fatal(err)
		}
		eng, err := NewEngine(analyticalProblem(), tasks, Options{
			EpsTot: 8, Seed: 42, Workers: 2, Async: async,
			Checkpoint: cp, Transfer: cp, Clock: clock,
		})
		if err != nil {
			t.Fatal(err)
		}
		driveEngine(t, eng, tasks)
		eng.Quiesce()
		if err := eng.Err(); err != nil {
			t.Fatal(err)
		}
		res := eng.Result()
		if err := cp.Close(); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path + ".wal") // histdb.WAL's live log file
		if err != nil {
			t.Fatal(err)
		}
		return res, data
	}
	syncRes, syncWAL := run(false)
	asyncRes, asyncWAL := run(true)
	requireBitwiseEqualHistories(t, "async vs sync", syncRes, asyncRes)
	if !bytes.Equal(syncWAL, asyncWAL) {
		t.Errorf("WAL bytes differ: sync %d bytes, async %d bytes", len(syncWAL), len(asyncWAL))
	}
}

// slowFitter wraps a real backend, delaying every fit so tests can observe
// the engine while a modeling phase is verifiably in flight.
type slowFitter struct {
	inner surrogate.Fitter
	delay time.Duration
}

func (f slowFitter) Kind() string { return f.inner.Kind() }
func (f slowFitter) Fit(data *surrogate.Dataset, opts surrogate.FitOptions) (surrogate.Model, error) {
	time.Sleep(f.delay)
	return f.inner.Fit(data, opts)
}
func (f slowFitter) UnmarshalBinary(data []byte) (surrogate.Model, error) {
	return f.inner.UnmarshalBinary(data)
}

// TestAsyncSuggestLatencyUnderModeling pins the tentpole property: with
// Options.Async, Suggest never blocks on a surrogate fit. The fitter is
// slowed to hundreds of milliseconds; every Suggest issued while that fit is
// in flight must return ErrNonePending within single-digit milliseconds —
// it takes only the batch-bookkeeping mutex, which the background generator
// never holds across modeling.
func TestAsyncSuggestLatencyUnderModeling(t *testing.T) {
	const fitDelay = 400 * time.Millisecond
	inner, err := surrogate.New("")
	if err != nil {
		t.Fatal(err)
	}
	tasks := [][]float64{{0}, {1.5}}
	eng, err := NewEngine(analyticalProblem(), tasks, Options{
		EpsTot: 4, Seed: 7, Workers: 1, Async: true,
		fitterOverride: slowFitter{inner: inner, delay: fitDelay},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Drain the init batch (sampling only — the slow fitter is not involved
	// yet). The Observe that commits its last job kicks the background
	// modeling fit; the first ErrNonePending after that is our cue that the
	// slow fit is in flight.
	observed := 0
	for {
		sg, err := eng.Suggest(-1)
		if errors.Is(err, ErrNonePending) {
			if observed > 0 {
				break
			}
			time.Sleep(time.Millisecond) // init batch still sampling
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		y := paperObjective(tasks[sg.Task][0], sg.X[0])
		if err := eng.Observe(sg.ID, []float64{y}); err != nil {
			t.Fatal(err)
		}
		observed++
	}

	// Probe for half the fit's duration: the fit cannot have finished, so
	// every probe must come back ErrNonePending — and fast.
	probes := 0
	deadline := time.Now().Add(fitDelay / 2)
	for time.Now().Before(deadline) {
		t0 := time.Now()
		_, err := eng.Suggest(-1)
		elapsed := time.Since(t0)
		if !errors.Is(err, ErrNonePending) {
			t.Fatalf("suggest during in-flight fit: %v", err)
		}
		if elapsed > 10*time.Millisecond {
			t.Errorf("suggest took %v during an in-flight fit, want <10ms", elapsed)
		}
		probes++
		time.Sleep(5 * time.Millisecond)
	}
	if probes == 0 {
		t.Fatal("no latency probes ran")
	}

	// Finish the study so the background generator is joined before the test
	// returns.
	driveEngine(t, eng, tasks)
	eng.Quiesce()
	if err := eng.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestFailRetryStreamDraws pins the retry stream's exact consumption: the
// n-th failed attempt substitutes the n-th draw from the job's dedicated
// retry RNG, and the third (terminal) attempt draws nothing — the dead job
// keeps the configuration its last attempt actually ran. The old code drew
// and overwrote j.x before the terminal check, so the terminal report both
// burned a third draw and misrecorded what had been evaluated.
func TestFailRetryStreamDraws(t *testing.T) {
	p := analyticalProblem()
	tasks := [][]float64{{0}}
	eng, err := NewEngine(p, tasks, Options{EpsTot: 4, Seed: 9, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	sg, err := eng.Suggest(0)
	if err != nil {
		t.Fatal(err)
	}
	// White box: replay the job's retry stream independently.
	j := eng.byID[sg.ID]
	rng := rand.New(rand.NewSource(j.retrySeed))
	draw := func() []float64 {
		pts, err := sample.FeasibleUniform(p.Tuning, 1, rng)
		if err != nil {
			t.Fatal(err)
		}
		return pts[0]
	}
	want1, want2 := draw(), draw()

	boom := errors.New("node died")
	r1, err := eng.Fail(sg.ID, boom)
	if err != nil {
		t.Fatalf("attempt 1: %v", err)
	}
	if math.Float64bits(r1.X[0]) != math.Float64bits(want1[0]) {
		t.Errorf("attempt 1 substituted %v, want retry draw 1 = %v", r1.X[0], want1[0])
	}
	r2, err := eng.Fail(sg.ID, boom)
	if err != nil {
		t.Fatalf("attempt 2: %v", err)
	}
	if math.Float64bits(r2.X[0]) != math.Float64bits(want2[0]) {
		t.Errorf("attempt 2 substituted %v, want retry draw 2 = %v", r2.X[0], want2[0])
	}
	_, err = eng.Fail(sg.ID, boom)
	if !errors.Is(err, ErrTerminalFailure) {
		t.Fatalf("attempt 3: %v, want ErrTerminalFailure", err)
	}
	if !errors.Is(err, boom) {
		t.Errorf("terminal error does not wrap the last cause: %v", err)
	}
	if math.Float64bits(j.x[0]) != math.Float64bits(want2[0]) {
		t.Errorf("terminal attempt rewrote the dead job's configuration to %v, want draw 2 = %v (no third draw)", j.x[0], want2[0])
	}
	if err := eng.Observe(sg.ID, []float64{1}); !errors.Is(err, ErrUnknownSuggestion) {
		t.Errorf("observe on dead job: %v, want ErrUnknownSuggestion", err)
	}
}
