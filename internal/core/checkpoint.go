package core

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/histdb"
)

// CheckpointRecord is one completed objective evaluation as streamed to a
// checkpoint: which task, which configuration was requested and which was
// actually evaluated (they differ only when retries substituted a fresh
// feasible point), the outputs, and the tuning phase that produced it.
type CheckpointRecord struct {
	Phase     string    // "init", "search" (Algorithm 1) or "mo" (Algorithm 2)
	Task      []float64 // native task parameters
	Requested []float64 // configuration the search asked for
	X         []float64 // configuration evaluated
	Y         []float64 // γ outputs
}

// Checkpoint receives every completed evaluation of an MLA run, in an order
// that depends only on the run's seed and options — never on goroutine
// scheduling — so the stream is a replayable log. Eval is always called on
// the coordinating goroutine; Lookup may be called concurrently from
// evaluation workers.
type Checkpoint interface {
	// Eval is called once per completed evaluation, as soon as it and every
	// earlier evaluation of its batch have finished (mid-batch, not at the
	// batch barrier). Returning an error aborts the run.
	Eval(rec CheckpointRecord) error
	// Lookup consults the log of a resumed run: when the evaluation for
	// (task, requested) already completed before the crash, it returns the
	// logged final configuration and outputs and the tuner skips the
	// objective call. Each logged record satisfies at most one Lookup.
	Lookup(task, requested []float64) (x, y []float64, ok bool)
}

// CheckpointOptions configures a WAL-backed checkpoint.
type CheckpointOptions struct {
	// Problem names the run in the log; Resume refuses a log whose records
	// belong to a different problem.
	Problem string
	// GroupCommit batches fsyncs (see histdb.WALOptions.GroupCommit).
	// Default 1: every evaluation is durable the moment it is delivered.
	GroupCommit int
	// Clock stamps log records; pass the run's Options.Clock so a
	// deterministic run performs no wall-clock reads. nil uses time.Now.
	Clock func() time.Time
}

// Checkpointer streams an MLA run's evaluations to a crash-safe
// write-ahead log (histdb.WAL) and, after Resume, replays them so the run
// continues where it was killed: the tuner re-derives its decisions
// deterministically and satisfies already-logged evaluations from the log
// instead of re-paying the objective. Replayed deliveries are verified
// bitwise against the log, so any divergence (changed seed, options, or
// objective) fails loudly instead of corrupting the history.
type Checkpointer struct {
	wal     *histdb.WAL
	problem string

	mu     sync.Mutex
	replay []histdb.Record // evaluation records only (model records filtered out)
	pos    int             // next replay record Eval must reproduce
	used   []bool          // replay records consumed by Lookup
	models int             // model-snapshot records currently in the WAL
	snaps  []ModelSnapshot // model snapshots found in the log at open time
}

// NewCheckpoint creates a fresh WAL-backed checkpoint at path. It refuses a
// location that already holds records — resume those with Resume, or point
// a new run at a new path (a finished run's log is an archive, not scratch).
func NewCheckpoint(path string, opts CheckpointOptions) (*Checkpointer, error) {
	c, err := openCheckpoint(path, opts)
	if err != nil {
		return nil, err
	}
	if n := len(c.replay); n > 0 {
		_ = c.wal.Close() // already failing; the open error is the one to report
		return nil, fmt.Errorf("core: checkpoint %s already holds %d records; use Resume to continue it", path, n)
	}
	return c, nil
}

// Resume opens the WAL-backed checkpoint at path and prepares its records
// for replay: pass the returned Checkpointer as Options.Checkpoint and run
// RunContext with the same problem, tasks, seed and options as the killed
// run. The run reproduces the logged prefix bitwise without re-invoking the
// objective for logged evaluations, then continues tuning (and logging)
// from where the crash cut it off. A missing file resumes as a fresh run.
func Resume(path string, opts CheckpointOptions) (*Checkpointer, error) {
	return openCheckpoint(path, opts)
}

func openCheckpoint(path string, opts CheckpointOptions) (*Checkpointer, error) {
	wal, err := histdb.OpenWAL(path, histdb.WALOptions{
		GroupCommit: opts.GroupCommit,
		Clock:       opts.Clock,
	})
	if err != nil {
		return nil, err
	}
	// Model-snapshot records ride in the same log but are not evaluations:
	// they never replay through Eval/Lookup (the engine re-fits and re-saves
	// deterministically), so the replay list holds evaluation records only.
	var replay []histdb.Record
	var snaps []ModelSnapshot
	models := 0
	for i, r := range wal.DB().Records() {
		if opts.Problem != "" && r.Problem != opts.Problem {
			_ = wal.Close() // already failing; the mismatch error is the one to report
			return nil, fmt.Errorf("core: checkpoint %s record %d belongs to problem %q, not %q",
				path, i, r.Problem, opts.Problem)
		}
		if r.IsEval() {
			replay = append(replay, r)
			continue
		}
		models++
		if r.Kind == histdb.KindModel {
			snaps = append(snaps, ModelSnapshot{Kind: r.Surrogate, Objective: r.Objective, Data: r.Snapshot})
		}
	}
	return &Checkpointer{
		wal: wal, problem: opts.Problem,
		replay: replay, used: make([]bool, len(replay)),
		models: models, snaps: snaps,
	}, nil
}

// Logged returns how many evaluations the checkpoint currently holds
// (replayed + newly appended). Model-snapshot records do not count.
func (c *Checkpointer) Logged() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.wal.Len() - c.models
}

// SaveModel implements ModelStore: it appends a fitted-surrogate snapshot to
// the write-ahead log as a histdb.KindModel record, so pass the Checkpointer
// as Options.Transfer to make every modeling phase's result durable
// alongside the evaluations it was fitted on. Later sessions load the
// snapshots with ModelSnapshots (or the facade's LoadModelSnapshots) and
// feed them to Options.WarmStart.
func (c *Checkpointer) SaveModel(snap ModelSnapshot) error {
	c.mu.Lock()
	c.models++
	c.mu.Unlock()
	return c.wal.Append(histdb.Record{
		Problem:   c.problem,
		Kind:      histdb.KindModel,
		Surrogate: snap.Kind,
		Objective: snap.Objective,
		Snapshot:  snap.Data,
	})
}

// ModelSnapshots returns the fitted-model snapshots the log held when this
// Checkpointer was opened (in append order — the last snapshot per
// (kind, objective) is the most-trained one). Snapshots saved through this
// Checkpointer after opening are not included; reopen the log to see them.
func (c *Checkpointer) ModelSnapshots() []ModelSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]ModelSnapshot(nil), c.snaps...)
}

// Prior converts the checkpoint's records into Options.Prior samples — for
// warm-starting a *different* run (other tasks, other budget) from this
// run's data rather than resuming it. Output-less records are skipped.
func (c *Checkpointer) Prior() []PriorSample {
	var out []PriorSample
	for _, r := range c.wal.DB().Records() {
		if !r.IsEval() || len(r.Outputs) == 0 {
			continue
		}
		out = append(out, PriorSample{Task: r.Task, X: r.Config, Y: r.Outputs})
	}
	return out
}

// Compact folds the checkpoint's log into its snapshot file (see
// histdb.WAL.Compact).
func (c *Checkpointer) Compact() error { return c.wal.Compact() }

// Export returns a consistent copy of the checkpoint's snapshot and log
// files (see histdb.WAL.Export) — everything a Resume on another machine
// needs to replay the study bitwise.
func (c *Checkpointer) Export() (snapshot, log []byte, err error) { return c.wal.Export() }

// Close flushes and closes the underlying log.
func (c *Checkpointer) Close() error { return c.wal.Close() }

// Eval implements Checkpoint: while replaying it verifies the delivery
// reproduces the logged record bitwise; past the replayed prefix it appends
// the record durably to the WAL.
func (c *Checkpointer) Eval(rec CheckpointRecord) error {
	c.mu.Lock()
	if c.pos < len(c.replay) {
		logged := c.replay[c.pos]
		c.pos++
		c.mu.Unlock()
		if logged.Phase != rec.Phase ||
			!bitsEqual(logged.Task, rec.Task) ||
			!bitsEqual(loggedRequested(logged), rec.Requested) ||
			!bitsEqual(logged.Config, rec.X) ||
			!bitsEqual(logged.Outputs, rec.Y) {
			return fmt.Errorf("core: resume diverged at logged evaluation %d: log has phase=%s task=%v x=%v, run produced phase=%s task=%v x=%v (same problem, seed and options required)",
				c.pos-1, logged.Phase, logged.Task, logged.Config, rec.Phase, rec.Task, rec.X)
		}
		return nil
	}
	c.mu.Unlock()
	r := histdb.Record{
		Problem:   c.problem,
		Task:      rec.Task,
		Config:    rec.X,
		Outputs:   rec.Y,
		Phase:     rec.Phase,
		Requested: rec.Requested,
	}
	if bitsEqual(rec.Requested, rec.X) {
		r.Requested = nil // the common no-retry case; Config doubles as Requested
	}
	return c.wal.Append(r)
}

// loggedRequested is the configuration a logged evaluation was asked for:
// Requested when a retry made it differ from Config, else Config itself.
func loggedRequested(r histdb.Record) []float64 {
	if r.Requested != nil {
		return r.Requested
	}
	return r.Config
}

// Lookup implements Checkpoint: it finds the first unconsumed replay record
// matching (task, requested) bitwise.
func (c *Checkpointer) Lookup(task, requested []float64) (x, y []float64, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, r := range c.replay {
		if c.used[i] || !bitsEqual(r.Task, task) || !bitsEqual(loggedRequested(r), requested) {
			continue
		}
		c.used[i] = true
		return append([]float64(nil), r.Config...), append([]float64(nil), r.Outputs...), true
	}
	return nil, nil, false
}

// bitsEqual compares two vectors at the Float64bits level — the same
// equality the determinism harness asserts, exact across the JSON
// round-trip (encoding/json emits shortest round-trippable literals).
func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}
