package core

import (
	"math"
	"runtime"
	"testing"
)

// runSeeded runs the analytical MLA benchmark at a fixed seed with the given
// worker count and GOMAXPROCS, returning the full tuning history.
func runSeeded(t *testing.T, workers, procs int) *Result {
	t.Helper()
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)
	res, err := Run(analyticalProblem(), [][]float64{{0}, {1.5}, {3}}, Options{
		EpsTot:  12,
		Seed:    42,
		Workers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestMLADeterministicAcrossWorkers is the dynamic half of the determinism
// contract that gptlint enforces statically: the tuner's entire history —
// every configuration visited and every objective value recorded, for every
// task — must be bitwise identical regardless of how many goroutines the
// run is spread across. Any scheduler-order dependence (unsynchronized
// reduction order, map iteration leaking into results, wall-clock branching)
// shows up here as a Float64bits mismatch.
func TestMLADeterministicAcrossWorkers(t *testing.T) {
	serial := runSeeded(t, 1, 1)
	parallel := runSeeded(t, 8, 8)

	if len(serial.Tasks) != len(parallel.Tasks) {
		t.Fatalf("task count differs: %d vs %d", len(serial.Tasks), len(parallel.Tasks))
	}
	for ti := range serial.Tasks {
		s, p := serial.Tasks[ti], parallel.Tasks[ti]
		if len(s.X) != len(p.X) || len(s.Y) != len(p.Y) {
			t.Fatalf("task %d: history length differs: %d/%d vs %d/%d",
				ti, len(s.X), len(s.Y), len(p.X), len(p.Y))
		}
		for i := range s.X {
			for d := range s.X[i] {
				if math.Float64bits(s.X[i][d]) != math.Float64bits(p.X[i][d]) {
					t.Errorf("task %d sample %d dim %d: X differs: %v vs %v",
						ti, i, d, s.X[i][d], p.X[i][d])
				}
			}
			for k := range s.Y[i] {
				if math.Float64bits(s.Y[i][k]) != math.Float64bits(p.Y[i][k]) {
					t.Errorf("task %d sample %d output %d: Y differs: %v vs %v",
						ti, i, k, s.Y[i][k], p.Y[i][k])
				}
			}
		}
	}
}

// TestMLADeterministicRepeatedRun guards the weaker (but independently
// violable) invariant that two identical invocations in the same process
// agree — catching state leaks through package-level variables or
// iteration-order randomization even when worker scheduling happens to
// align.
func TestMLADeterministicRepeatedRun(t *testing.T) {
	a := runSeeded(t, 4, runtime.GOMAXPROCS(0))
	b := runSeeded(t, 4, runtime.GOMAXPROCS(0))
	for ti := range a.Tasks {
		sa, sb := a.Tasks[ti], b.Tasks[ti]
		for i := range sa.X {
			for d := range sa.X[i] {
				if math.Float64bits(sa.X[i][d]) != math.Float64bits(sb.X[i][d]) {
					t.Fatalf("task %d sample %d: repeated run diverged", ti, i)
				}
			}
		}
	}
}
