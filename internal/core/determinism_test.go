package core

import (
	"errors"
	"fmt"
	"math"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/histdb"
)

// runSeeded runs the analytical MLA benchmark at a fixed seed with the given
// worker count and GOMAXPROCS, returning the full tuning history.
func runSeeded(t *testing.T, workers, procs int) *Result {
	t.Helper()
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)
	res, err := Run(analyticalProblem(), [][]float64{{0}, {1.5}, {3}}, Options{
		EpsTot:  12,
		Seed:    42,
		Workers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestMLADeterministicAcrossWorkers is the dynamic half of the determinism
// contract that gptlint enforces statically: the tuner's entire history —
// every configuration visited and every objective value recorded, for every
// task — must be bitwise identical regardless of how many goroutines the
// run is spread across. Any scheduler-order dependence (unsynchronized
// reduction order, map iteration leaking into results, wall-clock branching)
// shows up here as a Float64bits mismatch.
func TestMLADeterministicAcrossWorkers(t *testing.T) {
	serial := runSeeded(t, 1, 1)
	parallel := runSeeded(t, 8, 8)

	if len(serial.Tasks) != len(parallel.Tasks) {
		t.Fatalf("task count differs: %d vs %d", len(serial.Tasks), len(parallel.Tasks))
	}
	for ti := range serial.Tasks {
		s, p := serial.Tasks[ti], parallel.Tasks[ti]
		if len(s.X) != len(p.X) || len(s.Y) != len(p.Y) {
			t.Fatalf("task %d: history length differs: %d/%d vs %d/%d",
				ti, len(s.X), len(s.Y), len(p.X), len(p.Y))
		}
		for i := range s.X {
			for d := range s.X[i] {
				if math.Float64bits(s.X[i][d]) != math.Float64bits(p.X[i][d]) {
					t.Errorf("task %d sample %d dim %d: X differs: %v vs %v",
						ti, i, d, s.X[i][d], p.X[i][d])
				}
			}
			for k := range s.Y[i] {
				if math.Float64bits(s.Y[i][k]) != math.Float64bits(p.Y[i][k]) {
					t.Errorf("task %d sample %d output %d: Y differs: %v vs %v",
						ti, i, k, s.Y[i][k], p.Y[i][k])
				}
			}
		}
	}
}

// TestMLADeterministicRepeatedRun guards the weaker (but independently
// violable) invariant that two identical invocations in the same process
// agree — catching state leaks through package-level variables or
// iteration-order randomization even when worker scheduling happens to
// align.
func TestMLADeterministicRepeatedRun(t *testing.T) {
	a := runSeeded(t, 4, runtime.GOMAXPROCS(0))
	b := runSeeded(t, 4, runtime.GOMAXPROCS(0))
	for ti := range a.Tasks {
		sa, sb := a.Tasks[ti], b.Tasks[ti]
		for i := range sa.X {
			for d := range sa.X[i] {
				if math.Float64bits(sa.X[i][d]) != math.Float64bits(sb.X[i][d]) {
					t.Fatalf("task %d sample %d: repeated run diverged", ti, i)
				}
			}
		}
	}
}

// errKilled simulates the process dying: the checkpoint hook refuses the
// next delivery, aborting the run after k records reached the log.
var errKilled = errors.New("simulated crash")

// killAfter wraps a Checkpointer and fails the (k+1)-th delivery.
type killAfter struct {
	inner *Checkpointer
	kills int
	count int
}

func (k *killAfter) Eval(rec CheckpointRecord) error {
	if k.count >= k.kills {
		return errKilled
	}
	k.count++
	return k.inner.Eval(rec)
}

func (k *killAfter) Lookup(task, requested []float64) ([]float64, []float64, bool) {
	return k.inner.Lookup(task, requested)
}

// countingProblem wraps the analytical problem, counting objective calls.
func countingProblem(calls *int64) *Problem {
	p := analyticalProblem()
	inner := p.Objective
	p.Objective = func(task, x []float64) ([]float64, error) {
		atomic.AddInt64(calls, 1)
		return inner(task, x)
	}
	return p
}

func resumeOptions(cp Checkpoint) Options {
	return Options{EpsTot: 8, Seed: 42, Workers: 4, Checkpoint: cp}
}

func requireBitwiseEqualHistories(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if len(a.Tasks) != len(b.Tasks) {
		t.Fatalf("%s: task count %d vs %d", label, len(a.Tasks), len(b.Tasks))
	}
	for ti := range a.Tasks {
		s, p := a.Tasks[ti], b.Tasks[ti]
		if len(s.X) != len(p.X) || len(s.Y) != len(p.Y) {
			t.Fatalf("%s: task %d history length %d/%d vs %d/%d",
				label, ti, len(s.X), len(s.Y), len(p.X), len(p.Y))
		}
		for i := range s.X {
			for d := range s.X[i] {
				if math.Float64bits(s.X[i][d]) != math.Float64bits(p.X[i][d]) {
					t.Fatalf("%s: task %d sample %d dim %d: X %v vs %v",
						label, ti, i, d, s.X[i][d], p.X[i][d])
				}
			}
			for k := range s.Y[i] {
				if math.Float64bits(s.Y[i][k]) != math.Float64bits(p.Y[i][k]) {
					t.Fatalf("%s: task %d sample %d output %d: Y %v vs %v",
						label, ti, i, k, s.Y[i][k], p.Y[i][k])
				}
			}
		}
	}
}

// TestCrashResumeReproducesRunBitwise is the crash-safety half of the
// determinism contract: for every possible crash point k (the run dies
// after exactly k evaluations reached the write-ahead log), resuming from
// the log must reproduce the uninterrupted run's tuning history bitwise —
// and must not re-pay the k logged objective evaluations.
func TestCrashResumeReproducesRunBitwise(t *testing.T) {
	tasks := [][]float64{{0}, {1.5}}

	var baseCalls int64
	baseline, err := Run(countingProblem(&baseCalls), tasks, resumeOptions(nil))
	if err != nil {
		t.Fatal(err)
	}
	total := int(baseCalls) // evaluations an uninterrupted run performs

	for k := 0; k <= total; k++ {
		dir := t.TempDir()
		path := filepath.Join(dir, "ckpt.json")

		// Phase 1: run until the simulated crash after k logged records.
		cp, err := NewCheckpoint(path, CheckpointOptions{Problem: "analytical"})
		if err != nil {
			t.Fatal(err)
		}
		_, err = Run(analyticalProblem(), tasks, resumeOptions(&killAfter{inner: cp, kills: k}))
		if k < total && !errors.Is(err, errKilled) {
			t.Fatalf("kill %d: run survived the crash: %v", k, err)
		}
		if k == total && err != nil {
			t.Fatalf("kill %d: uninterrupted checkpointed run failed: %v", k, err)
		}
		cp.Close()

		// The log must be recoverable and hold exactly k records.
		if res, verr := histdb.Verify(path); verr != nil || res.SnapshotRecords+res.LogRecords != k {
			t.Fatalf("kill %d: verify = %+v, %v", k, res, verr)
		}

		// Phase 2: resume and run to completion.
		rcp, err := Resume(path, CheckpointOptions{Problem: "analytical"})
		if err != nil {
			t.Fatal(err)
		}
		var resumedCalls int64
		resumed, err := Run(countingProblem(&resumedCalls), tasks, resumeOptions(rcp))
		if err != nil {
			t.Fatalf("kill %d: resumed run failed: %v", k, err)
		}
		requireBitwiseEqualHistories(t, fmt.Sprintf("kill %d", k), baseline, resumed)
		if int(resumedCalls) != total-k {
			t.Errorf("kill %d: resumed run paid %d objective calls, want %d (log should cover the rest)",
				k, resumedCalls, total-k)
		}
		// The finished log must equal the uninterrupted run's history.
		if got := rcp.Logged(); got != total {
			t.Errorf("kill %d: final log has %d records, want %d", k, got, total)
		}
		rcp.Close()
	}
}
