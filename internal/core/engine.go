package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"repro/internal/mpx"
	"repro/internal/sample"
	"repro/internal/surrogate"
)

// ErrDone reports that a study's evaluation budget is exhausted: every task
// has received its EpsTot evaluations and no further suggestions exist.
var ErrDone = errors.New("core: tuning budget exhausted")

// ErrNonePending reports that the engine cannot hand out a suggestion right
// now: the current batch's remaining configurations are all outstanding with
// other callers (or, in async mode, the next batch is still being generated
// in the background). Callers should report pending observations or retry
// shortly — the serve layer surfaces this as a 409 with a Retry-After hint.
var ErrNonePending = errors.New("core: no suggestion pending until outstanding observations are reported")

// ErrUnknownSuggestion reports an Observe/Fail against an ID the engine has
// no pending suggestion for: never issued, already observed, failed
// terminally, or already committed. The serve layer matches it with
// errors.Is to return 404 instead of string-matching error text.
var ErrUnknownSuggestion = errors.New("core: engine: no pending suggestion")

// ErrBadObservation reports structurally invalid reported outputs (wrong
// arity or non-finite values). The suggestion stays pending, so the caller
// can re-report. The serve layer maps it to 400.
var ErrBadObservation = errors.New("core: bad observation")

// ErrTerminalFailure reports that a suggestion failed three evaluation
// attempts and is dead, wrapping the last cause. A dead job blocks its
// batch forever; the study cannot finish without operator intervention.
var ErrTerminalFailure = errors.New("core: objective failed after retries")

// Suggestion is one configuration the engine wants evaluated: ask for it
// with Suggest, run the application, and hand the outputs back to Observe
// (or Fail, if the evaluation errored) using the same ID.
type Suggestion struct {
	ID    int64     // opaque handle tying Observe/Fail back to this suggestion
	Task  int       // index into the engine's task list
	Phase string    // "init", "search" (Algorithm 1) or "mo" (Algorithm 2)
	X     []float64 // native configuration to evaluate (caller-owned copy)
}

// engJob is one suggestion's lifecycle inside the engine. requested is the
// configuration the sampler/search originally asked for; x starts equal and
// diverges when Fail substitutes fresh feasible draws.
type engJob struct {
	id        int64
	task      int
	phase     string
	requested []float64
	x         []float64
	y         []float64
	retrySeed int64
	rng       *rand.Rand // lazily created on first Fail; fixed at generation
	attempts  int
	lastErr   error
	issued    bool
	observed  bool
	dead      bool // failed terminally; blocks its batch forever
}

func (j *engJob) suggestion() Suggestion {
	return Suggestion{ID: j.id, Task: j.task, Phase: j.phase, X: append([]float64(nil), j.x...)}
}

// Engine is the step-wise ask/tell form of the MLA loop: Suggest hands out
// the next configuration to evaluate, Observe feeds the measured outputs
// back, and the engine runs the sample→model→search machinery of Algorithms
// 1/2 internally, one batch at a time. The batch Run driver and the gptuned
// HTTP service are both thin clients of this type.
//
// Determinism contract: observations commit to the tuning history in the
// batch's canonical generation order, no matter which order Observe calls
// arrive in (out-of-order observations buffer until their predecessors
// land). The history — and therefore every later modeling/search decision —
// is bitwise identical to the batch driver's for the same problem, tasks,
// seed and options. Checkpoint deliveries follow the same canonical order,
// so the PR 3 WAL replay path resumes ask/tell studies unchanged.
//
// All methods are safe for concurrent use. The mutex guards only batch
// bookkeeping and history commits; batch generation — the modeling and
// search phases — always runs with the mutex released, so Observe, Fail and
// the status surface (Phase/Done/Err/Result) never wait out a surrogate
// fit. Generation can run off-mutex because it only starts once the
// previous batch has fully committed: at that point no job is pending, so
// no concurrent call can touch the history or generation state it reads.
//
// In the default synchronous mode, the Suggest/SuggestAll call that finds
// the batch exhausted runs the generation itself (concurrent askers wait on
// a condition variable), preserving the classic blocking semantics the
// batch Run driver depends on. With Options.Async, generation instead runs
// in a single background goroutine and Suggest returns ErrNonePending
// immediately while a batch is being prepared.
type Engine struct {
	mu  sync.Mutex
	gen *sync.Cond // broadcast after a generation installs (or fails)

	st    *state
	start time.Time

	batch      []*engJob // current batch, canonical order
	nextCommit int       // first uncommitted index in batch
	byID       map[int64]*engJob
	nextID     int64

	initGenerated bool
	priorsMerged  bool
	generating    bool           // one generation runs off-mutex at a time
	async         bool           // Options.Async: generation runs in the background
	genWG         sync.WaitGroup // joins the async background generator (Quiesce)
	phase         string         // tuning phase of the current batch: "init", "search", "mo"
	fatal         error

	genEWMA    time.Duration // smoothed batch-generation latency (α=1/4)
	genSamples int           // generations folded into genEWMA
}

// NewEngine builds an ask/tell engine over the problem and native task
// vectors. Unlike Run, the problem needs no Objective — evaluations are the
// caller's job. The options mean exactly what they mean for Run; Workers
// bounds the internal modeling/search parallelism, and ModelGate (if set)
// bounds how many engines model concurrently.
func NewEngine(p *Problem, tasks [][]float64, options Options) (*Engine, error) {
	if err := p.validateForEngine(); err != nil {
		return nil, err
	}
	if len(tasks) == 0 {
		return nil, errors.New("core: no tasks given")
	}
	options.defaults()
	fitter := options.fitterOverride
	if fitter == nil {
		var err error
		fitter, err = surrogate.New(options.Surrogate)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	st := &state{
		p:      p,
		opts:   options,
		fitter: fitter,
		tasks:  tasks,
		X:      make([][][]float64, len(tasks)),
		Y:      make([][][]float64, len(tasks)),
		done:   make([]int, len(tasks)),
		rng:    rand.New(rand.NewSource(options.Seed)),
	}
	if p.Model != nil {
		st.coeffs = append([]float64(nil), p.Model.Coeffs...)
	}
	e := &Engine{st: st, start: st.opts.now(), byID: make(map[int64]*engJob), phase: "init", async: options.Async}
	e.gen = sync.NewCond(&e.mu)
	return e, nil
}

// Surrogate returns the resolved surrogate backend kind the engine models
// with ("lcm", "gp-indep", "rf").
func (e *Engine) Surrogate() string { return e.st.fitter.Kind() }

// Phase returns the tuning phase of the engine's current batch: "init"
// (Algorithm 1 line 1 sampling), "search" (single-objective model/search
// generations), "mo" (Algorithm 2 generations), or "done" once the budget is
// exhausted and every observation has committed. Never blocks on a
// generation in flight.
func (e *Engine) Phase() string {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.doneLocked() {
		return "done"
	}
	return e.phase
}

// doneLocked reports whether the budget is exhausted and every observation
// has committed. Called with e.mu held.
func (e *Engine) doneLocked() bool {
	return e.initGenerated && e.nextCommit == len(e.batch) && e.st.minDone() >= e.st.opts.EpsTot
}

// Suggest returns the next configuration to evaluate for the given task
// (task = -1 means any task). When every fresh configuration of the current
// batch is already handed out, the outstanding one is returned again — a
// crashed caller can re-ask — and ErrNonePending is returned when no
// unobserved configuration for the task exists at all (in async mode, also
// while the next batch is still generating in the background). ErrDone
// signals the budget is exhausted.
func (e *Engine) Suggest(task int) (Suggestion, error) {
	if task < -1 || task >= len(e.st.tasks) {
		return Suggestion{}, fmt.Errorf("core: engine: task %d out of range (have %d tasks)", task, len(e.st.tasks))
	}
	e.awaitBatch()
	defer e.mu.Unlock()
	if e.fatal != nil {
		return Suggestion{}, e.fatal
	}
	if e.doneLocked() {
		return Suggestion{}, ErrDone
	}
	for _, j := range e.batch[e.nextCommit:] {
		if j.observed || j.dead || j.issued || (task >= 0 && j.task != task) {
			continue
		}
		j.issued = true
		return j.suggestion(), nil
	}
	for _, j := range e.batch[e.nextCommit:] {
		if j.observed || j.dead || !j.issued || (task >= 0 && j.task != task) {
			continue
		}
		return j.suggestion(), nil
	}
	return Suggestion{}, ErrNonePending
}

// SuggestAll hands out every not-yet-issued configuration of the current
// batch at once (generating the next batch first if the previous one is
// fully committed). An empty slice with a nil error means the budget is
// exhausted. This is the batch driver's path: one call per MLA iteration.
func (e *Engine) SuggestAll() ([]Suggestion, error) {
	e.awaitBatch()
	defer e.mu.Unlock()
	if e.fatal != nil {
		return nil, e.fatal
	}
	var out []Suggestion
	for _, j := range e.batch[e.nextCommit:] {
		if j.observed || j.dead || j.issued {
			continue
		}
		j.issued = true
		out = append(out, j.suggestion())
	}
	return out, nil
}

// awaitBatch brings the engine to a decided state and returns with e.mu
// HELD: the current batch has uncommitted work, the budget is exhausted,
// the engine is fatal, or — async mode only — a background generation is in
// flight (the caller sees an exhausted batch and reports ErrNonePending).
//
// In synchronous mode the caller that finds the batch exhausted runs the
// generation itself, releasing the mutex for the whole expensive phase;
// concurrent callers wait on the condition variable (which releases the
// mutex while parked) until the new batch installs.
func (e *Engine) awaitBatch() {
	e.mu.Lock()
	for e.fatal == nil && e.nextCommit == len(e.batch) && !e.doneLocked() {
		if e.generating {
			if e.async {
				return
			}
			e.gen.Wait()
			continue
		}
		e.generating = true
		if e.async {
			mpx.Go(&e.genWG, e.runGeneration)
			return
		}
		e.mu.Unlock()
		e.runGeneration()
		e.mu.Lock()
	}
}

// maybeSpawnGeneration starts the background generator as soon as an async
// engine's batch has fully committed, so the next batch is being fitted —
// or already installed — before the next Suggest arrives instead of on its
// critical path. No-op in synchronous mode. Called with e.mu held.
func (e *Engine) maybeSpawnGeneration() {
	if !e.async || e.generating || e.fatal != nil {
		return
	}
	if e.nextCommit < len(e.batch) || e.doneLocked() {
		return
	}
	e.generating = true
	mpx.Go(&e.genWG, e.runGeneration)
}

// GenLatency returns an exponentially-weighted moving average of the
// engine's observed batch-generation latency (modeling + search for one
// batch), and zero before the first generation completes. The tuning
// service derives its 409 Retry-After hint from this instead of a constant.
func (e *Engine) GenLatency() time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.genEWMA
}

// Quiesce blocks until no background generation is in flight. Callers must
// stop feeding the engine first (no concurrent Suggest/Observe/Fail) or a
// fresh generation may start after Quiesce returns; the tuning service
// calls it after draining HTTP handlers, before closing a study's WAL.
func (e *Engine) Quiesce() {
	e.genWG.Wait()
}

// runGeneration generates batches until one has uncommitted work or the
// budget is exhausted (a resumed run's checkpoint may satisfy entire
// batches at install time, so this loops). Entered and left with e.mu
// released; the mutex is taken only for state transitions — merge, install,
// commit — never across the modeling/search phases. The caller has set
// e.generating; this clears it and wakes every waiter when done.
func (e *Engine) runGeneration() {
	e.mu.Lock()
	for e.fatal == nil && e.nextCommit == len(e.batch) {
		if e.initGenerated && !e.priorsMerged {
			if err := e.st.mergePriors(); err != nil {
				e.fatal = err
				break
			}
			e.priorsMerged = true
		}
		if e.doneLocked() {
			break
		}
		isInit := !e.initGenerated
		e.mu.Unlock()
		t0 := e.st.opts.now()
		jobs, phase, delta, err := e.generate(isInit)
		dur := e.st.opts.now().Sub(t0)
		e.mu.Lock()
		// EWMA with α=1/4: heavy enough to track a study crossing a refit
		// boundary (RefitEvery) within a few batches, smooth enough that one
		// cold exact refit does not whipsaw the serving layer's Retry-After
		// hint.
		if e.genSamples == 0 {
			e.genEWMA = dur
		} else {
			e.genEWMA = (e.genEWMA*3 + dur) / 4
		}
		e.genSamples++
		e.st.stats.Add(delta)
		if err != nil {
			e.fatal = err
			break
		}
		e.initGenerated = true
		if err := e.install(jobs, phase); err != nil { //gptlint:ignore lock-held-across-blocking install streams checkpoint-autofilled commits to the WAL inside the critical section so replay order always matches commit order (same contract as Observe)
			break // commitReady already set e.fatal
		}
	}
	e.generating = false
	e.gen.Broadcast()
	e.mu.Unlock()
}

// generate runs one generation's expensive work — initial LHS sampling, or
// the modeling+search phases behind the shared ModelGate — with no engine
// lock held. It reads only the committed history (st.X, st.Y, st.done) and
// generation-private state (st.rng, st.coeffs, st.mdl, the fitter), which
// nothing else touches while a generation is in flight: generation starts
// only once every job of the previous batch has committed, so no pending ID
// exists through which Observe/Fail could mutate the history. Phase timings
// come back as a delta so st.stats stays mutex-guarded for Result readers.
func (e *Engine) generate(isInit bool) (jobs []*engJob, phase string, delta PhaseStats, err error) {
	st := e.st
	if isInit {
		jobs, err = e.genInit()
		return jobs, "init", delta, err
	}
	// Modeling+search is the expensive phase; a shared gate keeps
	// concurrent studies (each with its own engine) from oversubscribing
	// the machine.
	if gate := st.opts.ModelGate; gate != nil {
		gate.Acquire()
		defer gate.Release()
	}
	if st.p.Model != nil && st.opts.FitModelCoeffs && len(st.coeffs) > 0 {
		t0 := st.opts.now()
		st.fitModelCoeffs()
		delta.ModelUpdate += st.opts.since(t0)
	}
	if st.p.Outputs.Dim() == 1 {
		jobs, err = e.genSearchSingle(&delta)
		phase = "search"
	} else {
		jobs, err = e.genSearchMulti(&delta)
		phase = "mo"
	}
	return jobs, phase, delta, err
}

// install registers a freshly generated batch under the engine mutex — the
// atomic swap the async mode's determinism rests on: sequential IDs, the
// engine phase, checkpoint autofill, and the prefix commit all land in one
// critical section, so concurrent callers observe either the old exhausted
// batch or the complete new one. Sets e.fatal on checkpoint failure.
// Called with e.mu held.
func (e *Engine) install(jobs []*engJob, phase string) error {
	st := e.st
	e.phase = phase
	for _, j := range jobs {
		j.id = e.nextID
		e.nextID++
		e.byID[j.id] = j
	}
	e.batch, e.nextCommit = jobs, 0
	// A resumed run satisfies already-logged evaluations from the
	// checkpoint instead of re-paying them (the log stores both the
	// requested and the finally-evaluated configuration, so even a
	// retried evaluation replays without consuming retry-RNG draws).
	if cp := st.opts.Checkpoint; cp != nil {
		for _, j := range jobs {
			if fx, fy, ok := cp.Lookup(st.tasks[j.task], j.requested); ok {
				j.x, j.y, j.observed = fx, fy, true
			}
		}
	}
	return e.commitReady()
}

// Observe reports the measured outputs for a previously suggested
// configuration. The observation is validated, buffered, and committed to
// the tuning history as soon as every earlier configuration of its batch
// has committed (canonical-order prefix commit); each commit is streamed to
// Options.Checkpoint. A checkpoint failure is fatal to the engine. Observe
// never waits on a generation: it blocks only on the batch-bookkeeping
// mutex.
func (e *Engine) Observe(id int64, y []float64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.fatal != nil {
		return e.fatal
	}
	j, ok := e.byID[id]
	if !ok || !j.issued || j.observed || j.dead {
		return fmt.Errorf("%w %d", ErrUnknownSuggestion, id)
	}
	if err := e.st.p.checkOutputs(y); err != nil {
		return fmt.Errorf("%w: %w", ErrBadObservation, err)
	}
	j.y = append([]float64(nil), y...)
	j.observed = true
	if e.st.p.Objective == nil {
		e.st.evals.Add(1) // caller-evaluated; count it for the telemetry
	}
	if err := e.commitReady(); err != nil { //gptlint:ignore lock-held-across-blocking prefix commits stream to the WAL inside the critical section so replay order always matches commit order
		return err
	}
	// The observation that completes a batch is what unblocks the next
	// generation; in async mode, start fitting it now — off this request's
	// path and everyone else's.
	e.maybeSpawnGeneration()
	return nil
}

// Fail reports that evaluating a suggestion errored. The engine substitutes
// a fresh feasible configuration (drawn from the job's own deterministic
// retry stream, fixed at generation time) and returns it under the same ID;
// after three failed attempts it gives up and returns ErrTerminalFailure
// wrapping the last cause. The terminal attempt draws nothing: the dead
// job's configuration stays what the last attempt actually ran, and the
// retry stream is left exactly two draws deep no matter how the study ends.
func (e *Engine) Fail(id int64, cause error) (Suggestion, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.fatal != nil {
		return Suggestion{}, e.fatal
	}
	j, ok := e.byID[id]
	if !ok || !j.issued || j.observed || j.dead {
		return Suggestion{}, fmt.Errorf("%w %d", ErrUnknownSuggestion, id)
	}
	if cause == nil {
		cause = errors.New("evaluation failed")
	}
	j.lastErr = cause
	j.attempts++
	if j.attempts >= 3 {
		j.dead = true
		return Suggestion{}, fmt.Errorf("%w: %w", ErrTerminalFailure, j.lastErr)
	}
	if j.rng == nil {
		j.rng = rand.New(rand.NewSource(j.retrySeed))
	}
	pts, serr := sample.FeasibleUniform(e.st.p.Tuning, 1, j.rng)
	if serr != nil {
		j.dead = true
		return Suggestion{}, serr
	}
	j.x = pts[0]
	return j.suggestion(), nil
}

// Done reports whether the budget is exhausted and every observation has
// committed. Never blocks on a generation in flight.
func (e *Engine) Done() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.doneLocked()
}

// Err returns the engine's fatal error (a checkpoint failure or a
// generation failure), if any.
func (e *Engine) Err() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.fatal
}

// Result packages everything observed so far — valid mid-study (partial
// history) and after Done. Never blocks on a generation in flight: it reads
// the committed history under the bookkeeping mutex, which generation never
// holds.
func (e *Engine) Result() *Result {
	e.mu.Lock()
	defer e.mu.Unlock()
	res := e.st.partialResult()
	res.Stats.Total = e.st.opts.since(e.start)
	return res
}

// commitReady commits the contiguous observed prefix of the current batch:
// each job is streamed to the checkpoint first (write-ahead), then appended
// to the tuning history. Called with e.mu held.
func (e *Engine) commitReady() error {
	st := e.st
	for e.nextCommit < len(e.batch) {
		j := e.batch[e.nextCommit]
		if !j.observed {
			return nil
		}
		if err := st.checkpointEval(j.phase, j.task, j.requested, j.x, j.y); err != nil {
			err = fmt.Errorf("core: checkpoint: %w", err)
			e.fatal = err
			return err
		}
		st.X[j.task] = append(st.X[j.task], j.x)
		st.Y[j.task] = append(st.Y[j.task], j.y)
		st.done[j.task]++
		e.nextCommit++
		delete(e.byID, j.id)
	}
	return nil
}

// genInit implements Algorithm 1 line 1: ε_tot/2 feasible LHS
// configurations per task. The retry seed is salted with the job index, not
// just the task: two failing configurations of the same task must draw
// distinct replacement points (a task-only seed made them collide). IDs are
// assigned later, at install time, under the engine mutex.
func (e *Engine) genInit() ([]*engJob, error) {
	st := e.st
	eps := int(math.Round(float64(st.opts.EpsTot) * st.opts.InitFraction))
	if eps < 1 {
		eps = 1
	}
	if eps >= st.opts.EpsTot {
		eps = st.opts.EpsTot - 1
	}
	var jobs []*engJob
	for i := range st.tasks {
		pts, err := sample.FeasibleLHS(st.p.Tuning, eps, st.rng)
		if err != nil {
			return nil, fmt.Errorf("core: initial sampling for task %d: %w", i, err)
		}
		for _, x := range pts {
			jobs = append(jobs, &engJob{task: i, phase: "init", requested: x, x: x})
		}
	}
	for idx, j := range jobs {
		j.retrySeed = st.opts.Seed ^ hash3(j.task, idx, len(jobs))
	}
	return jobs, nil
}

// genSearchSingle performs one Algorithm 1 generation: modeling phase (fit
// the joint LCM on all data, or — on incremental generations under
// Options.RefitEvery — extend the previous model with the new points) then
// search phase (per-task EI maximization by PSO), producing the next batch
// of configurations in (task, slot) order. Runs without the engine mutex;
// phase timings accumulate into delta.
func (e *Engine) genSearchSingle(delta *PhaseStats) ([]*engJob, error) {
	st := e.st
	ms := st.minSamples()

	t0 := st.opts.now()
	models, tvs, fs, refit, err := st.modelPhase(1, ms)
	delta.Modeling += st.opts.since(t0)
	if err != nil {
		return nil, err
	}
	// Incremental generations skip the transfer snapshot: the model's
	// hyperparameters haven't moved since the refit that already saved them.
	if refit {
		if err := st.saveTransfer(models[0], 0); err != nil {
			return nil, err
		}
	}

	// Search phase: per task, maximize the acquisition over the feasible
	// tuning space (BatchEvals configurations per task, spread by distance
	// penalization).
	t1 := st.opts.now()
	newX := make([][][]float64, len(st.tasks))
	mpx.ParallelFor(len(st.tasks), st.opts.Workers, func(i int) {
		newX[i] = st.searchBatch(i, models[0], tvs[0], fs)
	})
	delta.Search += st.opts.since(t1)

	return jobsFromSearch(st, newX, "search", ms), nil
}

// genSearchMulti performs one Algorithm 2 generation: one LCM per objective
// in the modeling phase (refit or incremental, like genSearchSingle), then
// per-task NSGA-II search over the vector of per-objective Expected
// Improvements.
func (e *Engine) genSearchMulti(delta *PhaseStats) ([]*engJob, error) {
	st := e.st
	gamma := st.p.Outputs.Dim()
	ms := st.minSamples()

	t0 := st.opts.now()
	models, transforms, fs, refit, err := st.modelPhase(gamma, ms)
	delta.Modeling += st.opts.since(t0)
	if err != nil {
		return nil, err
	}
	if refit {
		for s, model := range models {
			if err := st.saveTransfer(model, s); err != nil {
				return nil, err
			}
		}
	}

	t1 := st.opts.now()
	newX := make([][][]float64, len(st.tasks))
	mpx.ParallelFor(len(st.tasks), st.opts.Workers, func(i int) {
		newX[i] = st.searchMO(i, models, transforms, fs)
	})
	delta.Search += st.opts.since(t1)

	return jobsFromSearch(st, newX, "mo", ms), nil
}

// jobsFromSearch flattens per-task search output into a canonical-order
// batch. The retry seed reuses the (task·64+slot, minSamples) salt the
// evaluation loop always used, with minSamples frozen pre-batch. IDs are
// assigned at install time, under the engine mutex.
func jobsFromSearch(st *state, newX [][][]float64, phase string, ms int) []*engJob {
	var jobs []*engJob
	for i := range newX {
		for b, x := range newX[i] {
			jobs = append(jobs, &engJob{
				task:      i,
				phase:     phase,
				requested: x,
				x:         x,
				retrySeed: st.opts.Seed ^ hash2(i*64+b, ms),
			})
		}
	}
	return jobs
}
