package core

import (
	"context"
	"math"
	"testing"
)

func TestBatchEvalsBudgetAccounting(t *testing.T) {
	p := analyticalProblem()
	calls := 0
	inner := p.Objective
	p.Objective = func(task, x []float64) ([]float64, error) {
		calls++
		return inner(task, x)
	}
	res, err := Run(p, [][]float64{{0}}, Options{EpsTot: 10, Seed: 21, BatchEvals: 2})
	if err != nil {
		t.Fatal(err)
	}
	// 5 initial + ceil(5/2)=3 iterations × 2 = 11 total evaluations.
	if got := len(res.Tasks[0].X); got < 10 || got > 12 {
		t.Fatalf("samples = %d, want ≈ 11", got)
	}
	if calls != len(res.Tasks[0].X) {
		t.Fatalf("calls %d != samples %d", calls, len(res.Tasks[0].X))
	}
}

func TestBatchEvalsSpreadOut(t *testing.T) {
	// With BatchEvals=3 on a smooth objective, each iteration's batch must
	// not collapse to (nearly) identical points.
	p := analyticalProblem()
	p.Objective = func(task, x []float64) ([]float64, error) {
		d := x[0] - 0.5
		return []float64{d * d}, nil
	}
	res, err := Run(p, [][]float64{{0}}, Options{EpsTot: 12, Seed: 22, BatchEvals: 3})
	if err != nil {
		t.Fatal(err)
	}
	xs := res.Tasks[0].X
	// Look at the first BO batch (samples 6, 7, 8).
	if len(xs) < 9 {
		t.Fatalf("too few samples: %d", len(xs))
	}
	batch := xs[6:9]
	minDist := math.Inf(1)
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			d := math.Abs(batch[i][0] - batch[j][0])
			if d < minDist {
				minDist = d
			}
		}
	}
	if minDist < 1e-6 {
		t.Fatalf("batch collapsed: %v", batch)
	}
}

func TestAcquisitionVariants(t *testing.T) {
	for _, acqName := range []string{"ei", "lcb", "pi"} {
		p := analyticalProblem()
		p.Objective = func(task, x []float64) ([]float64, error) {
			d := x[0] - 0.3
			return []float64{d * d}, nil
		}
		res, err := Run(p, [][]float64{{0}}, Options{EpsTot: 16, Seed: 23, Acquisition: acqName})
		if err != nil {
			t.Fatalf("%s: %v", acqName, err)
		}
		x, y := res.Tasks[0].Best()
		if y[0] > 0.02 {
			t.Errorf("%s: best %v at %v (should approach 0.3)", acqName, y[0], x[0])
		}
	}
}

func TestPriorSeedingImprovesColdStart(t *testing.T) {
	p := analyticalProblem()
	p.Objective = func(task, x []float64) ([]float64, error) {
		d := x[0] - 0.712
		return []float64{d * d}, nil
	}
	// Prior: dense observations around the optimum from a "previous run".
	var prior []PriorSample
	for i := 0; i < 10; i++ {
		x := 0.6 + 0.02*float64(i)
		d := x - 0.712
		prior = append(prior, PriorSample{Task: []float64{0}, X: []float64{x}, Y: []float64{d * d}})
	}
	res, err := Run(p, [][]float64{{0}}, Options{EpsTot: 6, Seed: 24, Prior: prior})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Tasks[0]
	// Budget: 6 evaluations + 10 prior samples in the dataset.
	if len(tr.X) != 16 {
		t.Fatalf("dataset has %d samples, want 16 (6 new + 10 prior)", len(tr.X))
	}
	_, y := tr.Best()
	if y[0] > 0.01 {
		t.Fatalf("prior-seeded run missed optimum: %v", y[0])
	}
}

func TestPriorValidation(t *testing.T) {
	p := analyticalProblem()
	_, err := Run(p, [][]float64{{0}}, Options{EpsTot: 4, Seed: 25, Prior: []PriorSample{
		{Task: []float64{0}, X: []float64{0.1, 0.9}, Y: []float64{1}}, // wrong dim
	}})
	if err == nil {
		t.Fatalf("mismatched prior dimension accepted")
	}
	_, err = Run(p, [][]float64{{0}}, Options{EpsTot: 4, Seed: 25, Prior: []PriorSample{
		{Task: []float64{0}, X: []float64{0.1}, Y: []float64{math.NaN()}},
	}})
	if err == nil {
		t.Fatalf("NaN prior output accepted")
	}
	// Priors for unknown tasks are silently ignored.
	res, err := Run(p, [][]float64{{0}}, Options{EpsTot: 4, Seed: 25, Prior: []PriorSample{
		{Task: []float64{99}, X: []float64{0.1}, Y: []float64{1}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tasks[0].X) != 4 {
		t.Fatalf("unknown-task prior affected dataset: %d samples", len(res.Tasks[0].X))
	}
}

func TestEqualVec(t *testing.T) {
	if !equalVec([]float64{1, 2}, []float64{1, 2}) {
		t.Fatalf("equal vectors reported unequal")
	}
	if equalVec([]float64{1}, []float64{1, 2}) || equalVec([]float64{1, 2}, []float64{1, 3}) {
		t.Fatalf("unequal vectors reported equal")
	}
}

func TestRunContextCancellation(t *testing.T) {
	p := analyticalProblem()
	evals := 0
	inner := p.Objective
	p.Objective = func(task, x []float64) ([]float64, error) {
		evals++
		return inner(task, x)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancel before the BO loop: only initial sampling happens
	res, err := RunContext(ctx, p, [][]float64{{0}}, Options{EpsTot: 40, Seed: 30})
	if err == nil {
		t.Fatalf("cancelled run returned no error")
	}
	if res == nil || len(res.Tasks[0].X) != 20 {
		t.Fatalf("partial result missing initial samples: %+v", res)
	}
	if evals != 20 {
		t.Fatalf("evals = %d, want just the 20 initial samples", evals)
	}
}
