package core

import (
	"fmt"
	"math"

	"repro/internal/surrogate"
)

// modelState is the engine's between-generation modeling bookkeeping for
// Options.RefitEvery > 1: the fitted models themselves plus everything that
// must stay frozen for incremental extension to be consistent with them —
// the feature scale and the per-objective log transform decided at the last
// refit, and how many samples per task the models have already absorbed.
type modelState struct {
	models           []surrogate.Model // one per objective, nil until the first refit
	fs               *featureScale     // feature scale frozen at the last refit
	logY             []bool            // per-objective: log transform active at the last refit
	modeledN         []int             // per-task sample counts the models have absorbed
	phasesSinceRefit int
}

// modelPhase produces this generation's surrogate models, one per objective:
// either by extending the previous generation's models with the newly
// observed points (hyperparameters frozen — the cheap path RefitEvery
// buys), or by the canonical full refit. refit reports which path ran so
// the caller can skip the transfer snapshot on incremental generations.
func (st *state) modelPhase(gamma, ms int) (models []surrogate.Model, tvs []func(float64) float64, fs *featureScale, refit bool, err error) {
	if st.canAppend(gamma) {
		if models, tvs, ok := st.appendPhase(gamma); ok {
			return models, tvs, st.mdl.fs, false, nil
		}
	}
	models, tvs, fs, err = st.refitPhase(gamma, ms)
	return models, tvs, fs, true, err
}

// refitPhase is the canonical modeling phase: one full hyperparameter fit
// per objective over all data. With RefitEvery ≤ 1 this is the only path and
// is call-for-call identical to the historical behavior (same seeds, same
// warm-start source), which the RefitEvery=1 bitwise-parity test pins.
func (st *state) refitPhase(gamma, ms int) ([]surrogate.Model, []func(float64) float64, *featureScale, error) {
	fs := st.buildFeatureScale()
	models := make([]surrogate.Model, gamma)
	tvs := make([]func(float64) float64, gamma)
	logY := make([]bool, gamma)
	for s := 0; s < gamma; s++ {
		logY[s] = st.logApplied(s)
		data, tv := st.buildDataset(s, fs)
		seed := st.opts.Seed + int64(ms)
		if gamma > 1 {
			seed = st.opts.Seed + int64(ms)*31 + int64(s)
		}
		model, err := st.fitter.Fit(data, surrogate.FitOptions{
			Q:         st.opts.Q,
			NumStarts: st.opts.NumStarts,
			Workers:   st.opts.Workers,
			MaxIter:   st.opts.ModelMaxIter,
			Seed:      seed,
			WarmStart: st.refitWarmStart(s),
			Inducing:  st.opts.Inducing,
		})
		if err != nil {
			if gamma > 1 {
				return nil, nil, nil, fmt.Errorf("core: modeling phase (objective %d): %w", s, err)
			}
			return nil, nil, nil, fmt.Errorf("core: modeling phase: %w", err)
		}
		models[s] = model
		tvs[s] = tv
	}
	if st.opts.RefitEvery > 1 {
		counts := make([]int, len(st.X))
		for i := range st.X {
			counts[i] = len(st.X[i])
		}
		st.mdl = modelState{models: models, fs: fs, logY: logY, modeledN: counts}
	}
	return models, tvs, fs, nil
}

// refitWarmStart picks the hyperparameter warm start for objective s: the
// in-run model from the previous refit cycle when RefitEvery keeps one
// around (the freshest optimum available), falling back to the cross-session
// Options.WarmStart snapshot. With RefitEvery ≤ 1 only the fallback exists,
// preserving the historical fit inputs exactly.
func (st *state) refitWarmStart(s int) []byte {
	if st.opts.RefitEvery > 1 && s < len(st.mdl.models) && st.mdl.models[s] != nil {
		if blob, err := st.mdl.models[s].MarshalBinary(); err == nil {
			return blob
		}
	}
	return st.warmSnapshot(s)
}

// canAppend reports whether this generation may extend the previous models
// instead of refitting: RefitEvery demands it, models exist for every
// objective and support incremental extension, the refit cadence hasn't
// come due, and everything frozen at the last refit is still valid.
func (st *state) canAppend(gamma int) bool {
	m := &st.mdl
	if st.opts.RefitEvery <= 1 || len(m.models) != gamma {
		return false
	}
	if m.phasesSinceRefit+1 >= st.opts.RefitEvery {
		return false
	}
	// The Section 3.3 coefficient update moves the performance-model
	// features every generation; frozen feature inputs would silently
	// disagree with the model's training inputs, so coefficient-fitting
	// runs refit unconditionally.
	if st.p.Model != nil && st.opts.FitModelCoeffs && len(st.coeffs) > 0 {
		return false
	}
	for _, model := range m.models {
		if _, ok := model.(surrogate.Incremental); !ok {
			return false
		}
	}
	// A frozen log transform is only consistent while every new observation
	// stays positive; a canonical refit would have switched to identity, so
	// fall back to one.
	for s := 0; s < gamma; s++ {
		if !m.logY[s] {
			continue
		}
		for i := range st.Y {
			for _, y := range st.Y[i][m.modeledN[i]:] {
				if y[s] <= 0 {
					return false
				}
			}
		}
	}
	return true
}

// appendPhase extends each objective's model with the samples observed since
// the models last saw data, at frozen hyperparameters, feature scale and
// output transform. Any append failure discards the models entirely (the
// Incremental contract declares them stale) and reports !ok so modelPhase
// falls back to a full refit — the deterministic recovery path.
func (st *state) appendPhase(gamma int) ([]surrogate.Model, []func(float64) float64, bool) {
	m := &st.mdl
	tvs := make([]func(float64) float64, gamma)
	for s := 0; s < gamma; s++ {
		delta := st.buildDelta(s)
		if err := m.models[s].(surrogate.Incremental).Append(delta, st.opts.Workers); err != nil {
			st.mdl = modelState{}
			return nil, nil, false
		}
		if m.logY[s] {
			tvs[s] = math.Log
		} else {
			tvs[s] = identityTransform
		}
	}
	for i := range st.X {
		m.modeledN[i] = len(st.X[i])
	}
	m.phasesSinceRefit++
	return m.models, tvs, true
}

// buildDelta assembles the per-task samples objective s's model has not yet
// absorbed, mapped through the frozen feature scale and output transform so
// the new rows live in the same input/output space as the model's training
// set.
func (st *state) buildDelta(s int) *surrogate.Dataset {
	m := &st.mdl
	dim := st.p.Tuning.Dim()
	if m.fs != nil {
		dim += st.p.Model.Dim
	}
	data := &surrogate.Dataset{
		Dim: dim,
		X:   make([][][]float64, len(st.tasks)),
		Y:   make([][]float64, len(st.tasks)),
	}
	for i := range st.tasks {
		for j := m.modeledN[i]; j < len(st.X[i]); j++ {
			data.X[i] = append(data.X[i], st.modelPoint(i, st.X[i][j], m.fs))
			y := st.Y[i][j][s]
			if m.logY[s] {
				y = math.Log(y)
			}
			data.Y[i] = append(data.Y[i], y)
		}
	}
	return data
}
