package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"

	"repro/internal/acq"
	"repro/internal/gp"
	"repro/internal/mpx"
	"repro/internal/opt"
	"repro/internal/sample"
)

// Run executes MLA (Algorithm 1 for γ=1, Algorithm 2 for γ>1) on the given
// native task parameter vectors. Each task receives Options.EpsTot objective
// evaluations: half in the initial sampling phase and the rest chosen by
// Bayesian optimization over the shared LCM surrogate.
func Run(p *Problem, tasks [][]float64, options Options) (*Result, error) {
	return RunContext(context.Background(), p, tasks, options)
}

// RunContext is Run with cooperative cancellation: the context is checked
// between MLA iterations (a long-running objective evaluation in flight is
// allowed to finish — the engine never abandons a worker mid-call). On
// cancellation the samples gathered so far are returned along with the
// context's error, so anytime performance is preserved.
func RunContext(ctx context.Context, p *Problem, tasks [][]float64, options Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(tasks) == 0 {
		return nil, errors.New("core: no tasks given")
	}
	options.defaults()
	start := options.now()

	st := &state{
		p:     p,
		opts:  options,
		tasks: tasks,
		X:     make([][][]float64, len(tasks)),
		Y:     make([][][]float64, len(tasks)),
		done:  make([]int, len(tasks)),
		rng:   rand.New(rand.NewSource(options.Seed)),
	}
	if p.Model != nil {
		st.coeffs = append([]float64(nil), p.Model.Coeffs...)
	}

	if err := st.initialSampling(); err != nil {
		return nil, err
	}
	if err := st.mergePriors(); err != nil {
		return nil, err
	}

	gamma := p.Outputs.Dim()
	for st.minDone() < options.EpsTot {
		if err := ctx.Err(); err != nil {
			res := st.partialResult()
			res.Stats.Total = options.since(start)
			return res, err
		}
		if p.Model != nil && options.FitModelCoeffs && len(st.coeffs) > 0 {
			t0 := options.now()
			st.fitModelCoeffs()
			st.stats.ModelUpdate += options.since(t0)
		}
		var err error
		if gamma == 1 {
			err = st.iterateSingle()
		} else {
			err = st.iterateMulti()
		}
		if err != nil {
			return nil, err
		}
	}

	res := st.partialResult()
	st.stats.Total = options.since(start)
	res.Stats = st.stats
	return res, nil
}

// partialResult packages whatever has been observed so far. Called only
// from the coordinating goroutine, after any parallel evaluation batch has
// joined.
func (st *state) partialResult() *Result {
	st.stats.NumEvals = int(st.evals.Load())
	res := &Result{Tasks: make([]TaskResult, len(st.tasks)), Stats: st.stats}
	for i := range st.tasks {
		tr := TaskResult{Task: st.tasks[i], X: st.X[i], Y: st.Y[i]}
		for j := range tr.Y {
			if tr.Y[j][0] < tr.Y[tr.BestIdx][0] {
				tr.BestIdx = j
			}
		}
		res.Tasks[i] = tr
	}
	return res
}

// state carries one MLA run's mutable data.
type state struct {
	p      *Problem
	opts   Options
	tasks  [][]float64
	X      [][][]float64 // [task][sample] native configs
	Y      [][][]float64 // [task][sample] γ outputs
	done   []int         // evaluations performed this run, per task (priors excluded)
	coeffs []float64     // performance-model coefficients
	stats  PhaseStats
	evals  atomic.Int64 // objective evaluations; mutated from worker goroutines
	rng    *rand.Rand
}

// minDone returns the minimum number of budgeted evaluations across tasks.
func (st *state) minDone() int {
	m := st.done[0]
	for _, d := range st.done[1:] {
		if d < m {
			m = d
		}
	}
	return m
}

// mergePriors injects Options.Prior samples whose task exactly matches one
// of the run's tasks. They extend the dataset but not the budget counters.
func (st *state) mergePriors() error {
	for _, ps := range st.opts.Prior {
		for i, task := range st.tasks {
			if !equalVec(task, ps.Task) {
				continue
			}
			if len(ps.X) != st.p.Tuning.Dim() {
				return fmt.Errorf("core: prior sample has %d tuning values, want %d", len(ps.X), st.p.Tuning.Dim())
			}
			if err := st.p.checkOutputs(ps.Y); err != nil {
				return fmt.Errorf("core: prior sample outputs: %w", err)
			}
			st.X[i] = append(st.X[i], append([]float64(nil), ps.X...))
			st.Y[i] = append(st.Y[i], append([]float64(nil), ps.Y...))
			break
		}
	}
	return nil
}

func equalVec(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] { //gptlint:ignore float-eq exact task-vector match routes prior samples; values are stored, never computed
			return false
		}
	}
	return true
}

func (st *state) minSamples() int {
	m := len(st.X[0])
	for _, xi := range st.X[1:] {
		if len(xi) < m {
			m = len(xi)
		}
	}
	return m
}

// initialSampling implements Algorithm 1 line 1: ε_tot/2 feasible LHS
// configurations per task, all evaluated (in parallel over Workers).
func (st *state) initialSampling() error {
	eps := int(math.Round(float64(st.opts.EpsTot) * st.opts.InitFraction))
	if eps < 1 {
		eps = 1
	}
	if eps >= st.opts.EpsTot {
		eps = st.opts.EpsTot - 1
	}
	type job struct {
		idx  int // position in the batch; salts the retry RNG
		task int
		x    []float64
	}
	var jobs []job
	for i := range st.tasks {
		pts, err := sample.FeasibleLHS(st.p.Tuning, eps, st.rng)
		if err != nil {
			return fmt.Errorf("core: initial sampling for task %d: %w", i, err)
		}
		for _, x := range pts {
			jobs = append(jobs, job{idx: len(jobs), task: i, x: x})
		}
	}
	t0 := st.opts.now()
	type outcome struct {
		x []float64
		y []float64
	}
	// The retry RNG is salted with the job index, not just the task: two
	// failing configurations of the same task must draw distinct
	// replacement points (a task-only seed made them collide).
	results, errs, derr := mpx.MapStream(jobs, st.opts.Workers, func(j job) (outcome, error) {
		x, y, err := st.evalWithRetry(j.task, j.x, rand.New(rand.NewSource(st.opts.Seed^hash3(j.task, j.idx, len(jobs)))))
		return outcome{x: x, y: y}, err
	}, func(k int, r outcome, err error) error {
		if err != nil {
			return nil // evaluation errors are reported by the loop below
		}
		return st.checkpointEval("init", jobs[k].task, jobs[k].x, r.x, r.y)
	})
	st.stats.Objective += st.opts.since(t0)
	if derr != nil {
		return fmt.Errorf("core: checkpoint: %w", derr)
	}
	for k, j := range jobs {
		if errs[k] != nil {
			return fmt.Errorf("core: evaluating task %d: %w", j.task, errs[k])
		}
		st.X[j.task] = append(st.X[j.task], results[k].x)
		st.Y[j.task] = append(st.Y[j.task], results[k].y)
		st.done[j.task]++
	}
	return nil
}

func hash2(a, b int) int64 {
	return int64(a)*1000003 + int64(b)*7919
}

func hash3(a, b, c int) int64 {
	return int64(a)*1000003 + int64(b)*8191 + int64(c)*7919
}

// checkpointEval streams one completed evaluation to the checkpoint hook
// (no-op without one). Always called on the coordinating goroutine, in
// batch order.
func (st *state) checkpointEval(phase string, task int, requested, x, y []float64) error {
	cp := st.opts.Checkpoint
	if cp == nil {
		return nil
	}
	return cp.Eval(CheckpointRecord{Phase: phase, Task: st.tasks[task], Requested: requested, X: x, Y: y})
}

// evalWithRetry runs the objective with the configured repeat count (taking
// the componentwise minimum, the paper's noise mitigation) and retries with
// fresh random feasible configurations when the objective errors or returns
// non-finite values.
func (st *state) evalWithRetry(task int, x []float64, rng *rand.Rand) ([]float64, []float64, error) {
	t := st.tasks[task]
	// A resumed run satisfies already-logged evaluations from the
	// checkpoint instead of re-paying the objective (the log stores both
	// the requested and the finally-evaluated configuration, so even a
	// retried evaluation replays without consuming rng draws).
	if cp := st.opts.Checkpoint; cp != nil {
		if fx, fy, ok := cp.Lookup(t, x); ok {
			return fx, fy, nil
		}
	}
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		y, err := st.evalRepeated(t, x)
		if err == nil {
			return x, y, nil
		}
		lastErr = err
		pts, serr := sample.FeasibleUniform(st.p.Tuning, 1, rng)
		if serr != nil {
			return nil, nil, serr
		}
		x = pts[0]
	}
	return nil, nil, fmt.Errorf("core: objective failed after retries: %w", lastErr)
}

func (st *state) evalRepeated(t, x []float64) ([]float64, error) {
	var best []float64
	for r := 0; r < st.opts.Repeats; r++ {
		y, err := st.p.Objective(t, x)
		if err != nil {
			return nil, err
		}
		if err := st.p.checkOutputs(y); err != nil {
			return nil, err
		}
		if best == nil {
			best = append([]float64(nil), y...)
			continue
		}
		for s := range y {
			if y[s] < best[s] {
				best[s] = y[s]
			}
		}
	}
	st.evals.Add(int64(st.opts.Repeats))
	return best, nil
}

// featureScale holds the normalization of performance-model features used
// during one modeling+search iteration.
type featureScale struct {
	lo, hi []float64
	logT   []bool
}

func (fs *featureScale) apply(raw []float64) []float64 {
	out := make([]float64, len(raw))
	for d, v := range raw {
		if fs.logT[d] {
			v = math.Log(v)
		}
		if fs.hi[d] > fs.lo[d] {
			out[d] = (v - fs.lo[d]) / (fs.hi[d] - fs.lo[d])
		}
		if out[d] < 0 {
			out[d] = 0
		} else if out[d] > 1 {
			out[d] = 1
		}
	}
	return out
}

// buildFeatureScale computes per-feature normalization over all current
// samples. Positive features spanning >2 orders of magnitude are
// log-transformed first.
func (st *state) buildFeatureScale() *featureScale {
	m := st.p.Model
	if m == nil {
		return nil
	}
	raws := make([][]float64, 0, 64)
	for i := range st.tasks {
		for _, x := range st.X[i] {
			raws = append(raws, m.Eval(st.tasks[i], x, st.coeffs))
		}
	}
	fs := &featureScale{
		lo:   make([]float64, m.Dim),
		hi:   make([]float64, m.Dim),
		logT: make([]bool, m.Dim),
	}
	for d := 0; d < m.Dim; d++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		allPos := true
		for _, r := range raws {
			v := r[d]
			if v <= 0 {
				allPos = false
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		if allPos && lo > 0 && hi/lo > 100 {
			fs.logT[d] = true
			lo, hi = math.Log(lo), math.Log(hi)
		}
		fs.lo[d], fs.hi[d] = lo, hi
	}
	return fs
}

// modelPoint maps a native configuration to the (possibly enriched) LCM
// input: normalized tuning parameters plus normalized model features.
func (st *state) modelPoint(task int, xNative []float64, fs *featureScale) []float64 {
	u := st.p.Tuning.Normalize(xNative)
	if fs == nil {
		return u
	}
	feat := fs.apply(st.p.Model.Eval(st.tasks[task], xNative, st.coeffs))
	return append(u, feat...)
}

// yTransform returns the observed objective s for all tasks, log-transformed
// when requested and possible, plus the matching inverse-free "transform one
// value" helper for incumbents.
func (st *state) yTransform(s int) (tv func(float64) float64) {
	if !st.opts.LogY {
		return func(v float64) float64 { return v }
	}
	for i := range st.Y {
		for _, y := range st.Y[i] {
			if y[s] <= 0 {
				return func(v float64) float64 { return v }
			}
		}
	}
	return math.Log
}

// buildDataset assembles the gp.Dataset for objective s.
func (st *state) buildDataset(s int, fs *featureScale) (*gp.Dataset, func(float64) float64) {
	dim := st.p.Tuning.Dim()
	if fs != nil {
		dim += st.p.Model.Dim
	}
	tv := st.yTransform(s)
	data := &gp.Dataset{
		Dim: dim,
		X:   make([][][]float64, len(st.tasks)),
		Y:   make([][]float64, len(st.tasks)),
	}
	for i := range st.tasks {
		for j, x := range st.X[i] {
			data.X[i] = append(data.X[i], st.modelPoint(i, x, fs))
			data.Y[i] = append(data.Y[i], tv(st.Y[i][j][s]))
		}
	}
	return data, tv
}

// fitModelCoeffs implements the Section 3.3 performance model update phase.
func (st *state) fitModelCoeffs() {
	m := st.p.Model
	var tasks, xs [][]float64
	var ys []float64
	for i := range st.tasks {
		for j, x := range st.X[i] {
			tasks = append(tasks, st.tasks[i])
			xs = append(xs, x)
			ys = append(ys, st.Y[i][j][0])
		}
	}
	if m.FitCoeffs != nil {
		st.coeffs = m.FitCoeffs(tasks, xs, ys, st.coeffs)
		return
	}
	st.coeffs = defaultFitCoeffs(m, tasks, xs, ys, st.coeffs, st.rng)
}

// defaultFitCoeffs least-squares-fits the model's first output against the
// observed first objective by searching multiplicative corrections of the
// current coefficients with Nelder–Mead (log-space box of ±e³ per
// coefficient).
func defaultFitCoeffs(m *PerfModel, tasks, xs [][]float64, ys []float64, current []float64, rng *rand.Rand) []float64 {
	n := len(current)
	if n == 0 || len(ys) == 0 {
		return current
	}
	base := make([]float64, n)
	for i, c := range current {
		base[i] = math.Max(math.Abs(c), 1e-12)
	}
	useLog := true
	for _, y := range ys {
		if y <= 0 {
			useLog = false
			break
		}
	}
	decode := func(u []float64) []float64 {
		c := make([]float64, n)
		for i := range c {
			c[i] = base[i] * math.Exp(6*(u[i]-0.5))
		}
		return c
	}
	loss := func(u []float64) float64 {
		c := decode(u)
		sse := 0.0
		for k := range ys {
			pred := m.Eval(tasks[k], xs[k], c)[0]
			if useLog && pred > 0 {
				d := math.Log(pred) - math.Log(ys[k])
				sse += d * d
			} else {
				d := pred - ys[k]
				sse += d * d
			}
		}
		if math.IsNaN(sse) {
			return math.Inf(1)
		}
		return sse
	}
	start := make([]float64, n)
	for i := range start {
		start[i] = 0.5
	}
	res := opt.NelderMead(loss, n, opt.NelderMeadParams{MaxEvals: 200 * n, Start: start}, rng)
	return decode(res.X)
}

// iterateSingle performs one Algorithm 1 iteration: modeling phase (fit the
// joint LCM on all data) then search phase (per-task EI maximization by PSO)
// then one evaluation per task.
func (st *state) iterateSingle() error {
	fs := st.buildFeatureScale()

	t0 := st.opts.now()
	data, tv := st.buildDataset(0, fs)
	model, err := gp.FitLCM(data, gp.FitOptions{
		Q:         st.opts.Q,
		NumStarts: st.opts.NumStarts,
		Workers:   st.opts.Workers,
		MaxIter:   st.opts.ModelMaxIter,
		Seed:      st.opts.Seed + int64(st.minSamples()),
	})
	st.stats.Modeling += st.opts.since(t0)
	if err != nil {
		return fmt.Errorf("core: modeling phase: %w", err)
	}

	// Search phase: per task, maximize the acquisition over the feasible
	// tuning space (BatchEvals configurations per task, spread by distance
	// penalization).
	t1 := st.opts.now()
	newX := make([][][]float64, len(st.tasks))
	mpx.ParallelFor(len(st.tasks), st.opts.Workers, func(i int) {
		newX[i] = st.searchBatch(i, model, tv, fs)
	})
	st.stats.Search += st.opts.since(t1)

	// Evaluate the new configurations concurrently (Section 4.2).
	t2 := st.opts.now()
	type job struct{ task, slot int }
	var jobs []job
	for i := range newX {
		for b := range newX[i] {
			jobs = append(jobs, job{task: i, slot: b})
		}
	}
	type outcome struct {
		x, y []float64
	}
	results, errs, derr := mpx.MapStream(jobs, st.opts.Workers, func(j job) (outcome, error) {
		rng := rand.New(rand.NewSource(st.opts.Seed ^ hash2(j.task*64+j.slot, st.minSamples())))
		x, y, err := st.evalWithRetry(j.task, newX[j.task][j.slot], rng)
		return outcome{x: x, y: y}, err
	}, func(k int, r outcome, err error) error {
		if err != nil {
			return nil
		}
		return st.checkpointEval("search", jobs[k].task, newX[jobs[k].task][jobs[k].slot], r.x, r.y)
	})
	st.stats.Objective += st.opts.since(t2)
	if derr != nil {
		return fmt.Errorf("core: checkpoint: %w", derr)
	}
	for k, j := range jobs {
		if errs[k] != nil {
			return errs[k]
		}
		st.X[j.task] = append(st.X[j.task], results[k].x)
		st.Y[j.task] = append(st.Y[j.task], results[k].y)
		st.done[j.task]++
	}
	return nil
}

// acquisition converts a posterior prediction into a score to *minimize*.
func (st *state) acquisition(mu, variance, yBest float64) float64 {
	switch st.opts.Acquisition {
	case "lcb":
		return acq.LowerConfidenceBound(mu, variance, st.opts.LCBKappa)
	case "pi":
		return -acq.ProbabilityOfImprovement(mu, variance, yBest)
	default:
		return -acq.ExpectedImprovement(mu, variance, yBest)
	}
}

// searchBatch returns BatchEvals configurations for task i. The first
// maximizes the raw acquisition; subsequent ones maximize the acquisition
// damped near already-chosen points so the batch spreads out.
func (st *state) searchBatch(i int, model *gp.LCM, tv func(float64) float64, fs *featureScale) [][]float64 {
	k := st.opts.BatchEvals
	ws := model.NewPredictWorkspace() // one per task goroutine; reused by every acquisition call
	var chosen [][]float64            // native
	var chosenNorm [][]float64        // normalized, for the penalty
	for b := 0; b < k; b++ {
		x := st.searchOne(i, model, ws, tv, fs, chosenNorm, int64(b))
		if x == nil {
			continue
		}
		chosen = append(chosen, x)
		chosenNorm = append(chosenNorm, st.p.Tuning.Normalize(x))
	}
	return chosen
}

// searchOne maximizes the acquisition for task i with PSO, seeding the
// swarm with the incumbent best configuration, damping near the avoid
// points (batch spreading). It returns a native configuration, avoiding
// exact duplicates of already-evaluated points.
func (st *state) searchOne(i int, model *gp.LCM, ws *gp.PredictWorkspace, tv func(float64) float64, fs *featureScale, avoid [][]float64, salt int64) []float64 {
	yBest := math.Inf(1)
	bestIdx := 0
	for j, y := range st.Y[i] {
		if v := tv(y[0]); v < yBest {
			yBest = v
			bestIdx = j
		}
	}
	rng := rand.New(rand.NewSource(st.opts.Seed ^ hash2(7+i, st.minSamples()) ^ (salt << 17)))
	const penaltyRadius = 0.15
	neg := func(u []float64) float64 {
		xNat := st.p.Tuning.Denormalize(u)
		if !st.p.Tuning.Feasible(xNat) {
			return math.Inf(1)
		}
		pt := st.modelPoint(i, xNat, fs)
		mu, v := model.PredictInto(ws, i, pt)
		score := st.acquisition(mu, v, yBest)
		if len(avoid) > 0 && score < 0 {
			un := st.p.Tuning.Normalize(xNat)
			damp := 1.0
			for _, a := range avoid {
				d := 0.0
				for dIdx := range a {
					diff := un[dIdx] - a[dIdx]
					d += diff * diff
				}
				d = math.Sqrt(d) / penaltyRadius
				if d < 1 {
					damp *= d
				}
			}
			score *= damp
		}
		return score
	}
	params := st.opts.Search
	// Clone before appending: params.Seeds shares its backing array with
	// the caller's Options.Search.Seeds, and searchOne runs concurrently
	// across tasks — appending in place would race on (and bleed one
	// task's incumbent into) the shared array whenever it has spare
	// capacity.
	seeds := make([][]float64, len(params.Seeds), len(params.Seeds)+1)
	copy(seeds, params.Seeds)
	params.Seeds = append(seeds, st.p.Tuning.Normalize(st.X[i][bestIdx]))
	res := opt.PSO(neg, st.p.Tuning.Dim(), params, rng)
	// Hybrid search: PSO explores the continuous relaxation well, but
	// categorical/integer dimensions make the acquisition piecewise
	// constant; a scored pool of random feasible candidates covers the
	// discrete combinations PSO's rounding can miss. Keep whichever wins.
	bestU := res.X
	bestScore := res.F
	for c := 0; c < 8*st.p.Tuning.Dim()+32; c++ {
		u := make([]float64, st.p.Tuning.Dim())
		for d := range u {
			u[d] = rng.Float64()
		}
		if s := neg(u); s < bestScore {
			bestScore = s
			bestU = u
		}
	}
	xNat := st.p.Tuning.Denormalize(bestU)
	if !st.p.Tuning.Feasible(xNat) || st.isDuplicate(i, xNat) || containsConfig(avoidNative(st, avoid), xNat) {
		if pts, err := sample.FeasibleUniform(st.p.Tuning, 1, rng); err == nil {
			return pts[0]
		}
	}
	return xNat
}

// avoidNative denormalizes the avoid list for duplicate checks.
func avoidNative(st *state, avoid [][]float64) [][]float64 {
	out := make([][]float64, len(avoid))
	for i, a := range avoid {
		out[i] = st.p.Tuning.Denormalize(a)
	}
	return out
}

func (st *state) isDuplicate(i int, x []float64) bool {
	for _, prev := range st.X[i] {
		same := true
		for d := range x {
			if prev[d] != x[d] { //gptlint:ignore float-eq exact duplicate detection on stored configurations
				same = false
				break
			}
		}
		if same {
			return true
		}
	}
	return false
}
