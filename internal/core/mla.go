package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"

	"repro/internal/acq"
	"repro/internal/mpx"
	"repro/internal/opt"
	"repro/internal/sample"
	"repro/internal/surrogate"
)

// Run executes MLA (Algorithm 1 for γ=1, Algorithm 2 for γ>1) on the given
// native task parameter vectors. Each task receives Options.EpsTot objective
// evaluations: half in the initial sampling phase and the rest chosen by
// Bayesian optimization over the shared LCM surrogate.
func Run(p *Problem, tasks [][]float64, options Options) (*Result, error) {
	return RunContext(context.Background(), p, tasks, options)
}

// RunContext is Run with cooperative cancellation: the context is checked
// between MLA iterations (a long-running objective evaluation in flight is
// allowed to finish — the engine never abandons a worker mid-call). On
// cancellation the samples gathered so far are returned along with the
// context's error, so anytime performance is preserved.
//
// Run is a thin driver over the ask/tell Engine: each loop turn asks for
// the next batch of suggestions (SuggestAll runs the modeling and search
// phases), evaluates them concurrently over Options.Workers, and feeds the
// outputs back through Observe in the batch's canonical order — the same
// scheduling-independent order the checkpoint stream has always used.
func RunContext(ctx context.Context, p *Problem, tasks [][]float64, options Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	// The batch driver is synchronous by construction: each loop turn needs
	// the next batch before it can evaluate anything, so background
	// generation would only add polling.
	options.Async = false
	e, err := NewEngine(p, tasks, options)
	if err != nil {
		return nil, err
	}
	st := e.st
	opts := &st.opts // defaulted copy

	first := true
	for {
		if !first {
			if err := ctx.Err(); err != nil {
				res := st.partialResult()
				res.Stats.Total = opts.since(e.start)
				return res, err
			}
		}
		suggs, err := e.SuggestAll()
		if err != nil {
			return nil, err
		}
		if len(suggs) == 0 {
			break
		}
		first = false

		// Evaluate the batch concurrently (Section 4.2). Evaluation errors
		// retry through the engine (fresh feasible draws from the job's own
		// deterministic retry stream); MapStream delivers completions in
		// canonical order so Observe commits — and checkpoints — them in an
		// order independent of goroutine scheduling.
		type outcome struct {
			id int64
			y  []float64
		}
		t0 := opts.now()
		_, errs, derr := mpx.MapStream(suggs, opts.Workers, func(sg Suggestion) (outcome, error) {
			x := sg.X
			for {
				y, err := st.evalRepeated(st.tasks[sg.Task], x)
				if err == nil {
					return outcome{id: sg.ID, y: y}, nil
				}
				next, ferr := e.Fail(sg.ID, err)
				if ferr != nil {
					return outcome{}, ferr
				}
				x = next.X
			}
		}, func(k int, o outcome, err error) error {
			if err != nil {
				return nil // evaluation errors are reported by the loop below
			}
			return e.Observe(o.id, o.y)
		})
		st.stats.Objective += opts.since(t0)
		if derr != nil {
			return nil, derr
		}
		for k := range suggs {
			if errs[k] != nil {
				if suggs[k].Phase == "init" {
					return nil, fmt.Errorf("core: evaluating task %d: %w", suggs[k].Task, errs[k])
				}
				return nil, errs[k]
			}
		}
	}

	res := st.partialResult()
	st.stats.Total = opts.since(e.start)
	res.Stats = st.stats
	return res, nil
}

// partialResult packages whatever has been observed so far. Called only
// from the coordinating goroutine, after any parallel evaluation batch has
// joined.
func (st *state) partialResult() *Result {
	st.stats.NumEvals = int(st.evals.Load())
	res := &Result{Tasks: make([]TaskResult, len(st.tasks)), Stats: st.stats}
	for i := range st.tasks {
		tr := TaskResult{Task: st.tasks[i], X: st.X[i], Y: st.Y[i]}
		for j := range tr.Y {
			if tr.Y[j][0] < tr.Y[tr.BestIdx][0] {
				tr.BestIdx = j
			}
		}
		res.Tasks[i] = tr
	}
	return res
}

// state carries one MLA run's mutable data.
type state struct {
	p      *Problem
	opts   Options
	fitter surrogate.Fitter // modeling-phase backend, resolved from opts.Surrogate
	tasks  [][]float64
	X      [][][]float64 // [task][sample] native configs
	Y      [][][]float64 // [task][sample] γ outputs
	done   []int         // evaluations performed this run, per task (priors excluded)
	coeffs []float64     // performance-model coefficients
	mdl    modelState    // incremental-modeling bookkeeping (RefitEvery > 1)
	stats  PhaseStats
	evals  atomic.Int64 // objective evaluations; mutated from worker goroutines
	rng    *rand.Rand
}

// warmSnapshot returns the warm-start payload for the given objective: the
// last Options.WarmStart snapshot matching the active backend kind and the
// objective index, or nil (cold start).
func (st *state) warmSnapshot(objective int) []byte {
	var out []byte
	for _, snap := range st.opts.WarmStart {
		if snap.Objective == objective && snap.Kind == st.fitter.Kind() {
			out = snap.Data
		}
	}
	return out
}

// saveTransfer streams one fitted model to Options.Transfer (no-op without
// one). Save failures are fatal to the run, like checkpoint failures: a
// transfer sink that silently drops snapshots would poison later sessions.
func (st *state) saveTransfer(model surrogate.Model, objective int) error {
	store := st.opts.Transfer
	if store == nil {
		return nil
	}
	blob, err := model.MarshalBinary()
	if err != nil {
		return fmt.Errorf("core: serializing %s model: %w", model.Kind(), err)
	}
	if err := store.SaveModel(ModelSnapshot{Kind: model.Kind(), Objective: objective, Data: blob}); err != nil {
		return fmt.Errorf("core: saving %s model snapshot: %w", model.Kind(), err)
	}
	return nil
}

// minDone returns the minimum number of budgeted evaluations across tasks.
func (st *state) minDone() int {
	m := st.done[0]
	for _, d := range st.done[1:] {
		if d < m {
			m = d
		}
	}
	return m
}

// mergePriors injects Options.Prior samples whose task exactly matches one
// of the run's tasks. They extend the dataset but not the budget counters.
func (st *state) mergePriors() error {
	for _, ps := range st.opts.Prior {
		for i, task := range st.tasks {
			if !equalVec(task, ps.Task) {
				continue
			}
			if len(ps.X) != st.p.Tuning.Dim() {
				return fmt.Errorf("core: prior sample has %d tuning values, want %d", len(ps.X), st.p.Tuning.Dim())
			}
			if err := st.p.checkOutputs(ps.Y); err != nil {
				return fmt.Errorf("core: prior sample outputs: %w", err)
			}
			st.X[i] = append(st.X[i], append([]float64(nil), ps.X...))
			st.Y[i] = append(st.Y[i], append([]float64(nil), ps.Y...))
			break
		}
	}
	return nil
}

func equalVec(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] { //gptlint:ignore float-eq exact task-vector match routes prior samples; values are stored, never computed
			return false
		}
	}
	return true
}

func (st *state) minSamples() int {
	m := len(st.X[0])
	for _, xi := range st.X[1:] {
		if len(xi) < m {
			m = len(xi)
		}
	}
	return m
}

func hash2(a, b int) int64 {
	return int64(a)*1000003 + int64(b)*7919
}

func hash3(a, b, c int) int64 {
	return int64(a)*1000003 + int64(b)*8191 + int64(c)*7919
}

// checkpointEval streams one completed evaluation to the checkpoint hook
// (no-op without one). Always called on the coordinating goroutine, in
// batch order.
func (st *state) checkpointEval(phase string, task int, requested, x, y []float64) error {
	cp := st.opts.Checkpoint
	if cp == nil {
		return nil
	}
	return cp.Eval(CheckpointRecord{Phase: phase, Task: st.tasks[task], Requested: requested, X: x, Y: y})
}

// evalRepeated runs the objective with the configured repeat count, taking
// the componentwise minimum (the paper's noise mitigation). Retries on
// error are the Engine's job (see Engine.Fail).
func (st *state) evalRepeated(t, x []float64) ([]float64, error) {
	var best []float64
	for r := 0; r < st.opts.Repeats; r++ {
		y, err := st.p.Objective(t, x)
		if err != nil {
			return nil, err
		}
		if err := st.p.checkOutputs(y); err != nil {
			return nil, err
		}
		if best == nil {
			best = append([]float64(nil), y...)
			continue
		}
		for s := range y {
			if y[s] < best[s] {
				best[s] = y[s]
			}
		}
	}
	st.evals.Add(int64(st.opts.Repeats))
	return best, nil
}

// featureScale holds the normalization of performance-model features used
// during one modeling+search iteration.
type featureScale struct {
	lo, hi []float64
	logT   []bool
}

func (fs *featureScale) apply(raw []float64) []float64 {
	out := make([]float64, len(raw))
	fs.applyInto(out, raw)
	return out
}

// applyInto scales raw into dst without allocating; dst must have len(raw).
//
//gptlint:hotpath
func (fs *featureScale) applyInto(dst, raw []float64) {
	for d, v := range raw {
		if fs.logT[d] {
			v = math.Log(v)
		}
		dst[d] = 0
		if fs.hi[d] > fs.lo[d] {
			dst[d] = (v - fs.lo[d]) / (fs.hi[d] - fs.lo[d])
		}
		if dst[d] < 0 {
			dst[d] = 0
		} else if dst[d] > 1 {
			dst[d] = 1
		}
	}
}

// buildFeatureScale computes per-feature normalization over all current
// samples. Positive features spanning >2 orders of magnitude are
// log-transformed first.
func (st *state) buildFeatureScale() *featureScale {
	m := st.p.Model
	if m == nil {
		return nil
	}
	raws := make([][]float64, 0, 64)
	for i := range st.tasks {
		for _, x := range st.X[i] {
			raws = append(raws, m.Eval(st.tasks[i], x, st.coeffs))
		}
	}
	fs := &featureScale{
		lo:   make([]float64, m.Dim),
		hi:   make([]float64, m.Dim),
		logT: make([]bool, m.Dim),
	}
	for d := 0; d < m.Dim; d++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		allPos := true
		for _, r := range raws {
			v := r[d]
			if v <= 0 {
				allPos = false
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		if allPos && lo > 0 && hi/lo > 100 {
			fs.logT[d] = true
			lo, hi = math.Log(lo), math.Log(hi)
		}
		fs.lo[d], fs.hi[d] = lo, hi
	}
	return fs
}

// modelPoint maps a native configuration to the (possibly enriched) LCM
// input: normalized tuning parameters plus normalized model features.
func (st *state) modelPoint(task int, xNative []float64, fs *featureScale) []float64 {
	out := make([]float64, st.modelDim(fs))
	st.modelPointInto(out, task, xNative, fs)
	return out
}

// modelDim returns the surrogate input dimension for the current
// generation: the tuning dimension plus the feature count when a
// performance model is in play.
func (st *state) modelDim(fs *featureScale) int {
	if fs == nil {
		return st.p.Tuning.Dim()
	}
	return st.p.Tuning.Dim() + len(fs.lo)
}

// modelPointInto fills dst with the surrogate input for xNative — the
// normalized point plus, when fs is non-nil, the scaled performance-model
// features. dst must have length modelDim(fs).
//
//gptlint:hotpath
func (st *state) modelPointInto(dst []float64, task int, xNative []float64, fs *featureScale) {
	dim := st.p.Tuning.Dim()
	st.p.Tuning.NormalizeInto(dst[:dim], xNative)
	if fs == nil {
		return
	}
	raw := st.p.Model.Eval(st.tasks[task], xNative, st.coeffs)
	fs.applyInto(dst[dim:], raw)
}

// logApplied reports whether objective s is modeled in log space this
// generation: requested via Options.LogY and possible (every observation
// positive). Factored out of yTransform so the incremental modeling path
// can record — and later re-validate — the decision a refit froze.
func (st *state) logApplied(s int) bool {
	if !st.opts.LogY {
		return false
	}
	for i := range st.Y {
		for _, y := range st.Y[i] {
			if y[s] <= 0 {
				return false
			}
		}
	}
	return true
}

func identityTransform(v float64) float64 { return v }

// yTransform returns the observed objective s for all tasks, log-transformed
// when requested and possible, plus the matching inverse-free "transform one
// value" helper for incumbents.
func (st *state) yTransform(s int) (tv func(float64) float64) {
	if st.logApplied(s) {
		return math.Log
	}
	return identityTransform
}

// buildDataset assembles the surrogate training set for objective s.
func (st *state) buildDataset(s int, fs *featureScale) (*surrogate.Dataset, func(float64) float64) {
	dim := st.p.Tuning.Dim()
	if fs != nil {
		dim += st.p.Model.Dim
	}
	tv := st.yTransform(s)
	data := &surrogate.Dataset{
		Dim: dim,
		X:   make([][][]float64, len(st.tasks)),
		Y:   make([][]float64, len(st.tasks)),
	}
	for i := range st.tasks {
		for j, x := range st.X[i] {
			data.X[i] = append(data.X[i], st.modelPoint(i, x, fs))
			data.Y[i] = append(data.Y[i], tv(st.Y[i][j][s]))
		}
	}
	return data, tv
}

// fitModelCoeffs implements the Section 3.3 performance model update phase.
func (st *state) fitModelCoeffs() {
	m := st.p.Model
	var tasks, xs [][]float64
	var ys []float64
	for i := range st.tasks {
		for j, x := range st.X[i] {
			tasks = append(tasks, st.tasks[i])
			xs = append(xs, x)
			ys = append(ys, st.Y[i][j][0])
		}
	}
	if m.FitCoeffs != nil {
		st.coeffs = m.FitCoeffs(tasks, xs, ys, st.coeffs)
		return
	}
	st.coeffs = defaultFitCoeffs(m, tasks, xs, ys, st.coeffs, st.rng)
}

// defaultFitCoeffs least-squares-fits the model's first output against the
// observed first objective by searching multiplicative corrections of the
// current coefficients with Nelder–Mead (log-space box of ±e³ per
// coefficient).
func defaultFitCoeffs(m *PerfModel, tasks, xs [][]float64, ys []float64, current []float64, rng *rand.Rand) []float64 {
	n := len(current)
	if n == 0 || len(ys) == 0 {
		return current
	}
	base := make([]float64, n)
	for i, c := range current {
		base[i] = math.Max(math.Abs(c), 1e-12)
	}
	useLog := true
	for _, y := range ys {
		if y <= 0 {
			useLog = false
			break
		}
	}
	decode := func(u []float64) []float64 {
		c := make([]float64, n)
		for i := range c {
			c[i] = base[i] * math.Exp(6*(u[i]-0.5))
		}
		return c
	}
	loss := func(u []float64) float64 {
		c := decode(u)
		sse := 0.0
		for k := range ys {
			pred := m.Eval(tasks[k], xs[k], c)[0]
			if useLog && pred > 0 {
				d := math.Log(pred) - math.Log(ys[k])
				sse += d * d
			} else {
				d := pred - ys[k]
				sse += d * d
			}
		}
		if math.IsNaN(sse) {
			return math.Inf(1)
		}
		return sse
	}
	start := make([]float64, n)
	for i := range start {
		start[i] = 0.5
	}
	res := opt.NelderMead(loss, n, opt.NelderMeadParams{MaxEvals: 200 * n, Start: start}, rng)
	return decode(res.X)
}

// acquisition converts a posterior prediction into a score to *minimize*.
func (st *state) acquisition(mu, variance, yBest float64) float64 {
	switch st.opts.Acquisition {
	case "lcb":
		return acq.LowerConfidenceBound(mu, variance, st.opts.LCBKappa)
	case "pi":
		return -acq.ProbabilityOfImprovement(mu, variance, yBest)
	default:
		return -acq.ExpectedImprovement(mu, variance, yBest)
	}
}

// searchBatch returns BatchEvals configurations for task i. The first
// maximizes the raw acquisition; subsequent ones maximize the acquisition
// damped near already-chosen points so the batch spreads out.
func (st *state) searchBatch(i int, model surrogate.Model, tv func(float64) float64, fs *featureScale) [][]float64 {
	k := st.opts.BatchEvals
	ws := model.NewWorkspace() // one per task goroutine; reused by every acquisition call
	var chosen [][]float64     // native
	var chosenNorm [][]float64 // normalized, for the penalty
	for b := 0; b < k; b++ {
		x := st.searchOne(i, model, ws, tv, fs, chosenNorm, int64(b))
		if x == nil {
			continue
		}
		chosen = append(chosen, x)
		chosenNorm = append(chosenNorm, st.p.Tuning.Normalize(x))
	}
	return chosen
}

// searchOne maximizes the acquisition for task i with PSO, seeding the
// swarm with the incumbent best configuration, damping near the avoid
// points (batch spreading). It returns a native configuration, avoiding
// exact duplicates of already-evaluated points. The hotpath contract is
// about the per-candidate inner loop: per-search setup (rng, seeds, the
// buffers themselves) allocates once and carries justified ignores.
//
//gptlint:hotpath
func (st *state) searchOne(i int, model surrogate.Model, ws surrogate.Workspace, tv func(float64) float64, fs *featureScale, avoid [][]float64, salt int64) []float64 {
	yBest := math.Inf(1)
	bestIdx := 0
	for j, y := range st.Y[i] {
		if v := tv(y[0]); v < yBest {
			yBest = v
			bestIdx = j
		}
	}
	rng := rand.New(rand.NewSource(st.opts.Seed ^ hash2(7+i, st.minSamples()) ^ (salt << 17)))
	const penaltyRadius = 0.15
	// Per-candidate buffers, hoisted so the acquisition closure is
	// allocation-free over the thousands of points PSO and the random pool
	// push through it.
	dim := st.p.Tuning.Dim()
	xNatBuf := make([]float64, dim)           //gptlint:ignore hotpath-alloc per-search buffer, allocated once and reused for every candidate
	ptBuf := make([]float64, st.modelDim(fs)) //gptlint:ignore hotpath-alloc per-search buffer, allocated once and reused for every candidate
	unBuf := make([]float64, dim)             //gptlint:ignore hotpath-alloc per-search buffer, allocated once and reused for every candidate
	feasBuf := make(map[string]float64, dim)  //gptlint:ignore hotpath-alloc per-search scratch map for constraint checks
	neg := func(u []float64) float64 {        //gptlint:ignore hotpath-alloc the acquisition closure is built once per search; its body is what stays allocation-free
		st.p.Tuning.DenormalizeInto(xNatBuf, u)
		if !st.p.Tuning.FeasibleInto(feasBuf, xNatBuf) {
			return math.Inf(1)
		}
		st.modelPointInto(ptBuf, i, xNatBuf, fs)
		mu, v := model.PredictInto(ws, i, ptBuf)
		score := st.acquisition(mu, v, yBest)
		if len(avoid) > 0 && score < 0 {
			st.p.Tuning.NormalizeInto(unBuf, xNatBuf)
			damp := 1.0
			for _, a := range avoid {
				d := 0.0
				for dIdx := range a {
					diff := unBuf[dIdx] - a[dIdx]
					d += diff * diff
				}
				d = math.Sqrt(d) / penaltyRadius
				if d < 1 {
					damp *= d
				}
			}
			score *= damp
		}
		return score
	}
	params := st.opts.Search
	// Clone before appending: params.Seeds shares its backing array with
	// the caller's Options.Search.Seeds, and searchOne runs concurrently
	// across tasks — appending in place would race on (and bleed one
	// task's incumbent into) the shared array whenever it has spare
	// capacity.
	seeds := make([][]float64, len(params.Seeds), len(params.Seeds)+1) //gptlint:ignore hotpath-alloc once-per-search seed clone, required for race safety
	copy(seeds, params.Seeds)
	params.Seeds = append(seeds, st.p.Tuning.Normalize(st.X[i][bestIdx])) //gptlint:ignore hotpath-alloc once-per-search incumbent seed
	res := opt.PSO(neg, st.p.Tuning.Dim(), params, rng)                   //gptlint:ignore hotpath-alloc PSO allocates its swarm once per search; the objective it drives is allocation-free
	// Hybrid search: PSO explores the continuous relaxation well, but
	// categorical/integer dimensions make the acquisition piecewise
	// constant; a scored pool of random feasible candidates covers the
	// discrete combinations PSO's rounding can miss. Keep whichever wins.
	bestU := res.X
	bestScore := res.F
	// One candidate buffer for the whole pool, swapped with bestU on
	// improvement instead of allocating per candidate.
	cand := make([]float64, dim) //gptlint:ignore hotpath-alloc per-search buffer, swapped with bestU instead of allocating per candidate
	for c := 0; c < 8*dim+32; c++ {
		for d := range cand {
			cand[d] = rng.Float64()
		}
		if s := neg(cand); s < bestScore {
			bestScore = s
			bestU, cand = cand, bestU
		}
	}
	xNat := st.p.Tuning.Denormalize(bestU)                                                                                   //gptlint:ignore hotpath-alloc the winner escapes to the caller; one allocation per search
	if !st.p.Tuning.FeasibleInto(feasBuf, xNat) || st.isDuplicate(i, xNat) || containsConfig(avoidNative(st, avoid), xNat) { //gptlint:ignore hotpath-alloc once-per-search duplicate check against the avoid list
		if pts, err := sample.FeasibleUniform(st.p.Tuning, 1, rng); err == nil { //gptlint:ignore hotpath-alloc rare fallback when the search collapses onto an evaluated point
			return pts[0]
		}
	}
	return xNat
}

// avoidNative denormalizes the avoid list for duplicate checks.
func avoidNative(st *state, avoid [][]float64) [][]float64 {
	out := make([][]float64, len(avoid))
	for i, a := range avoid {
		out[i] = st.p.Tuning.Denormalize(a)
	}
	return out
}

func (st *state) isDuplicate(i int, x []float64) bool {
	for _, prev := range st.X[i] {
		same := true
		for d := range x {
			if prev[d] != x[d] { //gptlint:ignore float-eq exact duplicate detection on stored configurations
				same = false
				break
			}
		}
		if same {
			return true
		}
	}
	return false
}
