package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/apps/analytical/eq11"
	"repro/internal/space"
)

// paperObjective is Eq. (11): the paper's analytical benchmark, shared from
// the leaf eq11 package (the full analytical app registers itself with the
// workload registry, which imports core — a cycle from here).
var paperObjective = eq11.Objective

func analyticalProblem() *Problem {
	return &Problem{
		Name:    "analytical",
		Tasks:   space.MustNew(space.NewReal("t", 0, 10)),
		Tuning:  space.MustNew(space.NewReal("x", 0, 1)),
		Outputs: space.NewOutputSpace("y"),
		Objective: func(task, x []float64) ([]float64, error) {
			return []float64{paperObjective(task[0], x[0])}, nil
		},
	}
}

// trueMin brute-forces the global minimum of Eq. (11).
func trueMin(t float64) float64 {
	_, y := eq11.TrueMin(t)
	return y
}

func TestProblemValidate(t *testing.T) {
	p := analyticalProblem()
	if err := p.Validate(); err != nil {
		t.Fatalf("valid problem rejected: %v", err)
	}
	bad := *p
	bad.Objective = nil
	if err := bad.Validate(); err == nil {
		t.Fatalf("missing objective accepted")
	}
	bad2 := *p
	bad2.Outputs = nil
	if err := bad2.Validate(); err == nil {
		t.Fatalf("missing outputs accepted")
	}
	bad3 := *p
	bad3.Model = &PerfModel{}
	if err := bad3.Validate(); err == nil {
		t.Fatalf("broken model accepted")
	}
}

func TestRunRejectsEmptyTasks(t *testing.T) {
	if _, err := Run(analyticalProblem(), nil, Options{EpsTot: 4}); err == nil {
		t.Fatalf("expected error for no tasks")
	}
}

func TestMLASingleTaskFindsGoodMinimum(t *testing.T) {
	p := analyticalProblem()
	res, err := Run(p, [][]float64{{0}}, Options{EpsTot: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tasks) != 1 {
		t.Fatalf("got %d task results", len(res.Tasks))
	}
	tr := res.Tasks[0]
	if len(tr.X) != 20 || len(tr.Y) != 20 {
		t.Fatalf("expected 20 samples, got %d", len(tr.X))
	}
	_, bestY := tr.Best()
	truth := trueMin(0)
	if bestY[0] > truth+0.15 {
		t.Fatalf("best found %v, true minimum %v", bestY[0], truth)
	}
	if res.Stats.NumEvals != 20 {
		t.Fatalf("NumEvals = %d", res.Stats.NumEvals)
	}
	if res.Stats.Total <= 0 || res.Stats.Modeling <= 0 || res.Stats.Search <= 0 {
		t.Fatalf("phase stats not recorded: %+v", res.Stats)
	}
}

func TestMLAMultitaskCoversAllTasks(t *testing.T) {
	p := analyticalProblem()
	tasks := [][]float64{{0}, {1}, {2}, {3}}
	res, err := Run(p, tasks, Options{EpsTot: 14, Seed: 2, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range res.Tasks {
		if len(tr.X) != 14 {
			t.Fatalf("task %d has %d samples", i, len(tr.X))
		}
		// Eq. (11) oscillates with frequency up to (t+2)^5, so exact optima
		// are unreachable at this budget for large t; require that every
		// task found a dip below the y≈1 plateau, and that the easy task
		// t=0 got near its true minimum.
		_, bestY := tr.Best()
		if bestY[0] >= 1.02 {
			t.Errorf("task %d: best %v did not beat the plateau", i, bestY[0])
		}
	}
	// The easy task t=0 should get near its true minimum for at least one
	// of a few seeds (individual seeds are luck-sensitive at ε_tot=14 on a
	// function with ~32 oscillations).
	truth := trueMin(tasks[0][0])
	closest := math.Inf(1)
	for seed := int64(2); seed < 5; seed++ {
		r, err := Run(p, tasks[:1], Options{EpsTot: 14, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		_, by := r.Tasks[0].Best()
		closest = math.Min(closest, by[0])
	}
	if closest > truth+0.25 {
		t.Errorf("task 0: best across seeds %v vs true %v", closest, truth)
	}
}

// MLA with a shared model should beat pure random sampling on the same
// budget (statistically; we use a fixed seed and a margin).
func TestMLABeatsInitialSampling(t *testing.T) {
	p := analyticalProblem()
	res, err := Run(p, [][]float64{{4}}, Options{EpsTot: 24, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Tasks[0]
	// Best among the BO-chosen half should improve on (or match) the best
	// of the initial random half.
	initBest := math.Inf(1)
	for _, y := range tr.Y[:12] {
		initBest = math.Min(initBest, y[0])
	}
	_, bestY := tr.Best()
	if bestY[0] > initBest {
		t.Fatalf("BO half (%v) worse than initial sampling best (%v)", bestY[0], initBest)
	}
}

func TestBestTraceMonotone(t *testing.T) {
	p := analyticalProblem()
	res, err := Run(p, [][]float64{{1}}, Options{EpsTot: 10, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	trace := res.Tasks[0].BestTrace()
	for j := 1; j < len(trace); j++ {
		if trace[j] > trace[j-1] {
			t.Fatalf("trace not monotone at %d: %v", j, trace)
		}
	}
	if trace[len(trace)-1] != res.Tasks[0].Y[res.Tasks[0].BestIdx][0] {
		t.Fatalf("trace end != best")
	}
}

func TestMLAObjectiveErrorRetry(t *testing.T) {
	p := analyticalProblem()
	calls := 0
	inner := p.Objective
	p.Objective = func(task, x []float64) ([]float64, error) {
		calls++
		if calls%5 == 0 { // periodic failures
			return nil, errors.New("injected failure")
		}
		return inner(task, x)
	}
	res, err := Run(p, [][]float64{{0}}, Options{EpsTot: 8, Seed: 5})
	if err != nil {
		t.Fatalf("MLA did not survive transient failures: %v", err)
	}
	if len(res.Tasks[0].X) != 8 {
		t.Fatalf("expected 8 samples, got %d", len(res.Tasks[0].X))
	}
}

func TestMLAObjectivePersistentFailure(t *testing.T) {
	p := analyticalProblem()
	p.Objective = func(task, x []float64) ([]float64, error) {
		return nil, errors.New("always broken")
	}
	if _, err := Run(p, [][]float64{{0}}, Options{EpsTot: 4, Seed: 6}); err == nil {
		t.Fatalf("expected failure to propagate")
	}
}

func TestMLANonFiniteOutputRejected(t *testing.T) {
	p := analyticalProblem()
	p.Objective = func(task, x []float64) ([]float64, error) {
		return []float64{math.NaN()}, nil
	}
	if _, err := Run(p, [][]float64{{0}}, Options{EpsTot: 4, Seed: 7}); err == nil {
		t.Fatalf("NaN outputs must be rejected")
	}
}

func TestMLARepeatsTakeMin(t *testing.T) {
	p := analyticalProblem()
	call := 0
	p.Objective = func(task, x []float64) ([]float64, error) {
		call++
		// Alternate high/low: with Repeats=2 the recorded value must be the
		// min of consecutive pairs.
		if call%2 == 1 {
			return []float64{10}, nil
		}
		return []float64{5}, nil
	}
	res, err := Run(p, [][]float64{{0}}, Options{EpsTot: 4, Seed: 8, Repeats: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, y := range res.Tasks[0].Y {
		if y[0] != 5 {
			t.Fatalf("repeat-min not applied: %v", y)
		}
	}
	if res.Stats.NumEvals != 8 {
		t.Fatalf("NumEvals = %d, want 8 (4 samples × 2 repeats)", res.Stats.NumEvals)
	}
}

func TestMLAWithConstraints(t *testing.T) {
	p := analyticalProblem()
	p.Tuning = space.MustNew(space.NewReal("x", 0, 1), space.NewReal("z", 0, 1))
	p.Tuning.AddConstraint("z<=x", func(v map[string]float64) bool { return v["z"] <= v["x"] })
	p.Objective = func(task, x []float64) ([]float64, error) {
		return []float64{paperObjective(task[0], x[0]) + x[1]}, nil
	}
	res, err := Run(p, [][]float64{{0}}, Options{EpsTot: 10, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range res.Tasks[0].X {
		if x[1] > x[0] {
			t.Fatalf("constraint violated: %v", x)
		}
	}
}

func TestMLALogYTransform(t *testing.T) {
	// Objective spans orders of magnitude; LogY must not break anything and
	// samples must still be found.
	p := analyticalProblem()
	p.Objective = func(task, x []float64) ([]float64, error) {
		return []float64{math.Exp(5 * (paperObjective(task[0], x[0])))}, nil
	}
	res, err := Run(p, [][]float64{{0}}, Options{EpsTot: 12, Seed: 10, LogY: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tasks[0].X) != 12 {
		t.Fatalf("sample count %d", len(res.Tasks[0].X))
	}
}

// Performance model support: with a (noisy) model equal to the objective,
// tuning should not get worse — mirrors Fig. 4's setup.
func TestMLAWithPerformanceModel(t *testing.T) {
	p := analyticalProblem()
	p.Model = &PerfModel{
		Dim: 1,
		Eval: func(task, x, coeffs []float64) []float64 {
			return []float64{paperObjective(task[0], x[0])}
		},
	}
	res, err := Run(p, [][]float64{{2}}, Options{EpsTot: 16, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	// With the exact objective as a feature, the surrogate should steer the
	// search below the plateau even on this highly oscillatory task.
	_, bestY := res.Tasks[0].Best()
	if bestY[0] >= 1.0 {
		t.Fatalf("with perfect model: best %v did not beat plateau", bestY[0])
	}
}

func TestDefaultFitCoeffsRecoversScale(t *testing.T) {
	// Model: ỹ = c·x; data generated with c = 4; initial guess c = 1.
	m := &PerfModel{
		Dim:    1,
		Coeffs: []float64{1},
		Eval: func(task, x, coeffs []float64) []float64 {
			return []float64{coeffs[0] * x[0]}
		},
	}
	var tasks, xs [][]float64
	var ys []float64
	for i := 1; i <= 20; i++ {
		x := float64(i) / 20
		tasks = append(tasks, []float64{0})
		xs = append(xs, []float64{x})
		ys = append(ys, 4*x)
	}
	got := defaultFitCoeffs(m, tasks, xs, ys, m.Coeffs, newTestRand())
	if math.Abs(got[0]-4) > 0.2 {
		t.Fatalf("fitted coefficient %v, want ≈ 4", got[0])
	}
}

func TestMLAMultiObjectiveParetoFront(t *testing.T) {
	// Two conflicting objectives: y1 = x, y2 = 1-x (both minimized) — the
	// whole segment is Pareto-optimal; check front extraction and dominance.
	p := &Problem{
		Name:    "mo",
		Tasks:   space.MustNew(space.NewReal("t", 0, 1)),
		Tuning:  space.MustNew(space.NewReal("x", 0, 1)),
		Outputs: space.NewOutputSpace("f1", "f2"),
		Objective: func(task, x []float64) ([]float64, error) {
			return []float64{x[0], 1 - x[0]}, nil
		},
	}
	res, err := Run(p, [][]float64{{0}}, Options{EpsTot: 12, Seed: 12, MOBatch: 2})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Tasks[0]
	if len(tr.X) < 12 {
		t.Fatalf("expected ≥ 12 samples, got %d", len(tr.X))
	}
	front := tr.ParetoFront()
	if len(front) == 0 {
		t.Fatalf("empty Pareto front")
	}
	for _, i := range front {
		for j := range tr.Y {
			if j != i && dominatesMin(tr.Y[j], tr.Y[i]) {
				t.Fatalf("front point %d dominated by %d", i, j)
			}
		}
	}
}

func TestMLAMultiObjectiveTradeoffQuality(t *testing.T) {
	// Convex tradeoff y1 = x², y2 = (1-x)²: the multi-objective tuner should
	// discover points near both single-objective optima.
	p := &Problem{
		Name:    "mo2",
		Tasks:   space.MustNew(space.NewReal("t", 0, 1)),
		Tuning:  space.MustNew(space.NewReal("x", 0, 1)),
		Outputs: space.NewOutputSpace("f1", "f2"),
		Objective: func(task, x []float64) ([]float64, error) {
			return []float64{x[0] * x[0], (1 - x[0]) * (1 - x[0])}, nil
		},
	}
	res, err := Run(p, [][]float64{{0}}, Options{EpsTot: 20, Seed: 13, MOBatch: 2})
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Tasks[0]
	minF1, minF2 := math.Inf(1), math.Inf(1)
	for _, y := range tr.Y {
		minF1 = math.Min(minF1, y[0])
		minF2 = math.Min(minF2, y[1])
	}
	if minF1 > 0.05 || minF2 > 0.05 {
		t.Fatalf("front does not approach extremes: minF1=%v minF2=%v", minF1, minF2)
	}
}

func TestPhaseStatsAdd(t *testing.T) {
	a := PhaseStats{Objective: 1, Modeling: 2, Search: 3, ModelUpdate: 4, Total: 10, NumEvals: 5}
	b := a
	a.Add(b)
	if a.Objective != 2 || a.Total != 20 || a.NumEvals != 10 {
		t.Fatalf("Add wrong: %+v", a)
	}
}

func newTestRand() *rand.Rand { return rand.New(rand.NewSource(99)) }
