package core

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/acq"
	"repro/internal/opt"
	"repro/internal/sample"
	"repro/internal/surrogate"
)

// searchMO returns up to MOBatch native configurations for task i chosen
// from the NSGA-II front of the negated per-objective EI vector.
func (st *state) searchMO(i int, models []surrogate.Model, transforms []func(float64) float64, fs *featureScale) [][]float64 {
	gamma := len(models)
	yBest := make([]float64, gamma)
	for s := 0; s < gamma; s++ {
		yBest[s] = math.Inf(1)
		for _, y := range st.Y[i] {
			if v := transforms[s](y[s]); v < yBest[s] {
				yBest[s] = v
			}
		}
	}
	rng := rand.New(rand.NewSource(st.opts.Seed ^ hash2(13+i, st.minSamples())))
	wss := make([]surrogate.Workspace, gamma) // one set per task goroutine, reused across NSGA-II evals
	for s := range wss {
		wss[s] = models[s].NewWorkspace()
	}
	objective := func(u []float64) []float64 {
		xNat := st.p.Tuning.Denormalize(u)
		out := make([]float64, gamma)
		if !st.p.Tuning.Feasible(xNat) {
			for s := range out {
				out[s] = math.Inf(1)
			}
			return out
		}
		pt := st.modelPoint(i, xNat, fs)
		for s := 0; s < gamma; s++ {
			mu, v := models[s].PredictInto(wss[s], i, pt)
			out[s] = -acq.ExpectedImprovement(mu, v, yBest[s])
		}
		return out
	}
	// Seed with the per-objective incumbents.
	var seeds [][]float64
	for s := 0; s < gamma; s++ {
		best := 0
		for j, y := range st.Y[i] {
			if y[s] < st.Y[i][best][s] {
				best = j
			}
		}
		seeds = append(seeds, st.p.Tuning.Normalize(st.X[i][best]))
	}
	front := opt.NSGAII(objective, st.p.Tuning.Dim(), opt.NSGAIIParams{
		PopSize:     st.opts.MOPopSize,
		Generations: st.opts.MOGenerations,
		Seeds:       seeds,
	}, rng)

	// Drop hopeless candidates (zero EI in every objective).
	kept := front[:0]
	for _, pr := range front {
		useful := false
		for _, v := range pr.F {
			if v < 0 {
				useful = true
				break
			}
		}
		if useful {
			kept = append(kept, pr)
		}
	}
	if len(kept) == 0 {
		kept = front
	}
	// Spread the batch across the front (sorted by first acquisition).
	sort.Slice(kept, func(a, b int) bool { return kept[a].F[0] < kept[b].F[0] })
	k := st.opts.MOBatch
	var out [][]float64
	for b := 0; b < k; b++ {
		var xNat []float64
		if len(kept) > 0 {
			idx := b * len(kept) / k
			if idx >= len(kept) {
				idx = len(kept) - 1
			}
			xNat = st.p.Tuning.Denormalize(kept[idx].X)
		}
		if xNat == nil || !st.p.Tuning.Feasible(xNat) || st.isDuplicate(i, xNat) || containsConfig(out, xNat) {
			if pts, err := sample.FeasibleUniform(st.p.Tuning, 1, rng); err == nil {
				xNat = pts[0]
			} else {
				continue
			}
		}
		out = append(out, xNat)
	}
	return out
}

func containsConfig(list [][]float64, x []float64) bool {
	for _, prev := range list {
		same := true
		for d := range x {
			if prev[d] != x[d] { //gptlint:ignore float-eq exact duplicate detection on stored configurations
				same = false
				break
			}
		}
		if same {
			return true
		}
	}
	return false
}
