package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/acq"
	"repro/internal/gp"
	"repro/internal/mpx"
	"repro/internal/opt"
	"repro/internal/sample"
)

// iterateMulti performs one Algorithm 2 iteration: the modeling phase builds
// one LCM per objective, and the search phase runs NSGA-II per task on the
// vector of per-objective Expected Improvements (Pareto dominance + crowding
// distance, as in the paper) to propose k = MOBatch new configurations.
func (st *state) iterateMulti() error {
	gamma := st.p.Outputs.Dim()
	fs := st.buildFeatureScale()

	t0 := st.opts.now()
	models := make([]*gp.LCM, gamma)
	transforms := make([]func(float64) float64, gamma)
	for s := 0; s < gamma; s++ {
		data, tv := st.buildDataset(s, fs)
		model, err := gp.FitLCM(data, gp.FitOptions{
			Q:         st.opts.Q,
			NumStarts: st.opts.NumStarts,
			Workers:   st.opts.Workers,
			MaxIter:   st.opts.ModelMaxIter,
			Seed:      st.opts.Seed + int64(st.minSamples())*31 + int64(s),
		})
		if err != nil {
			return fmt.Errorf("core: modeling phase (objective %d): %w", s, err)
		}
		models[s] = model
		transforms[s] = tv
	}
	st.stats.Modeling += st.opts.since(t0)

	t1 := st.opts.now()
	newX := make([][][]float64, len(st.tasks)) // [task][batch] native configs
	mpx.ParallelFor(len(st.tasks), st.opts.Workers, func(i int) {
		newX[i] = st.searchMO(i, models, transforms, fs)
	})
	st.stats.Search += st.opts.since(t1)

	t2 := st.opts.now()
	type job struct{ task, slot int }
	var jobs []job
	for i := range newX {
		for b := range newX[i] {
			jobs = append(jobs, job{task: i, slot: b})
		}
	}
	type outcome struct{ x, y []float64 }
	results, errs, derr := mpx.MapStream(jobs, st.opts.Workers, func(j job) (outcome, error) {
		rng := rand.New(rand.NewSource(st.opts.Seed ^ hash2(j.task*64+j.slot, st.minSamples())))
		x, y, err := st.evalWithRetry(j.task, newX[j.task][j.slot], rng)
		return outcome{x: x, y: y}, err
	}, func(k int, r outcome, err error) error {
		if err != nil {
			return nil
		}
		return st.checkpointEval("mo", jobs[k].task, newX[jobs[k].task][jobs[k].slot], r.x, r.y)
	})
	st.stats.Objective += st.opts.since(t2)
	if derr != nil {
		return fmt.Errorf("core: checkpoint: %w", derr)
	}
	for k, j := range jobs {
		if errs[k] != nil {
			return errs[k]
		}
		st.X[j.task] = append(st.X[j.task], results[k].x)
		st.Y[j.task] = append(st.Y[j.task], results[k].y)
		st.done[j.task]++
	}
	return nil
}

// searchMO returns up to MOBatch native configurations for task i chosen
// from the NSGA-II front of the negated per-objective EI vector.
func (st *state) searchMO(i int, models []*gp.LCM, transforms []func(float64) float64, fs *featureScale) [][]float64 {
	gamma := len(models)
	yBest := make([]float64, gamma)
	for s := 0; s < gamma; s++ {
		yBest[s] = math.Inf(1)
		for _, y := range st.Y[i] {
			if v := transforms[s](y[s]); v < yBest[s] {
				yBest[s] = v
			}
		}
	}
	rng := rand.New(rand.NewSource(st.opts.Seed ^ hash2(13+i, st.minSamples())))
	wss := make([]*gp.PredictWorkspace, gamma) // one set per task goroutine, reused across NSGA-II evals
	for s := range wss {
		wss[s] = models[s].NewPredictWorkspace()
	}
	objective := func(u []float64) []float64 {
		xNat := st.p.Tuning.Denormalize(u)
		out := make([]float64, gamma)
		if !st.p.Tuning.Feasible(xNat) {
			for s := range out {
				out[s] = math.Inf(1)
			}
			return out
		}
		pt := st.modelPoint(i, xNat, fs)
		for s := 0; s < gamma; s++ {
			mu, v := models[s].PredictInto(wss[s], i, pt)
			out[s] = -acq.ExpectedImprovement(mu, v, yBest[s])
		}
		return out
	}
	// Seed with the per-objective incumbents.
	var seeds [][]float64
	for s := 0; s < gamma; s++ {
		best := 0
		for j, y := range st.Y[i] {
			if y[s] < st.Y[i][best][s] {
				best = j
			}
		}
		seeds = append(seeds, st.p.Tuning.Normalize(st.X[i][best]))
	}
	front := opt.NSGAII(objective, st.p.Tuning.Dim(), opt.NSGAIIParams{
		PopSize:     st.opts.MOPopSize,
		Generations: st.opts.MOGenerations,
		Seeds:       seeds,
	}, rng)

	// Drop hopeless candidates (zero EI in every objective).
	kept := front[:0]
	for _, pr := range front {
		useful := false
		for _, v := range pr.F {
			if v < 0 {
				useful = true
				break
			}
		}
		if useful {
			kept = append(kept, pr)
		}
	}
	if len(kept) == 0 {
		kept = front
	}
	// Spread the batch across the front (sorted by first acquisition).
	sort.Slice(kept, func(a, b int) bool { return kept[a].F[0] < kept[b].F[0] })
	k := st.opts.MOBatch
	var out [][]float64
	for b := 0; b < k; b++ {
		var xNat []float64
		if len(kept) > 0 {
			idx := b * len(kept) / k
			if idx >= len(kept) {
				idx = len(kept) - 1
			}
			xNat = st.p.Tuning.Denormalize(kept[idx].X)
		}
		if xNat == nil || !st.p.Tuning.Feasible(xNat) || st.isDuplicate(i, xNat) || containsConfig(out, xNat) {
			if pts, err := sample.FeasibleUniform(st.p.Tuning, 1, rng); err == nil {
				xNat = pts[0]
			} else {
				continue
			}
		}
		out = append(out, xNat)
	}
	return out
}

func containsConfig(list [][]float64, x []float64) bool {
	for _, prev := range list {
		same := true
		for d := range x {
			if prev[d] != x[d] { //gptlint:ignore float-eq exact duplicate detection on stored configurations
				same = false
				break
			}
		}
		if same {
			return true
		}
	}
	return false
}
