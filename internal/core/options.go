package core

import (
	"time"

	"repro/internal/mpx"
	"repro/internal/opt"
	"repro/internal/surrogate"
)

// Options configures an MLA run.
type Options struct {
	// EpsTot is ε_tot, the total number of function evaluations per task.
	// The initial sampling phase uses ε_tot/2 of them (Section 3.1).
	EpsTot int
	// InitFraction overrides the fraction of ε_tot used for initial
	// sampling (default 0.5, the paper's choice).
	InitFraction float64
	// Workers bounds the goroutine parallelism for objective evaluations,
	// modeling-phase multi-starts / covariance factorization, and per-task
	// search (Section 4). Default 1.
	Workers int
	// Repeats re-evaluates each configuration this many times and keeps the
	// componentwise minimum (the paper runs PDGEQRF/PDSYEVX 3 times to cope
	// with runtime noise). Default 1.
	Repeats int
	// LogY models log(y) instead of y when all observations are positive,
	// which suits runtime-like objectives spanning orders of magnitude.
	LogY bool

	// Surrogate selects the performance-model backend for the modeling
	// phase: "lcm" (the paper's multitask LCM, the default), "gp-indep"
	// (independent single-task GPs — the multitask ablation), "sgp"
	// (sparse inducing-point GPs for large histories), or "rf" (per-task
	// random forests, the SuRF-style baseline). surrogate.Kinds() is the
	// authoritative list; unknown names fail NewEngine/Run up front. See
	// internal/surrogate.
	Surrogate string
	// RefitEvery controls how often the modeling phase relearns surrogate
	// hyperparameters from scratch. With the default (0 or 1) every
	// generation refits — the canonical Algorithm 1/2 behavior, bitwise
	// unchanged. With k > 1 only every k-th generation refits (warm-started
	// from the in-run model); the generations between extend the existing
	// model with the newly observed points at frozen hyperparameters (a
	// rank-k Cholesky extension for the GP backends, sufficient-statistic
	// updates for "sgp"), cutting per-generation modeling from O(n³) to
	// O(k·n²). Backends without incremental support ("rf") refit every
	// generation regardless. Incremental generations reuse the feature
	// scale and log transform frozen at the last refit; if a frozen log
	// transform turns invalid (a new observation ≤ 0) or an append fails,
	// that generation falls back to a full refit.
	RefitEvery int
	// Inducing bounds the "sgp" backend's per-task inducing set (default
	// 128; other backends ignore it). See internal/surrogate.
	Inducing int
	// Q is the number of LCM latent functions (default min(δ, 3)).
	Q int
	// NumStarts is n_start, the modeling phase's L-BFGS restarts (default 4).
	NumStarts int
	// ModelMaxIter caps L-BFGS iterations per restart (default 100).
	ModelMaxIter int
	// WarmStart supplies fitted-model snapshots from an earlier tuning
	// session (loaded from its history database — see Checkpointer.
	// ModelSnapshots and the gptune facade's LoadModelSnapshots). Each
	// modeling-phase fit for objective s is seeded with the last snapshot
	// whose Kind matches Options.Surrogate and whose Objective is s; GP
	// backends start their first optimizer restart at the snapshot's
	// hyperparameters. WarmStart is a static input, read-only for the whole
	// run — the engine never feeds its own snapshots back into it, which
	// keeps crash-resumed runs bitwise identical to uninterrupted ones.
	// Incompatible snapshots silently degrade to cold starts.
	WarmStart []ModelSnapshot
	// Transfer, when non-nil, receives a snapshot of every fitted surrogate
	// (one per modeling phase and objective) so later sessions can warm-start
	// from it. A WAL-backed Checkpointer implements this by appending
	// histdb.KindModel records to its log. Save errors abort the run. The
	// engine never reads snapshots back from Transfer — saving is
	// fire-and-forget, so a mid-run crash cannot change resumed decisions.
	Transfer ModelStore

	// Search configures the per-task PSO maximizing the acquisition.
	Search opt.PSOParams
	// Acquisition selects the search-phase acquisition function: "ei"
	// (Expected Improvement, the paper's choice and the default), "lcb"
	// (lower confidence bound), or "pi" (probability of improvement).
	Acquisition string
	// LCBKappa is the exploration weight for Acquisition "lcb" (default 2).
	LCBKappa float64
	// BatchEvals asks the single-objective search phase for this many
	// configurations per task per iteration, chosen by distance-penalized
	// acquisition so they spread out; all are evaluated concurrently
	// (the paper's Section 4.2 "multiple function evaluations
	// concurrently"). Default 1.
	BatchEvals int
	// Prior seeds the dataset with already-evaluated samples (e.g. from the
	// history database) before the first modeling phase. Samples whose Task
	// does not exactly match one of the run's tasks are ignored. Prior
	// samples do not count against EpsTot.
	Prior []PriorSample
	// MOBatch is k, the number of configurations per multi-objective search
	// iteration (Algorithm 2; default 1).
	MOBatch int
	// MOGenerations and MOPopSize configure the NSGA-II search (defaults
	// 40, 40).
	MOGenerations int
	MOPopSize     int

	// Seed makes runs reproducible.
	Seed int64

	// Async takes batch generation off the request path: Suggest never runs
	// or waits on the modeling/search phase. Instead, the Observe that
	// commits a batch's last evaluation kicks a single background goroutine
	// which fits the surrogate (behind ModelGate) and swaps the new batch in
	// atomically under the engine mutex; Suggest calls that arrive while a
	// batch is being prepared return ErrNonePending immediately. The
	// suggestion sequence, tuning history and WAL bytes are bitwise
	// identical to the synchronous engine's — only the blocking behavior
	// changes. Ignored by Run/RunContext, whose batch driver is
	// synchronous by construction.
	Async bool

	// ModelGate, when non-nil, bounds how many modeling/search generation
	// phases run at once across every Engine sharing the gate. The tuning
	// service hands all studies one gate so concurrent studies cannot
	// oversubscribe the machine; each engine still parallelizes internally
	// over its own Workers once it holds a slot. Tuning results never
	// depend on the gate — it only delays generation.
	ModelGate *mpx.Gate

	// Checkpoint, when non-nil, receives every completed objective
	// evaluation as it lands (mid-batch, in a scheduling-independent
	// order), making the run crash-safe: a WAL-backed Checkpointer
	// (NewCheckpoint/Resume) persists each evaluation durably and, on
	// resume, replays the log so the run continues where it was killed
	// without re-paying logged evaluations. A hook error aborts the run.
	Checkpoint Checkpoint

	// Clock overrides the wall clock behind PhaseStats (useful for tests
	// and simulation). nil means the real clock. Tuning results never read
	// it — it feeds only the timing telemetry, which is why it is the one
	// sanctioned wall-clock touchpoint in this package (gptlint R2).
	Clock func() time.Time

	// FitModelCoeffs enables the Section 3.3 "performance model update
	// phase": before each modeling phase, the model coefficients are
	// re-fitted against observed data. Requires Problem.Model.
	FitModelCoeffs bool

	// fitterOverride substitutes the surrogate backend directly, bypassing
	// the registry. Test-only seam: the latency tests inject a deliberately
	// slow fitter to prove Suggest stays off the modeling path.
	fitterOverride surrogate.Fitter
}

// PriorSample is one pre-existing evaluation used to warm-start MLA.
type PriorSample struct {
	Task []float64
	X    []float64
	Y    []float64 // γ outputs
}

// ModelSnapshot is one fitted surrogate in serialized form: which backend
// produced it, which objective it modeled, and the backend's MarshalBinary
// payload. Snapshots flow out of a run through Options.Transfer and into a
// later run through Options.WarmStart.
type ModelSnapshot struct {
	Kind      string // surrogate backend ("lcm", "gp-indep", "rf")
	Objective int    // objective index the model was fitted for
	Data      []byte // backend-specific serialized model
}

// ModelStore receives fitted-model snapshots from a run (Options.Transfer).
// SaveModel is always called on the engine's coordinating goroutine, after
// the modeling phase that produced the snapshot.
type ModelStore interface {
	SaveModel(snap ModelSnapshot) error
}

func (o *Options) defaults() {
	if o.Acquisition == "" {
		o.Acquisition = "ei"
	}
	if o.LCBKappa <= 0 {
		o.LCBKappa = 2
	}
	if o.BatchEvals <= 0 {
		o.BatchEvals = 1
	}
	if o.EpsTot <= 1 {
		o.EpsTot = 2
	}
	if o.InitFraction <= 0 || o.InitFraction >= 1 {
		o.InitFraction = 0.5
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.Repeats <= 0 {
		o.Repeats = 1
	}
	if o.NumStarts <= 0 {
		o.NumStarts = 4
	}
	if o.ModelMaxIter <= 0 {
		o.ModelMaxIter = 100
	}
	if o.MOBatch <= 0 {
		o.MOBatch = 1
	}
	if o.MOGenerations <= 0 {
		o.MOGenerations = 40
	}
	if o.MOPopSize <= 0 {
		o.MOPopSize = 40
	}
}

// now reads the injected clock, falling back to the real one. The fallback
// is the single wall-clock read in the numeric core; everything in this
// package times phases through it.
func (o *Options) now() time.Time {
	if o.Clock != nil {
		return o.Clock()
	}
	return time.Now() //gptlint:ignore no-wallclock PhaseStats telemetry only; tuning results never depend on the clock
}

// since is time.Since against the injected clock.
func (o *Options) since(t0 time.Time) time.Duration { return o.now().Sub(t0) }

// PhaseStats records wall time per MLA phase, matching the paper's Table 3
// breakdown ("total, objective, modeling, search").
type PhaseStats struct {
	Objective   time.Duration // application / simulator evaluations
	Modeling    time.Duration // LCM hyperparameter learning + factorization
	Search      time.Duration // acquisition maximization
	ModelUpdate time.Duration // Section 3.3 coefficient fitting
	Total       time.Duration
	NumEvals    int // objective evaluations performed (incl. repeats)
}

// Add accumulates other into s.
func (s *PhaseStats) Add(other PhaseStats) {
	s.Objective += other.Objective
	s.Modeling += other.Modeling
	s.Search += other.Search
	s.ModelUpdate += other.ModelUpdate
	s.Total += other.Total
	s.NumEvals += other.NumEvals
}

// TaskResult holds everything observed for one task, in evaluation order
// (so best-so-far "anytime performance" traces can be reconstructed, as
// needed by the Table 4 stability metric).
type TaskResult struct {
	Task []float64   // native task parameters
	X    [][]float64 // native configurations, in evaluation order
	Y    [][]float64 // γ outputs per configuration

	BestIdx int // index minimizing objective 0 (single-objective runs)
}

// Best returns the best configuration and outputs for objective 0.
func (t *TaskResult) Best() (x []float64, y []float64) {
	return t.X[t.BestIdx], t.Y[t.BestIdx]
}

// BestTrace returns the best objective-0 value observed after each
// evaluation: trace[j] = min(Y[0..j][0]).
func (t *TaskResult) BestTrace() []float64 {
	trace := make([]float64, len(t.Y))
	best := t.Y[0][0]
	for j, y := range t.Y {
		if y[0] < best {
			best = y[0]
		}
		trace[j] = best
	}
	return trace
}

// ParetoFront returns the indices of the non-dominated observations (for
// multi-objective runs).
func (t *TaskResult) ParetoFront() []int {
	var front []int
	for i := range t.Y {
		dominated := false
		for j := range t.Y {
			if i == j {
				continue
			}
			if dominatesMin(t.Y[j], t.Y[i]) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, i)
		}
	}
	return front
}

func dominatesMin(a, b []float64) bool {
	strict := false
	for i := range a {
		if a[i] > b[i] {
			return false
		}
		if a[i] < b[i] {
			strict = true
		}
	}
	return strict
}

// Result is the outcome of an MLA run across all δ tasks.
type Result struct {
	Tasks []TaskResult
	Stats PhaseStats
}
