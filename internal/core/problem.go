// Package core implements GPTune's Multitask Learning Autotuning engine:
// Algorithm 1 (Bayesian-optimization-based single-objective MLA), Algorithm 2
// (its multi-objective extension), and the incorporation of coarse
// performance models from Section 3.3. The engine records per-phase wall
// times (sampling/objective, modeling, search) so the paper's Table 3
// breakdowns and Fig. 3 scaling study can be regenerated.
package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/space"
)

// Objective evaluates the application at native task parameters t and native
// tuning configuration x, returning the γ output metrics (all minimized).
// For real HPC codes this launches the application (paper Section 4.2); in
// this reproduction it calls an application simulator.
type Objective func(task, x []float64) ([]float64, error)

// PerfModel is a coarse analytical performance model ỹ(t, x) with its own
// tunable coefficients (Section 3.3). Model outputs are appended to the
// tuning-parameter vector as extra kernel features, enriching the LCM input
// space from β to β+γ̃ dimensions, and the coefficients can be re-fitted
// from observed samples before each modeling phase ("performance model
// update phase").
type PerfModel struct {
	// Dim is γ̃, the number of model outputs per evaluation.
	Dim int
	// Coeffs holds the model's hyperparameters (e.g. t_flop, t_msg, t_vol in
	// Eq. 7). May be empty for coefficient-free models.
	Coeffs []float64
	// Eval returns the γ̃ model outputs for native task t and native config x.
	Eval func(task, x, coeffs []float64) []float64
	// FitCoeffs, when non-nil, re-estimates Coeffs from observed samples
	// (tasks[i], xs[i]) with measured first-objective values ys[i]. When nil
	// and len(Coeffs) > 0, a built-in least-squares fit (Nelder–Mead on MSE
	// against the first model output) is used.
	FitCoeffs func(tasks, xs [][]float64, ys []float64, current []float64) []float64
}

// Problem is a complete GPTune tuning problem: the three spaces of Section 2
// plus the black-box objective and an optional performance model.
type Problem struct {
	Name    string
	Tasks   *space.Space       // IS: task parameter input space
	Tuning  *space.Space       // PS: tuning parameter space
	Outputs *space.OutputSpace // OS: output space (γ objectives)

	Objective Objective
	Model     *PerfModel // optional (Section 3.3)
}

// Validate reports structural problems in the problem definition.
func (p *Problem) Validate() error {
	if err := p.validateForEngine(); err != nil {
		return err
	}
	if p.Objective == nil {
		return errors.New("core: problem needs an objective")
	}
	return nil
}

// validateForEngine is Validate minus the Objective requirement: an
// ask/tell Engine's evaluations are performed by the caller (for example
// gptuned's HTTP clients), so no in-process objective is needed.
func (p *Problem) validateForEngine() error {
	if p.Tasks == nil || p.Tuning == nil {
		return errors.New("core: problem needs task and tuning spaces")
	}
	if p.Outputs == nil || p.Outputs.Dim() == 0 {
		return errors.New("core: problem needs at least one output")
	}
	if p.Model != nil {
		if p.Model.Dim <= 0 || p.Model.Eval == nil {
			return errors.New("core: performance model needs Dim > 0 and Eval")
		}
	}
	return nil
}

// checkOutputs validates one objective evaluation result.
func (p *Problem) checkOutputs(y []float64) error {
	if len(y) != p.Outputs.Dim() {
		return fmt.Errorf("core: objective returned %d outputs, want %d", len(y), p.Outputs.Dim())
	}
	for s, v := range y {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("core: objective output %d is non-finite (%v)", s, v)
		}
	}
	return nil
}
