package core

import (
	"runtime"
	"testing"

	"repro/internal/surrogate"
)

// runRefit runs the analytical benchmark with the given worker count,
// GOMAXPROCS and extra option tweaks, returning the full tuning history.
func runRefit(t *testing.T, workers, procs int, tweak func(*Options)) *Result {
	t.Helper()
	prev := runtime.GOMAXPROCS(procs)
	defer runtime.GOMAXPROCS(prev)
	opts := Options{EpsTot: 12, Seed: 42, Workers: workers}
	if tweak != nil {
		tweak(&opts)
	}
	res, err := Run(analyticalProblem(), [][]float64{{0}, {1.5}, {3}}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestRefitEveryOneMatchesDefaultBitwise pins the compatibility contract:
// RefitEvery ≤ 1 is not a near-miss of the historical behavior, it IS the
// historical behavior — same fits, same seeds, same history, bitwise.
func TestRefitEveryOneMatchesDefaultBitwise(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	base := runRefit(t, 4, procs, nil)
	one := runRefit(t, 4, procs, func(o *Options) { o.RefitEvery = 1 })
	requireBitwiseEqualHistories(t, "RefitEvery=1 vs default", base, one)
}

// TestRefitEveryDeterministicAcrossWorkers extends the worker-count
// determinism contract to incremental modeling: with RefitEvery > 1 the
// appended factor extensions (lcm) and sufficient-statistic updates (sgp)
// must leave the tuning history bitwise independent of parallelism.
func TestRefitEveryDeterministicAcrossWorkers(t *testing.T) {
	for _, kind := range []string{surrogate.KindLCM, surrogate.KindSGP} {
		tweak := func(o *Options) {
			o.Surrogate = kind
			o.RefitEvery = 3
		}
		serial := runRefit(t, 1, 1, tweak)
		parallel := runRefit(t, 8, 8, tweak)
		requireBitwiseEqualHistories(t, kind+" RefitEvery=3 workers 1 vs 8", serial, parallel)
	}
}

// countStore counts transfer snapshots; incremental generations must not
// produce any (the hyperparameters haven't moved since the refit that
// already saved them).
type countStore struct{ saves int }

func (c *countStore) SaveModel(ModelSnapshot) error {
	c.saves++
	return nil
}

// TestRefitEveryCadence observes the refit schedule through the transfer
// sink: the 12-eval benchmark runs 6 search generations, so RefitEvery=3
// must refit (and snapshot) on generations 1 and 4 only, while the default
// snapshots all 6. It also pins that the incremental path genuinely runs —
// if appends silently fell back to refits, the counts would match.
func TestRefitEveryCadence(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	every := &countStore{}
	runRefit(t, 4, procs, func(o *Options) { o.Transfer = every })
	inc := &countStore{}
	runRefit(t, 4, procs, func(o *Options) { o.Transfer = inc; o.RefitEvery = 3 })
	if every.saves != 6 {
		t.Fatalf("default run saved %d snapshots, want 6", every.saves)
	}
	if inc.saves != 2 {
		t.Fatalf("RefitEvery=3 run saved %d snapshots, want 2 (generations 1 and 4)", inc.saves)
	}
	// rf has no incremental path: every generation refits and snapshots.
	rf := &countStore{}
	runRefit(t, 4, procs, func(o *Options) {
		o.Transfer = rf
		o.RefitEvery = 3
		o.Surrogate = surrogate.KindRF
	})
	if rf.saves != 6 {
		t.Fatalf("rf RefitEvery=3 run saved %d snapshots, want 6 (no incremental support)", rf.saves)
	}
}
