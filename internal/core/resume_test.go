package core

import (
	"errors"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/space"
)

func TestNewCheckpointRefusesExistingRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	cp, err := NewCheckpoint(path, CheckpointOptions{Problem: "analytical"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(analyticalProblem(), [][]float64{{0}}, Options{EpsTot: 4, Seed: 1, Checkpoint: cp}); err != nil {
		t.Fatal(err)
	}
	cp.Close()
	if _, err := NewCheckpoint(path, CheckpointOptions{Problem: "analytical"}); err == nil {
		t.Fatal("NewCheckpoint overwrote an existing log")
	}
	// Resume of a *completed* run replays everything and pays nothing;
	// covered exhaustively by TestCrashResumeReproducesRunBitwise (k=total).
}

func TestResumeRejectsWrongProblem(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	cp, err := NewCheckpoint(path, CheckpointOptions{Problem: "analytical"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(analyticalProblem(), [][]float64{{0}}, Options{EpsTot: 4, Seed: 1, Checkpoint: cp}); err != nil {
		t.Fatal(err)
	}
	cp.Close()
	if _, err := Resume(path, CheckpointOptions{Problem: "other"}); err == nil {
		t.Fatal("Resume accepted a log from a different problem")
	}
}

// A resumed run with a different seed walks a different trajectory; the
// replay verifier must detect the divergence instead of silently growing a
// log that no longer matches any single run.
func TestResumeDivergenceDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	cp, err := NewCheckpoint(path, CheckpointOptions{Problem: "analytical"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(analyticalProblem(), [][]float64{{0}}, Options{EpsTot: 6, Seed: 1, Checkpoint: cp}); err != nil {
		t.Fatal(err)
	}
	cp.Close()
	rcp, err := Resume(path, CheckpointOptions{Problem: "analytical"})
	if err != nil {
		t.Fatal(err)
	}
	defer rcp.Close()
	_, err = Run(analyticalProblem(), [][]float64{{0}}, Options{EpsTot: 6, Seed: 999, Checkpoint: rcp})
	if err == nil || !strings.Contains(err.Error(), "diverged") {
		t.Fatalf("divergent resume not detected: %v", err)
	}
}

// Prior rebuilds Options.Prior-style samples from the log for warm-starting
// a different run from a checkpoint's data.
func TestCheckpointPrior(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	cp, err := NewCheckpoint(path, CheckpointOptions{Problem: "analytical"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(analyticalProblem(), [][]float64{{0}}, Options{EpsTot: 4, Seed: 1, Checkpoint: cp})
	if err != nil {
		t.Fatal(err)
	}
	cp.Close()
	rcp, err := Resume(path, CheckpointOptions{Problem: "analytical"})
	if err != nil {
		t.Fatal(err)
	}
	defer rcp.Close()
	prior := rcp.Prior()
	if len(prior) != len(res.Tasks[0].X) {
		t.Fatalf("Prior has %d samples, run produced %d", len(prior), len(res.Tasks[0].X))
	}
	for i, ps := range prior {
		if math.Float64bits(ps.X[0]) != math.Float64bits(res.Tasks[0].X[i][0]) ||
			math.Float64bits(ps.Y[0]) != math.Float64bits(res.Tasks[0].Y[i][0]) {
			t.Fatalf("prior sample %d does not match history: %+v", i, ps)
		}
	}
}

// recordingCheckpoint keeps records in memory (order matters).
type recordingCheckpoint struct{ recs []CheckpointRecord }

func (rc *recordingCheckpoint) Eval(rec CheckpointRecord) error {
	rc.recs = append(rc.recs, rec)
	return nil
}
func (rc *recordingCheckpoint) Lookup(task, requested []float64) ([]float64, []float64, bool) {
	return nil, nil, false
}

// Every evaluation of a run must be streamed to the hook, tagged with its
// phase, including multi-objective iterations.
func TestCheckpointStreamsEveryPhase(t *testing.T) {
	rc := &recordingCheckpoint{}
	res, err := Run(analyticalProblem(), [][]float64{{0}, {2}}, Options{EpsTot: 6, Seed: 3, Workers: 4, Checkpoint: rc})
	if err != nil {
		t.Fatal(err)
	}
	wantTotal := 0
	for _, tr := range res.Tasks {
		wantTotal += len(tr.X)
	}
	if len(rc.recs) != wantTotal {
		t.Fatalf("hook saw %d evaluations, run produced %d", len(rc.recs), wantTotal)
	}
	phases := map[string]int{}
	for _, r := range rc.recs {
		phases[r.Phase]++
		if len(r.Task) != 1 || len(r.X) != 1 || len(r.Y) != 1 || len(r.Requested) != 1 {
			t.Fatalf("malformed record: %+v", r)
		}
	}
	if phases["init"] == 0 || phases["search"] == 0 || phases["init"]+phases["search"] != wantTotal {
		t.Fatalf("phase breakdown wrong: %v", phases)
	}

	mo := &recordingCheckpoint{}
	p := &Problem{
		Name:    "mo",
		Tasks:   space.MustNew(space.NewReal("t", 0, 1)),
		Tuning:  space.MustNew(space.NewReal("x", 0, 1)),
		Outputs: space.NewOutputSpace("f1", "f2"),
		Objective: func(task, x []float64) ([]float64, error) {
			return []float64{x[0], 1 - x[0]}, nil
		},
	}
	if _, err := Run(p, [][]float64{{0}}, Options{EpsTot: 6, Seed: 4, Checkpoint: mo}); err != nil {
		t.Fatal(err)
	}
	moPhases := map[string]int{}
	for _, r := range mo.recs {
		moPhases[r.Phase]++
	}
	if moPhases["mo"] == 0 {
		t.Fatalf("multi-objective iterations not tagged: %v", moPhases)
	}
}

// Satellite regression: searchOne used to append the per-task incumbent
// seed in place to the caller-shared Options.Search.Seeds backing array.
// With spare capacity and concurrent tasks this was a data race (caught by
// -race) and bled one task's incumbent into another's swarm. The slice —
// including its spare capacity — must come back untouched.
func TestSearchSeedsNotMutatedAcrossTasks(t *testing.T) {
	seeds := make([][]float64, 1, 8) // spare capacity is the trap
	seeds[0] = []float64{0.5}
	opts := Options{EpsTot: 8, Seed: 7, Workers: 4}
	opts.Search.Seeds = seeds
	if _, err := Run(analyticalProblem(), [][]float64{{0}, {1}, {2}, {3}}, opts); err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 1 || seeds[0][0] != 0.5 {
		t.Fatalf("caller's Seeds mutated: %v", seeds)
	}
	if spare := seeds[:2]; spare[1] != nil {
		t.Fatalf("run wrote into the caller's spare capacity: %v", spare[1])
	}
}

// Satellite regression: the initial-sampling retry RNG was seeded per task
// only, so two failing configurations of one task drew the same replacement
// point. With the job index in the hash, every retry draws a distinct one.
func TestRetryDrawsDistinctWithinTask(t *testing.T) {
	p := analyticalProblem()
	inner := p.Objective
	calls := 0
	const epsTot = 8 // init phase: 4 jobs, all for the single task
	p.Objective = func(task, x []float64) ([]float64, error) {
		calls++
		// Workers=1 runs jobs in order: odd-numbered calls during the init
		// phase are first attempts and fail; the retry (even call) succeeds.
		if calls <= epsTot && calls%2 == 1 {
			return nil, errors.New("flaky")
		}
		return inner(task, x)
	}
	res, err := Run(p, [][]float64{{0}}, Options{EpsTot: epsTot, Seed: 11, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	initX := res.Tasks[0].X[:epsTot/2] // the init-phase samples, all retries
	for i := range initX {
		for j := i + 1; j < len(initX); j++ {
			if math.Float64bits(initX[i][0]) == math.Float64bits(initX[j][0]) {
				t.Fatalf("retry draws collided: jobs %d and %d both got %v (task-only retry seed)", i, j, initX[i][0])
			}
		}
	}
}
