package core

import (
	"math"
	"path/filepath"
	"testing"

	"repro/internal/histdb"
	"repro/internal/surrogate"
)

// TestSurrogateBackendParitySingleTask is the cross-backend parity contract
// (run explicitly in CI): with a single task and a single objective there is
// no cross-task structure for the LCM to exploit, so the "lcm" and
// "gp-indep" backends must produce bitwise-identical tuning histories — the
// independent-GP backend hands task 0 exactly the same seed, the same
// (clamped) Q, and therefore the same optimizer trajectory.
func TestSurrogateBackendParitySingleTask(t *testing.T) {
	run := func(kind string) *Result {
		res, err := Run(analyticalProblem(), [][]float64{{1.5}}, Options{
			EpsTot:    10,
			Seed:      42,
			Workers:   4,
			Surrogate: kind,
		})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		return res
	}
	requireBitwiseEqualHistories(t, "lcm vs gp-indep", run(surrogate.KindLCM), run(surrogate.KindGPIndep))
}

// TestSurrogateBackendsDeterministicAcrossWorkers extends the worker-count
// determinism contract to every backend selectable through Options.Surrogate.
func TestSurrogateBackendsDeterministicAcrossWorkers(t *testing.T) {
	for _, kind := range surrogate.Kinds() {
		run := func(workers int) *Result {
			res, err := Run(analyticalProblem(), [][]float64{{0}, {3}}, Options{
				EpsTot:    8,
				Seed:      7,
				Workers:   workers,
				Surrogate: kind,
			})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", kind, workers, err)
			}
			return res
		}
		requireBitwiseEqualHistories(t, kind+" workers 1 vs 8", run(1), run(8))
	}
}

// TestUnknownSurrogateRejected: selection errors surface at engine
// construction, before any evaluation is spent.
func TestUnknownSurrogateRejected(t *testing.T) {
	_, err := NewEngine(analyticalProblem(), [][]float64{{0}}, Options{EpsTot: 4, Surrogate: "kriging"})
	if err == nil {
		t.Fatal("unknown surrogate accepted")
	}
}

// TestModelSnapshotTransferThroughWAL is the end-to-end transfer contract:
// a checkpointed run with Options.Transfer appends fitted-model snapshots to
// its WAL; a later session loads them back and uses them as the modeling
// phase's hyperparameter warm start, changing (and still determinizing) its
// tuning trajectory.
func TestModelSnapshotTransferThroughWAL(t *testing.T) {
	tasks := [][]float64{{1.5}}
	dir := t.TempDir()
	path := filepath.Join(dir, "hist.json")

	// Session 1: tune with the WAL as both checkpoint and transfer sink.
	cp, err := NewCheckpoint(path, CheckpointOptions{Problem: "analytical"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(analyticalProblem(), tasks, opts1func(cp, cp)); err != nil {
		t.Fatal(err)
	}
	logged := cp.Logged()
	if logged != 8 {
		t.Fatalf("Logged() = %d evaluations, want 8 (model records must not count)", logged)
	}
	if err := cp.Close(); err != nil {
		t.Fatal(err)
	}

	// The log must still verify, and reopening it must surface the
	// snapshots: EpsTot 8 → 4 init + 4 search generations → 4 model records.
	if _, verr := histdb.Verify(path); verr != nil {
		t.Fatalf("verify: %v", verr)
	}
	rcp, err := Resume(path, CheckpointOptions{Problem: "analytical"})
	if err != nil {
		t.Fatal(err)
	}
	snaps := rcp.ModelSnapshots()
	if len(snaps) != 4 {
		t.Fatalf("got %d model snapshots, want 4 (one per search generation)", len(snaps))
	}
	for _, s := range snaps {
		if s.Kind != surrogate.KindLCM || s.Objective != 0 || len(s.Data) == 0 {
			t.Fatalf("bad snapshot: kind=%q objective=%d len=%d", s.Kind, s.Objective, len(s.Data))
		}
	}

	// The resumed session must replay bitwise even though model records sit
	// between the logged evaluations (they are filtered from replay, and the
	// re-fitted models are re-saved without disturbing Eval verification).
	var baseCalls int64
	baseline, err := Run(countingProblem(&baseCalls), tasks, opts1func(nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	var resumedCalls int64
	resumed, err := Run(countingProblem(&resumedCalls), tasks, opts1func(rcp, rcp))
	if err != nil {
		t.Fatalf("resumed run failed: %v", err)
	}
	requireBitwiseEqualHistories(t, "resume with model records", baseline, resumed)
	if resumedCalls != 0 {
		t.Fatalf("resumed run re-paid %d objective calls", resumedCalls)
	}
	if got := rcp.Logged(); got != 8 {
		t.Fatalf("resumed Logged() = %d, want 8", got)
	}
	if err := rcp.Close(); err != nil {
		t.Fatal(err)
	}

	// Session 2 (fresh seed, no checkpoint): the last snapshot warm-starts
	// every modeling-phase fit. The warm-started session must be
	// deterministic, and must actually diverge from the cold session — the
	// seeded L-BFGS start lands the surrogate elsewhere, moving the search.
	warmStart := []ModelSnapshot{snaps[len(snaps)-1]}
	session2 := func(warm []ModelSnapshot) *Result {
		res, err := Run(analyticalProblem(), tasks, Options{
			EpsTot: 8, Seed: 1, Workers: 2,
			NumStarts: 1, ModelMaxIter: 3,
			WarmStart: warm,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	cold := session2(nil)
	warm := session2(warmStart)
	warm2 := session2(warmStart)
	requireBitwiseEqualHistories(t, "warm-started session repeatability", warm, warm2)
	diverged := false
	for i := range warm.Tasks[0].X {
		for d := range warm.Tasks[0].X[i] {
			if math.Float64bits(warm.Tasks[0].X[i][d]) != math.Float64bits(cold.Tasks[0].X[i][d]) {
				diverged = true
			}
		}
	}
	if !diverged {
		t.Fatal("warm start had no effect on the tuning trajectory")
	}
}

// opts1func rebuilds session 1's options with a given checkpoint/transfer
// pair (the Options literal must match opts1 exactly for bitwise replay).
func opts1func(cp Checkpoint, store ModelStore) Options {
	return Options{EpsTot: 8, Seed: 42, Workers: 2, Checkpoint: cp, Transfer: store}
}
