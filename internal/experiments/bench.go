package experiments

import (
	"fmt"
	"io"

	"repro/internal/bench"
	_ "repro/internal/bench/all" // full scenario catalog
	"repro/internal/core"
)

// scenarioProblem resolves a problem through the workload registry — the
// experiments' single way of obtaining a shipped problem. Like the rest of
// the experiment construction paths, it panics on misconfiguration (the
// names and parameters here are statically known-good).
func scenarioProblem(name string, p bench.Params) *core.Problem {
	sc, err := bench.Get(name)
	if err != nil {
		panic(err)
	}
	prob, err := sc.Problem(p)
	if err != nil {
		panic(err)
	}
	return prob
}

// BenchRegress runs the full MLA loop on every registered scenario at one
// fixed budget and seed — the per-scenario regression table EXPERIMENTS.md
// tracks across PRs.
func BenchRegress(cfg bench.RegressConfig) []bench.RegressRow {
	var rows []bench.RegressRow
	for _, s := range bench.All() {
		rs, err := bench.Regress(s, cfg)
		if err != nil {
			panic(err)
		}
		rows = append(rows, rs...)
	}
	return rows
}

// PrintBench writes the regression table.
func PrintBench(w io.Writer, rows []bench.RegressRow) {
	fmt.Fprintf(w, "Workload-registry regression: best found by MLA at a fixed budget vs known optimum\n")
	fmt.Fprintf(w, "%-15s %6s  %13s  %13s  %8s  task\n", "scenario", "evals", "best", "optimum", "gap")
	for _, r := range rows {
		opt, gap := "-", "-"
		if r.HasOptimum {
			opt = fmt.Sprintf("%13.6g", r.Optimum)
			gap = fmt.Sprintf("%+.2f%%", 100*(r.Best-r.Optimum)/maxAbs(r.Optimum))
		}
		fmt.Fprintf(w, "%-15s %6d  %13.6g  %13s  %8s  %s\n",
			r.Scenario, r.Evals, r.Best, opt, gap, r.Task)
	}
}

func maxAbs(v float64) float64 {
	if v < 0 {
		return -v
	}
	if v == 0 {
		return 1
	}
	return v
}
