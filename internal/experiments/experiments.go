// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6) on the simulated substrates. Each experiment has a
// Run function returning structured rows/series plus a printer producing the
// paper-style summary. Scales default to the reduced sizes discussed in
// DESIGN.md/EXPERIMENTS.md (the paper's own artifact likewise provides
// "*_exp" small-scale variants for personal computers).
package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/tuners"
	"repro/internal/tuners/hpbandster"
	"repro/internal/tuners/opentuner"
)

// baselines returns the Section 6.6 comparators (OpenTuner- and
// HpBandSter-style tuners).
func baselines() []tuners.Tuner {
	return []tuners.Tuner{opentuner.Tuner{}, hpbandster.Tuner{}}
}

// bestOf returns the best objective-0 value of a task result.
func bestOf(tr *core.TaskResult) float64 {
	_, y := tr.Best()
	return y[0]
}

// stability computes the paper's Table 4 anytime-performance metric for one
// task: mean over j of (best-so-far after j evaluations) divided by the best
// value any tuner found for that task.
func stability(tr *core.TaskResult, bestAnyTuner float64) float64 {
	trace := tr.BestTrace()
	sum := 0.0
	for _, v := range trace {
		sum += v
	}
	return sum / float64(len(trace)) / bestAnyTuner
}

// fprintf writes to w, ignoring nil writers.
func fprintf(w io.Writer, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, format, args...)
	}
}

// geoMean returns the geometric mean of positive values.
func geoMean(vals []float64) float64 {
	if len(vals) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, v := range vals {
		s += math.Log(v)
	}
	return math.Exp(s / float64(len(vals)))
}

// countAtLeast returns how many values are ≥ threshold.
func countAtLeast(vals []float64, threshold float64) int {
	n := 0
	for _, v := range vals {
		if v >= threshold {
			n++
		}
	}
	return n
}

func maxOf(vals []float64) float64 {
	m := math.Inf(-1)
	for _, v := range vals {
		if v > m {
			m = v
		}
	}
	return m
}
