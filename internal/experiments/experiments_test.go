package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// The experiment suite is exercised at very small scales: these tests check
// structural invariants of each experiment's output, not paper-scale
// numbers (EXPERIMENTS.md records those from cmd/experiments runs).

func TestFig2CurveShapes(t *testing.T) {
	curves := Fig2(101)
	if len(curves) != 4 {
		t.Fatalf("curves = %d", len(curves))
	}
	for _, c := range curves {
		if len(c.X) != 101 || len(c.Y) != 101 {
			t.Fatalf("t=%v: %d/%d points", c.T, len(c.X), len(c.Y))
		}
		if c.MinY >= 1 {
			t.Fatalf("t=%v: reported min %v above plateau", c.T, c.MinY)
		}
		// The tabulated minimum must be ≤ every sampled point.
		for i, y := range c.Y {
			if y < c.MinY-1e-9 {
				t.Fatalf("t=%v: sample %d (%v) below reported min %v", c.T, i, y, c.MinY)
			}
		}
	}
	var buf bytes.Buffer
	PrintFig2(&buf, curves)
	if !strings.Contains(buf.String(), "global min") {
		t.Fatalf("print output missing expected content")
	}
}

func TestFig3TimingsAndScaling(t *testing.T) {
	rows := Fig3([]int{2, 4}, 4, 1)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Modeling <= 0 || r.Search <= 0 {
			t.Fatalf("non-positive phase time: %+v", r)
		}
		if r.KernelN != 20*r.EpsTot {
			t.Fatalf("kernel size %d for eps=%d", r.KernelN, r.EpsTot)
		}
	}
	// Larger eps must cost more modeling time at the same worker count.
	if rows[2].Modeling < rows[0].Modeling {
		t.Fatalf("modeling time did not grow with eps: %v then %v", rows[0].Modeling, rows[2].Modeling)
	}
	var buf bytes.Buffer
	PrintFig3(&buf, rows)
	if !strings.Contains(buf.String(), "speedups") {
		t.Fatalf("print output missing speedups")
	}
}

func TestFig4AnalyticalStructure(t *testing.T) {
	rows := Fig4Analytical(3, []int{6}, 2, 4)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if math.IsNaN(r.RatioNoModel) || r.WithModel > 2.5 || r.WithoutModel > 2.5 {
			t.Fatalf("implausible row %+v", r)
		}
		if r.TrueMin > r.WithModel+1e-9 && r.TrueMin > r.WithoutModel+1e-9 {
			continue // true min below both, as expected
		}
	}
	var buf bytes.Buffer
	PrintFig4Analytical(&buf, rows)
	if !strings.Contains(buf.String(), "ratio>=1") {
		t.Fatalf("print output missing ratio counts")
	}
}

func TestFig5QRStructure(t *testing.T) {
	r := Fig5QR(20, 3, 4)
	if len(r.Rows) != 11 { // 1 single + 10 multitask
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Best <= 0 || row.Worst < row.Best {
			t.Fatalf("bad row %+v", row)
		}
	}
	// Multitask spends less simulated application time than single-task on
	// the big matrix with the same total budget (Table 3's headline).
	if r.MultiSimAppTime >= r.SingleSimAppTime {
		t.Fatalf("multitask sim time %v not below single %v", r.MultiSimAppTime, r.SingleSimAppTime)
	}
	var buf bytes.Buffer
	PrintFig5QR(&buf, r)
	if !strings.Contains(buf.String(), "Table 3") {
		t.Fatalf("print output missing Table 3 block")
	}
}

func TestFig5EVStructure(t *testing.T) {
	r := Fig5EV(12, 4, 4)
	if len(r.SingleEps) != 2 || len(r.Rows) != 18 {
		t.Fatalf("shapes: %d eps, %d rows", len(r.SingleEps), len(r.Rows))
	}
	for i := range r.SingleEps {
		// Best over all samples cannot exceed best over the first half.
		if r.SingleBestFull[i] > r.SingleBestHalf[i]+1e-9 {
			t.Fatalf("full best worse than half best: %+v", r)
		}
	}
	// Runtime should grow with m across multitask rows (min over the two
	// eps settings per m).
	bestByM := map[float64]float64{}
	for _, row := range r.Rows {
		m := row.Task[0]
		if v, ok := bestByM[m]; !ok || row.Best < v {
			bestByM[m] = row.Best
		}
	}
	if bestByM[7000] <= bestByM[3000] {
		t.Fatalf("m=7000 best (%v) not slower than m=3000 (%v)", bestByM[7000], bestByM[3000])
	}
}

func TestTable3MHDStructure(t *testing.T) {
	// ε_single=16 keeps the paper's 4:1 budget ratio intact (the multitask
	// budget clamps at 4).
	rows := Table3MHD(16, 5, 4)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.SingleMin <= 0 || r.MultiMin <= 0 {
			t.Fatalf("bad minima: %+v", r)
		}
		// The headline property: multitask total application time is lower.
		if r.MultiSimTime >= r.SingleSimTime {
			t.Fatalf("%s: multitask total %v not below single %v", r.App, r.MultiSimTime, r.SingleSimTime)
		}
	}
	var buf bytes.Buffer
	PrintTable3MHD(&buf, rows)
	if !strings.Contains(buf.String(), "nimrod") {
		t.Fatalf("print output missing nimrod row")
	}
}

func TestFig6Structure(t *testing.T) {
	rows := Fig6QR(3, 6, 6, 4)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.GPTune <= 0 {
			t.Fatalf("bad gptune best: %+v", r)
		}
		if len(r.Ratios) != 2 {
			t.Fatalf("expected 2 baselines, got %v", r.Ratios)
		}
		for name, ratio := range r.Ratios {
			if ratio <= 0 || math.IsNaN(ratio) {
				t.Fatalf("%s ratio %v", name, ratio)
			}
		}
	}
	var buf bytes.Buffer
	PrintFig6(&buf, "test", rows)
	if !strings.Contains(buf.String(), "beats or ties") {
		t.Fatalf("print output missing win summary")
	}
}

func TestTable4Structure(t *testing.T) {
	rows := Table4(3, []int{6}, []int{1}, 7, 4)
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	for name, win := range r.WinTask {
		if win < 0 || win > 1 {
			t.Fatalf("%s win fraction %v", name, win)
		}
	}
	for name, st := range r.Stability {
		if st < 1-1e-9 {
			t.Fatalf("%s stability %v below 1 (impossible: traces ≥ best)", name, st)
		}
	}
	var buf bytes.Buffer
	PrintTable4(&buf, rows)
	if !strings.Contains(buf.String(), "WinTask") {
		t.Fatalf("print output missing legend")
	}
}

func TestFig7SingleStructure(t *testing.T) {
	r := Fig7Single(10, 8, 4)
	if len(r.Front) == 0 {
		t.Fatalf("empty front")
	}
	// Front must be mutually non-dominated.
	for i, a := range r.Front {
		for j, b := range r.Front {
			if i != j && a.Time <= b.Time && a.Memory <= b.Memory &&
				(a.Time < b.Time || a.Memory < b.Memory) {
				t.Fatalf("front point %d dominates %d", i, j)
			}
		}
	}
	if r.Default.Time <= 0 || r.Default.Memory <= 0 {
		t.Fatalf("bad default point: %+v", r.Default)
	}
	var buf bytes.Buffer
	PrintFig7Single(&buf, r)
	if !strings.Contains(buf.String(), "Table 5") {
		t.Fatalf("print missing Table 5")
	}
}

func TestRegistryComplete(t *testing.T) {
	specs := All()
	want := []string{"Fig2", "Fig3", "Fig4a", "Fig4b", "Fig5a", "Fig5b", "Tab3", "Fig6a", "Fig6b", "Tab4", "Fig7a", "Fig7b", "Bench"}
	if len(specs) != len(want) {
		t.Fatalf("registry has %d specs, want %d", len(specs), len(want))
	}
	for i, id := range want {
		if specs[i].ID != id {
			t.Fatalf("spec %d = %s, want %s", i, specs[i].ID, id)
		}
		if Find(id) == nil {
			t.Fatalf("Find(%s) = nil", id)
		}
	}
	if Find("nope") != nil {
		t.Fatalf("Find accepted unknown id")
	}
}

func TestHelpers(t *testing.T) {
	if g := geoMean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("geoMean = %v", g)
	}
	if !math.IsNaN(geoMean(nil)) {
		t.Fatalf("geoMean(nil) should be NaN")
	}
	if countAtLeast([]float64{0.5, 1, 2}, 1) != 2 {
		t.Fatalf("countAtLeast wrong")
	}
	if maxOf([]float64{1, 3, 2}) != 3 {
		t.Fatalf("maxOf wrong")
	}
}
