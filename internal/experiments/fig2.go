package experiments

import (
	"io"

	"repro/internal/apps/analytical"
)

// Fig2Curve is one task's objective curve y(t, ·) plus its global minimum.
type Fig2Curve struct {
	T    float64
	X    []float64
	Y    []float64
	MinX float64
	MinY float64
}

// Fig2 reproduces Fig. 2: the Eq. (11) objective for four task parameter
// values, with the global minimum of each marked. The paper does not state
// its four t values; we use a spread covering mild to highly oscillatory
// regimes.
func Fig2(points int) []Fig2Curve {
	if points <= 1 {
		points = 401
	}
	ts := []float64{0, 1, 2, 5}
	curves := make([]Fig2Curve, 0, len(ts))
	for _, t := range ts {
		c := Fig2Curve{T: t}
		for i := 0; i < points; i++ {
			x := float64(i) / float64(points-1)
			c.X = append(c.X, x)
			c.Y = append(c.Y, analytical.Objective(t, x))
		}
		c.MinX, c.MinY = analytical.TrueMin(t)
		curves = append(curves, c)
	}
	return curves
}

// PrintFig2 writes the per-task minima (the quantity the tuning experiments
// chase) and a coarse curve table.
func PrintFig2(w io.Writer, curves []Fig2Curve) {
	fprintf(w, "Fig 2: analytical objective y(t,x) of Eq.(11), x in [0,1]\n")
	for _, c := range curves {
		fprintf(w, "  t=%-4g  global min y=%.6f at x=%.6f\n", c.T, c.MinY, c.MinX)
	}
	fprintf(w, "  curve samples (x, y per t):\n")
	step := len(curves[0].X) / 10
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(curves[0].X); i += step {
		fprintf(w, "   x=%.2f", curves[0].X[i])
		for _, c := range curves {
			fprintf(w, "  y(t=%g)=%+.4f", c.T, c.Y[i])
		}
		fprintf(w, "\n")
	}
}
