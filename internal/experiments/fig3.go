package experiments

import (
	"io"
	"math/rand"
	"time"

	"repro/internal/gp"
	"repro/internal/mpx"
	"repro/internal/opt"

	"repro/internal/acq"
	"repro/internal/apps/analytical"
	"repro/internal/sample"
)

// Fig3Row is one (ε_tot, workers) measurement of the modeling and search
// phase times.
type Fig3Row struct {
	EpsTot   int
	Workers  int
	KernelN  int // LCM covariance dimension δ·ε
	Modeling time.Duration
	Search   time.Duration
}

// Fig3 reproduces Fig. 3: modeling- and search-phase wall time versus total
// sample count for δ=20 analytical tasks, at 1 worker and `par` workers
// (the paper uses 32 MPI processes; here goroutine workers bounded by the
// host's cores). As in the paper, the initial sample count is ε_tot−1 so
// exactly one MLA iteration (one modeling phase + one search phase) is
// timed. The paper's theoretical scalings are O(ε³δ³) for modeling and
// O(ε²δ²) for search.
func Fig3(epsList []int, par int, seed int64) []Fig3Row {
	if len(epsList) == 0 {
		epsList = []int{2, 4, 8, 16}
	}
	if par <= 1 {
		par = 8
	}
	const delta = 20
	tasks := make([][]float64, delta)
	for i := range tasks {
		tasks[i] = []float64{float64(i) * 0.5}
	}
	var rows []Fig3Row
	for _, eps := range epsList {
		for _, workers := range []int{1, par} {
			m, s := timeOneIteration(tasks, eps, workers, seed)
			rows = append(rows, Fig3Row{
				EpsTot:   eps,
				Workers:  workers,
				KernelN:  delta * eps,
				Modeling: m,
				Search:   s,
			})
		}
	}
	return rows
}

// timeOneIteration performs the sampling + one modeling/search pass
// directly (bypassing core.Run so the timing includes exactly one iteration
// at a controlled sample count).
func timeOneIteration(tasks [][]float64, eps, workers int, seed int64) (modeling, search time.Duration) {
	rng := rand.New(rand.NewSource(seed))
	data := &gp.Dataset{Dim: 1}
	for _, task := range tasks {
		xs := sample.LatinHypercube(eps, 1, rng)
		var X [][]float64
		var Y []float64
		for _, x := range xs {
			X = append(X, x)
			Y = append(Y, analytical.Objective(task[0], x[0]))
		}
		data.X = append(data.X, X)
		data.Y = append(data.Y, Y)
	}

	t0 := time.Now()
	model, err := gp.FitLCM(data, gp.FitOptions{
		Q:         2,
		NumStarts: 4,
		Workers:   workers,
		MaxIter:   4, // timing study: fixed small iteration count per start
		Seed:      seed,
	})
	modeling = time.Since(t0)
	if err != nil {
		return modeling, 0
	}

	t1 := time.Now()
	mpx.ParallelFor(len(tasks), workers, func(i int) {
		yBest := data.Y[i][0]
		for _, y := range data.Y[i] {
			if y < yBest {
				yBest = y
			}
		}
		prng := rand.New(rand.NewSource(seed + int64(i)))
		ws := model.NewPredictWorkspace()
		opt.PSO(func(u []float64) float64 {
			mu, v := model.PredictInto(ws, i, u)
			return -acq.ExpectedImprovement(mu, v, yBest)
		}, 1, opt.PSOParams{Particles: 20, MaxIter: 30}, prng)
	})
	search = time.Since(t1)
	return modeling, search
}

// PrintFig3 writes the timing table plus the parallel speedups (the paper
// reports 32× modeling and 11× search speedup at its largest size).
func PrintFig3(w io.Writer, rows []Fig3Row) {
	fprintf(w, "Fig 3: modeling/search time, delta=20 tasks, one MLA iteration\n")
	fprintf(w, "  %8s %8s %9s %14s %14s\n", "eps_tot", "workers", "kernel N", "modeling", "search")
	for _, r := range rows {
		fprintf(w, "  %8d %8d %9d %14v %14v\n", r.EpsTot, r.Workers, r.KernelN, r.Modeling, r.Search)
	}
	// Speedups per eps (serial / parallel).
	byEps := map[int][]Fig3Row{}
	for _, r := range rows {
		byEps[r.EpsTot] = append(byEps[r.EpsTot], r)
	}
	fprintf(w, "  speedups (1 worker vs parallel):\n")
	for _, r := range rows {
		if r.Workers != 1 {
			continue
		}
		for _, p := range byEps[r.EpsTot] {
			if p.Workers == 1 {
				continue
			}
			fprintf(w, "   eps=%d: modeling %.2fx, search %.2fx\n", r.EpsTot,
				float64(r.Modeling)/float64(p.Modeling),
				float64(r.Search)/float64(p.Search))
		}
	}
}
