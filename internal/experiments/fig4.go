package experiments

import (
	"io"
	"math"
	"math/rand"

	"repro/internal/apps/analytical"
	"repro/internal/apps/scalapack"
	"repro/internal/core"
	"repro/internal/opt"
	"repro/internal/sample"
)

// Fig4AnalyticalRow holds, for one (ε_tot, task) pair, the tuned minima with
// and without the noisy performance model and the true minimum.
type Fig4AnalyticalRow struct {
	EpsTot        int
	Task          float64
	WithoutModel  float64
	WithModel     float64
	TrueMin       float64
	RatioNoModel  float64 // excess-over-true-min ratio; ≥1 means the model helped
	RatioTrueOver float64 // with-model excess above the true minimum
}

// Fig4Analytical reproduces Fig. 4 (left): MLA on the analytical function
// with and without the ỹ=(1+0.1r(x))·y performance model, for δ tasks
// t = 0, 0.5, … and several sample budgets. The paper uses δ=20 and
// ε_tot ∈ {20, 40, 80}; defaults here are reduced (see EXPERIMENTS.md).
func Fig4Analytical(delta int, epsTots []int, seed int64, workers int) []Fig4AnalyticalRow {
	if delta <= 0 {
		delta = 10
	}
	if len(epsTots) == 0 {
		epsTots = []int{10, 20}
	}
	tasks := make([][]float64, delta)
	for i := range tasks {
		tasks[i] = []float64{float64(i) * 0.5}
	}
	var rows []Fig4AnalyticalRow
	for _, eps := range epsTots {
		base := scenarioProblem("analytical", nil)
		withModel := scenarioProblem("analytical", nil)
		withModel.Model = analytical.NoisyModel(0.1)

		opts := core.Options{
			EpsTot:       eps,
			Seed:         seed,
			Workers:      workers,
			Q:            2,
			NumStarts:    2,
			ModelMaxIter: 25,
			Search:       opt.PSOParams{Particles: 20, MaxIter: 30},
		}
		resBase, err := core.Run(base, tasks, opts)
		if err != nil {
			panic(err)
		}
		resModel, err := core.Run(withModel, tasks, opts)
		if err != nil {
			panic(err)
		}
		for i := range tasks {
			_, truth := analytical.TrueMin(tasks[i][0])
			wo := bestOf(&resBase.Tasks[i])
			wi := bestOf(&resModel.Tasks[i])
			// Eq. (11) minima can be negative, so the paper's plain
			// minimum ratio is ill-defined here; compare the excess above
			// the known true minimum instead (≥1 means the model helped,
			// matching the paper's reading of the ratio). The excess is
			// floored at 0 (the brute-force reference can be a hair above
			// the actual optimum) and regularized so near-optimal pairs do
			// not produce unbounded ratios.
			const reg = 0.02
			exW := math.Max(wo-truth, 0)
			exM := math.Max(wi-truth, 0)
			rows = append(rows, Fig4AnalyticalRow{
				EpsTot:        eps,
				Task:          tasks[i][0],
				WithoutModel:  wo,
				WithModel:     wi,
				TrueMin:       truth,
				RatioNoModel:  (exW + reg) / (exM + reg),
				RatioTrueOver: exM,
			})
		}
	}
	return rows
}

// PrintFig4Analytical writes per-task ratios and the ≥1 counts the paper's
// legend reports.
func PrintFig4Analytical(w io.Writer, rows []Fig4AnalyticalRow) {
	fprintf(w, "Fig 4 (left): analytical function, performance-model benefit\n")
	byEps := map[int][]Fig4AnalyticalRow{}
	var order []int
	for _, r := range rows {
		if _, ok := byEps[r.EpsTot]; !ok {
			order = append(order, r.EpsTot)
		}
		byEps[r.EpsTot] = append(byEps[r.EpsTot], r)
	}
	for _, eps := range order {
		var ratios []float64
		fprintf(w, "  eps_tot=%d:\n", eps)
		for _, r := range byEps[eps] {
			fprintf(w, "   t=%-4g  no-model=%+.4f  with-model=%+.4f  true=%+.4f  ratio=%.3f\n",
				r.Task, r.WithoutModel, r.WithModel, r.TrueMin, r.RatioNoModel)
			ratios = append(ratios, r.RatioNoModel)
		}
		fprintf(w, "   tasks with ratio>=1 (model helped or tied): %d/%d, max ratio %.2f\n",
			countAtLeast(ratios, 1), len(ratios), maxOf(ratios))
	}
}

// Fig4QRRow holds one (ε_tot, task) result for PDGEQRF.
type Fig4QRRow struct {
	EpsTot       int
	M, N         float64
	WithoutModel float64
	WithModel    float64
	Ratio        float64
}

// Fig4QR reproduces Fig. 4 (right): PDGEQRF with the Eq. (7)–(10)
// performance model and on-the-fly coefficient estimation, 5 random tasks
// with m, n < 20000, ε_tot ∈ {10, 20, 40} (paper values; reduce for quick
// runs). The paper reports up to ~35% improvement at ε_tot=10, fading as
// ε_tot grows.
func Fig4QR(numTasks int, epsTots []int, seed int64, workers int) []Fig4QRRow {
	if numTasks <= 0 {
		numTasks = 5
	}
	if len(epsTots) == 0 {
		epsTots = []int{10, 20, 40}
	}
	app := scalapack.NewQR(16, 20000) // supplies the Eq. (7) model below
	base := scenarioProblem("qr", nil)
	rng := rand.New(rand.NewSource(seed))
	tasks, err := sample.FeasibleLHS(base.Tasks, numTasks, rng)
	if err != nil {
		panic(err)
	}
	var rows []Fig4QRRow
	for _, eps := range epsTots {
		opts := core.Options{
			EpsTot:       eps,
			Seed:         seed,
			Workers:      workers,
			LogY:         true,
			Repeats:      3,
			Q:            2,
			NumStarts:    2,
			ModelMaxIter: 25,
			Search:       opt.PSOParams{Particles: 20, MaxIter: 30},
		}
		resBase, err := core.Run(scenarioProblem("qr", nil), tasks, opts)
		if err != nil {
			panic(err)
		}
		withModel := scenarioProblem("qr", nil)
		withModel.Model = app.PerfModel()
		optsM := opts
		optsM.FitModelCoeffs = true
		resModel, err := core.Run(withModel, tasks, optsM)
		if err != nil {
			panic(err)
		}
		for i := range tasks {
			wo := bestOf(&resBase.Tasks[i])
			wi := bestOf(&resModel.Tasks[i])
			rows = append(rows, Fig4QRRow{
				EpsTot: eps, M: tasks[i][0], N: tasks[i][1],
				WithoutModel: wo, WithModel: wi, Ratio: wo / wi,
			})
		}
	}
	return rows
}

// PrintFig4QR writes the QR model-benefit table.
func PrintFig4QR(w io.Writer, rows []Fig4QRRow) {
	fprintf(w, "Fig 4 (right): PDGEQRF with Eq.(7) performance model\n")
	byEps := map[int][]Fig4QRRow{}
	var order []int
	for _, r := range rows {
		if _, ok := byEps[r.EpsTot]; !ok {
			order = append(order, r.EpsTot)
		}
		byEps[r.EpsTot] = append(byEps[r.EpsTot], r)
	}
	for _, eps := range order {
		var ratios []float64
		fprintf(w, "  eps_tot=%d:\n", eps)
		for _, r := range byEps[eps] {
			fprintf(w, "   m=%-6.0f n=%-6.0f  no-model=%.3fs  with-model=%.3fs  ratio=%.3f\n",
				r.M, r.N, r.WithoutModel, r.WithModel, r.Ratio)
			ratios = append(ratios, r.Ratio)
		}
		fprintf(w, "   tasks with ratio>=1: %d/%d, max ratio %.2f, geomean %.3f\n",
			countAtLeast(ratios, 1), len(ratios), maxOf(ratios), geoMean(ratios))
	}
}
