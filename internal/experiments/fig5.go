package experiments

import (
	"io"
	"math/rand"
	"sort"

	"repro/internal/apps/scalapack"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/opt"
	"repro/internal/sample"
)

// Fig5TaskRow is one task's best/worst runtime under one setting.
type Fig5TaskRow struct {
	Label  string // "single-task" or "multitask"
	Task   []float64
	Flops  float64
	Best   float64
	Worst  float64
	EpsTot int
}

// Fig5Result bundles the per-task rows with the Table 3 phase breakdowns.
type Fig5Result struct {
	Rows        []Fig5TaskRow
	SingleStats core.PhaseStats
	MultiStats  core.PhaseStats
	// SimAppTime is the total *simulated* application time (Σ of objective
	// values), the paper's "objective" column: on a real machine this is
	// the time spent running the application.
	SingleSimAppTime float64
	MultiSimAppTime  float64
}

func sumSimTime(res *core.Result) float64 {
	s := 0.0
	for _, tr := range res.Tasks {
		for _, y := range tr.Y {
			s += y[0]
		}
	}
	return s
}

// Fig5QR reproduces Fig. 5 (left) and Table 3 (upper, PDGEQRF): a fixed
// total budget δ·ε_tot is spent either on one expensive task
// (m=23324, n=26545) alone, or shared across 10 tasks via MLA. The paper
// uses 64 Cori nodes and budget 100; singleEps/delta scale that down when
// smaller values are passed.
func Fig5QR(budget int, seed int64, workers int) *Fig5Result {
	if budget <= 0 {
		budget = 100
	}
	p := scenarioProblem("qr", bench.Params{"nodes": 64, "maxdim": 40000})
	bigTask := []float64{23324, 26545}

	opts := core.Options{
		Seed:         seed,
		Workers:      workers,
		LogY:         true,
		Repeats:      3,
		NumStarts:    3,
		ModelMaxIter: 40,
		Search:       opt.PSOParams{Particles: 20, MaxIter: 30},
	}

	// Single-task: all budget on the big task.
	optsSingle := opts
	optsSingle.EpsTot = budget
	resSingle, err := core.Run(p, [][]float64{bigTask}, optsSingle)
	if err != nil {
		panic(err)
	}

	// Multitask: δ=10 tasks (the big one plus 9 random with m,n < 40000),
	// ε_tot = budget/10.
	delta := 10
	rng := rand.New(rand.NewSource(seed + 1))
	tasks := [][]float64{bigTask}
	extra, err := sample.FeasibleLHS(p.Tasks, delta-1, rng)
	if err != nil {
		panic(err)
	}
	tasks = append(tasks, extra...)
	optsMulti := opts
	optsMulti.EpsTot = budget / delta
	resMulti, err := core.Run(p, tasks, optsMulti)
	if err != nil {
		panic(err)
	}

	out := &Fig5Result{
		SingleStats:      resSingle.Stats,
		MultiStats:       resMulti.Stats,
		SingleSimAppTime: sumSimTime(resSingle),
		MultiSimAppTime:  sumSimTime(resMulti),
	}
	out.Rows = append(out.Rows, taskRow("single-task", &resSingle.Tasks[0], optsSingle.EpsTot,
		scalapack.TotalFlops(bigTask[0], bigTask[1])))
	for i := range resMulti.Tasks {
		out.Rows = append(out.Rows, taskRow("multitask", &resMulti.Tasks[i], optsMulti.EpsTot,
			scalapack.TotalFlops(tasks[i][0], tasks[i][1])))
	}
	// Sort the multitask rows by flop count, as in the paper's figure.
	sort.SliceStable(out.Rows, func(a, b int) bool {
		if out.Rows[a].Label != out.Rows[b].Label {
			return out.Rows[a].Label < out.Rows[b].Label
		}
		return out.Rows[a].Flops < out.Rows[b].Flops
	})
	return out
}

func taskRow(label string, tr *core.TaskResult, eps int, flops float64) Fig5TaskRow {
	best, worst := tr.Y[0][0], tr.Y[0][0]
	for _, y := range tr.Y {
		if y[0] < best {
			best = y[0]
		}
		if y[0] > worst {
			worst = y[0]
		}
	}
	return Fig5TaskRow{Label: label, Task: tr.Task, Flops: flops, Best: best, Worst: worst, EpsTot: eps}
}

// PrintFig5QR writes the figure rows and the Table 3 (upper) breakdown.
func PrintFig5QR(w io.Writer, r *Fig5Result) {
	fprintf(w, "Fig 5 (left) + Table 3 (upper): PDGEQRF single-task vs multitask\n")
	for _, row := range r.Rows {
		fprintf(w, "  %-12s task=%v flops=%.3g best=%.3fs worst=%.3fs (eps_tot=%d)\n",
			row.Label, row.Task, row.Flops, row.Best, row.Worst, row.EpsTot)
	}
	fprintf(w, "  Table 3 (tuner wall time; simulated application time separate):\n")
	fprintf(w, "  %-12s %12s %12s %12s %16s\n", "", "modeling", "search", "tuner total", "sim app time")
	fprintf(w, "  %-12s %12v %12v %12v %15.1fs\n", "single-task",
		r.SingleStats.Modeling, r.SingleStats.Search, r.SingleStats.Total, r.SingleSimAppTime)
	fprintf(w, "  %-12s %12v %12v %12v %15.1fs\n", "multitask",
		r.MultiStats.Modeling, r.MultiStats.Search, r.MultiStats.Total, r.MultiSimAppTime)
}

// Fig5EVResult holds the PDSYEVX comparison.
type Fig5EVResult struct {
	// SingleBestHalf/SingleBestFull: best runtime from the first ε/2
	// samples and from all ε samples, for each single-task budget —
	// the paper's demonstration that the BO half helps.
	SingleEps      []int
	SingleBestHalf []float64
	SingleBestFull []float64
	Rows           []Fig5TaskRow
	SingleStats    core.PhaseStats
	MultiStats     core.PhaseStats
}

// Fig5EV reproduces Fig. 5 (right) and Table 3 (upper, PDSYEVX): single-task
// on m=7000 with ε_tot ∈ {90, 180} (scaled down via maxEps) vs multitask on
// 9 tasks 3000 ≤ m ≤ 7000 with ε_tot ∈ {10, 20}.
func Fig5EV(maxEps int, seed int64, workers int) *Fig5EVResult {
	if maxEps <= 0 {
		maxEps = 90
	}
	p := scenarioProblem("eigen", nil)
	out := &Fig5EVResult{}
	opts := core.Options{
		Seed:         seed,
		Workers:      workers,
		LogY:         true,
		Repeats:      3,
		NumStarts:    3,
		ModelMaxIter: 40,
		Search:       opt.PSOParams{Particles: 20, MaxIter: 30},
	}
	for _, eps := range []int{maxEps / 2, maxEps} {
		o := opts
		o.EpsTot = eps
		res, err := core.Run(p, [][]float64{{7000}}, o)
		if err != nil {
			panic(err)
		}
		tr := res.Tasks[0]
		half := tr.Y[0][0]
		for _, y := range tr.Y[:len(tr.Y)/2] {
			if y[0] < half {
				half = y[0]
			}
		}
		out.SingleEps = append(out.SingleEps, eps)
		out.SingleBestHalf = append(out.SingleBestHalf, half)
		out.SingleBestFull = append(out.SingleBestFull, bestOf(&tr))
		out.SingleStats.Add(res.Stats)
	}

	// Multitask: 9 tasks 3000..7000.
	var tasks [][]float64
	for i := 0; i < 9; i++ {
		tasks = append(tasks, []float64{3000 + 500*float64(i)})
	}
	for _, eps := range []int{10, 20} {
		o := opts
		o.EpsTot = eps
		res, err := core.Run(p, tasks, o)
		if err != nil {
			panic(err)
		}
		for i := range res.Tasks {
			m := tasks[i][0]
			out.Rows = append(out.Rows, taskRow("multitask", &res.Tasks[i], eps, m*m*m))
		}
		out.MultiStats.Add(res.Stats)
	}
	return out
}

// PrintFig5EV writes the eigensolver comparison.
func PrintFig5EV(w io.Writer, r *Fig5EVResult) {
	fprintf(w, "Fig 5 (right) + Table 3 (upper): PDSYEVX\n")
	fprintf(w, "  single-task m=7000:\n")
	for i, eps := range r.SingleEps {
		fprintf(w, "   eps_tot=%d: best of first half %.3fs, best overall %.3fs (BO gain %.1f%%)\n",
			eps, r.SingleBestHalf[i], r.SingleBestFull[i],
			100*(r.SingleBestHalf[i]-r.SingleBestFull[i])/r.SingleBestHalf[i])
	}
	fprintf(w, "  multitask (9 tasks, 3000<=m<=7000):\n")
	for _, row := range r.Rows {
		fprintf(w, "   m=%-6.0f eps_tot=%d best=%.3fs worst=%.3fs\n",
			row.Task[0], row.EpsTot, row.Best, row.Worst)
	}
	fprintf(w, "  Table 3: single stats modeling=%v search=%v | multi modeling=%v search=%v\n",
		r.SingleStats.Modeling, r.SingleStats.Search, r.MultiStats.Modeling, r.MultiStats.Search)
}
