package experiments

import (
	"io"
	"math/rand"

	"repro/internal/apps/superlu"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/opt"
	"repro/internal/sample"
)

// Fig6Row is one task's tuner comparison: ratio of another tuner's best
// runtime over GPTune's (>1 means GPTune wins).
type Fig6Row struct {
	TaskLabel string
	GPTune    float64
	Others    map[string]float64 // tuner name → best runtime
	Ratios    map[string]float64 // tuner name → other/GPTune
}

// runComparison runs GPTune MLA across all tasks jointly and each baseline
// per task, all with ε_tot evaluations per task.
func runComparison(p *core.Problem, tasks [][]float64, labels []string, epsTot int, seed int64, workers int, logY bool, repeats int) []Fig6Row {
	opts := core.Options{
		EpsTot:       epsTot,
		Seed:         seed,
		Workers:      workers,
		LogY:         logY,
		Repeats:      repeats,
		NumStarts:    3,
		ModelMaxIter: 40,
		Search:       opt.PSOParams{Particles: 20, MaxIter: 30},
	}
	res, err := core.Run(p, tasks, opts)
	if err != nil {
		panic(err)
	}
	rows := make([]Fig6Row, len(tasks))
	for i := range tasks {
		rows[i] = Fig6Row{
			TaskLabel: labels[i],
			GPTune:    bestOf(&res.Tasks[i]),
			Others:    map[string]float64{},
			Ratios:    map[string]float64{},
		}
	}
	for _, tn := range baselines() {
		for i := range tasks {
			tr, err := tn.Tune(p, tasks[i], epsTot, seed+int64(100+i))
			if err != nil {
				panic(err)
			}
			rows[i].Others[tn.Name()] = bestOf(tr)
			rows[i].Ratios[tn.Name()] = bestOf(tr) / rows[i].GPTune
		}
	}
	return rows
}

// Fig6QR reproduces Fig. 6 (left): GPTune vs OpenTuner vs HpBandSter on
// PDGEQRF with δ=10 random tasks (m, n < 20000) and ε_tot=10 on 64 nodes.
// The paper reports GPTune beating OpenTuner on 7/10 tasks (up to 4.9×) and
// HpBandSter on 8/10 (up to 2.9×).
func Fig6QR(delta, epsTot int, seed int64, workers int) []Fig6Row {
	if delta <= 0 {
		delta = 10
	}
	if epsTot <= 0 {
		epsTot = 10
	}
	p := scenarioProblem("qr", bench.Params{"nodes": 64})
	rng := rand.New(rand.NewSource(seed))
	tasks, err := sample.FeasibleLHS(p.Tasks, delta, rng)
	if err != nil {
		panic(err)
	}
	labels := make([]string, len(tasks))
	for i, t := range tasks {
		labels[i] = p.Tasks.Describe(t)
	}
	return runComparison(p, tasks, labels, epsTot, seed, workers, true, 3)
}

// Fig6SuperLU reproduces Fig. 6 (right): the same comparison on
// SuperLU_DIST factorization time for the δ=7 PARSEC matrices (Si2, SiH4,
// SiNa, Na5, benzene, Si10H16, Si5H12) with ε_tot=20 on 32 nodes. The paper
// reports GPTune beating OpenTuner on 6/7 (up to 1.6×) and HpBandSter on
// 7/7 (up to 1.3×).
func Fig6SuperLU(epsTot int, seed int64, workers int) []Fig6Row {
	if epsTot <= 0 {
		epsTot = 20
	}
	p := scenarioProblem("superlu", nil)
	var tasks [][]float64
	var labels []string
	for i := 0; i < 7; i++ {
		tasks = append(tasks, []float64{float64(i)})
		labels = append(labels, superlu.PARSEC[i].Name)
	}
	return runComparison(p, tasks, labels, epsTot, seed, workers, true, 1)
}

// PrintFig6 writes the ratio table and win counts (the paper's legend).
func PrintFig6(w io.Writer, title string, rows []Fig6Row) {
	fprintf(w, "%s\n", title)
	wins := map[string]int{}
	maxRatio := map[string]float64{}
	var names []string
	for name := range rows[0].Ratios {
		names = append(names, name)
	}
	for _, r := range rows {
		fprintf(w, "  %-28s gptune=%.4fs", r.TaskLabel, r.GPTune)
		for _, name := range names {
			fprintf(w, "  %s=%.4fs (ratio %.2f)", name, r.Others[name], r.Ratios[name])
			if r.Ratios[name] >= 1 {
				wins[name]++
			}
			if r.Ratios[name] > maxRatio[name] {
				maxRatio[name] = r.Ratios[name]
			}
		}
		fprintf(w, "\n")
	}
	for _, name := range names {
		fprintf(w, "  GPTune beats or ties %s on %d/%d tasks, up to %.2fx\n",
			name, wins[name], len(rows), maxRatio[name])
	}
}
