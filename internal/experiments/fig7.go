package experiments

import (
	"io"

	"repro/internal/acq"
	"repro/internal/apps/superlu"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/opt"
	"repro/internal/sparse"
)

// ParetoPoint is one (time, memory) objective pair with its configuration.
type ParetoPoint struct {
	Time   float64
	Memory float64
	Config []float64
}

// Fig7SingleResult holds the Si2 single-task study: the multi-objective
// Pareto front, the single-objective minima, and the default configuration's
// objectives (Fig. 7 left + Table 5).
type Fig7SingleResult struct {
	Front      []ParetoPoint
	TimeOpt    ParetoPoint // single-objective time tuning
	MemOpt     ParetoPoint // single-objective memory tuning
	Default    ParetoPoint
	DefaultCfg []float64
}

// Fig7Single reproduces Fig. 7 (left) and Table 5 on matrix Si2 with 8
// nodes: multi-objective (time, memory) MLA with ε_tot=80 (scaled by
// epsTot), plus single-objective runs for each metric and the default
// configuration. Expected shape: single-objective minima on/near the front;
// default far from it in both dimensions.
func Fig7Single(epsTot int, seed int64, workers int) *Fig7SingleResult {
	if epsTot <= 0 {
		epsTot = 80
	}
	app := superlu.New(8) // supplies DefaultConfig/FactorCost comparisons
	task := []float64{0}  // Si2
	mo := scenarioProblem("superlu-mo", nil)
	opts := core.Options{
		EpsTot:       epsTot,
		Seed:         seed,
		Workers:      workers,
		LogY:         true,
		MOBatch:      2,
		NumStarts:    3,
		ModelMaxIter: 40,
		Search:       opt.PSOParams{Particles: 20, MaxIter: 30},
	}
	resMO, err := core.Run(mo, [][]float64{task}, opts)
	if err != nil {
		panic(err)
	}
	out := &Fig7SingleResult{}
	tr := resMO.Tasks[0]
	for _, idx := range tr.ParetoFront() {
		out.Front = append(out.Front, ParetoPoint{
			Time: tr.Y[idx][0], Memory: tr.Y[idx][1],
			Config: tr.X[idx],
		})
	}

	// Single-objective runs: tune time only, then memory only, recording
	// both metrics of the winner for plotting.
	for _, which := range []int{0, 1} {
		inner := scenarioProblem("superlu-mo", nil).Objective
		p1 := scenarioProblem("superlu", bench.Params{"nodes": 8})
		p1.Objective = func(task, x []float64) ([]float64, error) {
			y, err := inner(task, x)
			if err != nil {
				return nil, err
			}
			return []float64{y[which]}, nil
		}
		oS := opts
		oS.MOBatch = 1
		res, err := core.Run(p1, [][]float64{task}, oS)
		if err != nil {
			panic(err)
		}
		bx, _ := res.Tasks[0].Best()
		tFull, mFull := app.FactorCost(0, cfgFromVec(bx))
		pt := ParetoPoint{Time: tFull, Memory: mFull, Config: bx}
		if which == 0 {
			out.TimeOpt = pt
		} else {
			out.MemOpt = pt
		}
	}

	defCfg := app.DefaultConfig()
	dt, dm := app.FactorCost(0, defCfg)
	out.Default = ParetoPoint{Time: dt, Memory: dm, Config: superlu.ConfigToVector(defCfg)}
	out.DefaultCfg = superlu.ConfigToVector(defCfg)
	return out
}

func cfgFromVec(x []float64) superlu.Config {
	return superlu.Config{
		ColPerm: sparse.Ordering(int(x[0])),
		Look:    int(x[1]),
		P:       int(x[2]),
		Pr:      int(x[3]),
		NSup:    int(x[4]),
		NRel:    int(x[5]),
	}
}

// PrintFig7Single writes the front, the single-objective minima, the default
// point, and the Table 5 parameter comparison.
func PrintFig7Single(w io.Writer, r *Fig7SingleResult) {
	fprintf(w, "Fig 7 (left) + Table 5: SuperLU_DIST Si2, multi-objective (time, memory)\n")
	fprintf(w, "  Pareto front (%d points):\n", len(r.Front))
	for _, p := range r.Front {
		fprintf(w, "   time=%.4fs  memory=%.3gB\n", p.Time, p.Memory)
	}
	fprintf(w, "  single-objective time optimum:   time=%.4fs memory=%.3gB\n", r.TimeOpt.Time, r.TimeOpt.Memory)
	fprintf(w, "  single-objective memory optimum: time=%.4fs memory=%.3gB\n", r.MemOpt.Time, r.MemOpt.Memory)
	fprintf(w, "  default configuration:           time=%.4fs memory=%.3gB\n", r.Default.Time, r.Default.Memory)
	fprintf(w, "  improvement vs default: time %.0f%%, memory %.0f%%\n",
		100*(r.Default.Time-r.TimeOpt.Time)/r.Default.Time,
		100*(r.Default.Memory-r.MemOpt.Memory)/r.Default.Memory)
	fprintf(w, "  Table 5 (COLPERM LOOK p pr NSUP NREL):\n")
	fprintf(w, "   default: %v\n", r.DefaultCfg)
	fprintf(w, "   time:    %v\n", r.TimeOpt.Config)
	fprintf(w, "   memory:  %v\n", r.MemOpt.Config)
}

// Fig7MultiResult compares single-task and multitask multi-objective fronts
// per matrix.
type Fig7MultiResult struct {
	Matrix string
	Single []ParetoPoint
	Multi  []ParetoPoint
	// SingleDominatedByMulti counts single-task front points dominated by
	// some multitask point (the paper expects very few dominations in the
	// other direction).
	SingleDominating int // single points dominating some multi point
	MultiDominating  int // multi points dominating some single point
}

// Fig7Multi reproduces Fig. 7 (right): 8 PARSEC matrices, multi-objective
// tuning with δ=1 per matrix vs one δ=8 multitask run (ε_tot per task
// equal). The paper expects few single-task points to dominate multitask
// points.
func Fig7Multi(epsTot int, seed int64, workers int) []Fig7MultiResult {
	if epsTot <= 0 {
		epsTot = 20
	}
	mo := scenarioProblem("superlu-mo", nil)
	opts := core.Options{
		EpsTot:       epsTot,
		Seed:         seed,
		Workers:      workers,
		LogY:         true,
		MOBatch:      2,
		NumStarts:    3,
		ModelMaxIter: 40,
		Search:       opt.PSOParams{Particles: 20, MaxIter: 30},
	}
	var tasks [][]float64
	for i := range superlu.PARSEC {
		tasks = append(tasks, []float64{float64(i)})
	}
	resMulti, err := core.Run(mo, tasks, opts)
	if err != nil {
		panic(err)
	}
	var out []Fig7MultiResult
	for i := range tasks {
		resSingle, err := core.Run(mo, tasks[i:i+1], opts)
		if err != nil {
			panic(err)
		}
		r := Fig7MultiResult{Matrix: superlu.PARSEC[i].Name}
		r.Single = frontOf(&resSingle.Tasks[0])
		r.Multi = frontOf(&resMulti.Tasks[i])
		for _, sp := range r.Single {
			for _, mp := range r.Multi {
				if acq.Dominates([]float64{sp.Time, sp.Memory}, []float64{mp.Time, mp.Memory}) {
					r.SingleDominating++
					break
				}
			}
		}
		for _, mp := range r.Multi {
			for _, sp := range r.Single {
				if acq.Dominates([]float64{mp.Time, mp.Memory}, []float64{sp.Time, sp.Memory}) {
					r.MultiDominating++
					break
				}
			}
		}
		out = append(out, r)
	}
	return out
}

func frontOf(tr *core.TaskResult) []ParetoPoint {
	var pts []ParetoPoint
	for _, idx := range tr.ParetoFront() {
		pts = append(pts, ParetoPoint{Time: tr.Y[idx][0], Memory: tr.Y[idx][1], Config: tr.X[idx]})
	}
	return pts
}

// PrintFig7Multi writes the per-matrix domination summary.
func PrintFig7Multi(w io.Writer, rows []Fig7MultiResult) {
	fprintf(w, "Fig 7 (right): single-task vs multitask multi-objective fronts\n")
	totalS, totalM := 0, 0
	for _, r := range rows {
		fprintf(w, "  %-10s single front %2d pts (%d dominate a multi pt) | multi front %2d pts (%d dominate a single pt)\n",
			r.Matrix, len(r.Single), r.SingleDominating, len(r.Multi), r.MultiDominating)
		totalS += r.SingleDominating
		totalM += r.MultiDominating
	}
	fprintf(w, "  totals: single-dominating %d, multi-dominating %d (paper: few single-task dominations)\n",
		totalS, totalM)
}
