package experiments

import (
	"io"

	"repro/internal/bench"
)

// Spec describes one runnable experiment: the paper artifact ID, what it
// shows, and a runner at either full (reduced-reproduction) or quick scale.
type Spec struct {
	ID          string // e.g. "Fig2", "Tab4"
	Description string
	// Run executes the experiment and prints the paper-style summary. quick
	// selects the small-scale variant (the artifact's "*_exp" analogue).
	Run func(w io.Writer, quick bool, seed int64, workers int)
}

// All returns every experiment in paper order.
func All() []Spec {
	return []Spec{
		{
			ID:          "Fig2",
			Description: "analytical objective of Eq.(11) for four tasks",
			Run: func(w io.Writer, quick bool, seed int64, workers int) {
				PrintFig2(w, Fig2(401))
			},
		},
		{
			ID:          "Fig3",
			Description: "modeling/search phase time and parallel speedup",
			Run: func(w io.Writer, quick bool, seed int64, workers int) {
				eps := []int{2, 4, 8, 16}
				if quick {
					eps = []int{2, 4}
				}
				PrintFig3(w, Fig3(eps, workers, seed))
			},
		},
		{
			ID:          "Fig4a",
			Description: "performance-model benefit on the analytical function",
			Run: func(w io.Writer, quick bool, seed int64, workers int) {
				delta, eps := 10, []int{10, 20, 40}
				if quick {
					delta, eps = 5, []int{8}
				}
				PrintFig4Analytical(w, Fig4Analytical(delta, eps, seed, workers))
			},
		},
		{
			ID:          "Fig4b",
			Description: "Eq.(7) performance model on PDGEQRF",
			Run: func(w io.Writer, quick bool, seed int64, workers int) {
				tasks, eps := 5, []int{10, 20, 40}
				if quick {
					tasks, eps = 3, []int{8}
				}
				PrintFig4QR(w, Fig4QR(tasks, eps, seed, workers))
			},
		},
		{
			ID:          "Fig5a",
			Description: "PDGEQRF single-task vs multitask (+ Table 3 upper)",
			Run: func(w io.Writer, quick bool, seed int64, workers int) {
				budget := 100
				if quick {
					budget = 40
				}
				PrintFig5QR(w, Fig5QR(budget, seed, workers))
			},
		},
		{
			ID:          "Fig5b",
			Description: "PDSYEVX single-task vs multitask (+ Table 3 upper)",
			Run: func(w io.Writer, quick bool, seed int64, workers int) {
				maxEps := 90
				if quick {
					maxEps = 24
				}
				PrintFig5EV(w, Fig5EV(maxEps, seed, workers))
			},
		},
		{
			ID:          "Tab3",
			Description: "M3D_C1 and NIMROD single vs multitask totals",
			Run: func(w io.Writer, quick bool, seed int64, workers int) {
				eps := 80
				if quick {
					eps = 16
				}
				PrintTable3MHD(w, Table3MHD(eps, seed, workers))
			},
		},
		{
			ID:          "Fig6a",
			Description: "GPTune vs OpenTuner vs HpBandSter on PDGEQRF",
			Run: func(w io.Writer, quick bool, seed int64, workers int) {
				delta, eps := 10, 10
				if quick {
					delta, eps = 4, 8
				}
				PrintFig6(w, "Fig 6 (left): PDGEQRF tuner comparison", Fig6QR(delta, eps, seed, workers))
			},
		},
		{
			ID:          "Fig6b",
			Description: "GPTune vs OpenTuner vs HpBandSter on SuperLU_DIST",
			Run: func(w io.Writer, quick bool, seed int64, workers int) {
				eps := 20
				if quick {
					eps = 8
				}
				PrintFig6(w, "Fig 6 (right): SuperLU_DIST tuner comparison", Fig6SuperLU(eps, seed, workers))
			},
		},
		{
			ID:          "Tab4",
			Description: "hypre WinTask and stability vs baselines",
			Run: func(w io.Writer, quick bool, seed int64, workers int) {
				delta, eps, nodes := 10, []int{10, 20, 30}, []int{1, 4}
				if quick {
					delta, eps, nodes = 4, []int{8}, []int{1}
				}
				PrintTable4(w, Table4(delta, eps, nodes, seed, workers))
			},
		},
		{
			ID:          "Fig7a",
			Description: "SuperLU_DIST Si2 multi-objective Pareto front (+ Table 5)",
			Run: func(w io.Writer, quick bool, seed int64, workers int) {
				eps := 80
				if quick {
					eps = 16
				}
				PrintFig7Single(w, Fig7Single(eps, seed, workers))
			},
		},
		{
			ID:          "Fig7b",
			Description: "multi-objective single-task vs multitask fronts",
			Run: func(w io.Writer, quick bool, seed int64, workers int) {
				eps := 20
				if quick {
					eps = 10
				}
				PrintFig7Multi(w, Fig7Multi(eps, seed, workers))
			},
		},
		{
			ID:          "Bench",
			Description: "workload-registry regression: MLA best vs known optimum per scenario",
			Run: func(w io.Writer, quick bool, seed int64, workers int) {
				cfg := bench.RegressConfig{Delta: 2, Eps: 30, Seed: seed, Workers: workers}
				if quick {
					cfg.Delta, cfg.Eps = 1, 10
				}
				PrintBench(w, BenchRegress(cfg))
			},
		},
	}
}

// Find returns the experiment with the given ID, or nil.
func Find(id string) *Spec {
	for _, s := range All() {
		if s.ID == id {
			spec := s
			return &spec
		}
	}
	return nil
}
