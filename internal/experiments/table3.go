package experiments

import (
	"io"

	"repro/internal/core"
	"repro/internal/opt"
)

// Table3MHDRow compares single-task and multitask tuning for one MHD code.
type Table3MHDRow struct {
	App           string
	SingleMin     float64 // best runtime found for the expensive task
	SingleSimTime float64 // total simulated application time spent tuning
	MultiMin      float64
	MultiSimTime  float64
}

// Table3MHD reproduces Table 3 (lower): M3D_C1 compares single-task
// (t=3 steps, ε_tot=80) against multitask (t = 1,1,1,3, ε_tot=20), and
// NIMROD compares (t=15, ε_tot=80) against (t = 3,3,3,15, ε_tot=20). The
// headline result: multitask reaches a similar minimum while spending far
// less total application time, because most of its budget runs cheap
// few-step tasks. epsSingle scales the ε_tot=80 budget (multitask uses a
// quarter of it, as in the paper).
func Table3MHD(epsSingle int, seed int64, workers int) []Table3MHDRow {
	if epsSingle <= 0 {
		epsSingle = 80
	}
	epsMulti := epsSingle / 4
	if epsMulti < 4 {
		epsMulti = 4
	}
	var rows []Table3MHDRow
	type setup struct {
		scenario   string // registry name; doubles as the row label
		expensive  float64
		cheapTasks []float64
	}
	for _, su := range []setup{
		{scenario: "m3dc1", expensive: 3, cheapTasks: []float64{1, 1, 1}},
		{scenario: "nimrod", expensive: 15, cheapTasks: []float64{3, 3, 3}},
	} {
		p := scenarioProblem(su.scenario, nil)
		opts := core.Options{
			Seed:         seed,
			Workers:      workers,
			LogY:         true,
			Q:            2,
			NumStarts:    2,
			ModelMaxIter: 25,
			Search:       opt.PSOParams{Particles: 20, MaxIter: 30},
		}
		oS := opts
		oS.EpsTot = epsSingle
		resS, err := core.Run(p, [][]float64{{su.expensive}}, oS)
		if err != nil {
			panic(err)
		}
		var tasks [][]float64
		for _, t := range su.cheapTasks {
			tasks = append(tasks, []float64{t})
		}
		tasks = append(tasks, []float64{su.expensive})
		oM := opts
		oM.EpsTot = epsMulti
		resM, err := core.Run(p, tasks, oM)
		if err != nil {
			panic(err)
		}
		rows = append(rows, Table3MHDRow{
			App:           su.scenario,
			SingleMin:     bestOf(&resS.Tasks[0]),
			SingleSimTime: sumSimTime(resS),
			MultiMin:      bestOf(&resM.Tasks[len(resM.Tasks)-1]),
			MultiSimTime:  sumSimTime(resM),
		})
	}
	return rows
}

// PrintTable3MHD writes the lower Table 3.
func PrintTable3MHD(w io.Writer, rows []Table3MHDRow) {
	fprintf(w, "Table 3 (lower): M3D_C1 and NIMROD, single-task vs multitask\n")
	fprintf(w, "  %-8s %14s %14s %14s %14s\n", "app", "single min", "single total", "multi min", "multi total")
	for _, r := range rows {
		fprintf(w, "  %-8s %13.2fs %13.0fs %13.2fs %13.0fs\n",
			r.App, r.SingleMin, r.SingleSimTime, r.MultiMin, r.MultiSimTime)
	}
	fprintf(w, "  (totals are simulated application time; multitask should be much lower)\n")
}
