package experiments

import (
	"io"
	"math"
	"math/rand"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/opt"
	"repro/internal/sample"
	"repro/internal/tuners"
)

// Table4Row is one (nodes, ε_tot) experiment: final performance (WinTask vs
// each baseline) and anytime performance (mean stability per tuner).
type Table4Row struct {
	Nodes     int
	EpsTot    int
	WinTask   map[string]float64 // baseline name → fraction of tasks GPTune wins
	Stability map[string]float64 // tuner name ("gptune" included) → mean stability
}

// Table4 reproduces Table 4: hypre with δ random grid tasks
// (10 ≤ n_i ≤ 100), ε_tot ∈ {10, 20, 30}, on 1 and 4 nodes. The paper uses
// δ=30; delta scales that down. WinTask is the fraction of tasks where
// GPTune's final minimum beats the baseline's; stability is the
// anytime-performance metric (mean best-so-far over the best any tuner
// found; smaller is better).
func Table4(delta int, epsTots []int, nodesList []int, seed int64, workers int) []Table4Row {
	if delta <= 0 {
		delta = 30
	}
	if len(epsTots) == 0 {
		epsTots = []int{10, 20, 30}
	}
	if len(nodesList) == 0 {
		nodesList = []int{1, 4}
	}
	var out []Table4Row
	for _, nodes := range nodesList {
		p := scenarioProblem("hypre", bench.Params{"nodes": float64(nodes)})
		rng := rand.New(rand.NewSource(seed + int64(nodes)))
		tasks, err := sample.FeasibleLHS(p.Tasks, delta, rng)
		if err != nil {
			panic(err)
		}
		for _, eps := range epsTots {
			row := Table4Row{
				Nodes:     nodes,
				EpsTot:    eps,
				WinTask:   map[string]float64{},
				Stability: map[string]float64{},
			}
			opts := core.Options{
				EpsTot:       eps,
				Seed:         seed,
				Workers:      workers,
				LogY:         true,
				NumStarts:    3,
				ModelMaxIter: 40,
				Search:       opt.PSOParams{Particles: 20, MaxIter: 30},
			}
			res, err := core.Run(p, tasks, opts)
			if err != nil {
				panic(err)
			}
			gptuneResults := make([]*core.TaskResult, delta)
			for i := range res.Tasks {
				gptuneResults[i] = &res.Tasks[i]
			}
			baselineResults := map[string][]*core.TaskResult{}
			for _, tn := range baselines() {
				rs := make([]*core.TaskResult, delta)
				for i := range tasks {
					tr, err := tn.Tune(p, tasks[i], eps, seed+int64(1000+i))
					if err != nil {
						panic(err)
					}
					rs[i] = tr
				}
				baselineResults[tn.Name()] = rs
			}
			// Best over all tuners per task (the stability denominator).
			bestAny := make([]float64, delta)
			for i := 0; i < delta; i++ {
				bestAny[i] = bestOf(gptuneResults[i])
				for _, rs := range baselineResults {
					bestAny[i] = math.Min(bestAny[i], bestOf(rs[i]))
				}
			}
			for name, rs := range baselineResults {
				wins := 0
				for i := 0; i < delta; i++ {
					if bestOf(gptuneResults[i]) <= bestOf(rs[i]) {
						wins++
					}
				}
				row.WinTask[name] = float64(wins) / float64(delta)
				row.Stability[name] = meanStability(rs, bestAny)
			}
			row.Stability["gptune"] = meanStability(gptuneResults, bestAny)
			out = append(out, row)
		}
	}
	return out
}

func meanStability(rs []*core.TaskResult, bestAny []float64) float64 {
	s := 0.0
	for i, tr := range rs {
		s += stability(tr, bestAny[i])
	}
	return s / float64(len(rs))
}

var _ = tuners.Random{} // keep the baseline package linked for extensions

// PrintTable4 writes the WinTask/stability table in the paper's layout.
func PrintTable4(w io.Writer, rows []Table4Row) {
	fprintf(w, "Table 4: hypre, GPTune vs OpenTuner (OT) and HpBandSter (HB)\n")
	fprintf(w, "  %5s %7s | %8s %8s | %10s %8s %8s\n",
		"nodes", "eps", "win(OT)", "win(HB)", "st(GPTune)", "st(OT)", "st(HB)")
	for _, r := range rows {
		fprintf(w, "  %5d %7d | %7.0f%% %7.0f%% | %10.2f %8.2f %8.2f\n",
			r.Nodes, r.EpsTot,
			100*r.WinTask["opentuner"], 100*r.WinTask["hpbandster"],
			r.Stability["gptune"], r.Stability["opentuner"], r.Stability["hpbandster"])
	}
	fprintf(w, "  (WinTask higher is better; stability smaller is better)\n")
}
