package gp

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/la"
	"repro/internal/mpx"
)

// AppendObservations extends a fitted model with new observations without
// re-learning hyperparameters: the covariance factorization grows by k rows
// through the packed Cholesky extension (O(k·n²) against the O(n³) of a
// refit), the alpha solve is redone against the extended factor, and the
// prediction fast-path tables grow in place. Hyperparameters, the output
// standardization (yMean/yStd), and the base jitter are frozen at their
// fitted values — this is the "extend between refits" half of the
// RefitEvery contract; LogLik is not updated and refers to the last fit.
//
// The extension is bitwise identical for every workers value, and appending
// in one call is bitwise identical to appending the same rows across
// multiple calls. A model reloaded from MarshalBinary after an append
// refactorizes from scratch, which can differ from the live factor in the
// last bits — snapshots of appended models are for warm starts and
// cross-session transfer, not bitwise resume (in-run crash recovery replays
// the same fit+append sequence instead and stays exact).
//
// On error the model is left unchanged. A la.ErrNotPositiveDefinite means
// the new rows made the system numerically singular even after per-row
// jitter escalation; callers should fall back to a full refit.
func (m *LCM) AppendObservations(xs [][]float64, tasks []int, ys []float64, workers int) error {
	if m.chol == nil {
		return errors.New("gp: AppendObservations on a model without training state")
	}
	k := len(xs)
	if len(tasks) != k || len(ys) != k {
		return fmt.Errorf("gp: AppendObservations got %d points, %d tasks, %d outputs", k, len(tasks), len(ys))
	}
	if k == 0 {
		return nil
	}
	for j, x := range xs {
		if len(x) != m.Dim {
			return fmt.Errorf("gp: AppendObservations point %d has dim %d, want %d", j, len(x), m.Dim)
		}
		for _, v := range x {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("gp: AppendObservations point %d has non-finite coordinate", j)
			}
		}
		if tasks[j] < 0 || tasks[j] >= m.NumTasks {
			return fmt.Errorf("gp: AppendObservations point %d task %d out of range", j, tasks[j])
		}
		if math.IsNaN(ys[j]) || math.IsInf(ys[j], 0) {
			return fmt.Errorf("gp: AppendObservations point %d has non-finite output", j)
		}
	}
	n0 := len(m.flatX)
	if workers < 1 {
		workers = 1
	}

	// Cross-covariance panel against the existing samples (Eq. 4, no noise —
	// new points never coincide with an old sample index) and the corner
	// block among the new points (noise + the fitted base jitter on the
	// diagonal). Rows are independent, so the parallel build cannot change
	// any bit.
	cols := la.NewMatrix(k, n0)
	mpx.ParallelFor(k, workers, func(j int) {
		row := cols.Row(j)
		tj := tasks[j]
		for r := 0; r < n0; r++ {
			row[r] = m.crossCov(xs[j], tj, m.flatX[r], m.taskOf[r])
		}
	})
	corner := la.NewMatrix(k, k)
	for j := 0; j < k; j++ {
		for j2 := 0; j2 <= j; j2++ {
			v := m.crossCov(xs[j], tasks[j], xs[j2], tasks[j2])
			if j == j2 {
				v += m.D[tasks[j]] + m.Jitter
			}
			corner.Set(j, j2, v)
			corner.Set(j2, j, v)
		}
	}
	if _, err := m.chol.AppendRows(cols, corner, 0, workers); err != nil {
		return err
	}

	// Factor extended; now grow the training state and prediction tables.
	for j := 0; j < k; j++ {
		x := append(make([]float64, 0, m.Dim), xs[j]...)
		m.flatX = append(m.flatX, x)
		m.taskOf = append(m.taskOf, tasks[j])
		m.yNorm = append(m.yNorm, (ys[j]-m.yMean)/m.yStd)
		m.xflat = append(m.xflat, x...)
	}
	for task := 0; task < m.NumTasks; task++ {
		row := m.predCoef[task]
		for j := 0; j < k; j++ {
			tr := tasks[j]
			for q := 0; q < m.Q; q++ {
				c := m.A[q][task] * m.A[q][tr]
				if task == tr {
					c += m.B[q][task]
				}
				row = append(row, c)
			}
		}
		m.predCoef[task] = row
	}
	m.alpha = m.chol.SolveVec(m.yNorm)
	return nil
}

// crossCov evaluates the Eq. (4) covariance between two samples, noise
// excluded (the δ_jj'·d term is the caller's concern).
func (m *LCM) crossCov(x []float64, tx int, y []float64, ty int) float64 {
	v := 0.0
	for q := 0; q < m.Q; q++ {
		coef := m.A[q][tx] * m.A[q][ty]
		if tx == ty {
			coef += m.B[q][tx]
		}
		if coef != 0 { //gptlint:ignore float-eq exact-zero sparsity skip in covariance assembly
			v += coef * rbf(x, y, m.Ls[q])
		}
	}
	return v
}

// NumSamples returns the number of training samples currently absorbed in
// the fitted state (including appended ones).
func (m *LCM) NumSamples() int { return len(m.flatX) }
