package gp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/la"
)

// appendTestData builds a small smooth multitask dataset.
func appendTestData(rng *rand.Rand, tasks, samples, dim int) *Dataset {
	d := &Dataset{Dim: dim, X: make([][][]float64, tasks), Y: make([][]float64, tasks)}
	for i := 0; i < tasks; i++ {
		for j := 0; j < samples; j++ {
			x := make([]float64, dim)
			s := 0.0
			for k := range x {
				x[k] = rng.Float64()
				s += math.Sin(3*x[k] + float64(i))
			}
			d.X[i] = append(d.X[i], x)
			d.Y[i] = append(d.Y[i], s+0.01*rng.NormFloat64())
		}
	}
	return d
}

// TestAppendObservationsMatchesDirectPosterior: extending a fitted model must
// yield the exact GP posterior at the frozen hyperparameters on the enlarged
// training set. The oracle builds that posterior directly (dense covariance,
// recorded jitter, dense solves).
func TestAppendObservationsMatchesDirectPosterior(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data := appendTestData(rng, 2, 12, 3)
	m, err := FitLCM(data, FitOptions{Q: 2, NumStarts: 2, MaxIter: 20, Seed: 9})
	if err != nil {
		t.Fatalf("FitLCM: %v", err)
	}
	// New points, alternating tasks.
	const k = 5
	xs := make([][]float64, k)
	tasksOf := make([]int, k)
	ys := make([]float64, k)
	for j := 0; j < k; j++ {
		x := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		xs[j] = x
		tasksOf[j] = j % 2
		ys[j] = math.Sin(3*x[0]) + math.Sin(3*x[1]) + math.Sin(3*x[2])
	}
	if err := m.AppendObservations(xs, tasksOf, ys, 2); err != nil {
		t.Fatalf("AppendObservations: %v", err)
	}
	if m.NumSamples() != 24+k {
		t.Fatalf("NumSamples = %d, want %d", m.NumSamples(), 24+k)
	}

	// Oracle: dense posterior at the same hyperparameters on all 24+k points.
	flatX := append([][]float64(nil), m.flatX...)
	taskOf := append([]int(nil), m.taskOf...)
	sigma := m.covariance(flatX, taskOf)
	n := len(flatX)
	for i := 0; i < n; i++ {
		sigma.Data[i*n+i] += m.Jitter
	}
	l, err := la.Cholesky(sigma)
	if err != nil {
		t.Fatalf("oracle Cholesky: %v", err)
	}
	alpha := la.SolveCholVec(l, m.yNorm)

	ws := m.NewPredictWorkspace()
	for trial := 0; trial < 25; trial++ {
		x := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		task := trial % 2
		gotMu, gotVar := m.PredictInto(ws, task, x)

		kstar := make([]float64, n)
		for r := 0; r < n; r++ {
			kstar[r] = m.crossCov(x, task, flatX[r], taskOf[r])
		}
		mu := la.Dot(kstar, alpha)
		prior := m.D[task]
		for q := 0; q < m.Q; q++ {
			prior += m.A[q][task]*m.A[q][task] + m.B[q][task]
		}
		v := la.CopyVec(kstar)
		la.ForwardSubst(l, v)
		variance := prior - la.Dot(v, v)
		if variance < 0 {
			variance = 0
		}
		wantMu := mu*m.yStd + m.yMean
		wantVar := variance * m.yStd * m.yStd

		if math.Abs(gotMu-wantMu) > 1e-8*math.Max(1, math.Abs(wantMu)) {
			t.Fatalf("trial %d: mean %v, oracle %v", trial, gotMu, wantMu)
		}
		if math.Abs(gotVar-wantVar) > 1e-8*math.Max(1, wantVar) {
			t.Fatalf("trial %d: variance %v, oracle %v", trial, gotVar, wantVar)
		}
	}
}

// TestAppendObservationsWorkerInvariant: the extension must be bitwise
// identical for any workers value, and one k-point append must be bitwise
// identical to k single-point appends.
func TestAppendObservationsWorkerInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	data := appendTestData(rng, 3, 10, 2)
	fit := func() *LCM {
		m, err := FitLCM(data, FitOptions{Q: 2, NumStarts: 1, MaxIter: 10, Seed: 4})
		if err != nil {
			t.Fatalf("FitLCM: %v", err)
		}
		return m
	}
	const k = 4
	xs := make([][]float64, k)
	tasksOf := make([]int, k)
	ys := make([]float64, k)
	for j := 0; j < k; j++ {
		xs[j] = []float64{rng.Float64(), rng.Float64()}
		tasksOf[j] = j % 3
		ys[j] = rng.NormFloat64()
	}
	block1, block8, oneAtATime := fit(), fit(), fit()
	if err := block1.AppendObservations(xs, tasksOf, ys, 1); err != nil {
		t.Fatalf("append workers=1: %v", err)
	}
	if err := block8.AppendObservations(xs, tasksOf, ys, 8); err != nil {
		t.Fatalf("append workers=8: %v", err)
	}
	for j := 0; j < k; j++ {
		if err := oneAtATime.AppendObservations(xs[j:j+1], tasksOf[j:j+1], ys[j:j+1], 3); err != nil {
			t.Fatalf("append point %d: %v", j, err)
		}
	}
	wsA, wsB, wsC := block1.NewPredictWorkspace(), block8.NewPredictWorkspace(), oneAtATime.NewPredictWorkspace()
	for trial := 0; trial < 20; trial++ {
		x := []float64{rng.Float64(), rng.Float64()}
		task := trial % 3
		muA, varA := block1.PredictInto(wsA, task, x)
		muB, varB := block8.PredictInto(wsB, task, x)
		muC, varC := oneAtATime.PredictInto(wsC, task, x)
		if math.Float64bits(muA) != math.Float64bits(muB) || math.Float64bits(varA) != math.Float64bits(varB) {
			t.Fatalf("trial %d: workers=1 vs workers=8 predictions differ", trial)
		}
		if math.Float64bits(muA) != math.Float64bits(muC) || math.Float64bits(varA) != math.Float64bits(varC) {
			t.Fatalf("trial %d: blocked vs one-at-a-time predictions differ", trial)
		}
	}
}

// TestAppendObservationsRejectsBadInput covers the validation paths and that
// a failed append leaves the model untouched.
func TestAppendObservationsRejectsBadInput(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	data := appendTestData(rng, 2, 8, 2)
	m, err := FitLCM(data, FitOptions{Q: 1, NumStarts: 1, MaxIter: 10, Seed: 2})
	if err != nil {
		t.Fatalf("FitLCM: %v", err)
	}
	n0 := m.NumSamples()
	cases := []struct {
		xs    [][]float64
		tasks []int
		ys    []float64
	}{
		{[][]float64{{0.1}}, []int{0}, []float64{1}},                     // wrong dim
		{[][]float64{{0.1, 0.2}}, []int{5}, []float64{1}},                // task out of range
		{[][]float64{{0.1, 0.2}}, []int{0}, []float64{math.NaN()}},       // non-finite y
		{[][]float64{{math.Inf(1), 0.2}}, []int{0}, []float64{1}},        // non-finite x
		{[][]float64{{0.1, 0.2}, {0.3, 0.4}}, []int{0}, []float64{1, 2}}, // length mismatch
	}
	for i, c := range cases {
		if err := m.AppendObservations(c.xs, c.tasks, c.ys, 1); err == nil {
			t.Fatalf("case %d: append accepted bad input", i)
		}
		if m.NumSamples() != n0 {
			t.Fatalf("case %d: failed append changed the model", i)
		}
	}
	var bare LCM
	if err := bare.AppendObservations([][]float64{{0, 0}}, []int{0}, []float64{1}, 1); err == nil {
		t.Fatalf("append on unfitted model succeeded")
	}
}
