package gp

// pairCache holds the per-dimension pairwise squared differences of a fixed
// sample set, packed over the upper triangle (r ≤ s) in row-major order.
// It is computed once per FitLCM call and shared read-only by every L-BFGS
// evaluation of every restart, so the ~400 likelihood/gradient evaluations
// of a modeling phase never re-touch the raw coordinates: each kernel entry
// becomes a weighted sum over cached distances (the paper's Table 3 shows
// modeling time dominating as n·δ grows, which makes this the hot path).
//
// Layout: pair p = pairStart(r) + (s-r) for r ≤ s, and sq[p*dim+d] holds
// (x_r[d] - x_s[d])². Diagonal pairs are stored (as zeros) to keep row
// ranges contiguous: row r owns pairs [pairStart(r), pairStart(r)+n-r).
type pairCache struct {
	n, dim int
	npairs int
	sq     []float64 // len npairs*dim, pair-major
}

// pairStart returns the packed index of pair (r, r).
func (c *pairCache) pairStart(r int) int {
	return r*c.n - r*(r-1)/2
}

// newPairCache precomputes the squared-difference tensor for flatX.
func newPairCache(flatX [][]float64, dim int) *pairCache {
	n := len(flatX)
	c := &pairCache{n: n, dim: dim, npairs: n * (n + 1) / 2}
	c.sq = make([]float64, c.npairs*dim)
	for r := 0; r < n; r++ {
		xr := flatX[r]
		p := c.pairStart(r)
		for s := r; s < n; s++ {
			xs := flatX[s]
			base := (p + s - r) * dim
			for d := 0; d < dim; d++ {
				diff := xr[d] - xs[d]
				c.sq[base+d] = diff * diff
			}
		}
	}
	return c
}
