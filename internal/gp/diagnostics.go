package gp

import (
	"errors"
	"math"

	"repro/internal/la"
)

// LOODiagnostics holds leave-one-out cross-validation results for a fitted
// LCM: for each training sample, the posterior prediction the model would
// have made had that sample been left out. These come in closed form from
// the precision matrix (Sundararajan & Keerthi 2001):
//
//	μ_i^loo = y_i − α_i / K⁻¹_ii,   σ²_i^loo = 1 / K⁻¹_ii
//
// in the standardized-output space of the model.
type LOODiagnostics struct {
	Mean     []float64 // LOO predictive means (original units)
	Variance []float64 // LOO predictive variances (original units²)
	// StdResiduals are (y_i − μ_i^loo)/σ_i^loo; for a well-calibrated model
	// these are approximately standard normal.
	StdResiduals []float64
	// LogPseudoLikelihood is Σ log N(y_i; μ_i^loo, σ²_i^loo), a model
	// selection criterion robust to prior misspecification.
	LogPseudoLikelihood float64
	// RMSE is the root-mean-square LOO prediction error (original units).
	RMSE float64
}

// LeaveOneOut computes closed-form LOO diagnostics for the fitted model.
func (m *LCM) LeaveOneOut() (*LOODiagnostics, error) {
	if m.chol == nil {
		return nil, errors.New("gp: LeaveOneOut on unfitted model")
	}
	n := len(m.flatX)
	inv := la.CholInverse(m.chol.Dense())
	d := &LOODiagnostics{
		Mean:         make([]float64, n),
		Variance:     make([]float64, n),
		StdResiduals: make([]float64, n),
	}
	var sse float64
	for i := 0; i < n; i++ {
		prec := inv.At(i, i)
		if prec <= 0 {
			return nil, errors.New("gp: non-positive LOO precision (ill-conditioned fit)")
		}
		// Standardized-space quantities.
		yStd := m.yNorm[i]
		looMuStd := yStd - m.alpha[i]/prec
		looVarStd := 1 / prec

		mu := looMuStd*m.yStd + m.yMean
		variance := looVarStd * m.yStd * m.yStd
		yObs := yStd*m.yStd + m.yMean

		d.Mean[i] = mu
		d.Variance[i] = variance
		resid := yObs - mu
		sse += resid * resid
		sd := math.Sqrt(variance)
		d.StdResiduals[i] = resid / sd
		d.LogPseudoLikelihood += -0.5*math.Log(2*math.Pi*variance) - resid*resid/(2*variance)
	}
	d.RMSE = math.Sqrt(sse / float64(n))
	return d, nil
}
