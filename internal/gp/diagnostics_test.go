package gp

import (
	"math"
	"math/rand"
	"testing"
)

// Brute-force LOO: refit is expensive, but for a FIXED set of
// hyperparameters the LOO prediction equals the posterior at x_i computed
// from the other n-1 points. We verify the closed form against that.
func TestLeaveOneOutMatchesExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := syntheticDataset(rng, 2, 8, 1, 0.05)
	model, err := FitLCM(data, FitOptions{Q: 1, NumStarts: 2, MaxIter: 60, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	loo, err := model.LeaveOneOut()
	if err != nil {
		t.Fatal(err)
	}
	n := len(model.flatX)
	if len(loo.Mean) != n || len(loo.Variance) != n || len(loo.StdResiduals) != n {
		t.Fatalf("shape mismatch")
	}

	// Explicit check for a few indices: rebuild Σ without row/col i and
	// predict.
	sigma := model.covariance(model.flatX, model.taskOf)
	for _, i := range []int{0, 5, n - 1} {
		// Partition indices.
		var rest []int
		for j := 0; j < n; j++ {
			if j != i {
				rest = append(rest, j)
			}
		}
		// K_rr, k_ri.
		krr := make([][]float64, len(rest))
		kri := make([]float64, len(rest))
		yr := make([]float64, len(rest))
		for a, ja := range rest {
			krr[a] = make([]float64, len(rest))
			for b, jb := range rest {
				krr[a][b] = sigma.At(ja, jb)
			}
			// Diagonal regularization from the fit's jitter.
			krr[a][a] += model.Jitter
			kri[a] = sigma.At(ja, i)
			yr[a] = model.yNorm[ja]
		}
		// Solve krr w = kri and krr v = yr by Gaussian elimination (small).
		w := solveDense(krr, kri)
		v := solveDense(krr, yr)
		muStd := 0.0
		varStd := sigma.At(i, i) + model.Jitter
		for a := range rest {
			muStd += kri[a] * v[a]
			varStd -= kri[a] * w[a]
		}
		wantMu := muStd*model.yStd + model.yMean
		wantVar := varStd * model.yStd * model.yStd
		if math.Abs(loo.Mean[i]-wantMu) > 1e-5*(1+math.Abs(wantMu)) {
			t.Errorf("i=%d: LOO mean %v, explicit %v", i, loo.Mean[i], wantMu)
		}
		if math.Abs(loo.Variance[i]-wantVar) > 1e-5*(1+wantVar) {
			t.Errorf("i=%d: LOO var %v, explicit %v", i, loo.Variance[i], wantVar)
		}
	}
	if loo.RMSE < 0 || math.IsNaN(loo.LogPseudoLikelihood) {
		t.Fatalf("bad summary stats: %+v", loo)
	}
}

// solveDense solves a small dense SPD system by Gaussian elimination with
// partial pivoting (test helper).
func solveDense(a [][]float64, b []float64) []float64 {
	n := len(a)
	m := make([][]float64, n)
	for i := range m {
		m[i] = append(append([]float64{}, a[i]...), b[i])
	}
	for col := 0; col < n; col++ {
		p := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[p][col]) {
				p = r
			}
		}
		m[col], m[p] = m[p], m[col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] / m[col][col]
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := m[r][n]
		for c := r + 1; c < n; c++ {
			s -= m[r][c] * x[c]
		}
		x[r] = s / m[r][r]
	}
	return x
}

func TestLeaveOneOutUnfitted(t *testing.T) {
	var m LCM
	if _, err := m.LeaveOneOut(); err == nil {
		t.Fatalf("unfitted model accepted")
	}
}

func TestLeaveOneOutResidualsCalibrated(t *testing.T) {
	// On noise-free smooth data with plenty of samples, LOO residuals
	// should be mostly within ±4.
	rng := rand.New(rand.NewSource(3))
	data := syntheticDataset(rng, 1, 30, 1, 0)
	model, err := FitLCM(data, FitOptions{NumStarts: 3, MaxIter: 100, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	loo, err := model.LeaveOneOut()
	if err != nil {
		t.Fatal(err)
	}
	outliers := 0
	for _, r := range loo.StdResiduals {
		if math.Abs(r) > 4 {
			outliers++
		}
	}
	if outliers > len(loo.StdResiduals)/5 {
		t.Fatalf("%d/%d residuals beyond ±4 — badly calibrated", outliers, len(loo.StdResiduals))
	}
}
