package gp

import (
	"math"

	"repro/internal/la"
	"repro/internal/mpx"
)

// gradChunkRows is the fixed row-chunk size of the parallel kernel and
// gradient sweeps. It must never depend on the worker count: per-chunk
// partial sums are merged in chunk-index order, which keeps every reduction
// bitwise identical for any FitOptions.Workers (the regression guard
// TestFitLCMParallelWorkersAgree relies on this).
const gradChunkRows = 32

// lcmEngine evaluates the LCM log marginal likelihood and its analytic
// gradient against a fixed dataset. It is the hot path of the modeling
// phase: one L-BFGS restart performs ~100 evaluations, and the paper's
// Table 3 shows this phase dominating GPTune's overhead as n·δ grows.
//
// Versus the naive evaluation (retained in reference.go), the engine
//   - reads every pairwise distance from a pairCache computed once per
//     FitLCM call instead of re-touching the raw coordinates,
//   - sweeps only the upper triangle (r ≤ s), exploiting the symmetry of
//     both Σ and the gradient contractions,
//   - reduces the a/b/d gradients to per-task-block sums (δ² per latent)
//     instead of scattering into the gradient vector per sample pair, and
//   - distributes kernel assembly, the gradient sweep, the blocked Cholesky
//     and the inverse over Workers goroutines.
//
// One engine serves one goroutine (the scratch buffers are reused across
// evaluations); the pairCache is shared read-only by all engines.
type lcmEngine struct {
	layout    hyperLayout
	cache     *pairCache
	taskOf    []int
	yn        []float64
	workers   int
	cholBlock int

	// Reusable scratch, sized once at construction.
	kq     []float64   // [npairs*Q] pair-major kernel values k_q(x_r, x_s)
	sigma  *la.Matrix  // assembled covariance
	invWT  *la.Matrix  // W = L⁻¹ scratch for the inverse
	invBuf *la.Matrix  // Σ⁻¹ output scratch
	coef   [][]float64 // [q][tasks*tasks]: a_qi·a_qj (+ b_qi when i = j)
	winv   [][]float64 // [q][dim]: 1/l²
	grad   []float64   // gradient output buffer

	// Per-chunk partial accumulators, merged serially in chunk order.
	chunkV    [][]float64 // [chunk][Q*T*T]: Σ_{r<s} mm·k_q per (q, t_r, t_s)
	chunkGL   [][]float64 // [chunk][Q*dim]: Σ_{r<s} mm·coef·k_q·sq_d
	chunkDsum [][]float64 // [chunk][T]: Σ_r mm_rr per task
	chunkEq   [][]float64 // [chunk][Q] per-pair scratch
}

func newLCMEngine(cache *pairCache, layout hyperLayout, taskOf []int, yn []float64, workers, cholBlock int) *lcmEngine {
	e := &lcmEngine{
		layout:    layout,
		cache:     cache,
		taskOf:    taskOf,
		yn:        yn,
		workers:   workers,
		cholBlock: cholBlock,
		kq:        make([]float64, cache.npairs*layout.q),
		sigma:     la.NewMatrix(cache.n, cache.n),
		invWT:     la.NewMatrix(cache.n, cache.n),
		invBuf:    la.NewMatrix(cache.n, cache.n),
		coef:      make([][]float64, layout.q),
		winv:      make([][]float64, layout.q),
		grad:      make([]float64, layout.total()),
	}
	for q := 0; q < layout.q; q++ {
		e.coef[q] = make([]float64, layout.tasks*layout.tasks)
		e.winv[q] = make([]float64, layout.dim)
	}
	nc := mpx.NumChunks(cache.n, gradChunkRows)
	e.chunkV = make([][]float64, nc)
	e.chunkGL = make([][]float64, nc)
	e.chunkDsum = make([][]float64, nc)
	e.chunkEq = make([][]float64, nc)
	for c := 0; c < nc; c++ {
		e.chunkV[c] = make([]float64, layout.q*layout.tasks*layout.tasks)
		e.chunkGL[c] = make([]float64, layout.q*layout.dim)
		e.chunkDsum[c] = make([]float64, layout.tasks)
		e.chunkEq[c] = make([]float64, layout.q)
	}
	return e
}

// prepare fills the per-latent coefficient tables C_q[i][j] = a_qi·a_qj
// (+ b_qi on the diagonal) and inverse-square lengthscales for model m.
func (e *lcmEngine) prepare(m *LCM) {
	T := e.layout.tasks
	for q := 0; q < e.layout.q; q++ {
		cq := e.coef[q]
		for ti := 0; ti < T; ti++ {
			for tj := 0; tj < T; tj++ {
				c := m.A[q][ti] * m.A[q][tj]
				if ti == tj {
					c += m.B[q][ti]
				}
				cq[ti*T+tj] = c
			}
		}
		for d := 0; d < e.layout.dim; d++ {
			e.winv[q][d] = 1 / (m.Ls[q][d] * m.Ls[q][d])
		}
	}
}

// assembleSigma computes all latent kernels k_q and the Eq. (4) covariance Σ
// in one parallel pass over the cached distance tensor. prepare(m) must have
// been called. The kernels stay in e.kq for the gradient sweep.
func (e *lcmEngine) assembleSigma(m *LCM) *la.Matrix {
	n := e.cache.n
	Q := e.layout.q
	T := e.layout.tasks
	dim := e.layout.dim
	sigma := e.sigma
	sqAll := e.cache.sq
	kqAll := e.kq
	mpx.ParallelChunks(n, gradChunkRows, e.workers, func(_, lo, hi int) {
		for r := lo; r < hi; r++ {
			tr := e.taskOf[r]
			trT := tr * T
			dr := m.D[tr]
			sigRow := sigma.Data[r*n : (r+1)*n]
			// Pairs (r, r..n-1) are contiguous in the packed layout; walk
			// them with running offsets instead of re-deriving slices.
			pp := e.cache.pairStart(r)
			sqOff := pp * dim
			kqOff := pp * Q
			for s := r; s < n; s++ {
				ts := e.taskOf[s]
				v := 0.0
				for q := 0; q < Q; q++ {
					w := e.winv[q]
					acc := 0.0
					for d := 0; d < dim; d++ {
						acc += w[d] * sqAll[sqOff+d]
					}
					k := math.Exp(-0.5 * acc)
					kqAll[kqOff+q] = k
					v += e.coef[q][trT+ts] * k
				}
				if r == s {
					v += dr
				}
				sigRow[s] = v
				sigma.Data[s*n+r] = v
				sqOff += dim
				kqOff += Q
			}
		}
	})
	return sigma
}

// logLikGrad returns the log marginal likelihood and its gradient with
// respect to theta. The returned gradient slice is owned by the engine and
// overwritten by the next call. The result is bitwise identical for every
// worker count.
func (e *lcmEngine) logLikGrad(theta []float64) (float64, []float64, error) {
	m := thetaToModel(theta, e.layout)
	n := e.cache.n
	Q := e.layout.q
	T := e.layout.tasks
	dim := e.layout.dim

	e.prepare(m)
	sigma := e.assembleSigma(m)

	l, _, err := parallelCholJitter(sigma, e.cholBlock, e.workers)
	if err != nil {
		return 0, nil, err
	}
	alpha := la.SolveCholVec(l, e.yn)
	ll := -0.5*la.Dot(e.yn, alpha) - 0.5*la.LogDetFromChol(l) - 0.5*float64(n)*math.Log(2*math.Pi)

	inv := la.ParallelCholInverseInto(l, e.workers, e.invWT, e.invBuf)

	// Gradient sweep over the upper triangle with M = ααᵀ - Σ⁻¹ formed on
	// the fly. All contractions reduce to per-chunk partial sums:
	//
	//	V_q[i][j]  = Σ_{r<s, t_r=i, t_s=j} M_rs·k_q(r,s)
	//	gl[q][d]   = Σ_{r<s} M_rs·C_q[t_r][t_s]·k_q(r,s)·(x_r[d]-x_s[d])²
	//	dsum[i]    = Σ_{r, t_r=i} M_rr
	mpx.ParallelChunks(n, gradChunkRows, e.workers, func(c, lo, hi int) {
		vbuf := e.chunkV[c]
		glbuf := e.chunkGL[c]
		dbuf := e.chunkDsum[c]
		eq := e.chunkEq[c]
		for i := range vbuf {
			vbuf[i] = 0
		}
		for i := range glbuf {
			glbuf[i] = 0
		}
		for i := range dbuf {
			dbuf[i] = 0
		}
		sqAll := e.cache.sq
		kqAll := e.kq
		TT := T * T
		for r := lo; r < hi; r++ {
			tr := e.taskOf[r]
			trT := tr * T
			ar := alpha[r]
			invRow := inv.Data[r*n : (r+1)*n]
			dbuf[tr] += ar*ar - invRow[r]
			// Running offsets into the packed pair-major tensors, starting
			// at pair (r, r+1).
			pp := e.cache.pairStart(r) + 1
			kqOff := pp * Q
			sqOff := pp * dim
			for s := r + 1; s < n; s++ {
				mm := ar*alpha[s] - invRow[s]
				tt := trT + e.taskOf[s]
				for q := 0; q < Q; q++ {
					mk := mm * kqAll[kqOff+q]
					vbuf[q*TT+tt] += mk
					eq[q] = mk * e.coef[q][tt]
				}
				for d := 0; d < dim; d++ {
					sd := sqAll[sqOff+d]
					if sd == 0 { //gptlint:ignore float-eq exact-zero sparsity skip; zero distance contributes exactly zero gradient
						continue
					}
					for q := 0; q < Q; q++ {
						glbuf[q*dim+d] += eq[q] * sd
					}
				}
				kqOff += Q
				sqOff += dim
			}
		}
	})

	// Merge chunk partials in fixed chunk order (worker-count independent).
	v0 := e.chunkV[0]
	gl0 := e.chunkGL[0]
	d0 := e.chunkDsum[0]
	for c := 1; c < len(e.chunkV); c++ {
		for i, v := range e.chunkV[c] {
			v0[i] += v
		}
		for i, v := range e.chunkGL[c] {
			gl0[i] += v
		}
		for i, v := range e.chunkDsum[c] {
			d0[i] += v
		}
	}

	// Assemble the gradient from the task-block sums. With
	// T_q[i][j] = Σ_{ordered (r,s), t_r=i, t_s=j} M_rs·k_q (so
	// T_q[i][j] = V_q[i][j]+V_q[j][i] off-diagonal and
	// T_q[i][i] = 2·V_q[i][i]+dsum[i], since k_q(r,r) = 1):
	//
	//	∂L/∂a_qi       = Σ_j T_q[i][j]·a_qj
	//	∂L/∂log b_qi   = ½·b_qi·T_q[i][i]
	//	∂L/∂log d_i    = ½·d_i·dsum[i]
	//	∂L/∂log l_qd   = gl[q][d]/l²
	grad := e.grad
	for q := 0; q < Q; q++ {
		vq := v0[q*T*T : (q+1)*T*T]
		aq := m.A[q]
		for i := 0; i < T; i++ {
			tii := 2*vq[i*T+i] + d0[i]
			ga := tii * aq[i]
			for j := 0; j < T; j++ {
				if j == i {
					continue
				}
				ga += (vq[i*T+j] + vq[j*T+i]) * aq[j]
			}
			grad[e.layout.aAt(q, i)] = ga
			grad[e.layout.bAt(q, i)] = 0.5 * m.B[q][i] * tii
		}
		for d := 0; d < dim; d++ {
			grad[e.layout.lsAt(q, d)] = gl0[q*dim+d] * e.winv[q][d]
		}
	}
	for i := 0; i < T; i++ {
		grad[e.layout.dAt(i)] = 0.5 * m.D[i] * d0[i]
	}
	return ll, grad, nil
}
