package gp

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
)

// flatten mirrors FitLCM's dataset flattening for direct engine tests.
func flatten(data *Dataset) (flatX [][]float64, taskOf []int, yn []float64) {
	var flatY []float64
	for i := range data.X {
		for j := range data.X[i] {
			flatX = append(flatX, data.X[i][j])
			taskOf = append(taskOf, i)
			flatY = append(flatY, data.Y[i][j])
		}
	}
	mean, std := meanStd(flatY)
	yn = make([]float64, len(flatY))
	for i, v := range flatY {
		yn[i] = (v - mean) / std
	}
	return flatX, taskOf, yn
}

// The cached/parallel engine must agree with the naive reference evaluation.
// Two sizes: n < CholBlock exercises the serial Cholesky shortcut, n > 64
// the blocked parallel path.
func TestEngineMatchesReference(t *testing.T) {
	for _, cfg := range []struct {
		name           string
		tasks, samples int
		tol            float64
	}{
		{"small", 3, 8, 1e-9},
		{"blocked", 3, 30, 1e-7},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(21))
			data := syntheticDataset(rng, cfg.tasks, cfg.samples, 3, 0.05)
			layout := hyperLayout{q: 2, dim: data.Dim, tasks: data.NumTasks()}
			flatX, taskOf, yn := flatten(data)
			eng := newLCMEngine(newPairCache(flatX, data.Dim), layout, taskOf, yn, 2, 64)
			for trial := 0; trial < 4; trial++ {
				theta := randomInit(layout, rng)
				llRef, gradRef, errRef := lcmLogLikGradReference(theta, layout, flatX, taskOf, yn)
				ll, grad, err := eng.logLikGrad(theta)
				if (err == nil) != (errRef == nil) {
					t.Fatalf("trial %d: error mismatch: engine %v, reference %v", trial, err, errRef)
				}
				if err != nil {
					continue
				}
				if d := math.Abs(ll - llRef); d > cfg.tol*(1+math.Abs(llRef)) {
					t.Errorf("trial %d: ll %v vs reference %v", trial, ll, llRef)
				}
				for p := range grad {
					if d := math.Abs(grad[p] - gradRef[p]); d > cfg.tol*(1+math.Abs(gradRef[p])) {
						t.Errorf("trial %d param %d: grad %v vs reference %v", trial, p, grad[p], gradRef[p])
					}
				}
			}
		})
	}
}

// The engine's chunked reductions and the blocked Cholesky must make every
// result bitwise identical for any worker count — this is what guarantees
// FitOptions.Workers never changes the fitted model.
func TestEngineWorkerCountInvariance(t *testing.T) {
	// Worker pools cap CPU-bound workers at GOMAXPROCS; raise it so the
	// parallel paths genuinely run concurrently even on a 1-CPU machine.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	rng := rand.New(rand.NewSource(33))
	data := syntheticDataset(rng, 4, 30, 3, 0.05) // n = 120 > CholBlock and > one chunk
	layout := hyperLayout{q: 2, dim: data.Dim, tasks: data.NumTasks()}
	flatX, taskOf, yn := flatten(data)
	cache := newPairCache(flatX, data.Dim)
	theta := randomInit(layout, rng)

	ll1, g1, err := newLCMEngine(cache, layout, taskOf, yn, 1, 64).logLikGrad(theta)
	if err != nil {
		t.Fatal(err)
	}
	grad1 := append([]float64(nil), g1...)
	for _, w := range []int{2, 3, 4, 8} {
		llw, gw, err := newLCMEngine(cache, layout, taskOf, yn, w, 64).logLikGrad(theta)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if llw != ll1 {
			t.Errorf("workers=%d: ll %v != serial %v", w, llw, ll1)
		}
		for p := range gw {
			if gw[p] != grad1[p] {
				t.Errorf("workers=%d param %d: grad %v != serial %v", w, p, gw[p], grad1[p])
			}
		}
	}
}

// FitLCM with Workers=1 and Workers=4 must produce the identical best
// log-likelihood at a fixed seed, including at sizes that trigger the
// blocked Cholesky and multi-chunk gradient sweeps (the regression guard
// for the parallel gradient merge).
func TestFitLCMWorkersIdenticalLargeN(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	rng := rand.New(rand.NewSource(44))
	data := syntheticDataset(rng, 3, 30, 2, 0.02) // n = 90 > CholBlock
	opts := FitOptions{Q: 2, NumStarts: 2, MaxIter: 12, Seed: 45}

	o1 := opts
	o1.Workers = 1
	m1, err := FitLCM(data, o1)
	if err != nil {
		t.Fatal(err)
	}
	o4 := opts
	o4.Workers = 4
	m4, err := FitLCM(data, o4)
	if err != nil {
		t.Fatal(err)
	}
	if m1.LogLik != m4.LogLik {
		t.Fatalf("Workers changed the fit: %v vs %v (diff %g)", m1.LogLik, m4.LogLik, m1.LogLik-m4.LogLik)
	}
	// The fitted prediction state must agree too.
	ws := m4.NewPredictWorkspace()
	for trial := 0; trial < 20; trial++ {
		x := []float64{rng.Float64(), rng.Float64()}
		task := trial % data.NumTasks()
		mu1, v1 := m1.Predict(task, x)
		mu4, v4 := m4.PredictInto(ws, task, x)
		if math.Abs(mu1-mu4) > 1e-10 || math.Abs(v1-v4) > 1e-10 {
			t.Fatalf("prediction diverged: (%v,%v) vs (%v,%v)", mu1, v1, mu4, v4)
		}
	}
}

// PredictInto and PredictBatch must match the original Predict path to
// 1e-12 on random fitted models.
func TestPredictWorkspaceMatchesPredict(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 3; trial++ {
		data := syntheticDataset(rng, 2+trial, 10, 1+trial, 0.05)
		model, err := FitLCM(data, FitOptions{NumStarts: 2, MaxIter: 30, Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		ws := model.NewPredictWorkspace()
		var xs [][]float64
		for k := 0; k < 25; k++ {
			x := make([]float64, data.Dim)
			for d := range x {
				x[d] = rng.Float64()*2 - 0.5
			}
			xs = append(xs, x)
		}
		means := make([]float64, len(xs))
		vars := make([]float64, len(xs))
		for task := 0; task < data.NumTasks(); task++ {
			model.PredictBatch(task, xs, means, vars, ws)
			for k, x := range xs {
				mu, v := model.Predict(task, x)
				muWS, vWS := model.PredictInto(ws, task, x)
				if math.Abs(mu-muWS) > 1e-12*(1+math.Abs(mu)) || math.Abs(v-vWS) > 1e-12*(1+v) {
					t.Fatalf("trial %d task %d: PredictInto (%v,%v) vs Predict (%v,%v)", trial, task, muWS, vWS, mu, v)
				}
				if means[k] != muWS || vars[k] != vWS {
					t.Fatalf("trial %d task %d: PredictBatch disagrees with PredictInto", trial, task)
				}
			}
		}
	}
}

// PredictInto must not allocate in steady state.
func TestPredictIntoZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	data := syntheticDataset(rng, 2, 15, 2, 0.05)
	model, err := FitLCM(data, FitOptions{NumStarts: 2, MaxIter: 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ws := model.NewPredictWorkspace()
	x := []float64{0.4, 0.6}
	allocs := testing.AllocsPerRun(100, func() {
		model.PredictInto(ws, 0, x)
	})
	if allocs != 0 {
		t.Fatalf("PredictInto allocates %v times per call, want 0", allocs)
	}
}
