// Package gp implements the surrogate models of the paper's Section 3: the
// Linear Coregionalization Model (LCM) that generalizes Gaussian process
// regression to the multitask setting (Eqs. 1–4), its log-marginal-likelihood
// with analytic gradients, multi-start L-BFGS hyperparameter learning, and
// the posterior prediction equations (Eqs. 5–6).
//
// Single-task GP regression is the δ=1, Q=1 special case of the LCM, exactly
// as "single-task learning" in the paper is GPTune run with one task.
package gp

import "math"

// rbf evaluates the Gaussian kernel of Eq. (3) with unit σ_q (the paper
// fixes σ_q = 1): k(x, x') = exp(-Σ_d (x_d - x'_d)² / (2 l_d²)).
func rbf(x, y, lengthscales []float64) float64 {
	s := 0.0
	for d, ld := range lengthscales {
		diff := (x[d] - y[d]) / ld
		s += diff * diff
	}
	return math.Exp(-0.5 * s)
}

// sqDiff returns (x_d - y_d)² for one dimension.
func sqDiff(x, y []float64, d int) float64 {
	diff := x[d] - y[d]
	return diff * diff
}
