package gp

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/la"
	"repro/internal/mpx"
	"repro/internal/opt"
)

// Dataset holds multitask training data: for each task i, the normalized
// tuning-parameter samples X[i] (each of length Dim) and the observed scalar
// outputs Y[i]. Tasks may have different sample counts (MLA grows them one
// at a time).
type Dataset struct {
	Dim int
	X   [][][]float64 // [task][sample][dim]
	Y   [][]float64   // [task][sample]
}

// NumTasks returns δ.
func (d *Dataset) NumTasks() int { return len(d.X) }

// TotalSamples returns Σ_i ε_i.
func (d *Dataset) TotalSamples() int {
	n := 0
	for _, xi := range d.X {
		n += len(xi)
	}
	return n
}

// Validate reports structural problems (mismatched lengths, empty tasks,
// non-finite observations).
func (d *Dataset) Validate() error {
	if len(d.X) == 0 {
		return errors.New("gp: dataset has no tasks")
	}
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("gp: %d task sample sets vs %d output sets", len(d.X), len(d.Y))
	}
	for i := range d.X {
		if len(d.X[i]) == 0 {
			return fmt.Errorf("gp: task %d has no samples", i)
		}
		if len(d.X[i]) != len(d.Y[i]) {
			return fmt.Errorf("gp: task %d: %d samples vs %d outputs", i, len(d.X[i]), len(d.Y[i]))
		}
		for j, x := range d.X[i] {
			if len(x) != d.Dim {
				return fmt.Errorf("gp: task %d sample %d has dim %d, want %d", i, j, len(x), d.Dim)
			}
			for _, v := range x {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return fmt.Errorf("gp: task %d sample %d has non-finite coordinate", i, j)
				}
			}
			if math.IsNaN(d.Y[i][j]) || math.IsInf(d.Y[i][j], 0) {
				return fmt.Errorf("gp: task %d sample %d has non-finite output", i, j)
			}
		}
	}
	return nil
}

// LCM is a fitted Linear Coregionalization Model. The covariance between
// sample (i, j) and (i', j') is Eq. (4):
//
//	Σ = Σ_q (a_iq·a_i'q + b_iq·δ_ii') k_q(x, x') + d_i·δ_ii'·δ_jj'
//
// with k_q the unit-variance Gaussian kernel of Eq. (3).
type LCM struct {
	Q        int         // number of latent functions (≤ δ)
	NumTasks int         // δ
	Dim      int         // β (plus performance-model features if enriched)
	Ls       [][]float64 // lengthscales [q][dim]
	A        [][]float64 // mixing coefficients [q][task]
	B        [][]float64 // per-task diagonal boosts [q][task]
	D        []float64   // per-task noise (regularization) [task]
	LogLik   float64     // log marginal likelihood at the fitted state
	Jitter   float64     // diagonal jitter applied during factorization

	// Fitted prediction state. The Cholesky factor lives in packed
	// triangular form so AppendObservations can grow it in place — the
	// incremental exact path behind core.Options.RefitEvery.
	flatX  [][]float64
	taskOf []int
	chol   *la.TriPacked
	alpha  []float64
	yNorm  []float64 // standardized training outputs (for LOO diagnostics)
	yMean  float64
	yStd   float64

	// Prediction fast-path tables built by prepPredict (see predict.go):
	// contiguous training coordinates, the per-task cross-covariance
	// coefficient table, per-latent inverse-square lengthscales, and the
	// per-task prior variance.
	xflat     []float64   // [n*Dim] row-major copy of flatX
	predCoef  [][]float64 // [task][n*Q]: A[q][task]·A[q][taskOf[r]] (+B[q][task])
	predWinv  []float64   // [Q*Dim]: 0.5/l²
	predPrior []float64   // [task]: Σ_q (a²+b) + d
}

// FitOptions configures LCM hyperparameter learning (the paper's modeling
// phase, Section 3.1 step 2 and Section 4.3).
type FitOptions struct {
	Q         int   // latent functions; default min(δ, 3)
	NumStarts int   // L-BFGS random restarts n_start; default 4
	Workers   int   // parallel restarts and factorization workers; default 1
	MaxIter   int   // L-BFGS iterations per start; default 100
	Seed      int64 // RNG seed for restarts
	CholBlock int   // parallel Cholesky block size; default 64

	// Init, when non-nil, replaces the random initialization of the first
	// L-BFGS start with the given hyperparameter vector (the Hyperparameters
	// layout of a previously fitted model) — the warm-start hook behind
	// surrogate transfer sessions. A vector whose length does not match the
	// fit's layout, or that contains non-finite values, is ignored, so a
	// snapshot from an incompatible run degrades to a cold start instead of
	// failing. The remaining NumStarts−1 starts stay random and unchanged.
	Init []float64
}

func (o *FitOptions) defaults(numTasks int) {
	if o.Q <= 0 {
		o.Q = numTasks
		if o.Q > 3 {
			o.Q = 3
		}
	}
	if o.Q > numTasks {
		o.Q = numTasks
	}
	if o.NumStarts <= 0 {
		o.NumStarts = 4
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 100
	}
	if o.CholBlock <= 0 {
		o.CholBlock = 64
	}
}

// hyperparameter vector layout (all in log space except A which is linear):
//
//	[ log l_{q,d} : q ∈ [0,Q), d ∈ [0,Dim) ]
//	[ a_{q,i}     : q ∈ [0,Q), i ∈ [0,δ)   ]
//	[ log b_{q,i} : q ∈ [0,Q), i ∈ [0,δ)   ]
//	[ log d_i     : i ∈ [0,δ)              ]
type hyperLayout struct {
	q, dim, tasks int
}

func (h hyperLayout) total() int        { return h.q*h.dim + 2*h.q*h.tasks + h.tasks }
func (h hyperLayout) lsAt(q, d int) int { return q*h.dim + d }
func (h hyperLayout) aAt(q, i int) int  { return h.q*h.dim + q*h.tasks + i }
func (h hyperLayout) bAt(q, i int) int  { return h.q*h.dim + h.q*h.tasks + q*h.tasks + i }
func (h hyperLayout) dAt(i int) int     { return h.q*h.dim + 2*h.q*h.tasks + i }

// FitLCM learns LCM hyperparameters by maximizing the log marginal
// likelihood with NumStarts multi-start L-BFGS runs (distributed over
// Workers goroutines, mirroring the paper's parallelism over random starts)
// and returns the best fitted model.
func FitLCM(data *Dataset, options FitOptions) (*LCM, error) {
	if err := data.Validate(); err != nil {
		return nil, err
	}
	numTasks := data.NumTasks()
	options.defaults(numTasks)

	// Flatten samples and standardize Y globally (the model's zero-mean
	// prior then matches the data scale).
	n := data.TotalSamples()
	flatX := make([][]float64, 0, n)
	taskOf := make([]int, 0, n)
	flatY := make([]float64, 0, n)
	for i := range data.X {
		for j := range data.X[i] {
			flatX = append(flatX, data.X[i][j])
			taskOf = append(taskOf, i)
			flatY = append(flatY, data.Y[i][j])
		}
	}
	mean, std := meanStd(flatY)
	yn := make([]float64, n)
	for i, v := range flatY {
		yn[i] = (v - mean) / std
	}

	layout := hyperLayout{q: options.Q, dim: data.Dim, tasks: numTasks}
	warm := options.Init
	if len(warm) != layout.total() || !allFinite(warm) {
		warm = nil
	}

	// The per-dimension pairwise squared-difference tensor is computed once
	// and shared read-only by every L-BFGS evaluation of every restart and
	// by the final factorization (Section 4.2 parallelizes hyperparameter
	// learning; the cache is what keeps each evaluation from re-touching
	// the raw coordinates).
	cache := newPairCache(flatX, data.Dim)

	type fitResult struct {
		theta []float64
		ll    float64
	}
	results := make([]fitResult, options.NumStarts)
	// Split the worker budget: restarts first (they are embarrassingly
	// parallel), leftover workers parallelize inside each evaluation. The
	// fitted model is identical for every split — the engine's reductions
	// are worker-count independent, and each start depends only on its own
	// seed, never on which chunk ran it. One engine per chunk keeps the
	// per-worker buffer reuse of the old hand-rolled pool.
	restartWorkers := options.Workers
	if restartWorkers > options.NumStarts {
		restartWorkers = options.NumStarts
	}
	innerWorkers := options.Workers / restartWorkers
	if innerWorkers < 1 {
		innerWorkers = 1
	}
	chunk := (options.NumStarts + restartWorkers - 1) / restartWorkers
	mpx.ParallelChunks(options.NumStarts, chunk, restartWorkers, func(_, lo, hi int) {
		eng := newLCMEngine(cache, layout, taskOf, yn, innerWorkers, options.CholBlock)
		eval := func(theta []float64, grad []float64) float64 {
			ll, g, err := eng.logLikGrad(theta)
			if err != nil {
				// Indefinite covariance even after jitter: reject the region.
				for i := range grad {
					grad[i] = 0
				}
				return math.Inf(1)
			}
			for i := range grad {
				grad[i] = -g[i]
			}
			return -ll
		}
		for s := lo; s < hi; s++ {
			rng := rand.New(rand.NewSource(options.Seed + int64(s)*7919 + 1))
			theta0 := randomInit(layout, rng)
			if s == 0 && warm != nil {
				theta0 = append([]float64(nil), warm...)
			}
			res := opt.LBFGS(eval, theta0, opt.LBFGSParams{MaxIter: options.MaxIter})
			results[s] = fitResult{theta: res.X, ll: -res.F}
		}
	})

	best := -1
	for s := range results {
		if results[s].theta == nil || math.IsNaN(results[s].ll) || math.IsInf(results[s].ll, 0) {
			continue
		}
		if best < 0 || results[s].ll > results[best].ll {
			best = s
		}
	}
	if best < 0 {
		return nil, errors.New("gp: all hyperparameter starts failed")
	}

	model := thetaToModel(results[best].theta, layout)
	model.LogLik = results[best].ll
	model.flatX = flatX
	model.taskOf = taskOf
	model.yMean = mean
	model.yStd = std

	// Final factorization for prediction, parallel per Section 4.3, reusing
	// the distance cache for the covariance assembly.
	eng := newLCMEngine(cache, layout, taskOf, yn, options.Workers, options.CholBlock)
	eng.prepare(model)
	sigma := eng.assembleSigma(model)
	l, jit, err := parallelCholJitter(sigma, options.CholBlock, options.Workers)
	if err != nil {
		return nil, fmt.Errorf("gp: final covariance factorization: %w", err)
	}
	model.Jitter = jit
	model.chol = la.PackChol(l)
	model.alpha = la.SolveCholVec(l, yn)
	model.yNorm = yn
	model.prepPredict()
	return model, nil
}

// OutputStats returns the output standardization (mean, std) the fit froze:
// predictions are de-standardized with these, and consumers layering their
// own posterior algebra on the fitted hyperparameters (the sparse-GP
// backend) must normalize outputs identically.
func (m *LCM) OutputStats() (mean, std float64) { return m.yMean, m.yStd }

func allFinite(v []float64) bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

func meanStd(y []float64) (mean, std float64) {
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	for _, v := range y {
		std += (v - mean) * (v - mean)
	}
	std = math.Sqrt(std / float64(len(y)))
	if std < 1e-12 {
		std = 1
	}
	return mean, std
}

func randomInit(layout hyperLayout, rng *rand.Rand) []float64 {
	theta := make([]float64, layout.total())
	for q := 0; q < layout.q; q++ {
		for d := 0; d < layout.dim; d++ {
			// lengthscale ∈ ~[0.1, 1]
			theta[layout.lsAt(q, d)] = math.Log(0.1 + 0.9*rng.Float64())
		}
		for i := 0; i < layout.tasks; i++ {
			theta[layout.aAt(q, i)] = rng.NormFloat64()
			theta[layout.bAt(q, i)] = math.Log(0.01 + 0.1*rng.Float64())
		}
	}
	for i := 0; i < layout.tasks; i++ {
		theta[layout.dAt(i)] = math.Log(1e-3 + 1e-2*rng.Float64())
	}
	return theta
}

func thetaToModel(theta []float64, layout hyperLayout) *LCM {
	m := &LCM{
		Q:        layout.q,
		NumTasks: layout.tasks,
		Dim:      layout.dim,
		Ls:       make([][]float64, layout.q),
		A:        make([][]float64, layout.q),
		B:        make([][]float64, layout.q),
		D:        make([]float64, layout.tasks),
	}
	for q := 0; q < layout.q; q++ {
		m.Ls[q] = make([]float64, layout.dim)
		m.A[q] = make([]float64, layout.tasks)
		m.B[q] = make([]float64, layout.tasks)
		for d := 0; d < layout.dim; d++ {
			m.Ls[q][d] = math.Exp(theta[layout.lsAt(q, d)])
		}
		for i := 0; i < layout.tasks; i++ {
			m.A[q][i] = theta[layout.aAt(q, i)]
			m.B[q][i] = math.Exp(theta[layout.bAt(q, i)])
		}
	}
	for i := 0; i < layout.tasks; i++ {
		m.D[i] = math.Exp(theta[layout.dAt(i)])
	}
	return m
}

// covariance assembles the full Eq. (4) covariance matrix for the given
// flattened samples.
func (m *LCM) covariance(flatX [][]float64, taskOf []int) *la.Matrix {
	n := len(flatX)
	sigma := la.NewMatrix(n, n)
	for r := 0; r < n; r++ {
		for s := r; s < n; s++ {
			v := 0.0
			ti, tj := taskOf[r], taskOf[s]
			for q := 0; q < m.Q; q++ {
				coef := m.A[q][ti] * m.A[q][tj]
				if ti == tj {
					coef += m.B[q][ti]
				}
				if coef != 0 { //gptlint:ignore float-eq exact-zero sparsity skip in covariance assembly
					v += coef * rbf(flatX[r], flatX[s], m.Ls[q])
				}
			}
			if r == s {
				v += m.D[ti]
			}
			sigma.Set(r, s, v)
			sigma.Set(s, r, v)
		}
	}
	return sigma
}

// Predict returns the posterior mean and variance (Eqs. 5–6) of task i's
// objective at normalized point x, in the original (de-standardized) units.
func (m *LCM) Predict(task int, x []float64) (mean, variance float64) {
	if m.chol == nil {
		panic("gp: Predict on unfitted model")
	}
	n := len(m.flatX)
	kstar := make([]float64, n)
	for r := 0; r < n; r++ {
		tr := m.taskOf[r]
		v := 0.0
		for q := 0; q < m.Q; q++ {
			coef := m.A[q][task] * m.A[q][tr]
			if task == tr {
				coef += m.B[q][task]
			}
			if coef != 0 { //gptlint:ignore float-eq exact-zero sparsity skip in cross-covariance
				v += coef * rbf(x, m.flatX[r], m.Ls[q])
			}
		}
		kstar[r] = v
	}
	mu := la.Dot(kstar, m.alpha)
	// Prior variance at x: Σ_q (a² + b)·k(x,x)=1 + d.
	prior := m.D[task]
	for q := 0; q < m.Q; q++ {
		prior += m.A[q][task]*m.A[q][task] + m.B[q][task]
	}
	v := la.CopyVec(kstar)
	m.chol.ForwardSubst(v)
	variance = prior - la.Dot(v, v)
	if variance < 0 {
		variance = 0
	}
	mean = mu*m.yStd + m.yMean
	variance *= m.yStd * m.yStd
	return mean, variance
}

// parallelCholJitter is CholeskyJitter backed by the parallel blocked
// factorization. Both the per-evaluation factorization inside
// lcmEngine.logLikGrad and the final prediction factorization route through
// it, so FitOptions.Workers/CholBlock govern every Cholesky of a fit.
func parallelCholJitter(a *la.Matrix, block, workers int) (*la.Matrix, float64, error) {
	n := a.Rows
	meanDiag := 0.0
	for i := 0; i < n; i++ {
		meanDiag += math.Abs(a.At(i, i))
	}
	if n > 0 {
		meanDiag /= float64(n)
	}
	if meanDiag == 0 { //gptlint:ignore float-eq exact-zero guard before using the mean diagonal as a jitter scale
		meanDiag = 1
	}
	jitter := 0.0
	for attempt := 0; attempt < 12; attempt++ {
		work := a
		if jitter > 0 {
			work = a.Clone()
			for i := 0; i < n; i++ {
				work.Data[i*n+i] += jitter
			}
		}
		l, err := la.ParallelCholesky(work, block, workers)
		if err == nil {
			return l, jitter, nil
		}
		if jitter == 0 { //gptlint:ignore float-eq jitter holds exact assigned constants; zero is the unset sentinel
			jitter = 1e-10 * meanDiag
		} else {
			jitter *= 10
		}
	}
	return nil, jitter, la.ErrNotPositiveDefinite
}
