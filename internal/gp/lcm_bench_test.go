package gp

import (
	"math/rand"
	"testing"
)

// Realistic modeling-phase sizes per the paper's Table 3 regime: δ=4 tasks,
// ~75 samples each (n≈300), β=4 tuning dimensions, Q=3 latent functions.
const (
	benchTasks   = 4
	benchSamples = 75
	benchDim     = 4
	benchQ       = 3
)

func benchGradSetup(b *testing.B) (hyperLayout, [][]float64, []int, []float64, []float64) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	data := syntheticDataset(rng, benchTasks, benchSamples, benchDim, 0.05)
	layout := hyperLayout{q: benchQ, dim: data.Dim, tasks: data.NumTasks()}
	flatX, taskOf, yn := flatten(data)
	theta := randomInit(layout, rng)
	return layout, flatX, taskOf, yn, theta
}

// BenchmarkLCMLogLikGradReference is the pre-PR serial baseline: pairwise
// distances recomputed from raw coordinates each call, full-matrix serial
// gradient sweep, serial Cholesky and inverse.
func BenchmarkLCMLogLikGradReference(b *testing.B) {
	layout, flatX, taskOf, yn, theta := benchGradSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := lcmLogLikGradReference(theta, layout, flatX, taskOf, yn); err != nil {
			b.Fatal(err)
		}
	}
}

func benchEngine(b *testing.B, workers int) {
	layout, flatX, taskOf, yn, theta := benchGradSetup(b)
	eng := newLCMEngine(newPairCache(flatX, layout.dim), layout, taskOf, yn, workers, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.logLikGrad(theta); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLCMLogLikGrad is the cached engine at one worker (pure
// algorithmic speedup over the reference).
func BenchmarkLCMLogLikGrad(b *testing.B) { benchEngine(b, 1) }

// BenchmarkLCMLogLikGradWorkers4 adds 4-way parallel assembly, gradient
// sweep, Cholesky, and inverse.
func BenchmarkLCMLogLikGradWorkers4(b *testing.B) { benchEngine(b, 4) }

func benchFitLCM(b *testing.B, workers int) {
	rng := rand.New(rand.NewSource(2))
	data := syntheticDataset(rng, benchTasks, 50, benchDim, 0.05) // n = 200
	opts := FitOptions{Q: benchQ, NumStarts: 2, MaxIter: 8, Seed: 3, Workers: workers}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitLCM(data, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFitLCM(b *testing.B)         { benchFitLCM(b, 1) }
func BenchmarkFitLCMWorkers4(b *testing.B) { benchFitLCM(b, 4) }

func benchPredictModel(b *testing.B) (*LCM, [][]float64) {
	b.Helper()
	rng := rand.New(rand.NewSource(4))
	data := syntheticDataset(rng, benchTasks, benchSamples, benchDim, 0.05)
	model, err := FitLCM(data, FitOptions{Q: benchQ, NumStarts: 1, MaxIter: 10, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	var xs [][]float64
	for k := 0; k < 256; k++ {
		x := make([]float64, benchDim)
		for d := range x {
			x[d] = rng.Float64()
		}
		xs = append(xs, x)
	}
	return model, xs
}

// BenchmarkPredict is the original allocating prediction path (per point).
func BenchmarkPredict(b *testing.B) {
	model, xs := benchPredictModel(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Predict(i%benchTasks, xs[i%len(xs)])
	}
}

// BenchmarkPredictBatch is the workspace path the PSO search loop uses;
// allocs/op must be ~zero in steady state.
func BenchmarkPredictBatch(b *testing.B) {
	model, xs := benchPredictModel(b)
	ws := model.NewPredictWorkspace()
	means := make([]float64, len(xs))
	vars := make([]float64, len(xs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.PredictBatch(i%benchTasks, xs, means, vars, ws)
	}
}
