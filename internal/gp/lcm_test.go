package gp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/la"
)

// syntheticDataset builds a small multitask dataset from smooth related
// functions: y_i(x) = sin(2πx₀) + i·0.3·cos(2πx₁) + noise.
func syntheticDataset(rng *rand.Rand, tasks, samples, dim int, noise float64) *Dataset {
	d := &Dataset{Dim: dim, X: make([][][]float64, tasks), Y: make([][]float64, tasks)}
	for i := 0; i < tasks; i++ {
		for j := 0; j < samples; j++ {
			x := make([]float64, dim)
			for k := range x {
				x[k] = rng.Float64()
			}
			y := math.Sin(2 * math.Pi * x[0])
			if dim > 1 {
				y += float64(i) * 0.3 * math.Cos(2*math.Pi*x[1])
			} else {
				y += float64(i) * 0.1
			}
			y += noise * rng.NormFloat64()
			d.X[i] = append(d.X[i], x)
			d.Y[i] = append(d.Y[i], y)
		}
	}
	return d
}

func TestDatasetValidate(t *testing.T) {
	ok := &Dataset{Dim: 1, X: [][][]float64{{{0.5}}}, Y: [][]float64{{1}}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid dataset rejected: %v", err)
	}
	cases := []*Dataset{
		{Dim: 1},
		{Dim: 1, X: [][][]float64{{{0.5}}}, Y: [][]float64{}},
		{Dim: 1, X: [][][]float64{{}}, Y: [][]float64{{}}},
		{Dim: 1, X: [][][]float64{{{0.5}}}, Y: [][]float64{{1, 2}}},
		{Dim: 2, X: [][][]float64{{{0.5}}}, Y: [][]float64{{1}}},
		{Dim: 1, X: [][][]float64{{{math.NaN()}}}, Y: [][]float64{{1}}},
		{Dim: 1, X: [][][]float64{{{0.5}}}, Y: [][]float64{{math.Inf(1)}}},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid dataset accepted", i)
		}
	}
}

func TestHyperLayoutIndicesDisjoint(t *testing.T) {
	h := hyperLayout{q: 2, dim: 3, tasks: 4}
	seen := map[int]bool{}
	mark := func(idx int) {
		if seen[idx] {
			t.Fatalf("index %d reused", idx)
		}
		if idx < 0 || idx >= h.total() {
			t.Fatalf("index %d out of range [0,%d)", idx, h.total())
		}
		seen[idx] = true
	}
	for q := 0; q < h.q; q++ {
		for d := 0; d < h.dim; d++ {
			mark(h.lsAt(q, d))
		}
		for i := 0; i < h.tasks; i++ {
			mark(h.aAt(q, i))
			mark(h.bAt(q, i))
		}
	}
	for i := 0; i < h.tasks; i++ {
		mark(h.dAt(i))
	}
	if len(seen) != h.total() {
		t.Fatalf("covered %d of %d indices", len(seen), h.total())
	}
}

// Property: the analytic gradient of the LCM log-likelihood matches central
// finite differences. This is the key correctness check of the modeling
// phase.
func TestLCMGradientMatchesFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := syntheticDataset(rng, 3, 6, 2, 0.05)
	layout := hyperLayout{q: 2, dim: data.Dim, tasks: data.NumTasks()}

	var flatX [][]float64
	var taskOf []int
	var flatY []float64
	for i := range data.X {
		for j := range data.X[i] {
			flatX = append(flatX, data.X[i][j])
			taskOf = append(taskOf, i)
			flatY = append(flatY, data.Y[i][j])
		}
	}
	mean, std := meanStd(flatY)
	yn := make([]float64, len(flatY))
	for i, v := range flatY {
		yn[i] = (v - mean) / std
	}

	eng := newLCMEngine(newPairCache(flatX, data.Dim), layout, taskOf, yn, 1, 64)
	for trial := 0; trial < 5; trial++ {
		theta := randomInit(layout, rng)
		ll, g, err := eng.logLikGrad(theta)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		grad := append([]float64(nil), g...) // engine reuses its gradient buffer
		if math.IsNaN(ll) {
			t.Fatalf("trial %d: NaN log-likelihood", trial)
		}
		const h = 1e-6
		for p := 0; p < layout.total(); p++ {
			tp := append([]float64(nil), theta...)
			tp[p] += h
			lp, _, err1 := eng.logLikGrad(tp)
			tp[p] -= 2 * h
			lm, _, err2 := eng.logLikGrad(tp)
			if err1 != nil || err2 != nil {
				continue
			}
			fd := (lp - lm) / (2 * h)
			if diff := math.Abs(fd - grad[p]); diff > 1e-4*(1+math.Abs(fd)) {
				t.Errorf("trial %d param %d: analytic %v vs fd %v", trial, p, grad[p], fd)
			}
		}
	}
}

// Property: the LCM covariance matrix is positive semi-definite for random
// hyperparameters (Cholesky with jitter must succeed).
func TestLCMCovariancePSD(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		data := syntheticDataset(rng, 1+rng.Intn(3), 2+rng.Intn(5), 1+rng.Intn(3), 0)
		layout := hyperLayout{q: 1 + rng.Intn(2), dim: data.Dim, tasks: data.NumTasks()}
		if layout.q > layout.tasks {
			layout.q = layout.tasks
		}
		m := thetaToModel(randomInit(layout, rng), layout)
		var flatX [][]float64
		var taskOf []int
		for i := range data.X {
			for j := range data.X[i] {
				flatX = append(flatX, data.X[i][j])
				taskOf = append(taskOf, i)
			}
		}
		sigma := m.covariance(flatX, taskOf)
		_, _, err := la.CholeskyJitter(sigma, 1e-10)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFitLCMInterpolatesTrainingData(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := syntheticDataset(rng, 2, 12, 1, 0) // noise-free
	model, err := FitLCM(data, FitOptions{Q: 2, NumStarts: 4, MaxIter: 150, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Posterior mean at training points must be close to the observations,
	// and variance must be small there.
	for i := range data.X {
		for j := range data.X[i] {
			mu, v := model.Predict(i, data.X[i][j])
			if math.Abs(mu-data.Y[i][j]) > 0.2 {
				t.Errorf("task %d sample %d: predicted %v, observed %v", i, j, mu, data.Y[i][j])
			}
			if v < 0 {
				t.Errorf("negative variance %v", v)
			}
		}
	}
}

func TestFitLCMGeneralizesSmoothFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	data := syntheticDataset(rng, 2, 25, 1, 0)
	model, err := FitLCM(data, FitOptions{Q: 2, NumStarts: 4, MaxIter: 200, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Check prediction error at held-out points.
	maxErr := 0.0
	for trial := 0; trial < 50; trial++ {
		x := []float64{rng.Float64()}
		for i := 0; i < 2; i++ {
			truth := math.Sin(2*math.Pi*x[0]) + float64(i)*0.1
			mu, _ := model.Predict(i, x)
			if e := math.Abs(mu - truth); e > maxErr {
				maxErr = e
			}
		}
	}
	if maxErr > 0.35 {
		t.Fatalf("held-out error too large: %v", maxErr)
	}
}

func TestPredictVarianceShrinksAtData(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	data := syntheticDataset(rng, 1, 10, 1, 0)
	model, err := FitLCM(data, FitOptions{NumStarts: 3, MaxIter: 100, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	_, vAtData := model.Predict(0, data.X[0][0])
	// A point far from all samples (outside [0,1] cluster) has larger
	// variance.
	_, vFar := model.Predict(0, []float64{5.0})
	if vAtData >= vFar {
		t.Fatalf("variance at data %v not below variance far away %v", vAtData, vFar)
	}
}

func TestFitLCMMultitaskSharesInformation(t *testing.T) {
	// Task 0 has dense samples of sin; task 1 has only 3 samples of the SAME
	// function. The multitask model should predict task 1 well anyway by
	// borrowing strength — the core claim of MLA.
	rng := rand.New(rand.NewSource(8))
	f := func(x float64) float64 { return math.Sin(2 * math.Pi * x) }
	data := &Dataset{Dim: 1, X: make([][][]float64, 2), Y: make([][]float64, 2)}
	for j := 0; j < 20; j++ {
		x := rng.Float64()
		data.X[0] = append(data.X[0], []float64{x})
		data.Y[0] = append(data.Y[0], f(x))
	}
	for j := 0; j < 3; j++ {
		x := rng.Float64()
		data.X[1] = append(data.X[1], []float64{x})
		data.Y[1] = append(data.Y[1], f(x))
	}
	multi, err := FitLCM(data, FitOptions{Q: 2, NumStarts: 4, MaxIter: 200, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	single, err := FitLCM(&Dataset{Dim: 1, X: data.X[1:], Y: data.Y[1:]},
		FitOptions{Q: 1, NumStarts: 4, MaxIter: 200, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var errMulti, errSingle float64
	for trial := 0; trial < 100; trial++ {
		x := []float64{rng.Float64()}
		truth := f(x[0])
		mm, _ := multi.Predict(1, x)
		ms, _ := single.Predict(0, x)
		errMulti += (mm - truth) * (mm - truth)
		errSingle += (ms - truth) * (ms - truth)
	}
	if errMulti >= errSingle {
		t.Fatalf("multitask MSE %v not better than single-task %v", errMulti, errSingle)
	}
}

func TestFitLCMParallelWorkersAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	data := syntheticDataset(rng, 2, 8, 2, 0.01)
	m1, err := FitLCM(data, FitOptions{NumStarts: 4, MaxIter: 60, Seed: 11, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	m4, err := FitLCM(data, FitOptions{NumStarts: 4, MaxIter: 60, Seed: 11, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Same seeds per start → identical best log-likelihood regardless of
	// worker count.
	if math.Abs(m1.LogLik-m4.LogLik) > 1e-9*(1+math.Abs(m1.LogLik)) {
		t.Fatalf("worker count changed result: %v vs %v", m1.LogLik, m4.LogLik)
	}
}

func TestFitLCMRejectsBadData(t *testing.T) {
	if _, err := FitLCM(&Dataset{Dim: 1}, FitOptions{}); err == nil {
		t.Fatalf("empty dataset accepted")
	}
	bad := &Dataset{Dim: 1, X: [][][]float64{{{0.1}}}, Y: [][]float64{{math.NaN()}}}
	if _, err := FitLCM(bad, FitOptions{}); err == nil {
		t.Fatalf("NaN output accepted")
	}
}

func TestMeanStdDegenerate(t *testing.T) {
	m, s := meanStd([]float64{3, 3, 3})
	if m != 3 || s != 1 {
		t.Fatalf("constant data: mean %v std %v, want 3, 1 (floor)", m, s)
	}
}

func TestRBFBasics(t *testing.T) {
	x := []float64{0.3, 0.7}
	if v := rbf(x, x, []float64{1, 1}); v != 1 {
		t.Fatalf("k(x,x) = %v, want 1", v)
	}
	// Monotone decay with distance.
	k1 := rbf([]float64{0}, []float64{0.1}, []float64{0.5})
	k2 := rbf([]float64{0}, []float64{0.5}, []float64{0.5})
	if !(k1 > k2 && k2 > 0) {
		t.Fatalf("kernel not decaying: %v, %v", k1, k2)
	}
}
