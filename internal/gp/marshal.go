// Portable serialization of fitted LCM models. A snapshot captures both the
// learned hyperparameters (for warm-starting a later fit via
// FitOptions.Init) and the training state (coordinates, task labels,
// standardized outputs, jitter), so UnmarshalBinary can rebuild the full
// prediction path — covariance assembly, Cholesky factorization, alpha
// solve, fast-path tables — without access to the original Dataset. Floats
// survive the JSON round-trip exactly (encoding/json emits shortest
// round-trippable literals), so a saved-and-reloaded model predicts
// identically to the original up to re-factorization order, which the
// worker-count-invariant Cholesky keeps deterministic.
package gp

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"

	"repro/internal/la"
)

// lcmSnapshot is the wire form of a fitted LCM. Float fields use the
// non-finite-safe wire types: a fitted hyperparameter can legitimately be
// +Inf (the optimizer drives a log-lengthscale past exp's range — an
// infinite lengthscale just means that dimension stopped mattering), and
// encoding/json rejects bare non-finite numbers.
type lcmSnapshot struct {
	Q        int      `json:"q"`
	NumTasks int      `json:"num_tasks"`
	Dim      int      `json:"dim"`
	Ls       []nfVec  `json:"ls"`
	A        []nfVec  `json:"a"`
	B        []nfVec  `json:"b"`
	D        nfVec    `json:"d"`
	LogLik   nfScalar `json:"loglik"`
	Jitter   nfScalar `json:"jitter"`
	YMean    nfScalar `json:"y_mean"`
	YStd     nfScalar `json:"y_std"`
	X        nfVec    `json:"x,omitempty"` // row-major training coordinates, n×Dim
	TaskOf   []int    `json:"task_of,omitempty"`
	YNorm    nfVec    `json:"y_norm,omitempty"`
}

// nfScalar is a float64 whose JSON form admits non-finite values, encoded as
// the strings "Inf", "-Inf" and "NaN". Finite values use encoding/json's
// shortest round-trippable literals, so they survive bitwise; NaN collapses
// to the canonical quiet NaN (payload bits are not preserved).
type nfScalar float64

func (s nfScalar) MarshalJSON() ([]byte, error) {
	v := float64(s)
	switch {
	case math.IsInf(v, 1):
		return []byte(`"Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	}
	return json.Marshal(v)
}

func (s *nfScalar) UnmarshalJSON(data []byte) error {
	return unmarshalNF(data, (*float64)(s))
}

// NFScalar and NFVec expose the non-finite-safe wire types to other
// packages' snapshot formats (the surrogate package's sparse-GP backend
// serializes hyperparameters with the same Inf/NaN hazards).
type (
	NFScalar = nfScalar
	NFVec    = nfVec
)

// nfVec is a []float64 whose elements use the nfScalar wire form.
type nfVec []float64

func (v nfVec) MarshalJSON() ([]byte, error) {
	buf := append(make([]byte, 0, 8+16*len(v)), '[')
	for i, x := range v {
		if i > 0 {
			buf = append(buf, ',')
		}
		b, err := nfScalar(x).MarshalJSON()
		if err != nil {
			return nil, err
		}
		buf = append(buf, b...)
	}
	return append(buf, ']'), nil
}

func (v *nfVec) UnmarshalJSON(data []byte) error {
	var raw []json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	out := make([]float64, len(raw))
	for i, r := range raw {
		if err := unmarshalNF(r, &out[i]); err != nil {
			return err
		}
	}
	*v = out
	return nil
}

func unmarshalNF(data []byte, out *float64) error {
	switch string(data) {
	case `"Inf"`:
		*out = math.Inf(1)
		return nil
	case `"-Inf"`:
		*out = math.Inf(-1)
		return nil
	case `"NaN"`:
		*out = math.NaN()
		return nil
	}
	return json.Unmarshal(data, out)
}

// toNFRows and fromNFRows convert a hyperparameter matrix between its fitted
// and wire representations (the rows share backing arrays; nothing copies).
func toNFRows(rows [][]float64) []nfVec {
	out := make([]nfVec, len(rows))
	for i, r := range rows {
		out[i] = nfVec(r)
	}
	return out
}

func fromNFRows(rows []nfVec) [][]float64 {
	out := make([][]float64, len(rows))
	for i, r := range rows {
		out[i] = []float64(r)
	}
	return out
}

// Hyperparameters returns the model's hyperparameters in the optimization
// layout FitOptions.Init expects: log-lengthscales, mixing coefficients,
// log-diagonal boosts, log-noise. Feeding the result of one fit into the
// next fit's Init seeds the first L-BFGS start at the previous optimum.
func (m *LCM) Hyperparameters() []float64 {
	layout := hyperLayout{q: m.Q, dim: m.Dim, tasks: m.NumTasks}
	theta := make([]float64, layout.total())
	for q := 0; q < m.Q; q++ {
		for d := 0; d < m.Dim; d++ {
			theta[layout.lsAt(q, d)] = math.Log(m.Ls[q][d])
		}
		for i := 0; i < m.NumTasks; i++ {
			theta[layout.aAt(q, i)] = m.A[q][i]
			theta[layout.bAt(q, i)] = math.Log(m.B[q][i])
		}
	}
	for i := 0; i < m.NumTasks; i++ {
		theta[layout.dAt(i)] = math.Log(m.D[i])
	}
	return theta
}

// MarshalBinary encodes the fitted model — hyperparameters plus training
// state — into a self-contained snapshot. It works on hyperparameter-only
// models too (one built by UnmarshalBinary from a data-less snapshot);
// such snapshots warm-start fits but cannot predict after reload.
func (m *LCM) MarshalBinary() ([]byte, error) {
	snap := lcmSnapshot{
		Q: m.Q, NumTasks: m.NumTasks, Dim: m.Dim,
		Ls: toNFRows(m.Ls), A: toNFRows(m.A), B: toNFRows(m.B), D: nfVec(m.D),
		LogLik: nfScalar(m.LogLik), Jitter: nfScalar(m.Jitter),
		YMean: nfScalar(m.yMean), YStd: nfScalar(m.yStd),
		TaskOf: m.taskOf, YNorm: nfVec(m.yNorm),
	}
	if len(m.flatX) > 0 {
		snap.X = make(nfVec, 0, len(m.flatX)*m.Dim)
		for _, x := range m.flatX {
			snap.X = append(snap.X, x...)
		}
	}
	return json.Marshal(snap)
}

// UnmarshalBinary decodes a snapshot produced by MarshalBinary and, when the
// snapshot carries training state, rebuilds the prediction path (covariance
// assembly with the recorded jitter, Cholesky, alpha solve, fast-path
// tables) so Predict/PredictInto work on the reloaded model.
func (m *LCM) UnmarshalBinary(data []byte) error {
	var snap lcmSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("gp: decoding LCM snapshot: %w", err)
	}
	if snap.Q <= 0 || snap.NumTasks <= 0 || snap.Dim <= 0 {
		return errors.New("gp: LCM snapshot missing dimensions")
	}
	if len(snap.Ls) != snap.Q || len(snap.A) != snap.Q || len(snap.B) != snap.Q || len(snap.D) != snap.NumTasks {
		return errors.New("gp: LCM snapshot hyperparameter shape mismatch")
	}
	for q := 0; q < snap.Q; q++ {
		if len(snap.Ls[q]) != snap.Dim || len(snap.A[q]) != snap.NumTasks || len(snap.B[q]) != snap.NumTasks {
			return errors.New("gp: LCM snapshot hyperparameter shape mismatch")
		}
	}
	*m = LCM{
		Q: snap.Q, NumTasks: snap.NumTasks, Dim: snap.Dim,
		Ls: fromNFRows(snap.Ls), A: fromNFRows(snap.A), B: fromNFRows(snap.B), D: snap.D,
		LogLik: float64(snap.LogLik), Jitter: float64(snap.Jitter),
	}
	m.yMean, m.yStd = float64(snap.YMean), float64(snap.YStd)
	if m.yStd == 0 { //gptlint:ignore float-eq zero is the unset sentinel for a hyperparameter-only snapshot
		m.yStd = 1
	}
	if len(snap.TaskOf) == 0 {
		return nil // hyperparameter-only snapshot: warm starts, no prediction
	}
	n := len(snap.TaskOf)
	if len(snap.X) != n*snap.Dim || len(snap.YNorm) != n {
		return errors.New("gp: LCM snapshot training-state shape mismatch")
	}
	for _, task := range snap.TaskOf {
		if task < 0 || task >= snap.NumTasks {
			return errors.New("gp: LCM snapshot task label out of range")
		}
	}
	m.flatX = make([][]float64, n)
	for r := 0; r < n; r++ {
		m.flatX[r] = snap.X[r*snap.Dim : (r+1)*snap.Dim]
	}
	m.taskOf = snap.TaskOf
	m.yNorm = snap.YNorm
	// Reassemble Σ through the same fused engine path FitLCM's final
	// factorization used — the summation order matches, so the reloaded
	// factor (and every prediction through it) is bitwise identical.
	layout := hyperLayout{q: m.Q, dim: m.Dim, tasks: m.NumTasks}
	eng := newLCMEngine(newPairCache(m.flatX, m.Dim), layout, m.taskOf, m.yNorm, 1, 64)
	eng.prepare(m)
	sigma := eng.assembleSigma(m)
	if m.Jitter > 0 {
		for i := 0; i < n; i++ {
			sigma.Data[i*n+i] += m.Jitter
		}
	}
	// The recorded jitter made this matrix factorizable at save time and the
	// floats round-trip exactly; parallelCholJitter covers the (theoretical)
	// residual escalation without changing the common path.
	l, extra, err := parallelCholJitter(sigma, 64, 1)
	if err != nil {
		return fmt.Errorf("gp: refactorizing LCM snapshot: %w", err)
	}
	m.Jitter += extra
	m.chol = la.PackChol(l)
	m.alpha = la.SolveCholVec(l, m.yNorm)
	m.prepPredict()
	return nil
}
