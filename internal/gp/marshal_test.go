package gp

import (
	"math"
	"math/rand"
	"testing"
)

func fitSmall(t *testing.T, opts FitOptions) (*Dataset, *LCM) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	data := syntheticDataset(rng, 2, 12, 2, 0.05)
	m, err := FitLCM(data, opts)
	if err != nil {
		t.Fatal(err)
	}
	return data, m
}

// TestMarshalRoundTripPredictsIdentically is the portability contract: a
// model saved with MarshalBinary and reloaded with UnmarshalBinary must
// reproduce the original's posterior bitwise — hyperparameters, jitter, and
// the full prediction path all survive the snapshot.
func TestMarshalRoundTripPredictsIdentically(t *testing.T) {
	_, m := fitSmall(t, FitOptions{NumStarts: 2, MaxIter: 30, Seed: 3})

	blob, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back LCM
	if err := back.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if back.Q != m.Q || back.NumTasks != m.NumTasks || back.Dim != m.Dim {
		t.Fatalf("dimensions differ after round trip: %+v vs %+v", back, m)
	}
	if math.Float64bits(back.Jitter) != math.Float64bits(m.Jitter) {
		t.Fatalf("jitter differs: %v vs %v", back.Jitter, m.Jitter)
	}
	rng := rand.New(rand.NewSource(11))
	wsA, wsB := m.NewPredictWorkspace(), back.NewPredictWorkspace()
	for k := 0; k < 50; k++ {
		x := []float64{rng.Float64(), rng.Float64()}
		task := k % m.NumTasks
		muA, vA := m.PredictInto(wsA, task, x)
		muB, vB := back.PredictInto(wsB, task, x)
		if math.Float64bits(muA) != math.Float64bits(muB) || math.Float64bits(vA) != math.Float64bits(vB) {
			t.Fatalf("prediction diverged at %v task %d: (%v,%v) vs (%v,%v)", x, task, muA, vA, muB, vB)
		}
	}
}

// TestHyperparametersRoundTrip checks the theta extraction inverts the fit's
// decoding: thetaToModel(m.Hyperparameters()) reproduces the model's
// hyperparameters up to the exp∘log round trip.
func TestHyperparametersRoundTrip(t *testing.T) {
	_, m := fitSmall(t, FitOptions{NumStarts: 1, MaxIter: 20, Seed: 5})
	back := thetaToModel(m.Hyperparameters(), hyperLayout{q: m.Q, dim: m.Dim, tasks: m.NumTasks})
	close := func(a, b float64) bool { return math.Abs(a-b) <= 1e-12*(1+math.Abs(a)) }
	for q := 0; q < m.Q; q++ {
		for d := 0; d < m.Dim; d++ {
			if !close(back.Ls[q][d], m.Ls[q][d]) {
				t.Fatalf("Ls[%d][%d]: %v vs %v", q, d, back.Ls[q][d], m.Ls[q][d])
			}
		}
		for i := 0; i < m.NumTasks; i++ {
			if !close(back.A[q][i], m.A[q][i]) || !close(back.B[q][i], m.B[q][i]) {
				t.Fatalf("A/B[%d][%d] differ after round trip", q, i)
			}
		}
	}
	for i := 0; i < m.NumTasks; i++ {
		if !close(back.D[i], m.D[i]) {
			t.Fatalf("D[%d]: %v vs %v", i, back.D[i], m.D[i])
		}
	}
}

// TestFitWarmStartUsesInit proves FitOptions.Init actually seeds the first
// L-BFGS start: with a single start and a tight iteration budget, a fit
// seeded at a previous optimum lands elsewhere than the cold fit, while two
// identically warm-started fits agree bitwise. A length-mismatched Init must
// be ignored (cold fit reproduced exactly).
func TestFitWarmStartUsesInit(t *testing.T) {
	data, prev := fitSmall(t, FitOptions{NumStarts: 2, MaxIter: 40, Seed: 9})
	theta := prev.Hyperparameters()

	short := FitOptions{NumStarts: 1, MaxIter: 2, Seed: 1}
	cold, err := FitLCM(data, short)
	if err != nil {
		t.Fatal(err)
	}
	warmOpts := short
	warmOpts.Init = theta
	warm, err := FitLCM(data, warmOpts)
	if err != nil {
		t.Fatal(err)
	}
	warm2, err := FitLCM(data, warmOpts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(warm.LogLik) != math.Float64bits(warm2.LogLik) {
		t.Fatalf("warm-started fit is not deterministic: %v vs %v", warm.LogLik, warm2.LogLik)
	}
	if math.Float64bits(warm.Ls[0][0]) == math.Float64bits(cold.Ls[0][0]) &&
		math.Float64bits(warm.LogLik) == math.Float64bits(cold.LogLik) {
		t.Fatalf("warm start had no effect: both fits at Ls=%v loglik=%v", cold.Ls[0][0], cold.LogLik)
	}

	badOpts := short
	badOpts.Init = theta[:len(theta)-1]
	ignored, err := FitLCM(data, badOpts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(ignored.LogLik) != math.Float64bits(cold.LogLik) {
		t.Fatalf("mismatched Init not ignored: loglik %v vs cold %v", ignored.LogLik, cold.LogLik)
	}
}

// TestMarshalSurvivesNonFiniteHyperparameters: the optimizer can drive a
// log-lengthscale past exp's range, leaving +Inf in a fitted model, and a
// degenerate fit can record a -Inf log-likelihood. The snapshot must encode
// these (encoding/json rejects bare non-finite numbers) and reproduce them
// bitwise on reload.
func TestMarshalSurvivesNonFiniteHyperparameters(t *testing.T) {
	// Full model with an infinite lengthscale (that dimension stopped
	// mattering; Σ stays finite, so the prediction path still rebuilds).
	_, m := fitSmall(t, FitOptions{NumStarts: 1, MaxIter: 10, Seed: 3})
	m.Ls[0][1] = math.Inf(1)
	blob, err := m.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal with infinite lengthscale: %v", err)
	}
	var back LCM
	if err := back.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(back.Ls[0][1], 1) {
		t.Fatalf("infinite lengthscale did not round-trip: %v", back.Ls[0][1])
	}
	if math.Float64bits(back.Ls[0][0]) != math.Float64bits(m.Ls[0][0]) {
		t.Fatalf("finite Ls[0][0] no longer bitwise: %v vs %v", back.Ls[0][0], m.Ls[0][0])
	}

	// Hyperparameter-only snapshot (the warm-start transfer form) with every
	// flavor of non-finite value.
	m.flatX, m.taskOf, m.yNorm = nil, nil, nil
	m.B[0][0] = math.Inf(1)
	m.A[1][0] = math.Inf(-1)
	m.LogLik = math.Inf(-1)
	m.D[0] = math.NaN()
	blob, err = m.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal with non-finite hyperparameters: %v", err)
	}
	var hyper LCM
	if err := hyper.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(hyper.B[0][0], 1) || !math.IsInf(hyper.A[1][0], -1) ||
		!math.IsInf(hyper.LogLik, -1) || !math.IsNaN(hyper.D[0]) {
		t.Fatalf("non-finite values did not round-trip: B=%v A=%v loglik=%v D=%v",
			hyper.B[0][0], hyper.A[1][0], hyper.LogLik, hyper.D[0])
	}
}

// TestUnmarshalRejectsCorruptSnapshots exercises the validation paths.
func TestUnmarshalRejectsCorruptSnapshots(t *testing.T) {
	var m LCM
	for _, bad := range []string{
		"not json",
		`{}`,
		`{"q":1,"num_tasks":1,"dim":1}`, // missing hyperparameters
		`{"q":1,"num_tasks":1,"dim":1,"ls":[[1]],"a":[[1]],"b":[[1]],"d":[1],"task_of":[0],"x":[],"y_norm":[1]}`,    // X length mismatch
		`{"q":1,"num_tasks":1,"dim":1,"ls":[[1]],"a":[[1]],"b":[[1]],"d":[1],"task_of":[5],"x":[0.5],"y_norm":[1]}`, // task out of range
	} {
		if err := m.UnmarshalBinary([]byte(bad)); err == nil {
			t.Errorf("snapshot %q accepted", bad)
		}
	}
}
