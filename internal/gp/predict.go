package gp

import (
	"math"

	"repro/internal/la"
)

// prepPredict builds the prediction fast-path tables for a fitted model:
// a contiguous copy of the training coordinates, the per-task
// cross-covariance coefficient table coef[task][r*Q+q] =
// A[q][task]·A[q][taskOf[r]] (+B[q][task] when the tasks match), the
// half-inverse-square lengthscales, and the per-task prior variance.
// Together they let PredictInto evaluate Eqs. (5–6) without touching the
// hyperparameter structs or allocating.
func (m *LCM) prepPredict() {
	n := len(m.flatX)
	m.xflat = make([]float64, n*m.Dim)
	for r, x := range m.flatX {
		copy(m.xflat[r*m.Dim:], x)
	}
	m.predWinv = make([]float64, m.Q*m.Dim)
	for q := 0; q < m.Q; q++ {
		for d := 0; d < m.Dim; d++ {
			l := m.Ls[q][d]
			m.predWinv[q*m.Dim+d] = 0.5 / (l * l)
		}
	}
	m.predCoef = make([][]float64, m.NumTasks)
	m.predPrior = make([]float64, m.NumTasks)
	for task := 0; task < m.NumTasks; task++ {
		row := make([]float64, n*m.Q)
		for r := 0; r < n; r++ {
			tr := m.taskOf[r]
			for q := 0; q < m.Q; q++ {
				c := m.A[q][task] * m.A[q][tr]
				if task == tr {
					c += m.B[q][task]
				}
				row[r*m.Q+q] = c
			}
		}
		m.predCoef[task] = row
		prior := m.D[task]
		for q := 0; q < m.Q; q++ {
			prior += m.A[q][task]*m.A[q][task] + m.B[q][task]
		}
		m.predPrior[task] = prior
	}
}

// PredictWorkspace holds the scratch vectors one goroutine needs to run the
// allocation-free prediction path. Create one per goroutine with
// NewPredictWorkspace and reuse it across calls; it is sized for the model
// that created it.
type PredictWorkspace struct {
	kstar []float64
	v     []float64
	diff2 []float64
}

// NewPredictWorkspace returns a workspace sized for m.
func (m *LCM) NewPredictWorkspace() *PredictWorkspace {
	if m.chol == nil {
		panic("gp: NewPredictWorkspace on unfitted model")
	}
	return &PredictWorkspace{
		kstar: make([]float64, len(m.flatX)),
		v:     make([]float64, len(m.flatX)),
		diff2: make([]float64, m.Dim),
	}
}

// PredictInto is Predict without any allocation: the posterior mean and
// variance (Eqs. 5–6) of task's objective at normalized point x, computed
// through ws's reusable buffers and the tables built at fit time. The PSO
// search loop calls this thousands of times per search phase.
//
//gptlint:hotpath
func (m *LCM) PredictInto(ws *PredictWorkspace, task int, x []float64) (mean, variance float64) {
	if m.predCoef == nil {
		panic("gp: PredictInto on unfitted model")
	}
	if n := len(m.flatX); len(ws.kstar) != n {
		// The model grew via AppendObservations since ws was created; resize
		// once and stay allocation-free until the next append.
		ws.kstar = make([]float64, n) //gptlint:ignore hotpath-alloc one-time workspace resize after AppendObservations grew the model
		ws.v = make([]float64, n)     //gptlint:ignore hotpath-alloc one-time workspace resize after AppendObservations grew the model
	}
	m.kstarInto(ws, task, x)
	mu := la.Dot(ws.kstar, m.alpha)
	copy(ws.v, ws.kstar)
	m.chol.ForwardSubst(ws.v)
	variance = m.predPrior[task] - la.Dot(ws.v, ws.v)
	if variance < 0 {
		variance = 0
	}
	mean = mu*m.yStd + m.yMean
	variance *= m.yStd * m.yStd
	return mean, variance
}

// kstarInto fills ws.kstar with the cross-covariance vector k* for (task, x)
// and returns it.
//
//gptlint:hotpath
func (m *LCM) kstarInto(ws *PredictWorkspace, task int, x []float64) []float64 {
	n := len(m.flatX)
	dim := m.Dim
	Q := m.Q
	coefs := m.predCoef[task]
	diff2 := ws.diff2
	for r := 0; r < n; r++ {
		xr := m.xflat[r*dim : (r+1)*dim]
		for d, xd := range x {
			diff := xd - xr[d]
			diff2[d] = diff * diff
		}
		coefRow := coefs[r*Q : (r+1)*Q]
		v := 0.0
		for q, c := range coefRow {
			if c == 0 { //gptlint:ignore float-eq exact-zero coefficient skip in the prediction fast path
				continue
			}
			acc := 0.0
			w := m.predWinv[q*dim : (q+1)*dim]
			for d, sd := range diff2 {
				acc += w[d] * sd
			}
			v += c * math.Exp(-acc)
		}
		ws.kstar[r] = v
	}
	return ws.kstar
}

// PredictBatch predicts every point of xs for one task, writing posterior
// means and variances into the caller's slices (len(xs) each). In steady
// state it performs zero heap allocations: all scratch lives in ws.
//
//gptlint:hotpath
func (m *LCM) PredictBatch(task int, xs [][]float64, means, variances []float64, ws *PredictWorkspace) {
	if len(means) != len(xs) || len(variances) != len(xs) {
		panic("gp: PredictBatch output length mismatch")
	}
	for i, x := range xs {
		means[i], variances[i] = m.PredictInto(ws, task, x)
	}
}
