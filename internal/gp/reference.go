package gp

import (
	"math"

	"repro/internal/la"
)

// lcmLogLikGradReference is the straightforward O(Q·n²·β) evaluation of the
// LCM log marginal likelihood and gradient, recomputing every pairwise
// distance from the raw coordinates and sweeping both triangles serially.
// It is retained verbatim as (a) the oracle the cached/parallel lcmEngine is
// checked against and (b) the pre-PR baseline for BenchmarkLCMLogLikGrad.
// Production code must use lcmEngine.logLikGrad instead.
func lcmLogLikGradReference(theta []float64, layout hyperLayout, flatX [][]float64, taskOf []int, yn []float64) (float64, []float64, error) {
	m := thetaToModel(theta, layout)
	n := len(flatX)

	// Per-latent kernel matrices K_q (needed again in the gradient).
	kq := make([]*la.Matrix, layout.q)
	for q := range kq {
		kq[q] = la.NewMatrix(n, n)
		for r := 0; r < n; r++ {
			for s := r; s < n; s++ {
				v := rbf(flatX[r], flatX[s], m.Ls[q])
				kq[q].Set(r, s, v)
				kq[q].Set(s, r, v)
			}
		}
	}
	sigma := la.NewMatrix(n, n)
	for r := 0; r < n; r++ {
		for s := r; s < n; s++ {
			v := 0.0
			ti, tj := taskOf[r], taskOf[s]
			for q := 0; q < layout.q; q++ {
				coef := m.A[q][ti] * m.A[q][tj]
				if ti == tj {
					coef += m.B[q][ti]
				}
				v += coef * kq[q].At(r, s)
			}
			if r == s {
				v += m.D[ti]
			}
			sigma.Set(r, s, v)
			sigma.Set(s, r, v)
		}
	}

	l, err := refCholeskyJitter(sigma)
	if err != nil {
		return 0, nil, err
	}
	alpha := la.SolveCholVec(l, yn)
	ll := -0.5*la.Dot(yn, alpha) - 0.5*la.LogDetFromChol(l) - 0.5*float64(n)*math.Log(2*math.Pi)

	// M = ααᵀ - Σ⁻¹; dL/dθ_p = ½ Σ_rs M_rs (∂Σ/∂θ_p)_rs.
	inv := refCholInverse(l)
	mm := la.NewMatrix(n, n)
	for r := 0; r < n; r++ {
		for s := 0; s < n; s++ {
			mm.Set(r, s, alpha[r]*alpha[s]-inv.At(r, s))
		}
	}

	grad := make([]float64, layout.total())
	for q := 0; q < layout.q; q++ {
		aq := m.A[q]
		bq := m.B[q]
		lsq := m.Ls[q]
		// Precompute coefficient matrix entries on the fly.
		for r := 0; r < n; r++ {
			tr := taskOf[r]
			for s := 0; s < n; s++ {
				ts := taskOf[s]
				mk := mm.At(r, s) * kq[q].At(r, s)
				if mk == 0 { //gptlint:ignore float-eq frozen pre-parallelization oracle; exact-zero skip must match historic numerics
					continue
				}
				coef := aq[tr] * aq[ts]
				if tr == ts {
					coef += bq[tr]
				}
				// Lengthscales (log-space chain rule: ×1/l² instead of 1/l³·l).
				if coef != 0 { //gptlint:ignore float-eq frozen pre-parallelization oracle; exact-zero skip must match historic numerics
					base := 0.5 * mk * coef
					for d := 0; d < layout.dim; d++ {
						diff2 := sqDiff(flatX[r], flatX[s], d)
						if diff2 != 0 { //gptlint:ignore float-eq frozen pre-parallelization oracle; exact-zero skip must match historic numerics
							grad[layout.lsAt(q, d)] += base * diff2 / (lsq[d] * lsq[d])
						}
					}
				}
				// a_{m,q}: ∂Σ_rs/∂a_mq = δ(tr=m)·a_ts + δ(ts=m)·a_tr.
				grad[layout.aAt(q, tr)] += 0.5 * mk * aq[ts]
				grad[layout.aAt(q, ts)] += 0.5 * mk * aq[tr]
				// b_{m,q} (log-space: ×b).
				if tr == ts {
					grad[layout.bAt(q, tr)] += 0.5 * mk * bq[tr]
				}
			}
		}
	}
	// d_i (log-space: ×d).
	for r := 0; r < n; r++ {
		grad[layout.dAt(taskOf[r])] += 0.5 * mm.At(r, r) * m.D[taskOf[r]]
	}
	return ll, grad, nil
}

// refCholesky is the pre-PR serial Cholesky with a single-accumulator inner
// product, frozen so the baseline benchmark does not drift as internal/la
// gets faster.
func refCholesky(a *la.Matrix) (*la.Matrix, error) {
	n := a.Rows
	l := la.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		li := l.Row(i)
		for j := 0; j <= i; j++ {
			lj := l.Row(j)
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= li[k] * lj[k]
			}
			if i == j {
				if s <= 0 || math.IsNaN(s) {
					return nil, la.ErrNotPositiveDefinite
				}
				li[j] = math.Sqrt(s)
			} else {
				li[j] = s / lj[j]
			}
		}
	}
	return l, nil
}

// refCholeskyJitter is the pre-PR la.CholeskyJitter(·, 1e-10) on top of the
// frozen serial factorization.
func refCholeskyJitter(a *la.Matrix) (*la.Matrix, error) {
	n := a.Rows
	meanDiag := 0.0
	for i := 0; i < n; i++ {
		meanDiag += math.Abs(a.At(i, i))
	}
	if n > 0 {
		meanDiag /= float64(n)
	}
	if meanDiag == 0 { //gptlint:ignore float-eq frozen oracle; exact-zero guard before jitter scaling
		meanDiag = 1
	}
	jitter := 0.0
	for attempt := 0; attempt < 12; attempt++ {
		work := a
		if jitter > 0 {
			work = a.Clone()
			for i := 0; i < n; i++ {
				work.Data[i*n+i] += jitter
			}
		}
		l, err := refCholesky(work)
		if err == nil {
			return l, nil
		}
		if jitter == 0 { //gptlint:ignore float-eq frozen oracle; zero is the unset jitter sentinel
			jitter = 1e-10 * meanDiag
		} else {
			jitter *= 10
		}
	}
	return nil, la.ErrNotPositiveDefinite
}

// refCholInverse is the pre-PR serial (L·Lᵀ)⁻¹, frozen for the same reason.
func refCholInverse(l *la.Matrix) *la.Matrix {
	n := l.Rows
	wt := la.NewMatrix(n, n)
	for j := 0; j < n; j++ {
		row := wt.Row(j)
		row[j] = 1 / l.At(j, j)
		for k := j + 1; k < n; k++ {
			lk := l.Row(k)
			s := 0.0
			for m := j; m < k; m++ {
				s += lk[m] * row[m]
			}
			row[k] = -s / lk[k]
		}
	}
	inv := la.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		wi := wt.Row(i)
		for j := 0; j <= i; j++ {
			s := 0.0
			for k := i; k < n; k++ {
				s += wi[k] * wt.Row(j)[k]
			}
			inv.Data[i*n+j] = s
			inv.Data[j*n+i] = s
		}
	}
	return inv
}
