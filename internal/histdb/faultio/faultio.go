// Package faultio provides a fault-injecting wrapper for the history
// database's log file, used to prove the WAL's crash-recovery guarantees:
// it cuts a write short after a configurable byte budget (simulating a
// crash or full disk mid-append) and fails every operation afterwards, the
// way a dead process's file descriptor would.
package faultio

import (
	"errors"
	"sync"

	"repro/internal/histdb"
)

// ErrInjected is returned by every operation after the byte budget is
// exhausted.
var ErrInjected = errors.New("faultio: injected failure")

// Injector builds wrapped files that collectively fail after FailAfter
// bytes have been written through them. A FailAfter that lands mid-record
// produces exactly the torn-tail condition WAL recovery must handle.
type Injector struct {
	mu        sync.Mutex
	remaining int64
	tripped   bool
}

// NewInjector returns an injector that allows failAfter bytes through
// before failing.
func NewInjector(failAfter int64) *Injector {
	return &Injector{remaining: failAfter}
}

// Tripped reports whether the fault has fired.
func (in *Injector) Tripped() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.tripped
}

// Wrap is the histdb.WALOptions.WrapFile hook.
func (in *Injector) Wrap(f histdb.File) histdb.File {
	return &file{in: in, f: f}
}

type file struct {
	in *Injector
	f  histdb.File
}

// Write passes through until the budget runs out, then performs the short
// write that exhausts it (bytes really reach the underlying file, as they
// would in a crash) and fails.
func (w *file) Write(p []byte) (int, error) {
	w.in.mu.Lock()
	defer w.in.mu.Unlock()
	if w.in.tripped {
		return 0, ErrInjected
	}
	if int64(len(p)) <= w.in.remaining {
		w.in.remaining -= int64(len(p))
		return w.f.Write(p) //gptlint:ignore lock-held-across-blocking the injector mutex deliberately serializes writes so the byte budget decrements atomically with the write it meters
	}
	w.in.tripped = true
	n := int(w.in.remaining)
	w.in.remaining = 0
	if n > 0 {
		if m, err := w.f.Write(p[:n]); err != nil { //gptlint:ignore lock-held-across-blocking the short write that exhausts the budget must be atomic with tripping the injector
			return m, err
		}
	}
	return n, ErrInjected
}

// Sync fails once the fault has fired (a crashed process never reaches its
// fsync); before that it passes through.
func (w *file) Sync() error {
	if w.in.Tripped() {
		return ErrInjected
	}
	return w.f.Sync()
}

// Close always closes the underlying file so tests do not leak descriptors.
func (w *file) Close() error {
	err := w.f.Close()
	if w.in.Tripped() {
		return ErrInjected
	}
	return err
}
