package faultio_test

import (
	"encoding/json"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/histdb"
	"repro/internal/histdb/faultio"
)

func record(i int) histdb.Record {
	return histdb.Record{
		Problem: "p",
		Task:    []float64{1},
		Config:  []float64{float64(i)},
		Outputs: []float64{float64(100 - i)},
		Stamp:   time.Unix(int64(i), 0).UTC(),
	}
}

func lineLen(t *testing.T, i int) int64 {
	t.Helper()
	b, err := json.Marshal(record(i))
	if err != nil {
		t.Fatal(err)
	}
	return int64(len(b)) + 1 // + newline
}

// TestCrashMidRecordLosesOnlyInFlight cuts the write of the third record
// short, proving the WAL's core guarantee: every fully-appended record
// survives, the torn half-record is discarded on recovery, and the log
// verifies as recoverable both before and after.
func TestCrashMidRecordLosesOnlyInFlight(t *testing.T) {
	base := filepath.Join(t.TempDir(), "hist.json")
	// Budget: two whole records plus half of the third.
	budget := lineLen(t, 0) + lineLen(t, 1) + lineLen(t, 2)/2
	inj := faultio.NewInjector(budget)
	w, err := histdb.OpenWAL(base, histdb.WALOptions{WrapFile: inj.Wrap})
	if err != nil {
		t.Fatal(err)
	}

	appended := 0
	var appendErr error
	for i := 0; i < 10; i++ {
		if appendErr = w.Append(record(i)); appendErr != nil {
			break
		}
		appended++
	}
	if appendErr == nil || appended != 2 {
		t.Fatalf("crash not injected where expected: %d appends, err %v", appended, appendErr)
	}
	if !inj.Tripped() {
		t.Fatal("injector never fired")
	}
	// The log is poisoned: later appends fail instead of writing after a
	// torn record.
	if err := w.Append(record(9)); err == nil {
		t.Fatal("append after failure must not succeed")
	}
	w.Close()

	res, err := histdb.Verify(base)
	if err != nil {
		t.Fatalf("crashed log must verify as recoverable: %v", err)
	}
	if res.LogRecords != appended || res.TornBytes == 0 {
		t.Fatalf("verify = %+v, want %d records and a torn tail", res, appended)
	}

	// Recovery: exactly the fully-appended records, and the database is
	// writable again.
	w2, err := histdb.OpenWAL(base, histdb.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if w2.Len() != appended {
		t.Fatalf("recovered %d records, want %d", w2.Len(), appended)
	}
	for i, r := range w2.DB().Records() {
		if r.Config[0] != float64(i) {
			t.Fatalf("record %d corrupted by recovery: %+v", i, r)
		}
	}
	if err := w2.Append(record(7)); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	res, err = histdb.Verify(base)
	if err != nil || res.TornBytes != 0 || res.LogRecords != appended+1 {
		t.Fatalf("post-recovery verify = %+v, %v", res, err)
	}
}

// TestCrashAtRecordBoundary exhausts the budget exactly at a newline: no
// torn bytes, and recovery sees every record whose write completed.
func TestCrashAtRecordBoundary(t *testing.T) {
	base := filepath.Join(t.TempDir(), "hist.json")
	budget := lineLen(t, 0) + lineLen(t, 1)
	inj := faultio.NewInjector(budget)
	w, err := histdb.OpenWAL(base, histdb.WALOptions{WrapFile: inj.Wrap})
	if err != nil {
		t.Fatal(err)
	}
	appended := 0
	for i := 0; i < 10; i++ {
		if err := w.Append(record(i)); err != nil {
			break
		}
		appended++
	}
	w.Close()
	if appended != 2 {
		t.Fatalf("appended = %d, want 2", appended)
	}
	res, err := histdb.Verify(base)
	if err != nil || res.TornBytes != 0 || res.LogRecords != 2 {
		t.Fatalf("verify = %+v, %v", res, err)
	}
}

// TestCrashInsideGroupCommitWindow: with group commit, records written but
// not yet fsync'd are still recoverable when the OS flushed them (the usual
// case); the guarantee that matters is that recovery never yields a record
// that was not fully appended.
func TestCrashInsideGroupCommitWindow(t *testing.T) {
	base := filepath.Join(t.TempDir(), "hist.json")
	budget := lineLen(t, 0) + lineLen(t, 1) + lineLen(t, 2) + 3
	inj := faultio.NewInjector(budget)
	w, err := histdb.OpenWAL(base, histdb.WALOptions{GroupCommit: 8, WrapFile: inj.Wrap})
	if err != nil {
		t.Fatal(err)
	}
	appended := 0
	for i := 0; i < 10; i++ {
		if err := w.Append(record(i)); err != nil {
			break
		}
		appended++
	}
	w.Close()
	if appended != 3 {
		t.Fatalf("appended = %d, want 3", appended)
	}
	w2, err := histdb.OpenWAL(base, histdb.WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.Len() > appended {
		t.Fatalf("recovery invented records: %d > %d", w2.Len(), appended)
	}
}
