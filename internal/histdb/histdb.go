// Package histdb implements GPTune's history database (the paper's goal #3:
// "support archiving and reusing tuning data from multiple executions to
// allow tuning to improve over time"). Records are stored as JSON on disk;
// prior records for a problem can seed a new MLA run's dataset, and
// databases from separate runs can be merged.
package histdb

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"
)

// Record is one completed function evaluation.
type Record struct {
	Problem string    `json:"problem"`
	Task    []float64 `json:"task"`
	Config  []float64 `json:"config"`
	Outputs []float64 `json:"outputs"`
	Stamp   time.Time `json:"stamp"`
}

// DB is an in-memory history database with JSON persistence.
type DB struct {
	mu      sync.Mutex
	records []Record
}

// New returns an empty database.
func New() *DB { return &DB{} }

// Load reads a database from path. A missing file yields an empty database.
func Load(path string) (*DB, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return New(), nil
	}
	if err != nil {
		return nil, err
	}
	var records []Record
	if err := json.Unmarshal(data, &records); err != nil {
		return nil, fmt.Errorf("histdb: parsing %s: %w", path, err)
	}
	return &DB{records: records}, nil
}

// Save writes the database to path atomically (write + rename).
func (db *DB) Save(path string) error {
	db.mu.Lock()
	data, err := json.MarshalIndent(db.records, "", " ")
	db.mu.Unlock()
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Append adds one record.
func (db *DB) Append(r Record) {
	if r.Stamp.IsZero() {
		r.Stamp = time.Now().UTC()
	}
	db.mu.Lock()
	db.records = append(db.records, r)
	db.mu.Unlock()
}

// Len returns the record count.
func (db *DB) Len() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.records)
}

// Query returns the records for a problem ("" matches every problem); when
// task is non-nil, only records with exactly matching task parameters.
func (db *DB) Query(problem string, task []float64) []Record {
	db.mu.Lock()
	defer db.mu.Unlock()
	var out []Record
	for _, r := range db.records {
		if problem != "" && r.Problem != problem {
			continue
		}
		if task != nil && !equalVec(r.Task, task) {
			continue
		}
		out = append(out, r)
	}
	return out
}

// Tasks returns the distinct task vectors recorded for a problem.
func (db *DB) Tasks(problem string) [][]float64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	var out [][]float64
	for _, r := range db.records {
		if r.Problem != problem {
			continue
		}
		dup := false
		for _, t := range out {
			if equalVec(t, r.Task) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, r.Task)
		}
	}
	return out
}

// Merge copies every record of other into db.
func (db *DB) Merge(other *DB) {
	other.mu.Lock()
	records := append([]Record(nil), other.records...)
	other.mu.Unlock()
	db.mu.Lock()
	db.records = append(db.records, records...)
	db.mu.Unlock()
}

// Best returns the record minimizing outputs[0] for the given problem/task,
// or false when none exists.
func (db *DB) Best(problem string, task []float64) (Record, bool) {
	matches := db.Query(problem, task)
	if len(matches) == 0 {
		return Record{}, false
	}
	best := matches[0]
	for _, r := range matches[1:] {
		if len(r.Outputs) > 0 && len(best.Outputs) > 0 && r.Outputs[0] < best.Outputs[0] {
			best = r
		}
	}
	return best, true
}

func equalVec(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
