// Package histdb implements GPTune's history database (the paper's goal #3:
// "support archiving and reusing tuning data from multiple executions to
// allow tuning to improve over time"). Records are stored as JSON on disk;
// prior records for a problem can seed a new MLA run's dataset, and
// databases from separate runs can be merged.
package histdb

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// Record is one completed function evaluation.
type Record struct {
	Problem string    `json:"problem"`
	Task    []float64 `json:"task"`
	Config  []float64 `json:"config"`
	Outputs []float64 `json:"outputs"`
	Stamp   time.Time `json:"stamp"`

	// Phase tags which tuning phase produced the evaluation ("init",
	// "search", "mo"); empty for records archived outside a checkpointed
	// run.
	Phase string `json:"phase,omitempty"`
	// Requested is the configuration the tuner originally asked the
	// objective to evaluate. It differs from Config only when the
	// objective failed and a retry substituted a fresh feasible point;
	// checkpoint replay keys on it to skip already-paid evaluations.
	Requested []float64 `json:"requested,omitempty"`

	// Kind distinguishes record types. Empty (the overwhelmingly common
	// case, and everything written before surrogate snapshots existed) is a
	// function evaluation; KindModel is a fitted-surrogate snapshot, which
	// carries Surrogate/Objective/Snapshot instead of Task/Config/Outputs.
	// Consumers that iterate evaluations must skip records with a non-empty
	// Kind.
	Kind string `json:"kind,omitempty"`
	// Surrogate is the backend that produced a model record's snapshot
	// ("lcm", "gp-indep", "rf").
	Surrogate string `json:"surrogate,omitempty"`
	// Objective is the objective index a model record's surrogate modeled
	// (always 0 for single-objective runs).
	Objective int `json:"objective,omitempty"`
	// Snapshot is the serialized fitted model (base64 in the JSON encoding).
	Snapshot []byte `json:"snapshot,omitempty"`
}

// KindModel marks a record holding a fitted-surrogate snapshot rather than a
// function evaluation. A tuning run checkpointing through the WAL appends
// one after each modeling phase; a later session loads the last one per
// objective as a hyperparameter warm start (transfer learning across runs).
const KindModel = "model"

// IsEval reports whether the record is a plain function evaluation.
func (r *Record) IsEval() bool { return r.Kind == "" }

// DB is an in-memory history database with JSON persistence.
type DB struct {
	mu      sync.Mutex
	records []Record
	// clock stamps records whose Stamp is zero; nil falls back to the wall
	// clock. Injected so deterministic runs never call time.Now here.
	clock func() time.Time
}

// New returns an empty database.
func New() *DB { return &DB{} }

// Load reads a database from path. A missing file yields an empty database.
// When a sidecar write-ahead log (path + ".wal") exists, its records are
// replayed on top of the snapshot (read-only; the log is not modified), so
// evaluations streamed by a checkpointed run are visible without compaction.
func Load(path string) (*DB, error) {
	records, err := loadSnapshot(path)
	if err != nil {
		return nil, err
	}
	rec, err := recoverWAL(walPath(path), len(records))
	if err != nil {
		return nil, err
	}
	return &DB{records: append(records, rec.records...)}, nil
}

// loadSnapshot reads the JSON-array snapshot file alone (missing = empty).
func loadSnapshot(path string) ([]Record, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var records []Record
	if err := json.Unmarshal(data, &records); err != nil {
		return nil, fmt.Errorf("histdb: parsing %s: %w", path, err)
	}
	return records, nil
}

// tmpCounter disambiguates concurrent temp files within one process; the
// PID disambiguates across processes sharing a directory.
var tmpCounter atomic.Int64

func tmpPath(path string) string {
	return fmt.Sprintf("%s.tmp.%d.%d", path, os.Getpid(), tmpCounter.Add(1))
}

// writeFileDurable writes data to path via a unique temp file, fsyncs the
// temp file before the atomic rename, and fsyncs the parent directory after
// it, so a crash at any point leaves either the old or the new content —
// never a torn file, and never a rename that a power loss can undo.
func writeFileDurable(path string, data []byte) error {
	tmp := tmpPath(path)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(filepath.Dir(path))
}

// WriteFileDurable is the exported form of writeFileDurable, for callers
// that persist their own metadata next to a history database — the tuning
// service stores each study's specification this way, so a restart always
// rebuilds the exact engine whose WAL it replays.
func WriteFileDurable(path string, data []byte) error {
	return writeFileDurable(path, data)
}

// syncDir fsyncs a directory so a just-renamed entry survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Save writes the database snapshot to path atomically and durably (unique
// temp file + fsync + rename + directory fsync, safe under concurrent Saves
// to the same path).
func (db *DB) Save(path string) error {
	db.mu.Lock()
	data, err := json.MarshalIndent(db.records, "", " ")
	db.mu.Unlock()
	if err != nil {
		return err
	}
	return writeFileDurable(path, data)
}

// Append adds one record.
func (db *DB) Append(r Record) {
	if r.Stamp.IsZero() {
		clk := db.clock
		if clk == nil {
			clk = time.Now
		}
		r.Stamp = clk().UTC()
	}
	db.mu.Lock()
	db.records = append(db.records, r)
	db.mu.Unlock()
}

// Records returns a copy of every record, in insertion order.
func (db *DB) Records() []Record {
	db.mu.Lock()
	defer db.mu.Unlock()
	return append([]Record(nil), db.records...)
}

// Len returns the record count.
func (db *DB) Len() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.records)
}

// Query returns the records for a problem ("" matches every problem); when
// task is non-nil, only records with exactly matching task parameters.
func (db *DB) Query(problem string, task []float64) []Record {
	db.mu.Lock()
	defer db.mu.Unlock()
	var out []Record
	for _, r := range db.records {
		if problem != "" && r.Problem != problem {
			continue
		}
		if task != nil && !equalVec(r.Task, task) {
			continue
		}
		out = append(out, r)
	}
	return out
}

// Tasks returns the distinct task vectors recorded for a problem.
func (db *DB) Tasks(problem string) [][]float64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	var out [][]float64
	for _, r := range db.records {
		if r.Problem != problem || !r.IsEval() {
			continue
		}
		dup := false
		for _, t := range out {
			if equalVec(t, r.Task) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, r.Task)
		}
	}
	return out
}

// Merge copies every record of other into db.
func (db *DB) Merge(other *DB) {
	other.mu.Lock()
	records := append([]Record(nil), other.records...)
	other.mu.Unlock()
	db.mu.Lock()
	db.records = append(db.records, records...)
	db.mu.Unlock()
}

// Best returns the record minimizing outputs[0] for the given problem/task,
// or false when no record with outputs exists. Output-less records (e.g.
// placeholders from partial archives) are never chosen as the incumbent.
func (db *DB) Best(problem string, task []float64) (Record, bool) {
	var best Record
	found := false
	for _, r := range db.Query(problem, task) {
		if len(r.Outputs) == 0 {
			continue
		}
		if !found || r.Outputs[0] < best.Outputs[0] {
			best = r
			found = true
		}
	}
	return best, found
}

func equalVec(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
