package histdb

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestAppendQueryBest(t *testing.T) {
	db := New()
	db.Append(Record{Problem: "qr", Task: []float64{100, 100}, Config: []float64{64}, Outputs: []float64{2.5}})
	db.Append(Record{Problem: "qr", Task: []float64{100, 100}, Config: []float64{128}, Outputs: []float64{1.5}})
	db.Append(Record{Problem: "qr", Task: []float64{200, 200}, Config: []float64{64}, Outputs: []float64{9}})
	db.Append(Record{Problem: "ev", Task: []float64{100, 100}, Config: []float64{64}, Outputs: []float64{3}})

	if db.Len() != 4 {
		t.Fatalf("Len = %d", db.Len())
	}
	if got := db.Query("qr", nil); len(got) != 3 {
		t.Fatalf("Query(qr) = %d records", len(got))
	}
	if got := db.Query("qr", []float64{100, 100}); len(got) != 2 {
		t.Fatalf("Query(qr, task) = %d records", len(got))
	}
	best, ok := db.Best("qr", []float64{100, 100})
	if !ok || best.Outputs[0] != 1.5 {
		t.Fatalf("Best = %+v, %v", best, ok)
	}
	if _, ok := db.Best("nope", nil); ok {
		t.Fatalf("Best on empty problem should report false")
	}
	tasks := db.Tasks("qr")
	if len(tasks) != 2 {
		t.Fatalf("Tasks = %v", tasks)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "hist.json")
	db := New()
	db.Append(Record{Problem: "p", Task: []float64{1}, Config: []float64{2, 3}, Outputs: []float64{4}})
	if err := db.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 1 {
		t.Fatalf("loaded %d records", loaded.Len())
	}
	r := loaded.Query("p", nil)[0]
	if r.Config[1] != 3 || r.Stamp.IsZero() {
		t.Fatalf("record corrupted: %+v", r)
	}
}

func TestLoadMissingFileIsEmpty(t *testing.T) {
	db, err := Load(filepath.Join(t.TempDir(), "missing.json"))
	if err != nil || db.Len() != 0 {
		t.Fatalf("missing file: %v %d", err, db.Len())
	}
}

func TestLoadCorruptFileErrors(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	if err := writeFile(path, "{not json"); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatalf("corrupt file accepted")
	}
}

func TestMerge(t *testing.T) {
	a := New()
	a.Append(Record{Problem: "p", Outputs: []float64{1}})
	b := New()
	b.Append(Record{Problem: "p", Outputs: []float64{2}})
	b.Append(Record{Problem: "q", Outputs: []float64{3}})
	a.Merge(b)
	if a.Len() != 3 || b.Len() != 2 {
		t.Fatalf("merge wrong: %d %d", a.Len(), b.Len())
	}
}

// An output-less record must never be chosen as the incumbent — a first
// record with empty Outputs used to shadow every later real record because
// the comparison silently skipped it.
func TestBestSkipsOutputlessRecords(t *testing.T) {
	db := New()
	db.Append(Record{Problem: "qr", Task: []float64{1}})                           // placeholder, no outputs
	db.Append(Record{Problem: "qr", Task: []float64{1}, Outputs: []float64{7}})    //
	db.Append(Record{Problem: "qr", Task: []float64{1}, Outputs: []float64{2}})    //
	db.Append(Record{Problem: "qr", Task: []float64{1}, Outputs: []float64{3, 9}}) //
	best, ok := db.Best("qr", []float64{1})
	if !ok || best.Outputs[0] != 2 {
		t.Fatalf("Best = %+v, %v; want outputs[0]=2", best, ok)
	}
	empty := New()
	empty.Append(Record{Problem: "qr", Task: []float64{1}})
	if _, ok := empty.Best("qr", []float64{1}); ok {
		t.Fatalf("all-placeholder database reported a best record")
	}
}

// Concurrent saves to one path must not collide on a shared temp file; every
// save is atomic, so the surviving file is some complete snapshot.
func TestConcurrentSave(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "hist.json")
	db := New()
	for i := 0; i < 10; i++ {
		db.Append(Record{Problem: "p", Outputs: []float64{float64(i)}})
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs[w] = db.Save(path)
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 10 {
		t.Fatalf("loaded %d records, want 10", loaded.Len())
	}
	// No stray temp files left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory not clean after concurrent saves: %v", entries)
	}
}

func TestConcurrentAppend(t *testing.T) {
	db := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				db.Append(Record{Problem: "p", Outputs: []float64{float64(i)}})
			}
		}()
	}
	wg.Wait()
	if db.Len() != 800 {
		t.Fatalf("Len = %d, want 800", db.Len())
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

// TestDBAppendStampsWithoutClock pins the zero-value DB's stamp fallback:
// Append never calls time.Now directly (the clock is a value seam), but a
// zero-stamp record must still come out stamped.
func TestDBAppendStampsWithoutClock(t *testing.T) {
	db := New()
	before := time.Now().Add(-time.Second)
	db.Append(Record{Problem: "p", Outputs: []float64{1}})
	if got := db.Records()[0].Stamp; got.IsZero() || got.Before(before) {
		t.Fatalf("stamp = %v, want a recent wall-clock time", got)
	}
}
