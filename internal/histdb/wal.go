// Write-ahead logging for the history database. A WAL-backed database at
// path `base` is a pair of files:
//
//	base        — snapshot: a JSON array of Records (the legacy Save format)
//	base.wal    — append-only log: a JSON header line, then one JSON Record
//	              per line, each appended (and by default fsync'd) as the
//	              evaluation completes
//
// The header records how many snapshot records the log extends
// ({"wal":1,"snapshot_len":N}), which makes compaction crash-safe without
// record identity: Compact first durably rewrites the snapshot with all M
// records, then atomically swaps in a fresh log whose header says M. A crash
// between the two steps leaves a snapshot of M records and the old log
// (header N, M−N records); recovery skips the first M−N log records as
// already folded into the snapshot.
//
// Recovery tolerates a torn final append: any bytes after the last newline
// are discarded (at most the in-flight record is lost, because every
// complete record append ends in the newline). A newline-terminated line
// that fails to parse mid-log is real corruption and is reported as an
// error, not silently dropped.
package histdb

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// ErrClosed is returned by Append/Sync/Compact/Export on a WAL whose Close
// has completed. It makes the shutdown race benign: a handler that commits
// after teardown gets a clean error instead of a nil-handle panic.
var ErrClosed = errors.New("histdb: WAL is closed")

// File is the subset of *os.File the WAL appends through. Tests substitute
// fault-injecting implementations (internal/histdb/faultio) to prove the
// recovery path.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// WALOptions configures a write-ahead-logged database.
type WALOptions struct {
	// GroupCommit fsyncs the log every N appends instead of every append
	// (N ≤ 1). Larger values amortize fsync cost at the price of losing up
	// to N−1 fully-written records (plus the in-flight one) on a crash.
	GroupCommit int
	// Clock stamps records whose Stamp is zero; nil is defaulted to the
	// wall clock once, at OpenWAL. Tuning code passes its injected
	// Options.Clock through here so that nothing in a deterministic run
	// reads time.Now directly — Append only ever calls this field.
	Clock func() time.Time
	// WrapFile, when non-nil, wraps the opened log file before any append
	// goes through it — the fault-injection seam.
	WrapFile func(File) File
}

// WAL is a history database whose appends stream to an fsync'd log, so a
// crash at any moment loses at most the record being written (times the
// group-commit window). All methods are safe for concurrent use.
type WAL struct {
	mu      sync.Mutex
	base    string
	opts    WALOptions
	f       File
	db      *DB
	pending int   // appends since the last fsync
	broken  error // sticky: a failed append poisons the log handle
}

func walPath(base string) string { return base + ".wal" }

// WalPath returns the log-file path paired with the snapshot at base — the
// naming contract importers need when materializing an exported WAL.
func WalPath(base string) string { return walPath(base) }

// walHeader is the first line of every log file.
type walHeader struct {
	Wal         int `json:"wal"`
	SnapshotLen int `json:"snapshot_len"`
}

// OpenWAL opens (creating if needed) the WAL-backed database at base,
// recovering the snapshot + log pair: a torn final log line is truncated
// away, and log records already folded into the snapshot by an interrupted
// compaction are skipped.
func OpenWAL(base string, opts WALOptions) (*WAL, error) {
	if opts.GroupCommit < 1 {
		opts.GroupCommit = 1
	}
	if opts.Clock == nil {
		opts.Clock = time.Now
	}
	snap, err := loadSnapshot(base)
	if err != nil {
		return nil, err
	}
	lp := walPath(base)
	rec, err := recoverWAL(lp, len(snap))
	if err != nil {
		return nil, err
	}
	if rec.tornBytes > 0 {
		if err := os.Truncate(lp, rec.goodSize); err != nil {
			return nil, fmt.Errorf("histdb: truncating torn log tail: %w", err)
		}
	}
	w := &WAL{
		base: base,
		opts: opts,
		db:   &DB{records: append(snap, rec.records...), clock: opts.Clock},
	}
	if !rec.hasHeader {
		// Fresh (or fully-torn) log: write the header durably before any
		// record can reference it.
		if err := w.writeFreshLog(len(snap)); err != nil {
			return nil, err
		}
	} else {
		f, err := os.OpenFile(lp, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		w.f = w.wrap(f)
	}
	return w, nil
}

func (w *WAL) wrap(f File) File {
	if w.opts.WrapFile != nil {
		return w.opts.WrapFile(f)
	}
	return f
}

// writeFreshLog atomically installs a new log containing only a header that
// extends a snapshot of snapLen records, and points w.f at it.
// Caller holds w.mu (or has exclusive access during OpenWAL).
func (w *WAL) writeFreshLog(snapLen int) error {
	lp := walPath(w.base)
	hdr, err := json.Marshal(walHeader{Wal: 1, SnapshotLen: snapLen})
	if err != nil {
		return err
	}
	if err := writeFileDurable(lp, append(hdr, '\n')); err != nil {
		return err
	}
	f, err := os.OpenFile(lp, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if w.f != nil {
		w.f.Close() // old handle points at the unlinked previous log
	}
	w.f = w.wrap(f)
	w.pending = 0
	return nil
}

// Append durably adds one record: it is written to the log (fsync'd per the
// group-commit policy) before being added to the in-memory view. A write
// error poisons the WAL — every later Append fails with the same error —
// because a partially-written line must be recovered by reopening.
func (w *WAL) Append(r Record) error {
	if r.Stamp.IsZero() {
		r.Stamp = w.opts.Clock().UTC()
	}
	line, err := json.Marshal(r)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return ErrClosed
	}
	if w.broken != nil {
		return fmt.Errorf("histdb: log poisoned by earlier append failure: %w", w.broken)
	}
	if _, err := w.f.Write(line); err != nil { //gptlint:ignore lock-held-across-blocking the WAL mutex exists to serialize the log handle; appends are write-then-publish by design
		w.broken = err
		return err
	}
	w.pending++
	if w.pending >= w.opts.GroupCommit {
		if err := w.f.Sync(); err != nil { //gptlint:ignore lock-held-across-blocking group-commit fsync must happen before the record is published under the same critical section
			w.broken = err
			return err
		}
		w.pending = 0
	}
	w.db.Append(r)
	return nil
}

// Sync forces an fsync of any appends buffered by group commit.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return ErrClosed
	}
	if w.broken != nil {
		return w.broken
	}
	if w.pending == 0 {
		return nil
	}
	if err := w.f.Sync(); err != nil { //gptlint:ignore lock-held-across-blocking Sync must observe a stable pending count; the mutex serializes the handle by design
		w.broken = err
		return err
	}
	w.pending = 0
	return nil
}

// Compact folds the log into the snapshot: the full record set is durably
// rewritten to the snapshot file, then an empty log (header only) atomically
// replaces the old one. Crash-safe at every step — recovery after an
// interrupted compaction skips the already-folded records.
func (w *WAL) Compact() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return ErrClosed
	}
	if w.broken != nil {
		return w.broken
	}
	data, err := json.MarshalIndent(w.db.records, "", " ")
	if err != nil {
		return err
	}
	if err := writeFileDurable(w.base, data); err != nil { //gptlint:ignore lock-held-across-blocking compaction must block appends: snapshot and log swap atomically under the WAL mutex
		return err
	}
	return w.writeFreshLog(len(w.db.records)) //gptlint:ignore lock-held-across-blocking the log-file swap is the second half of the same critical section
}

// Export returns a consistent byte-for-byte copy of the snapshot and log
// files: pending group-commit appends are fsync'd first, then both files are
// read in the same critical section so no append can interleave and no torn
// tail can be observed. The pair is exactly what OpenWAL recovers from — the
// study-migration transfer format. A missing snapshot file (nothing ever
// compacted) yields a nil snapshot slice.
func (w *WAL) Export() (snapshot, log []byte, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil, nil, ErrClosed
	}
	if w.broken != nil {
		return nil, nil, w.broken
	}
	if w.pending > 0 {
		if err := w.f.Sync(); err != nil { //gptlint:ignore lock-held-across-blocking pending records must hit disk before the files are copied, under the same critical section
			w.broken = err
			return nil, nil, err
		}
		w.pending = 0
	}
	snapshot, err = os.ReadFile(w.base) //gptlint:ignore lock-held-across-blocking the copy must exclude concurrent appends; the WAL mutex is the only thing that can
	if err != nil {
		if !os.IsNotExist(err) {
			return nil, nil, err
		}
		snapshot = nil
	}
	log, err = os.ReadFile(walPath(w.base)) //gptlint:ignore lock-held-across-blocking same critical section as the snapshot read: the pair must be mutually consistent
	if err != nil {
		return nil, nil, err
	}
	return snapshot, log, nil
}

// Close flushes buffered appends and closes the log file.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	var err error
	if w.broken == nil && w.pending > 0 {
		err = w.f.Sync() //gptlint:ignore lock-held-across-blocking final flush races nothing the mutex does not already exclude; Close owns the handle
	}
	if cerr := w.f.Close(); err == nil { //gptlint:ignore lock-held-across-blocking closing the handle under the mutex is what makes later appends fail cleanly
		err = cerr
	}
	w.f = nil
	return err
}

// DB returns the in-memory view of snapshot + log. Callers must treat it as
// read-only: new records go through WAL.Append so they are logged first.
func (w *WAL) DB() *DB { return w.db }

// Len returns the total record count (snapshot + log).
func (w *WAL) Len() int { return w.db.Len() }

// recovered is the result of scanning a log file.
type recovered struct {
	records   []Record
	goodSize  int64 // bytes of the valid newline-terminated prefix
	tornBytes int64 // trailing bytes after the last newline (discarded)
	skipped   int   // leading records dropped as already in the snapshot
	hasHeader bool
}

// recoverWAL scans the log at path against a snapshot of snapLen records.
// A missing file or a file whose header line is torn yields an empty result
// with hasHeader=false. A newline-terminated line that fails to parse is an
// error (real corruption, not a torn append).
func recoverWAL(path string, snapLen int) (recovered, error) {
	var rec recovered
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return rec, nil
	}
	if err != nil {
		return rec, err
	}
	var hdr walHeader
	lineNo := 0
	off := int64(0)
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			rec.tornBytes = int64(len(data))
			break
		}
		line := data[:nl]
		lineNo++
		if lineNo == 1 {
			if err := json.Unmarshal(line, &hdr); err != nil || hdr.Wal != 1 {
				return rec, fmt.Errorf("histdb: %s: missing or invalid WAL header", path)
			}
			rec.hasHeader = true
		} else {
			var r Record
			if err := json.Unmarshal(line, &r); err != nil {
				return rec, fmt.Errorf("histdb: %s line %d: corrupt record: %w", path, lineNo, err)
			}
			rec.records = append(rec.records, r)
		}
		off += int64(nl) + 1
		rec.goodSize = off
		data = data[nl+1:]
	}
	if !rec.hasHeader {
		// Only a torn header (or empty file): recover as a fresh log.
		rec.records = nil
		rec.goodSize = 0
		return rec, nil
	}
	if hdr.SnapshotLen > snapLen {
		return rec, fmt.Errorf("histdb: %s extends a snapshot of %d records but only %d are present — snapshot lost or rolled back",
			path, hdr.SnapshotLen, snapLen)
	}
	// Records the snapshot already contains (an interrupted compaction, or a
	// Save that folded a Load's view back in) are skipped, never replayed
	// twice.
	skip := snapLen - hdr.SnapshotLen
	if skip > len(rec.records) {
		skip = len(rec.records)
	}
	rec.skipped = skip
	rec.records = rec.records[skip:]
	return rec, nil
}

// VerifyResult reports the health of a WAL-backed database location.
type VerifyResult struct {
	SnapshotRecords int   // records in the snapshot file
	LogRecords      int   // records the log contributes after recovery
	SkippedRecords  int   // log records skipped as already in the snapshot
	TornBytes       int64 // trailing torn bytes a recovery would discard
}

// Verify checks the snapshot + log pair at base without modifying either
// file. A nil error means OpenWAL would recover everything except the
// reported torn tail.
func Verify(base string) (VerifyResult, error) {
	var res VerifyResult
	snap, err := loadSnapshot(base)
	if err != nil {
		return res, err
	}
	res.SnapshotRecords = len(snap)
	rec, err := recoverWAL(walPath(base), len(snap))
	res.LogRecords = len(rec.records)
	res.SkippedRecords = rec.skipped
	res.TornBytes = rec.tornBytes
	return res, err
}
