package histdb

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func walRecord(i int) Record {
	return Record{
		Problem: "p",
		Task:    []float64{1},
		Config:  []float64{float64(i)},
		Outputs: []float64{float64(100 - i)},
		Stamp:   time.Unix(int64(i), 0).UTC(),
	}
}

func TestWALRoundTrip(t *testing.T) {
	base := filepath.Join(t.TempDir(), "hist.json")
	w, err := OpenWAL(base, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := w.Append(walRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: everything recovered from the log alone (no snapshot yet).
	w2, err := OpenWAL(base, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.Len() != 5 {
		t.Fatalf("recovered %d records, want 5", w2.Len())
	}
	recs := w2.DB().Records()
	for i, r := range recs {
		if r.Config[0] != float64(i) {
			t.Fatalf("record %d out of order: %+v", i, r)
		}
	}

	// Plain Load must replay the sidecar log too.
	db, err := Load(base)
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 5 {
		t.Fatalf("Load saw %d records, want 5", db.Len())
	}
}

func TestWALTornTailRecovered(t *testing.T) {
	base := filepath.Join(t.TempDir(), "hist.json")
	w, err := OpenWAL(base, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.Append(walRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: a partial record with no newline.
	f, err := os.OpenFile(walPath(base), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"problem":"p","task":[1],"conf`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	res, err := Verify(base)
	if err != nil {
		t.Fatalf("torn tail must be recoverable: %v", err)
	}
	if res.TornBytes == 0 || res.LogRecords != 3 {
		t.Fatalf("verify = %+v", res)
	}

	w2, err := OpenWAL(base, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if w2.Len() != 3 {
		t.Fatalf("recovered %d records, want 3", w2.Len())
	}
	// The torn tail must be physically gone so new appends start clean.
	if err := w2.Append(walRecord(9)); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	res, err = Verify(base)
	if err != nil || res.TornBytes != 0 || res.LogRecords != 4 {
		t.Fatalf("after recovery verify = %+v, %v", res, err)
	}
}

func TestWALCorruptMiddleLineErrors(t *testing.T) {
	base := filepath.Join(t.TempDir(), "hist.json")
	w, err := OpenWAL(base, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(walRecord(0)); err != nil {
		t.Fatal(err)
	}
	w.Close()

	// A newline-terminated garbage line followed by a valid record is
	// corruption, not a torn append.
	f, err := os.OpenFile(walPath(base), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	line, _ := json.Marshal(walRecord(1))
	if _, err := f.WriteString("{broken}\n" + string(line) + "\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if _, err := Verify(base); err == nil {
		t.Fatal("corrupt middle line not reported")
	}
	if _, err := OpenWAL(base, WALOptions{}); err == nil {
		t.Fatal("corrupt middle line accepted by OpenWAL")
	}
}

func TestWALCompact(t *testing.T) {
	base := filepath.Join(t.TempDir(), "hist.json")
	w, err := OpenWAL(base, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := w.Append(walRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Compact(); err != nil {
		t.Fatal(err)
	}
	res, err := Verify(base)
	if err != nil {
		t.Fatal(err)
	}
	if res.SnapshotRecords != 4 || res.LogRecords != 0 {
		t.Fatalf("after compact: %+v", res)
	}
	// Appends continue on the fresh log.
	if err := w.Append(walRecord(4)); err != nil {
		t.Fatal(err)
	}
	w.Close()
	w2, err := OpenWAL(base, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.Len() != 5 {
		t.Fatalf("after compact+append reopen: %d records, want 5", w2.Len())
	}
}

// TestWALCompactCrashWindow simulates a crash between the snapshot rewrite
// and the log swap: the snapshot already holds every record but the old log
// still lists the tail. Recovery must not replay those records twice.
func TestWALCompactCrashWindow(t *testing.T) {
	base := filepath.Join(t.TempDir(), "hist.json")
	w, err := OpenWAL(base, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.Append(walRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	oldLog, err := os.ReadFile(walPath(base))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Compact(); err != nil {
		t.Fatal(err)
	}
	w.Close()
	// Undo the log swap, leaving the post-compaction snapshot with the
	// pre-compaction log — exactly the crash-window state.
	if err := os.WriteFile(walPath(base), oldLog, 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := Verify(base)
	if err != nil {
		t.Fatal(err)
	}
	if res.SnapshotRecords != 3 || res.LogRecords != 0 || res.SkippedRecords != 3 {
		t.Fatalf("crash-window verify = %+v", res)
	}
	w2, err := OpenWAL(base, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.Len() != 3 {
		t.Fatalf("crash-window recovery duplicated records: %d, want 3", w2.Len())
	}
}

// syncCounter counts fsyncs to observe the group-commit policy.
type syncCounter struct {
	f     File
	syncs int
}

func (s *syncCounter) Write(p []byte) (int, error) { return s.f.Write(p) }
func (s *syncCounter) Sync() error                 { s.syncs++; return s.f.Sync() }
func (s *syncCounter) Close() error                { return s.f.Close() }

func TestWALGroupCommit(t *testing.T) {
	base := filepath.Join(t.TempDir(), "hist.json")
	var sc *syncCounter
	w, err := OpenWAL(base, WALOptions{
		GroupCommit: 4,
		WrapFile:    func(f File) File { sc = &syncCounter{f: f}; return sc },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := w.Append(walRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if sc.syncs != 2 {
		t.Fatalf("8 appends at GroupCommit=4: %d syncs, want 2", sc.syncs)
	}
	if err := w.Append(walRecord(8)); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if sc.syncs != 3 {
		t.Fatalf("explicit Sync did not flush: %d syncs, want 3", sc.syncs)
	}
	// Close with nothing pending adds no sync.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if sc.syncs != 3 {
		t.Fatalf("Close with empty group synced: %d, want 3", sc.syncs)
	}
}

func TestWALTornHeaderStartsFresh(t *testing.T) {
	base := filepath.Join(t.TempDir(), "hist.json")
	if err := os.WriteFile(walPath(base), []byte(`{"wal":1,"snapshot`), 0o644); err != nil {
		t.Fatal(err)
	}
	w, err := OpenWAL(base, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if w.Len() != 0 {
		t.Fatalf("torn header yielded %d records", w.Len())
	}
	if err := w.Append(walRecord(0)); err != nil {
		t.Fatal(err)
	}
}

func TestWALClockStampsRecords(t *testing.T) {
	base := filepath.Join(t.TempDir(), "hist.json")
	fixed := time.Unix(12345, 0).UTC()
	w, err := OpenWAL(base, WALOptions{Clock: func() time.Time { return fixed }})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(Record{Problem: "p", Outputs: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	if got := w.DB().Records()[0].Stamp; !got.Equal(fixed) {
		t.Fatalf("stamp = %v, want %v", got, fixed)
	}
}

// TestWALNilClockDefaultsToWallClock pins the clock seam: a nil
// WALOptions.Clock is defaulted once at OpenWAL, so zero-stamp records are
// still stamped even though Append itself never reads time.Now.
func TestWALNilClockDefaultsToWallClock(t *testing.T) {
	base := filepath.Join(t.TempDir(), "hist.json")
	w, err := OpenWAL(base, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	before := time.Now().Add(-time.Second)
	if err := w.Append(Record{Problem: "p", Outputs: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	got := w.DB().Records()[0].Stamp
	if got.IsZero() || got.Before(before) {
		t.Fatalf("nil-clock stamp = %v, want a recent wall-clock time", got)
	}
}

// TestWALExport: Export must flush group-commit buffers, hand back bytes
// that OpenWAL recovers into the identical record set, and the snapshot/log
// pair must stay mutually consistent across a Compact.
func TestWALExport(t *testing.T) {
	base := filepath.Join(t.TempDir(), "hist.json")
	w, err := OpenWAL(base, WALOptions{GroupCommit: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 0; i < 5; i++ {
		if err := w.Append(walRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	snap, log, err := w.Export()
	if err != nil {
		t.Fatal(err)
	}
	if snap != nil {
		t.Fatalf("no compaction ran yet but Export returned a %d-byte snapshot", len(snap))
	}

	// Materialize the export elsewhere and recover it.
	restore := func(snap, log []byte) *WAL {
		dir := t.TempDir()
		dst := filepath.Join(dir, "hist.json")
		if snap != nil {
			if err := os.WriteFile(dst, snap, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		if err := os.WriteFile(dst+".wal", log, 0o644); err != nil {
			t.Fatal(err)
		}
		w2, err := OpenWAL(dst, WALOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return w2
	}
	w2 := restore(snap, log)
	defer w2.Close()
	if w2.Len() != 5 {
		t.Fatalf("restored export has %d records, want 5", w2.Len())
	}
	a, _ := json.Marshal(w.DB().Records())
	b, _ := json.Marshal(w2.DB().Records())
	if string(a) != string(b) {
		t.Fatal("restored records differ from the source")
	}

	// After Compact the snapshot carries everything and the log is empty.
	if err := w.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(walRecord(5)); err != nil {
		t.Fatal(err)
	}
	snap, log, err = w.Export()
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatal("Export after Compact returned no snapshot")
	}
	w3 := restore(snap, log)
	defer w3.Close()
	if w3.Len() != 6 {
		t.Fatalf("restored post-compact export has %d records, want 6", w3.Len())
	}
}

// TestWALClosedOps: operations on a closed WAL fail with ErrClosed instead
// of dereferencing the nil file handle — the forced-drain shutdown path
// depends on this.
func TestWALClosedOps(t *testing.T) {
	base := filepath.Join(t.TempDir(), "hist.json")
	w, err := OpenWAL(base, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(walRecord(0)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(walRecord(1)); err != ErrClosed {
		t.Fatalf("Append after Close: got %v, want ErrClosed", err)
	}
	if err := w.Sync(); err != ErrClosed {
		t.Fatalf("Sync after Close: got %v, want ErrClosed", err)
	}
	if err := w.Compact(); err != ErrClosed {
		t.Fatalf("Compact after Close: got %v, want ErrClosed", err)
	}
	if _, _, err := w.Export(); err != ErrClosed {
		t.Fatalf("Export after Close: got %v, want ErrClosed", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second Close: got %v, want nil", err)
	}
}
