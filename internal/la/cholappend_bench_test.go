package la

import (
	"math/rand"
	"testing"
)

// benchAppendSetup factors the leading n×n block of an (n+1)×(n+1) SPD
// matrix and returns the factor plus the row to append.
func benchAppendSetup(n int) (*TriPacked, []float64, float64) {
	rng := rand.New(rand.NewSource(1))
	a := randomSPD(rng, n+1)
	l, err := Cholesky(subMatrix(a, n))
	if err != nil {
		panic(err)
	}
	return PackChol(l), a.Row(n)[:n], a.At(n, n)
}

// BenchmarkCholAppendRow400 measures the O(n²) incremental extension at the
// same order as BenchmarkCholInverse400, so the two costs in the modeling
// phase read off the same table.
func BenchmarkCholAppendRow400(b *testing.B) {
	tp, col, diag := benchAppendSetup(400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := tp.Clone()
		if err := t.AppendRow(col, diag); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCholeskyFull400 is the refit-from-scratch baseline the append
// path replaces: a full O(n³) factorization at the same order.
func BenchmarkCholeskyFull400(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := randomSPD(rng, 400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Cholesky(a); err != nil {
			b.Fatal(err)
		}
	}
}
