package la

import (
	"errors"
	"math"
	"runtime"

	"repro/internal/mpx"
)

// ErrNotPositiveDefinite is returned by the Cholesky factorizations when a
// non-positive pivot is encountered.
var ErrNotPositiveDefinite = errors.New("la: matrix is not positive definite")

// Cholesky computes the lower-triangular Cholesky factor L of the symmetric
// positive definite matrix a (only the lower triangle of a is read) such that
// a = L·Lᵀ. The factor is returned in a new matrix whose strict upper
// triangle is zero.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("la: Cholesky of non-square matrix")
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		li := l.Row(i)
		for j := 0; j <= i; j++ {
			lj := l.Row(j)
			s := a.At(i, j) - Dot(li[:j], lj[:j])
			if i == j {
				if s <= 0 || math.IsNaN(s) {
					return nil, ErrNotPositiveDefinite
				}
				li[j] = math.Sqrt(s)
			} else {
				li[j] = s / lj[j]
			}
		}
	}
	return l, nil
}

// CholeskyJitter factors a, retrying with a growing diagonal jitter when a
// is numerically indefinite. It returns the factor of a + jitter·I and the
// jitter actually used. This is the standard stabilization for GP kernel
// matrices whose conditioning degrades as samples cluster.
func CholeskyJitter(a *Matrix, initial float64) (*Matrix, float64, error) {
	if initial <= 0 {
		initial = 1e-10
	}
	// Scale jitter relative to the mean diagonal magnitude.
	n := a.Rows
	meanDiag := 0.0
	for i := 0; i < n; i++ {
		meanDiag += math.Abs(a.At(i, i))
	}
	if n > 0 {
		meanDiag /= float64(n)
	}
	if meanDiag == 0 { //gptlint:ignore float-eq exact-zero guard before using the mean diagonal as a jitter scale
		meanDiag = 1
	}
	jitter := 0.0
	for attempt := 0; attempt < 12; attempt++ {
		work := a
		if jitter > 0 {
			work = a.Clone()
			for i := 0; i < n; i++ {
				work.Data[i*n+i] += jitter
			}
		}
		l, err := Cholesky(work)
		if err == nil {
			return l, jitter, nil
		}
		if jitter == 0 { //gptlint:ignore float-eq jitter holds exact assigned constants; zero is the unset sentinel
			jitter = initial * meanDiag
		} else {
			jitter *= 10
		}
	}
	return nil, jitter, ErrNotPositiveDefinite
}

// SolveCholVec solves (L·Lᵀ)·x = b given the Cholesky factor L, returning x
// in a new slice.
func SolveCholVec(l *Matrix, b []float64) []float64 {
	y := CopyVec(b)
	ForwardSubst(l, y)
	BackwardSubstT(l, y)
	return y
}

// ForwardSubst solves L·y = b in place (b becomes y); L lower triangular.
func ForwardSubst(l *Matrix, b []float64) {
	n := l.Rows
	if len(b) != n {
		panic("la: ForwardSubst dimension mismatch")
	}
	for i := 0; i < n; i++ {
		li := l.Row(i)
		b[i] = (b[i] - Dot(li[:i], b[:i])) / li[i]
	}
}

// BackwardSubstT solves Lᵀ·x = b in place (b becomes x); L lower triangular.
func BackwardSubstT(l *Matrix, b []float64) {
	n := l.Rows
	if len(b) != n {
		panic("la: BackwardSubstT dimension mismatch")
	}
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * b[k]
		}
		b[i] = s / l.At(i, i)
	}
}

// SolveCholMat solves (L·Lᵀ)·X = B column-by-column, returning X.
func SolveCholMat(l *Matrix, b *Matrix) *Matrix {
	if l.Rows != b.Rows {
		panic("la: SolveCholMat dimension mismatch")
	}
	x := b.Clone()
	col := make([]float64, b.Rows)
	for j := 0; j < b.Cols; j++ {
		for i := 0; i < b.Rows; i++ {
			col[i] = x.At(i, j)
		}
		ForwardSubst(l, col)
		BackwardSubstT(l, col)
		for i := 0; i < b.Rows; i++ {
			x.Set(i, j, col[i])
		}
	}
	return x
}

// CholInverse returns (L·Lᵀ)⁻¹ densely. Used by the LCM gradient, which
// needs tr(Σ⁻¹·dΣ) terms. It computes W = L⁻¹ column by column (stored
// transposed for contiguous access) and assembles Σ⁻¹ = WᵀW from row-wise
// dot products, which is roughly 3× cheaper than per-column two-sided
// solves and fully cache-friendly.
func CholInverse(l *Matrix) *Matrix {
	return ParallelCholInverse(l, 1)
}

// ParallelCholInverse is CholInverse with the independent column solves of
// W = L⁻¹ and the row-wise WᵀW assembly distributed over nworkers
// goroutines. Both phases process columns/rows in fused pairs so each shared
// operand row of L (resp. W) is loaded once for two results, roughly halving
// the memory traffic of these n³/6 phases. The pairing and every summation
// order depend only on n — never on nworkers — so the result is bitwise
// identical to CholInverse for any worker count.
func ParallelCholInverse(l *Matrix, nworkers int) *Matrix {
	return ParallelCholInverseInto(l, nworkers, nil, nil)
}

// ParallelCholInverseInto is ParallelCholInverse writing into caller-provided
// scratch: wt (the W = L⁻¹ workspace) and inv (the result) must each be n×n,
// or nil to allocate fresh. Neither needs zeroing between calls — every entry
// read is written first. Reusing both across the ~10² gradient evaluations of
// an L-BFGS restart removes the dominant per-evaluation allocation.
func ParallelCholInverseInto(l *Matrix, nworkers int, wt, inv *Matrix) *Matrix {
	n := l.Rows
	// wt.Row(j)[k] holds W[k][j], i.e. the solution of L·w = e_j (nonzero
	// only for k ≥ j). Columns of W are mutually independent.
	if wt == nil {
		wt = NewMatrix(n, n)
	} else if wt.Rows != n || wt.Cols != n {
		panic("la: ParallelCholInverseInto wt dimension mismatch")
	}
	npair := (n + 1) / 2
	parallelBlocks(0, npair, nworkers, func(g int) {
		j0 := 2 * g
		j1 := j0 + 1
		row0 := wt.Row(j0)
		row0[j0] = 1 / l.At(j0, j0)
		if j1 >= n {
			return
		}
		lj1 := l.Row(j1)
		row0[j1] = -lj1[j0] * row0[j0] / lj1[j1]
		row1 := wt.Row(j1)
		row1[j1] = 1 / lj1[j1]
		for k := j1 + 1; k < n; k++ {
			lk := l.Row(k)
			s0, s1 := dotPair(lk[j1:k], row0[j1:k], row1[j1:k])
			s0 += lk[j0] * row0[j0]
			row0[k] = -s0 / lk[k]
			row1[k] = -s1 / lk[k]
		}
	})
	if inv == nil {
		inv = NewMatrix(n, n)
	} else if inv.Rows != n || inv.Cols != n {
		panic("la: ParallelCholInverseInto inv dimension mismatch")
	}
	parallelBlocks(0, npair, nworkers, func(g int) {
		i0 := 2 * g
		i1 := i0 + 1
		wi0 := wt.Row(i0)
		if i1 >= n {
			// Odd tail row: plain per-entry dot products.
			for j := 0; j <= i0; j++ {
				s := Dot(wi0[i0:], wt.Row(j)[i0:]) // entries below max(i,j)=i0 vanish
				inv.Data[i0*n+j] = s
				inv.Data[j*n+i0] = s
			}
			return
		}
		wi1 := wt.Row(i1)
		for j := 0; j <= i0; j++ {
			wj := wt.Row(j)
			s0, s1 := dotPair(wj[i1:], wi0[i1:], wi1[i1:])
			s0 += wi0[i0] * wj[i0]
			inv.Data[i0*n+j] = s0
			inv.Data[j*n+i0] = s0
			inv.Data[i1*n+j] = s1
			inv.Data[j*n+i1] = s1
		}
		d := Dot(wi1[i1:], wi1[i1:])
		inv.Data[i1*n+i1] = d
	})
	return inv
}

// LogDetFromChol returns log det(A) = 2·Σ log L_ii given A's Cholesky factor.
func LogDetFromChol(l *Matrix) float64 {
	s := 0.0
	for i := 0; i < l.Rows; i++ {
		s += math.Log(l.At(i, i))
	}
	return 2 * s
}

// ParallelCholesky computes the lower Cholesky factor of a using a blocked
// right-looking algorithm whose panel solves and trailing updates are
// distributed over nworkers goroutines. It is the Go substitute for the
// ScaLAPACK-parallelized covariance factorization in the paper's Section 4.3
// and drives the Fig. 3 modeling-phase speedup experiment.
//
// The factor is bitwise identical for every nworkers value: the blocked
// schedule (and hence every floating-point summation order) depends only on
// n and blockSize, and workers only decide which goroutine runs each
// independent block. The LCM fit relies on this to produce the same model
// regardless of FitOptions.Workers.
//
// blockSize ≤ 0 selects a default. nworkers ≤ 1 runs the blocks inline.
func ParallelCholesky(a *Matrix, blockSize, nworkers int) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("la: ParallelCholesky of non-square matrix")
	}
	n := a.Rows
	if blockSize <= 0 {
		blockSize = 64
	}
	if nworkers <= 0 {
		nworkers = runtime.GOMAXPROCS(0)
	}
	if n <= blockSize {
		return Cholesky(a)
	}
	l := a.Clone()
	// Zero strict upper triangle; we only operate on the lower part.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			l.Data[i*n+j] = 0
		}
	}
	nb := (n + blockSize - 1) / blockSize
	bounds := func(b int) (lo, hi int) {
		lo = b * blockSize
		hi = lo + blockSize
		if hi > n {
			hi = n
		}
		return
	}
	for kb := 0; kb < nb; kb++ {
		k0, k1 := bounds(kb)
		// 1. Factor diagonal block in place (serial; it is small).
		if err := cholInPlace(l, k0, k1); err != nil {
			return nil, err
		}
		// 2. Panel: solve L[i,k]·L[k,k]ᵀ = A[i,k] for all row blocks below,
		// in parallel.
		parallelBlocks(kb+1, nb, nworkers, func(ib int) {
			i0, i1 := bounds(ib)
			trsmRight(l, i0, i1, k0, k1)
		})
		// 3. Trailing update: A[i,j] -= L[i,k]·L[j,k]ᵀ for kb < j ≤ i,
		// parallel over (i,j) block pairs.
		var pairs [][2]int
		for ib := kb + 1; ib < nb; ib++ {
			for jb := kb + 1; jb <= ib; jb++ {
				pairs = append(pairs, [2]int{ib, jb})
			}
		}
		parallelBlocks(0, len(pairs), nworkers, func(p int) {
			ib, jb := pairs[p][0], pairs[p][1]
			i0, i1 := bounds(ib)
			j0, j1 := bounds(jb)
			gemmUpdate(l, i0, i1, j0, j1, k0, k1)
		})
	}
	return l, nil
}

// cholInPlace factors the diagonal block l[k0:k1, k0:k1] in place.
func cholInPlace(l *Matrix, k0, k1 int) error {
	n := l.Cols
	for i := k0; i < k1; i++ {
		ri := l.Data[i*n:]
		for j := k0; j <= i; j++ {
			rj := l.Data[j*n:]
			s := ri[j] - Dot(ri[k0:j], rj[k0:j])
			if i == j {
				if s <= 0 || math.IsNaN(s) {
					return ErrNotPositiveDefinite
				}
				ri[j] = math.Sqrt(s)
			} else {
				ri[j] = s / rj[j]
			}
		}
	}
	return nil
}

// trsmRight solves X·Lkkᵀ = B in place for the panel block rows
// l[i0:i1, k0:k1], where Lkk = l[k0:k1, k0:k1] is already factored. Rows are
// processed in fused pairs sharing each Lkk row load; dotPair accumulates
// exactly like two Dot calls, so the result is unchanged.
func trsmRight(l *Matrix, i0, i1, k0, k1 int) {
	n := l.Cols
	i := i0
	for ; i+1 < i1; i += 2 {
		ra := l.Data[i*n:]
		rb := l.Data[(i+1)*n:]
		for j := k0; j < k1; j++ {
			lj := l.Data[j*n:]
			sa, sb := dotPair(lj[k0:j], ra[k0:j], rb[k0:j])
			ra[j] = (ra[j] - sa) / lj[j]
			rb[j] = (rb[j] - sb) / lj[j]
		}
	}
	for ; i < i1; i++ {
		row := l.Data[i*n:]
		for j := k0; j < k1; j++ {
			lj := l.Data[j*n:]
			row[j] = (row[j] - Dot(row[k0:j], lj[k0:j])) / lj[j]
		}
	}
}

// gemmUpdate performs l[i0:i1, j0:j1] -= l[i0:i1, k0:k1]·l[j0:j1, k0:k1]ᵀ,
// touching only the lower triangle when the (i,j) block is diagonal. Row
// pairs share each l[j, k0:k1] load via dotPair, which accumulates exactly
// like two Dot calls, so the result is unchanged.
func gemmUpdate(l *Matrix, i0, i1, j0, j1, k0, k1 int) {
	n := l.Cols
	rowMax := func(i int) int {
		if j0 <= i && i < j1 {
			return i + 1 // diagonal block: lower triangle only
		}
		return j1
	}
	i := i0
	for ; i+1 < i1; i += 2 {
		ra := l.Data[i*n:]
		rb := l.Data[(i+1)*n:]
		rak := ra[k0:k1]
		rbk := rb[k0:k1]
		jmaxA := rowMax(i)
		jmaxB := rowMax(i + 1) // ≥ jmaxA always
		j := j0
		for ; j < jmaxA; j++ {
			rj := l.Data[j*n:]
			sa, sb := dotPair(rj[k0:k1], rak, rbk)
			ra[j] -= sa
			rb[j] -= sb
		}
		for ; j < jmaxB; j++ {
			rb[j] -= Dot(rbk, l.Data[j*n:][k0:k1])
		}
	}
	for ; i < i1; i++ {
		ri := l.Data[i*n:]
		rik := ri[k0:k1]
		jmax := rowMax(i)
		for j := j0; j < jmax; j++ {
			ri[j] -= Dot(rik, l.Data[j*n:][k0:k1])
		}
	}
}

// parallelBlocks runs fn(i) for i in [lo, hi) on the mpx worker pool and
// waits for all iterations (results are identical for any worker count by
// construction). The work is pure CPU, so nworkers is capped at GOMAXPROCS
// — extra goroutines would only add scheduling overhead.
func parallelBlocks(lo, hi, nworkers int, fn func(int)) {
	count := hi - lo
	if count <= 0 {
		return
	}
	if p := runtime.GOMAXPROCS(0); nworkers > p {
		nworkers = p
	}
	mpx.ParallelFor(count, nworkers, func(i int) { fn(lo + i) }) //gptlint:ignore hotpath-alloc one adapter closure per parallel region; the fan-out is the parallelism seam
}
