package la

import (
	"math/rand"
	"testing"
)

func BenchmarkCholInverse400(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := randomSPD(rng, 400)
	l, _ := Cholesky(a)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CholInverse(l)
	}
}
