// Package la provides the dense linear algebra kernels used by the GP/LCM
// surrogate models: row-major matrices, matrix products, Cholesky
// factorization (serial and parallel blocked, the stand-in for the
// ScaLAPACK-parallelized covariance factorization of the paper's Section 4.3),
// and triangular solves.
//
// All routines are deterministic and allocate only when documented. Matrices
// are dense, row-major, and sized at construction.
package la

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, element (i,j) at Data[i*Cols+j]
}

// NewMatrix returns a zeroed r×c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("la: invalid dimensions %d×%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// NewMatrixFrom returns an r×c matrix backed by a copy of data (row-major).
func NewMatrixFrom(r, c int, data []float64) *Matrix {
	if len(data) != r*c {
		panic(fmt.Sprintf("la: data length %d != %d×%d", len(data), r, c))
	}
	m := NewMatrix(r, c)
	copy(m.Data, data)
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (shared storage).
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		ri := m.Row(i)
		for j, v := range ri {
			t.Data[j*t.Cols+i] = v
		}
	}
	return t
}

// AddScaled adds s*b to m in place. Panics on shape mismatch.
func (m *Matrix) AddScaled(s float64, b *Matrix) {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("la: AddScaled shape mismatch")
	}
	for i, v := range b.Data {
		m.Data[i] += s * v
	}
}

// Scale multiplies every element in place.
func (m *Matrix) Scale(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// MulVec computes y = m·x into a new slice.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic("la: MulVec dimension mismatch")
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		y[i] = Dot(m.Row(i), x)
	}
	return y
}

// MulVecT computes y = mᵀ·x into a new slice.
func (m *Matrix) MulVecT(x []float64) []float64 {
	if len(x) != m.Rows {
		panic("la: MulVecT dimension mismatch")
	}
	y := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 { //gptlint:ignore float-eq exact-zero sparsity skip; any nonzero takes the full multiply
			continue
		}
		ri := m.Row(i)
		for j, v := range ri {
			y[j] += xi * v
		}
	}
	return y
}

// MatMul returns a·b as a new matrix.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic("la: MatMul dimension mismatch")
	}
	c := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		ci := c.Row(i)
		ai := a.Row(i)
		for k, aik := range ai {
			if aik == 0 { //gptlint:ignore float-eq exact-zero sparsity skip; any nonzero takes the full multiply
				continue
			}
			bk := b.Row(k)
			for j, bkj := range bk {
				ci[j] += aik * bkj
			}
		}
	}
	return c
}

// MatMulTransA returns aᵀ·b as a new matrix.
func MatMulTransA(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic("la: MatMulTransA dimension mismatch")
	}
	c := NewMatrix(a.Cols, b.Cols)
	for k := 0; k < a.Rows; k++ {
		ak := a.Row(k)
		bk := b.Row(k)
		for i, aki := range ak {
			if aki == 0 { //gptlint:ignore float-eq exact-zero sparsity skip; any nonzero takes the full multiply
				continue
			}
			ci := c.Row(i)
			for j, bkj := range bk {
				ci[j] += aki * bkj
			}
		}
	}
	return c
}

// MatMulTransB returns a·bᵀ as a new matrix.
func MatMulTransB(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic("la: MatMulTransB dimension mismatch")
	}
	c := NewMatrix(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		ai := a.Row(i)
		ci := c.Row(i)
		for j := 0; j < b.Rows; j++ {
			ci[j] = Dot(ai, b.Row(j))
		}
	}
	return c
}

// Trace returns the trace of a square matrix.
func (m *Matrix) Trace() float64 {
	if m.Rows != m.Cols {
		panic("la: Trace of non-square matrix")
	}
	s := 0.0
	for i := 0; i < m.Rows; i++ {
		s += m.Data[i*m.Cols+i]
	}
	return s
}

// Symmetrize replaces m by (m+mᵀ)/2 in place (square only).
func (m *Matrix) Symmetrize() {
	if m.Rows != m.Cols {
		panic("la: Symmetrize of non-square matrix")
	}
	n := m.Rows
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := 0.5 * (m.Data[i*n+j] + m.Data[j*n+i])
			m.Data[i*n+j] = v
			m.Data[j*n+i] = v
		}
	}
}

// MaxAbsDiff returns max |a_ij - b_ij|.
func MaxAbsDiff(a, b *Matrix) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("la: MaxAbsDiff shape mismatch")
	}
	d := 0.0
	for i, v := range a.Data {
		d = math.Max(d, math.Abs(v-b.Data[i]))
	}
	return d
}

// Dot returns the inner product of two equal-length vectors. The
// accumulation is 4-way unrolled: independent partial sums break the
// floating-point add dependency chain, which roughly triples throughput on
// long vectors (the Cholesky, inverse, and prediction hot loops are all
// dot-product bound).
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("la: Dot length mismatch")
	}
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		aa := a[i : i+4 : i+4]
		bb := b[i : i+4 : i+4]
		s0 += aa[0] * bb[0]
		s1 += aa[1] * bb[1]
		s2 += aa[2] * bb[2]
		s3 += aa[3] * bb[3]
	}
	for ; i < len(a); i++ {
		s0 += a[i] * b[i]
	}
	return (s0 + s2) + (s1 + s3)
}

// dotPair returns (a·b0, a·b1) in a single pass over a, with the same 4-way
// unrolled independent-accumulator scheme as Dot for each product. Fusing the
// two products loads the shared operand a once, which matters in the
// memory-bound triangular-inverse phases that dominate the LCM gradient.
func dotPair(a, b0, b1 []float64) (float64, float64) {
	if len(a) != len(b0) || len(a) != len(b1) {
		panic("la: dotPair length mismatch")
	}
	var s00, s01, s02, s03 float64
	var s10, s11, s12, s13 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		aa := a[i : i+4 : i+4]
		x := b0[i : i+4 : i+4]
		y := b1[i : i+4 : i+4]
		s00 += aa[0] * x[0]
		s10 += aa[0] * y[0]
		s01 += aa[1] * x[1]
		s11 += aa[1] * y[1]
		s02 += aa[2] * x[2]
		s12 += aa[2] * y[2]
		s03 += aa[3] * x[3]
		s13 += aa[3] * y[3]
	}
	for ; i < len(a); i++ {
		s00 += a[i] * b0[i]
		s10 += a[i] * b1[i]
	}
	return (s00 + s02) + (s01 + s03), (s10 + s12) + (s11 + s13)
}

// Axpy computes y += alpha*x in place.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("la: Axpy length mismatch")
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	// Scaled accumulation for overflow safety.
	scale, ssq := 0.0, 1.0
	for _, v := range x {
		if v == 0 { //gptlint:ignore float-eq exact-zero skip keeps the scaled norm accumulation well-defined
			continue
		}
		a := math.Abs(v)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// ScaleVec multiplies x by s in place.
func ScaleVec(s float64, x []float64) {
	for i := range x {
		x[i] *= s
	}
}

// CopyVec returns a copy of x.
func CopyVec(x []float64) []float64 {
	y := make([]float64, len(x))
	copy(y, x)
	return y
}
