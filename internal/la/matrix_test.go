package la

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"
)

func randomSPD(rng *rand.Rand, n int) *Matrix {
	// A = B·Bᵀ + n·I is SPD.
	b := NewMatrix(n, n)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	a := MatMulTransB(b, b)
	for i := 0; i < n; i++ {
		a.Data[i*n+i] += float64(n)
	}
	return a
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrixFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	if m.At(1, 2) != 6 {
		t.Fatalf("At(1,2) = %v, want 6", m.At(1, 2))
	}
	m.Set(0, 1, 9)
	if m.At(0, 1) != 9 {
		t.Fatalf("Set did not stick")
	}
	mt := m.T()
	if mt.Rows != 3 || mt.Cols != 2 || mt.At(2, 1) != 6 || mt.At(1, 0) != 9 {
		t.Fatalf("transpose wrong: %+v", mt)
	}
	c := m.Clone()
	c.Set(0, 0, -1)
	if m.At(0, 0) == -1 {
		t.Fatalf("Clone shares storage")
	}
}

func TestIdentityTrace(t *testing.T) {
	id := Identity(5)
	if id.Trace() != 5 {
		t.Fatalf("trace(I5) = %v", id.Trace())
	}
}

func TestMatMulAgainstHand(t *testing.T) {
	a := NewMatrixFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := NewMatrixFrom(3, 2, []float64{7, 8, 9, 10, 11, 12})
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, v := range want {
		if math.Abs(c.Data[i]-v) > 1e-12 {
			t.Fatalf("MatMul[%d] = %v, want %v", i, c.Data[i], v)
		}
	}
}

func TestMatMulTransVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewMatrix(4, 3)
	b := NewMatrix(4, 5)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	got := MatMulTransA(a, b)
	want := MatMul(a.T(), b)
	if MaxAbsDiff(got, want) > 1e-12 {
		t.Fatalf("MatMulTransA mismatch: %v", MaxAbsDiff(got, want))
	}
	c := NewMatrix(5, 3)
	for i := range c.Data {
		c.Data[i] = rng.NormFloat64()
	}
	got2 := MatMulTransB(a, c)
	want2 := MatMul(a, c.T())
	if MaxAbsDiff(got2, want2) > 1e-12 {
		t.Fatalf("MatMulTransB mismatch")
	}
}

func TestMulVec(t *testing.T) {
	a := NewMatrixFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	y := a.MulVec([]float64{1, 0, -1})
	if y[0] != -2 || y[1] != -2 {
		t.Fatalf("MulVec = %v", y)
	}
	yt := a.MulVecT([]float64{1, -1})
	want := []float64{-3, -3, -3}
	for i := range want {
		if yt[i] != want[i] {
			t.Fatalf("MulVecT = %v", yt)
		}
	}
}

// Property: Cholesky reconstructs the original SPD matrix.
func TestCholeskyReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 2, 3, 7, 20, 53} {
		a := randomSPD(rng, n)
		l, err := Cholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		rec := MatMulTransB(l, l)
		if d := MaxAbsDiff(a, rec); d > 1e-8*float64(n) {
			t.Fatalf("n=%d: reconstruction error %v", n, d)
		}
		// L must be lower triangular.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if l.At(i, j) != 0 {
					t.Fatalf("upper entry (%d,%d) nonzero", i, j)
				}
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewMatrixFrom(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	if _, err := Cholesky(a); err == nil {
		t.Fatalf("expected ErrNotPositiveDefinite")
	}
}

func TestCholeskyJitterRecovers(t *testing.T) {
	// Singular PSD matrix: ones(3).
	a := NewMatrix(3, 3)
	for i := range a.Data {
		a.Data[i] = 1
	}
	l, jit, err := CholeskyJitter(a, 1e-10)
	if err != nil {
		t.Fatalf("jittered factorization failed: %v", err)
	}
	if jit <= 0 {
		t.Fatalf("expected positive jitter, got %v", jit)
	}
	if l.At(0, 0) <= 0 {
		t.Fatalf("bad factor")
	}
}

// Property: SolveCholVec returns x with A·x = b.
func TestSolveCholVecResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 5, 17, 40} {
		a := randomSPD(rng, n)
		l, err := Cholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x := SolveCholVec(l, b)
		r := a.MulVec(x)
		Axpy(-1, b, r)
		if Norm2(r) > 1e-8*Norm2(b)*float64(n) {
			t.Fatalf("n=%d: residual %v", n, Norm2(r))
		}
	}
}

func TestSolveCholMat(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n, m := 12, 4
	a := randomSPD(rng, n)
	l, _ := Cholesky(a)
	b := NewMatrix(n, m)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	x := SolveCholMat(l, b)
	rec := MatMul(a, x)
	if MaxAbsDiff(rec, b) > 1e-8 {
		t.Fatalf("SolveCholMat residual %v", MaxAbsDiff(rec, b))
	}
}

func TestCholInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 15
	a := randomSPD(rng, n)
	l, _ := Cholesky(a)
	inv := CholInverse(l)
	prod := MatMul(a, inv)
	if MaxAbsDiff(prod, Identity(n)) > 1e-8 {
		t.Fatalf("A·A⁻¹ ≠ I: %v", MaxAbsDiff(prod, Identity(n)))
	}
}

func TestLogDetFromChol(t *testing.T) {
	// diag(4, 9): det = 36, logdet = log 36.
	a := NewMatrixFrom(2, 2, []float64{4, 0, 0, 9})
	l, _ := Cholesky(a)
	if got := LogDetFromChol(l); math.Abs(got-math.Log(36)) > 1e-12 {
		t.Fatalf("logdet = %v, want %v", got, math.Log(36))
	}
}

// Property: parallel blocked Cholesky agrees with the serial one for random
// SPD matrices across block sizes and worker counts.
func TestParallelCholeskyMatchesSerial(t *testing.T) {
	// parallelBlocks caps workers at GOMAXPROCS; raise it so the w>1 cases
	// genuinely run concurrently even on a 1-CPU machine.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	rng := rand.New(rand.NewSource(6))
	for _, n := range []int{5, 31, 64, 97, 130} {
		a := randomSPD(rng, n)
		want, err := Cholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		for _, bs := range []int{8, 16, 33} {
			for _, w := range []int{1, 2, 4, 8} {
				got, err := ParallelCholesky(a, bs, w)
				if err != nil {
					t.Fatalf("n=%d bs=%d w=%d: %v", n, bs, w, err)
				}
				if d := MaxAbsDiff(got, want); d > 1e-9*float64(n) {
					t.Fatalf("n=%d bs=%d w=%d: diff %v", n, bs, w, d)
				}
			}
		}
	}
}

func TestParallelCholeskyRejectsIndefinite(t *testing.T) {
	n := 80
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		a.Data[i*n+i] = 1
	}
	a.Data[(n-1)*n+n-1] = -1
	if _, err := ParallelCholesky(a, 16, 4); err == nil {
		t.Fatalf("expected failure on indefinite matrix")
	}
}

func TestNorm2OverflowSafe(t *testing.T) {
	x := []float64{1e308, 1e308}
	got := Norm2(x)
	want := 1e308 * math.Sqrt2
	if math.IsInf(got, 0) || math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("Norm2 = %v, want %v", got, want)
	}
	if Norm2(nil) != 0 {
		t.Fatalf("Norm2(nil) != 0")
	}
}

func TestVectorHelpers(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	if Dot(x, y) != 32 {
		t.Fatalf("Dot = %v", Dot(x, y))
	}
	Axpy(2, x, y)
	if y[0] != 6 || y[2] != 12 {
		t.Fatalf("Axpy = %v", y)
	}
	c := CopyVec(x)
	c[0] = 99
	if x[0] == 99 {
		t.Fatalf("CopyVec shares storage")
	}
	ScaleVec(0.5, x)
	if x[1] != 1 {
		t.Fatalf("ScaleVec = %v", x)
	}
}

// quick-check: symmetrize is idempotent and produces symmetric matrices.
func TestSymmetrizeQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		m := NewMatrix(n, n)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		m.Symmetrize()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if m.At(i, j) != m.At(j, i) {
					return false
				}
			}
		}
		before := m.Clone()
		m.Symmetrize()
		return MaxAbsDiff(before, m) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// quick-check: Cholesky solve round-trips random right-hand sides.
func TestCholeskySolveQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		a := randomSPD(rng, n)
		l, err := Cholesky(a)
		if err != nil {
			return false
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x := SolveCholVec(l, b)
		r := a.MulVec(x)
		Axpy(-1, b, r)
		return Norm2(r) <= 1e-7*(1+Norm2(b))*float64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCholeskySerial400(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	a := randomSPD(rng, 400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Cholesky(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCholeskyParallel400(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	a := randomSPD(rng, 400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParallelCholesky(a, 64, 0); err != nil {
			b.Fatal(err)
		}
	}
}
