package la

import (
	"errors"
	"math"
)

// TriPacked is a lower-triangular matrix stored in packed row-major form:
// row i occupies data[i(i+1)/2 : i(i+1)/2+i+1]. It is the growable home of a
// Cholesky factor: appending a row costs one slice append plus the O(n²)
// substitution work, instead of the O(n²) reallocate-and-copy a dense Matrix
// would pay before any arithmetic. Packing also halves the memory of large
// factors, which is what lets the incremental exact surrogate hold histories
// an order of magnitude past the refit-from-scratch ceiling.
//
// The arithmetic of every method matches the dense Matrix routines operation
// for operation (same Dot calls over the same prefixes, in the same order),
// so a factor moved between representations yields bitwise-identical solves.
type TriPacked struct {
	n    int
	data []float64 // len n(n+1)/2
}

// NewTriPacked returns an empty factor with capacity reserved for an n×n
// lower triangle, ready to grow via AppendRow/AppendRows.
func NewTriPacked(n int) *TriPacked {
	if n < 0 {
		n = 0
	}
	return &TriPacked{data: make([]float64, 0, n*(n+1)/2)}
}

// PackChol packs the lower triangle of a dense factor (as produced by
// Cholesky or ParallelCholesky) into a TriPacked. The strict upper triangle
// of l is ignored.
func PackChol(l *Matrix) *TriPacked {
	if l.Rows != l.Cols {
		panic("la: PackChol of non-square matrix")
	}
	n := l.Rows
	t := &TriPacked{n: n, data: make([]float64, n*(n+1)/2)}
	for i := 0; i < n; i++ {
		copy(t.Row(i), l.Row(i)[:i+1])
	}
	return t
}

// N returns the current order of the factor.
func (t *TriPacked) N() int { return t.n }

// Row returns a view of packed row i (length i+1, shared storage).
func (t *TriPacked) Row(i int) []float64 {
	off := i * (i + 1) / 2
	return t.data[off : off+i+1]
}

// At returns element (i, j) for j ≤ i.
func (t *TriPacked) At(i, j int) float64 { return t.data[i*(i+1)/2+j] }

// Clone returns a deep copy.
func (t *TriPacked) Clone() *TriPacked {
	c := &TriPacked{n: t.n, data: make([]float64, len(t.data))}
	copy(c.data, t.data)
	return c
}

// Dense expands the factor to a dense n×n Matrix with a zero strict upper
// triangle, for consumers of the dense kernels (CholInverse diagnostics).
func (t *TriPacked) Dense() *Matrix {
	m := NewMatrix(t.n, t.n)
	for i := 0; i < t.n; i++ {
		copy(m.Row(i)[:i+1], t.Row(i))
	}
	return m
}

// ForwardSubst solves L·y = b in place (b becomes y). The recurrence is the
// dense ForwardSubst's exactly, so results are bitwise identical.
func (t *TriPacked) ForwardSubst(b []float64) {
	if len(b) != t.n {
		panic("la: TriPacked.ForwardSubst dimension mismatch")
	}
	for i := 0; i < t.n; i++ {
		li := t.Row(i)
		b[i] = (b[i] - Dot(li[:i], b[:i])) / li[i]
	}
}

// BackwardSubstT solves Lᵀ·x = b in place (b becomes x). Same column-order
// accumulation as the dense BackwardSubstT.
func (t *TriPacked) BackwardSubstT(b []float64) {
	if len(b) != t.n {
		panic("la: TriPacked.BackwardSubstT dimension mismatch")
	}
	for i := t.n - 1; i >= 0; i-- {
		s := b[i]
		for k := i + 1; k < t.n; k++ {
			s -= t.At(k, i) * b[k]
		}
		b[i] = s / t.At(i, i)
	}
}

// SolveVec solves (L·Lᵀ)·x = b, returning x in a new slice.
func (t *TriPacked) SolveVec(b []float64) []float64 {
	y := CopyVec(b)
	t.ForwardSubst(y)
	t.BackwardSubstT(y)
	return y
}

// LogDet returns log det(L·Lᵀ) = 2·Σ log L_ii.
func (t *TriPacked) LogDet() float64 {
	s := 0.0
	for i := 0; i < t.n; i++ {
		s += math.Log(t.At(i, i))
	}
	return 2 * s
}

// AppendRow extends the factor of A to the factor of [[A, c], [cᵀ, d]]: the
// new row is [wᵀ, √(d − w·w)] with L·w = c solved by forward substitution.
// Cost is O(n²) against the O(n³) of refactoring. Strict like Cholesky: a
// non-positive pivot returns ErrNotPositiveDefinite and leaves t unchanged.
func (t *TriPacked) AppendRow(col []float64, diag float64) error {
	_, err := t.appendRows(rowMatrix(col), cornerMatrix(diag), 0, false, 1)
	return err
}

// AppendRowJitter is AppendRow retrying a failed pivot with an escalating
// jitter added to the new diagonal entry only (the already-factored leading
// block is untouched). initial ≤ 0 selects the default 1e-10; like
// CholeskyJitter the scale is relative to the diagonal magnitude. It returns
// the jitter actually added (0 on the first-try path).
func (t *TriPacked) AppendRowJitter(col []float64, diag, initial float64) (float64, error) {
	return t.appendRows(rowMatrix(col), cornerMatrix(diag), initial, true, 1)
}

// AppendRows is the blocked, jitter-aware k-row extension: given the factor
// of A, it appends the factor rows of [[A, Bᵀ], [B, C]] where cols holds B
// (k×n, row j = covariances of new point j against the existing n) and
// corner holds C (k×k, lower triangle read). The panel solves against the
// existing factor are distributed over workers goroutines — rows are
// mutually independent there, so the result is bitwise identical for every
// worker count, and the whole operation is bitwise identical to k successive
// AppendRowJitter calls. Failed pivots escalate per-row jitter exactly like
// AppendRowJitter; the maximum jitter added is returned. On error t is left
// unchanged.
//
//gptlint:hotpath
func (t *TriPacked) AppendRows(cols, corner *Matrix, initial float64, workers int) (float64, error) {
	return t.appendRows(cols, corner, initial, true, workers)
}

func rowMatrix(col []float64) *Matrix {
	return &Matrix{Rows: 1, Cols: len(col), Data: col}
}

func cornerMatrix(diag float64) *Matrix {
	return &Matrix{Rows: 1, Cols: 1, Data: []float64{diag}}
}

func (t *TriPacked) appendRows(cols, corner *Matrix, initial float64, jitterOK bool, workers int) (float64, error) {
	k := cols.Rows
	if corner.Rows != k || corner.Cols != k {
		return 0, errors.New("la: AppendRows corner shape mismatch")
	}
	n0 := t.n
	if cols.Cols != n0 {
		return 0, errors.New("la: AppendRows cols width mismatch")
	}
	if k == 0 {
		return 0, nil
	}
	if initial <= 0 {
		initial = 1e-10
	}
	oldLen := len(t.data)
	newLen := (n0 + k) * (n0 + k + 1) / 2
	for len(t.data) < newLen {
		t.data = append(t.data, 0) //gptlint:ignore hotpath-alloc growing the packed factor storage is the operation itself; amortized by append's doubling
	}
	t.data = t.data[:newLen]
	t.n = n0 + k
	// Panel: forward-substitute each new row against the existing factor.
	// Row j only reads rows < n0 and writes its own segment, so the rows are
	// independent and the parallel schedule cannot change any bit.
	parallelBlocks(0, k, workers, func(j int) { //gptlint:ignore hotpath-alloc one closure per panel append, not per row; the fan-out is the parallelism seam
		w := t.Row(n0 + j)
		copy(w[:n0], cols.Row(j))
		for i := 0; i < n0; i++ {
			li := t.Row(i)
			w[i] = (w[i] - Dot(li[:i], w[:i])) / li[i]
		}
	})
	// Corner: finish each new row against the earlier new rows, then take its
	// pivot — the plain Cholesky recurrence continued past n0, in row order.
	maxJitter := 0.0
	for j := 0; j < k; j++ {
		w := t.Row(n0 + j)
		for j2 := 0; j2 < j; j2++ {
			w2 := t.Row(n0 + j2)
			i := n0 + j2
			w[i] = (corner.At(j, j2) - Dot(w[:i], w2[:i])) / w2[i]
		}
		d := corner.At(j, j)
		s := d - Dot(w[:n0+j], w[:n0+j])
		if s <= 0 || math.IsNaN(s) {
			ok := false
			if jitterOK && !math.IsNaN(s) {
				scale := math.Abs(d)
				if scale < 1 {
					scale = 1
				}
				jitter := initial * scale
				for attempt := 0; attempt < 12; attempt++ {
					if s+jitter > 0 {
						s += jitter
						if jitter > maxJitter {
							maxJitter = jitter
						}
						ok = true
						break
					}
					jitter *= 10
				}
			}
			if !ok {
				t.data = t.data[:oldLen]
				t.n = n0
				return maxJitter, ErrNotPositiveDefinite
			}
		}
		w[n0+j] = math.Sqrt(s)
	}
	return maxJitter, nil
}

// CholAppendRow is the dense one-shot convenience: given the factor l of an
// n×n matrix A, it returns the (n+1)×(n+1) factor of [[A, col], [colᵀ, diag]]
// as a new dense matrix. Strict like Cholesky (no jitter). Callers extending
// repeatedly should hold a TriPacked instead to avoid the dense copies.
func CholAppendRow(l *Matrix, col []float64, diag float64) (*Matrix, error) {
	t := PackChol(l)
	if err := t.AppendRow(col, diag); err != nil {
		return nil, err
	}
	return t.Dense(), nil
}
