package la

import (
	"math"
	"math/rand"
	"testing"
)

// subMatrix returns the leading n×n block of a.
func subMatrix(a *Matrix, n int) *Matrix {
	s := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		copy(s.Row(i), a.Row(i)[:n])
	}
	return s
}

func TestPackCholRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomSPD(rng, 23)
	l, err := Cholesky(a)
	if err != nil {
		t.Fatalf("Cholesky: %v", err)
	}
	tp := PackChol(l)
	if tp.N() != 23 {
		t.Fatalf("N = %d, want 23", tp.N())
	}
	d := tp.Dense()
	if MaxAbsDiff(l, d) != 0 {
		t.Fatalf("Dense(PackChol(l)) != l")
	}
	b := make([]float64, 23)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	want := SolveCholVec(l, b)
	got := tp.SolveVec(b)
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("packed solve differs from dense solve at %d: %v vs %v", i, got[i], want[i])
		}
	}
	if lg, ld := tp.LogDet(), LogDetFromChol(l); math.Float64bits(lg) != math.Float64bits(ld) {
		t.Fatalf("LogDet = %v, dense = %v", lg, ld)
	}
}

// TestAppendRowMatchesFullCholesky is the core property test: factoring the
// leading n×n block and appending the remaining k rows one at a time must
// agree with a full Cholesky of the (n+k)×(n+k) matrix within tolerance.
func TestAppendRowMatchesFullCholesky(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n, k = 40, 6
	a := randomSPD(rng, n+k)
	l0, err := Cholesky(subMatrix(a, n))
	if err != nil {
		t.Fatalf("Cholesky: %v", err)
	}
	tp := PackChol(l0)
	for j := 0; j < k; j++ {
		row := a.Row(n + j)
		if err := tp.AppendRow(append([]float64(nil), row[:n+j]...), row[n+j]); err != nil {
			t.Fatalf("AppendRow %d: %v", j, err)
		}
	}
	full, err := Cholesky(a)
	if err != nil {
		t.Fatalf("full Cholesky: %v", err)
	}
	for i := 0; i < n+k; i++ {
		for j := 0; j <= i; j++ {
			got, want := tp.At(i, j), full.At(i, j)
			if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
				t.Fatalf("factor (%d,%d): append %v vs full %v", i, j, got, want)
			}
		}
	}
	// CholAppendRow (dense one-shot) must agree bitwise with the packed path.
	lk, err := Cholesky(subMatrix(a, n+k-1))
	if err != nil {
		t.Fatalf("Cholesky: %v", err)
	}
	dense, err := CholAppendRow(lk, a.Row(n + k - 1)[:n+k-1], a.At(n+k-1, n+k-1))
	if err != nil {
		t.Fatalf("CholAppendRow: %v", err)
	}
	if dense.Rows != n+k {
		t.Fatalf("CholAppendRow rows = %d, want %d", dense.Rows, n+k)
	}
	for j := 0; j < n+k; j++ {
		if math.Float64bits(dense.At(n+k-1, j)) != math.Float64bits(tp.At(n+k-1, j)) {
			t.Fatalf("CholAppendRow last row differs from packed path at col %d", j)
		}
	}
}

// TestAppendRowsBlockedBitwiseEqualsSequential pins the contract the gp layer
// builds on: one blocked AppendRows call produces the same bits as appending
// the rows one at a time, for every worker count.
func TestAppendRowsBlockedBitwiseEqualsSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n, k = 37, 5
	a := randomSPD(rng, n+k)
	l0, err := Cholesky(subMatrix(a, n))
	if err != nil {
		t.Fatalf("Cholesky: %v", err)
	}
	seq := PackChol(l0)
	for j := 0; j < k; j++ {
		row := a.Row(n + j)
		if _, err := seq.AppendRowJitter(append([]float64(nil), row[:n+j]...), row[n+j], 0); err != nil {
			t.Fatalf("AppendRowJitter %d: %v", j, err)
		}
	}
	cols := NewMatrix(k, n)
	corner := NewMatrix(k, k)
	for j := 0; j < k; j++ {
		copy(cols.Row(j), a.Row(n + j)[:n])
		for j2 := 0; j2 <= j; j2++ {
			corner.Set(j, j2, a.At(n+j, n+j2))
		}
	}
	for _, workers := range []int{1, 4} {
		blk := PackChol(l0)
		if _, err := blk.AppendRows(cols, corner, 0, workers); err != nil {
			t.Fatalf("AppendRows(workers=%d): %v", workers, err)
		}
		if blk.N() != seq.N() {
			t.Fatalf("N mismatch: %d vs %d", blk.N(), seq.N())
		}
		for i := 0; i < blk.N(); i++ {
			for j := 0; j <= i; j++ {
				if math.Float64bits(blk.At(i, j)) != math.Float64bits(seq.At(i, j)) {
					t.Fatalf("workers=%d: blocked factor differs from sequential at (%d,%d)", workers, i, j)
				}
			}
		}
	}
}

// TestAppendRowNotPositiveDefinite: appending a duplicate of an existing row
// (same covariances, same diagonal) makes the pivot exactly zero, which the
// strict path must reject while leaving the factor untouched.
func TestAppendRowNotPositiveDefinite(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const n = 12
	a := randomSPD(rng, n)
	l, err := Cholesky(a)
	if err != nil {
		t.Fatalf("Cholesky: %v", err)
	}
	tp := PackChol(l)
	before := tp.Clone()
	// Duplicate row n-1: col = a[n-1][:n-1] extended with a[n-1][n-1] as the
	// covariance against itself, diag = a[n-1][n-1].
	col := append(append([]float64(nil), a.Row(n - 1)[:n-1]...), a.At(n-1, n-1))
	if err := tp.AppendRow(col, a.At(n-1, n-1)); err == nil {
		t.Fatalf("AppendRow accepted a singular extension")
	} else if err != ErrNotPositiveDefinite {
		t.Fatalf("AppendRow error = %v, want ErrNotPositiveDefinite", err)
	}
	if tp.N() != n {
		t.Fatalf("failed append left N = %d, want %d", tp.N(), n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			if math.Float64bits(tp.At(i, j)) != math.Float64bits(before.At(i, j)) {
				t.Fatalf("failed append mutated the factor at (%d,%d)", i, j)
			}
		}
	}
}

// TestAppendRowJitterEscalates: the same singular extension must succeed on
// the jitter path, reporting a positive jitter, and the resulting factor must
// reconstruct the extended matrix with the jitter on the new diagonal only.
func TestAppendRowJitterEscalates(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const n = 10
	a := randomSPD(rng, n)
	l, err := Cholesky(a)
	if err != nil {
		t.Fatalf("Cholesky: %v", err)
	}
	tp := PackChol(l)
	col := append(append([]float64(nil), a.Row(n - 1)[:n-1]...), a.At(n-1, n-1))
	diag := a.At(n-1, n-1)
	jit, err := tp.AppendRowJitter(col, diag, 0)
	if err != nil {
		t.Fatalf("AppendRowJitter: %v", err)
	}
	if jit <= 0 {
		t.Fatalf("jitter = %v, want > 0", jit)
	}
	if tp.N() != n+1 {
		t.Fatalf("N = %d, want %d", tp.N(), n+1)
	}
	// L·Lᵀ must equal the extended matrix with jit added at (n, n).
	last := tp.Row(n)
	got := Dot(last, last)
	want := diag + jit
	if math.Abs(got-want) > 1e-8*math.Abs(want) {
		t.Fatalf("reconstructed new diagonal %v, want %v", got, want)
	}
	for j := 0; j < n; j++ {
		rj := tp.Row(j)
		rec := Dot(last[:j+1], rj)
		if math.Abs(rec-col[j]) > 1e-8*math.Max(1, math.Abs(col[j])) {
			t.Fatalf("reconstructed cross term %d: %v, want %v", j, rec, col[j])
		}
	}
}
