package lint

// callgraph.go builds gptlint's module-wide call graph: one node per
// declared function with a body in the analyzed package set, with edges for
// every statically resolvable call. Calls through interface methods are
// expanded to every module-defined type implementing the interface (the
// implements-set approximation); calls through function values, method
// values, and reflection are invisible — DESIGN.md §12 lists the resulting
// false negatives. Alongside the edges, one walk over each body collects
// the direct facts the dataflow pass propagates: wall-clock reads,
// allocation sites, blocking operations, mutex acquisitions, and go
// statements.
//
// Attribution: a func literal's body belongs to the enclosing declared
// function, so closures passed to mpx pools charge their effects to the
// function that built them. The one exception is a literal spawned by a go
// statement: the goroutine's wall-clock reads and allocations still count
// (they taint determinism and hot paths regardless of which goroutine runs
// them), but its blocking operations and lock acquisitions do not block the
// parent, so spawned bodies are excluded from the blocking and lock facts.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// site is one direct fact location inside a function body.
type site struct {
	pos  token.Position
	desc string
}

// effect is a transitive dataflow fact with its witness chain: path names
// the functions between the summarized function (exclusive) and the
// ultimate site, so diagnostics can show how the effect is reached.
type effect struct {
	pos  token.Position
	desc string
	path []string
}

// trace renders the witness chain, e.g.
// "(*WAL).Append → os.File.Sync at wal.go:183".
func (e *effect) trace() string {
	loc := fmt.Sprintf("%s at %s", e.desc, relPos(e.pos))
	if len(e.path) == 0 {
		return loc
	}
	return strings.Join(e.path, " → ") + " → " + loc
}

// relPos shortens a position to basename:line for witness chains; the
// diagnostic itself carries the full path.
func relPos(p token.Position) string {
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

// callEdge is one resolved static call.
type callEdge struct {
	to      *types.Func
	pos     token.Position
	spawned bool // call happens on a goroutine the caller spawned
}

// goSite is one go statement, kept for the goroutine-leak rule.
type goSite struct {
	stmt *ast.GoStmt
	pos  token.Position
}

// fnNode is one declared function: its direct facts and, after
// propagation, its transitive summaries.
type fnNode struct {
	fn   *types.Func
	pkg  *Package
	decl *ast.FuncDecl
	hot  bool // carries a //gptlint:hotpath marker

	calls    []callEdge
	wall     []site          // direct wall-clock reads (unsevered)
	allocs   []site          // direct allocation sites (unsevered)
	blocking []site          // direct blocking operations (non-spawned)
	locks    map[string]site // lock key -> first direct acquisition
	goStmts  []goSite

	sumWall  *effect            // reaches a wall-clock read
	sumBlock *effect            // may block
	sumAlloc *effect            // allocates
	sumLocks map[string]*effect // lock keys transitively acquired
}

// graph is the module-wide call graph over the analyzed packages.
type graph struct {
	cfg   *Config
	ix    *ignoreIndex
	nodes map[*types.Func]*fnNode
	order []*fnNode // deterministic: packages sorted, files sorted, decl order

	namedTypes []*types.Named // module-defined named types, for implements-sets
	implCache  map[*types.Interface]map[string][]*types.Func

	orders []orderEdge // lock-order observations, filled by lockDiscipline
}

// orderEdge records "second acquired while first was held" at pos; trace is
// empty for a direct acquisition and a witness chain for a transitive one.
type orderEdge struct {
	first, second string
	firstPos      token.Position
	pos           token.Position
	trace         string
}

const hotpathMarker = "//gptlint:hotpath"

// isHotpath reports whether the declaration's doc comment carries the
// //gptlint:hotpath marker (alone or with trailing commentary).
func isHotpath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == hotpathMarker || strings.HasPrefix(c.Text, hotpathMarker+" ") {
			return true
		}
	}
	return false
}

// buildGraph registers every declared function and collects its direct
// facts and call edges.
func buildGraph(pkgs []*Package, cfg *Config, ix *ignoreIndex) *graph {
	g := &graph{
		cfg:       cfg,
		ix:        ix,
		nodes:     make(map[*types.Func]*fnNode),
		implCache: make(map[*types.Interface]map[string][]*types.Func),
	}
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			if tn, ok := scope.Lookup(name).(*types.TypeName); ok && !tn.IsAlias() {
				if named, ok := tn.Type().(*types.Named); ok {
					g.namedTypes = append(g.namedTypes, named)
				}
			}
		}
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				n := &fnNode{fn: obj, pkg: pkg, decl: fd, hot: isHotpath(fd), locks: make(map[string]site)}
				g.nodes[obj] = n
				g.order = append(g.order, n)
			}
		}
	}
	for _, n := range g.order {
		c := &collector{g: g, n: n}
		c.walk(n.decl.Body, false)
	}
	return g
}

// implsOf returns the module-defined concrete methods implementing the
// interface method m, cached per interface.
func (g *graph) implsOf(iface *types.Interface, m *types.Func) []*types.Func {
	byName, ok := g.implCache[iface]
	if !ok {
		byName = make(map[string][]*types.Func)
		for _, named := range g.namedTypes {
			if types.IsInterface(named.Underlying()) || named.TypeParams().Len() > 0 {
				continue
			}
			var impl types.Type
			if types.Implements(named, iface) {
				impl = named
			} else if p := types.NewPointer(named); types.Implements(p, iface) {
				impl = p
			} else {
				continue
			}
			for i := 0; i < iface.NumMethods(); i++ {
				name := iface.Method(i).Name()
				obj, _, _ := types.LookupFieldOrMethod(impl, true, named.Obj().Pkg(), name)
				if f, isFn := obj.(*types.Func); isFn {
					byName[name] = append(byName[name], f.Origin())
				}
			}
		}
		g.implCache[iface] = byName
	}
	return byName[m.Name()]
}

// calleesOf resolves a call expression to the module functions it may
// invoke: the concrete callee, or the implements-set for an interface
// method. Builtins, stdlib concretes, and dynamic calls resolve to nil.
func (g *graph) calleesOf(pkg *Package, call *ast.CallExpr) []*types.Func {
	fn := callee(pkg.Info, call)
	if fn == nil {
		return nil
	}
	fn = fn.Origin()
	if iface := recvInterface(fn); iface != nil {
		var out []*types.Func
		for _, impl := range g.implsOf(iface, fn) {
			if g.nodes[impl] != nil {
				out = append(out, impl)
			}
		}
		return out
	}
	if g.nodes[fn] != nil {
		return []*types.Func{fn}
	}
	return nil
}

// osIOFuncs are the package-level os functions that touch the filesystem.
var osIOFuncs = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
	"ReadFile": true, "WriteFile": true, "Remove": true, "RemoveAll": true,
	"Rename": true, "Mkdir": true, "MkdirAll": true, "MkdirTemp": true,
	"ReadDir": true, "Stat": true, "Lstat": true, "Truncate": true,
	"Chmod": true, "Chtimes": true, "Link": true, "Symlink": true,
}

// ioMethodNames is the heuristic for interface methods that stand for I/O:
// a call to an abstract Read/Write/Sync/... is assumed to block. Named
// after the io/os method vocabulary the module's File-style interfaces use.
var ioMethodNames = map[string]bool{
	"Read": true, "Write": true, "ReadAt": true, "WriteAt": true,
	"Seek": true, "Sync": true, "Close": true, "Flush": true,
}

// recvNamed returns the named receiver type of a concrete method, nil for
// package-level functions and interface methods (including methods of
// named interface types, which recvInterface classifies instead).
func recvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	if named != nil && types.IsInterface(named.Underlying()) {
		return nil
	}
	return named
}

// recvInterface returns the interface type a method is declared on, nil
// for concrete methods and package-level functions.
func recvInterface(fn *types.Func) *types.Interface {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	iface, _ := sig.Recv().Type().Underlying().(*types.Interface)
	return iface
}

// isNamedIn reports whether named is type pkgPath.typeName.
func isNamedIn(named *types.Named, pkgPath, typeName string) bool {
	return named != nil && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == pkgPath && named.Obj().Name() == typeName
}

// mutexMethod classifies fn as a sync.Mutex/RWMutex lock or unlock method;
// op is "Lock"/"RLock"/"Unlock"/"RUnlock", ok false otherwise. sync.Cond
// is deliberately excluded: Cond.Wait atomically releases its mutex, so
// holding a lock "across" it is the intended pattern, not a bug.
func mutexMethod(fn *types.Func) (op string, ok bool) {
	named := recvNamed(fn)
	if !isNamedIn(named, "sync", "Mutex") && !isNamedIn(named, "sync", "RWMutex") {
		return "", false
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return fn.Name(), true
	}
	return "", false
}

// fnName renders a compact qualified function name for diagnostics, e.g.
// "histdb.(*WAL).Append" or "mpx.ParallelFor".
func fnName(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Name()
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return pkg + "." + fn.Name()
	}
	t := sig.Recv().Type()
	ptr := ""
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
		ptr = "*"
	}
	tname := "?"
	if named, isNamed := t.(*types.Named); isNamed {
		tname = named.Obj().Name()
	} else if iface, isIface := t.Underlying().(*types.Interface); isIface {
		_ = iface
		tname = t.String()
	}
	return fmt.Sprintf("%s.(%s%s).%s", pkg, ptr, tname, fn.Name())
}

// lockExprKey derives the class-level identity of a mutex expression: the
// receiver type plus field for "s.mu", the package for a package-level
// var, the enclosing function for a local. Two instances of the same
// field share a key — the standard class-level approximation for lock
// discipline.
func lockExprKey(pkg *Package, fnLabel string, e ast.Expr) string {
	e = unparen(e)
	switch e := e.(type) {
	case *ast.SelectorExpr:
		t := pkg.Info.TypeOf(e.X)
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
			return named.Obj().Pkg().Name() + "." + named.Obj().Name() + "." + e.Sel.Name
		}
		return "?." + e.Sel.Name
	case *ast.Ident:
		obj := pkg.Info.Uses[e]
		if v, ok := obj.(*types.Var); ok {
			if v.Parent() == pkg.Types.Scope() {
				return pkg.Types.Name() + "." + v.Name()
			}
			// t.Lock() through an embedded sync.Mutex: key by the outer type.
			t := v.Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil &&
				!isNamedIn(named, "sync", "Mutex") && !isNamedIn(named, "sync", "RWMutex") {
				return named.Obj().Pkg().Name() + "." + named.Obj().Name() + ".(embedded)"
			}
			return fnLabel + "." + v.Name()
		}
	}
	return fnLabel + ".(mutex)"
}

// lockKeyOfCall extracts the lock key from a mu.Lock()-shaped call.
func lockKeyOfCall(pkg *Package, fnLabel string, call *ast.CallExpr) string {
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		return lockExprKey(pkg, fnLabel, sel.X)
	}
	return fnLabel + ".(mutex)"
}

// directBlockingCall classifies a call expression that blocks by itself:
// time.Sleep, filesystem operations, *os.File methods, WaitGroup.Wait,
// and abstract I/O-named interface methods.
func directBlockingCall(pkg *Package, call *ast.CallExpr) (string, bool) {
	fn := callee(pkg.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	fn = fn.Origin()
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() == nil {
		switch fn.Pkg().Path() {
		case "time":
			if fn.Name() == "Sleep" {
				return "time.Sleep", true
			}
		case "os":
			if osIOFuncs[fn.Name()] {
				return "os." + fn.Name(), true
			}
		}
		return "", false
	}
	if named := recvNamed(fn); named != nil {
		if isNamedIn(named, "os", "File") {
			return "os.File." + fn.Name(), true
		}
		if isNamedIn(named, "sync", "WaitGroup") && fn.Name() == "Wait" {
			return "sync.WaitGroup.Wait", true
		}
		return "", false
	}
	if recvInterface(fn) != nil && ioMethodNames[fn.Name()] {
		return fn.Name() + " (interface method, assumed I/O)", true
	}
	return "", false
}

// hasDefault reports whether a select statement has a default clause (and
// is therefore non-blocking).
func hasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// isChanType reports whether t's underlying type is a channel.
func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// collector performs the fact-gathering walk over one function body.
type collector struct {
	g *graph
	n *fnNode
}

func (c *collector) pos(p token.Pos) token.Position { return c.n.pkg.Fset.Position(p) }

func (c *collector) block(p token.Pos, desc string, spawned bool) {
	if spawned {
		return
	}
	c.n.blocking = append(c.n.blocking, site{pos: c.pos(p), desc: desc})
}

// walk traverses node collecting facts; spawned marks code that runs on a
// goroutine the function spawned (see the attribution note at the top).
func (c *collector) walk(node ast.Node, spawned bool) {
	if node == nil {
		return
	}
	ast.Inspect(node, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.GoStmt:
			c.goStmt(x, spawned)
			return false
		case *ast.FuncLit:
			// A closure value that escapes (assigned, passed, returned).
			// Capturing closures allocate; the body still belongs to us.
			if n := captureCount(c.n.pkg, x); n > 0 {
				c.alloc(x.Pos(), fmt.Sprintf("closure capturing %d variable(s)", n))
			}
			c.walk(x.Body, spawned)
			return false
		case *ast.CallExpr:
			c.callExpr(x, spawned)
			if lit, ok := unparen(x.Fun).(*ast.FuncLit); ok {
				// Immediately invoked literal: no escaping closure value;
				// walk body and args in the current mode.
				c.walk(lit.Body, spawned)
				for _, a := range x.Args {
					c.walk(a, spawned)
				}
				return false
			}
			return true
		case *ast.SendStmt:
			c.block(x.Arrow, "channel send", spawned)
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				c.block(x.Pos(), "channel receive", spawned)
			}
		case *ast.SelectStmt:
			if !hasDefault(x) {
				c.block(x.Pos(), "select", spawned)
			}
		case *ast.RangeStmt:
			if isChanType(c.n.pkg.Info.TypeOf(x.X)) {
				c.block(x.Pos(), "range over channel", spawned)
			}
		}
		return true
	})
}

func (c *collector) alloc(p token.Pos, desc string) {
	pos := c.pos(p)
	if c.g.ix.severs(pos, RuleHotpathAlloc) {
		return
	}
	c.n.allocs = append(c.n.allocs, site{pos: pos, desc: desc})
}

func (c *collector) goStmt(x *ast.GoStmt, spawned bool) {
	c.n.goStmts = append(c.n.goStmts, goSite{stmt: x, pos: c.pos(x.Pos())})
	if lit, ok := unparen(x.Call.Fun).(*ast.FuncLit); ok {
		c.walk(lit.Body, true)
	} else {
		for _, to := range c.g.calleesOf(c.n.pkg, x.Call) {
			c.n.calls = append(c.n.calls, callEdge{to: to, pos: c.pos(x.Pos()), spawned: true})
		}
	}
	for _, a := range x.Call.Args {
		c.walk(a, spawned) // args are evaluated by the spawning goroutine
	}
}

// callExpr records the facts of one call: builtin allocations, wall-clock
// reads, blocking operations, lock acquisitions, and call edges.
func (c *collector) callExpr(x *ast.CallExpr, spawned bool) {
	if id, ok := unparen(x.Fun).(*ast.Ident); ok {
		if b, isB := c.n.pkg.Info.Uses[id].(*types.Builtin); isB {
			switch b.Name() {
			case "make":
				c.alloc(x.Pos(), "make")
			case "new":
				c.alloc(x.Pos(), "new")
			case "append":
				if growingAppend(x) {
					c.alloc(x.Pos(), "append (may grow)")
				}
			}
			return
		}
	}
	fn := callee(c.n.pkg.Info, x)
	if fn == nil {
		return // dynamic call through a function value: invisible (§12)
	}
	fn = fn.Origin()
	if fn.Pkg() != nil && fn.Pkg().Path() == "time" && wallclockFuncs[fn.Name()] {
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil && sig.Recv() == nil {
			pos := c.pos(x.Pos())
			if !c.g.ix.severs(pos, RuleWallclock, RuleTransitiveWallclock) {
				c.n.wall = append(c.n.wall, site{pos: pos, desc: "time." + fn.Name()})
			}
			return
		}
	}
	if op, ok := mutexMethod(fn); ok {
		if !spawned && (op == "Lock" || op == "RLock") {
			key := lockKeyOfCall(c.n.pkg, fnName(c.n.fn), x)
			if _, seen := c.n.locks[key]; !seen {
				c.n.locks[key] = site{pos: c.pos(x.Pos()), desc: op}
			}
		}
		return
	}
	if desc, ok := directBlockingCall(c.n.pkg, x); ok {
		c.block(x.Pos(), desc, spawned)
		// An abstract I/O method also dispatches to module implementations;
		// fall through to record those edges.
		if recvInterface(fn) == nil {
			return
		}
	}
	for _, to := range c.g.calleesOf(c.n.pkg, x) {
		c.n.calls = append(c.n.calls, callEdge{to: to, pos: c.pos(x.Pos()), spawned: spawned})
	}
}

// growingAppend reports whether an append call can grow its backing array.
// append(x[:0], ...) reuses x's capacity and is the one recognized
// non-growing form.
func growingAppend(call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	sl, ok := unparen(call.Args[0]).(*ast.SliceExpr)
	if !ok || sl.High == nil {
		return true
	}
	lit, ok := unparen(sl.High).(*ast.BasicLit)
	return !ok || lit.Value != "0"
}

// captureCount counts variables a func literal captures from enclosing
// function scope (package-level objects and its own locals excluded).
func captureCount(pkg *Package, lit *ast.FuncLit) int {
	seen := make(map[*types.Var]bool)
	ast.Inspect(lit.Body, func(x ast.Node) bool {
		id, ok := x.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pkg.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		if v.Parent() == pkg.Types.Scope() || v.Pkg() != pkg.Types {
			return true // package-level or foreign: not a capture
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			seen[v] = true
		}
		return true
	})
	return len(seen)
}
