package lint

// dataflow.go runs the taint-style propagation over the call graph and
// emits the interprocedural rules:
//
//   transitive-wallclock      a NumericPackages function calls out of the
//                             numeric core into a function that reaches
//                             time.Now/Since/Until through any chain. Only
//                             the frontier edge is reported — numeric →
//                             numeric chains are reported where they leave
//                             the core, and direct time.* calls stay
//                             no-wallclock's domain — so one root cause
//                             yields one diagnostic, not a cascade.
//   lock-held-across-blocking a sync.Mutex/RWMutex is provably held at a
//                             blocking operation (channel op, file I/O,
//                             fsync, time.Sleep, WaitGroup.Wait, abstract
//                             I/O method) or at a call whose callee blocks
//                             transitively.
//   lock-order                two mutex classes are acquired in opposite
//                             orders somewhere in the module.
//   goroutine-leak            a go statement whose body shows no join
//                             evidence (WaitGroup.Done, close, or a
//                             channel send).
//   hotpath-alloc             a //gptlint:hotpath function allocates
//                             directly or calls something that does.
//
// Summaries use set-once BFS from the seed sites up the reverse edges,
// which both terminates on cycles and yields shortest witness chains.
// Wall-clock taint flows through every edge including spawned ones (a
// goroutine's clock read is as nondeterministic as the parent's); blocking
// and allocation flow only through non-spawned edges.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// propagate computes every node's transitive summaries.
func (g *graph) propagate() {
	revAll := make(map[*fnNode][]*fnNode)
	revSync := make(map[*fnNode][]*fnNode)
	for _, n := range g.order {
		for _, e := range n.calls {
			m := g.nodes[e.to]
			if m == nil {
				continue
			}
			revAll[m] = append(revAll[m], n)
			if !e.spawned {
				revSync[m] = append(revSync[m], n)
			}
		}
	}

	bfs := func(rev map[*fnNode][]*fnNode, seeds func(*fnNode) []site,
		get func(*fnNode) *effect, set func(*fnNode, *effect)) {
		var queue []*fnNode
		for _, n := range g.order {
			if s := seeds(n); len(s) > 0 && get(n) == nil {
				set(n, &effect{pos: s[0].pos, desc: s[0].desc})
				queue = append(queue, n)
			}
		}
		for len(queue) > 0 {
			m := queue[0]
			queue = queue[1:]
			me := get(m)
			for _, caller := range rev[m] {
				if get(caller) == nil {
					set(caller, &effect{
						pos:  me.pos,
						desc: me.desc,
						path: append([]string{fnName(m.fn)}, me.path...),
					})
					queue = append(queue, caller)
				}
			}
		}
	}

	bfs(revAll,
		func(n *fnNode) []site { return n.wall },
		func(n *fnNode) *effect { return n.sumWall },
		func(n *fnNode, e *effect) { n.sumWall = e })
	bfs(revSync,
		func(n *fnNode) []site { return n.blocking },
		func(n *fnNode) *effect { return n.sumBlock },
		func(n *fnNode, e *effect) { n.sumBlock = e })
	bfs(revSync,
		func(n *fnNode) []site { return n.allocs },
		func(n *fnNode) *effect { return n.sumAlloc },
		func(n *fnNode, e *effect) { n.sumAlloc = e })

	// Lock-acquisition sets: union over callees to a fixpoint.
	for _, n := range g.order {
		n.sumLocks = make(map[string]*effect)
		for k, s := range n.locks {
			n.sumLocks[k] = &effect{pos: s.pos, desc: s.desc}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.order {
			for _, e := range n.calls {
				if e.spawned {
					continue
				}
				m := g.nodes[e.to]
				if m == nil {
					continue
				}
				for k, eff := range m.sumLocks {
					if _, ok := n.sumLocks[k]; ok {
						continue
					}
					n.sumLocks[k] = &effect{
						pos:  eff.pos,
						desc: eff.desc,
						path: append([]string{fnName(m.fn)}, eff.path...),
					}
					changed = true
				}
			}
		}
	}
}

// reporter appends interprocedural diagnostics.
type reporter func(pos token.Position, rule, format string, args ...any)

// transitiveWallclock reports numeric-core calls whose callee leaves the
// numeric package set and reaches the wall clock.
func (g *graph) transitiveWallclock(report reporter) {
	for _, n := range g.order {
		if !g.cfg.isNumeric(n.pkg.Path) {
			continue
		}
		seen := make(map[token.Position]bool)
		for _, e := range n.calls {
			m := g.nodes[e.to]
			if m == nil || m.sumWall == nil || g.cfg.isNumeric(m.pkg.Path) || seen[e.pos] {
				continue
			}
			seen[e.pos] = true
			report(e.pos, RuleTransitiveWallclock,
				"call to %s reaches the wall clock (%s); inject a clock from the caller instead",
				fnName(m.fn), m.sumWall.trace())
		}
	}
}

// hotpathAlloc reports allocations in //gptlint:hotpath functions: direct
// sites, plus calls to functions that allocate transitively.
func (g *graph) hotpathAlloc(report reporter) {
	for _, n := range g.order {
		if !n.hot {
			continue
		}
		for _, s := range n.allocs {
			report(s.pos, RuleHotpathAlloc,
				"%s allocates in hotpath function %s; reuse workspace buffers or justify with an ignore",
				s.desc, fnName(n.fn))
		}
		seen := make(map[token.Position]bool)
		for _, e := range n.calls {
			m := g.nodes[e.to]
			if e.spawned || m == nil || m.sumAlloc == nil || seen[e.pos] {
				continue
			}
			seen[e.pos] = true
			report(e.pos, RuleHotpathAlloc,
				"call to %s allocates (%s) in hotpath function %s",
				fnName(m.fn), m.sumAlloc.trace(), fnName(n.fn))
		}
	}
}

// goroutineLeaks reports go statements with no join evidence.
func (g *graph) goroutineLeaks(report reporter) {
	for _, n := range g.order {
		for _, gs := range n.goStmts {
			if g.joinable(n.pkg, gs.stmt) {
				continue
			}
			report(gs.pos, RuleGoroutineLeak,
				"goroutine has no join path (no WaitGroup.Done, close, or channel send in its body); join it or justify with an ignore")
		}
	}
}

// joinable looks for join evidence in the spawned body: a WaitGroup.Done,
// a close, or a channel send — the signals a parent can wait on.
func (g *graph) joinable(pkg *Package, gs *ast.GoStmt) bool {
	if lit, ok := unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		return bodyHasJoin(pkg, lit.Body)
	}
	if fn := callee(pkg.Info, gs.Call); fn != nil {
		if m := g.nodes[fn.Origin()]; m != nil {
			return bodyHasJoin(m.pkg, m.decl.Body)
		}
	}
	return false
}

func bodyHasJoin(pkg *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.CallExpr:
			if id, ok := unparen(x.Fun).(*ast.Ident); ok {
				if b, isB := pkg.Info.Uses[id].(*types.Builtin); isB && b.Name() == "close" {
					found = true
				}
			}
			if fn := callee(pkg.Info, x); fn != nil && fn.Name() == "Done" {
				if isNamedIn(recvNamed(fn), "sync", "WaitGroup") {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// --- lock discipline: a sequential lockset walk per function ---

// heldLock is one mutex the walker believes is held, with where it was
// acquired.
type heldLock struct {
	key string
	pos token.Position
	op  string
}

// lockWalker threads a lockset through one function body in statement
// order. defer is the known approximation: a `defer mu.Unlock()` does NOT
// release for the walk — the mutex really is held until return, which is
// exactly what lock-held-across-blocking must see — and deferred call
// bodies are not walked (their lockset at run time is the return-time one,
// which the walk does not model).
type lockWalker struct {
	g        *graph
	n        *fnNode
	report   reporter
	emit     bool // emit lock-held-across-blocking diagnostics
	consumed map[*ast.FuncLit]bool
	seen     map[token.Position]bool
}

// lockDiscipline walks every function, emitting lock-held-across-blocking
// diagnostics (when emitHeld) and accumulating lock-order observations
// into g.orders.
func (g *graph) lockDiscipline(report reporter, emitHeld bool) {
	for _, n := range g.order {
		w := &lockWalker{
			g: g, n: n, report: report, emit: emitHeld,
			consumed: make(map[*ast.FuncLit]bool),
			seen:     make(map[token.Position]bool),
		}
		w.stmts(n.decl.Body.List, nil)
	}
}

// lockOrderDiags pairs up the collected order observations and reports
// every inconsistent pair (both A-then-B and B-then-A observed).
func (g *graph) lockOrderDiags(report reporter) {
	type pair struct{ a, b string }
	byPair := make(map[pair][]orderEdge)
	for _, e := range g.orders {
		byPair[pair{e.first, e.second}] = append(byPair[pair{e.first, e.second}], e)
	}
	keys := make([]pair, 0, len(byPair))
	for p := range byPair {
		keys = append(keys, p)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].a != keys[j].a {
			return keys[i].a < keys[j].a
		}
		return keys[i].b < keys[j].b
	})
	type dedupe struct {
		pos  token.Position
		pair pair
	}
	reported := make(map[dedupe]bool)
	for _, p := range keys {
		rev, ok := byPair[pair{p.b, p.a}]
		if !ok || p.a == p.b {
			continue
		}
		for _, e := range byPair[p] {
			d := dedupe{pos: e.pos, pair: p}
			if reported[d] {
				continue
			}
			reported[d] = true
			via := ""
			if e.trace != "" {
				via = " via " + e.trace
			}
			report(e.pos, RuleLockOrder,
				"%s acquired%s while holding %s, but the opposite order occurs at %s; pick one order",
				p.b, via, p.a, relPos(rev[0].pos))
		}
	}
}

func clone(held []heldLock) []heldLock {
	return append([]heldLock(nil), held...)
}

func (w *lockWalker) stmts(list []ast.Stmt, held []heldLock) []heldLock {
	for _, s := range list {
		held = w.stmt(s, held)
	}
	return held
}

// stmt advances the lockset across one statement. Branch bodies are
// analyzed with a copy of the lockset and their lock effects dropped
// afterwards: a branch that unlocks must return (the usual error-path
// shape), and conditional acquisition is a documented under-approximation.
func (w *lockWalker) stmt(s ast.Stmt, held []heldLock) []heldLock {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return w.stmts(s.List, held)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, held)
	case *ast.IfStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		held = w.scan(s.Cond, held)
		w.stmt(s.Body, clone(held))
		if s.Else != nil {
			w.stmt(s.Else, clone(held))
		}
		return held
	case *ast.ForStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			held = w.scan(s.Cond, held)
		}
		inner := clone(held)
		inner = w.stmt(s.Body, inner)
		if s.Post != nil {
			w.stmt(s.Post, inner)
		}
		return held
	case *ast.RangeStmt:
		held = w.scan(s.X, held)
		if isChanType(w.n.pkg.Info.TypeOf(s.X)) {
			w.blockEvent(w.pos(s.Pos()), "range over channel", held)
		}
		w.stmt(s.Body, clone(held))
		return held
	case *ast.SwitchStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			held = w.scan(s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				h := clone(held)
				for _, e := range cc.List {
					h = w.scan(e, h)
				}
				w.stmts(cc.Body, h)
			}
		}
		return held
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		w.stmt(s.Assign, clone(held))
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, clone(held))
			}
		}
		return held
	case *ast.SelectStmt:
		if !hasDefault(s) {
			w.blockEvent(w.pos(s.Pos()), "select", held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				h := clone(held)
				if cc.Comm != nil {
					h = w.stmt(cc.Comm, h)
				}
				w.stmts(cc.Body, h)
			}
		}
		return held
	case *ast.SendStmt:
		held = w.scan(s.Chan, held)
		held = w.scan(s.Value, held)
		w.blockEvent(w.pos(s.Arrow), "channel send", held)
		return held
	case *ast.GoStmt:
		for _, a := range s.Call.Args {
			held = w.scan(a, held)
		}
		return held
	case *ast.DeferStmt:
		// Arguments are evaluated now; the call itself runs at return.
		for _, a := range s.Call.Args {
			held = w.scan(a, held)
		}
		return held
	case *ast.ExprStmt:
		return w.scan(s.X, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			held = w.scan(e, held)
		}
		for _, e := range s.Lhs {
			held = w.scan(e, held)
		}
		return held
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			held = w.scan(e, held)
		}
		return held
	case *ast.IncDecStmt:
		return w.scan(s.X, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, sp := range gd.Specs {
				if vs, ok := sp.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						held = w.scan(v, held)
					}
				}
			}
		}
		return held
	}
	return held
}

func (w *lockWalker) pos(p token.Pos) token.Position { return w.n.pkg.Fset.Position(p) }

// scan processes an expression tree in pre-order, threading the lockset.
func (w *lockWalker) scan(e ast.Expr, held []heldLock) []heldLock {
	if e == nil {
		return held
	}
	hp := &held
	ast.Inspect(e, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			if w.consumed[x] {
				// Immediately invoked: body runs here, under the current set.
				*hp = w.stmts(x.Body.List, *hp)
			} else {
				// Escaping closure: analyzed with an empty lockset of its own.
				w.stmts(x.Body.List, nil)
			}
			return false
		case *ast.CallExpr:
			if lit, ok := unparen(x.Fun).(*ast.FuncLit); ok {
				w.consumed[lit] = true
			}
			w.callEvent(x, hp)
			return true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				w.blockEvent(w.pos(x.Pos()), "channel receive", *hp)
			}
		}
		return true
	})
	return *hp
}

// callEvent handles one call during the lockset walk: mutex ops mutate the
// set; blocking calls and calls to transitively blocking or lock-acquiring
// callees are checked against it.
func (w *lockWalker) callEvent(call *ast.CallExpr, hp *[]heldLock) {
	pos := w.pos(call.Pos())
	if fn := callee(w.n.pkg.Info, call); fn != nil {
		if op, ok := mutexMethod(fn.Origin()); ok {
			key := lockKeyOfCall(w.n.pkg, fnName(w.n.fn), call)
			switch op {
			case "Lock", "RLock":
				for _, h := range *hp {
					if h.key != key {
						w.g.orders = append(w.g.orders, orderEdge{
							first: h.key, second: key, firstPos: h.pos, pos: pos,
						})
					}
				}
				*hp = append(*hp, heldLock{key: key, pos: pos, op: op})
			case "Unlock", "RUnlock":
				for i := len(*hp) - 1; i >= 0; i-- {
					if (*hp)[i].key == key {
						*hp = append((*hp)[:i], (*hp)[i+1:]...)
						break
					}
				}
			}
			return
		}
	}
	if desc, ok := directBlockingCall(w.n.pkg, call); ok {
		w.blockEvent(pos, desc, *hp)
		return
	}
	if len(*hp) == 0 {
		return
	}
	callees := w.g.calleesOf(w.n.pkg, call)
	for _, to := range callees {
		m := w.g.nodes[to]
		if m == nil {
			continue
		}
		if m.sumBlock != nil && !w.seen[pos] {
			w.seen[pos] = true
			if w.emit {
				w.report(pos, RuleLockBlocking,
					"call to %s blocks (%s) while holding %s",
					fnName(m.fn), m.sumBlock.trace(), heldList(*hp))
			}
		}
		for k, eff := range m.sumLocks {
			for _, h := range *hp {
				if h.key == k {
					continue
				}
				w.g.orders = append(w.g.orders, orderEdge{
					first: h.key, second: k, firstPos: h.pos, pos: pos,
					trace: fnName(m.fn) + "'s " + eff.trace(),
				})
			}
		}
	}
}

func (w *lockWalker) blockEvent(pos token.Position, desc string, held []heldLock) {
	if len(held) == 0 || !w.emit || w.seen[pos] {
		return
	}
	w.seen[pos] = true
	w.report(pos, RuleLockBlocking, "%s while holding %s", desc, heldList(held))
}

func heldList(held []heldLock) string {
	parts := make([]string, len(held))
	for i, h := range held {
		parts[i] = fmt.Sprintf("%s (%s at %s)", h.key, h.op, relPos(h.pos))
	}
	return strings.Join(parts, ", ")
}

// GraphDump renders the call graph for cmd/gptlint -graph: one line per
// function with its summary flags, then one indented line per edge.
func GraphDump(pkgs []*Package, cfg Config) []string {
	g := buildGraph(pkgs, &cfg, newIgnoreIndex(pkgs))
	g.propagate()
	var out []string
	for _, n := range g.order {
		var flags []string
		if n.hot {
			flags = append(flags, "hotpath")
		}
		if n.sumWall != nil {
			flags = append(flags, "wallclock")
		}
		if n.sumBlock != nil {
			flags = append(flags, "blocks")
		}
		if n.sumAlloc != nil {
			flags = append(flags, "allocates")
		}
		line := fnName(n.fn)
		if len(flags) > 0 {
			line += " [" + strings.Join(flags, " ") + "]"
		}
		out = append(out, line)
		for _, e := range n.calls {
			mark := ""
			if e.spawned {
				mark = " [spawned]"
			}
			out = append(out, fmt.Sprintf("  -> %s%s (%s)", fnName(e.to), mark, relPos(e.pos)))
		}
	}
	return out
}
