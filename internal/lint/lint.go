package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Rule names, stable identifiers used in diagnostics, //gptlint:ignore
// comments, and golden-file expectations.
const (
	RuleGlobalRand     = "no-global-rand"      // R1
	RuleWallclock      = "no-wallclock"        // R2
	RuleMapRange       = "no-map-range"        // R3
	RuleStrayGoroutine = "no-stray-goroutines" // R4
	RuleFloatEq        = "float-eq"            // R5
	RuleUncheckedError = "unchecked-error"     // R6

	// Interprocedural rules, computed over the module-wide call graph
	// (callgraph.go / dataflow.go).
	RuleTransitiveWallclock = "transitive-wallclock"      // R7
	RuleLockBlocking        = "lock-held-across-blocking" // R8
	RuleLockOrder           = "lock-order"                // R9
	RuleGoroutineLeak       = "goroutine-leak"            // R10
	RuleHotpathAlloc        = "hotpath-alloc"             // R11

	// Meta rules emitted by the ignore-contract checker itself.
	RuleBadIgnore    = "bad-ignore"
	RuleUnusedIgnore = "unused-ignore"
)

// knownRules is the set of rule names an ignore comment may name.
var knownRules = map[string]bool{
	RuleGlobalRand:          true,
	RuleWallclock:           true,
	RuleMapRange:            true,
	RuleStrayGoroutine:      true,
	RuleFloatEq:             true,
	RuleUncheckedError:      true,
	RuleTransitiveWallclock: true,
	RuleLockBlocking:        true,
	RuleLockOrder:           true,
	RuleGoroutineLeak:       true,
	RuleHotpathAlloc:        true,
}

// KnownRules returns every rule name, sorted — the authoritative list for
// cmd/gptlint -rules validation and usage text.
func KnownRules() []string {
	out := make([]string, 0, len(knownRules))
	for r := range knownRules {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Rule, d.Msg)
}

// Config scopes the rules. R1 (no-global-rand) applies to every analyzed
// package; R4 (no-stray-goroutines) to every package not in GoroutineAllowed;
// R2/R3/R5/R6 only to the NumericPackages — the deterministic numeric core
// whose outputs must be bitwise reproducible. Of the interprocedural rules,
// transitive-wallclock applies to the NumericPackages (reported at the edge
// where a call chain leaves the numeric core); lock-held-across-blocking,
// lock-order, and goroutine-leak apply everywhere; hotpath-alloc applies to
// functions marked //gptlint:hotpath wherever they are.
type Config struct {
	// NumericPackages are the import paths where the determinism rules
	// (no-wallclock, no-map-range, float-eq, unchecked-error,
	// transitive-wallclock) apply.
	NumericPackages []string
	// GoroutineAllowed are the import paths permitted to contain go
	// statements (the mpx worker-pool substrate).
	GoroutineAllowed []string
	// Rules, when non-empty, restricts the run to the named rules.
	// bad-ignore is always enforced; unused-ignore is only enforced on
	// full runs (an ignore for a disabled rule legitimately suppresses
	// nothing).
	Rules []string
}

func (c *Config) isNumeric(path string) bool { return containsString(c.NumericPackages, path) }
func (c *Config) allowsGo(path string) bool  { return containsString(c.GoroutineAllowed, path) }

// enabled reports whether diagnostics for rule should be emitted.
func (c *Config) enabled(rule string) bool {
	return len(c.Rules) == 0 || containsString(c.Rules, rule)
}

func containsString(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

// DefaultConfig returns the rule scoping for a module laid out like this
// repo: the numeric core under internal/{gp,la,core,opt,acq,sample,sparse}
// and all parallelism in internal/mpx.
func DefaultConfig(modulePath string) Config {
	numeric := []string{"gp", "la", "core", "opt", "acq", "sample", "sparse"}
	cfg := Config{}
	for _, n := range numeric {
		cfg.NumericPackages = append(cfg.NumericPackages, modulePath+"/internal/"+n)
	}
	cfg.GoroutineAllowed = []string{modulePath + "/internal/mpx"}
	return cfg
}

// ignoreDirective is one parsed //gptlint:ignore comment.
type ignoreDirective struct {
	pos    token.Position
	rule   string
	reason string
	bad    string // non-empty: malformed, with explanation
	used   bool
}

const ignorePrefix = "//gptlint:ignore"

// parseIgnores extracts every //gptlint:ignore directive from a file.
func parseIgnores(fset *token.FileSet, file *ast.File) []*ignoreDirective {
	var out []*ignoreDirective
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, ignorePrefix)
			if !ok {
				continue
			}
			d := &ignoreDirective{pos: fset.Position(c.Pos())}
			// A trailing "// ..." inside the comment is commentary about
			// the directive, not part of the reason.
			if i := strings.Index(text, "//"); i >= 0 {
				text = text[:i]
			}
			fields := strings.Fields(text)
			switch {
			case len(fields) == 0:
				d.bad = "missing rule name"
			case !knownRules[fields[0]]:
				d.bad = fmt.Sprintf("unknown rule %q", fields[0])
			case len(fields) < 2:
				d.bad = fmt.Sprintf("ignore for %s has no reason; the contract is //gptlint:ignore <rule> <reason>", fields[0])
			default:
				d.rule = fields[0]
				d.reason = strings.Join(fields[1:], " ")
			}
			out = append(out, d)
		}
	}
	return out
}

// ignoreIndex holds every directive in the analyzed packages, keyed by
// file, so both the suppression pass and the call-graph collector (which
// severs ignored sites from transitive summaries) share one used-tracking
// view.
type ignoreIndex struct {
	byFile map[string][]*ignoreDirective // well-formed directives only
	all    []*ignoreDirective            // every directive, in file order
}

func newIgnoreIndex(pkgs []*Package) *ignoreIndex {
	ix := &ignoreIndex{byFile: make(map[string][]*ignoreDirective)}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, d := range parseIgnores(pkg.Fset, file) {
				ix.all = append(ix.all, d)
				if d.bad == "" {
					ix.byFile[d.pos.Filename] = append(ix.byFile[d.pos.Filename], d)
				}
			}
		}
	}
	return ix
}

// severs reports whether an ignore for any of the rules sits on pos's line
// or the line above, marking every match used. The call-graph collector
// uses this to drop ignored sites from transitive summaries: an ignore at
// a source site (say a sanctioned time.Now) both suppresses the local
// diagnostic and stops the taint from propagating to every caller.
func (ix *ignoreIndex) severs(pos token.Position, rules ...string) bool {
	hit := false
	for _, d := range ix.byFile[pos.Filename] {
		if d.pos.Line != pos.Line && d.pos.Line != pos.Line-1 {
			continue
		}
		for _, r := range rules {
			if d.rule == r {
				d.used = true
				hit = true
			}
		}
	}
	return hit
}

// suppress reports whether an ignore covers the diagnostic, marking it used.
func (ix *ignoreIndex) suppress(d Diagnostic) bool {
	hit := false
	for _, ig := range ix.byFile[d.File] {
		if ig.rule == d.Rule && (ig.pos.Line == d.Line || ig.pos.Line == d.Line-1) {
			ig.used = true
			hit = true
		}
	}
	return hit
}

// Run applies every enabled rule to every package and enforces the ignore
// contract: a //gptlint:ignore <rule> <reason> comment on the same line as
// a violation (or on the line directly above it) suppresses that
// diagnostic; an ignore that suppresses nothing is itself reported
// (unused-ignore), as is a malformed one (bad-ignore). The syntactic rules
// run per file; the interprocedural rules run over a call graph of the
// whole package set, so transitive findings are only as complete as the
// set of packages passed in — lint "./..." for whole-module guarantees.
// Diagnostics come back sorted by file/line/col.
func Run(pkgs []*Package, cfg Config) []Diagnostic {
	ix := newIgnoreIndex(pkgs)
	var raw []Diagnostic
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			raw = append(raw, checkFile(pkg, file, cfg)...)
		}
	}
	raw = append(raw, runInterprocedural(pkgs, &cfg, ix)...)

	var kept []Diagnostic
	for _, d := range raw {
		if !cfg.enabled(d.Rule) {
			continue
		}
		if ix.suppress(d) {
			continue
		}
		kept = append(kept, d)
	}
	partial := len(cfg.Rules) > 0
	for _, ig := range ix.all {
		switch {
		case ig.bad != "":
			kept = append(kept, Diagnostic{
				File: ig.pos.Filename, Line: ig.pos.Line, Col: ig.pos.Column,
				Rule: RuleBadIgnore, Msg: ig.bad,
			})
		case !ig.used && !partial:
			kept = append(kept, Diagnostic{
				File: ig.pos.Filename, Line: ig.pos.Line, Col: ig.pos.Column,
				Rule: RuleUnusedIgnore,
				Msg:  fmt.Sprintf("gptlint:ignore %s suppresses nothing; delete it or move it onto the offending line", ig.rule),
			})
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].File != kept[j].File {
			return kept[i].File < kept[j].File
		}
		if kept[i].Line != kept[j].Line {
			return kept[i].Line < kept[j].Line
		}
		if kept[i].Col != kept[j].Col {
			return kept[i].Col < kept[j].Col
		}
		return kept[i].Rule < kept[j].Rule
	})
	return kept
}

// runInterprocedural builds the call graph and runs the transitive rules.
func runInterprocedural(pkgs []*Package, cfg *Config, ix *ignoreIndex) []Diagnostic {
	wantLockHeld := cfg.enabled(RuleLockBlocking)
	wantLockOrder := cfg.enabled(RuleLockOrder)
	need := cfg.enabled(RuleTransitiveWallclock) || cfg.enabled(RuleGoroutineLeak) ||
		cfg.enabled(RuleHotpathAlloc) || wantLockHeld || wantLockOrder
	if !need {
		return nil
	}
	g := buildGraph(pkgs, cfg, ix)
	g.propagate()
	var out []Diagnostic
	report := func(pos token.Position, rule, format string, args ...any) {
		out = append(out, Diagnostic{
			File: pos.Filename, Line: pos.Line, Col: pos.Column,
			Rule: rule, Msg: fmt.Sprintf(format, args...),
		})
	}
	if cfg.enabled(RuleTransitiveWallclock) {
		g.transitiveWallclock(report)
	}
	if cfg.enabled(RuleHotpathAlloc) {
		g.hotpathAlloc(report)
	}
	if cfg.enabled(RuleGoroutineLeak) {
		g.goroutineLeaks(report)
	}
	if wantLockHeld || wantLockOrder {
		g.lockDiscipline(report, wantLockHeld)
		if wantLockOrder {
			g.lockOrderDiags(report)
		}
	}
	return out
}
