package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Rule names, stable identifiers used in diagnostics, //gptlint:ignore
// comments, and golden-file expectations.
const (
	RuleGlobalRand     = "no-global-rand"      // R1
	RuleWallclock      = "no-wallclock"        // R2
	RuleMapRange       = "no-map-range"        // R3
	RuleStrayGoroutine = "no-stray-goroutines" // R4
	RuleFloatEq        = "float-eq"            // R5
	RuleUncheckedError = "unchecked-error"     // R6

	// Meta rules emitted by the ignore-contract checker itself.
	RuleBadIgnore    = "bad-ignore"
	RuleUnusedIgnore = "unused-ignore"
)

// knownRules is the set of rule names an ignore comment may name.
var knownRules = map[string]bool{
	RuleGlobalRand:     true,
	RuleWallclock:      true,
	RuleMapRange:       true,
	RuleStrayGoroutine: true,
	RuleFloatEq:        true,
	RuleUncheckedError: true,
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Rule, d.Msg)
}

// Config scopes the rules. R1 (no-global-rand) applies to every analyzed
// package; R4 (no-stray-goroutines) to every package not in GoroutineAllowed;
// R2/R3/R5/R6 only to the NumericPackages — the deterministic numeric core
// whose outputs must be bitwise reproducible.
type Config struct {
	// NumericPackages are the import paths where the determinism rules
	// (no-wallclock, no-map-range, float-eq, unchecked-error) apply.
	NumericPackages []string
	// GoroutineAllowed are the import paths permitted to contain go
	// statements (the mpx worker-pool substrate).
	GoroutineAllowed []string
}

func (c *Config) isNumeric(path string) bool { return containsString(c.NumericPackages, path) }
func (c *Config) allowsGo(path string) bool  { return containsString(c.GoroutineAllowed, path) }
func containsString(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

// DefaultConfig returns the rule scoping for a module laid out like this
// repo: the numeric core under internal/{gp,la,core,opt,acq,sample,sparse}
// and all parallelism in internal/mpx.
func DefaultConfig(modulePath string) Config {
	numeric := []string{"gp", "la", "core", "opt", "acq", "sample", "sparse"}
	cfg := Config{}
	for _, n := range numeric {
		cfg.NumericPackages = append(cfg.NumericPackages, modulePath+"/internal/"+n)
	}
	cfg.GoroutineAllowed = []string{modulePath + "/internal/mpx"}
	return cfg
}

// ignoreDirective is one parsed //gptlint:ignore comment.
type ignoreDirective struct {
	pos    token.Position
	rule   string
	reason string
	bad    string // non-empty: malformed, with explanation
	used   bool
}

const ignorePrefix = "//gptlint:ignore"

// parseIgnores extracts every //gptlint:ignore directive from a file.
func parseIgnores(fset *token.FileSet, file *ast.File) []*ignoreDirective {
	var out []*ignoreDirective
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, ignorePrefix)
			if !ok {
				continue
			}
			d := &ignoreDirective{pos: fset.Position(c.Pos())}
			// A trailing "// ..." inside the comment is commentary about
			// the directive, not part of the reason.
			if i := strings.Index(text, "//"); i >= 0 {
				text = text[:i]
			}
			fields := strings.Fields(text)
			switch {
			case len(fields) == 0:
				d.bad = "missing rule name"
			case !knownRules[fields[0]]:
				d.bad = fmt.Sprintf("unknown rule %q", fields[0])
			case len(fields) < 2:
				d.bad = fmt.Sprintf("ignore for %s has no reason; the contract is //gptlint:ignore <rule> <reason>", fields[0])
			default:
				d.rule = fields[0]
				d.reason = strings.Join(fields[1:], " ")
			}
			out = append(out, d)
		}
	}
	return out
}

// Run applies every rule to every package and enforces the ignore contract:
// a //gptlint:ignore <rule> <reason> comment on the same line as a
// violation (or on the line directly above it) suppresses that diagnostic;
// an ignore that suppresses nothing is itself reported (unused-ignore), as
// is a malformed one (bad-ignore). Diagnostics come back sorted by
// file/line/col.
func Run(pkgs []*Package, cfg Config) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, runPackage(pkg, cfg)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].File != diags[j].File {
			return diags[i].File < diags[j].File
		}
		if diags[i].Line != diags[j].Line {
			return diags[i].Line < diags[j].Line
		}
		return diags[i].Col < diags[j].Col
	})
	return diags
}

func runPackage(pkg *Package, cfg Config) []Diagnostic {
	var out []Diagnostic
	for _, file := range pkg.Files {
		raw := checkFile(pkg, file, cfg)
		ignores := parseIgnores(pkg.Fset, file)
		// Match raw diagnostics against ignores: same rule, same file,
		// and the ignore sits on the diagnostic's line or the line above.
		var kept []Diagnostic
		for _, d := range raw {
			suppressed := false
			for _, ig := range ignores {
				if ig.bad != "" || ig.rule != d.Rule {
					continue
				}
				if ig.pos.Line == d.Line || ig.pos.Line == d.Line-1 {
					ig.used = true
					suppressed = true
				}
			}
			if !suppressed {
				kept = append(kept, d)
			}
		}
		out = append(out, kept...)
		for _, ig := range ignores {
			switch {
			case ig.bad != "":
				out = append(out, Diagnostic{
					File: ig.pos.Filename, Line: ig.pos.Line, Col: ig.pos.Column,
					Rule: RuleBadIgnore, Msg: ig.bad,
				})
			case !ig.used:
				out = append(out, Diagnostic{
					File: ig.pos.Filename, Line: ig.pos.Line, Col: ig.pos.Column,
					Rule: RuleUnusedIgnore,
					Msg:  fmt.Sprintf("gptlint:ignore %s suppresses nothing; delete it or move it onto the offending line", ig.rule),
				})
			}
		}
	}
	return out
}
