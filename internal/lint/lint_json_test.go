package lint

import (
	"encoding/json"
	"path/filepath"
	"testing"
)

// TestDiagnosticsJSONRoundTrip pins the -json output contract: diagnostics
// from a corpus run survive a marshal/unmarshal cycle field-for-field, and
// the field names are the stable lowercase ones tooling depends on.
func TestDiagnosticsJSONRoundTrip(t *testing.T) {
	loader, err := NewLoader(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(pkgs, corpusConfig())
	if len(diags) == 0 {
		t.Fatal("corpus run produced no diagnostics to round-trip")
	}

	blob, err := json.Marshal(diags)
	if err != nil {
		t.Fatal(err)
	}
	var back []Diagnostic
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != len(diags) {
		t.Fatalf("round-trip changed count: %d -> %d", len(diags), len(back))
	}
	for i := range diags {
		if diags[i] != back[i] {
			t.Errorf("diagnostic %d changed in round-trip:\n  before %+v\n  after  %+v", i, diags[i], back[i])
		}
	}

	// The wire field names are part of the contract (CI and editors parse
	// them); catch accidental struct-tag drift.
	var raw []map[string]any
	if err := json.Unmarshal(blob, &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"file", "line", "col", "rule", "msg"} {
		if _, ok := raw[0][key]; !ok {
			t.Errorf("JSON output missing field %q (got %v)", key, raw[0])
		}
	}
}
