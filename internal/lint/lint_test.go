package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// corpusConfig mirrors the real repo's scoping onto the corpus module:
// every rule-specific package is "numeric", and mpxok plays internal/mpx.
func corpusConfig() Config {
	return Config{
		NumericPackages: []string{
			"corpus/wallclock",
			"corpus/maprange",
			"corpus/floateq",
			"corpus/errdrop",
			"corpus/ignores",
			"corpus/transwc",
		},
		GoroutineAllowed: []string{"corpus/mpxok", "corpus/goleak"},
	}
}

// expectation is one parsed `// want "regex"` comment.
type expectation struct {
	file    string
	line    int
	rx      *regexp.Regexp
	matched bool
}

var (
	wantMarker = "// want "
	quotedRe   = regexp.MustCompile(`"([^"]*)"`)
)

// parseWants scans every corpus file for `// want "regex"` comments
// (several quoted regexes after one marker are several expectations).
func parseWants(t *testing.T, root string) []*expectation {
	t.Helper()
	var wants []*expectation
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			idx := strings.Index(line, wantMarker)
			if idx < 0 {
				continue
			}
			tail := line[idx+len(wantMarker):]
			for _, m := range quotedRe.FindAllStringSubmatch(tail, -1) {
				rx, rerr := regexp.Compile(m[1])
				if rerr != nil {
					return fmt.Errorf("%s:%d: bad want regex %q: %v", path, i+1, m[1], rerr)
				}
				wants = append(wants, &expectation{file: path, line: i + 1, rx: rx})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return wants
}

// TestGolden runs the analyzer over the testdata corpus and requires an
// exact bijection between diagnostics and `// want` expectations: every
// rule has at least one hit case, clean cases produce nothing, and the
// ignore contract (suppression, unused-ignore, bad-ignore) holds.
func TestGolden(t *testing.T) {
	root := filepath.Join("testdata", "src")
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	if loader.Module != "corpus" {
		t.Fatalf("corpus module = %q, want corpus", loader.Module)
	}
	pkgs, err := loader.Load([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 8 {
		t.Fatalf("loaded %d corpus packages, want >= 8", len(pkgs))
	}
	diags := Run(pkgs, corpusConfig())
	wants := parseWants(t, root)
	if len(wants) == 0 {
		t.Fatal("no // want expectations found in corpus")
	}

	for _, d := range diags {
		s := d.Rule + ": " + d.Msg
		found := false
		for _, w := range wants {
			if w.matched || w.line != d.Line || !sameFile(w.file, d.File) {
				continue
			}
			if w.rx.MatchString(s) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.rx)
		}
	}

	// Every rule must be exercised by at least one corpus hit.
	hit := make(map[string]bool)
	for _, d := range diags {
		hit[d.Rule] = true
	}
	for rule := range knownRules {
		if !hit[rule] {
			t.Errorf("rule %s has no hit case in the corpus", rule)
		}
	}
	for _, meta := range []string{RuleBadIgnore, RuleUnusedIgnore} {
		if !hit[meta] {
			t.Errorf("meta rule %s has no hit case in the corpus", meta)
		}
	}
}

func sameFile(a, b string) bool {
	aa, err1 := filepath.Abs(a)
	bb, err2 := filepath.Abs(b)
	return err1 == nil && err2 == nil && aa == bb
}

// TestDefaultConfig pins the production scoping: the seven numeric
// packages and the single goroutine-bearing package.
func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig("repro")
	for _, p := range []string{"gp", "la", "core", "opt", "acq", "sample", "sparse"} {
		if !cfg.isNumeric("repro/internal/" + p) {
			t.Errorf("repro/internal/%s not numeric", p)
		}
	}
	if cfg.isNumeric("repro/internal/experiments") {
		t.Error("experiments must not be numeric (timing lives there)")
	}
	if !cfg.allowsGo("repro/internal/mpx") || cfg.allowsGo("repro/internal/gp") {
		t.Error("goroutine allowlist must be exactly internal/mpx")
	}
}

// TestRulesFilter runs the corpus with a restricted rule set and checks
// that (a) only the named rules report, (b) disabling a rule silences its
// corpus hits, and (c) partial runs never report unused-ignore (an ignore
// for a disabled rule is not "unused", it is out of scope).
func TestRulesFilter(t *testing.T) {
	loader, err := NewLoader(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}

	cfg := corpusConfig()
	cfg.Rules = []string{RuleLockBlocking, RuleLockOrder}
	diags := Run(pkgs, cfg)
	if len(diags) == 0 {
		t.Fatal("filtered run produced no diagnostics")
	}
	for _, d := range diags {
		switch d.Rule {
		case RuleLockBlocking, RuleLockOrder, RuleBadIgnore:
		default:
			t.Errorf("rule %s reported despite filter: %s", d.Rule, d)
		}
	}

	// The full corpus has hotpath-alloc hits; with the rule filtered out
	// they must vanish, and nothing may surface as unused-ignore instead.
	cfg.Rules = []string{RuleWallclock}
	for _, d := range Run(pkgs, cfg) {
		if d.Rule == RuleHotpathAlloc {
			t.Errorf("hotpath-alloc reported while disabled: %s", d)
		}
		if d.Rule == RuleUnusedIgnore {
			t.Errorf("unused-ignore reported on a partial run: %s", d)
		}
	}
}

// TestIgnoreParsing covers directive parsing edges that the corpus cannot
// express line-by-line.
func TestIgnoreParsing(t *testing.T) {
	loader, err := NewLoader(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load([]string{"./ignores"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	igs := parseIgnores(pkgs[0].Fset, pkgs[0].Files[0])
	if len(igs) != 5 {
		t.Fatalf("parsed %d ignore directives, want 5", len(igs))
	}
	var bad int
	for _, ig := range igs {
		if ig.bad != "" {
			bad++
			continue
		}
		if ig.reason == "" || strings.Contains(ig.reason, "//") {
			t.Errorf("directive at %v: reason %q should be non-empty and stripped of trailing comments", ig.pos, ig.reason)
		}
	}
	if bad != 2 {
		t.Errorf("parsed %d malformed directives, want 2", bad)
	}
}
