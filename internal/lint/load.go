// Package lint is gptlint's analysis engine: a from-scratch static
// analyzer for the repo's determinism and concurrency invariants, built
// only on the stdlib toolchain (go/parser, go/ast, go/types, go/importer —
// no golang.org/x/tools). The rules encode the properties PR 1's parallel
// modeling hot path depends on: no global math/rand, no wall-clock reads
// in numeric code, no map-iteration-order-dependent accumulation, all
// goroutines routed through internal/mpx, no float ==, and no silently
// dropped errors. See DESIGN.md §7.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked, analysis-ready package.
type Package struct {
	Path  string // import path, e.g. repro/internal/gp
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File // non-test files only, sorted by filename
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of a single module. Imports of
// other packages in the same module are resolved from the loader's own
// cache (checked on demand); everything else — the stdlib — goes through
// the source importer, so no compiled export data is required.
type Loader struct {
	Root   string // module root (directory containing go.mod)
	Module string // module path from go.mod

	fset *token.FileSet
	src  types.ImporterFrom
	pkgs map[string]*Package // by import path; nil value marks in-progress
}

// NewLoader locates the module root at or above dir and prepares a loader.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, err := findModuleRoot(abs)
	if err != nil {
		return nil, err
	}
	mod, err := readModulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	srcImp, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer does not implement ImporterFrom")
	}
	return &Loader{
		Root:   root,
		Module: mod,
		fset:   fset,
		src:    srcImp,
		pkgs:   make(map[string]*Package),
	}, nil
}

func findModuleRoot(dir string) (string, error) {
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("lint: no go.mod at or above %s", dir)
		}
		d = parent
	}
}

func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// Load resolves the given patterns ("./...", "./internal/...", "./gptune")
// against the module tree and returns the matched packages, parsed and
// type-checked. Directories named testdata, hidden directories, and
// directories with no non-test Go files are skipped.
func (l *Loader) Load(patterns []string) ([]*Package, error) {
	dirs, err := l.resolve(patterns)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, dir := range dirs {
		path := l.importPathFor(dir)
		pkg, err := l.check(path)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// resolve expands patterns into absolute package directories.
func (l *Loader) resolve(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		recursive := false
		p := pat
		if p == "..." || strings.HasSuffix(p, "/...") {
			recursive = true
			p = strings.TrimSuffix(strings.TrimSuffix(p, "..."), "/")
			if p == "" {
				p = "."
			}
		}
		base := filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(p, "./")))
		info, err := os.Stat(base)
		if err != nil || !info.IsDir() {
			return nil, fmt.Errorf("lint: pattern %q: no such directory %s", pat, base)
		}
		if !recursive {
			if l.hasGoFiles(base) {
				add(base)
			}
			continue
		}
		err = filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if l.hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func (l *Loader) hasGoFiles(dir string) bool {
	names, err := goFileNames(dir)
	return err == nil && len(names) > 0
}

// goFileNames lists the non-test .go files of dir, sorted.
func goFileNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil || rel == "." {
		return l.Module
	}
	return l.Module + "/" + filepath.ToSlash(rel)
}

func (l *Loader) dirFor(importPath string) string {
	if importPath == l.Module {
		return l.Root
	}
	rel := strings.TrimPrefix(importPath, l.Module+"/")
	return filepath.Join(l.Root, filepath.FromSlash(rel))
}

// check parses and type-checks the package at importPath (module-internal),
// memoized. Valid Go has no import cycles, so recursion terminates.
func (l *Loader) check(importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("lint: import cycle through %s", importPath)
		}
		return pkg, nil
	}
	l.pkgs[importPath] = nil // mark in-progress
	dir := l.dirFor(importPath)
	names, err := goFileNames(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		delete(l.pkgs, importPath)
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: &moduleImporter{l: l}}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	pkg := &Package{
		Path:  importPath,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// moduleImporter serves module-internal imports from the loader's cache and
// delegates everything else to the source importer.
type moduleImporter struct {
	l *Loader
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, m.l.Root, 0)
}

func (m *moduleImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == m.l.Module || strings.HasPrefix(path, m.l.Module+"/") {
		pkg, err := m.l.check(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return m.l.src.ImportFrom(path, dir, mode)
}
