package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// randConstructors are the math/rand package-level functions that build
// explicitly-seeded generators rather than touching the global source.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

// wallclockFuncs are the time package functions that read the wall clock.
var wallclockFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// checkFile applies every in-scope rule to one file and returns the raw
// (pre-ignore-filtering) diagnostics.
func checkFile(pkg *Package, file *ast.File, cfg Config) []Diagnostic {
	numeric := cfg.isNumeric(pkg.Path)
	goAllowed := cfg.allowsGo(pkg.Path)
	var out []Diagnostic
	report := func(pos token.Pos, rule, format string, args ...any) {
		p := pkg.Fset.Position(pos)
		out = append(out, Diagnostic{
			File: p.Filename, Line: p.Line, Col: p.Column,
			Rule: rule, Msg: fmt.Sprintf(format, args...),
		})
	}

	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := callee(pkg.Info, n); fn != nil && fn.Pkg() != nil {
				switch fn.Pkg().Path() {
				case "math/rand", "math/rand/v2":
					// R1: package-level math/rand functions draw from the
					// shared global source; methods on an injected *rand.Rand
					// and the explicit constructors are fine.
					if fn.Type().(*types.Signature).Recv() == nil && !randConstructors[fn.Name()] {
						report(n.Pos(), RuleGlobalRand,
							"call to global %s.%s; thread a seeded *rand.Rand instead", fn.Pkg().Path(), fn.Name())
					}
				case "time":
					// R2: wall-clock reads in the numeric core break run-to-run
					// comparability; timing belongs in internal/experiments and cmd.
					if numeric && fn.Type().(*types.Signature).Recv() == nil && wallclockFuncs[fn.Name()] {
						report(n.Pos(), RuleWallclock,
							"time.%s in deterministic numeric package %s; inject a clock from the caller", fn.Name(), pkg.Path)
					}
				}
			}
		case *ast.RangeStmt:
			// R3: map iteration order is randomized per run; any accumulation
			// over it is non-reproducible.
			if numeric {
				if t := pkg.Info.TypeOf(n.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						report(n.Pos(), RuleMapRange,
							"range over map (%s) in numeric package; iterate sorted keys or a slice instead", t)
					}
				}
			}
		case *ast.GoStmt:
			// R4: worker-count invariance holds only because all parallelism
			// funnels through mpx's deterministic chunked pools.
			if !goAllowed {
				report(n.Pos(), RuleStrayGoroutine,
					"go statement outside internal/mpx; route parallelism through mpx.ParallelFor/ParallelChunks/Spawn")
			}
		case *ast.BinaryExpr:
			// R5: exact float comparison is almost never what numeric code
			// means, and where it is (duplicate detection on untouched inputs)
			// the ignore comment documents that.
			if numeric && (n.Op == token.EQL || n.Op == token.NEQ) {
				if isFloat(pkg.Info.TypeOf(n.X)) && isFloat(pkg.Info.TypeOf(n.Y)) {
					report(n.Pos(), RuleFloatEq,
						"floating-point %s comparison; use a tolerance or justify with an ignore", n.Op)
				}
			}
		case *ast.ExprStmt:
			// R6: a dropped error in the numeric core usually means a dropped
			// Cholesky failure — the result silently stops being trustworthy.
			if numeric {
				if call, ok := unparen(n.X).(*ast.CallExpr); ok {
					if t := pkg.Info.TypeOf(call); t != nil && finalIsError(t) {
						report(n.Pos(), RuleUncheckedError,
							"call discards its error result; handle it or assign it explicitly")
					}
				}
			}
		}
		return true
	})
	return out
}

// callee resolves the called package-level function or method, or nil for
// builtins, conversions, and indirect calls through function values.
func callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// isFloat reports whether t's underlying type is a floating-point basic
// type (float32/float64, including named types and untyped float constants).
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// finalIsError reports whether the call result type t ends in an error.
func finalIsError(t types.Type) bool {
	if tup, ok := t.(*types.Tuple); ok {
		if tup.Len() == 0 {
			return false
		}
		t = tup.At(tup.Len() - 1).Type()
	}
	return isErrorType(t)
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return types.Implements(t, errorIface)
}
