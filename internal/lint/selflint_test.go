package lint

import "testing"

// loadModule loads the repo's own module (the parent of internal/lint).
func loadModule(t testing.TB) (*Loader, []*Package) {
	t.Helper()
	loader, err := NewLoader("../..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded %d packages from the module, expected the full tree", len(pkgs))
	}
	return loader, pkgs
}

// TestSelfLint is the tree-is-clean gate: the analyzer run over its own
// module, with every rule enabled, must report nothing. Any new finding is
// either a real bug to fix or a design decision to justify with an ignore —
// never something to silence by weakening the rule.
func TestSelfLint(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	loader, pkgs := loadModule(t)
	diags := Run(pkgs, DefaultConfig(loader.Module))
	for _, d := range diags {
		t.Errorf("module not lint-clean: %s", d)
	}
}

// BenchmarkLintModule measures a full analysis pass (per-file rules, call
// graph, dataflow, lock discipline) over the already-loaded module — the
// marginal cost CI pays on top of type checking.
func BenchmarkLintModule(b *testing.B) {
	loader, pkgs := loadModule(b)
	cfg := DefaultConfig(loader.Module)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if diags := Run(pkgs, cfg); len(diags) != 0 {
			b.Fatalf("module not lint-clean: %d findings", len(diags))
		}
	}
}
