// Package errdrop exercises R6 (unchecked-error): a call statement whose
// final error result is discarded silently drops failure paths (in the
// real tree: Cholesky indefiniteness).
package errdrop

import "errors"

func fallible() error { return errors.New("boom") }

func pair() (int, error) { return 0, errors.New("boom") }

func void() {}

// Bad discards a bare error result.
func Bad() {
	fallible() // want "unchecked-error: call discards its error result"
}

// BadPair discards the final error of a multi-result call.
func BadPair() {
	pair() // want "unchecked-error: call discards its error result"
}

// Good handles the error in both shapes; calls without an error result
// are clean as statements.
func Good() int {
	void()
	if err := fallible(); err != nil {
		return 1
	}
	n, err := pair()
	if err != nil {
		return n
	}
	return 0
}
