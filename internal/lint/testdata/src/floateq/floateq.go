// Package floateq exercises R5 (float-eq): exact floating-point equality
// is almost never what numeric code means.
package floateq

// Bad compares float64 exactly.
func Bad(a, b float64) bool {
	return a == b // want "float-eq: floating-point == comparison"
}

// BadNeq catches != on float32 too.
func BadNeq(a, b float32) bool {
	return a != b // want "float-eq: floating-point != comparison"
}

// BadConst catches comparison against an untyped constant.
func BadConst(x float64) bool {
	return x == 0 // want "float-eq: floating-point == comparison"
}

// Good compares with a tolerance; integer equality is untouched.
func Good(a, b float64, i, j int) bool {
	const tol = 1e-12
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < tol && i == j
}
