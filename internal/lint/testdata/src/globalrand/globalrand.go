// Package globalrand exercises R1 (no-global-rand): package-level
// math/rand calls draw from the shared global source and are forbidden;
// explicitly seeded generators are the approved pattern.
package globalrand

import "math/rand"

// Bad draws from the process-global source.
func Bad() int {
	return rand.Intn(10) // want "no-global-rand: call to global math/rand.Intn"
}

// BadFloat hits two more global entry points.
func BadFloat() float64 {
	rand.Shuffle(3, func(i, j int) {}) // want "no-global-rand: call to global math/rand.Shuffle"
	return rand.Float64()              // want "no-global-rand: call to global math/rand.Float64"
}

// Good threads an explicitly seeded generator; constructors and methods
// on the injected *rand.Rand are clean.
func Good(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}
