// Package goleak exercises goroutine-leak: a spawned goroutine whose body
// shows no join evidence (WaitGroup.Done, close, or a channel send the
// parent can drain). The package sits in GoroutineAllowed so the stray-
// goroutine rule stays out of the way and the leak rule is isolated.
package goleak

import "sync"

// Leak spawns a goroutine nothing ever joins.
func Leak(n int) {
	go func() { // want "goroutine-leak: goroutine has no join path"
		_ = n * 2
	}()
}

// spin has no join evidence in its body.
func spin() {}

// LeakNamed spawns a named function with no join evidence.
func LeakNamed() {
	go spin() // want "goroutine-leak: goroutine has no join path"
}

// JoinWG joins through a WaitGroup.
func JoinWG(n int) {
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// JoinClose signals completion by closing a channel the parent drains.
func JoinClose() {
	done := make(chan struct{})
	go func() {
		close(done)
	}()
	<-done
}

// JoinSend signals completion with a send.
func JoinSend() int {
	ch := make(chan int, 1)
	go func() { ch <- 1 }()
	return <-ch
}

// Ignored documents a deliberate fire-and-forget goroutine.
func Ignored() {
	//gptlint:ignore goroutine-leak corpus: process-lifetime watcher, bounded by exit
	go func() {}()
}
