// Package goroutines exercises R4 (no-stray-goroutines): worker-count
// invariance holds only because all parallelism funnels through the mpx
// pools, so go statements anywhere else are forbidden.
package goroutines

// Bad spawns a goroutine outside the mpx substrate.
func Bad(done chan struct{}) {
	go func() { // want "no-stray-goroutines: go statement outside internal/mpx"
		close(done)
	}()
	<-done
}
