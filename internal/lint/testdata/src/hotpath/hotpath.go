// Package hotpath exercises hotpath-alloc: a function marked
// //gptlint:hotpath may not allocate — no make/new, no append that can
// grow, no capturing closures — directly or through any call chain.
package hotpath

// alloc allocates a fresh slice; it is fine here (not a hot path), but
// taints every hotpath caller.
func alloc(n int) []float64 { return make([]float64, n) }

// scale is allocation-free.
func scale(xs []float64, f float64) {
	for i := range xs {
		xs[i] *= f
	}
}

// severed allocates but severs the taint at the source with a justified
// ignore, so hotpath callers stay clean.
func severed(ws []float64, n int) []float64 {
	if cap(ws) < n {
		ws = make([]float64, n) //gptlint:ignore hotpath-alloc corpus: one-time workspace resize
	}
	return ws[:n]
}

// Direct allocates right in the hot path.
//
//gptlint:hotpath
func Direct(n int) []float64 {
	out := make([]float64, n) // want "hotpath-alloc: make allocates in hotpath function"
	return out
}

// Transitive reaches an allocation through a helper; the witness names it.
//
//gptlint:hotpath
func Transitive(n int) []float64 {
	return alloc(n) // want "hotpath-alloc: call to hotpath.alloc allocates"
}

// Grow appends without provable capacity.
//
//gptlint:hotpath
func Grow(xs []float64, v float64) []float64 {
	return append(xs, v) // want "hotpath-alloc: append .may grow. allocates in hotpath function"
}

// Reuse overwrites in place — append(x[:0], ...) cannot grow past cap: clean.
//
//gptlint:hotpath
func Reuse(xs []float64, v float64) []float64 {
	return append(xs[:0], v)
}

// Clean calls only allocation-free helpers.
//
//gptlint:hotpath
func Clean(xs []float64) {
	scale(xs, 2)
}

// Severed calls the documented one-time resize; the source-site ignore
// keeps this hot path clean.
//
//gptlint:hotpath
func Severed(ws []float64, n int) []float64 {
	return severed(ws, n)
}

// Closure builds a capturing closure in the hot path.
//
//gptlint:hotpath
func Closure(k float64) func(float64) float64 {
	return func(x float64) float64 { return x * k } // want "hotpath-alloc: closure capturing 1 variable"
}

// Ignored justifies its allocation inline.
//
//gptlint:hotpath
func Ignored(n int) []int {
	return make([]int, n) //gptlint:ignore hotpath-alloc corpus: cold-start slow path
}
