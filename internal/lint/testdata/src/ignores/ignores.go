// Package ignores exercises the //gptlint:ignore contract: an ignore with
// a rule and reason suppresses matching diagnostics on its own line or the
// line below; a suppressing-nothing ignore and a malformed ignore are
// themselves errors.
package ignores

// SameLine is suppressed by a trailing ignore on the offending line.
func SameLine(a, b float64) bool {
	return a == b //gptlint:ignore float-eq exact duplicate detection on untouched inputs
}

// LineAbove is suppressed by an ignore on the line directly above.
func LineAbove(m map[int]int) int {
	n := 0
	//gptlint:ignore no-map-range count only, iteration order is irrelevant
	for range m {
		n++
	}
	return n
}

// Unused carries an ignore that matches no diagnostic (ints, not floats).
func Unused(a, b int) bool {
	//gptlint:ignore float-eq ints are not floats // want "unused-ignore: gptlint:ignore float-eq suppresses nothing"
	return a == b
}

// Bad carries malformed ignores: an unknown rule, then a missing reason.
// Neither suppresses, so the float-eq below is still reported.
func Bad(a, b float64) bool {
	//gptlint:ignore no-such-rule the rule name is wrong // want "bad-ignore: unknown rule"
	x := a == b // want "float-eq: floating-point == comparison"
	//gptlint:ignore float-eq // want "bad-ignore: ignore for float-eq has no reason"
	return x
}
