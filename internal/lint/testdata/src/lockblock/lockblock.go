// Package lockblock exercises lock-held-across-blocking: a mutex provably
// held at a blocking operation — file I/O, fsync, a channel op — directly
// or through a call whose callee blocks transitively.
package lockblock

import (
	"os"
	"sync"
)

// Store guards a file handle and a channel with one mutex.
type Store struct {
	mu sync.Mutex
	f  *os.File
	ch chan int
}

// BadSync fsyncs while holding the store mutex.
func (s *Store) BadSync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Sync() // want "lock-held-across-blocking: os.File.Sync while holding lockblock.Store.mu"
}

// BadSend sends on a channel while holding the mutex.
func (s *Store) BadSend(v int) {
	s.mu.Lock()
	s.ch <- v // want "lock-held-across-blocking: channel send while holding lockblock.Store.mu"
	s.mu.Unlock()
}

// BadRecv receives while holding the mutex.
func (s *Store) BadRecv() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.ch // want "lock-held-across-blocking: channel receive while holding lockblock.Store.mu"
}

// flush hides the fsync one call away.
func (s *Store) flush() error { return s.f.Sync() }

// BadTransitive blocks through the helper with the lock held; the witness
// chain names the path to the fsync.
func (s *Store) BadTransitive() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flush() // want "lock-held-across-blocking: call to lockblock..{1,2}Store..flush blocks"
}

// Clean releases before the fsync.
func (s *Store) Clean() error {
	s.mu.Lock()
	s.mu.Unlock()
	return s.f.Sync()
}

// Ignored fsyncs under the lock but documents why that is the design.
func (s *Store) Ignored() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Sync() //gptlint:ignore lock-held-across-blocking corpus: the handle is serialized by this mutex by design
}
