// Package lockorder exercises lock-order: two mutex classes acquired in
// opposite orders anywhere in the module are a potential deadlock; both
// directions are reported, each at its own acquisition site.
package lockorder

import "sync"

// A and B are the inconsistently ordered pair.
type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }

// ForwardThenBack acquires A then B.
func ForwardThenBack(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock() // want "lock-order: lockorder.B.mu acquired while holding lockorder.A.mu"
	b.mu.Unlock()
	a.mu.Unlock()
}

// BackThenForward acquires B then A — the opposite order.
func BackThenForward(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock() // want "lock-order: lockorder.A.mu acquired while holding lockorder.B.mu"
	a.mu.Unlock()
	b.mu.Unlock()
}

// lockB acquires B one call away, for the transitive case.
func lockB(b *B) {
	b.mu.Lock()
	b.mu.Unlock()
}

// Transitive acquires B through lockB while holding A; the A-then-B order
// is observed at the call edge with a witness chain.
func Transitive(a *A, b *B) {
	a.mu.Lock()
	lockB(b) // want "lock-order: lockorder.B.mu acquired via lockorder.lockB"
	a.mu.Unlock()
}

// C and D are acquired in one consistent order everywhere: clean.
type C struct{ mu sync.Mutex }
type D struct{ mu sync.Mutex }

// ConsistentOne acquires C then D.
func ConsistentOne(c *C, d *D) {
	c.mu.Lock()
	d.mu.Lock()
	d.mu.Unlock()
	c.mu.Unlock()
}

// ConsistentTwo also acquires C then D.
func ConsistentTwo(c *C, d *D) {
	c.mu.Lock()
	d.mu.Lock()
	d.mu.Unlock()
	c.mu.Unlock()
}

// E and F are inconsistent, but one direction is justified.
type E struct{ mu sync.Mutex }
type F struct{ mu sync.Mutex }

// EF acquires E then F with a justification.
func EF(e *E, f *F) {
	e.mu.Lock()
	//gptlint:ignore lock-order corpus: init-only path, FE can never run concurrently with it
	f.mu.Lock()
	f.mu.Unlock()
	e.mu.Unlock()
}

// FE acquires F then E; the opposite direction is still reported.
func FE(e *E, f *F) {
	f.mu.Lock()
	e.mu.Lock() // want "lock-order: lockorder.E.mu acquired while holding lockorder.F.mu"
	e.mu.Unlock()
	f.mu.Unlock()
}
