// Package maprange exercises R3 (no-map-range): map iteration order is
// randomized per process, so any accumulation over it is non-reproducible.
// The map type is resolved via go/types, not syntax, so named map types
// are caught too.
package maprange

type set map[int]struct{}

// Bad accumulates in map iteration order.
func Bad(m map[int]float64) float64 {
	s := 0.0
	for _, v := range m { // want "no-map-range: range over map"
		s += v
	}
	return s
}

// BadNamed ranges over a named type whose underlying type is a map.
func BadNamed(m set) int {
	n := 0
	for range m { // want "no-map-range: range over map"
		n++
	}
	return n
}

// Good iterates a slice; slice ranges are deterministic and clean.
func Good(xs []float64) float64 {
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s
}
