// Package mpxok stands in for internal/mpx in the corpus: it is listed in
// Config.GoroutineAllowed, so its go statements are clean (the R4 clean
// case).
package mpxok

import "sync"

// Pool runs fn(i) for i in [0, n) on n goroutines — allowed here.
func Pool(n int, fn func(int)) {
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			fn(i)
		}()
	}
	wg.Wait()
}
