// Package transwc exercises transitive-wallclock: a numeric-core function
// reaching time.Now through a call chain into a non-numeric package is
// reported at the edge where the chain leaves the numeric core.
package transwc

import "corpus/twchelper"

// Bad reaches the clock one hop out of the numeric core.
func Bad() int64 {
	t := twchelper.Stamp() // want "transitive-wallclock: call to twchelper.Stamp reaches the wall clock"
	return t.UnixNano()
}

// BadDeep reaches it through two hops; the witness names the chain.
func BadDeep() int64 {
	t := twchelper.Deep() // want "transitive-wallclock: call to twchelper.Deep reaches the wall clock"
	return t.UnixNano()
}

// Clean calls a clock-free helper.
func Clean() int { return twchelper.Pure() }

// CleanSevered calls a helper whose clock read is severed at the source.
func CleanSevered() int64 { return twchelper.Sanctioned().UnixNano() }

// Ignored justifies the frontier edge itself.
func Ignored() int64 {
	//gptlint:ignore transitive-wallclock corpus: frontier edge justified at the call site
	return twchelper.Stamp().UnixNano()
}
