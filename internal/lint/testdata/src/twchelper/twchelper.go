// Package twchelper is the non-numeric helper side of the
// transitive-wallclock corpus: call chains out of corpus/transwc land here
// and reach the wall clock. No diagnostics are reported in this package —
// the rule reports at the frontier edge in the numeric caller.
package twchelper

import "time"

// Stamp reads the wall clock directly.
func Stamp() time.Time { return time.Now() }

// Deep reaches the clock through one more hop.
func Deep() time.Time { return Stamp() }

// Pure never touches the clock.
func Pure() int { return 42 }

// Sanctioned reads the clock but severs the taint at the source: the
// ignore both suppresses any local diagnostic and removes this read from
// every caller's transitive summary.
func Sanctioned() time.Time {
	return time.Now() //gptlint:ignore transitive-wallclock corpus: telemetry-only timestamp, severed at the source
}
