// Package wallclock exercises R2 (no-wallclock): reading the wall clock
// inside the deterministic numeric core is forbidden; the clock must be
// injected by the caller.
package wallclock

import "time"

// Bad reads the wall clock directly.
func Bad() time.Time {
	return time.Now() // want "no-wallclock: time.Now in deterministic numeric package"
}

// BadSince measures elapsed time in numeric code.
func BadSince(t0 time.Time) time.Duration {
	return time.Since(t0) // want "no-wallclock: time.Since in deterministic numeric package"
}

// Good receives the clock from the caller; calling a function value and
// time.Time methods are clean.
func Good(now func() time.Time, t0 time.Time) time.Duration {
	return now().Sub(t0)
}
