// Package machine models the parallel machine the application simulators
// run on. The paper's experiments use NERSC Cori (Cray XC40, dual 16-core
// Xeon E5-2698v3 Haswell nodes, Aries interconnect); since no such machine
// exists in this reproduction, application runtimes are produced by cost
// models parameterized by this package and driven by each application's true
// algorithmic counts (flops, messages, volumes, iteration counts).
//
// Runtime noise is modeled as a deterministic-per-attempt lognormal
// multiplier so experiments are reproducible yet repeated measurements of
// the same configuration genuinely differ (making the paper's min-of-3
// repeats meaningful).
package machine

import (
	"hash/fnv"
	"math"
	"sync"
)

// Machine holds the hardware parameters of the cost models.
type Machine struct {
	Name         string
	CoresPerNode int
	// FlopsPerCore is the peak double-precision rate per core (flop/s).
	FlopsPerCore float64
	// Latency is the network message latency α (seconds).
	Latency float64
	// Bandwidth is the per-link network bandwidth β (bytes/s).
	Bandwidth float64
	// MemBandwidth is the per-node memory bandwidth (bytes/s).
	MemBandwidth float64
}

// CoriHaswell returns parameters matching NERSC Cori's Haswell partition:
// 32 cores/node, 2.3 GHz × 16 DP flops/cycle, Aries interconnect.
func CoriHaswell() Machine {
	return Machine{
		Name:         "cori-haswell",
		CoresPerNode: 32,
		FlopsPerCore: 36.8e9,
		Latency:      1.5e-6,
		Bandwidth:    8e9,
		MemBandwidth: 120e9,
	}
}

// TimeFlops returns the time to execute flops floating point operations on
// p cores at the given efficiency ∈ (0, 1].
func (m Machine) TimeFlops(flops float64, p int, efficiency float64) float64 {
	if p < 1 {
		p = 1
	}
	if efficiency <= 0 {
		efficiency = 1e-3
	}
	return flops / (float64(p) * m.FlopsPerCore * efficiency)
}

// TimeComm returns the α-β model time for nMsg messages carrying volBytes in
// total: nMsg·α + volBytes/β.
func (m Machine) TimeComm(nMsg, volBytes float64) float64 {
	return nMsg*m.Latency + volBytes/m.Bandwidth
}

// Noise produces reproducible lognormal runtime noise. The k-th measurement
// of the same key receives the k-th multiplier of that key's deterministic
// sequence, so repeated runs of one configuration see different noise while
// whole experiments stay reproducible.
type Noise struct {
	// Sigma is the standard deviation of log-noise (e.g. 0.05 ≈ ±5%).
	Sigma float64
	// Seed decorrelates different applications.
	Seed uint64

	mu       sync.Mutex
	attempts map[string]uint64
}

// NewNoise returns a noise source with the given log-sigma.
func NewNoise(sigma float64, seed uint64) *Noise {
	return &Noise{Sigma: sigma, Seed: seed, attempts: make(map[string]uint64)}
}

// Mul returns the next multiplier (≥ ~e^{-3σ}, centered at 1) for key.
func (n *Noise) Mul(key string) float64 {
	if n == nil || n.Sigma <= 0 {
		return 1
	}
	n.mu.Lock()
	attempt := n.attempts[key]
	n.attempts[key] = attempt + 1
	n.mu.Unlock()
	return n.MulAt(key, attempt)
}

// MulAt returns the attempt-th multiplier of key's sequence without
// advancing the counter.
func (n *Noise) MulAt(key string, attempt uint64) float64 {
	if n == nil || n.Sigma <= 0 {
		return 1
	}
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(n.Seed >> (8 * i))
	}
	h.Write(buf[:])
	h.Write([]byte(key))
	for i := 0; i < 8; i++ {
		buf[i] = byte(attempt >> (8 * i))
	}
	h.Write(buf[:])
	u := h.Sum64()
	// Two uniforms from the hash → one standard normal via Box–Muller.
	u1 := float64(u>>11)/float64(1<<53) + 1e-16
	h.Write([]byte{0xA5})
	u2 := float64(h.Sum64()>>11) / float64(1<<53)
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return math.Exp(n.Sigma * z)
}

// Reset clears attempt counters (fresh measurement sequences).
func (n *Noise) Reset() {
	if n == nil {
		return
	}
	n.mu.Lock()
	n.attempts = make(map[string]uint64)
	n.mu.Unlock()
}
