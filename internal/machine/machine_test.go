package machine

import (
	"math"
	"testing"
)

func TestCoriParameters(t *testing.T) {
	m := CoriHaswell()
	if m.CoresPerNode != 32 || m.FlopsPerCore <= 0 || m.Latency <= 0 {
		t.Fatalf("bad machine: %+v", m)
	}
}

func TestTimeFlopsScaling(t *testing.T) {
	m := CoriHaswell()
	t1 := m.TimeFlops(1e12, 1, 0.5)
	t32 := m.TimeFlops(1e12, 32, 0.5)
	if math.Abs(t1/t32-32) > 1e-9 {
		t.Fatalf("flop time should scale linearly with cores: %v vs %v", t1, t32)
	}
	if m.TimeFlops(1e9, 0, 0.5) != m.TimeFlops(1e9, 1, 0.5) {
		t.Fatalf("p=0 should clamp to 1")
	}
	if m.TimeFlops(1e9, 1, 0) <= 0 {
		t.Fatalf("zero efficiency must clamp, not divide by zero")
	}
}

func TestTimeComm(t *testing.T) {
	m := Machine{Latency: 1e-6, Bandwidth: 1e9}
	got := m.TimeComm(1000, 1e9)
	want := 1000*1e-6 + 1.0
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("TimeComm = %v, want %v", got, want)
	}
}

func TestNoiseDeterministicPerAttempt(t *testing.T) {
	n1 := NewNoise(0.1, 7)
	n2 := NewNoise(0.1, 7)
	var seq1, seq2 []float64
	for i := 0; i < 5; i++ {
		seq1 = append(seq1, n1.Mul("cfg-a"))
		seq2 = append(seq2, n2.Mul("cfg-a"))
	}
	for i := range seq1 {
		if seq1[i] != seq2[i] {
			t.Fatalf("same seed/key diverged at %d", i)
		}
	}
	// Attempts must differ from each other (noise is real).
	same := true
	for i := 1; i < len(seq1); i++ {
		if seq1[i] != seq1[0] {
			same = false
		}
	}
	if same {
		t.Fatalf("all attempts identical: %v", seq1)
	}
}

func TestNoiseKeyAndSeedDecorrelate(t *testing.T) {
	n := NewNoise(0.1, 7)
	a := n.MulAt("cfg-a", 0)
	b := n.MulAt("cfg-b", 0)
	if a == b {
		t.Fatalf("different keys gave identical noise")
	}
	m := NewNoise(0.1, 8)
	if n.MulAt("cfg-a", 0) == m.MulAt("cfg-a", 0) {
		t.Fatalf("different seeds gave identical noise")
	}
}

func TestNoiseStatistics(t *testing.T) {
	n := NewNoise(0.05, 1)
	sum, sumSq := 0.0, 0.0
	const trials = 2000
	for i := 0; i < trials; i++ {
		v := math.Log(n.Mul("stats"))
		sum += v
		sumSq += v * v
	}
	mean := sum / trials
	sd := math.Sqrt(sumSq/trials - mean*mean)
	if math.Abs(mean) > 0.01 {
		t.Fatalf("log-noise mean %v, want ≈ 0", mean)
	}
	if math.Abs(sd-0.05) > 0.01 {
		t.Fatalf("log-noise sd %v, want ≈ 0.05", sd)
	}
}

func TestNoiseNilAndZeroSigma(t *testing.T) {
	var n *Noise
	if n.Mul("x") != 1 {
		t.Fatalf("nil noise must be identity")
	}
	z := NewNoise(0, 1)
	if z.Mul("x") != 1 {
		t.Fatalf("zero sigma must be identity")
	}
}

func TestNoiseReset(t *testing.T) {
	n := NewNoise(0.1, 3)
	first := n.Mul("k")
	n.Mul("k")
	n.Reset()
	if got := n.Mul("k"); got != first {
		t.Fatalf("after Reset, first attempt should repeat: %v vs %v", got, first)
	}
}
