package mg

// Chebyshev polynomial smoothing (hypre's default smoother for large
// parallel runs, since unlike Gauss–Seidel it needs no sequential sweeps):
// damp the upper part of A's spectrum with a degree-k Chebyshev polynomial
// built from an estimated largest eigenvalue.

// estimateLambdaMax returns a guaranteed upper bound on λmax(A) at level l.
// For the 7-point Laplacian the Gershgorin bound 2·diag is tight (the true
// λmax is 4·Σ 1/h²·sin²(πn/(2(n+1))) → 2·diag for large grids), and — unlike
// a power-iteration estimate — can never undershoot, which matters because a
// Chebyshev polynomial amplifies violently beyond its target interval.
func (h *Hierarchy) estimateLambdaMax(l *level) float64 {
	if l.lambdaMax > 0 {
		return l.lambdaMax
	}
	l.lambdaMax = 2 * l.diag
	return l.lambdaMax
}

// chebySmooth runs one degree-k Chebyshev smoothing pass on level l
// (standard three-term recurrence on the interval [λmax/30, λmax]).
func (h *Hierarchy) chebySmooth(l *level, degree int) {
	if degree < 1 {
		degree = 2
	}
	lmax := h.estimateLambdaMax(l)
	lmin := lmax / 10
	theta := (lmax + lmin) / 2
	delta := (lmax - lmin) / 2
	sigma := theta / delta

	n := l.n()
	r := make([]float64, n)
	d := make([]float64, n)
	h.applyA(l, l.u, r)
	for i := range r {
		r[i] = l.b[i] - r[i]
		d[i] = r[i] / theta
	}
	rhoOld := 1 / sigma
	ad := make([]float64, n)
	for k := 0; k < degree; k++ {
		for i := range l.u {
			l.u[i] += d[i]
		}
		h.applyA(l, d, ad)
		for i := range r {
			r[i] -= ad[i]
		}
		rhoNew := 1 / (2*sigma - rhoOld)
		for i := range d {
			d[i] = rhoNew*rhoOld*d[i] + 2*rhoNew/delta*r[i]
		}
		rhoOld = rhoNew
	}
	h.Flops += int64((degree + 1) * 6 * n)
}
