package mg

import (
	"errors"
	"math"
)

// GMRESResult reports a solve's outcome.
type GMRESResult struct {
	Iterations int     // total Arnoldi steps (preconditioner applications)
	Converged  bool    // relative residual reached Tol
	Residual   float64 // final relative residual estimate
}

// GMRES solves A·x = b with restarted, right-preconditioned GMRES(m):
// apply(v) computes A·v, precond(v) approximately solves A·z = v (identity
// when nil). Returns the solution and the iteration statistics the hypre
// simulator converts into modeled runtime.
func GMRES(apply func([]float64) []float64, precond func([]float64) []float64,
	b []float64, restart, maxIter int, tol float64) ([]float64, GMRESResult, error) {
	n := len(b)
	if n == 0 {
		return nil, GMRESResult{}, errors.New("mg: empty system")
	}
	if restart < 1 {
		restart = 30
	}
	if maxIter < 1 {
		maxIter = 100
	}
	if tol <= 0 {
		tol = 1e-8
	}
	if precond == nil {
		precond = func(v []float64) []float64 {
			out := make([]float64, len(v))
			copy(out, v)
			return out
		}
	}

	x := make([]float64, n)
	bnorm := norm(b)
	if bnorm == 0 {
		return x, GMRESResult{Converged: true}, nil
	}

	res := GMRESResult{Residual: 1}
	total := 0
	for total < maxIter {
		// r = b - A·x
		ax := apply(x)
		r := make([]float64, n)
		for i := range r {
			r[i] = b[i] - ax[i]
		}
		beta := norm(r)
		res.Residual = beta / bnorm
		if res.Residual <= tol {
			res.Converged = true
			break
		}

		m := restart
		if rem := maxIter - total; m > rem {
			m = rem
		}
		v := make([][]float64, m+1)
		z := make([][]float64, m) // preconditioned basis (right precond)
		hmat := make([][]float64, m+1)
		for i := range hmat {
			hmat[i] = make([]float64, m)
		}
		v[0] = scale(r, 1/beta)
		g := make([]float64, m+1)
		g[0] = beta
		cs := make([]float64, m)
		sn := make([]float64, m)

		k := 0
		for ; k < m; k++ {
			z[k] = precond(v[k])
			w := apply(z[k])
			// Modified Gram–Schmidt.
			for i := 0; i <= k; i++ {
				hmat[i][k] = dot(w, v[i])
				axpy(-hmat[i][k], v[i], w)
			}
			hmat[k+1][k] = norm(w)
			if hmat[k+1][k] > 1e-14 {
				v[k+1] = scale(w, 1/hmat[k+1][k])
			}
			// Apply stored Givens rotations to the new column.
			for i := 0; i < k; i++ {
				t := cs[i]*hmat[i][k] + sn[i]*hmat[i+1][k]
				hmat[i+1][k] = -sn[i]*hmat[i][k] + cs[i]*hmat[i+1][k]
				hmat[i][k] = t
			}
			// New rotation to annihilate hmat[k+1][k].
			denom := math.Hypot(hmat[k][k], hmat[k+1][k])
			if denom == 0 {
				cs[k], sn[k] = 1, 0
			} else {
				cs[k] = hmat[k][k] / denom
				sn[k] = hmat[k+1][k] / denom
			}
			hmat[k][k] = cs[k]*hmat[k][k] + sn[k]*hmat[k+1][k]
			hmat[k+1][k] = 0
			g[k+1] = -sn[k] * g[k]
			g[k] = cs[k] * g[k]

			total++
			res.Iterations = total
			res.Residual = math.Abs(g[k+1]) / bnorm
			if res.Residual <= tol || hmat[k+1][k] > 0 && v[k+1] == nil {
				k++
				break
			}
			if v[k+1] == nil {
				// Happy breakdown: exact solution in the current subspace.
				k++
				break
			}
		}
		// Solve the k×k triangular system and update x.
		ymin := make([]float64, k)
		for i := k - 1; i >= 0; i-- {
			s := g[i]
			for j := i + 1; j < k; j++ {
				s -= hmat[i][j] * ymin[j]
			}
			if hmat[i][i] != 0 {
				ymin[i] = s / hmat[i][i]
			}
		}
		for j := 0; j < k; j++ {
			axpy(ymin[j], z[j], x)
		}
		if res.Residual <= tol {
			res.Converged = true
			break
		}
	}
	return x, res, nil
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func norm(a []float64) float64 { return math.Sqrt(dot(a, a)) }

func scale(a []float64, s float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] * s
	}
	return out
}

func axpy(alpha float64, x, y []float64) {
	for i := range x {
		y[i] += alpha * x[i]
	}
}
