// Package mg implements a real geometric multigrid solver for the 3D
// Poisson equation plus a preconditioned GMRES driver. It is the substrate
// behind the hypre/BoomerAMG simulator (paper Sections 6.2 and 6.6/Table 4):
// the tuning parameters that matter for hypre — smoother choice and weight,
// sweep counts, cycle type, coarsening aggressiveness, transfer operators,
// coarse-grid threshold, GMRES restart — change the *actual iteration count*
// of genuine solves here, so the tuner optimizes real convergence behaviour
// rather than a made-up response surface.
package mg

import (
	"errors"
	"math"
)

// Smoother selects the relaxation scheme.
type Smoother int

const (
	// Jacobi is weighted (damped) Jacobi.
	Jacobi Smoother = iota
	// GaussSeidel is lexicographic Gauss–Seidel.
	GaussSeidel
	// SOR is successive over-relaxation with weight Omega.
	SOR
	// SSOR is a symmetric (forward+backward) SOR sweep.
	SSOR
	// Chebyshev is degree-k Chebyshev polynomial smoothing (hypre's
	// parallel-friendly default; see chebyshev.go).
	Chebyshev
)

// SmootherNames lists categorical labels in Smoother value order.
var SmootherNames = []string{"jacobi", "gauss-seidel", "SOR", "SSOR", "chebyshev"}

// Transfer selects the intergrid transfer operator.
type Transfer int

const (
	// Injection samples/copies values directly.
	Injection Transfer = iota
	// Weighted is full-weighting restriction / trilinear interpolation.
	Weighted
)

// TransferNames lists categorical labels in Transfer value order.
var TransferNames = []string{"injection", "weighted"}

// Cycle selects the multigrid cycle shape.
type Cycle int

const (
	// VCycle visits each coarse level once.
	VCycle Cycle = iota
	// WCycle visits each coarse level twice.
	WCycle
)

// CycleNames lists categorical labels in Cycle value order.
var CycleNames = []string{"V", "W"}

// Options configures the hierarchy and cycling (the hypre-style knobs).
type Options struct {
	Smoother     Smoother
	Omega        float64 // relaxation weight for Jacobi/SOR/SSOR
	ChebyDegree  int     // Chebyshev polynomial degree (default 2)
	PreSweeps    int
	PostSweeps   int
	Cycle        Cycle
	CoarsenRatio int      // 2 (standard) or 4 (aggressive)
	Restrict     Transfer // restriction operator
	Interp       Transfer // prolongation operator
	CoarseSize   int      // stop coarsening when every dim ≤ this
	MaxLevels    int      // hierarchy depth cap
}

func (o *Options) defaults() {
	if o.Omega <= 0 {
		o.Omega = 0.8
	}
	if o.PreSweeps < 0 {
		o.PreSweeps = 0
	}
	if o.PostSweeps < 0 {
		o.PostSweeps = 0
	}
	if o.PreSweeps+o.PostSweeps == 0 {
		o.PostSweeps = 1
	}
	if o.CoarsenRatio < 2 {
		o.CoarsenRatio = 2
	}
	if o.CoarseSize < 2 {
		o.CoarseSize = 4
	}
	if o.MaxLevels <= 0 {
		o.MaxLevels = 25
	}
}

// level is one grid in the hierarchy.
type level struct {
	nx, ny, nz       int
	hx2i, hy2i, hz2i float64 // 1/h² per dimension
	diag             float64 // 2(hx2i + hy2i + hz2i)
	lambdaMax        float64 // cached spectral bound for Chebyshev smoothing
	u, b, r          []float64
}

func (l *level) n() int { return l.nx * l.ny * l.nz }

func (l *level) idx(x, y, z int) int { return (z*l.ny+y)*l.nx + x }

// Hierarchy is a built multigrid hierarchy for one grid size.
type Hierarchy struct {
	opts   Options
	levels []*level
	// Flops counts stencil work performed (approximate flop count), so the
	// caller can convert real iteration behaviour into modeled runtime.
	Flops int64
}

// NewHierarchy builds the level stack for an nx×ny×nz Poisson problem on the
// unit cube with Dirichlet boundaries.
func NewHierarchy(nx, ny, nz int, opts Options) (*Hierarchy, error) {
	if nx < 2 || ny < 2 || nz < 2 {
		return nil, errors.New("mg: grid must be at least 2 points per dimension")
	}
	opts.defaults()
	h := &Hierarchy{opts: opts}
	cx, cy, cz := nx, ny, nz
	for len(h.levels) < opts.MaxLevels {
		lv := newLevel(cx, cy, cz)
		h.levels = append(h.levels, lv)
		if cx <= opts.CoarseSize && cy <= opts.CoarseSize && cz <= opts.CoarseSize {
			break
		}
		r := opts.CoarsenRatio
		coarsen := func(n int) int {
			c := n / r
			if c < 2 {
				c = 2
			}
			return c
		}
		ncx, ncy, ncz := coarsen(cx), coarsen(cy), coarsen(cz)
		if ncx == cx && ncy == cy && ncz == cz {
			break
		}
		cx, cy, cz = ncx, ncy, ncz
	}
	return h, nil
}

func newLevel(nx, ny, nz int) *level {
	hx := 1.0 / float64(nx+1)
	hy := 1.0 / float64(ny+1)
	hz := 1.0 / float64(nz+1)
	lv := &level{
		nx: nx, ny: ny, nz: nz,
		hx2i: 1 / (hx * hx), hy2i: 1 / (hy * hy), hz2i: 1 / (hz * hz),
	}
	lv.diag = 2 * (lv.hx2i + lv.hy2i + lv.hz2i)
	n := lv.n()
	lv.u = make([]float64, n)
	lv.b = make([]float64, n)
	lv.r = make([]float64, n)
	return lv
}

// Levels returns the number of grids in the hierarchy.
func (h *Hierarchy) Levels() int { return len(h.levels) }

// LevelSizes returns the unknown count per level (finest first).
func (h *Hierarchy) LevelSizes() []int {
	out := make([]int, len(h.levels))
	for i, l := range h.levels {
		out[i] = l.n()
	}
	return out
}

// applyA computes out = A·u for the 7-point Laplacian at level l.
func (h *Hierarchy) applyA(l *level, u, out []float64) {
	for z := 0; z < l.nz; z++ {
		for y := 0; y < l.ny; y++ {
			base := (z*l.ny + y) * l.nx
			for x := 0; x < l.nx; x++ {
				i := base + x
				v := l.diag * u[i]
				if x > 0 {
					v -= l.hx2i * u[i-1]
				}
				if x < l.nx-1 {
					v -= l.hx2i * u[i+1]
				}
				if y > 0 {
					v -= l.hy2i * u[i-l.nx]
				}
				if y < l.ny-1 {
					v -= l.hy2i * u[i+l.nx]
				}
				if z > 0 {
					v -= l.hz2i * u[i-l.nx*l.ny]
				}
				if z < l.nz-1 {
					v -= l.hz2i * u[i+l.nx*l.ny]
				}
				out[i] = v
			}
		}
	}
	h.Flops += int64(13 * l.n())
}

// residual computes r = b - A·u.
func (h *Hierarchy) residual(l *level) {
	h.applyA(l, l.u, l.r)
	for i := range l.r {
		l.r[i] = l.b[i] - l.r[i]
	}
	h.Flops += int64(l.n())
}

// smooth runs one relaxation sweep on level l.
func (h *Hierarchy) smooth(l *level) {
	switch h.opts.Smoother {
	case Jacobi:
		h.applyA(l, l.u, l.r)
		w := h.opts.Omega / l.diag
		for i := range l.u {
			l.u[i] += w * (l.b[i] - l.r[i])
		}
		h.Flops += int64(3 * l.n())
	case Chebyshev:
		h.chebySmooth(l, h.opts.ChebyDegree)
	case GaussSeidel, SOR, SSOR:
		omega := h.opts.Omega
		if h.opts.Smoother == GaussSeidel {
			omega = 1
		}
		h.sorSweep(l, omega, false)
		if h.opts.Smoother == SSOR {
			h.sorSweep(l, omega, true)
		}
	}
}

// sorSweep performs an in-place SOR sweep (backward when reverse).
func (h *Hierarchy) sorSweep(l *level, omega float64, reverse bool) {
	n := l.n()
	for k := 0; k < n; k++ {
		i := k
		if reverse {
			i = n - 1 - k
		}
		z := i / (l.nx * l.ny)
		rem := i % (l.nx * l.ny)
		y := rem / l.nx
		x := rem % l.nx
		s := l.b[i]
		if x > 0 {
			s += l.hx2i * l.u[i-1]
		}
		if x < l.nx-1 {
			s += l.hx2i * l.u[i+1]
		}
		if y > 0 {
			s += l.hy2i * l.u[i-l.nx]
		}
		if y < l.ny-1 {
			s += l.hy2i * l.u[i+l.nx]
		}
		if z > 0 {
			s += l.hz2i * l.u[i-l.nx*l.ny]
		}
		if z < l.nz-1 {
			s += l.hz2i * l.u[i+l.nx*l.ny]
		}
		gs := s / l.diag
		l.u[i] = (1-omega)*l.u[i] + omega*gs
	}
	h.Flops += int64(15 * n)
}

// restrictTo maps the residual of fine level lf into the rhs of coarse level
// lc.
func (h *Hierarchy) restrictTo(lf, lc *level) {
	rx := float64(lf.nx) / float64(lc.nx)
	ry := float64(lf.ny) / float64(lc.ny)
	rz := float64(lf.nz) / float64(lc.nz)
	for z := 0; z < lc.nz; z++ {
		for y := 0; y < lc.ny; y++ {
			for x := 0; x < lc.nx; x++ {
				ci := lc.idx(x, y, z)
				fx := int(float64(x) * rx)
				fy := int(float64(y) * ry)
				fz := int(float64(z) * rz)
				if h.opts.Restrict == Injection {
					lc.b[ci] = lf.r[lf.idx(minI(fx, lf.nx-1), minI(fy, lf.ny-1), minI(fz, lf.nz-1))]
					continue
				}
				// Box full-weighting over the fine cell.
				sum, cnt := 0.0, 0
				for dz := 0; dz < int(math.Ceil(rz)); dz++ {
					for dy := 0; dy < int(math.Ceil(ry)); dy++ {
						for dx := 0; dx < int(math.Ceil(rx)); dx++ {
							X, Y, Z := fx+dx, fy+dy, fz+dz
							if X < lf.nx && Y < lf.ny && Z < lf.nz {
								sum += lf.r[lf.idx(X, Y, Z)]
								cnt++
							}
						}
					}
				}
				if cnt > 0 {
					lc.b[ci] = sum / float64(cnt)
				}
			}
		}
	}
	h.Flops += int64(8 * lc.n())
}

// prolongAdd interpolates the coarse correction into the fine solution.
func (h *Hierarchy) prolongAdd(lf, lc *level) {
	sx := float64(lc.nx) / float64(lf.nx)
	sy := float64(lc.ny) / float64(lf.ny)
	sz := float64(lc.nz) / float64(lf.nz)
	for z := 0; z < lf.nz; z++ {
		for y := 0; y < lf.ny; y++ {
			for x := 0; x < lf.nx; x++ {
				fi := lf.idx(x, y, z)
				cx := float64(x) * sx
				cy := float64(y) * sy
				cz := float64(z) * sz
				if h.opts.Interp == Injection {
					lf.u[fi] += lc.u[lc.idx(minI(int(cx), lc.nx-1), minI(int(cy), lc.ny-1), minI(int(cz), lc.nz-1))]
					continue
				}
				lf.u[fi] += h.trilinear(lc, cx, cy, cz)
			}
		}
	}
	h.Flops += int64(8 * lf.n())
}

func (h *Hierarchy) trilinear(lc *level, cx, cy, cz float64) float64 {
	x0 := minI(int(cx), lc.nx-1)
	y0 := minI(int(cy), lc.ny-1)
	z0 := minI(int(cz), lc.nz-1)
	x1 := minI(x0+1, lc.nx-1)
	y1 := minI(y0+1, lc.ny-1)
	z1 := minI(z0+1, lc.nz-1)
	tx := cx - float64(x0)
	ty := cy - float64(y0)
	tz := cz - float64(z0)
	if tx > 1 {
		tx = 1
	}
	if ty > 1 {
		ty = 1
	}
	if tz > 1 {
		tz = 1
	}
	c := func(x, y, z int) float64 { return lc.u[lc.idx(x, y, z)] }
	return (1-tz)*((1-ty)*((1-tx)*c(x0, y0, z0)+tx*c(x1, y0, z0))+
		ty*((1-tx)*c(x0, y1, z0)+tx*c(x1, y1, z0))) +
		tz*((1-ty)*((1-tx)*c(x0, y0, z1)+tx*c(x1, y0, z1))+
			ty*((1-tx)*c(x0, y1, z1)+tx*c(x1, y1, z1)))
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// cycle runs one multigrid cycle starting at level k (solution in levels[k].u,
// rhs in levels[k].b).
func (h *Hierarchy) cycle(k int) {
	l := h.levels[k]
	if k == len(h.levels)-1 {
		// Coarse solve: enough GS sweeps to be effectively exact.
		for s := 0; s < 60; s++ {
			h.sorSweep(l, 1, false)
		}
		return
	}
	for s := 0; s < h.opts.PreSweeps; s++ {
		h.smooth(l)
	}
	h.residual(l)
	lc := h.levels[k+1]
	h.restrictTo(l, lc)
	for i := range lc.u {
		lc.u[i] = 0
	}
	visits := 1
	if h.opts.Cycle == WCycle {
		visits = 2
	}
	for v := 0; v < visits; v++ {
		h.cycle(k + 1)
	}
	h.prolongAdd(l, lc)
	for s := 0; s < h.opts.PostSweeps; s++ {
		h.smooth(l)
	}
}

// Precondition applies one multigrid cycle to rhs v (zero initial guess) and
// returns the approximate solution of A·z = v. This is the preconditioner
// GMRES uses.
func (h *Hierarchy) Precondition(v []float64) []float64 {
	fine := h.levels[0]
	copy(fine.b, v)
	for i := range fine.u {
		fine.u[i] = 0
	}
	h.cycle(0)
	out := make([]float64, len(v))
	copy(out, fine.u)
	return out
}

// Apply computes A·u on the finest grid into a new slice.
func (h *Hierarchy) Apply(u []float64) []float64 {
	fine := h.levels[0]
	out := make([]float64, len(u))
	h.applyA(fine, u, out)
	return out
}

// FineN returns the finest-grid unknown count.
func (h *Hierarchy) FineN() int { return h.levels[0].n() }
