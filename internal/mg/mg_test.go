package mg

import (
	"math"
	"testing"
)

func onesRHS(n int) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	return b
}

func defaultOpts() Options {
	return Options{
		Smoother:   GaussSeidel,
		PreSweeps:  1,
		PostSweeps: 1,
		Restrict:   Weighted,
		Interp:     Weighted,
	}
}

func TestHierarchyLevels(t *testing.T) {
	h, err := NewHierarchy(32, 32, 32, defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	sizes := h.LevelSizes()
	if len(sizes) < 3 {
		t.Fatalf("too few levels: %v", sizes)
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] >= sizes[i-1] {
			t.Fatalf("levels not shrinking: %v", sizes)
		}
	}
	if h.FineN() != 32*32*32 {
		t.Fatalf("FineN = %d", h.FineN())
	}
}

func TestHierarchyRejectsTinyGrid(t *testing.T) {
	if _, err := NewHierarchy(1, 8, 8, defaultOpts()); err == nil {
		t.Fatalf("1-point dimension accepted")
	}
}

func TestAggressiveCoarseningFewerLevels(t *testing.T) {
	std, _ := NewHierarchy(48, 48, 48, defaultOpts())
	agg := defaultOpts()
	agg.CoarsenRatio = 4
	aggr, _ := NewHierarchy(48, 48, 48, agg)
	if aggr.Levels() >= std.Levels() {
		t.Fatalf("aggressive coarsening has %d levels, standard %d", aggr.Levels(), std.Levels())
	}
}

func TestApplyAMatchesLaplacianOn1DLikeGrid(t *testing.T) {
	// For u = constant on interior, A·u at the center of a large grid is
	// near zero away from boundaries only if u satisfies the equation...
	// Instead verify symmetry: (Au, v) == (u, Av) for random-ish u, v.
	h, _ := NewHierarchy(6, 5, 4, defaultOpts())
	n := h.FineN()
	u := make([]float64, n)
	v := make([]float64, n)
	for i := 0; i < n; i++ {
		u[i] = math.Sin(float64(i) * 0.7)
		v[i] = math.Cos(float64(i) * 0.3)
	}
	au := h.Apply(u)
	av := h.Apply(v)
	if math.Abs(dot(au, v)-dot(u, av)) > 1e-6*math.Abs(dot(au, v)) {
		t.Fatalf("operator not symmetric: %v vs %v", dot(au, v), dot(u, av))
	}
	// Positive definiteness on a random vector.
	if dot(au, u) <= 0 {
		t.Fatalf("uᵀAu = %v not positive", dot(au, u))
	}
}

// Multigrid-preconditioned GMRES must converge fast and to the right answer.
func TestMGGMRESSolvesPoisson(t *testing.T) {
	h, err := NewHierarchy(24, 24, 24, defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	b := onesRHS(h.FineN())
	x, res, err := GMRES(h.Apply, h.Precondition, b, 30, 100, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	if res.Iterations > 25 {
		t.Fatalf("MG-preconditioned GMRES took %d iterations", res.Iterations)
	}
	// True residual check.
	ax := h.Apply(x)
	r := 0.0
	for i := range ax {
		d := ax[i] - b[i]
		r += d * d
	}
	if math.Sqrt(r)/norm(b) > 1e-6 {
		t.Fatalf("true residual %v too large", math.Sqrt(r)/norm(b))
	}
}

func TestUnpreconditionedGMRESIsSlower(t *testing.T) {
	h, _ := NewHierarchy(16, 16, 16, defaultOpts())
	b := onesRHS(h.FineN())
	_, plain, err := GMRES(h.Apply, nil, b, 30, 200, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	_, mg, err := GMRES(h.Apply, h.Precondition, b, 30, 200, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	if !mg.Converged {
		t.Fatalf("MG run failed: %+v", mg)
	}
	if plain.Converged && plain.Iterations <= mg.Iterations {
		t.Fatalf("preconditioning did not help: %d vs %d", plain.Iterations, mg.Iterations)
	}
}

func TestSmootherChoiceAffectsIterations(t *testing.T) {
	iters := map[Smoother]int{}
	for _, s := range []Smoother{Jacobi, GaussSeidel, SSOR} {
		o := defaultOpts()
		o.Smoother = s
		o.Omega = 0.8
		h, _ := NewHierarchy(20, 20, 20, o)
		_, res, err := GMRES(h.Apply, h.Precondition, onesRHS(h.FineN()), 30, 100, 1e-8)
		if err != nil || !res.Converged {
			t.Fatalf("smoother %v failed: %+v %v", s, res, err)
		}
		iters[s] = res.Iterations
	}
	// Gauss–Seidel should beat damped Jacobi as an MG smoother.
	if iters[GaussSeidel] > iters[Jacobi] {
		t.Fatalf("GS (%d iters) worse than Jacobi (%d)", iters[GaussSeidel], iters[Jacobi])
	}
}

func TestBadOmegaDiverges(t *testing.T) {
	// Over-relaxed Jacobi (ω=1.9) is an unstable smoother; the solver must
	// need clearly more iterations (or fail) compared to ω=0.8.
	good := defaultOpts()
	good.Smoother = Jacobi
	good.Omega = 0.8
	hGood, _ := NewHierarchy(16, 16, 16, good)
	_, resGood, _ := GMRES(hGood.Apply, hGood.Precondition, onesRHS(hGood.FineN()), 30, 100, 1e-8)

	bad := good
	bad.Omega = 1.9
	hBad, _ := NewHierarchy(16, 16, 16, bad)
	_, resBad, _ := GMRES(hBad.Apply, hBad.Precondition, onesRHS(hBad.FineN()), 30, 100, 1e-8)
	if resBad.Converged && resBad.Iterations <= resGood.Iterations {
		t.Fatalf("ω=1.9 (%d iters) not worse than ω=0.8 (%d)", resBad.Iterations, resGood.Iterations)
	}
}

func TestWCycleAtLeastAsGoodPerCycle(t *testing.T) {
	v := defaultOpts()
	hV, _ := NewHierarchy(20, 20, 20, v)
	w := defaultOpts()
	w.Cycle = WCycle
	hW, _ := NewHierarchy(20, 20, 20, w)
	_, resV, _ := GMRES(hV.Apply, hV.Precondition, onesRHS(hV.FineN()), 30, 100, 1e-8)
	_, resW, _ := GMRES(hW.Apply, hW.Precondition, onesRHS(hW.FineN()), 30, 100, 1e-8)
	if !resV.Converged || !resW.Converged {
		t.Fatalf("V/W failed: %+v %+v", resV, resW)
	}
	if resW.Iterations > resV.Iterations {
		t.Fatalf("W-cycle (%d) took more iterations than V-cycle (%d)", resW.Iterations, resV.Iterations)
	}
	// But W-cycles must cost more work per iteration.
	if hW.Flops <= hV.Flops && resW.Iterations == resV.Iterations {
		t.Fatalf("W-cycle reported no extra work")
	}
}

func TestAnisotropicGridSolves(t *testing.T) {
	h, err := NewHierarchy(40, 12, 7, defaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	_, res, err := GMRES(h.Apply, h.Precondition, onesRHS(h.FineN()), 30, 150, 1e-7)
	if err != nil || !res.Converged {
		t.Fatalf("anisotropic solve failed: %+v %v", res, err)
	}
}

func TestGMRESZeroRHS(t *testing.T) {
	h, _ := NewHierarchy(8, 8, 8, defaultOpts())
	x, res, err := GMRES(h.Apply, h.Precondition, make([]float64, h.FineN()), 10, 50, 1e-8)
	if err != nil || !res.Converged {
		t.Fatalf("zero rhs: %+v %v", res, err)
	}
	for _, v := range x {
		if v != 0 {
			t.Fatalf("nonzero solution for zero rhs")
		}
	}
}

func TestGMRESEmptySystem(t *testing.T) {
	if _, _, err := GMRES(nil, nil, nil, 10, 10, 1e-8); err == nil {
		t.Fatalf("empty system accepted")
	}
}

func TestFlopCounterMonotone(t *testing.T) {
	h, _ := NewHierarchy(12, 12, 12, defaultOpts())
	before := h.Flops
	h.Precondition(onesRHS(h.FineN()))
	if h.Flops <= before {
		t.Fatalf("flop counter did not advance")
	}
}

func TestChebyshevSmootherConverges(t *testing.T) {
	o := defaultOpts()
	o.Smoother = Chebyshev
	o.ChebyDegree = 3
	h, err := NewHierarchy(20, 20, 20, o)
	if err != nil {
		t.Fatal(err)
	}
	_, res, err := GMRES(h.Apply, h.Precondition, onesRHS(h.FineN()), 30, 100, 1e-8)
	if err != nil || !res.Converged {
		t.Fatalf("Chebyshev-smoothed MG failed: %+v %v", res, err)
	}
	if res.Iterations > 30 {
		t.Fatalf("Chebyshev MG took %d iterations", res.Iterations)
	}
}

func TestLambdaMaxEstimate(t *testing.T) {
	o := defaultOpts()
	h, _ := NewHierarchy(12, 12, 12, o)
	lmax := h.estimateLambdaMax(h.levels[0])
	// The Gershgorin bound for the 7-point Laplacian is exactly 2·diag.
	d := h.levels[0].diag
	if lmax != 2*d {
		t.Fatalf("lambdaMax bound %v, want %v", lmax, 2*d)
	}
	// Cached on repeat.
	if h.estimateLambdaMax(h.levels[0]) != lmax {
		t.Fatalf("estimate not cached")
	}
}

func TestChebyDegreeTradesWork(t *testing.T) {
	run := func(deg int) (int, int64) {
		o := defaultOpts()
		o.Smoother = Chebyshev
		o.ChebyDegree = deg
		h, _ := NewHierarchy(16, 16, 16, o)
		_, res, _ := GMRES(h.Apply, h.Precondition, onesRHS(h.FineN()), 30, 100, 1e-8)
		return res.Iterations, h.Flops
	}
	it1, _ := run(1)
	it4, fl4 := run(4)
	if it4 > it1 {
		t.Fatalf("higher degree should not need more iterations: %d vs %d", it4, it1)
	}
	if fl4 <= 0 {
		t.Fatalf("flops not counted")
	}
}
