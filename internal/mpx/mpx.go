// Package mpx is the shared-memory substitute for the paper's MPI dynamic
// process management (Section 4). The original GPTune driver runs as a
// single MPI process that spawns worker process groups via MPI_Comm_spawn
// and talks to them through inter-communicators; here the master is the
// calling goroutine, Spawn launches a group of worker goroutines, and the
// returned SpawnedComm plays the role of the inter-communicator
// ("SpawnedComm" in the paper's Fig. 1). Workers see the mirror-image
// inter-communicator through their WorkerCtx ("ParentComm") plus an
// intra-communicator connecting the worker group.
//
// The package also provides the worker-pool helpers the tuner uses to
// parallelize objective-function evaluations, modeling-phase random starts,
// and per-task search (Sections 4.2–4.3).
package mpx

import (
	"fmt"
	"runtime"
	"sync"
)

// SpawnedComm is the master's end of the inter-communicator created by
// Spawn: the local group is the master alone, the remote group is the
// workers.
type SpawnedComm struct {
	size       int
	toWorker   []chan any
	fromWorker []chan any
	done       chan struct{}
	wg         *sync.WaitGroup
}

// WorkerCtx is a worker's view of the world: its rank and group size
// (intra-communicator "MPI_World"), and the parent inter-communicator
// ("ParentComm") for exchanging data with the master.
type WorkerCtx struct {
	Rank, Size int
	fromMaster chan any
	toMaster   chan any
	barrier    *barrier
}

// Spawn launches size worker goroutines each running body, and returns the
// master's inter-communicator. The master must eventually call Wait (or
// drain all worker messages) to join the group.
func Spawn(size int, body func(ctx *WorkerCtx)) *SpawnedComm {
	if size <= 0 {
		panic(fmt.Sprintf("mpx: Spawn size %d", size))
	}
	sc := &SpawnedComm{
		size:       size,
		toWorker:   make([]chan any, size),
		fromWorker: make([]chan any, size),
		done:       make(chan struct{}),
		wg:         &sync.WaitGroup{},
	}
	bar := newBarrier(size)
	sc.wg.Add(size)
	for r := 0; r < size; r++ {
		sc.toWorker[r] = make(chan any, 16)
		sc.fromWorker[r] = make(chan any, 16)
		ctx := &WorkerCtx{
			Rank:       r,
			Size:       size,
			fromMaster: sc.toWorker[r],
			toMaster:   sc.fromWorker[r],
			barrier:    bar,
		}
		go func() {
			defer sc.wg.Done()
			body(ctx)
		}()
	}
	go func() {
		sc.wg.Wait()
		close(sc.done)
	}()
	return sc
}

// Send delivers v to worker rank (blocking once the worker's mailbox of 16
// messages is full).
func (sc *SpawnedComm) Send(rank int, v any) { sc.toWorker[rank] <- v }

// Recv blocks until worker rank sends a message to the master.
func (sc *SpawnedComm) Recv(rank int) any { return <-sc.fromWorker[rank] }

// Bcast sends v to every worker.
func (sc *SpawnedComm) Bcast(v any) {
	for r := 0; r < sc.size; r++ {
		sc.toWorker[r] <- v
	}
}

// Gather receives one message from every worker, indexed by rank.
func (sc *SpawnedComm) Gather() []any {
	out := make([]any, sc.size)
	for r := 0; r < sc.size; r++ {
		out[r] = <-sc.fromWorker[r]
	}
	return out
}

// Size returns the remote group size.
func (sc *SpawnedComm) Size() int { return sc.size }

// Wait blocks until every worker body has returned.
func (sc *SpawnedComm) Wait() { <-sc.done }

// Recv blocks until the master sends this worker a message.
func (w *WorkerCtx) Recv() any { return <-w.fromMaster }

// Send delivers v to the master.
func (w *WorkerCtx) Send(v any) { w.toMaster <- v }

// Barrier synchronizes all workers in the spawned group (the workers'
// intra-communicator).
func (w *WorkerCtx) Barrier() { w.barrier.await() }

// barrier is a reusable n-party barrier.
type barrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   int
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) await() {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
	} else {
		for gen == b.gen {
			b.cond.Wait()
		}
	}
	b.mu.Unlock()
}

// Gate bounds how many holders may be inside a region at once — a counting
// semaphore. The tuning service shares one Gate across every study's engine
// so that concurrent studies cannot oversubscribe the machine with parallel
// modeling phases; each engine still parallelizes internally via its own
// Workers option once it holds the gate.
type Gate struct {
	slots chan struct{}
}

// NewGate returns a gate admitting up to n concurrent holders (min 1).
func NewGate(n int) *Gate {
	if n < 1 {
		n = 1
	}
	return &Gate{slots: make(chan struct{}, n)}
}

// Acquire blocks until a slot is free and takes it.
func (g *Gate) Acquire() { g.slots <- struct{}{} }

// Release frees a slot taken by Acquire.
func (g *Gate) Release() { <-g.slots }

// Go runs fn on its own goroutine, registered with wg before the goroutine
// starts and marked done when fn returns, so the owner can always join it
// with wg.Wait. This is the sanctioned way to run a supervised background
// task outside a worker pool — the async engine's batch generator uses it
// so a shutting-down service can wait out an in-flight surrogate fit.
func Go(wg *sync.WaitGroup, fn func()) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		fn()
	}()
}

// ParallelFor runs fn(i) for i ∈ [0, n) on up to workers goroutines and
// blocks until all complete. workers ≤ 1 runs inline.
func ParallelFor(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	idx := make(chan int, n) //gptlint:ignore hotpath-alloc the work queue is the price of fanning out; hot paths pay it once per parallel region, never per item
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ParallelChunks splits [0, n) into fixed-size chunks of chunk elements and
// runs fn(chunkIndex, lo, hi) for each on up to workers goroutines. The
// partition depends only on n and chunk — never on workers — so callers that
// keep per-chunk accumulators and merge them in chunk-index order get
// bitwise-identical results for every worker count. This is the backbone of
// the deterministic parallel reductions in the modeling phase (Section 4.3).
func ParallelChunks(n, chunk, workers int, fn func(c, lo, hi int)) {
	if n <= 0 {
		return
	}
	if chunk <= 0 {
		chunk = 1
	}
	nc := (n + chunk - 1) / chunk
	// Chunk reductions are pure CPU: more workers than GOMAXPROCS only adds
	// scheduling overhead (the result is worker-count independent anyway).
	if p := runtime.GOMAXPROCS(0); workers > p {
		workers = p
	}
	ParallelFor(nc, workers, func(c int) {
		lo := c * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		fn(c, lo, hi)
	})
}

// NumChunks returns the chunk count ParallelChunks uses for (n, chunk).
func NumChunks(n, chunk int) int {
	if n <= 0 {
		return 0
	}
	if chunk <= 0 {
		chunk = 1
	}
	return (n + chunk - 1) / chunk
}

// Map applies fn to every input on up to workers goroutines, preserving
// order. Errors are collected per element (nil when fn succeeded).
func Map[T, R any](inputs []T, workers int, fn func(T) (R, error)) ([]R, []error) {
	out := make([]R, len(inputs))
	errs := make([]error, len(inputs))
	ParallelFor(len(inputs), workers, func(i int) {
		out[i], errs[i] = fn(inputs[i])
	})
	return out, errs
}

// MapStream is Map with ordered streaming delivery: fn runs on up to
// workers goroutines, and deliver(i, out, err) is invoked on the calling
// goroutine, in input order, as soon as element i and every earlier element
// have completed — while later elements may still be in flight. Checkpoint
// hooks use this to persist completed objective evaluations to a
// write-ahead log mid-batch, in an order that depends only on the input
// order (never on scheduling), so a crashed run's log is always a prefix of
// the uninterrupted run's log. A non-nil error from deliver stops further
// deliveries (in-flight fn calls still drain) and is returned; the full
// out/errs slices are valid either way.
func MapStream[T, R any](inputs []T, workers int, fn func(T) (R, error), deliver func(i int, out R, err error) error) ([]R, []error, error) {
	n := len(inputs)
	out := make([]R, n)
	errs := make([]error, n)
	if n == 0 {
		return out, errs, nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		var derr error
		for i := 0; i < n; i++ {
			out[i], errs[i] = fn(inputs[i])
			if derr == nil && deliver != nil {
				derr = deliver(i, out[i], errs[i])
			}
		}
		return out, errs, derr
	}
	idx := make(chan int, n)
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	completed := make(chan int, n)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i], errs[i] = fn(inputs[i])
				completed <- i
			}
		}()
	}
	go func() {
		wg.Wait()
		close(completed)
	}()
	// The calling goroutine is the collector: buffer out-of-order
	// completions and deliver the contiguous prefix. The channel send above
	// happens-after the worker's writes to out[i]/errs[i], so reading them
	// here is race-free.
	delivered := make([]bool, n)
	next := 0
	var derr error
	for i := range completed {
		delivered[i] = true
		for next < n && delivered[next] {
			if derr == nil && deliver != nil {
				derr = deliver(next, out[next], errs[next])
			}
			next++
		}
	}
	return out, errs, derr
}
