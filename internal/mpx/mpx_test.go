package mpx

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSpawnEchoWorkers(t *testing.T) {
	sc := Spawn(4, func(ctx *WorkerCtx) {
		v := ctx.Recv().(int)
		ctx.Send(v * 10)
	})
	for r := 0; r < 4; r++ {
		sc.Send(r, r+1)
	}
	got := sc.Gather()
	for r := 0; r < 4; r++ {
		if got[r].(int) != (r+1)*10 {
			t.Fatalf("rank %d returned %v", r, got[r])
		}
	}
	sc.Wait()
}

func TestBcast(t *testing.T) {
	sc := Spawn(3, func(ctx *WorkerCtx) {
		v := ctx.Recv().(string)
		ctx.Send(v + "-ack")
	})
	sc.Bcast("hello")
	for _, v := range sc.Gather() {
		if v.(string) != "hello-ack" {
			t.Fatalf("got %v", v)
		}
	}
	sc.Wait()
}

func TestWorkerRanksDistinct(t *testing.T) {
	sc := Spawn(8, func(ctx *WorkerCtx) {
		ctx.Send(ctx.Rank)
	})
	ranks := make([]int, 0, 8)
	for _, v := range sc.Gather() {
		ranks = append(ranks, v.(int))
	}
	sort.Ints(ranks)
	for i, r := range ranks {
		if r != i {
			t.Fatalf("ranks = %v", ranks)
		}
	}
	sc.Wait()
}

func TestBarrierSynchronizes(t *testing.T) {
	const n = 6
	var before, after int32
	sc := Spawn(n, func(ctx *WorkerCtx) {
		atomic.AddInt32(&before, 1)
		ctx.Barrier()
		// All n workers must have passed "before" by now.
		if atomic.LoadInt32(&before) != n {
			ctx.Send(false)
			return
		}
		atomic.AddInt32(&after, 1)
		ctx.Barrier()
		ctx.Send(true)
	})
	for _, v := range sc.Gather() {
		if !v.(bool) {
			t.Fatalf("barrier did not synchronize")
		}
	}
	sc.Wait()
	if after != n {
		t.Fatalf("after = %d", after)
	}
}

func TestBarrierReusable(t *testing.T) {
	b := newBarrier(3)
	var wg sync.WaitGroup
	var counter int32
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 50; round++ {
				atomic.AddInt32(&counter, 1)
				b.await()
			}
		}()
	}
	wg.Wait()
	if counter != 150 {
		t.Fatalf("counter = %d", counter)
	}
}

func TestParallelForCoversAll(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 16} {
		n := 100
		hits := make([]int32, n)
		ParallelFor(n, workers, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
	ParallelFor(0, 4, func(int) { t.Fatalf("fn called for n=0") })
}

func TestMapOrderAndErrors(t *testing.T) {
	in := []int{1, 2, 3, 4, 5}
	errBad := errors.New("bad")
	out, errs := Map(in, 3, func(v int) (int, error) {
		if v == 3 {
			return 0, errBad
		}
		return v * v, nil
	})
	want := []int{1, 4, 0, 16, 25}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out = %v", out)
		}
	}
	if errs[2] != errBad || errs[0] != nil {
		t.Fatalf("errs = %v", errs)
	}
}

func TestSpawnPanicsOnZeroSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	Spawn(0, func(*WorkerCtx) {})
}

func TestSizeAccessor(t *testing.T) {
	sc := Spawn(5, func(ctx *WorkerCtx) {
		if ctx.Size != 5 {
			ctx.Send(false)
			return
		}
		ctx.Send(true)
	})
	if sc.Size() != 5 {
		t.Fatalf("Size = %d", sc.Size())
	}
	for _, v := range sc.Gather() {
		if !v.(bool) {
			t.Fatalf("worker saw wrong size")
		}
	}
	sc.Wait()
}

func TestMapStreamOrderedDelivery(t *testing.T) {
	inputs := make([]int, 40)
	for i := range inputs {
		inputs[i] = i
	}
	var order []int
	out, errs, derr := MapStream(inputs, 8, func(v int) (int, error) {
		// Stagger work so completions arrive out of order.
		time.Sleep(time.Duration((v*7)%5) * time.Millisecond)
		return v * 2, nil
	}, func(i, r int, err error) error {
		order = append(order, i)
		if r != i*2 || err != nil {
			t.Errorf("deliver(%d) got %d, %v", i, r, err)
		}
		return nil
	})
	if derr != nil {
		t.Fatal(derr)
	}
	if len(order) != len(inputs) {
		t.Fatalf("delivered %d of %d", len(order), len(inputs))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("delivery out of order at %d: %v", i, order)
		}
	}
	for i := range inputs {
		if out[i] != i*2 || errs[i] != nil {
			t.Fatalf("result %d wrong: %d, %v", i, out[i], errs[i])
		}
	}
}

// TestMapStreamStreamsMidBatch proves delivery happens while later elements
// are still in flight: element 3 blocks until element 0 has been delivered,
// which deadlocks any implementation that only delivers after the batch.
func TestMapStreamStreamsMidBatch(t *testing.T) {
	release := make(chan struct{})
	_, _, derr := MapStream([]int{0, 1, 2, 3}, 2, func(v int) (int, error) {
		if v == 3 {
			<-release
		}
		return v, nil
	}, func(i, r int, err error) error {
		if i == 0 {
			close(release)
		}
		return nil
	})
	if derr != nil {
		t.Fatal(derr)
	}
}

func TestMapStreamDeliverErrorStops(t *testing.T) {
	wantErr := errors.New("stop")
	var delivered []int
	out, _, derr := MapStream([]int{1, 2, 3, 4}, 2, func(v int) (int, error) {
		return v * 10, nil
	}, func(i, r int, err error) error {
		delivered = append(delivered, i)
		if i == 1 {
			return wantErr
		}
		return nil
	})
	if derr != wantErr {
		t.Fatalf("derr = %v", derr)
	}
	if len(delivered) != 2 {
		t.Fatalf("deliveries after error: %v", delivered)
	}
	// Computation still completed for every element.
	for i, v := range out {
		if v != (i+1)*10 {
			t.Fatalf("out = %v", out)
		}
	}
}

func TestMapStreamSerialAndEmpty(t *testing.T) {
	if out, _, err := MapStream(nil, 4, func(v int) (int, error) { return v, nil }, nil); err != nil || len(out) != 0 {
		t.Fatalf("empty input: %v %v", out, err)
	}
	var order []int
	_, _, err := MapStream([]int{5, 6}, 1, func(v int) (int, error) { return v, nil },
		func(i, r int, err error) error { order = append(order, i); return nil })
	if err != nil || len(order) != 2 || order[0] != 0 || order[1] != 1 {
		t.Fatalf("serial delivery: %v %v", order, err)
	}
}

func TestGateBoundsConcurrency(t *testing.T) {
	g := NewGate(2)
	var cur, peak atomic.Int64
	ParallelFor(16, 8, func(i int) {
		g.Acquire()
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		cur.Add(-1)
		g.Release()
	})
	if p := peak.Load(); p > 2 {
		t.Fatalf("gate admitted %d concurrent holders, limit 2", p)
	}
	// A gate built with n < 1 still admits one holder (and releases).
	g1 := NewGate(0)
	g1.Acquire()
	g1.Release()
}
