package opt

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/la"
)

// CMAESParams configures the (μ/μ_w, λ)-CMA-ES evolution strategy (Hansen's
// covariance matrix adaptation), a strong general-purpose continuous
// optimizer that complements the paper's model-free ensemble.
type CMAESParams struct {
	Lambda   int     // population size (default 4 + ⌊3 ln d⌋)
	Sigma    float64 // initial step size (default 0.3)
	MaxEvals int     // objective evaluation budget (default 100·dim·λ... capped; default 1000)
	Start    []float64
}

// CMAES minimizes f over [0,1]^dim. Out-of-box samples are clipped before
// evaluation (standard boundary handling for box constraints).
func CMAES(f Objective, dim int, params CMAESParams, rng *rand.Rand) Result {
	if params.Lambda <= 0 {
		params.Lambda = 4 + int(3*math.Log(float64(dim)))
	}
	if params.Lambda < 4 {
		params.Lambda = 4
	}
	if params.Sigma <= 0 {
		params.Sigma = 0.3
	}
	if params.MaxEvals <= 0 {
		params.MaxEvals = 1000
	}
	lambda := params.Lambda
	mu := lambda / 2

	// Recombination weights (log-rank).
	weights := make([]float64, mu)
	wsum := 0.0
	for i := 0; i < mu; i++ {
		weights[i] = math.Log(float64(lambda)/2+0.5) - math.Log(float64(i+1))
		wsum += weights[i]
	}
	muEff := 0.0
	for i := range weights {
		weights[i] /= wsum
		muEff += weights[i] * weights[i]
	}
	muEff = 1 / muEff

	d := float64(dim)
	// Strategy constants (Hansen's defaults).
	cc := (4 + muEff/d) / (d + 4 + 2*muEff/d)
	cs := (muEff + 2) / (d + muEff + 5)
	c1 := 2 / ((d+1.3)*(d+1.3) + muEff)
	cmu := math.Min(1-c1, 2*(muEff-2+1/muEff)/((d+2)*(d+2)+muEff))
	damps := 1 + 2*math.Max(0, math.Sqrt((muEff-1)/(d+1))-1) + cs
	chiN := math.Sqrt(d) * (1 - 1/(4*d) + 1/(21*d*d))

	mean := params.Start
	if mean == nil {
		mean = randomPoint(dim, rng)
	} else {
		mean = clip01(append([]float64(nil), mean...))
	}
	sigma := params.Sigma
	cov := la.Identity(dim)
	pc := make([]float64, dim)
	ps := make([]float64, dim)

	best := Result{F: math.Inf(1)}
	evals := 0

	type cand struct {
		x, z []float64
		f    float64
	}
	for evals < params.MaxEvals {
		// Eigen-free sampling via Cholesky of C (with jitter for safety).
		l, _, err := la.CholeskyJitter(cov, 1e-12)
		if err != nil {
			break
		}
		pop := make([]cand, 0, lambda)
		for k := 0; k < lambda && evals < params.MaxEvals; k++ {
			z := make([]float64, dim)
			for i := range z {
				z[i] = rng.NormFloat64()
			}
			// x = mean + σ·L·z
			lz := l.MulVec(z)
			x := make([]float64, dim)
			for i := range x {
				x[i] = mean[i] + sigma*lz[i]
			}
			clip01(x)
			fx := f(x)
			evals++
			pop = append(pop, cand{x: x, z: z, f: fx})
			if fx < best.F {
				best = Result{X: append([]float64(nil), x...), F: fx}
			}
		}
		sort.Slice(pop, func(a, b int) bool { return pop[a].f < pop[b].f })
		if len(pop) < mu {
			break
		}

		// Recombine mean and evolution paths.
		oldMean := append([]float64(nil), mean...)
		zMean := make([]float64, dim)
		for j := 0; j < dim; j++ {
			m := 0.0
			zm := 0.0
			for i := 0; i < mu; i++ {
				m += weights[i] * pop[i].x[j]
				zm += weights[i] * pop[i].z[j]
			}
			mean[j] = m
			zMean[j] = zm
		}
		// ps update (σ path): ps = (1-cs)·ps + sqrt(cs(2-cs)μeff)·z̄
		csn := math.Sqrt(cs * (2 - cs) * muEff)
		for j := 0; j < dim; j++ {
			ps[j] = (1-cs)*ps[j] + csn*zMean[j]
		}
		psNorm := la.Norm2(ps)
		// pc update (rank-one path).
		hsig := 0.0
		if psNorm/math.Sqrt(1-math.Pow(1-cs, 2*float64(evals)/float64(lambda)))/chiN < 1.4+2/(d+1) {
			hsig = 1
		}
		ccn := math.Sqrt(cc * (2 - cc) * muEff)
		for j := 0; j < dim; j++ {
			step := (mean[j] - oldMean[j]) / sigma
			pc[j] = (1-cc)*pc[j] + hsig*ccn*step
		}
		// Covariance update: rank-one + rank-μ (in z-coordinates mapped via L).
		newCov := cov.Clone()
		newCov.Scale(1 - c1 - cmu)
		for a := 0; a < dim; a++ {
			for b := 0; b < dim; b++ {
				newCov.Data[a*dim+b] += c1 * pc[a] * pc[b]
			}
		}
		for i := 0; i < mu; i++ {
			// y_i = (x_i - oldMean)/σ
			for a := 0; a < dim; a++ {
				ya := (pop[i].x[a] - oldMean[a]) / sigma
				for b := 0; b < dim; b++ {
					yb := (pop[i].x[b] - oldMean[b]) / sigma
					newCov.Data[a*dim+b] += cmu * weights[i] * ya * yb
				}
			}
		}
		newCov.Symmetrize()
		cov = newCov
		// Step-size adaptation.
		sigma *= math.Exp((cs / damps) * (psNorm/chiN - 1))
		if sigma < 1e-12 || math.IsNaN(sigma) || math.IsInf(sigma, 0) {
			break
		}
	}
	best.Evals = evals
	return best
}
