// Package opt implements the optimization algorithms GPTune builds on:
//
//   - L-BFGS for maximizing the LCM log-likelihood (paper Section 3.1,
//     modeling phase);
//   - Particle Swarm Optimization for maximizing Expected Improvement
//     (search phase);
//   - NSGA-II for multi-objective search (Section 3.2);
//   - the model-free techniques referenced in Section 5 (Nelder–Mead,
//     differential evolution, simulated annealing, genetic algorithm, greedy
//     hill climbing), which also form the ensemble of the OpenTuner-style
//     baseline tuner.
//
// All box-constrained algorithms operate on the unit hypercube [0,1]^dim;
// callers denormalize via a space.Space.
package opt

import "math/rand"

// Objective is a scalar function to be minimized over [0,1]^dim.
type Objective func(x []float64) float64

// MultiObjective returns γ objective values to be minimized over [0,1]^dim.
type MultiObjective func(x []float64) []float64

// clip01 clamps x into [0,1] in place and returns it.
func clip01(x []float64) []float64 {
	for i, v := range x {
		if v < 0 {
			x[i] = 0
		} else if v > 1 {
			x[i] = 1
		}
	}
	return x
}

// randomPoint draws a uniform point in [0,1]^dim.
func randomPoint(dim int, rng *rand.Rand) []float64 {
	x := make([]float64, dim)
	for i := range x {
		x[i] = rng.Float64()
	}
	return x
}

// Result is the outcome of a single-objective minimization.
type Result struct {
	X     []float64 // minimizer found
	F     float64   // objective value at X
	Evals int       // objective evaluations consumed
}
