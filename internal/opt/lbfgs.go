package opt

import (
	"math"
)

// GradObjective evaluates a scalar function and its gradient at x. The
// gradient must be written into grad (len(grad) == len(x)).
type GradObjective func(x []float64, grad []float64) float64

// LBFGSParams configures the limited-memory BFGS minimizer.
type LBFGSParams struct {
	Memory    int     // history pairs (default 10)
	MaxIter   int     // iteration cap (default 200)
	GradTol   float64 // stop when ‖g‖∞ < GradTol (default 1e-6)
	FTol      float64 // stop on relative f decrease below FTol (default 1e-12)
	MaxLSIter int     // line-search step halvings (default 40)
}

func (p *LBFGSParams) defaults() {
	if p.Memory <= 0 {
		p.Memory = 10
	}
	if p.MaxIter <= 0 {
		p.MaxIter = 200
	}
	if p.GradTol <= 0 {
		p.GradTol = 1e-6
	}
	if p.FTol <= 0 {
		p.FTol = 1e-12
	}
	if p.MaxLSIter <= 0 {
		p.MaxLSIter = 40
	}
}

// LBFGS minimizes an unconstrained smooth function starting from x0 using
// the two-loop-recursion L-BFGS update with Armijo backtracking line search.
// This is the paper's hyperparameter optimizer (Section 3.1 modeling phase,
// citing Liu & Nocedal); positivity constraints on hyperparameters are
// handled by the caller via log-parameterization.
func LBFGS(f GradObjective, x0 []float64, params LBFGSParams) Result {
	params.defaults()
	n := len(x0)
	x := append([]float64(nil), x0...)
	g := make([]float64, n)
	fx := f(x, g)
	evals := 1

	type pair struct {
		s, y []float64
		rho  float64
	}
	var hist []pair

	xNew := make([]float64, n)
	gNew := make([]float64, n)
	dir := make([]float64, n)
	alphaBuf := make([]float64, params.Memory)
	stalls := 0

	for iter := 0; iter < params.MaxIter; iter++ {
		if infNorm(g) < params.GradTol || math.IsNaN(fx) || math.IsInf(fx, 0) {
			break
		}
		// Two-loop recursion: dir = -H·g.
		copy(dir, g)
		m := len(hist)
		for i := m - 1; i >= 0; i-- {
			h := hist[i]
			alphaBuf[i] = h.rho * dot(h.s, dir)
			axpy(-alphaBuf[i], h.y, dir)
		}
		// Initial Hessian scaling γ = sᵀy / yᵀy; with no history yet, scale
		// so the first trial step has unit length (standard first-iteration
		// safeguard).
		if m > 0 {
			h := hist[m-1]
			gamma := dot(h.s, h.y) / dot(h.y, h.y)
			if gamma > 0 && !math.IsInf(gamma, 0) {
				scal(gamma, dir)
			}
		} else if gn := norm2(dir); gn > 1 {
			scal(1/gn, dir)
		}
		for i := 0; i < m; i++ {
			h := hist[i]
			beta := h.rho * dot(h.y, dir)
			axpy(alphaBuf[i]-beta, h.s, dir)
		}
		for i := range dir {
			dir[i] = -dir[i]
		}
		// Descent check; fall back to steepest descent.
		dg := dot(dir, g)
		if dg >= 0 || math.IsNaN(dg) {
			for i := range dir {
				dir[i] = -g[i]
			}
			dg = -dot(g, g)
			hist = hist[:0]
		}

		// Armijo backtracking (with plain-decrease fallback once the step is
		// small, which keeps progress in extremely narrow valleys).
		const c1 = 1e-4
		step := 1.0
		accepted := false
		var fNew float64
		for ls := 0; ls < params.MaxLSIter; ls++ {
			for i := range x {
				xNew[i] = x[i] + step*dir[i]
			}
			fNew = f(xNew, gNew)
			evals++
			if !math.IsNaN(fNew) && (fNew <= fx+c1*step*dg || (ls > 20 && fNew < fx)) {
				accepted = true
				break
			}
			step *= 0.5
		}
		if !accepted {
			// Quasi-Newton direction failed; discard curvature history and
			// retry from steepest descent, unless we already did.
			if len(hist) > 0 {
				hist = hist[:0]
				continue
			}
			break
		}

		// Update history.
		s := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			s[i] = xNew[i] - x[i]
			y[i] = gNew[i] - g[i]
		}
		sy := dot(s, y)
		if sy > 1e-12*norm2(s)*norm2(y) {
			hist = append(hist, pair{s: s, y: y, rho: 1 / sy})
			if len(hist) > params.Memory {
				hist = hist[1:]
			}
		}

		relDrop := (fx - fNew) / math.Max(1, math.Abs(fx))
		copy(x, xNew)
		copy(g, gNew)
		fx = fNew
		// Stop only after several consecutive negligible decreases; a single
		// short backtracked step is normal in narrow valleys (Rosenbrock).
		if relDrop >= 0 && relDrop < params.FTol {
			stalls++
			if stalls >= 5 {
				break
			}
		} else {
			stalls = 0
		}
	}
	return Result{X: x, F: fx, Evals: evals}
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

func axpy(alpha float64, x, y []float64) {
	for i, v := range x {
		y[i] += alpha * v
	}
}

func scal(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

func norm2(x []float64) float64 { return math.Sqrt(dot(x, x)) }

func infNorm(x []float64) float64 {
	m := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}
