package opt

import (
	"math"
	"math/rand"
	"sort"
)

// The remaining model-free optimizers of paper Section 5, also used as the
// technique ensemble inside the OpenTuner-style baseline (Section 6.6).

// RandomSearch evaluates maxEvals uniform points and returns the best.
func RandomSearch(f Objective, dim, maxEvals int, rng *rand.Rand) Result {
	if maxEvals <= 0 {
		maxEvals = 100
	}
	best := Result{F: math.Inf(1)}
	for i := 0; i < maxEvals; i++ {
		x := randomPoint(dim, rng)
		fx := f(x)
		if fx < best.F {
			best = Result{X: x, F: fx}
		}
	}
	best.Evals = maxEvals
	return best
}

// SAParams configures simulated annealing.
type SAParams struct {
	MaxEvals int     // default 200
	T0       float64 // initial temperature (default 1)
	Cooling  float64 // geometric cooling rate (default 0.95)
	StepSize float64 // Gaussian proposal scale (default 0.1)
	Start    []float64
}

// SimulatedAnnealing minimizes f over [0,1]^dim (Kirkpatrick et al. 1983).
func SimulatedAnnealing(f Objective, dim int, params SAParams, rng *rand.Rand) Result {
	if params.MaxEvals <= 0 {
		params.MaxEvals = 200
	}
	if params.T0 <= 0 {
		params.T0 = 1
	}
	if params.Cooling <= 0 || params.Cooling >= 1 {
		params.Cooling = 0.95
	}
	if params.StepSize <= 0 {
		params.StepSize = 0.1
	}
	x := params.Start
	if x == nil {
		x = randomPoint(dim, rng)
	} else {
		x = clip01(append([]float64(nil), x...))
	}
	fx := f(x)
	best := Result{X: append([]float64(nil), x...), F: fx}
	temp := params.T0
	cand := make([]float64, dim)
	for e := 1; e < params.MaxEvals; e++ {
		for d := range cand {
			cand[d] = x[d] + rng.NormFloat64()*params.StepSize
		}
		clip01(cand)
		fc := f(cand)
		if fc < fx || rng.Float64() < math.Exp((fx-fc)/math.Max(temp, 1e-300)) {
			copy(x, cand)
			fx = fc
			if fx < best.F {
				best.F = fx
				copy(best.X, x)
			}
		}
		temp *= params.Cooling
	}
	best.Evals = params.MaxEvals
	return best
}

// HillClimbParams configures greedy hill climbing.
type HillClimbParams struct {
	MaxEvals int     // default 200
	StepSize float64 // initial perturbation scale (default 0.1)
	Start    []float64
}

// HillClimb greedily perturbs one coordinate at a time, shrinking the step
// when no neighbor improves (the "local" family of Section 5; OpenTuner's
// greedy mutation technique analogue).
func HillClimb(f Objective, dim int, params HillClimbParams, rng *rand.Rand) Result {
	if params.MaxEvals <= 0 {
		params.MaxEvals = 200
	}
	if params.StepSize <= 0 {
		params.StepSize = 0.1
	}
	x := params.Start
	if x == nil {
		x = randomPoint(dim, rng)
	} else {
		x = clip01(append([]float64(nil), x...))
	}
	fx := f(x)
	evals := 1
	step := params.StepSize
	cand := make([]float64, dim)
	for evals < params.MaxEvals && step > 1e-9 {
		improved := false
		order := rng.Perm(dim)
		for _, d := range order {
			if evals >= params.MaxEvals {
				break
			}
			for _, sign := range []float64{1, -1} {
				copy(cand, x)
				cand[d] += sign * step
				clip01(cand)
				fc := f(cand)
				evals++
				if fc < fx {
					copy(x, cand)
					fx = fc
					improved = true
					break
				}
				if evals >= params.MaxEvals {
					break
				}
			}
		}
		if !improved {
			step *= 0.5
		}
	}
	return Result{X: x, F: fx, Evals: evals}
}

// DEParams configures differential evolution.
type DEParams struct {
	PopSize  int     // default 10·dim, min 8
	MaxEvals int     // default 300
	F        float64 // differential weight (default 0.7)
	CR       float64 // crossover rate (default 0.9)
}

// DifferentialEvolution minimizes f over [0,1]^dim using DE/rand/1/bin.
func DifferentialEvolution(f Objective, dim int, params DEParams, rng *rand.Rand) Result {
	if params.PopSize <= 0 {
		params.PopSize = 10 * dim
	}
	if params.PopSize < 8 {
		params.PopSize = 8
	}
	if params.MaxEvals <= 0 {
		params.MaxEvals = 300
	}
	if params.F <= 0 {
		params.F = 0.7
	}
	if params.CR <= 0 {
		params.CR = 0.9
	}
	np := params.PopSize
	pop := make([][]float64, np)
	fit := make([]float64, np)
	evals := 0
	best := Result{F: math.Inf(1)}
	for i := range pop {
		pop[i] = randomPoint(dim, rng)
		fit[i] = f(pop[i])
		evals++
		if fit[i] < best.F {
			best = Result{X: append([]float64(nil), pop[i]...), F: fit[i]}
		}
	}
	trial := make([]float64, dim)
	for evals < params.MaxEvals {
		for i := 0; i < np && evals < params.MaxEvals; i++ {
			a, b, c := distinct3(np, i, rng)
			jrand := rng.Intn(dim)
			for d := 0; d < dim; d++ {
				if d == jrand || rng.Float64() < params.CR {
					trial[d] = pop[a][d] + params.F*(pop[b][d]-pop[c][d])
				} else {
					trial[d] = pop[i][d]
				}
			}
			clip01(trial)
			ft := f(trial)
			evals++
			if ft <= fit[i] {
				copy(pop[i], trial)
				fit[i] = ft
				if ft < best.F {
					best.F = ft
					copy(best.X, trial)
				}
			}
		}
	}
	best.Evals = evals
	return best
}

func distinct3(n, exclude int, rng *rand.Rand) (int, int, int) {
	pick := func(taken ...int) int {
		for {
			v := rng.Intn(n)
			ok := v != exclude
			for _, t := range taken {
				if v == t {
					ok = false
				}
			}
			if ok || n <= 3 {
				return v
			}
		}
	}
	a := pick()
	b := pick(a)
	c := pick(a, b)
	return a, b, c
}

// GAParams configures the genetic algorithm.
type GAParams struct {
	PopSize    int     // default 20 (rounded up to even)
	MaxEvals   int     // default 300
	MutationP  float64 // per-gene mutation probability (default 1/dim)
	CrossoverP float64 // default 0.9
	Elite      int     // survivors per generation (default 2)
}

// GeneticAlgorithm minimizes f over [0,1]^dim using tournament selection,
// uniform crossover and Gaussian mutation (Srinivas & Patnaik 1994).
func GeneticAlgorithm(f Objective, dim int, params GAParams, rng *rand.Rand) Result {
	if params.PopSize <= 0 {
		params.PopSize = 20
	}
	if params.PopSize%2 == 1 {
		params.PopSize++
	}
	if params.MaxEvals <= 0 {
		params.MaxEvals = 300
	}
	if params.MutationP <= 0 {
		params.MutationP = 1 / math.Max(1, float64(dim))
	}
	if params.CrossoverP <= 0 {
		params.CrossoverP = 0.9
	}
	if params.Elite <= 0 {
		params.Elite = 2
	}
	np := params.PopSize
	type ind struct {
		x []float64
		f float64
	}
	pop := make([]ind, np)
	evals := 0
	for i := range pop {
		pop[i].x = randomPoint(dim, rng)
		pop[i].f = f(pop[i].x)
		evals++
	}
	sort.Slice(pop, func(i, j int) bool { return pop[i].f < pop[j].f })
	tourney := func() ind {
		a, b := pop[rng.Intn(np)], pop[rng.Intn(np)]
		if a.f < b.f {
			return a
		}
		return b
	}
	for evals < params.MaxEvals {
		next := make([]ind, 0, np)
		next = append(next, pop[:params.Elite]...)
		for len(next) < np && evals < params.MaxEvals {
			p1, p2 := tourney(), tourney()
			c := make([]float64, dim)
			for d := 0; d < dim; d++ {
				if rng.Float64() < params.CrossoverP && rng.Float64() < 0.5 {
					c[d] = p2.x[d]
				} else {
					c[d] = p1.x[d]
				}
				if rng.Float64() < params.MutationP {
					c[d] += rng.NormFloat64() * 0.1
				}
			}
			clip01(c)
			next = append(next, ind{x: c, f: f(c)})
			evals++
		}
		pop = next
		sort.Slice(pop, func(i, j int) bool { return pop[i].f < pop[j].f })
	}
	return Result{X: pop[0].x, F: pop[0].f, Evals: evals}
}
