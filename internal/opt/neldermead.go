package opt

import (
	"math"
	"math/rand"
	"sort"
)

// NelderMeadParams configures the downhill simplex method.
type NelderMeadParams struct {
	MaxEvals int // objective evaluation budget (default 200)
	Start    []float64
	Scale    float64 // initial simplex edge length (default 0.1)
}

// NelderMead minimizes f over [0,1]^dim with the Nelder–Mead simplex method
// (one of the "local" model-free approaches of paper Section 5). Points are
// clipped to the box.
func NelderMead(f Objective, dim int, params NelderMeadParams, rng *rand.Rand) Result {
	if params.MaxEvals <= 0 {
		params.MaxEvals = 200
	}
	if params.Scale <= 0 {
		params.Scale = 0.1
	}
	const (
		alpha = 1.0 // reflection
		gamma = 2.0 // expansion
		rho   = 0.5 // contraction
		sigma = 0.5 // shrink
	)
	evals := 0
	eval := func(x []float64) float64 {
		evals++
		return f(clip01(x))
	}

	// Initial simplex around the start point.
	start := params.Start
	if start == nil {
		start = randomPoint(dim, rng)
	}
	type vertex struct {
		x []float64
		f float64
	}
	simplex := make([]vertex, dim+1)
	simplex[0] = vertex{x: clip01(append([]float64(nil), start...))}
	simplex[0].f = eval(simplex[0].x)
	for i := 1; i <= dim; i++ {
		x := append([]float64(nil), start...)
		x[i-1] += params.Scale
		if x[i-1] > 1 {
			x[i-1] = start[i-1] - params.Scale
		}
		simplex[i] = vertex{x: clip01(x)}
		simplex[i].f = eval(simplex[i].x)
	}

	centroid := make([]float64, dim)
	for evals < params.MaxEvals {
		sort.Slice(simplex, func(i, j int) bool { return simplex[i].f < simplex[j].f })
		best, worst := simplex[0], simplex[dim]
		// Convergence: simplex collapsed.
		spread := 0.0
		for i := 1; i <= dim; i++ {
			for d := 0; d < dim; d++ {
				spread = math.Max(spread, math.Abs(simplex[i].x[d]-best.x[d]))
			}
		}
		if spread < 1e-10 {
			break
		}
		// Centroid of all but the worst.
		for d := range centroid {
			centroid[d] = 0
		}
		for i := 0; i < dim; i++ {
			for d := 0; d < dim; d++ {
				centroid[d] += simplex[i].x[d]
			}
		}
		for d := range centroid {
			centroid[d] /= float64(dim)
		}
		// Reflection.
		xr := make([]float64, dim)
		for d := range xr {
			xr[d] = centroid[d] + alpha*(centroid[d]-worst.x[d])
		}
		fr := eval(xr)
		switch {
		case fr < best.f:
			// Expansion.
			xe := make([]float64, dim)
			for d := range xe {
				xe[d] = centroid[d] + gamma*(xr[d]-centroid[d])
			}
			fe := eval(xe)
			if fe < fr {
				simplex[dim] = vertex{x: xe, f: fe}
			} else {
				simplex[dim] = vertex{x: xr, f: fr}
			}
		case fr < simplex[dim-1].f:
			simplex[dim] = vertex{x: xr, f: fr}
		default:
			// Contraction.
			xc := make([]float64, dim)
			for d := range xc {
				xc[d] = centroid[d] + rho*(worst.x[d]-centroid[d])
			}
			fc := eval(xc)
			if fc < worst.f {
				simplex[dim] = vertex{x: xc, f: fc}
			} else {
				// Shrink toward the best vertex.
				for i := 1; i <= dim; i++ {
					for d := 0; d < dim; d++ {
						simplex[i].x[d] = best.x[d] + sigma*(simplex[i].x[d]-best.x[d])
					}
					simplex[i].f = eval(simplex[i].x)
					if evals >= params.MaxEvals {
						break
					}
				}
			}
		}
	}
	sort.Slice(simplex, func(i, j int) bool { return simplex[i].f < simplex[j].f })
	return Result{X: simplex[0].x, F: simplex[0].f, Evals: evals}
}
