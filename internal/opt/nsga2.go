package opt

import (
	"math"
	"math/rand"
	"sort"
)

// NSGAIIParams configures the NSGA-II multi-objective evolutionary algorithm
// (Deb et al. 2002), which GPTune's multi-objective search phase relies on
// (paper Section 3.2).
type NSGAIIParams struct {
	PopSize      int     // population size (default 40, rounded up to even)
	Generations  int     // generations (default 50)
	CrossoverEta float64 // SBX distribution index (default 15)
	MutationEta  float64 // polynomial mutation index (default 20)
	CrossoverP   float64 // crossover probability (default 0.9)
	MutationP    float64 // per-gene mutation probability (default 1/dim)
	Seeds        [][]float64
}

func (p *NSGAIIParams) defaults(dim int) {
	if p.PopSize <= 0 {
		p.PopSize = 40
	}
	if p.PopSize%2 == 1 {
		p.PopSize++
	}
	if p.Generations <= 0 {
		p.Generations = 50
	}
	if p.CrossoverEta <= 0 {
		p.CrossoverEta = 15
	}
	if p.MutationEta <= 0 {
		p.MutationEta = 20
	}
	if p.CrossoverP <= 0 {
		p.CrossoverP = 0.9
	}
	if p.MutationP <= 0 {
		p.MutationP = 1 / math.Max(1, float64(dim))
	}
}

type individual struct {
	x        []float64
	f        []float64
	rank     int
	crowding float64
}

// ParetoResult is one non-dominated point found by NSGAII.
type ParetoResult struct {
	X []float64
	F []float64
}

// NSGAII minimizes all components of f over [0,1]^dim and returns the final
// population's first non-dominated front.
func NSGAII(f MultiObjective, dim int, params NSGAIIParams, rng *rand.Rand) []ParetoResult {
	params.defaults(dim)
	n := params.PopSize

	pop := make([]*individual, 0, n)
	for i := 0; i < n; i++ {
		var x []float64
		if i < len(params.Seeds) {
			x = clip01(append([]float64(nil), params.Seeds[i]...))
		} else {
			x = randomPoint(dim, rng)
		}
		pop = append(pop, &individual{x: x, f: f(x)})
	}
	rankAndCrowd(pop)

	for gen := 0; gen < params.Generations; gen++ {
		// Offspring via binary tournament + SBX + polynomial mutation.
		offspring := make([]*individual, 0, n)
		for len(offspring) < n {
			p1 := tournament(pop, rng)
			p2 := tournament(pop, rng)
			c1, c2 := sbxCrossover(p1.x, p2.x, params, rng)
			polyMutate(c1, params, rng)
			polyMutate(c2, params, rng)
			offspring = append(offspring, &individual{x: c1, f: f(c1)})
			if len(offspring) < n {
				offspring = append(offspring, &individual{x: c2, f: f(c2)})
			}
		}
		// Environmental selection over parents ∪ offspring.
		union := append(append([]*individual{}, pop...), offspring...)
		rankAndCrowd(union)
		sort.SliceStable(union, func(i, j int) bool { return crowdedLess(union[i], union[j]) })
		pop = union[:n]
		rankAndCrowd(pop)
	}

	var front []ParetoResult
	for _, ind := range pop {
		if ind.rank == 0 {
			front = append(front, ParetoResult{
				X: append([]float64(nil), ind.x...),
				F: append([]float64(nil), ind.f...),
			})
		}
	}
	return dedupFront(front)
}

// dedupFront removes exact duplicates in objective space.
func dedupFront(front []ParetoResult) []ParetoResult {
	out := front[:0]
	for _, p := range front {
		dup := false
		for _, q := range out {
			same := true
			for k := range p.F {
				if p.F[k] != q.F[k] { //gptlint:ignore float-eq exact duplicate detection on stored objective vectors
					same = false
					break
				}
			}
			if same {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, p)
		}
	}
	return out
}

func tournament(pop []*individual, rng *rand.Rand) *individual {
	a := pop[rng.Intn(len(pop))]
	b := pop[rng.Intn(len(pop))]
	if crowdedLess(a, b) {
		return a
	}
	return b
}

// crowdedLess implements NSGA-II's crowded-comparison operator: lower rank
// first; within a rank, larger crowding distance first.
func crowdedLess(a, b *individual) bool {
	if a.rank != b.rank {
		return a.rank < b.rank
	}
	return a.crowding > b.crowding
}

// Dominates reports whether objective vector a Pareto-dominates b
// (all components ≤ and at least one <), minimizing.
func Dominates(a, b []float64) bool {
	strictly := false
	for i := range a {
		if a[i] > b[i] {
			return false
		}
		if a[i] < b[i] {
			strictly = true
		}
	}
	return strictly
}

// rankAndCrowd assigns non-domination ranks (fast non-dominated sort) and
// per-front crowding distances.
func rankAndCrowd(pop []*individual) {
	n := len(pop)
	dominatedBy := make([][]int, n) // indices i dominates
	domCount := make([]int, n)      // how many dominate i
	var current []int
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if Dominates(pop[i].f, pop[j].f) {
				dominatedBy[i] = append(dominatedBy[i], j)
			} else if Dominates(pop[j].f, pop[i].f) {
				domCount[i]++
			}
		}
		if domCount[i] == 0 {
			pop[i].rank = 0
			current = append(current, i)
		}
	}
	rank := 0
	for len(current) > 0 {
		crowdFront(pop, current)
		var next []int
		for _, i := range current {
			for _, j := range dominatedBy[i] {
				domCount[j]--
				if domCount[j] == 0 {
					pop[j].rank = rank + 1
					next = append(next, j)
				}
			}
		}
		rank++
		current = next
	}
}

// crowdFront computes crowding distances for the individuals whose indices
// are listed in front.
func crowdFront(pop []*individual, front []int) {
	m := len(front)
	if m == 0 {
		return
	}
	for _, i := range front {
		pop[i].crowding = 0
	}
	nObj := len(pop[front[0]].f)
	idx := append([]int(nil), front...)
	for k := 0; k < nObj; k++ {
		sort.Slice(idx, func(a, b int) bool { return pop[idx[a]].f[k] < pop[idx[b]].f[k] })
		lo, hi := pop[idx[0]].f[k], pop[idx[m-1]].f[k]
		pop[idx[0]].crowding = math.Inf(1)
		pop[idx[m-1]].crowding = math.Inf(1)
		if hi == lo { //gptlint:ignore float-eq degenerate-range guard; equal extremes would divide by zero
			continue
		}
		for a := 1; a < m-1; a++ {
			pop[idx[a]].crowding += (pop[idx[a+1]].f[k] - pop[idx[a-1]].f[k]) / (hi - lo)
		}
	}
}

// sbxCrossover performs simulated binary crossover, returning two children.
func sbxCrossover(p1, p2 []float64, params NSGAIIParams, rng *rand.Rand) ([]float64, []float64) {
	dim := len(p1)
	c1 := append([]float64(nil), p1...)
	c2 := append([]float64(nil), p2...)
	if rng.Float64() > params.CrossoverP {
		return c1, c2
	}
	for d := 0; d < dim; d++ {
		if rng.Float64() > 0.5 || math.Abs(p1[d]-p2[d]) < 1e-14 {
			continue
		}
		u := rng.Float64()
		var beta float64
		if u <= 0.5 {
			beta = math.Pow(2*u, 1/(params.CrossoverEta+1))
		} else {
			beta = math.Pow(1/(2*(1-u)), 1/(params.CrossoverEta+1))
		}
		x1, x2 := p1[d], p2[d]
		c1[d] = 0.5 * ((1+beta)*x1 + (1-beta)*x2)
		c2[d] = 0.5 * ((1-beta)*x1 + (1+beta)*x2)
	}
	clip01(c1)
	clip01(c2)
	return c1, c2
}

// polyMutate applies polynomial mutation in place.
func polyMutate(x []float64, params NSGAIIParams, rng *rand.Rand) {
	for d := range x {
		if rng.Float64() > params.MutationP {
			continue
		}
		u := rng.Float64()
		var delta float64
		if u < 0.5 {
			delta = math.Pow(2*u, 1/(params.MutationEta+1)) - 1
		} else {
			delta = 1 - math.Pow(2*(1-u), 1/(params.MutationEta+1))
		}
		x[d] += delta
	}
	clip01(x)
}
