package opt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// sphere has its minimum 0 at center c.
func sphere(c []float64) Objective {
	return func(x []float64) float64 {
		s := 0.0
		for i, v := range x {
			d := v - c[i]
			s += d * d
		}
		return s
	}
}

// rastrigin01 is the Rastrigin function rescaled to [0,1]^d with minimum 0
// at 0.5 in each coordinate: a standard multimodal stress test.
func rastrigin01(x []float64) float64 {
	s := 10.0 * float64(len(x))
	for _, v := range x {
		z := (v - 0.5) * 10.24 // map to [-5.12, 5.12]
		s += z*z - 10*math.Cos(2*math.Pi*z)
	}
	return s
}

func TestLBFGSQuadratic(t *testing.T) {
	// f(x) = Σ w_i (x_i - c_i)², analytic gradient; must reach the exact
	// minimum in a handful of iterations.
	c := []float64{1.5, -2, 0.25, 7}
	w := []float64{1, 10, 0.1, 3}
	f := func(x, g []float64) float64 {
		s := 0.0
		for i := range x {
			d := x[i] - c[i]
			s += w[i] * d * d
			g[i] = 2 * w[i] * d
		}
		return s
	}
	res := LBFGS(f, []float64{0, 0, 0, 0}, LBFGSParams{})
	if res.F > 1e-10 {
		t.Fatalf("LBFGS quadratic: f = %v at %v", res.F, res.X)
	}
	for i := range c {
		if math.Abs(res.X[i]-c[i]) > 1e-5 {
			t.Fatalf("x[%d] = %v, want %v", i, res.X[i], c[i])
		}
	}
}

func TestLBFGSRosenbrock(t *testing.T) {
	f := func(x, g []float64) float64 {
		a, b := x[0], x[1]
		g[0] = -400*a*(b-a*a) - 2*(1-a)
		g[1] = 200 * (b - a*a)
		return 100*(b-a*a)*(b-a*a) + (1-a)*(1-a)
	}
	res := LBFGS(f, []float64{-1.2, 1}, LBFGSParams{MaxIter: 500})
	if res.F > 1e-8 {
		t.Fatalf("Rosenbrock: f = %v at %v after %d evals", res.F, res.X, res.Evals)
	}
}

func TestLBFGSHandlesNaNStart(t *testing.T) {
	f := func(x, g []float64) float64 {
		g[0] = math.NaN()
		return math.NaN()
	}
	res := LBFGS(f, []float64{1}, LBFGSParams{})
	if len(res.X) != 1 {
		t.Fatalf("result shape wrong")
	}
}

func TestPSOSphere(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := []float64{0.3, 0.7, 0.5}
	res := PSO(sphere(c), 3, PSOParams{Particles: 30, MaxIter: 80}, rng)
	if res.F > 1e-4 {
		t.Fatalf("PSO sphere: f = %v at %v", res.F, res.X)
	}
}

func TestPSOSeeds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := []float64{0.111, 0.222}
	// Seed the exact optimum; PSO must keep it as global best.
	res := PSO(sphere(c), 2, PSOParams{Particles: 5, MaxIter: 3, Seeds: [][]float64{c}}, rng)
	if res.F > 1e-12 {
		t.Fatalf("seeded optimum lost: f = %v", res.F)
	}
}

func TestPSOStaysInBox(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(x []float64) float64 {
		for _, v := range x {
			if v < 0 || v > 1 {
				t.Fatalf("PSO evaluated out-of-box point %v", x)
			}
		}
		return -x[0] // push toward the boundary
	}
	res := PSO(f, 2, PSOParams{Particles: 10, MaxIter: 50}, rng)
	if res.X[0] < 0.99 {
		t.Fatalf("PSO did not reach boundary: %v", res.X)
	}
}

func TestNelderMeadSphere(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := []float64{0.4, 0.6}
	res := NelderMead(sphere(c), 2, NelderMeadParams{MaxEvals: 400, Start: []float64{0.9, 0.1}}, rng)
	if res.F > 1e-6 {
		t.Fatalf("NelderMead: f = %v at %v", res.F, res.X)
	}
}

func TestSimulatedAnnealingImproves(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	start := []float64{0.95, 0.95}
	f := sphere([]float64{0.2, 0.2})
	res := SimulatedAnnealing(f, 2, SAParams{MaxEvals: 2000, Start: start}, rng)
	if res.F >= f(start) {
		t.Fatalf("SA did not improve: %v >= %v", res.F, f(start))
	}
	if res.F > 0.05 {
		t.Fatalf("SA too far from optimum: f = %v", res.F)
	}
}

func TestHillClimbConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	c := []float64{0.25, 0.75, 0.5}
	res := HillClimb(sphere(c), 3, HillClimbParams{MaxEvals: 2000, Start: []float64{0, 0, 0}}, rng)
	if res.F > 1e-4 {
		t.Fatalf("HillClimb: f = %v at %v", res.F, res.X)
	}
}

func TestDifferentialEvolutionMultimodal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	res := DifferentialEvolution(rastrigin01, 2, DEParams{MaxEvals: 4000}, rng)
	if res.F > 2 {
		t.Fatalf("DE rastrigin: f = %v at %v", res.F, res.X)
	}
}

func TestGeneticAlgorithmSphere(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	res := GeneticAlgorithm(sphere([]float64{0.6, 0.4}), 2, GAParams{MaxEvals: 3000}, rng)
	if res.F > 1e-2 {
		t.Fatalf("GA: f = %v at %v", res.F, res.X)
	}
}

func TestRandomSearchBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	count := 0
	f := func(x []float64) float64 { count++; return x[0] }
	res := RandomSearch(f, 1, 57, rng)
	if count != 57 || res.Evals != 57 {
		t.Fatalf("budget not respected: %d evals", count)
	}
}

func TestDominates(t *testing.T) {
	cases := []struct {
		a, b []float64
		want bool
	}{
		{[]float64{1, 2}, []float64{2, 3}, true},
		{[]float64{1, 2}, []float64{1, 2}, false},
		{[]float64{1, 3}, []float64{2, 2}, false},
		{[]float64{1, 2}, []float64{1, 3}, true},
	}
	for i, c := range cases {
		if got := Dominates(c.a, c.b); got != c.want {
			t.Errorf("case %d: Dominates(%v,%v) = %v", i, c.a, c.b, got)
		}
	}
}

// Property: no point in the NSGA-II front dominates another.
func TestNSGAIIFrontIsNonDominated(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	// Classic convex bi-objective: f1 = x0, f2 = 1 - sqrt(x0) + penalty.
	f := func(x []float64) []float64 {
		g := 1.0
		for _, v := range x[1:] {
			g += 9 * v / float64(len(x)-1)
		}
		f1 := x[0]
		f2 := g * (1 - math.Sqrt(f1/g))
		return []float64{f1, f2}
	}
	front := NSGAII(f, 4, NSGAIIParams{PopSize: 40, Generations: 60}, rng)
	if len(front) < 5 {
		t.Fatalf("front too small: %d", len(front))
	}
	for i := range front {
		for j := range front {
			if i != j && Dominates(front[i].F, front[j].F) {
				t.Fatalf("front point %v dominates %v", front[i].F, front[j].F)
			}
		}
	}
	// ZDT1 front: f2 = 1 - sqrt(f1); verify points are near it.
	for _, p := range front {
		want := 1 - math.Sqrt(p.F[0])
		if p.F[1]-want > 0.3 {
			t.Fatalf("front point (%v, %v) far from true front (%v)", p.F[0], p.F[1], want)
		}
	}
}

// Property: fast non-dominated sort agrees with a brute-force rank
// computation on random populations.
func TestRankAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		pop := make([]*individual, n)
		for i := range pop {
			pop[i] = &individual{f: []float64{rng.Float64(), rng.Float64()}}
		}
		rankAndCrowd(pop)
		// Brute force: rank 0 = non-dominated; rank k = non-dominated after
		// removing ranks < k.
		want := make([]int, n)
		assigned := make([]bool, n)
		for rank := 0; ; rank++ {
			var frontIdx []int
			for i := range pop {
				if assigned[i] {
					continue
				}
				dominated := false
				for j := range pop {
					if j == i || assigned[j] {
						continue
					}
					if Dominates(pop[j].f, pop[i].f) {
						dominated = true
						break
					}
				}
				if !dominated {
					frontIdx = append(frontIdx, i)
				}
			}
			if len(frontIdx) == 0 {
				break
			}
			for _, i := range frontIdx {
				want[i] = rank
				assigned[i] = true
			}
		}
		for i := range pop {
			if pop[i].rank != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSBXAndMutationStayInBox(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	params := NSGAIIParams{}
	params.defaults(3)
	for trial := 0; trial < 200; trial++ {
		p1 := randomPoint(3, rng)
		p2 := randomPoint(3, rng)
		c1, c2 := sbxCrossover(p1, p2, params, rng)
		polyMutate(c1, params, rng)
		polyMutate(c2, params, rng)
		for _, c := range [][]float64{c1, c2} {
			for _, v := range c {
				if v < 0 || v > 1 {
					t.Fatalf("child out of box: %v", c)
				}
			}
		}
	}
}

func TestDedupFront(t *testing.T) {
	front := []ParetoResult{
		{F: []float64{1, 2}},
		{F: []float64{1, 2}},
		{F: []float64{2, 1}},
	}
	got := dedupFront(front)
	if len(got) != 2 {
		t.Fatalf("dedup kept %d points", len(got))
	}
}

func TestCMAESSphere(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	c := []float64{0.35, 0.65, 0.5}
	res := CMAES(sphere(c), 3, CMAESParams{MaxEvals: 2000}, rng)
	if res.F > 1e-6 {
		t.Fatalf("CMAES sphere: f = %v at %v", res.F, res.X)
	}
}

func TestCMAESRosenbrock01(t *testing.T) {
	// Rosenbrock scaled into [0,1]²: minimum at (0.75, 0.75) after mapping
	// x ∈ [-1, 3] per dim... simpler: use banana centered in the box.
	rng := rand.New(rand.NewSource(21))
	f := func(x []float64) float64 {
		a := 4*x[0] - 2 // [-2, 2]
		b := 4*x[1] - 2
		return 100*(b-a*a)*(b-a*a) + (1-a)*(1-a)
	}
	res := CMAES(f, 2, CMAESParams{MaxEvals: 6000}, rng)
	if res.F > 1e-3 {
		t.Fatalf("CMAES rosenbrock: f = %v at %v", res.F, res.X)
	}
}

func TestCMAESMultimodal(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	res := CMAES(rastrigin01, 2, CMAESParams{MaxEvals: 4000, Sigma: 0.5}, rng)
	if res.F > 3 {
		t.Fatalf("CMAES rastrigin: f = %v at %v", res.F, res.X)
	}
}

func TestCMAESRespectsBudgetAndBox(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	count := 0
	f := func(x []float64) float64 {
		count++
		for _, v := range x {
			if v < 0 || v > 1 {
				t.Fatalf("out-of-box evaluation %v", x)
			}
		}
		return -x[0]
	}
	res := CMAES(f, 2, CMAESParams{MaxEvals: 300}, rng)
	if count > 300 || res.Evals != count {
		t.Fatalf("budget violated: %d evals", count)
	}
	if res.X[0] < 0.95 {
		t.Fatalf("boundary optimum missed: %v", res.X)
	}
}
