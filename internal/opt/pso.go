package opt

import (
	"math"
	"math/rand"
)

// PSOParams configures the particle swarm optimizer.
type PSOParams struct {
	Particles int     // swarm size (default 20)
	MaxIter   int     // iterations (default 50)
	Inertia   float64 // velocity inertia ω (default 0.729)
	Cognitive float64 // personal-best pull c1 (default 1.49445)
	Social    float64 // global-best pull c2 (default 1.49445)
	// Seeds are optional initial positions included in the swarm (e.g. the
	// incumbent best sample, per standard EGO practice).
	Seeds [][]float64
}

func (p *PSOParams) defaults() {
	if p.Particles <= 0 {
		p.Particles = 20
	}
	if p.MaxIter <= 0 {
		p.MaxIter = 50
	}
	if p.Inertia == 0 { //gptlint:ignore float-eq zero is the unset-parameter sentinel in defaults
		p.Inertia = 0.729
	}
	if p.Cognitive == 0 { //gptlint:ignore float-eq zero is the unset-parameter sentinel in defaults
		p.Cognitive = 1.49445
	}
	if p.Social == 0 { //gptlint:ignore float-eq zero is the unset-parameter sentinel in defaults
		p.Social = 1.49445
	}
}

// PSO minimizes f over [0,1]^dim with global-best particle swarm
// optimization. GPTune's search phase maximizes the EI acquisition with PSO
// (paper Section 3.1); callers pass f = -EI.
func PSO(f Objective, dim int, params PSOParams, rng *rand.Rand) Result {
	params.defaults()
	np := params.Particles
	if extra := len(params.Seeds); extra > 0 && np < extra {
		np = extra
	}

	pos := make([][]float64, np)
	vel := make([][]float64, np)
	pBest := make([][]float64, np)
	pBestF := make([]float64, np)
	evals := 0

	gBest := make([]float64, dim)
	gBestF := math.Inf(1)

	for i := 0; i < np; i++ {
		if i < len(params.Seeds) {
			pos[i] = clip01(append([]float64(nil), params.Seeds[i]...))
		} else {
			pos[i] = randomPoint(dim, rng)
		}
		vel[i] = make([]float64, dim)
		for d := range vel[i] {
			vel[i][d] = (rng.Float64() - 0.5) * 0.2
		}
		pBest[i] = append([]float64(nil), pos[i]...)
		pBestF[i] = f(pos[i])
		evals++
		if pBestF[i] < gBestF {
			gBestF = pBestF[i]
			copy(gBest, pos[i])
		}
	}

	for iter := 0; iter < params.MaxIter; iter++ {
		for i := 0; i < np; i++ {
			for d := 0; d < dim; d++ {
				r1, r2 := rng.Float64(), rng.Float64()
				vel[i][d] = params.Inertia*vel[i][d] +
					params.Cognitive*r1*(pBest[i][d]-pos[i][d]) +
					params.Social*r2*(gBest[d]-pos[i][d])
				pos[i][d] += vel[i][d]
				// Reflecting bounds keep particles exploring the interior.
				if pos[i][d] < 0 {
					pos[i][d] = -pos[i][d]
					vel[i][d] = -vel[i][d]
				}
				if pos[i][d] > 1 {
					pos[i][d] = 2 - pos[i][d]
					vel[i][d] = -vel[i][d]
				}
				if pos[i][d] < 0 || pos[i][d] > 1 { // huge velocity: clamp
					pos[i][d] = rng.Float64()
				}
			}
			fx := f(pos[i])
			evals++
			if fx < pBestF[i] {
				pBestF[i] = fx
				copy(pBest[i], pos[i])
				if fx < gBestF {
					gBestF = fx
					copy(gBest, pos[i])
				}
			}
		}
	}
	return Result{X: gBest, F: gBestF, Evals: evals}
}
