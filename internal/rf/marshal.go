// Portable serialization of fitted forests. Unlike a GP, a forest's entire
// predictive state is its trees, so a snapshot round-trips to a model that
// predicts bitwise identically — no refitting or factorization needed.
package rf

import (
	"encoding/json"
	"errors"
	"fmt"
)

// treeSnapshot is one tree in columnar wire form (one array per node field;
// leaves have feature −1).
type treeSnapshot struct {
	Feature   []int     `json:"f"`
	Threshold []float64 `json:"t"`
	Left      []int32   `json:"l"`
	Right     []int32   `json:"r"`
	Value     []float64 `json:"v"`
}

// forestSnapshot is the wire form of a fitted forest.
type forestSnapshot struct {
	Dim   int            `json:"dim"`
	Trees []treeSnapshot `json:"trees"`
}

// MarshalBinary encodes the fitted forest into a self-contained snapshot.
func (f *Forest) MarshalBinary() ([]byte, error) {
	snap := forestSnapshot{Dim: f.dim, Trees: make([]treeSnapshot, len(f.trees))}
	for i := range f.trees {
		nodes := f.trees[i].nodes
		ts := treeSnapshot{
			Feature:   make([]int, len(nodes)),
			Threshold: make([]float64, len(nodes)),
			Left:      make([]int32, len(nodes)),
			Right:     make([]int32, len(nodes)),
			Value:     make([]float64, len(nodes)),
		}
		for j, n := range nodes {
			ts.Feature[j] = n.feature
			ts.Threshold[j] = n.threshold
			ts.Left[j] = n.left
			ts.Right[j] = n.right
			ts.Value[j] = n.value
		}
		snap.Trees[i] = ts
	}
	return json.Marshal(snap)
}

// UnmarshalBinary decodes a snapshot produced by MarshalBinary, validating
// the tree structure so a corrupt snapshot fails here rather than as an
// out-of-bounds walk at prediction time.
func (f *Forest) UnmarshalBinary(data []byte) error {
	var snap forestSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("rf: decoding forest snapshot: %w", err)
	}
	if snap.Dim <= 0 {
		return errors.New("rf: forest snapshot missing dimension")
	}
	trees := make([]tree, len(snap.Trees))
	for i, ts := range snap.Trees {
		n := len(ts.Feature)
		if n == 0 || len(ts.Threshold) != n || len(ts.Left) != n || len(ts.Right) != n || len(ts.Value) != n {
			return fmt.Errorf("rf: forest snapshot tree %d has mismatched node arrays", i)
		}
		nodes := make([]node, n)
		for j := 0; j < n; j++ {
			nd := node{
				feature:   ts.Feature[j],
				threshold: ts.Threshold[j],
				left:      ts.Left[j],
				right:     ts.Right[j],
				value:     ts.Value[j],
			}
			if nd.feature >= snap.Dim {
				return fmt.Errorf("rf: forest snapshot tree %d node %d splits on feature %d of %d", i, j, nd.feature, snap.Dim)
			}
			if nd.feature >= 0 && (nd.left <= int32(j) || nd.right <= int32(j) || int(nd.left) >= n || int(nd.right) >= n) {
				// Children always sit after their parent in the arena; a
				// backward edge would make prediction loop forever.
				return fmt.Errorf("rf: forest snapshot tree %d node %d has invalid children", i, j)
			}
			nodes[j] = nd
		}
		trees[i] = tree{nodes: nodes}
	}
	f.dim = snap.Dim
	f.trees = trees
	return nil
}
