// Package rf implements random-forest regression from scratch: CART
// regression trees (variance-reduction splits) grown on bootstrap resamples
// with per-split feature subsampling, and ensemble mean/variance
// prediction. It is the substrate for the SuRF-style baseline tuner
// (Balaprakash's "Search using Random Forest", discussed in the paper's
// Section 5), whose strength is the natural handling of categorical
// parameters via axis-aligned splits.
package rf

import (
	"errors"
	"math"
	"math/rand"
	"sort"

	"repro/internal/mpx"
)

// Params configures forest growth.
type Params struct {
	Trees       int     // ensemble size (default 50)
	MaxDepth    int     // depth cap (default 12)
	MinLeaf     int     // minimum samples per leaf (default 2)
	FeatureFrac float64 // fraction of features tried per split (default 1/3, min 1)
	Seed        int64
	// Workers bounds the goroutine parallelism of tree growth (default 1).
	// The fitted forest is bitwise independent of the worker count: every
	// tree owns an RNG seeded by its tree index, never by which goroutine
	// grew it, so scheduling cannot leak into the ensemble.
	Workers int
}

func (p *Params) defaults() {
	if p.Trees <= 0 {
		p.Trees = 50
	}
	if p.MaxDepth <= 0 {
		p.MaxDepth = 12
	}
	if p.MinLeaf <= 0 {
		p.MinLeaf = 2
	}
	if p.FeatureFrac <= 0 || p.FeatureFrac > 1 {
		p.FeatureFrac = 1.0 / 3
	}
	if p.Workers <= 0 {
		p.Workers = 1
	}
}

// node is one tree node; leaves have feature == -1.
type node struct {
	feature     int
	threshold   float64
	left, right int32 // child indices in the tree's node arena
	value       float64
}

// tree is a grown regression tree over an arena of nodes.
type tree struct {
	nodes []node
}

func (t *tree) predict(x []float64) float64 {
	i := int32(0)
	for {
		n := &t.nodes[i]
		if n.feature < 0 {
			return n.value
		}
		if x[n.feature] <= n.threshold {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// Forest is a fitted random-forest regressor.
type Forest struct {
	trees []tree
	dim   int
}

// Fit grows a forest on rows X (each of equal length) and targets y.
func Fit(X [][]float64, y []float64, params Params) (*Forest, error) {
	if len(X) == 0 || len(X) != len(y) {
		return nil, errors.New("rf: need equally many rows and targets")
	}
	params.defaults()
	dim := len(X[0])
	for _, row := range X {
		if len(row) != dim {
			return nil, errors.New("rf: ragged feature rows")
		}
	}
	mtry := int(math.Ceil(params.FeatureFrac * float64(dim)))
	if mtry < 1 {
		mtry = 1
	}
	f := &Forest{dim: dim, trees: make([]tree, params.Trees)}
	// Trees grow in parallel but each draws from its own RNG seeded by the
	// tree index, so the forest never depends on goroutine scheduling.
	mpx.ParallelFor(params.Trees, params.Workers, func(b int) {
		rng := rand.New(rand.NewSource(params.Seed + int64(b)*2654435761))
		// Bootstrap resample.
		idx := make([]int, len(X))
		for i := range idx {
			idx[i] = rng.Intn(len(X))
		}
		g := &grower{
			X: X, y: y, rng: rng,
			maxDepth: params.MaxDepth, minLeaf: params.MinLeaf, mtry: mtry,
		}
		g.grow(idx, 0)
		f.trees[b] = tree{nodes: g.nodes}
	})
	return f, nil
}

// grower builds one tree.
type grower struct {
	X        [][]float64
	y        []float64
	rng      *rand.Rand
	maxDepth int
	minLeaf  int
	mtry     int
	nodes    []node
}

// grow recursively splits the sample set idx, returning the node index.
func (g *grower) grow(idx []int, depth int) int32 {
	mean := 0.0
	for _, i := range idx {
		mean += g.y[i]
	}
	mean /= float64(len(idx))

	self := int32(len(g.nodes))
	g.nodes = append(g.nodes, node{feature: -1, value: mean})
	if depth >= g.maxDepth || len(idx) < 2*g.minLeaf {
		return self
	}
	feature, threshold, ok := g.bestSplit(idx)
	if !ok {
		return self
	}
	var left, right []int
	for _, i := range idx {
		if g.X[i][feature] <= threshold {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < g.minLeaf || len(right) < g.minLeaf {
		return self
	}
	l := g.grow(left, depth+1)
	r := g.grow(right, depth+1)
	g.nodes[self].feature = feature
	g.nodes[self].threshold = threshold
	g.nodes[self].left = l
	g.nodes[self].right = r
	return self
}

// bestSplit finds the (feature, threshold) minimizing the weighted child
// SSE over an mtry-subset of features.
func (g *grower) bestSplit(idx []int) (int, float64, bool) {
	features := g.rng.Perm(len(g.X[0]))[:g.mtry]
	bestSSE := math.Inf(1)
	bestFeature, bestThreshold := -1, 0.0

	vals := make([]float64, len(idx))
	order := make([]int, len(idx))
	for _, feat := range features {
		for k, i := range idx {
			vals[k] = g.X[i][feat]
			order[k] = k
		}
		sort.Slice(order, func(a, b int) bool { return vals[order[a]] < vals[order[b]] })
		// Incremental SSE scan: maintain left/right sums.
		var sumL, sumSqL float64
		sumR, sumSqR := 0.0, 0.0
		for _, i := range idx {
			sumR += g.y[i]
			sumSqR += g.y[i] * g.y[i]
		}
		nL, nR := 0.0, float64(len(idx))
		for k := 0; k < len(order)-1; k++ {
			yi := g.y[idx[order[k]]]
			sumL += yi
			sumSqL += yi * yi
			sumR -= yi
			sumSqR -= yi * yi
			nL++
			nR--
			v, next := vals[order[k]], vals[order[k+1]]
			if v == next {
				continue // can't split between equal values
			}
			sse := (sumSqL - sumL*sumL/nL) + (sumSqR - sumR*sumR/nR)
			if sse < bestSSE {
				bestSSE = sse
				bestFeature = feat
				bestThreshold = (v + next) / 2
			}
		}
	}
	return bestFeature, bestThreshold, bestFeature >= 0
}

// Predict returns the ensemble mean and across-tree variance at x — the
// variance serving as the (crude but useful) uncertainty estimate for
// acquisition functions.
func (f *Forest) Predict(x []float64) (mean, variance float64) {
	if len(x) != f.dim {
		panic("rf: prediction dimension mismatch")
	}
	n := float64(len(f.trees))
	for i := range f.trees {
		mean += f.trees[i].predict(x)
	}
	mean /= n
	for i := range f.trees {
		d := f.trees[i].predict(x) - mean
		variance += d * d
	}
	variance /= n
	return mean, variance
}

// NumTrees returns the ensemble size.
func (f *Forest) NumTrees() int { return len(f.trees) }
