package rf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFitRejectsBadInput(t *testing.T) {
	if _, err := Fit(nil, nil, Params{}); err == nil {
		t.Fatalf("empty input accepted")
	}
	if _, err := Fit([][]float64{{1}}, []float64{1, 2}, Params{}); err == nil {
		t.Fatalf("length mismatch accepted")
	}
	if _, err := Fit([][]float64{{1, 2}, {3}}, []float64{1, 2}, Params{}); err == nil {
		t.Fatalf("ragged rows accepted")
	}
}

func TestForestFitsStepFunction(t *testing.T) {
	// Trees should nail an axis-aligned step exactly.
	var X [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		x := float64(i) / 200
		X = append(X, []float64{x})
		if x < 0.5 {
			y = append(y, 1)
		} else {
			y = append(y, 3)
		}
	}
	f, err := Fit(X, y, Params{Trees: 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	lo, _ := f.Predict([]float64{0.2})
	hi, _ := f.Predict([]float64{0.8})
	if math.Abs(lo-1) > 0.1 || math.Abs(hi-3) > 0.1 {
		t.Fatalf("step not learned: %v %v", lo, hi)
	}
}

func TestForestFitsSmoothFunction(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var X [][]float64
	var y []float64
	truth := func(x []float64) float64 { return math.Sin(4*x[0]) + x[1]*x[1] }
	for i := 0; i < 400; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		X = append(X, x)
		y = append(y, truth(x))
	}
	f, err := Fit(X, y, Params{Trees: 60, Seed: 3, FeatureFrac: 1})
	if err != nil {
		t.Fatal(err)
	}
	mse := 0.0
	for i := 0; i < 100; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		mean, _ := f.Predict(x)
		d := mean - truth(x)
		mse += d * d
	}
	mse /= 100
	if mse > 0.05 {
		t.Fatalf("MSE %v too high", mse)
	}
}

func TestVarianceHigherOffData(t *testing.T) {
	// Train only on x < 0.5; the across-tree variance should be lower in
	// the trained region than at the far extrapolation edge.
	rng := rand.New(rand.NewSource(4))
	var X [][]float64
	var y []float64
	for i := 0; i < 150; i++ {
		x := rng.Float64() * 0.5
		X = append(X, []float64{x})
		y = append(y, math.Sin(10*x))
	}
	f, err := Fit(X, y, Params{Trees: 50, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	_, vIn := f.Predict([]float64{0.25})
	// Averaged variance over several extrapolation points.
	vOut := 0.0
	for _, x := range []float64{0.9, 0.95, 1.0} {
		_, v := f.Predict([]float64{x})
		vOut += v
	}
	vOut /= 3
	if vIn < 0 || vOut < 0 {
		t.Fatalf("negative variance")
	}
	if f.NumTrees() != 50 {
		t.Fatalf("NumTrees = %d", f.NumTrees())
	}
	_ = vIn // extrapolation variance is not guaranteed higher for trees; only sanity-check non-negativity
}

func TestCategoricalSplits(t *testing.T) {
	// Feature 0 is a category index {0,1,2} with distinct means; the forest
	// must separate them (the SuRF selling point).
	var X [][]float64
	var y []float64
	means := []float64{1, 5, -2}
	for rep := 0; rep < 60; rep++ {
		for c := 0; c < 3; c++ {
			X = append(X, []float64{float64(c)})
			y = append(y, means[c])
		}
	}
	f, err := Fit(X, y, Params{Trees: 20, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 3; c++ {
		mean, _ := f.Predict([]float64{float64(c)})
		if math.Abs(mean-means[c]) > 0.2 {
			t.Fatalf("category %d: predicted %v, want %v", c, mean, means[c])
		}
	}
}

// Property: predictions are bounded by the observed target range (tree
// leaves are averages of training targets).
func TestPredictionsWithinTargetRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(50)
		var X [][]float64
		var y []float64
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < n; i++ {
			X = append(X, []float64{rng.Float64(), rng.Float64()})
			v := rng.NormFloat64()
			y = append(y, v)
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		forest, err := Fit(X, y, Params{Trees: 10, Seed: seed})
		if err != nil {
			return false
		}
		for trial := 0; trial < 20; trial++ {
			mean, _ := forest.Predict([]float64{rng.Float64(), rng.Float64()})
			if mean < lo-1e-9 || mean > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var X [][]float64
	var y []float64
	for i := 0; i < 50; i++ {
		X = append(X, []float64{rng.Float64()})
		y = append(y, rng.Float64())
	}
	f1, _ := Fit(X, y, Params{Trees: 10, Seed: 42})
	f2, _ := Fit(X, y, Params{Trees: 10, Seed: 42})
	for i := 0; i < 10; i++ {
		x := []float64{float64(i) / 10}
		m1, v1 := f1.Predict(x)
		m2, v2 := f2.Predict(x)
		if m1 != m2 || v1 != v2 {
			t.Fatalf("same seed diverged at %v", x)
		}
	}
}

// TestForestDeterministicAcrossWorkers mirrors core/determinism_test.go: the
// fitted forest must be bitwise independent of the worker count, because each
// tree's RNG is seeded by the tree index rather than goroutine scheduling.
func TestForestDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var X [][]float64
	var y []float64
	for i := 0; i < 120; i++ {
		x := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		X = append(X, x)
		y = append(y, math.Sin(3*x[0])+x[1]-x[2]*x[2]+0.1*rng.NormFloat64())
	}
	serial, err := Fit(X, y, Params{Trees: 24, Seed: 17, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Fit(X, y, Params{Trees: 24, Seed: 17, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 50; k++ {
		x := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		m1, v1 := serial.Predict(x)
		m8, v8 := parallel.Predict(x)
		if math.Float64bits(m1) != math.Float64bits(m8) || math.Float64bits(v1) != math.Float64bits(v8) {
			t.Fatalf("workers=1 vs workers=8 diverged at %v: (%v,%v) vs (%v,%v)", x, m1, v1, m8, v8)
		}
	}
}

// TestForestMarshalRoundTrip: a saved-and-reloaded forest predicts bitwise
// identically (the snapshot carries the complete predictive state).
func TestForestMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var X [][]float64
	var y []float64
	for i := 0; i < 80; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		X = append(X, x)
		y = append(y, x[0]*x[1]+rng.NormFloat64()*0.05)
	}
	f, err := Fit(X, y, Params{Trees: 15, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Forest
	if err := back.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if back.NumTrees() != f.NumTrees() {
		t.Fatalf("tree count differs: %d vs %d", back.NumTrees(), f.NumTrees())
	}
	for k := 0; k < 40; k++ {
		x := []float64{rng.Float64(), rng.Float64()}
		mA, vA := f.Predict(x)
		mB, vB := back.Predict(x)
		if math.Float64bits(mA) != math.Float64bits(mB) || math.Float64bits(vA) != math.Float64bits(vB) {
			t.Fatalf("prediction diverged after round trip at %v", x)
		}
	}
}

// TestForestUnmarshalRejectsCorruptSnapshots exercises the validation paths.
func TestForestUnmarshalRejectsCorruptSnapshots(t *testing.T) {
	var f Forest
	for _, bad := range []string{
		"not json",
		`{}`,
		`{"dim":1,"trees":[{"f":[0],"t":[0.5],"l":[1],"r":[2],"v":[0]}]}`,   // children out of range
		`{"dim":1,"trees":[{"f":[1],"t":[0.5],"l":[],"r":[],"v":[]}]}`,      // mismatched arrays
		`{"dim":1,"trees":[{"f":[3],"t":[0.5],"l":[-1],"r":[-1],"v":[0]}]}`, // feature beyond dim
	} {
		if err := f.UnmarshalBinary([]byte(bad)); err == nil {
			t.Errorf("snapshot %q accepted", bad)
		}
	}
}
