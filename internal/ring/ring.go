// Package ring implements rendezvous (highest-random-weight) hashing: a
// consistent assignment of string keys — study names — to a set of nodes —
// gptuned replicas. Every party that knows the same node list computes the
// same owner for a key with no coordination, and removing a node reassigns
// only the keys that node owned: every other key keeps its owner, which is
// what lets a router eject a dead replica without reshuffling live studies.
//
// Rendezvous was chosen over a ketama-style virtual-node circle because the
// replica counts here are small (units to tens): O(n) per lookup is
// negligible, the balance is as good as the hash with no vnode tuning, and
// the "every node ranked per key" form directly yields the failover order a
// router wants.
package ring

import (
	"sort"
)

// Ring is an immutable rendezvous hash over a set of node names. The zero
// value is an empty ring (no owners); build real rings with New. Methods are
// safe for concurrent use — a Ring never mutates after New.
type Ring struct {
	nodes []string // sorted, deduplicated
}

// New builds a ring over the given nodes. Duplicates and empty names are
// dropped; the node order does not matter (assignment depends only on the
// set).
func New(nodes ...string) *Ring {
	seen := make(map[string]bool, len(nodes))
	uniq := make([]string, 0, len(nodes))
	for _, n := range nodes {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		uniq = append(uniq, n)
	}
	sort.Strings(uniq)
	return &Ring{nodes: uniq}
}

// Nodes returns the ring's node set, sorted.
func (r *Ring) Nodes() []string {
	return append([]string(nil), r.nodes...)
}

// Len returns the number of nodes.
func (r *Ring) Len() int { return len(r.nodes) }

// Owner returns the node responsible for key, or "" and false on an empty
// ring. The owner is the node with the highest hash weight for the key; ties
// (astronomically unlikely with a 64-bit hash) break toward the
// lexicographically smaller node so every computation agrees.
func (r *Ring) Owner(key string) (string, bool) {
	if len(r.nodes) == 0 {
		return "", false
	}
	best := r.nodes[0]
	bestW := weight(r.nodes[0], key)
	for _, n := range r.nodes[1:] {
		if w := weight(n, key); w > bestW {
			best, bestW = n, w
		}
	}
	return best, true
}

// Ranked returns every node ordered by descending weight for key: Ranked[0]
// is the owner, Ranked[1] the node the key moves to if the owner dies, and
// so on — the failover/migration order for the key.
func (r *Ring) Ranked(key string) []string {
	type pair struct {
		n string
		w uint64
	}
	ps := make([]pair, len(r.nodes))
	for i, n := range r.nodes {
		ps[i] = pair{n, weight(n, key)}
	}
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].w != ps[j].w {
			return ps[i].w > ps[j].w
		}
		return ps[i].n < ps[j].n
	})
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.n
	}
	return out
}

// Without returns a ring over this ring's nodes minus the given ones — the
// healthy view a router routes on after ejecting dead replicas.
func (r *Ring) Without(nodes ...string) *Ring {
	drop := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		drop[n] = true
	}
	keep := make([]string, 0, len(r.nodes))
	for _, n := range r.nodes {
		if !drop[n] {
			keep = append(keep, n)
		}
	}
	return &Ring{nodes: keep}
}

// weight is the rendezvous score of (node, key): FNV-1a over node, a zero
// separator (node and key are length-delimited by it; names never contain
// NUL), then key, finished with an avalanche mix so near-identical inputs
// spread over the full 64-bit range.
func weight(node, key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(node); i++ {
		h ^= uint64(node[i])
		h *= prime64
	}
	h ^= 0
	h *= prime64
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	// splitmix64 finalizer: FNV alone is weak in its low bits for short
	// inputs; the mix makes the max-weight winner effectively uniform.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}
