package ring

import (
	"fmt"
	"testing"
)

func names(n int, prefix string) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s-%d", prefix, i)
	}
	return out
}

// TestOwnerDeterministicAndOrderInvariant: the assignment depends only on
// the node set, never on the order the nodes were listed in — a client and a
// router configured with permuted replica lists must agree on every study's
// home.
func TestOwnerDeterministicAndOrderInvariant(t *testing.T) {
	a := New("n0", "n1", "n2")
	b := New("n2", "n0", "n1", "n0") // permuted, with a duplicate
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("study-%d", i)
		oa, ok := a.Owner(key)
		if !ok {
			t.Fatal("owner not found on non-empty ring")
		}
		ob, _ := b.Owner(key)
		if oa != ob {
			t.Fatalf("key %s: owner %s on ring a, %s on permuted ring b", key, oa, ob)
		}
	}
}

// TestEmptyRing: the zero value and New() both report no owner.
func TestEmptyRing(t *testing.T) {
	var zero Ring
	if _, ok := zero.Owner("x"); ok {
		t.Error("zero ring claimed an owner")
	}
	if _, ok := New().Owner("x"); ok {
		t.Error("empty ring claimed an owner")
	}
	if got := New("", "", "").Len(); got != 0 {
		t.Errorf("ring over empty names has %d nodes, want 0", got)
	}
}

// TestMinimalDisruption is the property consistent hashing exists for:
// removing one node must reassign exactly the keys that node owned and leave
// every other key's owner unchanged.
func TestMinimalDisruption(t *testing.T) {
	nodes := names(5, "replica")
	r := New(nodes...)
	const keys = 1000
	owner := make(map[string]string, keys)
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("study-%d", i)
		o, _ := r.Owner(k)
		owner[k] = o
	}
	dead := nodes[2]
	r2 := r.Without(dead)
	if r2.Len() != len(nodes)-1 {
		t.Fatalf("Without left %d nodes, want %d", r2.Len(), len(nodes)-1)
	}
	moved := 0
	for k, o := range owner {
		o2, ok := r2.Owner(k)
		if !ok {
			t.Fatal("no owner after removal")
		}
		if o == dead {
			moved++
			if o2 == dead {
				t.Fatalf("key %s still assigned to removed node", k)
			}
			continue
		}
		if o2 != o {
			t.Fatalf("key %s moved %s -> %s although its owner %s survived", k, o, o2, o)
		}
	}
	if moved == 0 {
		t.Fatal("removed node owned no keys; balance test invalid")
	}
}

// TestBalance: with a 64-bit mixed hash, 5 nodes over 5000 keys should each
// own roughly a fifth; a node outside [10%, 35%] means the weight function
// is broken, not unlucky.
func TestBalance(t *testing.T) {
	nodes := names(5, "http://replica")
	r := New(nodes...)
	counts := make(map[string]int)
	const keys = 5000
	for i := 0; i < keys; i++ {
		o, _ := r.Owner(fmt.Sprintf("study-%d", i))
		counts[o]++
	}
	for _, n := range nodes {
		frac := float64(counts[n]) / keys
		if frac < 0.10 || frac > 0.35 {
			t.Errorf("node %s owns %.1f%% of keys, want ~20%%", n, 100*frac)
		}
	}
}

// TestRankedIsFailoverOrder: Ranked[0] is the owner; dropping the first k
// ranked nodes makes Ranked[k] the owner — the failover chain a router
// walks as replicas die.
func TestRankedIsFailoverOrder(t *testing.T) {
	r := New(names(4, "n")...)
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("study-%d", i)
		ranked := r.Ranked(key)
		if len(ranked) != 4 {
			t.Fatalf("Ranked returned %d nodes, want 4", len(ranked))
		}
		cur := r
		for k := 0; k < 3; k++ {
			o, _ := cur.Owner(key)
			if o != ranked[k] {
				t.Fatalf("key %s: after %d removals owner is %s, Ranked says %s", key, k, o, ranked[k])
			}
			cur = cur.Without(ranked[k])
		}
	}
}

// TestWithoutUnknownNode: removing a node that is not in the ring is a no-op.
func TestWithoutUnknownNode(t *testing.T) {
	r := New("a", "b")
	r2 := r.Without("zzz")
	if r2.Len() != 2 {
		t.Fatalf("removing unknown node changed ring size to %d", r2.Len())
	}
	for i := 0; i < 20; i++ {
		k := fmt.Sprintf("s%d", i)
		a, _ := r.Owner(k)
		b, _ := r2.Owner(k)
		if a != b {
			t.Fatalf("key %s changed owner after removing an unknown node", k)
		}
	}
}
