// Package router is the thin consistent-hash proxy in front of a set of
// gptuned replicas: dumb clients (curl, non-Go stacks, the bench harness in
// cluster mode) talk to one address and the router forwards each
// study-scoped request to the study's rendezvous owner (internal/ring) on
// the *healthy* subset of the replica set. A background probe loop health-
// checks every replica's /healthz and ejects nodes that fail repeatedly —
// gptuned's draining 503 (graceful shutdown in progress) ejects a replica
// just like a dead TCP connection does, so rolling restarts drain traffic
// before the WALs close.
//
// The router holds no study state: placement is a pure function of the
// healthy node set and the study name, the same function the gptune/client
// package computes client-side. Re-homing a study after a replica loss is
// the operator's (or test harness's) move — snapshot-import the dead node's
// WAL onto a survivor through POST /studies/import, which the router routes
// by the archive's study name exactly like a create.
package router

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httputil"
	"net/url"
	"sort"
	"sync"
	"time"

	"repro/internal/mpx"
	"repro/internal/ring"
)

// Config configures a Router.
type Config struct {
	// Replicas lists gptuned base URLs ("http://host:port"). Required.
	Replicas []string
	// ProbeEvery is the health-probe period. Default 1s.
	ProbeEvery time.Duration
	// ProbeTimeout bounds one probe request. Default 2s.
	ProbeTimeout time.Duration
	// FailThreshold is how many consecutive probe failures eject a replica.
	// A single success re-admits it. Default 3.
	FailThreshold int
	// MaxPeekBytes caps how much of a POST /studies or /studies/import body
	// the router buffers to learn the study name. Default 64 MiB (an import
	// carries a whole study's WAL).
	MaxPeekBytes int64
}

// Router proxies the gptuned API across replicas. Build with New, serve
// Handler, and call Start to begin health probing (Stop to halt it).
type Router struct {
	cfg     Config
	all     *ring.Ring
	proxies map[string]*httputil.ReverseProxy
	probeHC *http.Client

	mu       sync.Mutex
	failures map[string]int // consecutive probe failures per replica
	ejected  map[string]bool

	stop chan struct{}
	wg   sync.WaitGroup
}

// New builds a router over the replica set.
func New(cfg Config) (*Router, error) {
	all := ring.New(cfg.Replicas...)
	if all.Len() == 0 {
		return nil, errors.New("router: Config.Replicas is required")
	}
	if cfg.ProbeEvery <= 0 {
		cfg.ProbeEvery = time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = 3
	}
	if cfg.MaxPeekBytes <= 0 {
		cfg.MaxPeekBytes = 64 << 20
	}
	rt := &Router{
		cfg:      cfg,
		all:      all,
		proxies:  make(map[string]*httputil.ReverseProxy, all.Len()),
		probeHC:  &http.Client{Timeout: cfg.ProbeTimeout},
		failures: make(map[string]int),
		ejected:  make(map[string]bool),
		stop:     make(chan struct{}),
	}
	for _, rep := range all.Nodes() {
		target, err := url.Parse(rep)
		if err != nil {
			return nil, fmt.Errorf("router: replica %q: %w", rep, err)
		}
		rep := rep
		rt.proxies[rep] = &httputil.ReverseProxy{
			Rewrite: func(pr *httputil.ProxyRequest) { pr.SetURL(target) },
			// A proxy error is evidence as strong as a failed probe: count
			// it toward ejection immediately instead of waiting for the
			// probe loop to notice, and answer 503 (not the default 502) so
			// the retrying client treats it like any draining replica.
			ErrorHandler: func(w http.ResponseWriter, r *http.Request, err error) {
				rt.recordFailure(rep)
				w.Header().Set("Retry-After", "1")
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusServiceUnavailable)
				fmt.Fprintf(w, `{"error":"router: replica unavailable: %s"}`, rep)
			},
		}
	}
	return rt, nil
}

// Start launches the background health-probe loop.
func (rt *Router) Start() {
	mpx.Go(&rt.wg, rt.probeLoop)
}

// Stop halts the probe loop and waits for it.
func (rt *Router) Stop() {
	close(rt.stop)
	rt.wg.Wait()
}

func (rt *Router) probeLoop() {
	t := time.NewTicker(rt.cfg.ProbeEvery)
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
			for _, rep := range rt.all.Nodes() {
				rt.probe(rep)
			}
		}
	}
}

// probe health-checks one replica: any 200 /healthz re-admits it, anything
// else (error, non-200 — including gptuned's draining 503) counts toward
// ejection.
func (rt *Router) probe(rep string) {
	resp, err := rt.probeHC.Get(rep + "/healthz")
	if err == nil {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			rt.mu.Lock()
			rt.failures[rep] = 0
			rt.ejected[rep] = false
			rt.mu.Unlock()
			return
		}
	}
	rt.recordFailure(rep)
}

func (rt *Router) recordFailure(rep string) {
	rt.mu.Lock()
	rt.failures[rep]++
	if rt.failures[rep] >= rt.cfg.FailThreshold {
		rt.ejected[rep] = true
	}
	rt.mu.Unlock()
}

// Healthy returns the replicas currently routed to, sorted.
func (rt *Router) Healthy() []string {
	return rt.healthyRing().Nodes()
}

func (rt *Router) healthyRing() *ring.Ring {
	rt.mu.Lock()
	var dead []string
	for rep, out := range rt.ejected {
		if out {
			dead = append(dead, rep)
		}
	}
	rt.mu.Unlock()
	return rt.all.Without(dead...)
}

// Handler returns the router's HTTP surface: the full gptuned API routed by
// study name, plus the router's own /healthz.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", rt.handleHealth)
	mux.HandleFunc("GET /studies", rt.handleList)
	mux.HandleFunc("POST /studies", rt.handleCreate)
	mux.HandleFunc("POST /studies/import", rt.handleImport)
	mux.HandleFunc("/studies/{study}", rt.handleStudy)
	mux.HandleFunc("/studies/{study}/{verb}", rt.handleStudy)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func (rt *Router) writeNoReplicas(w http.ResponseWriter) {
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "router: no healthy replicas"})
}

// forward proxies the request to the healthy owner of study.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, study string) {
	owner, ok := rt.healthyRing().Owner(study)
	if !ok {
		rt.writeNoReplicas(w)
		return
	}
	rt.proxies[owner].ServeHTTP(w, r)
}

func (rt *Router) handleStudy(w http.ResponseWriter, r *http.Request) {
	rt.forward(w, r, r.PathValue("study"))
}

// handleCreate peeks the spec's name out of the buffered body, restores the
// body, and forwards to the name's owner — the one place the router must
// read a payload to route it.
func (rt *Router) handleCreate(w http.ResponseWriter, r *http.Request) {
	var peek struct {
		Name string `json:"name"`
	}
	if !rt.peekBody(w, r, &peek) {
		return
	}
	rt.forward(w, r, peek.Name)
}

func (rt *Router) handleImport(w http.ResponseWriter, r *http.Request) {
	var peek struct {
		Spec struct {
			Name string `json:"name"`
		} `json:"spec"`
	}
	if !rt.peekBody(w, r, &peek) {
		return
	}
	rt.forward(w, r, peek.Spec.Name)
}

// peekBody buffers the request body (capped), decodes the routing fields
// into v leniently (unknown fields are the replica's to validate), and
// replaces r.Body so the proxy forwards the full payload. Returns false
// with the HTTP error written when the body is unreadable or not JSON.
func (rt *Router) peekBody(w http.ResponseWriter, r *http.Request, v any) bool {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxPeekBytes))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "router: reading body: " + err.Error()})
		return false
	}
	if err := json.Unmarshal(data, v); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "router: body is not JSON: " + err.Error()})
		return false
	}
	r.Body = io.NopCloser(bytes.NewReader(data))
	r.ContentLength = int64(len(data))
	return true
}

// handleList fans GET /studies out to every healthy replica and merges the
// names — the one read that spans the cluster.
func (rt *Router) handleList(w http.ResponseWriter, r *http.Request) {
	healthy := rt.healthyRing().Nodes()
	if len(healthy) == 0 {
		rt.writeNoReplicas(w)
		return
	}
	seen := make(map[string]bool)
	var firstErr error
	for _, rep := range healthy {
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, rep+"/studies", nil)
		if err != nil {
			firstErr = err
			continue
		}
		resp, err := rt.probeHC.Do(req)
		if err != nil {
			rt.recordFailure(rep)
			firstErr = err
			continue
		}
		var body struct {
			Studies []string `json:"studies"`
		}
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if err != nil {
			firstErr = err
			continue
		}
		for _, s := range body.Studies {
			seen[s] = true
		}
	}
	if len(seen) == 0 && firstErr != nil {
		writeJSON(w, http.StatusBadGateway, map[string]string{"error": "router: listing studies: " + firstErr.Error()})
		return
	}
	names := make([]string, 0, len(seen))
	for s := range seen {
		names = append(names, s)
	}
	sort.Strings(names)
	writeJSON(w, http.StatusOK, map[string]any{"studies": names})
}

// replicaHealth is one replica's row in the router's /healthz payload.
type replicaHealth struct {
	Healthy  bool `json:"healthy"`
	Failures int  `json:"failures,omitempty"`
}

// handleHealth reports the router's own view: 200 while at least one
// replica is routable, 503 otherwise.
func (rt *Router) handleHealth(w http.ResponseWriter, _ *http.Request) {
	rt.mu.Lock()
	detail := make(map[string]replicaHealth, rt.all.Len())
	healthy := 0
	for _, rep := range rt.all.Nodes() {
		h := !rt.ejected[rep]
		if h {
			healthy++
		}
		detail[rep] = replicaHealth{Healthy: h, Failures: rt.failures[rep]}
	}
	rt.mu.Unlock()
	code := http.StatusOK
	status := "ok"
	if healthy == 0 {
		code, status = http.StatusServiceUnavailable, "no healthy replicas"
	}
	writeJSON(w, code, map[string]any{"status": status, "healthy": healthy, "replicas": detail})
}
