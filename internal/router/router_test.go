package router

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"repro/gptune/client"
	"repro/internal/apps/analytical"
	"repro/internal/histdb"
	"repro/internal/ring"
	"repro/internal/serve"
)

// paperObjective is Eq. (11), shared from the analytical app.
var paperObjective = analytical.Objective

var testTasks = [][]float64{{0}, {1.5}, {3}}

func testSpec(name string, epsTot int, seed int64) client.StudySpec {
	return client.StudySpec{
		Name:       name,
		TaskParams: []client.ParamSpec{{Name: "t", Kind: "real", Lo: 0, Hi: 10}},
		Tuning:     []client.ParamSpec{{Name: "x", Kind: "real", Lo: 0, Hi: 1}},
		Outputs:    []string{"y"},
		Tasks:      testTasks,
		Options:    client.OptionsSpec{EpsTot: epsTot, Seed: seed, Workers: 1},
	}
}

// replica is one in-process gptuned: a serve.Server with its own data dir
// behind an httptest listener.
type replica struct {
	srv  *serve.Server
	hs   *httptest.Server
	dir  string
	dead bool
}

func startReplica(t *testing.T) *replica {
	t.Helper()
	dir := t.TempDir()
	s, err := serve.NewServer(serve.Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	rep := &replica{srv: s, hs: hs, dir: dir}
	t.Cleanup(func() {
		if !rep.dead {
			rep.hs.Close()
			rep.srv.Close()
		}
	})
	return rep
}

// kill simulates a hard replica loss (the PR-4 SIGKILL style, in-process):
// the listener and every live connection close abruptly, and the
// serve.Server is never Close()d — no flush, no Quiesce, no teardown. What
// is on disk is exactly what fsync already put there, which is the
// crash-consistency the WAL guarantees.
func (r *replica) kill() {
	r.dead = true
	r.hs.Listener.Close()
	r.hs.CloseClientConnections()
}

// archiveFromDisk rebuilds a study's transfer archive from a dead replica's
// data directory — the operator's recovery path when the process is gone
// and GET /snapshot can't answer.
func archiveFromDisk(t *testing.T, s *serve.Server, dir, study string) client.StudyArchive {
	t.Helper()
	specData, err := os.ReadFile(s.SpecPath(study))
	if err != nil {
		t.Fatal(err)
	}
	var spec client.StudySpec
	if err := json.Unmarshal(specData, &spec); err != nil {
		t.Fatal(err)
	}
	arc := client.StudyArchive{Spec: spec}
	if snap, err := os.ReadFile(s.HistPath(study)); err == nil {
		arc.Snapshot = snap
	} else if !os.IsNotExist(err) {
		t.Fatal(err)
	}
	wal, err := os.ReadFile(histdb.WalPath(s.HistPath(study)))
	if err != nil {
		t.Fatal(err)
	}
	arc.WAL = wal
	return arc
}

func startRouter(t *testing.T, reps ...*replica) (*Router, *httptest.Server) {
	t.Helper()
	urls := make([]string, len(reps))
	for i, r := range reps {
		urls[i] = r.hs.URL
	}
	rt, err := New(Config{Replicas: urls, ProbeEvery: 20 * time.Millisecond, ProbeTimeout: 500 * time.Millisecond, FailThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	hs := httptest.NewServer(rt.Handler())
	t.Cleanup(func() { hs.Close(); rt.Stop() })
	return rt, hs
}

func newClient(t *testing.T, base string) *client.Client {
	t.Helper()
	c, err := client.New(client.Config{
		Replicas:    []string{base},
		Timeout:     10 * time.Second,
		MaxRetries:  8,
		BaseBackoff: 2 * time.Millisecond,
		MaxBackoff:  50 * time.Millisecond,
		JitterSeed:  3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// drive runs the suggest/evaluate/report loop through a client until the
// budget is exhausted (maxCycles < 0) or maxCycles evaluations were paid.
func drive(t *testing.T, c *client.Client, study string, maxCycles int) int {
	t.Helper()
	ctx := context.Background()
	paid := 0
	for maxCycles < 0 || paid < maxCycles {
		sg, err := c.Suggest(ctx, study, -1)
		if errors.Is(err, client.ErrDone) {
			break
		}
		if errors.Is(err, client.ErrNonePending) {
			continue
		}
		if err != nil {
			t.Fatalf("suggest: %v", err)
		}
		y := paperObjective(testTasks[sg.Task][0], sg.X[0])
		if err := c.Report(ctx, study, sg.ID, []float64{y}); err != nil {
			t.Fatalf("report: %v", err)
		}
		paid++
	}
	return paid
}

// TestPlacementMatchesRing: studies created through the router land on
// exactly their rendezvous owner, and GET /studies through the router
// merges all replicas' listings.
func TestPlacementMatchesRing(t *testing.T) {
	a, b := startReplica(t), startReplica(t)
	_, rhs := startRouter(t, a, b)
	c := newClient(t, rhs.URL)
	rg := ring.New(a.hs.URL, b.hs.URL)

	names := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	ctx := context.Background()
	for _, n := range names {
		if err := c.Create(ctx, testSpec(n, 4, 5)); err != nil {
			t.Fatalf("create %s: %v", n, err)
		}
	}
	// Ask each replica directly who it hosts.
	hosts := func(rep *replica) map[string]bool {
		resp, err := http.Get(rep.hs.URL + "/studies")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body struct {
			Studies []string `json:"studies"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		out := make(map[string]bool)
		for _, s := range body.Studies {
			out[s] = true
		}
		return out
	}
	onA, onB := hosts(a), hosts(b)
	for _, n := range names {
		owner, _ := rg.Owner(n)
		wantA := owner == a.hs.URL
		if onA[n] != wantA || onB[n] == wantA {
			t.Fatalf("study %s: owner %s but hosted a=%v b=%v", n, owner, onA[n], onB[n])
		}
	}
	// The router's merged list sees every study regardless of placement.
	merged, err := c.Studies(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != len(names) {
		t.Fatalf("router list: %v, want %d studies", merged, len(names))
	}
}

// TestEjectionAndRouterHealth: a dead replica is ejected by the probe loop,
// the router's /healthz reports it, and with every replica dead the router
// answers 503.
func TestEjectionAndRouterHealth(t *testing.T) {
	a, b := startReplica(t), startReplica(t)
	rt, rhs := startRouter(t, a, b)

	waitHealthy := func(want int) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if len(rt.Healthy()) == want {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Fatalf("router never settled at %d healthy replicas (have %v)", want, rt.Healthy())
	}
	waitHealthy(2)
	a.kill()
	waitHealthy(1)
	if got := rt.Healthy(); len(got) != 1 || got[0] != b.hs.URL {
		t.Fatalf("healthy after kill: %v", got)
	}
	resp, err := http.Get(rhs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h struct {
		Status   string                   `json:"status"`
		Healthy  int                      `json:"healthy"`
		Replicas map[string]replicaHealth `json:"replicas"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || h.Healthy != 1 || h.Replicas[a.hs.URL].Healthy {
		t.Fatalf("router health after kill: %d %+v", resp.StatusCode, h)
	}

	b.kill()
	waitHealthy(0)
	resp, err = http.Get(rhs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("router health with no replicas: %d, want 503", resp.StatusCode)
	}
}

// TestReplicaKillRecoveryBitwise is the PR's acceptance test: a study
// created through the router survives the hard kill of its home replica.
// The dead node's on-disk WAL (crash-consistent by construction) is
// archived and imported through the router onto the survivor, which resumes
// with bitwise-identical history and re-pays zero logged evaluations.
func TestReplicaKillRecoveryBitwise(t *testing.T) {
	const study, epsTot, seed = "recovery", 8, 13

	// Reference: an uninterrupted run of the same spec on one server.
	ref := startReplica(t)
	refC := newClient(t, ref.hs.URL)
	if err := refC.Create(context.Background(), testSpec(study, epsTot, seed)); err != nil {
		t.Fatal(err)
	}
	refPaid := drive(t, refC, study, -1)
	refHist, err := refC.History(context.Background(), study)
	if err != nil {
		t.Fatal(err)
	}

	// Cluster: two replicas behind the router.
	a, b := startReplica(t), startReplica(t)
	rt, rhs := startRouter(t, a, b)
	c := newClient(t, rhs.URL)
	ctx := context.Background()
	if err := c.Create(ctx, testSpec(study, epsTot, seed)); err != nil {
		t.Fatal(err)
	}
	// Which replica is home?
	rg := ring.New(a.hs.URL, b.hs.URL)
	owner, _ := rg.Owner(study)
	home, survivor := a, b
	if owner == b.hs.URL {
		home, survivor = b, a
	}

	firstPaid := drive(t, c, study, 7)
	home.kill()

	// Wait for ejection so the import routes to the survivor.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		h := rt.Healthy()
		if len(h) == 1 && h[0] == survivor.hs.URL {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Re-home from the dead node's disk. Every evaluation the client paid
	// was acked only after its WAL append fsync'd, so the files hold all
	// of them.
	arc := archiveFromDisk(t, home.srv, home.dir, study)
	if err := c.Import(ctx, arc); err != nil {
		t.Fatalf("import onto survivor: %v", err)
	}
	st, err := c.Status(ctx, study)
	if err != nil {
		t.Fatal(err)
	}
	if st.Logged != firstPaid {
		t.Fatalf("survivor recovered %d logged evaluations, client paid %d before the kill", st.Logged, firstPaid)
	}

	secondPaid := drive(t, c, study, -1)
	if firstPaid+secondPaid != refPaid {
		t.Fatalf("paid %d+%d evaluations across the kill, uninterrupted run paid %d — logged work was re-paid",
			firstPaid, secondPaid, refPaid)
	}
	gotHist, err := c.History(ctx, study)
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := json.Marshal(refHist)
	bj, _ := json.Marshal(gotHist)
	if string(aj) != string(bj) {
		t.Fatalf("recovered history differs from the uninterrupted run\nref: %s\ngot: %s", aj, bj)
	}
}
