package sample

import (
	"fmt"
	"math/rand"

	"repro/internal/space"
)

// halton/QMC support: a deterministic low-discrepancy alternative to Latin
// hypercube sampling for the initial design. The Halton sequence uses the
// radical-inverse function in coprime prime bases per dimension; the
// scrambled variant applies a random digit permutation per base, which
// breaks the correlation artifacts of high-dimensional plain Halton while
// keeping low discrepancy.

// first 20 primes: enough bases for every tuning space in this repository
// (β ≤ 12 in the paper's applications).
var primes = []int{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71}

// MaxHaltonDim is the largest dimension Halton sampling supports.
//
// (Variable rather than constant because len of a slice is not a Go
// compile-time constant; treat it as read-only.)
var MaxHaltonDim = len(primes)

// radicalInverse returns the base-b radical inverse of n with an optional
// digit permutation (perm == nil means identity).
func radicalInverse(n, b int, perm []int) float64 {
	inv := 0.0
	f := 1.0 / float64(b)
	for n > 0 {
		digit := n % b
		if perm != nil {
			digit = perm[digit]
		}
		inv += float64(digit) * f
		n /= b
		f /= float64(b)
	}
	return inv
}

// Halton returns the first n points (skipping `skip` initial points, which
// improves uniformity for small n) of the dim-dimensional Halton sequence
// in [0,1)^dim. Panics when dim exceeds MaxHaltonDim.
func Halton(n, dim, skip int) [][]float64 {
	if dim > MaxHaltonDim {
		panic("sample: Halton dimension too large")
	}
	if skip < 0 {
		skip = 0
	}
	pts := make([][]float64, n)
	for i := 0; i < n; i++ {
		p := make([]float64, dim)
		for d := 0; d < dim; d++ {
			p[d] = radicalInverse(i+1+skip, primes[d], nil)
		}
		pts[i] = p
	}
	return pts
}

// ScrambledHalton is Halton with a random digit permutation per base
// (Owen-style scrambling at the digit level), fixing the d>6 correlation
// artifacts of the plain sequence.
func ScrambledHalton(n, dim int, rng *rand.Rand) [][]float64 {
	if dim > MaxHaltonDim {
		panic("sample: Halton dimension too large")
	}
	perms := make([][]int, dim)
	for d := 0; d < dim; d++ {
		b := primes[d]
		perm := make([]int, b)
		for i := range perm {
			perm[i] = i
		}
		// Keep 0 fixed (a nonzero image of 0 shifts every point); shuffle
		// the rest.
		rest := perm[1:]
		rng.Shuffle(len(rest), func(i, j int) { rest[i], rest[j] = rest[j], rest[i] })
		perms[d] = perm
	}
	pts := make([][]float64, n)
	for i := 0; i < n; i++ {
		p := make([]float64, dim)
		for d := 0; d < dim; d++ {
			p[d] = radicalInverse(i+1, primes[d], perms[d])
		}
		pts[i] = p
	}
	return pts
}

// FeasibleHalton draws n feasible native points from s by walking the
// Halton sequence (dimensions beyond MaxHaltonDim fall back to pseudorandom
// coordinates) and skipping infeasible points.
func FeasibleHalton(s *space.Space, n int, rng *rand.Rand) ([][]float64, error) {
	qmcDim := s.Dim()
	if qmcDim > MaxHaltonDim {
		qmcDim = MaxHaltonDim
	}
	out := make([][]float64, 0, n)
	const maxTries = 100000
	tries := 0
	u := make([]float64, s.Dim())
	for idx := 1; len(out) < n; idx++ {
		for d := range u {
			if d < qmcDim {
				u[d] = radicalInverse(idx, primes[d], nil)
			} else {
				u[d] = rng.Float64()
			}
		}
		nat := s.Denormalize(u)
		if s.Feasible(nat) {
			out = append(out, nat)
			tries = 0
			continue
		}
		tries++
		if tries >= maxTries {
			return nil, fmt.Errorf("sample: could not find %d feasible Halton points (found %d)", n, len(out))
		}
	}
	return out, nil
}
