package sample

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/space"
)

func TestRadicalInverseBase2(t *testing.T) {
	// van der Corput: 1→0.5, 2→0.25, 3→0.75, 4→0.125.
	cases := map[int]float64{1: 0.5, 2: 0.25, 3: 0.75, 4: 0.125}
	for n, want := range cases {
		if got := radicalInverse(n, 2, nil); math.Abs(got-want) > 1e-15 {
			t.Fatalf("ri(%d, 2) = %v, want %v", n, got, want)
		}
	}
}

func TestRadicalInversePermutation(t *testing.T) {
	// With the swap permutation [0,2,1] in base 3: digit 1 ↔ 2.
	perm := []int{0, 2, 1}
	// n=1: digits (1) → perm 2 → 2/3.
	if got := radicalInverse(1, 3, perm); math.Abs(got-2.0/3) > 1e-15 {
		t.Fatalf("permuted ri = %v, want 2/3", got)
	}
}

func TestHaltonRangeAndDeterminism(t *testing.T) {
	a := Halton(64, 5, 0)
	b := Halton(64, 5, 0)
	for i := range a {
		for d := range a[i] {
			if a[i][d] < 0 || a[i][d] >= 1 {
				t.Fatalf("point out of range: %v", a[i])
			}
			if a[i][d] != b[i][d] {
				t.Fatalf("Halton not deterministic")
			}
		}
	}
}

// Low-discrepancy property: in 1-D (base 2), the first 2^k Halton points
// hit every dyadic stratum exactly once.
func TestHaltonStratification1D(t *testing.T) {
	n := 32
	pts := Halton(n, 1, 0)
	counts := make([]int, n)
	for _, p := range pts {
		counts[int(p[0]*float64(n))]++
	}
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("stratum %d has %d points", i, c)
		}
	}
}

// Halton should beat uniform random sampling on a simple discrepancy proxy
// (max deviation of the empirical CDF per dimension).
func TestHaltonLowerDiscrepancyThanRandom(t *testing.T) {
	const n, dim = 128, 3
	disc := func(pts [][]float64) float64 {
		worst := 0.0
		for d := 0; d < dim; d++ {
			for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
				count := 0
				for _, p := range pts {
					if p[d] < q {
						count++
					}
				}
				dev := math.Abs(float64(count)/n - q)
				if dev > worst {
					worst = dev
				}
			}
		}
		return worst
	}
	h := disc(Halton(n, dim, 20))
	rng := rand.New(rand.NewSource(3))
	worstRandom := 0.0
	for rep := 0; rep < 5; rep++ {
		if r := disc(Uniform(n, dim, rng)); r > worstRandom {
			worstRandom = r
		}
	}
	if h >= worstRandom {
		t.Fatalf("Halton discrepancy %v not below worst random %v", h, worstRandom)
	}
}

func TestScrambledHaltonProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := ScrambledHalton(64, 8, rng)
	for _, p := range pts {
		for _, v := range p {
			if v < 0 || v >= 1 {
				t.Fatalf("scrambled point out of range: %v", p)
			}
		}
	}
	// Different rngs give different scrambles.
	other := ScrambledHalton(64, 8, rand.New(rand.NewSource(5)))
	same := true
	for i := range pts {
		for d := range pts[i] {
			if pts[i][d] != other[i][d] {
				same = false
			}
		}
	}
	if same {
		t.Fatalf("scrambling had no effect")
	}
}

func TestHaltonDimensionLimit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for dim > MaxHaltonDim")
		}
	}()
	Halton(4, MaxHaltonDim+1, 0)
}

func TestFeasibleHalton(t *testing.T) {
	s := space.MustNew(space.NewInteger("p", 1, 64), space.NewInteger("pr", 1, 64))
	s.AddConstraint("pr<=p", func(v map[string]float64) bool { return v["pr"] <= v["p"] })
	rng := rand.New(rand.NewSource(6))
	pts, err := FeasibleHalton(s, 40, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 40 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		if !s.Feasible(p) {
			t.Fatalf("infeasible point %v", p)
		}
	}
	// Empty feasible region errors out.
	bad := space.MustNew(space.NewReal("x", 0, 1))
	bad.AddConstraint("never", func(map[string]float64) bool { return false })
	if _, err := FeasibleHalton(bad, 1, rng); err == nil {
		t.Fatalf("empty region accepted")
	}
}
