// Package sample provides the initial-design samplers used by GPTune's
// sampling phase (paper Section 3.1): Latin Hypercube Sampling (the
// substitute for the lhsmdu dependency), a maximin-optimized LHS variant,
// plain uniform sampling, and constraint-respecting rejection sampling over a
// Space.
package sample

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/space"
)

// Uniform draws n points uniformly from the unit hypercube [0,1]^dim.
func Uniform(n, dim int, rng *rand.Rand) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, dim)
		for d := range p {
			p[d] = rng.Float64()
		}
		pts[i] = p
	}
	return pts
}

// LatinHypercube draws n points from [0,1]^dim with one point per
// axis-aligned stratum in every dimension: dimension d's values, sorted,
// fall one into each interval [k/n, (k+1)/n).
func LatinHypercube(n, dim int, rng *rand.Rand) [][]float64 {
	if n <= 0 || dim <= 0 {
		return nil
	}
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = make([]float64, dim)
	}
	perm := make([]int, n)
	for d := 0; d < dim; d++ {
		for i := range perm {
			perm[i] = i
		}
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		for i := 0; i < n; i++ {
			pts[i][d] = (float64(perm[i]) + rng.Float64()) / float64(n)
		}
	}
	return pts
}

// MaximinLHS generates `tries` Latin hypercube designs and returns the one
// maximizing the minimum pairwise distance — a cheap stand-in for lhsmdu's
// multi-dimensional-uniformity optimization.
func MaximinLHS(n, dim, tries int, rng *rand.Rand) [][]float64 {
	if tries < 1 {
		tries = 1
	}
	var best [][]float64
	bestScore := math.Inf(-1)
	for t := 0; t < tries; t++ {
		cand := LatinHypercube(n, dim, rng)
		score := minPairwiseDist(cand)
		if score > bestScore {
			bestScore = score
			best = cand
		}
	}
	return best
}

func minPairwiseDist(pts [][]float64) float64 {
	if len(pts) < 2 {
		return math.Inf(1)
	}
	best := math.Inf(1)
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			d := 0.0
			for k := range pts[i] {
				diff := pts[i][k] - pts[j][k]
				d += diff * diff
			}
			if d < best {
				best = d
			}
		}
	}
	return math.Sqrt(best)
}

// FeasibleLHS draws n feasible native points from s. It starts from a Latin
// hypercube design and replaces infeasible points by uniform rejection
// sampling. An error is returned when the feasible region appears empty
// (maxTries consecutive rejections).
func FeasibleLHS(s *space.Space, n int, rng *rand.Rand) ([][]float64, error) {
	const maxTries = 100000
	cands := LatinHypercube(n, s.Dim(), rng)
	out := make([][]float64, 0, n)
	for _, u := range cands {
		nat := s.Denormalize(u)
		if s.Feasible(nat) {
			out = append(out, nat)
		}
	}
	tries := 0
	for len(out) < n {
		u := make([]float64, s.Dim())
		for d := range u {
			u[d] = rng.Float64()
		}
		nat := s.Denormalize(u)
		if s.Feasible(nat) {
			out = append(out, nat)
			tries = 0
			continue
		}
		tries++
		if tries >= maxTries {
			return nil, fmt.Errorf("sample: could not find %d feasible points (found %d; feasible region may be empty)", n, len(out))
		}
	}
	return out, nil
}

// FeasibleUniform draws n feasible native points by rejection sampling.
func FeasibleUniform(s *space.Space, n int, rng *rand.Rand) ([][]float64, error) {
	const maxTries = 100000
	out := make([][]float64, 0, n)
	tries := 0
	u := make([]float64, s.Dim())
	for len(out) < n {
		for d := range u {
			u[d] = rng.Float64()
		}
		nat := s.Denormalize(u)
		if s.Feasible(nat) {
			out = append(out, nat)
			tries = 0
			continue
		}
		tries++
		if tries >= maxTries {
			return nil, fmt.Errorf("sample: could not find %d feasible points (found %d)", n, len(out))
		}
	}
	return out, nil
}
