package sample

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/space"
)

func TestUniformShapeAndRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := Uniform(25, 4, rng)
	if len(pts) != 25 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		if len(p) != 4 {
			t.Fatalf("dim %d", len(p))
		}
		for _, v := range p {
			if v < 0 || v >= 1 {
				t.Fatalf("value %v outside [0,1)", v)
			}
		}
	}
}

// Property: LHS stratification — in every dimension, the sorted values fall
// one per stratum [k/n, (k+1)/n).
func TestLatinHypercubeStratification(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		dim := 1 + rng.Intn(6)
		pts := LatinHypercube(n, dim, rng)
		for d := 0; d < dim; d++ {
			vals := make([]float64, n)
			for i := range pts {
				vals[i] = pts[i][d]
			}
			sort.Float64s(vals)
			for k, v := range vals {
				lo := float64(k) / float64(n)
				hi := float64(k+1) / float64(n)
				if v < lo || v >= hi {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLatinHypercubeDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if LatinHypercube(0, 3, rng) != nil {
		t.Fatalf("n=0 should return nil")
	}
	if LatinHypercube(3, 0, rng) != nil {
		t.Fatalf("dim=0 should return nil")
	}
	one := LatinHypercube(1, 2, rng)
	if len(one) != 1 || len(one[0]) != 2 {
		t.Fatalf("n=1 design wrong: %v", one)
	}
}

func TestMaximinImprovesSpread(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Average over repeats: maximin(20 tries) should not be worse than a
	// single LHS draw in min pairwise distance.
	var plain, maximin float64
	for rep := 0; rep < 20; rep++ {
		plain += minPairwiseDist(LatinHypercube(15, 3, rng))
		maximin += minPairwiseDist(MaximinLHS(15, 3, 20, rng))
	}
	if maximin < plain {
		t.Fatalf("maximin mean min-dist %v < plain %v", maximin/20, plain/20)
	}
}

func TestFeasibleLHSRespectsConstraints(t *testing.T) {
	s := space.MustNew(space.NewInteger("p", 1, 64), space.NewInteger("pr", 1, 64))
	s.AddConstraint("pr<=p", func(v map[string]float64) bool { return v["pr"] <= v["p"] })
	rng := rand.New(rand.NewSource(4))
	pts, err := FeasibleLHS(s, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 50 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		if !s.Feasible(p) {
			t.Fatalf("infeasible point %v", p)
		}
	}
}

func TestFeasibleUniformEmptyRegion(t *testing.T) {
	s := space.MustNew(space.NewReal("x", 0, 1))
	s.AddConstraint("never", func(map[string]float64) bool { return false })
	rng := rand.New(rand.NewSource(5))
	if _, err := FeasibleUniform(s, 1, rng); err == nil {
		t.Fatalf("expected error for empty feasible region")
	}
	if _, err := FeasibleLHS(s, 1, rng); err == nil {
		t.Fatalf("expected error for empty feasible region (LHS)")
	}
}

func TestFeasibleUniformBasic(t *testing.T) {
	s := space.MustNew(space.NewReal("x", 2, 4), space.NewCategorical("c", "a", "b"))
	rng := rand.New(rand.NewSource(6))
	pts, err := FeasibleUniform(s, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p[0] < 2 || p[0] > 4 || (p[1] != 0 && p[1] != 1) {
			t.Fatalf("bad native point %v", p)
		}
	}
}

func TestMinPairwiseDistSinglePoint(t *testing.T) {
	if d := minPairwiseDist([][]float64{{0.5}}); d != d || d < 1e308 {
		// expect +Inf
		t.Fatalf("single point min dist = %v", d)
	}
}
