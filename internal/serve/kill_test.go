package serve

import (
	"bufio"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"
)

// TestMain doubles as the gptuned subprocess for the SIGKILL test: when the
// helper env var is set, the test binary runs a real server instead of the
// test suite, so killing it exercises the same process-death path as
// killing the daemon.
func TestMain(m *testing.M) {
	if os.Getenv("GPTUNED_TEST_HELPER") == "1" {
		runHelper()
		return
	}
	os.Exit(m.Run())
}

// runHelper serves the data directory named by the environment on an
// ephemeral port, printing "ADDR host:port" so the parent test can connect.
// It never exits on its own — the parent kills it.
func runHelper() {
	s, err := NewServer(Config{DataDir: os.Getenv("GPTUNED_TEST_DATA")})
	if err != nil {
		fmt.Println("ERR", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Println("ERR", err)
		os.Exit(1)
	}
	fmt.Println("ADDR", ln.Addr().String())
	if err := http.Serve(ln, s.Handler()); err != nil {
		fmt.Println("ERR", err)
		os.Exit(1)
	}
}

// startHelper launches the helper subprocess against dataDir and waits for
// its listen address.
func startHelper(t *testing.T, dataDir string) (*exec.Cmd, string) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, "-test.run=^$")
	cmd.Env = append(os.Environ(), "GPTUNED_TEST_HELPER=1", "GPTUNED_TEST_DATA="+dataDir)
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(out)
	for sc.Scan() {
		line := sc.Text()
		if addr, ok := strings.CutPrefix(line, "ADDR "); ok {
			return cmd, addr
		}
		if strings.HasPrefix(line, "ERR ") {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatalf("helper failed to start: %s", line)
		}
	}
	cmd.Process.Kill()
	cmd.Wait()
	t.Fatalf("helper exited without printing an address (scan err: %v)", sc.Err())
	return nil, ""
}

// waitHealthy polls /healthz until the helper answers.
func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("helper never became healthy")
}

// TestServeSIGKILLRestartResumes is the end-to-end crash-safety acceptance
// test: a real server process is killed with SIGKILL mid-study; a fresh
// process over the same data directory must resume the study, re-paying at
// most the evaluation that was in flight, and finish with a history bitwise
// identical to an uninterrupted run's.
func TestServeSIGKILLRestartResumes(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	const epsTot, seed, killAfter = 8, 13, 7
	tasks := [][]float64{{0.5}, {2}}
	spec := testSpec("victim", epsTot, seed)
	spec.Tasks = tasks

	// Uninterrupted reference, same spec, in-process (the HTTP surface is
	// identical; only process lifetime differs).
	_, rc := newTestServer(t)
	ref := spec
	ref.Name = "ref"
	if code := rc.post("/studies", ref, nil); code != http.StatusCreated {
		t.Fatalf("create ref: status %d", code)
	}
	rc.drive("ref", tasks, -1)
	want := rc.history("ref")

	dir := t.TempDir()
	cmd1, addr1 := startHelper(t, dir)
	base1 := "http://" + addr1
	waitHealthy(t, base1)
	c1 := &testClient{t: t, base: base1}
	if code := c1.post("/studies", spec, nil); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	// Pay killAfter evaluations, then obtain (but do not report) one more
	// suggestion — the in-flight evaluation a real tuner would lose.
	paid := c1.drive("victim", tasks, killAfter)
	var inflight suggestResponse
	if code := c1.post("/studies/victim/suggest", nil, &inflight); code != http.StatusOK || inflight.Suggestion == nil {
		t.Fatalf("in-flight suggest: status %d done=%v", code, inflight.Done)
	}

	if err := cmd1.Process.Kill(); err != nil { // SIGKILL: no shutdown hooks run
		t.Fatal(err)
	}
	cmd1.Wait()

	cmd2, addr2 := startHelper(t, dir)
	defer func() { cmd2.Process.Kill(); cmd2.Wait() }()
	base2 := "http://" + addr2
	waitHealthy(t, base2)
	c2 := &testClient{t: t, base: base2}

	var status studyStatus
	if code := c2.get("/studies/victim", &status); code != http.StatusOK {
		t.Fatalf("status after restart: %d", code)
	}
	if status.Logged != killAfter {
		t.Fatalf("restarted server sees %d logged evaluations, want %d (every report must be durable before it is acknowledged)", status.Logged, killAfter)
	}

	// The restarted engine re-issues the killed process's in-flight
	// configuration; the client re-pays that one evaluation and no other.
	paid += c2.drive("victim", tasks, -1)
	total := epsTot * len(tasks)
	if paid != total {
		t.Fatalf("paid %d evaluations across the kill, want %d (only the in-flight evaluation may be re-paid)", paid, total)
	}

	got := c2.history("victim")
	if len(got) != len(want) {
		t.Fatalf("resumed history has %d tasks, want %d", len(got), len(want))
	}
	for ti := range want {
		if len(got[ti].X) != len(want[ti].X) {
			t.Fatalf("task %d: resumed history has %d evaluations, want %d", ti, len(got[ti].X), len(want[ti].X))
		}
		for i := range want[ti].X {
			if math.Float64bits(got[ti].X[i][0]) != math.Float64bits(want[ti].X[i][0]) ||
				math.Float64bits(got[ti].Y[i][0]) != math.Float64bits(want[ti].Y[i][0]) {
				t.Fatalf("task %d sample %d: resumed history diverged from the uninterrupted run", ti, i)
			}
		}
	}
}
