package serve

// Study migration: a study's durable state is exactly its spec file plus
// the snapshot/log pair its WAL maintains (the PR-3 transfer format), so
// moving or re-homing a study is snapshot shipping — GET the archive from
// one replica, POST it to another, and core.Resume replays it bitwise.
// No record translation, no coordination protocol.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"

	"repro/internal/histdb"
)

// studyArchive is a study in transfer form: its spec plus a mutually
// consistent snapshot/log byte pair (histdb.WAL.Export). It is both the
// GET /studies/{study}/snapshot response and the POST /studies/import body;
// the byte fields ride the wire as base64 per encoding/json.
type studyArchive struct {
	Spec StudySpec `json:"spec"`
	// Snapshot is the snapshot file's bytes; empty when the study never
	// compacted (everything lives in the log).
	Snapshot []byte `json:"snapshot,omitempty"`
	// WAL is the append-only log file's bytes (header line + records).
	WAL []byte `json:"wal,omitempty"`
	// Logged counts the evaluation records in the archive, so the importer
	// can account for exactly how many evaluations it will not re-pay.
	Logged int `json:"logged"`
}

// handleSnapshot exports a study for migration. The WAL is compacted first
// so the archive is one dense snapshot plus a header-only log, then both
// files are copied in a single WAL critical section — no append can
// interleave, no torn tail can be observed. The study keeps serving
// throughout; an evaluation committed after the export simply isn't in it.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	st, ok := s.lookup(r.PathValue("study"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: no study %s", r.PathValue("study")))
		return
	}
	if err := st.cp.Compact(); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	snap, log, err := st.cp.Export()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, studyArchive{
		Spec:     st.spec,
		Snapshot: snap,
		WAL:      log,
		Logged:   st.cp.Logged(),
	})
}

// handleImport re-homes a study from an archive: the history files and spec
// are written durably, then the study is opened exactly as a post-crash
// restart would — core.Resume replays the imported log, and the engine
// satisfies every logged evaluation from it instead of re-paying the
// objective. Importing over an existing study answers 409; delete the
// loser's data directory entries first if the import should win.
func (s *Server) handleImport(w http.ResponseWriter, r *http.Request) {
	var arc studyArchive
	if err := s.decodeBodyCapped(w, r, &arc, s.cfg.MaxImportBytes); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if _, _, _, err := arc.Spec.build(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	name := arc.Spec.Name
	if !s.reserveName(w, name) {
		return
	}
	defer s.releaseName(name)

	// History lands before the spec: resumeAll keys on spec files, so a
	// crash between the two writes leaves no half-imported study visible
	// after restart — re-POST the archive and the files are rewritten.
	cleanup := func() {
		os.Remove(s.histPath(name))
		os.Remove(histdb.WalPath(s.histPath(name)))
		os.Remove(s.specPath(name))
	}
	if len(arc.Snapshot) > 0 {
		if err := histdb.WriteFileDurable(s.histPath(name), arc.Snapshot); err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
	} else {
		os.Remove(s.histPath(name))
	}
	if len(arc.WAL) > 0 {
		if err := histdb.WriteFileDurable(histdb.WalPath(s.histPath(name)), arc.WAL); err != nil {
			cleanup()
			writeError(w, http.StatusInternalServerError, err)
			return
		}
	} else {
		os.Remove(histdb.WalPath(s.histPath(name)))
	}
	data, err := json.MarshalIndent(&arc.Spec, "", " ")
	if err != nil {
		cleanup()
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if err := histdb.WriteFileDurable(s.specPath(name), data); err != nil {
		cleanup()
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	st, err := s.openStudy(arc.Spec)
	if err != nil {
		cleanup()
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: importing study %s: %w", name, err))
		return
	}
	if got := st.cp.Logged(); arc.Logged != 0 && got != arc.Logged {
		st.cp.Close()
		cleanup()
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: archive for %s claims %d logged evaluations but its WAL recovered %d", name, arc.Logged, got))
		return
	}
	if !s.installStudy(w, st, cleanup) {
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{"name": name, "logged": st.cp.Logged()})
}
