package serve

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"
)

// TestSnapshotImportResumeParity is the migration acceptance test: a study
// driven partway on one server, exported, and imported onto a fresh server
// must (a) resume without re-paying a single logged evaluation and (b)
// finish with bitwise the same history as an uninterrupted run of the same
// spec — the same guarantee the SIGKILL-restart test proves for in-place
// recovery, here across servers.
func TestSnapshotImportResumeParity(t *testing.T) {
	const epsTot, seed = 8, 7
	spec := testSpec("mig", epsTot, seed)

	// Reference: one server drives the study start to finish.
	_, ref := newTestServer(t)
	if code := ref.post("/studies", spec, nil); code != http.StatusCreated {
		t.Fatalf("reference create: status %d", code)
	}
	refPaid := ref.drive("mig", testTasks, -1)
	refHist := ref.history("mig")

	// Source: same spec, driven only partway, then exported.
	_, src := newTestServer(t)
	if code := src.post("/studies", spec, nil); code != http.StatusCreated {
		t.Fatalf("source create: status %d", code)
	}
	firstPaid := src.drive("mig", testTasks, 7)
	var arc studyArchive
	if code := src.get("/studies/mig/snapshot", &arc); code != http.StatusOK {
		t.Fatalf("snapshot: status %d", code)
	}
	if arc.Spec.Name != "mig" {
		t.Fatalf("archive names study %q", arc.Spec.Name)
	}
	if arc.Logged != firstPaid {
		t.Fatalf("archive logs %d evaluations, client paid %d", arc.Logged, firstPaid)
	}
	if len(arc.Snapshot) == 0 || len(arc.WAL) == 0 {
		t.Fatalf("archive missing bytes after compaction: snapshot=%d wal=%d", len(arc.Snapshot), len(arc.WAL))
	}

	// Destination: a fresh server imports the archive and finishes the run.
	_, dst := newTestServer(t)
	var imp struct {
		Name   string `json:"name"`
		Logged int    `json:"logged"`
	}
	if code := dst.post("/studies/import", arc, &imp); code != http.StatusCreated {
		t.Fatalf("import: status %d", code)
	}
	if imp.Logged != firstPaid {
		t.Fatalf("import recovered %d logged evaluations, want %d", imp.Logged, firstPaid)
	}
	secondPaid := dst.drive("mig", testTasks, -1)
	if firstPaid+secondPaid != refPaid {
		t.Fatalf("paid %d+%d evaluations across the migration, uninterrupted run paid %d — logged work was re-paid",
			firstPaid, secondPaid, refPaid)
	}
	gotHist := dst.history("mig")
	a, _ := json.Marshal(refHist)
	b, _ := json.Marshal(gotHist)
	if string(a) != string(b) {
		t.Fatalf("migrated history differs from the uninterrupted run\nref: %s\ngot: %s", a, b)
	}

	// Importing over a live study must not clobber it.
	if code := dst.post("/studies/import", arc, nil); code != http.StatusConflict {
		t.Fatalf("duplicate import: status %d, want 409", code)
	}
}

// TestImportRejectsBadArchive: a structurally invalid spec and a corrupt
// WAL must both bounce with 400 and leave no study (or files) behind.
func TestImportRejectsBadArchive(t *testing.T) {
	_, c := newTestServer(t)

	bad := studyArchive{Spec: testSpec("", 4, 1)} // empty name fails validation
	if code := c.post("/studies/import", bad, nil); code != http.StatusBadRequest {
		t.Fatalf("invalid spec import: status %d, want 400", code)
	}

	corrupt := studyArchive{Spec: testSpec("c", 4, 1), WAL: []byte("{\"wal\":1,\"snapshot_len\":0}\n{not json}\n")}
	if code := c.post("/studies/import", corrupt, nil); code != http.StatusBadRequest {
		t.Fatalf("corrupt WAL import: status %d, want 400", code)
	}
	var list struct {
		Studies []string `json:"studies"`
	}
	if code := c.get("/studies", &list); code != http.StatusOK || len(list.Studies) != 0 {
		t.Fatalf("failed imports left studies behind: %v (status %d)", list.Studies, code)
	}
	// The name must be importable again after the failure (files cleaned,
	// reservation released).
	ok := studyArchive{Spec: testSpec("c", 4, 1)}
	if code := c.post("/studies/import", ok, nil); code != http.StatusCreated {
		t.Fatalf("re-import after failure: status %d, want 201", code)
	}
}

// TestHealthDraining: /healthz must flip to 503 the moment draining begins
// — before any study teardown — and report per-study phase/async state
// while healthy so a router can make eviction decisions.
func TestHealthDraining(t *testing.T) {
	s, c := newTestServer(t)
	if code := c.post("/studies", testSpec("h", 4, 3), nil); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	var h struct {
		Status  string                 `json:"status"`
		Studies int                    `json:"studies"`
		Detail  map[string]healthStudy `json:"detail"`
	}
	if code := c.get("/healthz", &h); code != http.StatusOK {
		t.Fatalf("health: status %d, want 200", code)
	}
	if h.Status != "ok" || h.Studies != 1 {
		t.Fatalf("health payload: %+v", h)
	}
	d, ok := h.Detail["h"]
	if !ok || d.Phase == "" {
		t.Fatalf("health detail missing study phase: %+v", h.Detail)
	}

	s.BeginDrain()
	h.Detail = nil
	if code := c.get("/healthz", &h); code != http.StatusServiceUnavailable {
		t.Fatalf("health while draining: status %d, want 503", code)
	}
	if h.Status != "draining" {
		t.Fatalf("health status while draining: %q", h.Status)
	}
}

// TestRetryAfterSeconds pins the hint derivation: async studies report the
// truncated EWMA (including "0" — retry immediately), sync studies round up
// and never drop below one second.
func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		gen   time.Duration
		async bool
		want  string
	}{
		{0, false, "1"},
		{0, true, "0"},
		{10 * time.Millisecond, true, "0"},
		{10 * time.Millisecond, false, "1"},
		{time.Second, false, "1"},
		{2500 * time.Millisecond, false, "3"},
		{2500 * time.Millisecond, true, "2"},
	}
	for _, tc := range cases {
		if got := retryAfterSeconds(tc.gen, tc.async); got != tc.want {
			t.Errorf("retryAfterSeconds(%v, async=%v) = %q, want %q", tc.gen, tc.async, got, tc.want)
		}
	}
}
