package serve

import (
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
)

// mustScenarioProblem builds the gemm problem the same way the server does,
// giving the client-side objective and the feasibility oracle.
func mustScenarioProblem(t *testing.T) *core.Problem {
	t.Helper()
	sc, err := bench.Get("gemm")
	if err != nil {
		t.Fatal(err)
	}
	prob, err := sc.Problem(nil)
	if err != nil {
		t.Fatal(err)
	}
	return prob
}

// newServerAt opens a server over an explicit data directory (so a second
// server can later resume it) and returns a close func for the HTTP layer.
func newServerAt(t *testing.T, dir string) (*Server, *testClient, func()) {
	t.Helper()
	s, err := NewServer(Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	return s, &testClient{t: t, base: hs.URL}, hs.Close
}

// gemmTasks are native (m, n, k) problem shapes for the constrained "gemm"
// registry scenario.
var gemmTasks = [][]float64{{1024, 1024, 1024}, {4096, 512, 2048}}

// gemmSpec names the scenario instead of describing spaces: the server
// instantiates task/tuning/output spaces — divisibility constraints
// included — from the workload registry.
func gemmSpec(name string, epsTot int, seed int64) StudySpec {
	return StudySpec{
		Name:     name,
		Scenario: "gemm",
		Tasks:    gemmTasks,
		Options:  OptionsSpec{EpsTot: epsTot, Seed: seed, Workers: 1},
	}
}

// driveProblem runs suggest/report cycles evaluating prob's own objective
// client-side, and asserts every suggested configuration satisfies the
// tuning space's constraints — the server must never hand out an infeasible
// point. Returns the number of evaluations paid.
func (c *testClient) driveProblem(study string, prob *core.Problem, tasks [][]float64, maxCycles int) int {
	c.t.Helper()
	paid := 0
	for maxCycles < 0 || paid < maxCycles {
		var sg suggestResponse
		code := c.post("/studies/"+study+"/suggest", map[string]int{"task": -1}, &sg)
		if code == http.StatusConflict {
			time.Sleep(2 * time.Millisecond)
			continue
		}
		if code != http.StatusOK {
			c.t.Fatalf("suggest: status %d", code)
		}
		if sg.Done {
			break
		}
		if sg.Suggestion == nil {
			c.t.Fatalf("200 suggest response carries neither a suggestion nor done")
		}
		if !prob.Tuning.Feasible(sg.Suggestion.X) {
			c.t.Fatalf("suggestion %v violates the scenario's constraints", sg.Suggestion.X)
		}
		y, err := prob.Objective(tasks[sg.Suggestion.Task], sg.Suggestion.X)
		if err != nil {
			c.t.Fatalf("objective: %v", err)
		}
		paid++
		var rep reportResponse
		if code := c.post("/studies/"+study+"/report", reportRequest{ID: sg.Suggestion.ID, Y: y}, &rep); code != http.StatusOK {
			c.t.Fatalf("report: status %d", code)
		}
		if !rep.OK {
			c.t.Fatalf("report not acknowledged: %+v", rep)
		}
	}
	return paid
}

// TestServeScenarioParity is the end-to-end acceptance test for server-side
// scenario instantiation: a constrained registry scenario ("gemm", MC%MR==0
// and NC%NR==0) created over HTTP by name must visit bitwise the same
// configurations — all feasible — and record bitwise the same outputs as
// the in-process batch Run on the registry-built problem.
func TestServeScenarioParity(t *testing.T) {
	const epsTot, seed = 8, 11

	prob := mustScenarioProblem(t)
	if len(prob.Tuning.Constraints) == 0 {
		t.Fatal("gemm scenario lost its constraints")
	}
	batch, err := core.Run(prob, gemmTasks, core.Options{EpsTot: epsTot, Seed: seed, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	_, c := newTestServer(t)
	if code := c.post("/studies", gemmSpec("gemm-parity", epsTot, seed), nil); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	paid := c.driveProblem("gemm-parity", prob, gemmTasks, -1)
	if want := epsTot * len(gemmTasks); paid != want {
		t.Fatalf("paid %d evaluations, want %d", paid, want)
	}

	hist := c.history("gemm-parity")
	for ti := range hist {
		h, b := hist[ti], batch.Tasks[ti]
		if len(h.X) != len(b.X) {
			t.Fatalf("task %d: %d evaluations over HTTP, %d in batch", ti, len(h.X), len(b.X))
		}
		for i := range h.X {
			for d := range h.X[i] {
				if math.Float64bits(h.X[i][d]) != math.Float64bits(b.X[i][d]) {
					t.Errorf("task %d sample %d: X differs: %v vs %v", ti, i, h.X[i], b.X[i])
				}
			}
			if math.Float64bits(h.Y[i][0]) != math.Float64bits(b.Y[i][0]) {
				t.Errorf("task %d sample %d: Y differs: %v vs %v", ti, i, h.Y[i][0], b.Y[i][0])
			}
		}
	}
}

// TestServeScenarioRestartResumes kills a scenario study's server mid-study
// and checks that the restarted server re-resolves the scenario from the
// persisted spec (constraints and all) and resumes bitwise: history matches
// an uninterrupted run, no committed evaluation is re-paid, and post-restart
// suggestions remain feasible.
func TestServeScenarioRestartResumes(t *testing.T) {
	const epsTot, seed, killAfter = 6, 5, 5

	prob := mustScenarioProblem(t)

	_, rc := newTestServer(t)
	if code := rc.post("/studies", gemmSpec("ref", epsTot, seed), nil); code != http.StatusCreated {
		t.Fatalf("create ref: status %d", code)
	}
	rc.driveProblem("ref", prob, gemmTasks, -1)
	want := rc.history("ref")

	dir := t.TempDir()
	s1, c1, closeHTTP1 := newServerAt(t, dir)
	if code := c1.post("/studies", gemmSpec("crashy", epsTot, seed), nil); code != http.StatusCreated {
		t.Fatalf("create crashy: status %d", code)
	}
	paid := c1.driveProblem("crashy", prob, gemmTasks, killAfter)
	closeHTTP1()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, c2, closeHTTP2 := newServerAt(t, dir)
	t.Cleanup(func() { closeHTTP2(); s2.Close() })
	paid += c2.driveProblem("crashy", prob, gemmTasks, -1)
	if want := epsTot * len(gemmTasks); paid != want {
		t.Fatalf("paid %d evaluations across the restart, want exactly %d", paid, want)
	}
	got := c2.history("crashy")
	for ti := range want {
		if len(got[ti].X) != len(want[ti].X) {
			t.Fatalf("task %d: resumed history has %d evaluations, want %d", ti, len(got[ti].X), len(want[ti].X))
		}
		for i := range want[ti].X {
			for d := range want[ti].X[i] {
				if math.Float64bits(got[ti].X[i][d]) != math.Float64bits(want[ti].X[i][d]) {
					t.Fatalf("task %d sample %d: resumed history diverged", ti, i)
				}
			}
			if math.Float64bits(got[ti].Y[i][0]) != math.Float64bits(want[ti].Y[i][0]) {
				t.Fatalf("task %d sample %d: resumed output diverged", ti, i)
			}
		}
	}
}

// TestServeScenarioRejections covers the failure modes of scenario specs:
// unknown names are rejected with the full catalog enumerated, and specs
// that both name a scenario and describe spaces are rejected.
func TestServeScenarioRejections(t *testing.T) {
	_, c := newTestServer(t)

	bad := gemmSpec("ok", 4, 1)
	bad.Scenario = "bogus"
	var eb errorBody
	if code := c.post("/studies", bad, &eb); code != http.StatusBadRequest {
		t.Fatalf("unknown scenario: status %d, want 400", code)
	}
	for _, name := range []string{"unknown scenario", "gemm", "analytical"} {
		if !strings.Contains(eb.Error, name) {
			t.Errorf("unknown-scenario error %q does not mention %q", eb.Error, name)
		}
	}

	bad = gemmSpec("ok", 4, 1)
	bad.Tuning = []ParamSpec{{Name: "x", Kind: "real", Lo: 0, Hi: 1}}
	if code := c.post("/studies", bad, &eb); code != http.StatusBadRequest {
		t.Fatalf("scenario+tuning: status %d, want 400", code)
	}
	if !strings.Contains(eb.Error, "drop tuning") {
		t.Errorf("conflicting-spec error %q does not explain the conflict", eb.Error)
	}

	bad = gemmSpec("ok", 4, 1)
	bad.ScenarioParams = map[string]float64{"bogus": 1}
	if code := c.post("/studies", bad, &eb); code != http.StatusBadRequest {
		t.Fatalf("unknown scenario param: status %d, want 400", code)
	}
	if !strings.Contains(eb.Error, "bogus") {
		t.Errorf("unknown-param error %q does not name the offending key", eb.Error)
	}

	bad = gemmSpec("ok", 4, 1)
	bad.Tasks = [][]float64{{1024, 1024}}
	if code := c.post("/studies", bad, nil); code != http.StatusBadRequest {
		t.Fatalf("task arity mismatch: status %d, want 400", code)
	}
}
