package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/histdb"
	"repro/internal/mpx"
)

// Config configures a Server.
type Config struct {
	// DataDir holds one spec file and one history WAL per study. Created if
	// missing; existing studies found there are resumed on startup.
	DataDir string
	// ModelSlots bounds how many studies run their modeling/search phase at
	// once (each still parallelizes internally over its own Workers option).
	// Default 1: concurrent studies interleave suggest calls but model one
	// at a time.
	ModelSlots int
	// MaxBodyBytes caps every request body. Default 1 MiB.
	MaxBodyBytes int64
	// MaxImportBytes caps the POST /studies/import body, which carries a
	// whole study's snapshot + WAL and so dwarfs every other request.
	// Default 64 MiB.
	MaxImportBytes int64
	// Clock overrides the wall clock used for phase telemetry and WAL
	// stamps; nil means the real clock.
	Clock func() time.Time
}

// Server hosts tuning studies over HTTP. Each study wraps one core.Engine
// (which serializes itself), its spec persisted durably and every committed
// observation appended to a per-study WAL, so killing the process loses at
// most the evaluations that were still in flight.
type Server struct {
	cfg  Config
	gate *mpx.Gate

	mu      sync.Mutex
	studies map[string]*study
	// pending reserves study names whose create is in flight: the spec
	// write and WAL open happen outside the lock, and the reservation is
	// what keeps a concurrent duplicate create from racing past the
	// exists check in the meantime.
	pending  map[string]bool
	draining bool // health reports 503; set by BeginDrain and by Close
	closed   bool
}

type study struct {
	spec StudySpec
	eng  *core.Engine
	cp   *core.Checkpointer
}

// NewServer creates the data directory if needed and resumes every study
// whose spec file it finds there.
func NewServer(cfg Config) (*Server, error) {
	if cfg.DataDir == "" {
		return nil, errors.New("serve: Config.DataDir is required")
	}
	if cfg.ModelSlots <= 0 {
		cfg.ModelSlots = 1
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.MaxImportBytes <= 0 {
		cfg.MaxImportBytes = 64 << 20
	}
	if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
		return nil, err
	}
	s := &Server{cfg: cfg, gate: mpx.NewGate(cfg.ModelSlots), studies: make(map[string]*study), pending: make(map[string]bool)}
	if err := s.resumeAll(); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

func (s *Server) specPath(name string) string {
	return filepath.Join(s.cfg.DataDir, name+".spec.json")
}

func (s *Server) histPath(name string) string {
	return filepath.Join(s.cfg.DataDir, name+".hist.json")
}

// SpecPath and HistPath expose the data-directory layout — where a study's
// spec and history-snapshot files live — for tools that must read a dead
// server's files directly (crash recovery rebuilds a transfer archive from
// them; the WAL sidecar is histdb.WalPath(HistPath(name))).
func (s *Server) SpecPath(name string) string { return s.specPath(name) }
func (s *Server) HistPath(name string) string { return s.histPath(name) }

// resumeAll rebuilds every study found in the data directory, replaying its
// WAL through the engine's checkpoint-autofill path.
func (s *Server) resumeAll() error {
	entries, err := os.ReadDir(s.cfg.DataDir)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if n, ok := strings.CutSuffix(e.Name(), ".spec.json"); ok && !e.IsDir() {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		data, err := os.ReadFile(s.specPath(name))
		if err != nil {
			return err
		}
		var spec StudySpec
		if err := json.Unmarshal(data, &spec); err != nil {
			return fmt.Errorf("serve: parsing %s: %w", s.specPath(name), err)
		}
		if spec.Name != name {
			return fmt.Errorf("serve: spec file %s names study %q", s.specPath(name), spec.Name)
		}
		st, err := s.openStudy(spec)
		if err != nil {
			return fmt.Errorf("serve: resuming study %s: %w", name, err)
		}
		s.studies[name] = st
	}
	return nil
}

// openStudy builds the engine for a spec, wiring the shared modeling gate
// and a WAL-backed checkpointer (fresh or resumed — core.Resume treats a
// missing log as a fresh run).
func (s *Server) openStudy(spec StudySpec) (*study, error) {
	prob, tasks, opts, err := spec.build()
	if err != nil {
		return nil, err
	}
	cp, err := core.Resume(s.histPath(spec.Name), core.CheckpointOptions{Problem: spec.Name, Clock: s.cfg.Clock})
	if err != nil {
		return nil, err
	}
	opts.Checkpoint = cp
	// Every fitted surrogate snapshot rides the same WAL, so a study's log
	// doubles as transfer-learning input for later sessions (the facade's
	// LoadModelSnapshots + Options.WarmStart). The engine never reads these
	// back itself — resume replay stays bitwise.
	opts.Transfer = cp
	opts.ModelGate = s.gate
	opts.Clock = s.cfg.Clock
	eng, err := core.NewEngine(prob, tasks, opts)
	if err != nil {
		cp.Close()
		return nil, err
	}
	return &study{spec: spec, eng: eng, cp: cp}, nil
}

func (s *Server) lookup(name string) (*study, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.studies[name]
	return st, ok
}

// BeginDrain flips /healthz to 503 without tearing anything down: existing
// studies keep serving, but a router health-checking the replica stops
// routing new work to it. Call it before http.Server.Shutdown so the
// health flip races ahead of the connection drain, not behind it.
func (s *Server) BeginDrain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

// Close flushes and closes every study's WAL. In-flight HTTP handlers should
// be drained first (http.Server.Shutdown) so no commit races the close.
func (s *Server) Close() error {
	// Snapshot under the lock, fsync+close outside it: once closed is set,
	// nothing inserts into studies (handleCreate re-checks closed before
	// its insert), so the snapshot is complete and the WAL closes — which
	// block on file I/O — run without holding the server mutex.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	// Draining flips first: from here until the process exits, a health
	// probe must never report this replica routable — study teardown is
	// about to start.
	s.draining = true
	s.closed = true
	names := make([]string, 0, len(s.studies))
	for name := range s.studies {
		names = append(names, name)
	}
	sort.Strings(names)
	cps := make([]*core.Checkpointer, 0, len(names))
	for _, name := range names {
		cps = append(cps, s.studies[name].cp)
	}
	engs := make([]*core.Engine, 0, len(names))
	for _, name := range names {
		engs = append(engs, s.studies[name].eng)
	}
	s.mu.Unlock()
	// Async studies may have a background batch generation in flight even
	// with all handlers drained; wait it out before closing the WAL it
	// streams model snapshots and autofilled commits to.
	for _, eng := range engs {
		eng.Quiesce()
	}
	var first error
	for _, cp := range cps {
		if err := cp.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Handler returns the service's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("POST /studies", s.handleCreate)
	mux.HandleFunc("POST /studies/import", s.handleImport)
	mux.HandleFunc("GET /studies", s.handleList)
	mux.HandleFunc("GET /studies/{study}/snapshot", s.handleSnapshot)
	mux.HandleFunc("GET /studies/{study}", s.handleStatus)
	mux.HandleFunc("POST /studies/{study}/suggest", s.handleSuggest)
	mux.HandleFunc("POST /studies/{study}/report", s.handleReport)
	mux.HandleFunc("GET /studies/{study}/best", s.handleBest)
	mux.HandleFunc("GET /studies/{study}/pareto", s.handlePareto)
	mux.HandleFunc("GET /studies/{study}/history", s.handleHistory)
	return mux
}

// writeJSON encodes v with a status code. Encoding errors past the header
// cannot be reported to the client; they surface as a truncated body.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorBody{Error: err.Error()})
}

// decodeBody strict-decodes a JSON request body into v under the size cap.
// An empty body leaves v untouched and returns nil, so requests with
// all-default parameters can omit the body entirely.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	return s.decodeBodyCapped(w, r, v, s.cfg.MaxBodyBytes)
}

func (s *Server) decodeBodyCapped(w http.ResponseWriter, r *http.Request, v any, cap int64) error {
	body := http.MaxBytesReader(w, r.Body, cap)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		if errors.Is(err, io.EOF) {
			return nil
		}
		return fmt.Errorf("serve: bad request body: %w", err)
	}
	return nil
}

// healthStudy is one study's slice of the GET /healthz payload — enough for
// a router to decide whether evicting the replica strands active work.
type healthStudy struct {
	Phase string `json:"phase"`
	Async bool   `json:"async,omitempty"`
	Done  bool   `json:"done,omitempty"`
}

// handleHealth reports the replica's routability. While draining (graceful
// shutdown has begun, or Close is mid-teardown) it answers 503 so a router
// health-checking this endpoint stops sending suggests that would land on
// closing WALs; a plain liveness probe should treat any HTTP answer as
// alive.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	studies := make(map[string]*study, len(s.studies))
	for name, st := range s.studies {
		studies[name] = st
	}
	s.mu.Unlock()
	// Engine queries happen off the server mutex: Phase/Done take the
	// engine mutex but never block on a generation in flight.
	detail := make(map[string]healthStudy, len(studies))
	for name, st := range studies {
		detail[name] = healthStudy{Phase: st.eng.Phase(), Async: st.spec.Options.Async, Done: st.eng.Done()}
	}
	status, code := "ok", http.StatusOK
	if draining {
		status, code = "draining", http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{"status": status, "studies": len(studies), "detail": detail})
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var spec StudySpec
	if err := s.decodeBody(w, r, &spec); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if _, _, _, err := spec.build(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if !s.reserveName(w, spec.Name) {
		return
	}
	defer s.releaseName(spec.Name)

	// Persist the spec before opening the study: after a crash the spec on
	// disk, not the client, is what rebuilds the engine the WAL replays.
	data, err := json.MarshalIndent(&spec, "", " ")
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if err := histdb.WriteFileDurable(s.specPath(spec.Name), data); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	st, err := s.openStudy(spec)
	if err != nil {
		os.Remove(s.specPath(spec.Name))
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	if !s.installStudy(w, st, func() { os.Remove(s.specPath(spec.Name)) }) {
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{"name": spec.Name, "tasks": len(spec.Tasks)})
}

// reserveName reserves a study name for an in-flight create/import under
// the server lock, so the durable writes and WAL open can happen outside
// it: the reservation keeps a concurrent duplicate from passing the exists
// check mid-I/O while distinct names proceed in parallel. On failure it
// writes the HTTP error (503 shutting down, 409 duplicate) and returns
// false. A true return must be paired with releaseName.
func (s *Server) reserveName(w http.ResponseWriter, name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		writeError(w, http.StatusServiceUnavailable, errors.New("serve: server is shutting down"))
		return false
	}
	if _, exists := s.studies[name]; exists || s.pending[name] {
		writeError(w, http.StatusConflict, fmt.Errorf("serve: study %s already exists", name))
		return false
	}
	s.pending[name] = true
	return true
}

func (s *Server) releaseName(name string) {
	s.mu.Lock()
	delete(s.pending, name)
	s.mu.Unlock()
}

// installStudy inserts an opened study under the lock, re-checking closed:
// if Close ran while the study was being opened, its teardown snapshot
// cannot contain this study, so unwind (close the WAL, run the caller's
// on-disk cleanup) rather than leak an open log. Writes the HTTP error and
// returns false on that race.
func (s *Server) installStudy(w http.ResponseWriter, st *study, cleanup func()) bool {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		st.cp.Close()
		cleanup()
		writeError(w, http.StatusServiceUnavailable, errors.New("serve: server is shutting down"))
		return false
	}
	s.studies[st.spec.Name] = st
	s.mu.Unlock()
	return true
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	names := make([]string, 0, len(s.studies))
	for name := range s.studies {
		names = append(names, name)
	}
	s.mu.Unlock()
	sort.Strings(names)
	writeJSON(w, http.StatusOK, map[string]any{"studies": names})
}

// studyStatus is the GET /studies/{study} response.
type studyStatus struct {
	Name         string `json:"name"`
	Surrogate    string `json:"surrogate"` // model backend the engine resolved (see surrogate.Kinds)
	Phase        string `json:"phase"`     // engine phase: "init", "search", "mo" or "done"
	Tasks        int    `json:"tasks"`
	Observations int    `json:"observations"`    // committed evaluations across tasks
	Logged       int    `json:"logged"`          // records in the WAL
	Async        bool   `json:"async,omitempty"` // background batch generation (spec options.async)
	Done         bool   `json:"done"`
	Error        string `json:"error,omitempty"` // fatal engine error, if any
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := s.lookup(r.PathValue("study"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: no study %s", r.PathValue("study")))
		return
	}
	res := st.eng.Result()
	obs := 0
	for _, t := range res.Tasks {
		obs += len(t.Y)
	}
	status := studyStatus{
		Name:         st.spec.Name,
		Surrogate:    st.eng.Surrogate(),
		Phase:        st.eng.Phase(),
		Tasks:        len(res.Tasks),
		Observations: obs,
		Logged:       st.cp.Logged(),
		Async:        st.spec.Options.Async,
		Done:         st.eng.Done(),
	}
	if err := st.eng.Err(); err != nil {
		status.Error = err.Error()
	}
	writeJSON(w, http.StatusOK, status)
}

// suggestRequest is the POST /studies/{study}/suggest body. Task -1 (or an
// empty body) asks for any task's next configuration.
type suggestRequest struct {
	Task int `json:"task"`
}

// suggestion is the wire form of one core.Suggestion.
type suggestion struct {
	ID    int64     `json:"id"`
	Task  int       `json:"task"`
	Phase string    `json:"phase,omitempty"`
	X     []float64 `json:"x"`
}

func wireSuggestion(sg core.Suggestion) *suggestion {
	return &suggestion{ID: sg.ID, Task: sg.Task, Phase: sg.Phase, X: sg.X}
}

// suggestResponse is the POST suggest response: either Suggestion (a
// configuration to evaluate) or Done (budget exhausted), never both. The
// nesting is deliberate — a flat struct without omitempty once serialized a
// done study as {"id":0,"task":0,"done":true}, indistinguishable from a
// real task-0 suggestion to a client that ignored the done flag.
type suggestResponse struct {
	Suggestion *suggestion `json:"suggestion,omitempty"`
	Done       bool        `json:"done,omitempty"`
}

// retryAfterSeconds derives the Retry-After hint (whole seconds) sent with
// the ErrNonePending 409 from the study's observed batch-generation latency
// (Engine.GenLatency EWMA). A constant hint is wrong in both directions: one
// second is ~100× too long for a sub-10ms async refit and starves a cold
// n=3k exact refit into hammering. Async studies may be told "0" (retry
// immediately — the background fit is sub-second); sync studies round up and
// never below 1, because their 409s mean every outstanding configuration is
// held by another client, which no fast retry fixes.
func retryAfterSeconds(gen time.Duration, async bool) string {
	if async {
		return strconv.FormatInt(int64(gen/time.Second), 10)
	}
	secs := int64((gen + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

func (s *Server) handleSuggest(w http.ResponseWriter, r *http.Request) {
	st, ok := s.lookup(r.PathValue("study"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: no study %s", r.PathValue("study")))
		return
	}
	req := suggestRequest{Task: -1}
	if err := s.decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Task < -1 || req.Task >= len(st.spec.Tasks) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: task %d out of range (study has %d tasks)", req.Task, len(st.spec.Tasks)))
		return
	}
	sg, err := st.eng.Suggest(req.Task)
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, suggestResponse{Suggestion: wireSuggestion(sg)})
	case errors.Is(err, core.ErrDone):
		writeJSON(w, http.StatusOK, suggestResponse{Done: true})
	case errors.Is(err, core.ErrNonePending):
		// Every outstanding configuration is held by another client, or (on
		// an async study) the next batch is still being generated; retry
		// after a short backoff.
		w.Header().Set("Retry-After", retryAfterSeconds(st.eng.GenLatency(), st.spec.Options.Async))
		writeError(w, http.StatusConflict, err)
	default:
		writeError(w, statusFor(err), err)
	}
}

// reportRequest is the POST /studies/{study}/report body: either Y (the
// measured outputs) or Failed (the evaluation errored; Error says why).
type reportRequest struct {
	ID     int64     `json:"id"`
	Y      []float64 `json:"y,omitempty"`
	Failed bool      `json:"failed,omitempty"`
	Error  string    `json:"error,omitempty"`
}

// reportResponse acknowledges a report. After a failure the engine may hand
// back a substitute configuration under the same ID (Retry); Terminal means
// the configuration failed for good and the study cannot finish its batch.
type reportResponse struct {
	OK       bool        `json:"ok"`
	Retry    *suggestion `json:"retry,omitempty"`
	Terminal bool        `json:"terminal,omitempty"`
	Error    string      `json:"error,omitempty"`
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	st, ok := s.lookup(r.PathValue("study"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: no study %s", r.PathValue("study")))
		return
	}
	var req reportRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Failed {
		var cause error
		if req.Error != "" {
			cause = errors.New(req.Error)
		}
		next, err := st.eng.Fail(req.ID, cause)
		switch {
		case err == nil:
			writeJSON(w, http.StatusOK, reportResponse{OK: true, Retry: wireSuggestion(next)})
		case errors.Is(err, core.ErrTerminalFailure):
			writeJSON(w, http.StatusOK, reportResponse{OK: false, Terminal: true, Error: err.Error()})
		default:
			writeError(w, statusFor(err), err)
		}
		return
	}
	if err := st.eng.Observe(req.ID, req.Y); err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, reportResponse{OK: true})
}

// statusFor maps engine errors onto HTTP codes via the typed sentinels core
// exports: an unknown suggestion ID is the client's 404, a structurally
// invalid observation its 400, and everything else (checkpoint IO, modeling
// failures) the server's 500. Matching with errors.Is replaces the old
// error-text substring routing, under which any server-side error whose
// message happened to contain "returned" or "non-finite" — a checkpoint
// path, a wrapped IO error — was misreported as the client's fault.
func statusFor(err error) int {
	switch {
	case errors.Is(err, core.ErrUnknownSuggestion):
		return http.StatusNotFound
	case errors.Is(err, core.ErrBadObservation):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

// taskHistory is one task's slice of the GET history/best/pareto responses.
type taskHistory struct {
	Task []float64   `json:"task"`
	X    [][]float64 `json:"x"`
	Y    [][]float64 `json:"y"`
}

func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	st, ok := s.lookup(r.PathValue("study"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: no study %s", r.PathValue("study")))
		return
	}
	res := st.eng.Result()
	out := make([]taskHistory, len(res.Tasks))
	for i, t := range res.Tasks {
		out[i] = taskHistory{Task: t.Task, X: t.X, Y: t.Y}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"surrogate": st.eng.Surrogate(),
		"phase":     st.eng.Phase(),
		"tasks":     out,
	})
}

// bestEntry is one task's incumbent for objective 0.
type bestEntry struct {
	Task []float64 `json:"task"`
	X    []float64 `json:"x,omitempty"`
	Y    []float64 `json:"y,omitempty"`
}

func (s *Server) handleBest(w http.ResponseWriter, r *http.Request) {
	st, ok := s.lookup(r.PathValue("study"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: no study %s", r.PathValue("study")))
		return
	}
	res := st.eng.Result()
	out := make([]bestEntry, len(res.Tasks))
	for i, t := range res.Tasks {
		out[i] = bestEntry{Task: t.Task}
		if len(t.Y) > 0 {
			x, y := t.Best()
			out[i].X, out[i].Y = x, y
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"tasks": out})
}

func (s *Server) handlePareto(w http.ResponseWriter, r *http.Request) {
	st, ok := s.lookup(r.PathValue("study"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: no study %s", r.PathValue("study")))
		return
	}
	res := st.eng.Result()
	out := make([]taskHistory, len(res.Tasks))
	for i, t := range res.Tasks {
		out[i] = taskHistory{Task: t.Task, X: [][]float64{}, Y: [][]float64{}}
		for _, idx := range t.ParetoFront() {
			out[i].X = append(out[i].X, t.X[idx])
			out[i].Y = append(out[i].Y, t.Y[idx])
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"tasks": out})
}
