package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/apps/analytical"
	"repro/internal/core"
	"repro/internal/space"
)

// paperObjective is Eq. (11) of the paper, shared from the analytical app.
// The HTTP client evaluates it out of process — the server never sees an
// Objective.
var paperObjective = analytical.Objective

var testTasks = [][]float64{{0}, {1.5}, {3}}

// testSpec is the wire form of the core tests' analyticalProblem.
func testSpec(name string, epsTot int, seed int64) StudySpec {
	return StudySpec{
		Name:       name,
		TaskParams: []ParamSpec{{Name: "t", Kind: "real", Lo: 0, Hi: 10}},
		Tuning:     []ParamSpec{{Name: "x", Kind: "real", Lo: 0, Hi: 1}},
		Outputs:    []string{"y"},
		Tasks:      testTasks,
		Options:    OptionsSpec{EpsTot: epsTot, Seed: seed, Workers: 1},
	}
}

// testClient drives the JSON API against a base URL.
type testClient struct {
	t    *testing.T
	base string
}

// post sends body and decodes the response into out (when non-nil),
// returning the status code.
func (c *testClient) post(path string, body, out any) int {
	c.t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		c.t.Fatal(err)
	}
	resp, err := http.Post(c.base+path, "application/json", bytes.NewReader(data))
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			c.t.Fatalf("POST %s: decoding response: %v", path, err)
		}
	}
	return resp.StatusCode
}

func (c *testClient) get(path string, out any) int {
	c.t.Helper()
	resp, err := http.Get(c.base + path)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			c.t.Fatalf("GET %s: decoding response: %v", path, err)
		}
	}
	return resp.StatusCode
}

// drive runs suggest/report cycles against a study until the budget is
// exhausted (maxCycles < 0) or maxCycles evaluations were reported,
// evaluating paperObjective client-side. A 409 (none pending — on an async
// study, the next batch is still generating) backs off briefly and retries,
// like a well-behaved client honoring Retry-After. Returns the number of
// evaluations paid.
func (c *testClient) drive(study string, tasks [][]float64, maxCycles int) int {
	c.t.Helper()
	paid := 0
	for maxCycles < 0 || paid < maxCycles {
		var sg suggestResponse
		code := c.post("/studies/"+study+"/suggest", map[string]int{"task": -1}, &sg)
		if code == http.StatusConflict {
			time.Sleep(2 * time.Millisecond)
			continue
		}
		if code != http.StatusOK {
			c.t.Fatalf("suggest: status %d", code)
		}
		if sg.Done {
			break
		}
		if sg.Suggestion == nil {
			c.t.Fatalf("200 suggest response carries neither a suggestion nor done")
		}
		y := paperObjective(tasks[sg.Suggestion.Task][0], sg.Suggestion.X[0])
		paid++
		var rep reportResponse
		if code := c.post("/studies/"+study+"/report", reportRequest{ID: sg.Suggestion.ID, Y: []float64{y}}, &rep); code != http.StatusOK {
			c.t.Fatalf("report: status %d", code)
		}
		if !rep.OK {
			c.t.Fatalf("report not acknowledged: %+v", rep)
		}
	}
	return paid
}

// history fetches the study's full evaluation history.
func (c *testClient) history(study string) []taskHistory {
	c.t.Helper()
	var out struct {
		Tasks []taskHistory `json:"tasks"`
	}
	if code := c.get("/studies/"+study+"/history", &out); code != http.StatusOK {
		c.t.Fatalf("history: status %d", code)
	}
	return out.Tasks
}

func newTestServer(t *testing.T) (*Server, *testClient) {
	t.Helper()
	s, err := NewServer(Config{DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() { hs.Close(); s.Close() })
	return s, &testClient{t: t, base: hs.URL}
}

// TestServeParityWithBatchRun is the acceptance test for the ask/tell
// service: a study driven entirely over HTTP — the server holds no
// Objective; the client measures and reports — must visit bitwise the same
// configurations and record bitwise the same outputs as the in-process
// batch Run with the same spec, and land on the same best configuration.
func TestServeParityWithBatchRun(t *testing.T) {
	const epsTot, seed = 10, 42

	batch, err := core.Run(&core.Problem{
		Name:    "analytical",
		Tasks:   space.MustNew(space.NewReal("t", 0, 10)),
		Tuning:  space.MustNew(space.NewReal("x", 0, 1)),
		Outputs: space.NewOutputSpace("y"),
		Objective: func(task, x []float64) ([]float64, error) {
			return []float64{paperObjective(task[0], x[0])}, nil
		},
	}, testTasks, core.Options{EpsTot: epsTot, Seed: seed, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	_, c := newTestServer(t)
	if code := c.post("/studies", testSpec("parity", epsTot, seed), nil); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	paid := c.drive("parity", testTasks, -1)
	if want := epsTot * len(testTasks); paid != want {
		t.Fatalf("paid %d evaluations, want %d", paid, want)
	}

	hist := c.history("parity")
	if len(hist) != len(batch.Tasks) {
		t.Fatalf("history has %d tasks, want %d", len(hist), len(batch.Tasks))
	}
	for ti := range hist {
		h, b := hist[ti], batch.Tasks[ti]
		if len(h.X) != len(b.X) {
			t.Fatalf("task %d: %d evaluations over HTTP, %d in batch", ti, len(h.X), len(b.X))
		}
		for i := range h.X {
			for d := range h.X[i] {
				if math.Float64bits(h.X[i][d]) != math.Float64bits(b.X[i][d]) {
					t.Errorf("task %d sample %d: X differs: %v vs %v", ti, i, h.X[i][d], b.X[i][d])
				}
			}
			for k := range h.Y[i] {
				if math.Float64bits(h.Y[i][k]) != math.Float64bits(b.Y[i][k]) {
					t.Errorf("task %d sample %d: Y differs: %v vs %v", ti, i, h.Y[i][k], b.Y[i][k])
				}
			}
		}
	}

	var best struct {
		Tasks []bestEntry `json:"tasks"`
	}
	if code := c.get("/studies/parity/best", &best); code != http.StatusOK {
		t.Fatalf("best: status %d", code)
	}
	for ti := range best.Tasks {
		bx, by := batch.Tasks[ti].Best()
		if math.Float64bits(best.Tasks[ti].X[0]) != math.Float64bits(bx[0]) ||
			math.Float64bits(best.Tasks[ti].Y[0]) != math.Float64bits(by[0]) {
			t.Errorf("task %d: best differs: (%v, %v) vs (%v, %v)",
				ti, best.Tasks[ti].X[0], best.Tasks[ti].Y[0], bx[0], by[0])
		}
	}
}

// TestServeInProcessRestartResumes kills a study's server (in-process: the
// Server is closed, a new one opens the same data directory) mid-study and
// checks the resumed history matches an uninterrupted run bitwise, with no
// committed evaluation re-paid.
func TestServeInProcessRestartResumes(t *testing.T) {
	const epsTot, seed, killAfter = 8, 7, 9

	ref, rc := newTestServer(t)
	_ = ref
	if code := rc.post("/studies", testSpec("ref", epsTot, seed), nil); code != http.StatusCreated {
		t.Fatalf("create ref: status %d", code)
	}
	rc.drive("ref", testTasks, -1)
	want := rc.history("ref")

	dir := t.TempDir()
	s1, err := NewServer(Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	hs1 := httptest.NewServer(s1.Handler())
	c1 := &testClient{t: t, base: hs1.URL}
	if code := c1.post("/studies", testSpec("crashy", epsTot, seed), nil); code != http.StatusCreated {
		t.Fatalf("create crashy: status %d", code)
	}
	paid := c1.drive("crashy", testTasks, killAfter)
	hs1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := NewServer(Config{DataDir: dir})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	hs2 := httptest.NewServer(s2.Handler())
	t.Cleanup(func() { hs2.Close(); s2.Close() })
	c2 := &testClient{t: t, base: hs2.URL}

	var status studyStatus
	if code := c2.get("/studies/crashy", &status); code != http.StatusOK {
		t.Fatalf("status: %d", code)
	}
	if status.Logged != killAfter {
		t.Fatalf("restart sees %d logged records, want %d", status.Logged, killAfter)
	}
	paid += c2.drive("crashy", testTasks, -1)
	if want := epsTot * len(testTasks); paid != want {
		t.Fatalf("paid %d evaluations across the restart, want exactly %d (committed work must not be re-paid)", paid, want)
	}

	got := c2.history("crashy")
	for ti := range want {
		if len(got[ti].X) != len(want[ti].X) {
			t.Fatalf("task %d: resumed history has %d evaluations, want %d", ti, len(got[ti].X), len(want[ti].X))
		}
		for i := range want[ti].X {
			if math.Float64bits(got[ti].X[i][0]) != math.Float64bits(want[ti].X[i][0]) ||
				math.Float64bits(got[ti].Y[i][0]) != math.Float64bits(want[ti].Y[i][0]) {
				t.Errorf("task %d sample %d: resumed history diverged", ti, i)
			}
		}
	}
}

// TestServeFailedReportRetries exercises the Fail path over HTTP: a failed
// evaluation yields a substitute configuration under the same ID, and the
// third consecutive failure is terminal.
func TestServeFailedReportRetries(t *testing.T) {
	_, c := newTestServer(t)
	if code := c.post("/studies", testSpec("flaky", 4, 3), nil); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	var sg suggestResponse
	if code := c.post("/studies/flaky/suggest", nil, &sg); code != http.StatusOK {
		t.Fatalf("suggest: status %d", code)
	}
	id := sg.Suggestion.ID
	prev := sg.Suggestion.X[0]
	for attempt := 1; attempt <= 3; attempt++ {
		var rep reportResponse
		code := c.post("/studies/flaky/report", reportRequest{ID: id, Failed: true, Error: "node died"}, &rep)
		if code != http.StatusOK {
			t.Fatalf("attempt %d: status %d", attempt, code)
		}
		if attempt < 3 {
			if rep.Retry == nil || rep.Retry.ID != id {
				t.Fatalf("attempt %d: want retry under id %d, got %+v", attempt, id, rep)
			}
			if rep.Retry.X[0] == prev {
				t.Fatalf("attempt %d: retry did not substitute a fresh configuration", attempt)
			}
			prev = rep.Retry.X[0]
		} else if !rep.Terminal {
			t.Fatalf("attempt 3: want terminal failure, got %+v", rep)
		}
	}
}

// TestServeRejectsBadRequests covers the API's validation surface.
func TestServeRejectsBadRequests(t *testing.T) {
	_, c := newTestServer(t)

	bad := testSpec("ok", 4, 1)
	bad.Name = "../escape"
	if code := c.post("/studies", bad, nil); code != http.StatusBadRequest {
		t.Errorf("path-traversal name: status %d, want 400", code)
	}
	bad = testSpec("ok", 4, 1)
	bad.Tuning[0].Kind = "complex"
	if code := c.post("/studies", bad, nil); code != http.StatusBadRequest {
		t.Errorf("unknown kind: status %d, want 400", code)
	}
	bad = testSpec("ok", 4, 1)
	bad.Outputs = nil
	if code := c.post("/studies", bad, nil); code != http.StatusBadRequest {
		t.Errorf("no outputs: status %d, want 400", code)
	}
	bad = testSpec("ok", 4, 1)
	bad.Tasks = [][]float64{{0, 1}}
	if code := c.post("/studies", bad, nil); code != http.StatusBadRequest {
		t.Errorf("task arity mismatch: status %d, want 400", code)
	}

	if code := c.post("/studies", testSpec("ok", 4, 1), nil); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	if code := c.post("/studies", testSpec("ok", 4, 1), nil); code != http.StatusConflict {
		t.Errorf("duplicate study: status %d, want 409", code)
	}
	if code := c.post("/studies/nope/suggest", nil, nil); code != http.StatusNotFound {
		t.Errorf("unknown study: status %d, want 404", code)
	}
	if code := c.post("/studies/ok/report", reportRequest{ID: 999, Y: []float64{1}}, nil); code != http.StatusNotFound {
		t.Errorf("unknown suggestion id: status %d, want 404", code)
	}
	var sg suggestResponse
	if code := c.post("/studies/ok/suggest", nil, &sg); code != http.StatusOK {
		t.Fatalf("suggest: status %d", code)
	}
	if code := c.post("/studies/ok/report", reportRequest{ID: sg.Suggestion.ID, Y: []float64{1, 2}}, nil); code != http.StatusBadRequest {
		t.Errorf("wrong output arity: status %d, want 400", code)
	}
	// JSON has no literal for Inf/NaN, so a non-finite report dies at body
	// parsing; either way the engine never sees it.
	resp, err := http.Post(c.base+"/studies/ok/report", "application/json",
		bytes.NewReader([]byte(`{"id":`+fmt.Sprint(sg.Suggestion.ID)+`,"y":[1e999]}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("non-finite output: status %d, want 400", resp.StatusCode)
	}
}

// TestServeSuggestPerTask checks task-scoped suggestions and the
// none-pending signal.
func TestServeSuggestPerTask(t *testing.T) {
	_, c := newTestServer(t)
	if code := c.post("/studies", testSpec("scoped", 4, 5), nil); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	var sg suggestResponse
	if code := c.post("/studies/scoped/suggest", suggestRequest{Task: 1}, &sg); code != http.StatusOK {
		t.Fatalf("suggest task 1: status %d", code)
	}
	if sg.Suggestion.Task != 1 {
		t.Fatalf("asked for task 1, got task %d", sg.Suggestion.Task)
	}
	// Drain task 1's remaining fresh init job; the next ask then re-issues
	// the first outstanding suggestion (crashed-client re-ask), same ID.
	var second suggestResponse
	if code := c.post("/studies/scoped/suggest", suggestRequest{Task: 1}, &second); code != http.StatusOK {
		t.Fatalf("second suggest: status %d", code)
	}
	var again suggestResponse
	if code := c.post("/studies/scoped/suggest", suggestRequest{Task: 1}, &again); code != http.StatusOK {
		t.Fatalf("re-suggest: status %d", code)
	}
	if again.Suggestion.ID != sg.Suggestion.ID {
		t.Fatalf("re-ask for task 1 returned id %d, want outstanding id %d", again.Suggestion.ID, sg.Suggestion.ID)
	}
	if code := c.post("/studies/scoped/suggest", suggestRequest{Task: 99}, nil); code != http.StatusBadRequest {
		t.Errorf("out-of-range task: status %d, want 400", code)
	}
}

// TestServeMultiObjectivePareto drives a two-objective study over HTTP and
// checks the pareto endpoint returns a non-dominated set.
func TestServeMultiObjectivePareto(t *testing.T) {
	spec := StudySpec{
		Name:       "mo",
		TaskParams: []ParamSpec{{Name: "t", Kind: "real", Lo: 0, Hi: 10}},
		Tuning:     []ParamSpec{{Name: "x", Kind: "real", Lo: 0, Hi: 1}},
		Outputs:    []string{"y1", "y2"},
		Tasks:      [][]float64{{1}},
		Options:    OptionsSpec{EpsTot: 6, Seed: 11, MOGenerations: 5, MOPopSize: 12},
	}
	_, c := newTestServer(t)
	if code := c.post("/studies", spec, nil); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	for {
		var sg suggestResponse
		if code := c.post("/studies/mo/suggest", nil, &sg); code != http.StatusOK {
			t.Fatalf("suggest: status %d", code)
		}
		if sg.Done {
			break
		}
		x := sg.Suggestion.X[0]
		y := []float64{x * x, (x - 1) * (x - 1)}
		if code := c.post("/studies/mo/report", reportRequest{ID: sg.Suggestion.ID, Y: y}, nil); code != http.StatusOK {
			t.Fatalf("report: status %d", code)
		}
	}
	var front struct {
		Tasks []taskHistory `json:"tasks"`
	}
	if code := c.get("/studies/mo/pareto", &front); code != http.StatusOK {
		t.Fatalf("pareto: status %d", code)
	}
	if len(front.Tasks) != 1 || len(front.Tasks[0].Y) == 0 {
		t.Fatalf("empty pareto front: %+v", front)
	}
	for _, a := range front.Tasks[0].Y {
		for _, b := range front.Tasks[0].Y {
			if dominates(a, b) {
				t.Fatalf("pareto front contains dominated point: %v dominates %v", a, b)
			}
		}
	}
}

func dominates(a, b []float64) bool {
	strict := false
	for i := range a {
		if a[i] > b[i] {
			return false
		}
		if a[i] < b[i] {
			strict = true
		}
	}
	return strict
}

// TestServeSurrogateRestartRoundTrip: the spec's "surrogate" field selects
// the engine's model backend, survives the spec's durable persistence across
// a server restart, and is reported (with the engine phase) by the status and
// history endpoints. An unknown kind is rejected before anything is persisted.
func TestServeSurrogateRestartRoundTrip(t *testing.T) {
	spec := StudySpec{
		Name:       "forest",
		TaskParams: []ParamSpec{{Name: "t", Kind: "real", Lo: 0, Hi: 10}},
		Tuning:     []ParamSpec{{Name: "x", Kind: "real", Lo: 0, Hi: 1}},
		Outputs:    []string{"y"},
		Tasks:      [][]float64{{1.5}},
		Options:    OptionsSpec{EpsTot: 6, Seed: 13, Workers: 1, Surrogate: "rf"},
	}
	tasks := spec.Tasks

	dir := t.TempDir()
	s1, err := NewServer(Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	hs1 := httptest.NewServer(s1.Handler())
	c1 := &testClient{t: t, base: hs1.URL}

	bad := spec
	bad.Name = "bogus"
	bad.Options.Surrogate = "kriging"
	if code := c1.post("/studies", bad, nil); code != http.StatusBadRequest {
		t.Fatalf("unknown surrogate: status %d, want 400", code)
	}
	if code := c1.post("/studies", spec, nil); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}

	var status studyStatus
	if code := c1.get("/studies/forest", &status); code != http.StatusOK {
		t.Fatalf("status: %d", code)
	}
	if status.Surrogate != "rf" || status.Phase != "init" {
		t.Fatalf("fresh study: surrogate=%q phase=%q, want rf/init", status.Surrogate, status.Phase)
	}

	// Kill the server mid-init and reopen the data directory: the persisted
	// spec, not the client, must carry the surrogate choice through.
	c1.drive("forest", tasks, 2)
	hs1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := NewServer(Config{DataDir: dir})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	hs2 := httptest.NewServer(s2.Handler())
	t.Cleanup(func() { hs2.Close(); s2.Close() })
	c2 := &testClient{t: t, base: hs2.URL}

	if code := c2.get("/studies/forest", &status); code != http.StatusOK {
		t.Fatalf("status after restart: %d", code)
	}
	if status.Surrogate != "rf" || status.Phase != "init" {
		t.Fatalf("resumed study: surrogate=%q phase=%q, want rf/init", status.Surrogate, status.Phase)
	}
	c2.drive("forest", tasks, -1)
	if code := c2.get("/studies/forest", &status); code != http.StatusOK {
		t.Fatalf("status after finish: %d", code)
	}
	if !status.Done || status.Phase != "done" || status.Surrogate != "rf" {
		t.Fatalf("finished study: done=%v phase=%q surrogate=%q", status.Done, status.Phase, status.Surrogate)
	}

	var hist struct {
		Surrogate string        `json:"surrogate"`
		Phase     string        `json:"phase"`
		Tasks     []taskHistory `json:"tasks"`
	}
	if code := c2.get("/studies/forest/history", &hist); code != http.StatusOK {
		t.Fatalf("history: %d", code)
	}
	if hist.Surrogate != "rf" || hist.Phase != "done" {
		t.Fatalf("history reports surrogate=%q phase=%q, want rf/done", hist.Surrogate, hist.Phase)
	}
	if got := len(hist.Tasks[0].X); got != 6 {
		t.Fatalf("finished study has %d evaluations, want 6", got)
	}
}

// TestServeSpecRoundTrip checks the spec survives its JSON persistence
// bitwise (tasks are float64s; the spec on disk rebuilds the engine).
func TestServeSpecRoundTrip(t *testing.T) {
	spec := testSpec("rt", 6, 99)
	spec.Tasks = [][]float64{{math.Pi}, {math.Nextafter(1, 2)}}
	data, err := json.Marshal(&spec)
	if err != nil {
		t.Fatal(err)
	}
	var back StudySpec
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	for i := range spec.Tasks {
		if math.Float64bits(back.Tasks[i][0]) != math.Float64bits(spec.Tasks[i][0]) {
			t.Fatalf("task %d did not round-trip bitwise: %v vs %v", i, back.Tasks[i][0], spec.Tasks[i][0])
		}
	}
	if _, _, _, err := back.build(); err != nil {
		t.Fatalf("round-tripped spec no longer builds: %v", err)
	}
}

// TestConcurrentDuplicateCreate races N identical creates: the name
// reservation must let exactly one through (201) and reject the rest (409),
// without ever holding the server mutex across the spec fsync or WAL open.
func TestConcurrentDuplicateCreate(t *testing.T) {
	_, c := newTestServer(t)
	const racers = 8
	codes := make(chan int, racers)
	var wg sync.WaitGroup
	wg.Add(racers)
	for r := 0; r < racers; r++ {
		go func() {
			defer wg.Done()
			codes <- c.post("/studies", testSpec("dup", 4, 1), nil)
		}()
	}
	wg.Wait()
	close(codes)
	var created, conflicted int
	for code := range codes {
		switch code {
		case http.StatusCreated:
			created++
		case http.StatusConflict:
			conflicted++
		default:
			t.Fatalf("unexpected status %d", code)
		}
	}
	if created != 1 || conflicted != racers-1 {
		t.Fatalf("got %d created / %d conflicted, want 1 / %d", created, conflicted, racers-1)
	}
	// The winner is fully usable.
	var out struct {
		Studies []string `json:"studies"`
	}
	if code := c.get("/studies", &out); code != http.StatusOK || len(out.Studies) != 1 {
		t.Fatalf("list after race: code %d, studies %v", code, out.Studies)
	}
}

// TestConcurrentDistinctCreates verifies distinct names do not serialize
// against each other's I/O and all succeed.
func TestConcurrentDistinctCreates(t *testing.T) {
	_, c := newTestServer(t)
	const n = 6
	var wg sync.WaitGroup
	errs := make(chan error, n)
	wg.Add(n)
	for r := 0; r < n; r++ {
		go func(r int) {
			defer wg.Done()
			name := fmt.Sprintf("study-%d", r)
			if code := c.post("/studies", testSpec(name, 4, int64(r+1)), nil); code != http.StatusCreated {
				errs <- fmt.Errorf("create %s: status %d", name, code)
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	var out struct {
		Studies []string `json:"studies"`
	}
	if code := c.get("/studies", &out); code != http.StatusOK || len(out.Studies) != n {
		t.Fatalf("list: code %d, got %d studies, want %d", code, len(out.Studies), n)
	}
}

// TestSuggestResponseEncoding pins the suggest wire format: a done response
// is exactly {"done":true} — the old flat struct serialized it as
// {"id":0,"task":0,"done":true}, indistinguishable from a real task-0
// suggestion — and a real suggestion nests under "suggestion" with no done
// flag.
func TestSuggestResponseEncoding(t *testing.T) {
	data, err := json.Marshal(suggestResponse{Done: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(string(data)); got != `{"done":true}` {
		t.Errorf("done response encodes as %s, want {\"done\":true}", got)
	}
	data, err = json.Marshal(suggestResponse{Suggestion: &suggestion{ID: 3, Task: 1, Phase: "init", X: []float64{0.5}}})
	if err != nil {
		t.Fatal(err)
	}
	var loose map[string]any
	if err := json.Unmarshal(data, &loose); err != nil {
		t.Fatal(err)
	}
	if _, hasDone := loose["done"]; hasDone {
		t.Errorf("suggestion response leaks a done field: %s", data)
	}
	inner, ok := loose["suggestion"].(map[string]any)
	if !ok {
		t.Fatalf("suggestion response has no nested suggestion object: %s", data)
	}
	for _, field := range []string{"id", "task", "x"} {
		if _, ok := inner[field]; !ok {
			t.Errorf("nested suggestion is missing %q: %s", field, data)
		}
	}

	// End to end: a finished study's suggest body must not contain id/task.
	_, c := newTestServer(t)
	if code := c.post("/studies", testSpec("enc", 2, 21), nil); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	c.drive("enc", testTasks, -1)
	resp, err := http.Post(c.base+"/studies/enc/suggest", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["id"]; ok {
		t.Errorf("done suggest body still carries a top-level id: %v", raw)
	}
	if done, _ := raw["done"].(bool); !done {
		t.Errorf("finished study's suggest body lacks done: %v", raw)
	}
}

// TestServeAsyncStudyParity drives an async study (options.async) to
// completion and requires its history to match a synchronous study's
// bitwise: background generation must change blocking behavior only, never
// a tuning decision. It also pins the async contract's visible edges: the
// suggest that triggers a background generation answers 409 with a
// Retry-After hint instead of blocking out the fit.
func TestServeAsyncStudyParity(t *testing.T) {
	const epsTot, seed = 8, 17
	_, c := newTestServer(t)

	if code := c.post("/studies", testSpec("sync", epsTot, seed), nil); code != http.StatusCreated {
		t.Fatalf("create sync: status %d", code)
	}
	c.drive("sync", testTasks, -1)
	want := c.history("sync")

	async := testSpec("async", epsTot, seed)
	async.Options.Async = true
	if code := c.post("/studies", async, nil); code != http.StatusCreated {
		t.Fatalf("create async: status %d", code)
	}
	// The very first suggest finds no batch and kicks the background
	// generator; the engine must answer none-pending immediately rather
	// than wait for the initial sampling to land.
	resp, err := http.Post(c.base+"/studies/async/suggest", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("first async suggest: status %d, want 409 while the batch generates", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Errorf("409 carries no Retry-After hint")
	}

	c.drive("async", testTasks, -1)
	got := c.history("async")

	var status studyStatus
	if code := c.get("/studies/async", &status); code != http.StatusOK {
		t.Fatalf("status: %d", code)
	}
	if !status.Async || !status.Done {
		t.Fatalf("finished async study reports async=%v done=%v", status.Async, status.Done)
	}
	for ti := range want {
		if len(got[ti].X) != len(want[ti].X) {
			t.Fatalf("task %d: async history has %d evaluations, sync %d", ti, len(got[ti].X), len(want[ti].X))
		}
		for i := range want[ti].X {
			if math.Float64bits(got[ti].X[i][0]) != math.Float64bits(want[ti].X[i][0]) ||
				math.Float64bits(got[ti].Y[i][0]) != math.Float64bits(want[ti].Y[i][0]) {
				t.Errorf("task %d sample %d: async history diverged from sync", ti, i)
			}
		}
	}
}

// TestServeAsyncRestartResumes closes a server mid-async-study (Close must
// quiesce the background generator before closing the WAL) and resumes it
// in a new server, finishing with the synchronous reference history.
func TestServeAsyncRestartResumes(t *testing.T) {
	const epsTot, seed, killAfter = 8, 23, 9
	_, rc := newTestServer(t)
	if code := rc.post("/studies", testSpec("ref", epsTot, seed), nil); code != http.StatusCreated {
		t.Fatalf("create ref: status %d", code)
	}
	rc.drive("ref", testTasks, -1)
	want := rc.history("ref")

	dir := t.TempDir()
	s1, err := NewServer(Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	hs1 := httptest.NewServer(s1.Handler())
	c1 := &testClient{t: t, base: hs1.URL}
	spec := testSpec("crashy", epsTot, seed)
	spec.Options.Async = true
	if code := c1.post("/studies", spec, nil); code != http.StatusCreated {
		t.Fatalf("create crashy: status %d", code)
	}
	paid := c1.drive("crashy", testTasks, killAfter)
	hs1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := NewServer(Config{DataDir: dir})
	if err != nil {
		t.Fatalf("restart: %v", err)
	}
	hs2 := httptest.NewServer(s2.Handler())
	t.Cleanup(func() { hs2.Close(); s2.Close() })
	c2 := &testClient{t: t, base: hs2.URL}
	paid += c2.drive("crashy", testTasks, -1)
	if want := epsTot * len(testTasks); paid != want {
		t.Fatalf("paid %d evaluations across the restart, want exactly %d", paid, want)
	}
	got := c2.history("crashy")
	for ti := range want {
		if len(got[ti].X) != len(want[ti].X) {
			t.Fatalf("task %d: resumed async history has %d evaluations, want %d", ti, len(got[ti].X), len(want[ti].X))
		}
		for i := range want[ti].X {
			if math.Float64bits(got[ti].X[i][0]) != math.Float64bits(want[ti].X[i][0]) ||
				math.Float64bits(got[ti].Y[i][0]) != math.Float64bits(want[ti].Y[i][0]) {
				t.Errorf("task %d sample %d: resumed async history diverged", ti, i)
			}
		}
	}
}

// TestCreateAfterClose pins the insert-or-rollback path: once Close has
// run, a create must fail with 503 and must not leak a WAL handle or a spec
// file for a study the close snapshot never saw.
func TestCreateAfterClose(t *testing.T) {
	s, c := newTestServer(t)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if code := c.post("/studies", testSpec("late", 4, 1), nil); code != http.StatusServiceUnavailable {
		t.Fatalf("create after close: status %d, want 503", code)
	}
	if _, err := os.Stat(s.specPath("late")); !os.IsNotExist(err) {
		t.Fatalf("spec file leaked after rejected create: %v", err)
	}
}
