// Package serve implements gptuned, the ask/tell tuning service: studies
// are created over HTTP, clients ask for configurations to evaluate
// (suggest) and report measurements back (report), and the server runs the
// GPTune MLA machinery through the step-wise core.Engine. Every observation
// is appended to the study's write-ahead log the moment it commits, so a
// killed server resumes all studies through the crash-safe replay path — a
// restarted study re-derives its decisions deterministically and pays at
// most the evaluations that were in flight when the process died.
package serve

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/space"
	"repro/internal/surrogate"
)

// ParamSpec is the wire form of one space.Param.
type ParamSpec struct {
	Name       string   `json:"name"`
	Kind       string   `json:"kind"` // "real", "integer" or "categorical"
	Lo         float64  `json:"lo,omitempty"`
	Hi         float64  `json:"hi,omitempty"`
	Log        bool     `json:"log,omitempty"`
	Categories []string `json:"categories,omitempty"`
}

func (ps ParamSpec) param() (space.Param, error) {
	switch ps.Kind {
	case "real":
		p := space.NewReal(ps.Name, ps.Lo, ps.Hi)
		p.LogScale = ps.Log
		return p, p.Validate()
	case "integer":
		p := space.NewInteger(ps.Name, int(ps.Lo), int(ps.Hi))
		p.LogScale = ps.Log
		return p, p.Validate()
	case "categorical":
		p := space.NewCategorical(ps.Name, ps.Categories...)
		return p, p.Validate()
	}
	return space.Param{}, fmt.Errorf("serve: parameter %q has unknown kind %q (want real, integer or categorical)", ps.Name, ps.Kind)
}

// OptionsSpec is the wire form of the core.Options a study runs with. Zero
// values take the engine's defaults. Fields that cannot round-trip through
// JSON (callbacks, checkpoint hooks, worker gates) are owned by the server.
type OptionsSpec struct {
	EpsTot        int     `json:"eps_tot"`
	InitFraction  float64 `json:"init_fraction,omitempty"`
	Workers       int     `json:"workers,omitempty"`
	LogY          bool    `json:"log_y,omitempty"`
	Q             int     `json:"q,omitempty"`
	NumStarts     int     `json:"num_starts,omitempty"`
	ModelMaxIter  int     `json:"model_max_iter,omitempty"`
	Acquisition   string  `json:"acquisition,omitempty"`
	LCBKappa      float64 `json:"lcb_kappa,omitempty"`
	BatchEvals    int     `json:"batch_evals,omitempty"`
	MOBatch       int     `json:"mo_batch,omitempty"`
	MOGenerations int     `json:"mo_generations,omitempty"`
	MOPopSize     int     `json:"mo_pop_size,omitempty"`
	Seed          int64   `json:"seed"`
	// Surrogate selects the model backend; surrogate.Kinds() is the
	// authoritative list and empty means the default ("lcm"). Validated at
	// study creation — an unknown kind is rejected (naming the known kinds)
	// before the spec is persisted.
	Surrogate string `json:"surrogate,omitempty"`
	// RefitEvery relearns surrogate hyperparameters only every k-th
	// generation, extending the model incrementally in between (0 or 1 =
	// refit every generation). See core.Options.RefitEvery.
	RefitEvery int `json:"refit_every,omitempty"`
	// Inducing bounds the "sgp" backend's per-task inducing set (0 = the
	// backend default, 128).
	Inducing int `json:"inducing,omitempty"`
	// Async serves suggestions off the modeling path: batch generation runs
	// in a background goroutine and suggest requests that arrive while the
	// next batch is being fitted get an immediate 409 + Retry-After instead
	// of blocking out the fit. The tuning history is bitwise identical to a
	// synchronous study's. See core.Options.Async.
	Async bool `json:"async,omitempty"`
}

// StudySpec is everything needed to (re)build a study's engine: the spaces,
// the task vectors, and the tuning options. It is persisted durably next to
// the study's WAL at creation time, so a restarted server always rebuilds
// the exact engine whose log it replays — the spec on disk, not the client,
// is the source of truth after a crash.
//
// Constraints (space.Constraint predicates) are Go functions and have no
// wire form, so hand-described spaces (Tuning/TaskParams) are always
// unconstrained. To tune a constrained space over HTTP, name a registered
// workload via Scenario instead: the server instantiates the spaces —
// constraints included — from the registry, and a restarted server
// re-resolves the same name from the persisted spec.
type StudySpec struct {
	Name string `json:"name"`
	// Scenario, when non-empty, names a workload-registry scenario
	// (bench.Get) that supplies the task/tuning/output spaces server-side.
	// Mutually exclusive with TaskParams/Tuning/Outputs. ScenarioParams are
	// the scenario's constructor parameters (e.g. {"nodes": 64}); omitted
	// keys take the scenario's defaults.
	Scenario       string             `json:"scenario,omitempty"`
	ScenarioParams map[string]float64 `json:"scenario_params,omitempty"`
	TaskParams     []ParamSpec        `json:"task_params,omitempty"` // optional IS description
	Tuning         []ParamSpec        `json:"tuning,omitempty"`
	Outputs        []string           `json:"outputs,omitempty"`
	Tasks          [][]float64        `json:"tasks"`
	Options        OptionsSpec        `json:"options"`
}

// validName reports whether a study name is safe to use as a file stem.
func validName(name string) bool {
	if name == "" || len(name) > 128 || strings.HasPrefix(name, ".") {
		return false
	}
	for _, r := range name {
		ok := r == '-' || r == '_' || r == '.' ||
			(r >= '0' && r <= '9') || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !ok {
			return false
		}
	}
	return true
}

// build turns the spec into the engine's inputs, validating everything a
// client could get wrong.
func (s *StudySpec) build() (*core.Problem, [][]float64, core.Options, error) {
	var zero core.Options
	if !validName(s.Name) {
		return nil, nil, zero, fmt.Errorf("serve: study name %q invalid (letters, digits, '.', '_', '-'; no leading dot)", s.Name)
	}
	if len(s.Tasks) == 0 {
		return nil, nil, zero, fmt.Errorf("serve: study %s has no tasks", s.Name)
	}
	if _, err := surrogate.New(s.Options.Surrogate); err != nil {
		return nil, nil, zero, fmt.Errorf("serve: study %s: %w", s.Name, err)
	}
	var prob *core.Problem
	var err error
	if s.Scenario != "" {
		prob, err = s.scenarioProblem()
	} else {
		prob, err = s.describedProblem()
	}
	if err != nil {
		return nil, nil, zero, err
	}
	dim := prob.Tasks.Dim()
	for i, t := range s.Tasks {
		if len(t) != dim {
			return nil, nil, zero, fmt.Errorf("serve: study %s task %d has %d values, task space has %d parameters", s.Name, i, len(t), dim)
		}
		for _, v := range t {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, nil, zero, fmt.Errorf("serve: study %s task %d has a non-finite value", s.Name, i)
			}
		}
	}
	o := s.Options
	opts := core.Options{
		EpsTot:        o.EpsTot,
		InitFraction:  o.InitFraction,
		Workers:       o.Workers,
		LogY:          o.LogY,
		Q:             o.Q,
		NumStarts:     o.NumStarts,
		ModelMaxIter:  o.ModelMaxIter,
		Acquisition:   o.Acquisition,
		LCBKappa:      o.LCBKappa,
		BatchEvals:    o.BatchEvals,
		MOBatch:       o.MOBatch,
		MOGenerations: o.MOGenerations,
		MOPopSize:     o.MOPopSize,
		Seed:          o.Seed,
		Surrogate:     o.Surrogate,
		RefitEvery:    o.RefitEvery,
		Inducing:      o.Inducing,
		Async:         o.Async,
	}
	return prob, s.Tasks, opts, nil
}

// scenarioProblem instantiates the study's spaces from the workload
// registry. This is the only path by which an HTTP-created study gets a
// constrained tuning space: the scenario's space.Constraint predicates ride
// along with the Problem, so the engine's feasible sampling and search apply
// exactly as they do in-process.
func (s *StudySpec) scenarioProblem() (*core.Problem, error) {
	if len(s.Tuning) > 0 || len(s.TaskParams) > 0 || len(s.Outputs) > 0 {
		return nil, fmt.Errorf("serve: study %s: scenario %q supplies the task/tuning/output spaces; drop tuning, task_params and outputs", s.Name, s.Scenario)
	}
	sc, err := bench.Get(s.Scenario)
	if err != nil {
		return nil, fmt.Errorf("serve: study %s: %w", s.Name, err)
	}
	prob, err := sc.Problem(bench.Params(s.ScenarioParams))
	if err != nil {
		return nil, fmt.Errorf("serve: study %s: %w", s.Name, err)
	}
	prob.Name = s.Name
	prob.Objective = nil // evaluations arrive over HTTP
	prob.Model = nil     // performance models need the in-process objective
	return prob, nil
}

// describedProblem builds the spaces from the spec's own ParamSpec lists
// (the original, registry-free creation path).
func (s *StudySpec) describedProblem() (*core.Problem, error) {
	if len(s.Tuning) == 0 {
		return nil, fmt.Errorf("serve: study %s has no tuning parameters", s.Name)
	}
	if len(s.Outputs) == 0 {
		return nil, fmt.Errorf("serve: study %s has no outputs", s.Name)
	}
	tuningParams := make([]space.Param, len(s.Tuning))
	for i, ps := range s.Tuning {
		p, err := ps.param()
		if err != nil {
			return nil, fmt.Errorf("serve: study %s tuning: %w", s.Name, err)
		}
		tuningParams[i] = p
	}
	tuning, err := space.New(tuningParams...)
	if err != nil {
		return nil, fmt.Errorf("serve: study %s tuning: %w", s.Name, err)
	}
	taskSpace, err := s.taskSpace()
	if err != nil {
		return nil, err
	}
	return &core.Problem{
		Name:    s.Name,
		Tasks:   taskSpace,
		Tuning:  tuning,
		Outputs: space.NewOutputSpace(s.Outputs...),
		// No Objective: evaluations arrive over HTTP.
	}, nil
}

// taskSpace builds the IS from the spec, synthesizing unconstrained real
// parameters spanning the supplied task vectors when the client omitted
// task_params (the engine never samples the task space; it only validates).
func (s *StudySpec) taskSpace() (*space.Space, error) {
	if len(s.TaskParams) > 0 {
		params := make([]space.Param, len(s.TaskParams))
		for i, ps := range s.TaskParams {
			p, err := ps.param()
			if err != nil {
				return nil, fmt.Errorf("serve: study %s task_params: %w", s.Name, err)
			}
			params[i] = p
		}
		sp, err := space.New(params...)
		if err != nil {
			return nil, fmt.Errorf("serve: study %s task_params: %w", s.Name, err)
		}
		return sp, nil
	}
	dim := len(s.Tasks[0])
	if dim == 0 {
		return nil, fmt.Errorf("serve: study %s has empty task vectors", s.Name)
	}
	params := make([]space.Param, dim)
	for d := 0; d < dim; d++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, t := range s.Tasks {
			if d < len(t) {
				lo = math.Min(lo, t[d])
				hi = math.Max(hi, t[d])
			}
		}
		if !(lo <= hi) {
			lo, hi = 0, 0
		}
		params[d] = space.NewReal(fmt.Sprintf("t%d", d), lo, hi)
	}
	sp, err := space.New(params...)
	if err != nil {
		return nil, fmt.Errorf("serve: study %s task space: %w", s.Name, err)
	}
	return sp, nil
}
