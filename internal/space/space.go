// Package space defines the parameter spaces of the GPTune problem
// formulation (paper Section 2): the task parameter input space IS, the
// tuning parameter space PS, and the output space OS. Parameters may be
// real, integer, or categorical, and spaces may carry inequality
// constraints such as the paper's p_r ≤ p example.
//
// Internally every point has two representations:
//
//   - native: one float64 per parameter in its own units (integers hold
//     whole values, categoricals hold the category index);
//   - normalized: the unit hypercube [0,1]^d used by samplers, kernels and
//     search algorithms.
package space

import (
	"fmt"
	"math"
	"strings"
)

// Kind enumerates the parameter types supported by GPTune.
type Kind int

const (
	// Real is a continuous parameter in [Lo, Hi].
	Real Kind = iota
	// Integer is a whole-valued parameter in [Lo, Hi].
	Integer
	// Categorical is a discrete choice among Categories.
	Categorical
)

func (k Kind) String() string {
	switch k {
	case Real:
		return "real"
	case Integer:
		return "integer"
	case Categorical:
		return "categorical"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Param describes a single task or tuning parameter.
type Param struct {
	Name       string
	Kind       Kind
	Lo, Hi     float64  // bounds for Real/Integer (inclusive)
	Categories []string // labels for Categorical
	LogScale   bool     // normalize Real/Integer on a log axis (requires Lo > 0)
}

// NewReal returns a continuous parameter on [lo, hi].
func NewReal(name string, lo, hi float64) Param {
	return Param{Name: name, Kind: Real, Lo: lo, Hi: hi}
}

// NewLogReal returns a continuous parameter normalized on a log axis.
func NewLogReal(name string, lo, hi float64) Param {
	return Param{Name: name, Kind: Real, Lo: lo, Hi: hi, LogScale: true}
}

// NewInteger returns a whole-valued parameter on [lo, hi].
func NewInteger(name string, lo, hi int) Param {
	return Param{Name: name, Kind: Integer, Lo: float64(lo), Hi: float64(hi)}
}

// NewLogInteger returns an integer parameter normalized on a log axis.
func NewLogInteger(name string, lo, hi int) Param {
	return Param{Name: name, Kind: Integer, Lo: float64(lo), Hi: float64(hi), LogScale: true}
}

// NewCategorical returns a categorical parameter over the given labels.
func NewCategorical(name string, categories ...string) Param {
	return Param{Name: name, Kind: Categorical, Categories: categories}
}

// Validate reports configuration errors in the parameter definition.
func (p Param) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("space: parameter with empty name")
	}
	switch p.Kind {
	case Real, Integer:
		if !(p.Lo <= p.Hi) {
			return fmt.Errorf("space: %s: bounds [%g, %g] invalid", p.Name, p.Lo, p.Hi)
		}
		if p.LogScale && p.Lo <= 0 {
			return fmt.Errorf("space: %s: log scale requires Lo > 0, got %g", p.Name, p.Lo)
		}
	case Categorical:
		if len(p.Categories) == 0 {
			return fmt.Errorf("space: %s: categorical with no categories", p.Name)
		}
	default:
		return fmt.Errorf("space: %s: unknown kind %v", p.Name, p.Kind)
	}
	return nil
}

// normalize maps a native value into [0,1].
//
// Categorical parameters use the cell-center convention: category j of k
// maps to the center (j+0.5)/k of the j-th of k equal cells of [0,1] — the
// same partition denormalize samples from. Kernel distances and sampled
// cells therefore agree: adjacent categories are 1/k apart, and a uniform
// u lands in each category with equal probability. (An earlier convention
// mapped j to j/(k−1), which placed the categories on a grid denormalize
// never inverted consistently, distorting every GP distance involving a
// categorical axis.)
func (p Param) normalize(v float64) float64 {
	switch p.Kind {
	case Categorical:
		k := len(p.Categories)
		return clamp01((v + 0.5) / float64(k))
	default:
		if p.Hi == p.Lo {
			return 0
		}
		if p.LogScale {
			return clamp01(math.Log(v/p.Lo) / math.Log(p.Hi/p.Lo))
		}
		return clamp01((v - p.Lo) / (p.Hi - p.Lo))
	}
}

// denormalize maps u ∈ [0,1] back to a native value (a whole value for
// Integer, a category index for Categorical).
//
// Integer parameters partition [0,1] into Hi−Lo+1 equal cells and take the
// cell index: Lo + ⌊u·(Hi−Lo+1)⌋, clamped. Under uniform u every integer —
// endpoints included — receives mass 1/(Hi−Lo+1). (The earlier
// Round(Lo + u·(Hi−Lo)) gave Lo and Hi half the mass of interior values,
// skewing LHS initial designs away from the bounds.) Log-scale integers
// keep rounding on the exponential curve: their cells are intentionally
// non-uniform in u, so there is no equal-mass partition to preserve.
func (p Param) denormalize(u float64) float64 {
	u = clamp01(u)
	switch p.Kind {
	case Categorical:
		k := len(p.Categories)
		idx := int(u * float64(k))
		if idx >= k {
			idx = k - 1
		}
		return float64(idx)
	case Integer:
		if p.LogScale {
			return clampRange(math.Round(p.Lo*math.Pow(p.Hi/p.Lo, u)), p.Lo, p.Hi)
		}
		return clampRange(p.Lo+math.Floor(u*(p.Hi-p.Lo+1)), p.Lo, p.Hi)
	default:
		if p.LogScale {
			return clampRange(p.Lo*math.Pow(p.Hi/p.Lo, u), p.Lo, p.Hi)
		}
		return clampRange(p.Lo+u*(p.Hi-p.Lo), p.Lo, p.Hi)
	}
}

func clamp01(u float64) float64 { return clampRange(u, 0, 1) }

func clampRange(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Constraint is a named feasibility predicate over native parameter values,
// keyed by parameter name. The paper's PDGEQRF example uses p_r ≤ p.
type Constraint struct {
	Name string
	Ok   func(vals map[string]float64) bool
}

// Space is an ordered collection of parameters plus constraints. It
// implements the paper's IS and PS spaces.
type Space struct {
	Params      []Param
	Constraints []Constraint
	index       map[string]int
}

// New builds a Space from the given parameters, validating each.
func New(params ...Param) (*Space, error) {
	s := &Space{Params: params, index: make(map[string]int, len(params))}
	for i, p := range params {
		if err := p.Validate(); err != nil {
			return nil, err
		}
		if _, dup := s.index[p.Name]; dup {
			return nil, fmt.Errorf("space: duplicate parameter %q", p.Name)
		}
		s.index[p.Name] = i
	}
	return s, nil
}

// MustNew is New panicking on error; for statically known-good spaces.
func MustNew(params ...Param) *Space {
	s, err := New(params...)
	if err != nil {
		panic(err)
	}
	return s
}

// AddConstraint appends a feasibility predicate.
func (s *Space) AddConstraint(name string, ok func(vals map[string]float64) bool) {
	s.Constraints = append(s.Constraints, Constraint{Name: name, Ok: ok})
}

// Dim returns the number of parameters (the paper's α or β).
func (s *Space) Dim() int { return len(s.Params) }

// IndexOf returns the position of the named parameter, or -1.
func (s *Space) IndexOf(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

// Normalize maps native values into the unit hypercube.
func (s *Space) Normalize(native []float64) []float64 {
	s.checkLen(native)
	u := make([]float64, len(native))
	for i, p := range s.Params {
		u[i] = p.normalize(native[i])
	}
	return u
}

// NormalizeInto writes the unit-hypercube image of native into dst, which
// must have length Dim — the allocation-free form of Normalize for search
// inner loops.
//
//gptlint:hotpath
func (s *Space) NormalizeInto(dst, native []float64) {
	s.checkLen(native)
	if len(dst) != len(native) {
		panic("space: NormalizeInto: dst length mismatch")
	}
	for i, p := range s.Params {
		dst[i] = p.normalize(native[i])
	}
}

// Denormalize maps a unit-hypercube point into native values.
func (s *Space) Denormalize(u []float64) []float64 {
	s.checkLen(u)
	v := make([]float64, len(u))
	for i, p := range s.Params {
		v[i] = p.denormalize(u[i])
	}
	return v
}

// DenormalizeInto writes the native image of u into dst, which must have
// length Dim — the allocation-free form of Denormalize for search inner
// loops.
//
//gptlint:hotpath
func (s *Space) DenormalizeInto(dst, u []float64) {
	s.checkLen(u)
	if len(dst) != len(u) {
		panic("space: DenormalizeInto: dst length mismatch")
	}
	for i, p := range s.Params {
		dst[i] = p.denormalize(u[i])
	}
}

// ValueMap returns the native values keyed by parameter name.
func (s *Space) ValueMap(native []float64) map[string]float64 {
	s.checkLen(native)
	m := make(map[string]float64, len(native))
	for i, p := range s.Params {
		m[p.Name] = native[i]
	}
	return m
}

// ValueMapInto fills m with the native values keyed by parameter name,
// reusing m's storage — the allocation-free form of ValueMap for search
// inner loops (overwriting an existing key does not allocate).
//
//gptlint:hotpath
func (s *Space) ValueMapInto(m map[string]float64, native []float64) {
	s.checkLen(native)
	for i, p := range s.Params {
		m[p.Name] = native[i]
	}
}

// Feasible reports whether the native point satisfies every constraint.
func (s *Space) Feasible(native []float64) bool {
	if len(s.Constraints) == 0 {
		return true
	}
	return s.FeasibleInto(make(map[string]float64, len(native)), native)
}

// FeasibleInto is Feasible with a caller-provided scratch map, so the
// per-candidate constraint check of a search inner loop allocates nothing.
//
//gptlint:hotpath
func (s *Space) FeasibleInto(scratch map[string]float64, native []float64) bool {
	if len(s.Constraints) == 0 {
		return true
	}
	s.ValueMapInto(scratch, native)
	for _, c := range s.Constraints {
		if !c.Ok(scratch) {
			return false
		}
	}
	return true
}

// FeasibleUnit reports whether the unit-hypercube point denormalizes to a
// feasible native point.
func (s *Space) FeasibleUnit(u []float64) bool {
	return s.Feasible(s.Denormalize(u))
}

// Round snaps a native point to the grid implied by Integer/Categorical
// parameters and clips to bounds.
func (s *Space) Round(native []float64) []float64 {
	s.checkLen(native)
	out := make([]float64, len(native))
	for i, p := range s.Params {
		v := native[i]
		switch p.Kind {
		case Integer:
			out[i] = clampRange(math.Round(v), p.Lo, p.Hi)
		case Categorical:
			out[i] = clampRange(math.Round(v), 0, float64(len(p.Categories)-1))
		default:
			out[i] = clampRange(v, p.Lo, p.Hi)
		}
	}
	return out
}

// Describe formats a native point as "name=value" pairs, resolving
// categorical indices to their labels.
func (s *Space) Describe(native []float64) string {
	s.checkLen(native)
	parts := make([]string, len(native))
	for i, p := range s.Params {
		switch p.Kind {
		case Categorical:
			idx := int(native[i])
			if idx < 0 || idx >= len(p.Categories) {
				parts[i] = fmt.Sprintf("%s=<invalid %v>", p.Name, native[i])
			} else {
				parts[i] = fmt.Sprintf("%s=%s", p.Name, p.Categories[idx])
			}
		case Integer:
			parts[i] = fmt.Sprintf("%s=%d", p.Name, int(native[i]))
		default:
			parts[i] = fmt.Sprintf("%s=%g", p.Name, native[i])
		}
	}
	return strings.Join(parts, " ")
}

func (s *Space) checkLen(v []float64) {
	if len(v) != len(s.Params) {
		panic(fmt.Sprintf("space: point has %d values, space has %d parameters", len(v), len(s.Params)))
	}
}

// Output describes one scalar objective (a dimension of OS).
type Output struct {
	Name     string
	Minimize bool // all paper objectives are minimized
}

// OutputSpace is the paper's OS with dimension γ.
type OutputSpace struct {
	Outputs []Output
}

// NewOutputSpace returns an OutputSpace of minimized objectives.
func NewOutputSpace(names ...string) *OutputSpace {
	os := &OutputSpace{Outputs: make([]Output, len(names))}
	for i, n := range names {
		os.Outputs[i] = Output{Name: n, Minimize: true}
	}
	return os
}

// Dim returns γ, the number of objectives.
func (o *OutputSpace) Dim() int { return len(o.Outputs) }
