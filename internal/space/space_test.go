package space

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestParamValidate(t *testing.T) {
	cases := []struct {
		p  Param
		ok bool
	}{
		{NewReal("a", 0, 1), true},
		{NewReal("a", 1, 0), false},
		{NewLogReal("a", 0, 1), false},
		{NewLogReal("a", 1, 10), true},
		{NewInteger("b", 1, 5), true},
		{NewCategorical("c", "x", "y"), true},
		{Param{Name: "c", Kind: Categorical}, false},
		{Param{Kind: Real, Lo: 0, Hi: 1}, false},
	}
	for i, c := range cases {
		err := c.p.Validate()
		if (err == nil) != c.ok {
			t.Errorf("case %d: Validate() err=%v, want ok=%v", i, err, c.ok)
		}
	}
}

func TestNewRejectsDuplicates(t *testing.T) {
	if _, err := New(NewReal("a", 0, 1), NewReal("a", 0, 2)); err == nil {
		t.Fatalf("expected duplicate-name error")
	}
}

func TestNormalizeDenormalizeRoundTrip(t *testing.T) {
	s := MustNew(
		NewReal("r", -2, 6),
		NewLogReal("lr", 1, 1024),
		NewInteger("i", 1, 16),
		NewLogInteger("li", 1, 256),
		NewCategorical("c", "a", "b", "c", "d"),
	)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		u := make([]float64, s.Dim())
		for i := range u {
			u[i] = rng.Float64()
		}
		nat := s.Denormalize(u)
		// Native values must be within bounds and on-grid.
		if nat[0] < -2 || nat[0] > 6 {
			t.Fatalf("real out of bounds: %v", nat[0])
		}
		if nat[1] < 1 || nat[1] > 1024 {
			t.Fatalf("logreal out of bounds: %v", nat[1])
		}
		if nat[2] != math.Round(nat[2]) || nat[2] < 1 || nat[2] > 16 {
			t.Fatalf("integer invalid: %v", nat[2])
		}
		if nat[4] != math.Round(nat[4]) || nat[4] < 0 || nat[4] > 3 {
			t.Fatalf("categorical invalid: %v", nat[4])
		}
		// Round-trip: normalize(denormalize(u)) then denormalize again must
		// be a fixed point (grid snap is idempotent).
		nat2 := s.Denormalize(s.Normalize(nat))
		for i := range nat {
			if math.Abs(nat[i]-nat2[i]) > 1e-9*(1+math.Abs(nat[i])) {
				t.Fatalf("round-trip drift at %d: %v vs %v", i, nat[i], nat2[i])
			}
		}
	}
}

func TestNormalizeEdges(t *testing.T) {
	p := NewReal("x", 3, 3)
	if p.normalize(3) != 0 {
		t.Fatalf("degenerate range normalize != 0")
	}
	c := NewCategorical("c", "only")
	if c.normalize(0) != 0.5 || c.denormalize(0.7) != 0 {
		t.Fatalf("single-category param mishandled: normalize=%v denormalize=%v",
			c.normalize(0), c.denormalize(0.7))
	}
}

// Regression for the categorical encoding convention mismatch: normalize
// used to map index j to j/(k−1) while denormalize partitioned [0,1] into k
// equal cells, so the point the kernel saw for category j was not in the
// cell that samples back to j. Both directions now use the cell-center
// convention: normalize(j) = (j+0.5)/k, the center of the j-th cell.
func TestCategoricalCellConsistency(t *testing.T) {
	for k := 1; k <= 7; k++ {
		cats := make([]string, k)
		for i := range cats {
			cats[i] = strings.Repeat("x", i+1)
		}
		p := NewCategorical("c", cats...)
		for j := 0; j < k; j++ {
			u := p.normalize(float64(j))
			// The normalized point must be the center of cell j …
			want := (float64(j) + 0.5) / float64(k)
			if math.Abs(u-want) > 1e-15 {
				t.Fatalf("k=%d: normalize(%d) = %v, want cell center %v", k, j, u, want)
			}
			// … and must round-trip through the cell partition.
			if got := p.denormalize(u); got != float64(j) {
				t.Fatalf("k=%d: denormalize(normalize(%d)) = %v", k, j, got)
			}
			// Consistency: the whole cell [j/k, (j+1)/k) decodes to j, so the
			// kernel point sits in the region that samples to its category.
			lo, hi := float64(j)/float64(k), (float64(j)+1)/float64(k)
			if p.denormalize(lo) != float64(j) || p.denormalize(hi-1e-12) != float64(j) {
				t.Fatalf("k=%d: cell [%v,%v) does not decode to %d", k, lo, hi, j)
			}
		}
	}
}

// Regression for the integer endpoint bias: Round(Lo + u·(Hi−Lo)) gave Lo
// and Hi half the mass of interior values under uniform u. The floor-cell
// mapping Lo + ⌊u·(Hi−Lo+1)⌋ gives every value — endpoints included — the
// same mass. Checked exactly on a deterministic grid of u values.
func TestIntegerCellUniformity(t *testing.T) {
	p := NewInteger("i", -3, 7) // 11 values
	cells := 11
	perCell := 1000
	m := cells * perCell
	counts := make(map[int]int)
	for i := 0; i < m; i++ {
		u := (float64(i) + 0.5) / float64(m)
		counts[int(p.denormalize(u))]++
	}
	for v := -3; v <= 7; v++ {
		if c := counts[v]; c < perCell-2 || c > perCell+2 {
			t.Fatalf("value %d drew %d of %d samples, want ≈ %d per value (counts %v)",
				v, c, m, perCell, counts)
		}
	}
	// Endpoints carry exactly the same mass as interior values.
	if counts[-3] != counts[2] || counts[7] != counts[2] {
		t.Fatalf("endpoint bias: Lo=%d mid=%d Hi=%d", counts[-3], counts[2], counts[7])
	}
	// Every integer in range must be reachable and round-trip.
	for v := -3; v <= 7; v++ {
		if got := p.denormalize(p.normalize(float64(v))); got != float64(v) {
			t.Fatalf("round trip of %d gave %v", v, got)
		}
	}
}

func TestConstraints(t *testing.T) {
	s := MustNew(NewInteger("p", 1, 64), NewInteger("pr", 1, 64))
	s.AddConstraint("pr<=p", func(v map[string]float64) bool { return v["pr"] <= v["p"] })
	if !s.Feasible([]float64{8, 4}) {
		t.Fatalf("8,4 should be feasible")
	}
	if s.Feasible([]float64{4, 8}) {
		t.Fatalf("4,8 should be infeasible")
	}
	if s.FeasibleUnit([]float64{0, 1}) {
		t.Fatalf("unit point (p=1, pr=64) should be infeasible")
	}
}

func TestRound(t *testing.T) {
	s := MustNew(NewReal("r", 0, 10), NewInteger("i", 0, 5), NewCategorical("c", "a", "b"))
	got := s.Round([]float64{11.2, 3.6, 1.4})
	if got[0] != 10 || got[1] != 4 || got[2] != 1 {
		t.Fatalf("Round = %v", got)
	}
}

func TestDescribe(t *testing.T) {
	s := MustNew(NewReal("r", 0, 1), NewInteger("i", 0, 9), NewCategorical("c", "amd", "rcm"))
	d := s.Describe([]float64{0.5, 3, 1})
	for _, want := range []string{"r=0.5", "i=3", "c=rcm"} {
		if !strings.Contains(d, want) {
			t.Fatalf("Describe = %q, missing %q", d, want)
		}
	}
	if !strings.Contains(s.Describe([]float64{0, 0, 9}), "invalid") {
		t.Fatalf("out-of-range categorical should describe as invalid")
	}
}

func TestIndexOf(t *testing.T) {
	s := MustNew(NewReal("a", 0, 1), NewReal("b", 0, 1))
	if s.IndexOf("b") != 1 || s.IndexOf("zz") != -1 {
		t.Fatalf("IndexOf broken")
	}
}

func TestOutputSpace(t *testing.T) {
	os := NewOutputSpace("time", "memory")
	if os.Dim() != 2 || !os.Outputs[0].Minimize || os.Outputs[1].Name != "memory" {
		t.Fatalf("OutputSpace wrong: %+v", os)
	}
}

// Property: denormalize always lands in bounds and normalize always lands in
// [0,1], for arbitrary inputs.
func TestNormalizeBoundsQuick(t *testing.T) {
	s := MustNew(
		NewReal("r", -5, 5),
		NewLogReal("lr", 0.1, 100),
		NewInteger("i", -3, 7),
		NewCategorical("c", "a", "b", "c"),
	)
	f := func(raw [4]float64) bool {
		u := make([]float64, 4)
		for i, v := range raw[:] {
			if math.IsNaN(v) {
				v = 0
			}
			u[i] = v - math.Floor(v) // wrap into [0,1)
		}
		nat := s.Denormalize(u)
		un := s.Normalize(nat)
		for i, v := range un {
			if v < 0 || v > 1 {
				t.Logf("dim %d: normalized %v out of range", i, v)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestValueMap(t *testing.T) {
	s := MustNew(NewReal("x", 0, 1), NewInteger("n", 0, 10))
	m := s.ValueMap([]float64{0.25, 7})
	if m["x"] != 0.25 || m["n"] != 7 {
		t.Fatalf("ValueMap = %v", m)
	}
}

// TestIntoVariantsMatch pins the allocation-free forms against their
// allocating originals on random points, and asserts they are actually
// allocation-free — the property the hotpath-alloc lint rule now enforces
// transitively on every search inner loop.
func TestIntoVariantsMatch(t *testing.T) {
	s := MustNew(NewReal("r", -3, 7), NewInteger("i", 0, 9), NewCategorical("c", "a", "b", "x"))
	s.AddConstraint("i<=5ish", func(v map[string]float64) bool { return v["i"] <= 5 || v["r"] > 0 })
	rng := rand.New(rand.NewSource(7))
	dst := make([]float64, s.Dim())
	nat := make([]float64, s.Dim())
	scratch := make(map[string]float64, s.Dim())
	for trial := 0; trial < 200; trial++ {
		u := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		want := s.Denormalize(u)
		s.DenormalizeInto(nat, u)
		for d := range want {
			if nat[d] != want[d] {
				t.Fatalf("DenormalizeInto[%d] = %v, want %v", d, nat[d], want[d])
			}
		}
		wantU := s.Normalize(want)
		s.NormalizeInto(dst, want)
		for d := range wantU {
			if dst[d] != wantU[d] {
				t.Fatalf("NormalizeInto[%d] = %v, want %v", d, dst[d], wantU[d])
			}
		}
		if got, want := s.FeasibleInto(scratch, nat), s.Feasible(nat); got != want {
			t.Fatalf("FeasibleInto = %v, Feasible = %v at %v", got, want, nat)
		}
	}

	u := []float64{0.9, 0.1, 0.5}
	s.DenormalizeInto(nat, u)
	feasible := false
	if n := testing.AllocsPerRun(100, func() {
		s.DenormalizeInto(nat, u)
		s.NormalizeInto(dst, nat)
		feasible = s.FeasibleInto(scratch, nat)
	}); n != 0 {
		t.Fatalf("Into variants allocate %.1f times per candidate, want 0", n)
	}
	if !feasible {
		t.Fatal("probe point should be feasible (r > 0)")
	}
}
