package sparse

// Nested dissection ordering via recursive level-set bisection
// (SPARSPAK-style): find a pseudo-peripheral vertex, split the BFS level
// structure at the median level, take the boundary as a separator, and
// order the two halves recursively before the separator. For grid-like
// graphs this achieves the classic O(n log n) fill bound that minimum
// degree only approaches heuristically.

import "sort"

// orderND computes a nested dissection permutation: perm[k] is the old
// vertex eliminated k-th.
func orderND(p *Pattern) []int32 {
	n := p.N
	perm := make([]int32, 0, n)
	visited := make([]bool, n)

	var recurse func(vertices []int32)
	recurse = func(vertices []int32) {
		const smallCutoff = 32
		if len(vertices) <= smallCutoff {
			// Base case: order the fragment by (local) minimum degree —
			// cheap and good at leaf size.
			perm = append(perm, localMinDegree(p, vertices)...)
			return
		}
		// BFS level structure from a pseudo-peripheral vertex of this
		// fragment.
		member := map[int32]bool{}
		for _, v := range vertices {
			member[v] = true
		}
		start := pseudoPeripheral(p, vertices[0], member)
		levels := bfsLevels(p, start, member)
		if len(levels) < 3 {
			// No useful separator (dense or tiny diameter): fall back.
			perm = append(perm, localMinDegree(p, vertices)...)
			return
		}
		// Separator = the median BFS level; halves = levels on either side.
		mid := len(levels) / 2
		var left, right, sep []int32
		for l, lv := range levels {
			switch {
			case l < mid:
				left = append(left, lv...)
			case l == mid:
				sep = append(sep, lv...)
			default:
				right = append(right, lv...)
			}
		}
		if len(left) == 0 || len(right) == 0 {
			perm = append(perm, localMinDegree(p, vertices)...)
			return
		}
		recurse(left)
		recurse(right)
		perm = append(perm, sep...)
	}

	// Handle disconnected graphs component by component.
	for v := 0; v < n; v++ {
		if visited[v] {
			continue
		}
		comp := collectComponent(p, int32(v), visited)
		recurse(comp)
	}
	return perm
}

// collectComponent gathers the connected component of start.
func collectComponent(p *Pattern, start int32, visited []bool) []int32 {
	var comp []int32
	queue := []int32{start}
	visited[start] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		comp = append(comp, u)
		for _, w := range p.Adj[u] {
			if !visited[w] {
				visited[w] = true
				queue = append(queue, w)
			}
		}
	}
	return comp
}

// pseudoPeripheral runs BFS twice within the member set to approximate a
// diameter endpoint.
func pseudoPeripheral(p *Pattern, start int32, member map[int32]bool) int32 {
	far := lastBFS(p, start, member)
	return lastBFS(p, far, member)
}

func lastBFS(p *Pattern, start int32, member map[int32]bool) int32 {
	seen := map[int32]bool{start: true}
	frontier := []int32{start}
	last := start
	for len(frontier) > 0 {
		var next []int32
		for _, u := range frontier {
			for _, w := range p.Adj[u] {
				if member[w] && !seen[w] {
					seen[w] = true
					next = append(next, w)
				}
			}
		}
		if len(next) > 0 {
			last = next[len(next)-1]
		}
		frontier = next
	}
	return last
}

// bfsLevels returns the level sets of a BFS restricted to member vertices,
// including any member vertices unreachable from start as a final level.
func bfsLevels(p *Pattern, start int32, member map[int32]bool) [][]int32 {
	seen := map[int32]bool{start: true}
	var levels [][]int32
	frontier := []int32{start}
	for len(frontier) > 0 {
		levels = append(levels, frontier)
		var next []int32
		for _, u := range frontier {
			for _, w := range p.Adj[u] {
				if member[w] && !seen[w] {
					seen[w] = true
					next = append(next, w)
				}
			}
		}
		frontier = next
	}
	var stragglers []int32
	//gptlint:ignore no-map-range set collection only; stragglers are sorted below before they reach the ordering
	for v := range member {
		if !seen[v] {
			stragglers = append(stragglers, v)
		}
	}
	if len(stragglers) > 0 {
		// Map iteration order is random per run; sorting makes the final
		// level — and with it the whole dissection — deterministic.
		sort.Slice(stragglers, func(i, j int) bool { return stragglers[i] < stragglers[j] })
		levels = append(levels, stragglers)
	}
	return levels
}

// localMinDegree orders a small fragment by repeated minimum degree within
// the fragment (simple quadratic implementation; fragments are tiny).
func localMinDegree(p *Pattern, vertices []int32) []int32 {
	member := map[int32]bool{}
	for _, v := range vertices {
		member[v] = true
	}
	out := make([]int32, 0, len(vertices))
	remaining := append([]int32(nil), vertices...)
	for len(remaining) > 0 {
		bestIdx := 0
		bestDeg := 1 << 30
		for i, v := range remaining {
			deg := 0
			for _, w := range p.Adj[v] {
				if member[w] {
					deg++
				}
			}
			if deg < bestDeg {
				bestDeg = deg
				bestIdx = i
			}
		}
		v := remaining[bestIdx]
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
		delete(member, v)
		out = append(out, v)
	}
	return out
}
